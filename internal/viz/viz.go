// Package viz renders a monitor's spatial state — object positions, safe
// regions, range rectangles and kNN quarantine circles — as a standalone SVG
// document. Invaluable for debugging safe-region geometry and for
// documentation.
package viz

import (
	"fmt"
	"io"
	"sort"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/query"
)

// Options controls the rendering.
type Options struct {
	// Size is the SVG edge length in pixels (default 800).
	Size int
	// Space is the world rectangle mapped onto the canvas (default unit
	// square).
	Space geom.Rect
	// ShowSafeRegions toggles drawing each object's safe region.
	ShowSafeRegions bool
	// ShowQuarantines toggles drawing query quarantine areas.
	ShowQuarantines bool
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 800
	}
	if !o.Space.IsValid() || o.Space.Area() == 0 {
		o.Space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	return o
}

// Snapshot captures the drawable state of a monitor.
type Snapshot struct {
	Objects []ObjectState
	Queries []QueryState
}

// ObjectState is one object's position and safe region.
type ObjectState struct {
	ID     uint64
	Pos    geom.Point
	Region geom.Rect
}

// QueryState is one query's parameters and quarantine area.
type QueryState struct {
	ID      query.ID
	Kind    query.Kind
	Rect    geom.Rect   // range rectangle (range/count queries)
	Circle  geom.Circle // quarantine circle (kNN queries)
	Point   geom.Point  // kNN anchor
	Results []uint64
}

// Capture extracts a Snapshot from a monitor given the set of object IDs and
// query IDs to include. Object positions are the server's last reported
// locations.
func Capture(mon *core.Monitor, objects []uint64, queries []query.ID) Snapshot {
	var snap Snapshot
	ids := append([]uint64(nil), objects...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pos, ok := mon.LastReported(id)
		if !ok {
			continue
		}
		region, _ := mon.SafeRegion(id)
		snap.Objects = append(snap.Objects, ObjectState{ID: id, Pos: pos, Region: region})
	}
	qids := append([]query.ID(nil), queries...)
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	for _, qid := range qids {
		q, ok := mon.Query(qid)
		if !ok {
			continue
		}
		qs := QueryState{ID: q.ID, Kind: q.Kind, Results: append([]uint64(nil), q.Results...)}
		if q.Kind == query.KindRange {
			qs.Rect = q.Rect
		} else {
			qs.Circle = q.QuarantineCircle()
			qs.Point = q.Point
		}
		snap.Queries = append(snap.Queries, qs)
	}
	return snap
}

// Render writes the snapshot as an SVG document.
func Render(w io.Writer, snap Snapshot, opt Options) error {
	opt = opt.withDefaults()
	sz := float64(opt.Size)
	sx := func(x float64) float64 { return (x - opt.Space.MinX) / opt.Space.Width() * sz }
	// SVG's y axis grows downward; flip so the world reads naturally.
	sy := func(y float64) float64 { return sz - (y-opt.Space.MinY)/opt.Space.Height()*sz }

	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format+"\n", args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		opt.Size, opt.Size, opt.Size, opt.Size)
	p(`<rect width="%d" height="%d" fill="#fcfcf7"/>`, opt.Size, opt.Size)

	drawRect := func(r geom.Rect, stroke, fill string, width float64, opacity float64) {
		x, y := sx(r.MinX), sy(r.MaxY)
		p(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" stroke="%s" fill="%s" stroke-width="%.2f" fill-opacity="%.2f"/>`,
			x, y, r.Width()/opt.Space.Width()*sz, r.Height()/opt.Space.Height()*sz, stroke, fill, width, opacity)
	}

	if opt.ShowQuarantines {
		for _, q := range snap.Queries {
			if q.Kind == query.KindRange {
				drawRect(q.Rect, "#b33", "#e88", 1.5, 0.18)
			} else {
				p(`<circle cx="%.2f" cy="%.2f" r="%.2f" stroke="#36c" fill="#8be" stroke-width="1.5" fill-opacity="0.15"/>`,
					sx(q.Circle.Center.X), sy(q.Circle.Center.Y), q.Circle.R/opt.Space.Width()*sz)
				p(`<circle cx="%.2f" cy="%.2f" r="3" fill="#36c"/>`, sx(q.Point.X), sy(q.Point.Y))
			}
		}
	}
	resultOf := map[uint64]bool{}
	for _, q := range snap.Queries {
		for _, id := range q.Results {
			resultOf[id] = true
		}
	}
	for _, o := range snap.Objects {
		if opt.ShowSafeRegions && o.Region.IsValid() {
			drawRect(o.Region, "#7a7", "none", 0.8, 0)
		}
		color := "#444"
		if resultOf[o.ID] {
			color = "#d60"
		}
		p(`<circle cx="%.2f" cy="%.2f" r="2.5" fill="%s"/>`, sx(o.Pos.X), sy(o.Pos.Y), color)
	}
	p(`</svg>`)
	return err
}
