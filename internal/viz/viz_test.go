package viz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/query"
)

func buildMonitor(t *testing.T) (*core.Monitor, []uint64, []query.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	pos := map[uint64]geom.Point{}
	mon := core.New(core.Options{GridM: 8}, core.ProberFunc(func(id uint64) geom.Point {
		return pos[id]
	}), nil)
	var ids []uint64
	for i := uint64(0); i < 30; i++ {
		pos[i] = geom.Pt(rng.Float64(), rng.Float64())
		mon.AddObject(i, pos[i])
		ids = append(ids, i)
	}
	if _, _, err := mon.RegisterRange(1, geom.R(0.2, 0.2, 0.4, 0.4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mon.RegisterKNN(2, geom.Pt(0.6, 0.6), 3, true); err != nil {
		t.Fatal(err)
	}
	return mon, ids, []query.ID{1, 2}
}

func TestCaptureAndRender(t *testing.T) {
	mon, ids, qids := buildMonitor(t)
	snap := Capture(mon, ids, qids)
	if len(snap.Objects) != 30 {
		t.Fatalf("objects = %d", len(snap.Objects))
	}
	if len(snap.Queries) != 2 {
		t.Fatalf("queries = %d", len(snap.Queries))
	}
	var buf bytes.Buffer
	if err := Render(&buf, snap, Options{ShowSafeRegions: true, ShowQuarantines: true}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// One circle for the quarantine, one for the anchor, plus 30 objects.
	if got := strings.Count(svg, "<circle"); got < 32 {
		t.Fatalf("too few circles: %d", got)
	}
	if got := strings.Count(svg, "<rect"); got < 30 {
		t.Fatalf("expected background + query rect + safe regions, got %d rects", got)
	}
}

func TestCaptureSkipsUnknown(t *testing.T) {
	mon, _, _ := buildMonitor(t)
	snap := Capture(mon, []uint64{9999}, []query.ID{777})
	if len(snap.Objects) != 0 || len(snap.Queries) != 0 {
		t.Fatalf("unknown ids must be skipped: %+v", snap)
	}
}

func TestRenderDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Snapshot{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="800"`) {
		t.Fatal("default size missing")
	}
}
