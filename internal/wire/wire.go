// Package wire defines the line-delimited JSON protocol spoken between the
// monitoring server, mobile clients, and application servers (the
// architecture of Figure 1.1 in the paper). Each frame is one JSON object
// terminated by '\n'.
//
// The paper's prototype used SOAP/HTTP on IIS; this implementation
// substitutes a minimal TCP protocol with the same message flow:
// source-initiated updates, server-initiated probes, safe-region grants, and
// query registration with continuous result pushes.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"srb/internal/geom"
)

// Message types.
const (
	// Client → server.
	THello      = "hello"       // object joins at (X, Y)
	TUpdate     = "update"      // source-initiated location update
	TProbeReply = "probe_reply" // answer to a probe, echoing Seq
	TBye        = "bye"         // object leaves

	// Server → client.
	TRegion = "region" // new safe region grant
	TProbe  = "probe"  // server-initiated location request

	// Application server → server.
	TRegisterRange  = "register_range"
	TRegisterKNN    = "register_knn"
	TRegisterCount  = "register_count"
	TRegisterCircle = "register_circle"
	TDeregister     = "deregister"

	// Server → application server.
	TResults = "results" // initial or updated query results
	TError   = "error"
)

// Message is the single frame type of the protocol; unused fields are
// omitted on the wire where possible.
type Message struct {
	Type string `json:"t"`

	// Object identity and position.
	Obj uint64  `json:"obj,omitempty"`
	X   float64 `json:"x,omitempty"`
	Y   float64 `json:"y,omitempty"`

	// Safe region grant.
	MinX float64 `json:"minx,omitempty"`
	MinY float64 `json:"miny,omitempty"`
	MaxX float64 `json:"maxx,omitempty"`
	MaxY float64 `json:"maxy,omitempty"`

	// Query registration and results.
	QID     uint64   `json:"qid,omitempty"`
	K       int      `json:"k,omitempty"`
	Ordered bool     `json:"ord,omitempty"`
	IDs     []uint64 `json:"ids,omitempty"`
	Count   int      `json:"count,omitempty"`

	// Radius of a within-distance (circle) query.
	Radius float64 `json:"radius,omitempty"`

	// Probe sequencing and errors.
	Seq uint64 `json:"seq,omitempty"`
	Err string `json:"err,omitempty"`

	// Trace is an optional causal trace ID minted by the sender of a
	// causing frame (a client update/hello, an application-server
	// registration) and echoed on every frame the server sends as a
	// consequence — probes, safe-region grants, result pushes — so one
	// client update's full fan-out can be stitched back together across
	// processes. Zero means untraced.
	Trace uint64 `json:"tr,omitempty"`

	// Resume marks a THello as a session resumption after a connection loss:
	// the server reattaches the existing object state (kept alive by its
	// session lease), treats the hello position as a location update, and
	// replays the current safe region so the client never monitors with a
	// stale one.
	Resume bool `json:"resume,omitempty"`
}

// Point returns the (X, Y) payload.
func (m Message) Point() geom.Point { return geom.Pt(m.X, m.Y) }

// Rect returns the safe-region payload.
func (m Message) Rect() geom.Rect {
	return geom.Rect{MinX: m.MinX, MinY: m.MinY, MaxX: m.MaxX, MaxY: m.MaxY}
}

// SetPoint fills the position payload.
func (m *Message) SetPoint(p geom.Point) {
	m.X, m.Y = p.X, p.Y
}

// SetRect fills the safe-region payload.
func (m *Message) SetRect(r geom.Rect) {
	m.MinX, m.MinY, m.MaxX, m.MaxY = r.MinX, r.MinY, r.MaxX, r.MaxY
}

// Codec frames Messages over a stream. Writes and reads are independently
// usable from different goroutines, but each side must have a single user.
type Codec struct {
	r *bufio.Scanner
	w *bufio.Writer
}

// NewCodec wraps a connection.
func NewCodec(rw io.ReadWriter) *Codec {
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Codec{r: sc, w: bufio.NewWriter(rw)}
}

// Send writes one frame.
func (c *Codec) Send(m Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one frame, returning io.EOF at end of stream.
func (c *Codec) Recv() (Message, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return Message{}, err
		}
		return Message{}, io.EOF
	}
	var m Message
	if err := json.Unmarshal(c.r.Bytes(), &m); err != nil {
		return Message{}, fmt.Errorf("wire: unmarshal %q: %w", c.r.Bytes(), err)
	}
	return m, nil
}
