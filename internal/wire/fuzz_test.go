package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRecv ensures arbitrary bytes never panic the codec: every input either
// yields a message or an error.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(`{"t":"update","obj":1,"x":0.5,"y":0.5}` + "\n"))
	f.Add([]byte(`{"t":"region","minx":0,"maxx":1}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(pipeRW{bytes.NewReader(data), io.Discard})
		for i := 0; i < 64; i++ {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
}
