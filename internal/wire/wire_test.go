package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"srb/internal/geom"
)

type pipeRW struct {
	io.Reader
	io.Writer
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(pipeRW{&buf, &buf})
	msgs := []Message{
		{Type: THello, Obj: 42, X: 0.25, Y: 0.75},
		{Type: TRegion, Obj: 42, MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4},
		{Type: TProbe, Seq: 7},
		{Type: TResults, QID: 3, IDs: []uint64{1, 2, 3}},
		{Type: TError, Err: "boom"},
		{Type: TRegisterKNN, QID: 9, K: 5, Ordered: true, X: 0.5, Y: 0.5},
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type || got.Obj != want.Obj || got.QID != want.QID ||
			got.X != want.X || got.Err != want.Err || got.K != want.K ||
			got.Ordered != want.Ordered || len(got.IDs) != len(want.IDs) {
			t.Fatalf("recv %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := c.Recv(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestPointRectHelpers(t *testing.T) {
	var m Message
	m.SetPoint(geom.Pt(1, 2))
	if m.Point() != geom.Pt(1, 2) {
		t.Fatal("point round trip")
	}
	m.SetRect(geom.R(0.1, 0.2, 0.3, 0.4))
	if m.Rect() != geom.R(0.1, 0.2, 0.3, 0.4) {
		t.Fatal("rect round trip")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("{not json}\n")
	c := NewCodec(pipeRW{&buf, io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestCodecZeroCoordinatesSurvive(t *testing.T) {
	// omitempty must not eat legitimate zero coordinates on Rect: a region
	// anchored at the origin still decodes correctly because all four bounds
	// travel together... verify explicitly.
	var buf bytes.Buffer
	c := NewCodec(pipeRW{&buf, &buf})
	var m Message
	m.Type = TRegion
	m.SetRect(geom.R(0, 0, 0.5, 0.5))
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Rect() != geom.R(0, 0, 0.5, 0.5) {
		t.Fatalf("rect = %v", got.Rect())
	}
}

// Property: any message round-trips through the codec unchanged.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(typ uint8, obj, qid, seq uint64, x, y, minx, miny, maxx, maxy, radius float64, k int16, ord bool, ids []uint64, errStr string) bool {
		types := []string{THello, TUpdate, TProbeReply, TBye, TRegion, TProbe,
			TRegisterRange, TRegisterKNN, TRegisterCount, TRegisterCircle, TDeregister, TResults, TError}
		m := Message{
			Type: types[int(typ)%len(types)],
			Obj:  obj, QID: qid, Seq: seq,
			X: x, Y: y, MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy,
			Radius: radius, K: int(k), Ordered: ord, IDs: ids, Err: errStr,
		}
		var buf bytes.Buffer
		c := NewCodec(pipeRW{&buf, &buf})
		if err := c.Send(m); err != nil {
			return false
		}
		got, err := c.Recv()
		if err != nil {
			return false
		}
		if got.Type != m.Type || got.Obj != m.Obj || got.QID != m.QID || got.Seq != m.Seq ||
			got.X != m.X || got.Y != m.Y || got.MinX != m.MinX || got.MaxY != m.MaxY ||
			got.Radius != m.Radius || got.K != m.K || got.Ordered != m.Ordered || got.Err != m.Err {
			return false
		}
		if len(got.IDs) != len(m.IDs) {
			// omitempty collapses empty slices to nil; treat as equal.
			return len(m.IDs) == 0 && len(got.IDs) == 0
		}
		for i := range m.IDs {
			if got.IDs[i] != m.IDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
