//go:build !srbdebug

package core

// debugInvariants is off in normal builds; assertInvariants compiles away.
const debugInvariants = false
