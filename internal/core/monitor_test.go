package core

import (
	"math/rand"
	"sort"
	"testing"

	"srb/internal/geom"
	"srb/internal/query"
)

// world is a protocol-faithful test harness: it owns the true object
// positions, answers probes with them, tracks the safe regions handed to the
// clients, and reports location updates exactly when an object leaves its
// safe region — the client behavior of Section 3.
type world struct {
	t    *testing.T
	mon  *Monitor
	pos  map[uint64]geom.Point
	safe map[uint64]geom.Rect
}

func newWorld(t *testing.T, opt Options) *world {
	w := &world{t: t, pos: map[uint64]geom.Point{}, safe: map[uint64]geom.Rect{}}
	w.mon = New(opt, ProberFunc(func(id uint64) geom.Point { return w.pos[id] }), nil)
	return w
}

func (w *world) apply(updates []SafeRegionUpdate) {
	for _, u := range updates {
		w.safe[u.Object] = u.Region
	}
}

func (w *world) add(id uint64, p geom.Point) {
	w.pos[id] = p
	w.apply(w.mon.AddObject(id, p))
}

// move displaces one object and performs the client-side protocol: report if
// and only if the new position left the safe region.
func (w *world) move(id uint64, p geom.Point) {
	w.pos[id] = p
	if !w.safe[id].Contains(p) {
		w.apply(w.mon.Update(id, p))
		if !w.safe[id].Contains(p) {
			w.t.Fatalf("object %d: refreshed safe region %v excludes reported position %v", id, w.safe[id], p)
		}
	}
}

func (w *world) bruteRange(r geom.Rect) []uint64 {
	var out []uint64
	for id, p := range w.pos {
		if r.Contains(p) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (w *world) bruteKNN(q geom.Point, k int) []uint64 {
	type nd struct {
		id uint64
		d  float64
	}
	var all []nd
	for id, p := range w.pos {
		all = append(all, nd{id, p.Dist(q)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]uint64, len(all))
	for i, n := range all {
		out[i] = n.id
	}
	return out
}

func sortedCopy(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSeq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- registration ------------------------------------------------------------

func TestRegisterRangeMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := newWorld(t, Options{})
	for i := 0; i < 500; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	for trial := 0; trial < 30; trial++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		rect := geom.R(x, y, x+0.1, y+0.1)
		got, _, err := w.mon.RegisterRange(query.ID(trial), rect)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSeq(sortedCopy(got), w.bruteRange(rect)) {
			t.Fatalf("trial %d: range result mismatch", trial)
		}
	}
	if err := w.mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterKNNOrderSensitiveMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := newWorld(t, Options{})
	for i := 0; i < 400; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	for trial := 0; trial < 30; trial++ {
		qp := geom.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(8)
		got, _, err := w.mon.RegisterKNN(query.ID(trial), qp, k, true)
		if err != nil {
			t.Fatal(err)
		}
		want := w.bruteKNN(qp, k)
		if !equalSeq(got, want) {
			t.Fatalf("trial %d (k=%d): got %v want %v", trial, k, got, want)
		}
	}
	if err := w.mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterKNNOrderInsensitiveMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := newWorld(t, Options{})
	for i := 0; i < 400; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	for trial := 0; trial < 30; trial++ {
		qp := geom.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(8)
		got, _, err := w.mon.RegisterKNN(query.ID(trial), qp, k, false)
		if err != nil {
			t.Fatal(err)
		}
		want := w.bruteKNN(qp, k)
		if !equalSeq(sortedCopy(got), sortedCopy(want)) {
			t.Fatalf("trial %d (k=%d): got %v want %v", trial, k, got, want)
		}
	}
}

func TestRegisterDuplicateQueryFails(t *testing.T) {
	w := newWorld(t, Options{})
	w.add(1, geom.Pt(0.5, 0.5))
	if _, _, err := w.mon.RegisterRange(1, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterRange(1, geom.R(0, 0, 1, 1)); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if _, _, err := w.mon.RegisterKNN(1, geom.Pt(0, 0), 1, true); err == nil {
		t.Fatal("duplicate registration must fail across kinds")
	}
}

func TestDeregister(t *testing.T) {
	w := newWorld(t, Options{})
	w.add(1, geom.Pt(0.5, 0.5))
	if _, _, err := w.mon.RegisterRange(9, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if !w.mon.Deregister(9) {
		t.Fatal("deregister failed")
	}
	if w.mon.Deregister(9) {
		t.Fatal("double deregister must report false")
	}
	if w.mon.NumQueries() != 0 {
		t.Fatalf("NumQueries = %d", w.mon.NumQueries())
	}
}

// --- the paper's central claim: exact monitoring under the protocol -----------

// runAccuracySim drives a full random workload and asserts at every step that
// the monitored results are identical to ground truth — the 100 % accuracy
// the framework guarantees with zero communication delay.
func runAccuracySim(t *testing.T, opt Options, seed int64, nObj, nRange, nKNN, steps int) {
	rng := rand.New(rand.NewSource(seed))
	w := newWorld(t, opt)
	for i := 0; i < nObj; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	type regQ struct {
		id   query.ID
		kind query.Kind
		rect geom.Rect
		pt   geom.Point
		k    int
		sens bool
	}
	var qs []regQ
	for i := 0; i < nRange; i++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		q := regQ{id: query.ID(i), kind: query.KindRange, rect: geom.R(x, y, x+0.02+rng.Float64()*0.1, y+0.02+rng.Float64()*0.1)}
		_, ups, err := w.mon.RegisterRange(q.id, q.rect)
		if err != nil {
			t.Fatal(err)
		}
		w.apply(ups)
		qs = append(qs, q)
	}
	for i := 0; i < nKNN; i++ {
		q := regQ{
			id:   query.ID(nRange + i),
			kind: query.KindKNN,
			pt:   geom.Pt(rng.Float64(), rng.Float64()),
			k:    1 + rng.Intn(5),
			sens: i%2 == 0,
		}
		_, ups, err := w.mon.RegisterKNN(q.id, q.pt, q.k, q.sens)
		if err != nil {
			t.Fatal(err)
		}
		w.apply(ups)
		qs = append(qs, q)
	}

	check := func(step int) {
		for _, q := range qs {
			got, ok := w.mon.Results(q.id)
			if !ok {
				t.Fatalf("query %d vanished", q.id)
			}
			switch {
			case q.kind == query.KindRange:
				want := w.bruteRange(q.rect)
				if !equalSeq(sortedCopy(got), want) {
					t.Fatalf("step %d query %d (range %v): got %v want %v", step, q.id, q.rect, sortedCopy(got), want)
				}
			case q.sens:
				want := w.bruteKNN(q.pt, q.k)
				if !equalSeq(got, want) {
					t.Fatalf("step %d query %d (kNN k=%d at %v): got %v want %v", step, q.id, q.k, q.pt, got, want)
				}
			default:
				want := w.bruteKNN(q.pt, q.k)
				if !equalSeq(sortedCopy(got), sortedCopy(want)) {
					t.Fatalf("step %d query %d (set-kNN k=%d): got %v want %v", step, q.id, q.k, sortedCopy(got), sortedCopy(want))
				}
			}
		}
	}
	check(-1)

	for step := 0; step < steps; step++ {
		w.mon.SetTime(float64(step) * 0.01)
		// Move a random subset of *distinct* objects by small random
		// displacements; each movement is handled before the next starts
		// (sequential model). Distinctness matters: moving the same object
		// twice within one zero-duration step would mean infinite
		// instantaneous speed, violating the MaxSpeed assumption behind the
		// reachability-circle enhancement.
		perm := rng.Perm(nObj)
		for mv := 0; mv < nObj/4+1; mv++ {
			id := uint64(perm[mv])
			p := w.pos[id]
			np := geom.Pt(
				clamp01(p.X+(rng.Float64()-0.5)*0.05),
				clamp01(p.Y+(rng.Float64()-0.5)*0.05),
			)
			w.move(id, np)
		}
		check(step)
	}
	if err := w.mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestExactMonitoringMixedWorkload(t *testing.T) {
	runAccuracySim(t, Options{GridM: 10}, 42, 120, 8, 8, 60)
}

func TestExactMonitoringDenseQueries(t *testing.T) {
	runAccuracySim(t, Options{GridM: 20}, 7, 60, 20, 20, 40)
}

func TestExactMonitoringWithMaxSpeed(t *testing.T) {
	// The reachability circle must never alter correctness, only reduce
	// probes. MaxSpeed is deliberately generous versus the ~0.05 step size.
	runAccuracySim(t, Options{GridM: 10, MaxSpeed: 10}, 13, 100, 6, 6, 50)
}

func TestExactMonitoringWithSteadyMovement(t *testing.T) {
	runAccuracySim(t, Options{GridM: 10, Steadiness: 0.5}, 17, 100, 6, 6, 50)
}

func TestExactMonitoringPerQueryStrips(t *testing.T) {
	runAccuracySim(t, Options{GridM: 10, DisableBatchRange: true}, 19, 80, 12, 4, 40)
}

func TestExactMonitoringGreedyBatch(t *testing.T) {
	runAccuracySim(t, Options{GridM: 10, GreedyBatch: true}, 23, 80, 12, 4, 40)
}

func TestExactMonitoringSmallPopulationKNN(t *testing.T) {
	// Fewer objects than k exercises the degenerate quarantine radius.
	runAccuracySim(t, Options{GridM: 5}, 29, 3, 2, 6, 40)
}

// --- object arrival and departure ---------------------------------------------

func TestAddRemoveObjectsRepairResults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := newWorld(t, Options{GridM: 10})
	for i := 0; i < 50; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	rect := geom.R(0.3, 0.3, 0.7, 0.7)
	qp := geom.Pt(0.5, 0.5)
	_, ups, err := w.mon.RegisterRange(1, rect)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	_, ups, err = w.mon.RegisterKNN(2, qp, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)

	for step := 0; step < 200; step++ {
		switch rng.Intn(3) {
		case 0: // add
			id := uint64(1000 + step)
			w.add(id, geom.Pt(rng.Float64(), rng.Float64()))
		case 1: // remove a random live object
			ids := make([]uint64, 0, len(w.pos))
			for id := range w.pos {
				ids = append(ids, id)
			}
			if len(ids) <= 4 {
				continue
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			id := ids[rng.Intn(len(ids))]
			delete(w.pos, id)
			delete(w.safe, id)
			w.apply(w.mon.RemoveObject(id))
		default: // move
			ids := make([]uint64, 0, len(w.pos))
			for id := range w.pos {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			id := ids[rng.Intn(len(ids))]
			p := w.pos[id]
			w.move(id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.1), clamp01(p.Y+(rng.Float64()-0.5)*0.1)))
		}
		got1, _ := w.mon.Results(1)
		if !equalSeq(sortedCopy(got1), w.bruteRange(rect)) {
			t.Fatalf("step %d: range drifted", step)
		}
		got2, _ := w.mon.Results(2)
		if !equalSeq(got2, w.bruteKNN(qp, 3)) {
			t.Fatalf("step %d: kNN drifted: got %v want %v", step, got2, w.bruteKNN(qp, 3))
		}
	}
	if err := w.mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveUnknownObject(t *testing.T) {
	w := newWorld(t, Options{})
	if got := w.mon.RemoveObject(99); got != nil {
		t.Fatalf("RemoveObject on unknown id: %v", got)
	}
}

// --- result reporting ----------------------------------------------------------

func TestResultUpdatesPublished(t *testing.T) {
	var events []ResultUpdate
	pos := map[uint64]geom.Point{1: geom.Pt(0.1, 0.1)}
	mon := New(Options{GridM: 10}, ProberFunc(func(id uint64) geom.Point { return pos[id] }),
		func(u ResultUpdate) { events = append(events, u) })
	safe := map[uint64]geom.Rect{}
	apply := func(us []SafeRegionUpdate) {
		for _, u := range us {
			safe[u.Object] = u.Region
		}
	}
	apply(mon.AddObject(1, pos[1]))
	if _, _, err := mon.RegisterRange(7, geom.R(0.4, 0.4, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
	// Move into the rectangle: one result change must be published.
	pos[1] = geom.Pt(0.5, 0.5)
	apply(mon.Update(1, pos[1]))
	if len(events) != 1 || events[0].Query != 7 || len(events[0].Results) != 1 || events[0].Results[0] != 1 {
		t.Fatalf("events = %+v", events)
	}
	// Move within the rectangle: no new publication.
	pos[1] = geom.Pt(0.55, 0.5)
	apply(mon.Update(1, pos[1]))
	if len(events) != 1 {
		t.Fatalf("movement inside the quarantine published: %+v", events)
	}
	// Move out: one more publication with empty results.
	pos[1] = geom.Pt(0.9, 0.9)
	apply(mon.Update(1, pos[1]))
	if len(events) != 2 || len(events[1].Results) != 0 {
		t.Fatalf("events = %+v", events)
	}
}

// --- probe behavior -------------------------------------------------------------

func TestLazyProbesOnlyWhenAmbiguous(t *testing.T) {
	// Objects far from the query rectangle must not be probed at all.
	pos := map[uint64]geom.Point{}
	mon := New(Options{GridM: 10}, ProberFunc(func(id uint64) geom.Point { return pos[id] }), nil)
	for i := 0; i < 20; i++ {
		p := geom.Pt(0.05+float64(i)*0.001, 0.05)
		pos[uint64(i)] = p
		mon.AddObject(uint64(i), p)
	}
	if _, _, err := mon.RegisterRange(1, geom.R(0.8, 0.8, 0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	if got := mon.Stats().Probes; got != 0 {
		t.Fatalf("distant range query issued %d probes", got)
	}
}

func TestReachabilityCircleAvoidsProbes(t *testing.T) {
	// Freshly updated objects have tiny reachability circles; a range query
	// partially overlapping their (stale, larger) safe regions can resolve
	// membership without probing.
	rng := rand.New(rand.NewSource(31))
	build := func(maxSpeed float64) Stats {
		w := newWorld(t, Options{GridM: 5, MaxSpeed: maxSpeed})
		for i := 0; i < 300; i++ {
			w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
		}
		// One broad query gives everyone fat safe regions… then more queries
		// cut across them.
		w.mon.SetTime(0.001)
		for trial := 0; trial < 25; trial++ {
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			if _, _, err := w.mon.RegisterRange(query.ID(trial), geom.R(x, y, x+0.2, y+0.2)); err != nil {
				t.Fatal(err)
			}
		}
		return w.mon.Stats()
	}
	rng = rand.New(rand.NewSource(31))
	with := build(0.001) // slow objects: circles stay small
	rng = rand.New(rand.NewSource(31))
	without := build(0)
	if with.Probes >= without.Probes {
		t.Fatalf("reachability circle did not reduce probes: with=%d without=%d", with.Probes, without.Probes)
	}
	if with.ProbesAvoided == 0 {
		t.Fatal("expected some probes avoided")
	}
}

func TestStatsCounters(t *testing.T) {
	w := newWorld(t, Options{GridM: 10})
	w.add(1, geom.Pt(0.2, 0.2))
	w.add(2, geom.Pt(0.8, 0.8))
	if _, _, err := w.mon.RegisterKNN(1, geom.Pt(0.5, 0.5), 1, true); err != nil {
		t.Fatal(err)
	}
	s := w.mon.Stats()
	if s.NewQueryEvals != 1 {
		t.Fatalf("NewQueryEvals = %d", s.NewQueryEvals)
	}
	w.move(1, geom.Pt(0.9, 0.2)) // leaves its safe region eventually
	s = w.mon.Stats()
	if s.SourceUpdates == 0 {
		t.Fatal("expected at least one source update")
	}
	if s.SafeRegionsBuilt == 0 {
		t.Fatal("expected safe region computations")
	}
}

// --- accessors -------------------------------------------------------------------

func TestAccessors(t *testing.T) {
	w := newWorld(t, Options{})
	w.add(5, geom.Pt(0.3, 0.4))
	if n := w.mon.NumObjects(); n != 1 {
		t.Fatalf("NumObjects = %d", n)
	}
	if p, ok := w.mon.LastReported(5); !ok || p != geom.Pt(0.3, 0.4) {
		t.Fatalf("LastReported = %v,%v", p, ok)
	}
	if _, ok := w.mon.LastReported(6); ok {
		t.Fatal("unknown object")
	}
	sr, ok := w.mon.SafeRegion(5)
	if !ok || !sr.Contains(geom.Pt(0.3, 0.4)) {
		t.Fatalf("SafeRegion = %v,%v", sr, ok)
	}
	if _, ok := w.mon.SafeRegion(6); ok {
		t.Fatal("unknown object safe region")
	}
	if _, ok := w.mon.Results(99); ok {
		t.Fatal("unknown query results")
	}
	if _, ok := w.mon.Query(99); ok {
		t.Fatal("unknown query")
	}
	if _, _, err := w.mon.RegisterRange(3, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if q, ok := w.mon.Query(3); !ok || q.Kind != query.KindRange {
		t.Fatal("Query accessor failed")
	}
	if w.mon.Now() != 0 {
		t.Fatalf("Now = %v", w.mon.Now())
	}
	w.mon.SetTime(4.5)
	if w.mon.Now() != 4.5 {
		t.Fatalf("Now = %v", w.mon.Now())
	}
}

// --- aggregate COUNT queries (Section 8 extension) -----------------------------

func TestCountQueryTracksOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var events []ResultUpdate
	w := newWorld(t, Options{GridM: 10})
	w.mon = New(Options{GridM: 10}, ProberFunc(func(id uint64) geom.Point { return w.pos[id] }),
		func(u ResultUpdate) { events = append(events, u) })
	for i := 0; i < 60; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	rect := geom.R(0.3, 0.3, 0.7, 0.7)
	count, ups, err := w.mon.RegisterCount(77, rect)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	if want := len(w.bruteRange(rect)); count != want {
		t.Fatalf("initial count = %d, want %d", count, want)
	}
	for step := 0; step < 120; step++ {
		id := uint64(rng.Intn(60))
		p := w.pos[id]
		w.move(id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.2), clamp01(p.Y+(rng.Float64()-0.5)*0.2)))
		got, _ := w.mon.Results(77)
		if len(got) != len(w.bruteRange(rect)) {
			t.Fatalf("step %d: monitored count %d, want %d", step, len(got), len(w.bruteRange(rect)))
		}
	}
	if len(events) == 0 {
		t.Fatal("expected count-change events")
	}
	for _, e := range events {
		if e.Query != 77 {
			continue
		}
		if e.Results != nil {
			t.Fatalf("aggregate query leaked member IDs: %+v", e)
		}
	}
}

func TestCountQueryDuplicateID(t *testing.T) {
	w := newWorld(t, Options{})
	if _, _, err := w.mon.RegisterCount(1, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterCount(1, geom.R(0, 0, 1, 1)); err == nil {
		t.Fatal("duplicate must fail")
	}
	if !w.mon.Deregister(1) {
		t.Fatal("deregister")
	}
}

// --- within-distance (circular range) queries ----------------------------------

func TestCircleQueryExactMonitoring(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	w := newWorld(t, Options{GridM: 10})
	for i := 0; i < 150; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	type cq struct {
		id     query.ID
		center geom.Point
		radius float64
	}
	var qs []cq
	for i := 0; i < 6; i++ {
		q := cq{query.ID(i + 1), geom.Pt(rng.Float64(), rng.Float64()), 0.05 + rng.Float64()*0.15}
		res, ups, err := w.mon.RegisterWithinDistance(q.id, q.center, q.radius)
		if err != nil {
			t.Fatal(err)
		}
		w.apply(ups)
		want := w.bruteCircle(q.center, q.radius)
		if !equalSeq(sortedCopy(res), want) {
			t.Fatalf("initial circle results: got %v want %v", sortedCopy(res), want)
		}
		qs = append(qs, q)
	}
	for step := 0; step < 60; step++ {
		w.mon.SetTime(float64(step) * 0.01)
		perm := rng.Perm(150)
		for mv := 0; mv < 40; mv++ {
			id := uint64(perm[mv])
			p := w.pos[id]
			w.move(id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.05), clamp01(p.Y+(rng.Float64()-0.5)*0.05)))
		}
		for _, q := range qs {
			got, _ := w.mon.Results(q.id)
			want := w.bruteCircle(q.center, q.radius)
			if !equalSeq(sortedCopy(got), want) {
				t.Fatalf("step %d query %d: got %v want %v", step, q.id, sortedCopy(got), want)
			}
		}
	}
	if err := w.mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func (w *world) bruteCircle(c geom.Point, r float64) []uint64 {
	var out []uint64
	for id, p := range w.pos {
		if p.Dist(c) <= r {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestCircleQueryMixedWithOthers(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	w := newWorld(t, Options{GridM: 8})
	for i := 0; i < 100; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	_, ups, err := w.mon.RegisterWithinDistance(1, geom.Pt(0.5, 0.5), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	_, ups, err = w.mon.RegisterKNN(2, geom.Pt(0.5, 0.5), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	_, ups, err = w.mon.RegisterRange(3, geom.R(0.4, 0.4, 0.6, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	for step := 0; step < 50; step++ {
		w.mon.SetTime(float64(step) * 0.01)
		perm := rng.Perm(100)
		for mv := 0; mv < 25; mv++ {
			id := uint64(perm[mv])
			p := w.pos[id]
			w.move(id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.04), clamp01(p.Y+(rng.Float64()-0.5)*0.04)))
		}
		got1, _ := w.mon.Results(1)
		if !equalSeq(sortedCopy(got1), w.bruteCircle(geom.Pt(0.5, 0.5), 0.15)) {
			t.Fatalf("step %d: circle drifted", step)
		}
		got2, _ := w.mon.Results(2)
		if !equalSeq(got2, w.bruteKNN(geom.Pt(0.5, 0.5), 3)) {
			t.Fatalf("step %d: knn drifted", step)
		}
		got3, _ := w.mon.Results(3)
		if !equalSeq(sortedCopy(got3), w.bruteRange(geom.R(0.4, 0.4, 0.6, 0.6))) {
			t.Fatalf("step %d: range drifted", step)
		}
	}
}

func TestCircleQueryDuplicateAndDeregister(t *testing.T) {
	w := newWorld(t, Options{})
	if _, _, err := w.mon.RegisterWithinDistance(1, geom.Pt(0.5, 0.5), 0.1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterWithinDistance(1, geom.Pt(0.1, 0.1), 0.1); err == nil {
		t.Fatal("duplicate must fail")
	}
	if !w.mon.Deregister(1) {
		t.Fatal("deregister")
	}
}
