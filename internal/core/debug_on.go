//go:build srbdebug

package core

// debugInvariants gates the self-checking build: with the srbdebug build tag
// every mutating Monitor operation asserts CheckInvariants before returning,
// turning any state corruption into an immediate panic at the operation that
// introduced it instead of a wrong answer arbitrarily later.
const debugInvariants = true
