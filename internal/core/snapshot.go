package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"srb/internal/geom"
	"srb/internal/query"
)

// snapshotVersion guards against decoding snapshots from incompatible
// builds. Version 2 added the Stats counters, which crash recovery must
// restore for the recovered monitor to be bit-identical to the original.
const snapshotVersion = 2

// objectSnap and querySnap are the wire representations of the monitor's
// durable state. Exported fields only, for encoding/gob.
type objectSnap struct {
	ID       uint64
	LastLoc  geom.Point
	PrevLoc  geom.Point
	LastTime float64
	Safe     geom.Rect
}

type querySnap struct {
	ID             query.ID
	Kind           query.Kind
	Aggregate      bool
	Rect           geom.Rect
	Point          geom.Point
	K              int
	OrderSensitive bool
	Results        []uint64
	QRadius        float64
}

type monitorSnap struct {
	Version int
	Now     float64
	Stats   Stats
	Objects []objectSnap
	Queries []querySnap
}

// SaveSnapshot serializes the monitor's durable state — objects with their
// safe regions and the registered queries with their results and quarantine
// areas — so a restarted server can resume exactly where it stopped without
// forcing every client to re-register. Options are not part of the snapshot;
// the restoring monitor must be constructed with the same Options.
func (m *Monitor) SaveSnapshot(w io.Writer) error {
	snap := monitorSnap{Version: snapshotVersion, Now: m.now, Stats: m.stats}
	for _, id := range m.sortedObjectIDs() {
		st := m.objects[id]
		snap.Objects = append(snap.Objects, objectSnap{
			ID: id, LastLoc: st.lastLoc, PrevLoc: st.prevLoc, LastTime: st.lastTime, Safe: st.safe,
		})
	}
	for _, qid := range m.sortedQueryIDs() {
		q := m.queries[qid]
		snap.Queries = append(snap.Queries, querySnap{
			ID: q.ID, Kind: q.Kind, Aggregate: q.Aggregate, Rect: q.Rect,
			Point: q.Point, K: q.K, OrderSensitive: q.OrderSensitive,
			Results: append([]uint64(nil), q.Results...), QRadius: q.QRadius,
		})
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadSnapshot restores state saved by SaveSnapshot into an empty monitor.
func (m *Monitor) LoadSnapshot(r io.Reader) error {
	if len(m.objects) != 0 || len(m.queries) != 0 {
		return fmt.Errorf("core: LoadSnapshot requires an empty monitor")
	}
	var snap monitorSnap
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	m.now = snap.Now
	m.stats = snap.Stats
	for _, o := range snap.Objects {
		st := &objectState{
			id: o.ID, lastLoc: o.LastLoc, prevLoc: o.PrevLoc, lastTime: o.LastTime,
			safe: clampSafe(o.Safe, o.LastLoc),
		}
		m.objects[o.ID] = st
		m.index.Insert(o.ID, st.safe)
	}
	for _, qs := range snap.Queries {
		var q *query.Query
		switch {
		case qs.Kind == query.KindRange && qs.Aggregate:
			q = query.NewCountRange(qs.ID, qs.Rect)
		case qs.Kind == query.KindRange:
			q = query.NewRange(qs.ID, qs.Rect)
		case qs.Kind == query.KindCircle:
			q = query.NewWithinDistance(qs.ID, qs.Point, qs.QRadius)
		case qs.Kind == query.KindKNN:
			q = query.NewKNN(qs.ID, qs.Point, qs.K, qs.OrderSensitive)
		default:
			return fmt.Errorf("core: snapshot has unknown query kind %v", qs.Kind)
		}
		q.QRadius = qs.QRadius
		for _, id := range qs.Results {
			if _, ok := m.objects[id]; !ok {
				return fmt.Errorf("core: query %d references unknown object %d", qs.ID, id)
			}
		}
		m.queries[q.ID] = q
		m.setResults(q, qs.Results)
		m.grid.Insert(q)
	}
	// The restored Stats predate any attached ledger; re-base per-query
	// accounting on the recovered query population so attribution (and the
	// sum-to-global-counters invariant) restarts cleanly at the recovery point.
	if m.mobs != nil {
		m.mobs.lg.reset(m)
	}
	m.assertInvariants()
	return nil
}

func (m *Monitor) sortedObjectIDs() []uint64 {
	ids := make([]uint64, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
