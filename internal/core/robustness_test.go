package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"srb/internal/geom"
	"srb/internal/query"
)

// TestChaoticUpdatesNeverCorruptState feeds the monitor protocol-violating
// traffic — objects jumping arbitrarily without honoring safe regions, as
// happens under extreme communication delays — and asserts the server's
// structures stay internally consistent and every published result references
// live objects. (Result accuracy is deliberately not asserted: the protocol's
// preconditions are being violated.)
func TestChaoticUpdatesNeverCorruptState(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pos := map[uint64]geom.Point{}
	mon := New(Options{GridM: 10}, ProberFunc(func(id uint64) geom.Point { return pos[id] }), nil)
	for i := 0; i < 80; i++ {
		pos[uint64(i)] = geom.Pt(rng.Float64(), rng.Float64())
		mon.AddObject(uint64(i), pos[uint64(i)])
	}
	for q := 1; q <= 12; q++ {
		var err error
		if q%2 == 0 {
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			_, _, err = mon.RegisterRange(query.ID(q), geom.R(x, y, x+0.15, y+0.15))
		} else {
			_, _, err = mon.RegisterKNN(query.ID(q), geom.Pt(rng.Float64(), rng.Float64()), 1+rng.Intn(6), q%4 == 1)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 4000; step++ {
		id := uint64(rng.Intn(80))
		// Teleport: the probe answer may even disagree with the update.
		pos[id] = geom.Pt(rng.Float64(), rng.Float64())
		reported := pos[id]
		if rng.Intn(4) == 0 {
			reported = geom.Pt(rng.Float64(), rng.Float64()) // stale report
		}
		mon.SetTime(float64(step) * 0.001)
		mon.Update(id, reported)
		if err := mon.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deregister everything; reverse index must drain.
	for q := 1; q <= 12; q++ {
		if !mon.Deregister(query.ID(q)) {
			t.Fatalf("deregister %d failed", q)
		}
	}
	for i := 0; i < 80; i++ {
		mon.RemoveObject(uint64(i))
	}
	if mon.NumObjects() != 0 || mon.NumQueries() != 0 {
		t.Fatal("teardown incomplete")
	}
}

// TestQuickMonitorWorkloads drives short randomized protocol-faithful
// workloads via testing/quick: for any seed, monitored results must equal the
// oracle at the end.
func TestQuickMonitorWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, Options{GridM: 6})
		n := 20 + rng.Intn(40)
		for i := 0; i < n; i++ {
			w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
		}
		type spec struct {
			id   query.ID
			kind query.Kind
			rect geom.Rect
			pt   geom.Point
			k    int
			sens bool
		}
		var specs []spec
		for q := 1; q <= 6; q++ {
			s := spec{id: query.ID(q)}
			if q%2 == 0 {
				x, y := rng.Float64()*0.8, rng.Float64()*0.8
				s.kind = query.KindRange
				s.rect = geom.R(x, y, x+0.2, y+0.2)
				_, ups, err := w.mon.RegisterRange(s.id, s.rect)
				if err != nil {
					return false
				}
				w.apply(ups)
			} else {
				s.kind = query.KindKNN
				s.pt = geom.Pt(rng.Float64(), rng.Float64())
				s.k = 1 + rng.Intn(4)
				s.sens = q%3 == 0
				_, ups, err := w.mon.RegisterKNN(s.id, s.pt, s.k, s.sens)
				if err != nil {
					return false
				}
				w.apply(ups)
			}
			specs = append(specs, s)
		}
		for step := 0; step < 30; step++ {
			w.mon.SetTime(float64(step) * 0.01)
			for _, oid := range rng.Perm(n)[:n/3+1] {
				p := w.pos[uint64(oid)]
				w.move(uint64(oid), geom.Pt(
					clamp01(p.X+(rng.Float64()-0.5)*0.06),
					clamp01(p.Y+(rng.Float64()-0.5)*0.06)))
			}
		}
		for _, s := range specs {
			got, _ := w.mon.Results(s.id)
			switch {
			case s.kind == query.KindRange:
				if !equalSeq(sortedCopy(got), w.bruteRange(s.rect)) {
					return false
				}
			case s.sens:
				if !equalSeq(got, w.bruteKNN(s.pt, s.k)) {
					return false
				}
			default:
				if !equalSeq(sortedCopy(got), sortedCopy(w.bruteKNN(s.pt, s.k))) {
					return false
				}
			}
		}
		return w.mon.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
