package core

import (
	"math/rand"
	"strings"
	"testing"

	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
)

// driveObsWorkload runs a small deterministic workload exercising every
// instrumented path: adds, range/kNN/circle/count registration, updates that
// trigger incremental reevaluation, and a removal.
func driveObsWorkload(t *testing.T, w *world) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	if _, _, err := w.mon.RegisterRange(1, geom.R(10, 10, 60, 60)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterKNN(2, geom.Pt(50, 50), 5, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterWithinDistance(3, geom.Pt(30, 70), 15); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterCount(4, geom.R(0, 0, 40, 40)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id := uint64(rng.Intn(60))
		p := w.pos[id]
		w.move(id, geom.Pt(p.X+rng.Float64()*20-10, p.Y+rng.Float64()*20-10))
	}
	w.mon.RemoveObject(5)
	w.mon.Deregister(4)
}

// TestObsCountersMirrorStats drives a workload with a sink attached and checks
// that the registry counters land exactly on the monitor's own Stats, that
// the gauges track the populations, and that the op histograms saw every
// instrumented operation.
func TestObsCountersMirrorStats(t *testing.T) {
	sink := obs.NewSink(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceDepth))
	w := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100)})
	w.mon.SetObs(sink)
	driveObsWorkload(t, w)

	st := w.mon.Stats()
	r := sink.Registry()
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"srb_updates_total", st.SourceUpdates},
		{"srb_probes_total", st.Probes},
		{"srb_probes_avoided_total", st.ProbesAvoided},
		{"srb_virtual_probes_total", st.VirtualProbes},
		{"srb_reevaluations_total", st.Reevaluations},
		{"srb_full_reevaluations_total", st.FullReevals},
		{"srb_new_query_evals_total", st.NewQueryEvals},
		{"srb_safe_regions_built_total", st.SafeRegionsBuilt},
		{"srb_result_changes_total", st.ResultChanges},
	} {
		if got := r.Counter(tc.name, "").Value(); got != tc.want {
			t.Errorf("%s = %d, want %d (Stats mirror)", tc.name, got, tc.want)
		}
	}
	if got := r.Gauge("srb_objects", "").Value(); got != 59 {
		t.Errorf("srb_objects = %g, want 59", got)
	}
	if got := r.Gauge("srb_queries", "").Value(); got != 3 {
		t.Errorf("srb_queries = %g, want 3", got)
	}
	// Every Update/Add/Remove/Register went through its op histogram.
	opCount := func(op string) int64 {
		return r.Histogram("srb_op_seconds", "", obs.LatencyBuckets(), "op", op).Count()
	}
	if got := opCount("update"); got != st.SourceUpdates {
		t.Errorf("update histogram count = %d, want %d (one per Update)", got, st.SourceUpdates)
	}
	if got := opCount("add"); got != 60 {
		t.Errorf("add histogram count = %d, want 60", got)
	}
	if got := opCount("remove"); got != 1 {
		t.Errorf("remove histogram count = %d, want 1", got)
	}
	if got := opCount("register"); got != 4 {
		t.Errorf("register histogram count = %d, want 4", got)
	}
	// kNN case counters only fire on the order-sensitive incremental paths;
	// with 200 moves around a k=5 query at least one case must have fired.
	var knn int64
	for _, c := range []string{"1", "2", "3"} {
		knn += r.Counter("srb_knn_case_total", "", "case", c).Value()
	}
	if knn == 0 {
		t.Error("no srb_knn_case_total increments after 200 moves")
	}
	// The tracer saw decision-level events from the workload.
	tr := sink.Tracer()
	if tr.Total() == 0 {
		t.Fatal("tracer recorded no events")
	}
	names := map[string]bool{}
	for _, e := range tr.Events() {
		names[e.Name] = true
	}
	for _, want := range []string{"update", "reevaluate"} {
		if !names[want] {
			t.Errorf("trace has no %q event; got %v", want, names)
		}
	}
	// The whole state round-trips through the text exposition.
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("core-driven exposition does not parse: %v", err)
	}
}

// TestObsNilSinkIsNeutral checks that the uninstrumented monitor behaves
// bit-identically to the instrumented one (same Stats, same results) and that
// SetObs(nil) detaches.
func TestObsNilSinkIsNeutral(t *testing.T) {
	plain := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100)})
	driveObsWorkload(t, plain)

	inst := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100)})
	inst.mon.SetObs(obs.NewSink(obs.NewRegistry(), obs.NewTracer(256)))
	driveObsWorkload(t, inst)

	if plain.mon.Stats() != inst.mon.Stats() {
		t.Fatalf("instrumentation changed behavior:\nplain = %+v\ninst  = %+v",
			plain.mon.Stats(), inst.mon.Stats())
	}
	for _, qid := range []query.ID{1, 2, 3} {
		a, _ := plain.mon.Results(qid)
		b, _ := inst.mon.Results(qid)
		if len(a) != len(b) {
			t.Fatalf("query %d: result size diverged (%d vs %d)", qid, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: results diverged at %d", qid, i)
			}
		}
	}

	inst.mon.SetObs(nil)
	if inst.mon.mobs != nil {
		t.Fatal("SetObs(nil) must detach")
	}
}
