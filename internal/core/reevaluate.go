package core

import (
	"math"
	"sort"
	"time"

	"srb/internal/geom"
	"srb/internal/query"
)

// Update processes a source-initiated location update from object id at its
// new exact position p (Algorithm 1, lines 8-15): it finds the affected
// queries through the grid index, incrementally reevaluates them (probing
// lazily), and recomputes the safe regions of the object and of every probed
// object. The returned slice carries the refreshed safe regions to send back
// to the clients; the first entry is always the updating object's.
//
//srb:hotpath
func (m *Monitor) Update(id uint64, p geom.Point) []SafeRegionUpdate {
	st, ok := m.objects[id]
	if !ok {
		return m.AddObject(id, p)
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	m.stats.SourceUpdates++
	if m.mobs != nil {
		m.mobs.lg.noteUpdate()
	}
	m.beginOp()
	pLst := st.lastLoc
	st.prevLoc = pLst
	st.lastLoc = p
	st.lastTime = m.now
	// The updated object is represented by its exact point for the rest of
	// the operation — including in the object index: its new position is
	// outside its old safe region by definition (that is why it reported), so
	// the old rectangle no longer lower-bounds its distances and would
	// mis-prune best-first searches.
	m.probedNow[id] = p
	st.safe = geom.RectAround(p)
	m.index.Update(id, st.safe)
	processed := make(map[query.ID]bool)
	for _, q := range m.grid.Affected(pLst, p) {
		processed[q.ID] = true
		m.reevaluate(q, st, pLst)
	}
	// Queries the object is currently a result of must be reevaluated even
	// when the quarantine test misses them (a result can sit outside a
	// quarantine circle that shrank after its safe region was granted).
	if set := m.resultOf[id]; len(set) > 0 {
		ids := make([]query.ID, 0, len(set))
		for qid := range set {
			if !processed[qid] {
				ids = append(ids, qid)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, qid := range ids {
			if q := m.queries[qid]; q != nil {
				m.reevaluate(q, st, pLst)
			}
		}
	}
	out := m.finishOp(st)
	if m.mobs != nil {
		m.mobs.done(m, "update", m.mobs.updSeconds, t0, before)
	}
	m.assertInvariants()
	return out
}

// reevaluate incrementally repairs one affected query after st moved from
// pLst to st.lastLoc, publishing the result if it changed.
func (m *Monitor) reevaluate(q *query.Query, st *objectState, pLst geom.Point) {
	var t0 time.Time
	if m.mobs != nil {
		t0 = time.Now() //lint:allow wallclock latency instrumentation, never in output
		m.mobs.lg.noteReeval(q)
	}
	m.stats.Reevaluations++
	before := append([]uint64(nil), q.Results...)
	switch q.Kind {
	case query.KindRange:
		m.reevalRange(q, st)
	case query.KindCircle:
		m.reevalCircle(q, st)
	case query.KindKNN:
		if q.OrderSensitive {
			m.reevalKNNSensitive(q, st, pLst)
		} else {
			m.reevalKNNInsensitive(q, st, pLst)
		}
		m.grid.Update(q) // the quarantine circle may have changed
	}
	if !q.ResultEquals(before) {
		m.publish(q)
	}
	if m.mobs != nil {
		m.mobs.tr.SpanTr("core", "reevaluate", m.opTrace, t0, "query", int64(q.ID), "kind", int64(q.Kind))
		m.mobs.lg.unfocus()
	}
}

// reevalRange is the trivial incremental maintenance of Section 4.3: the
// updated object joins the result when inside the rectangle and leaves it
// otherwise.
func (m *Monitor) reevalRange(q *query.Query, st *objectState) {
	in := q.Rect.Contains(st.lastLoc)
	was := q.InResult[st.id]
	switch {
	case in && !was:
		if m.mobs != nil {
			m.mobs.lg.noteEnter(q)
		}
		m.appendResultID(q, st.id, -1)
	case !in && was:
		if m.mobs != nil {
			m.mobs.lg.noteExit(q)
		}
		m.removeResultID(q, st.id)
	}
}

// reevalCircle maintains a circular range query exactly like a rectangular
// one: membership flips when the updated object crosses the fixed circle.
func (m *Monitor) reevalCircle(q *query.Query, st *objectState) {
	in := q.Circle().Contains(st.lastLoc)
	was := q.InResult[st.id]
	switch {
	case in && !was:
		if m.mobs != nil {
			m.mobs.lg.noteEnter(q)
		}
		m.appendResultID(q, st.id, -1)
	case !in && was:
		if m.mobs != nil {
			m.mobs.lg.noteExit(q)
		}
		m.removeResultID(q, st.id)
	}
}

// reevalKNNSensitive implements the three cases of Section 4.3 for
// order-sensitive kNN queries; each needs at most one probe. Inconsistent
// states (possible under communication delays) fall back to a from-scratch
// reevaluation.
func (m *Monitor) reevalKNNSensitive(q *query.Query, st *objectState, pLst geom.Point) {
	p := st.lastLoc
	inNew := q.InQuarantine(p)
	inOld := q.QuarantineCircle().Contains(pLst)
	was := q.InResult[st.id]
	switch {
	case !inNew:
		// Case 1: the object left (or is outside) the quarantine area. The
		// inOld test is deliberately dropped: the reverse result index routes
		// result objects here even when their previous report was already
		// outside a quarantine that shrank in the meantime.
		if !was {
			return
		}
		m.noteKNNCase(q, 1)
		m.removeResultID(q, st.id)
		m.refillKNN(q)
	case inNew && !inOld:
		// Case 2: the object entered the quarantine area; it displaces the
		// current k-th NN.
		m.noteKNNCase(q, 2)
		if was || len(q.Results) < q.K {
			m.fullReevalKNN(q)
			return
		}
		m.insertIntoOrder(q, st)
		// Drop the (k+1)-th of the extended sequence — the old k-th NN, or the
		// entering object itself when it ranks last — and place the new
		// quarantine radius between the new k-th and the dropped object
		// (Section 4.3, case 2).
		dropped := q.Results[len(q.Results)-1]
		m.removeResultID(q, dropped)
		droppedMin, _ := m.bounds(q.Point, dropped)
		_, newMax := m.bounds(q.Point, q.Results[len(q.Results)-1])
		q.QRadius = m.quarantineRadius(newMax, droppedMin)
	case inNew && inOld:
		// Case 3: movement inside the quarantine area may reorder results.
		m.noteKNNCase(q, 3)
		if !was {
			m.fullReevalKNN(q)
			return
		}
		m.removeResultID(q, st.id)
		m.insertIntoOrder(q, st)
		// The quarantine radius does not change in this case (Section 4.3).
	}
}

// reevalKNNInsensitive handles set-semantics kNN queries: only the enter and
// leave cases exist (Section 4.3).
func (m *Monitor) reevalKNNInsensitive(q *query.Query, st *objectState, pLst geom.Point) {
	p := st.lastLoc
	inNew := q.InQuarantine(p)
	inOld := q.QuarantineCircle().Contains(pLst)
	switch {
	case !inNew:
		if !q.InResult[st.id] {
			return
		}
		m.removeResultID(q, st.id)
		m.refillKNN(q)
	case inNew && !inOld:
		// Without a maintained order there is no cheap displacement: the
		// paper reevaluates the query as if it were new.
		m.fullReevalKNN(q)
	default:
		// Both inside. A result moving within the quarantine cannot change a
		// set-semantics answer; a non-result inside the quarantine is an
		// inconsistency (e.g. the circle grew over it after a refill) and is
		// repaired from scratch.
		if !q.InResult[st.id] {
			m.fullReevalKNN(q)
		}
	}
}

// insertIntoOrder places the updated object (represented by its exact point)
// into the strictly ordered result sequence o_1 … o_k of an order-sensitive
// kNN query. Because the distance intervals [δ_i, Δ_i] are chained, d(q, p)
// falls either strictly between two objects' intervals (direct insertion) or
// inside exactly one interval, in which case that single object is probed
// (Figure 4.1(b)); at most one probe is needed.
func (m *Monitor) insertIntoOrder(q *query.Query, st *objectState) {
	d := q.Point.Dist(st.lastLoc)
	pos := len(q.Results)
	for i := 0; i < len(q.Results); i++ {
		oid := q.Results[i]
		lo, hi := m.bounds(q.Point, oid)
		if d < lo {
			pos = i
			break
		}
		if d > hi {
			continue
		}
		// Ambiguous against o_i: a virtual probe may separate them before a
		// real probe is needed (Section 6.1).
		if m.virtualProbe(oid) {
			lo, hi = m.bounds(q.Point, oid)
			if d < lo {
				pos = i
				break
			}
			if d > hi {
				continue
			}
		}
		op := m.probe(oid)
		if d < q.Point.Dist(op) {
			pos = i
		} else {
			pos = i + 1
		}
		break
	}
	m.appendResultID(q, st.id, pos)
}

// refillKNN finds a replacement k-th NN after a result left the quarantine
// area (case 1): a constrained 1NN search excluding the remaining results
// (the departed object itself stays a candidate), then a fresh quarantine
// radius from the search's frontier.
func (m *Monitor) refillKNN(q *query.Query) {
	exclude := make(map[uint64]bool, len(q.Results))
	for _, id := range q.Results {
		exclude[id] = true
	}
	winner, maxK, nextMin, ok := m.constrained1NN(q.Point, exclude)
	if ok {
		m.appendResultID(q, winner, -1)
		q.QRadius = m.quarantineRadius(maxK, nextMin)
		return
	}
	// Fewer objects than k remain: the quarantine covers everything.
	maxD := 0.0
	if n := len(q.Results); n > 0 {
		_, maxD = m.bounds(q.Point, q.Results[n-1])
	}
	q.QRadius = m.quarantineRadius(maxD, noNextElement)
}

// fullReevalKNN reevaluates a kNN query from scratch (still with lazy
// probes), used by the order-insensitive enter case and as the fallback for
// inconsistent incremental states.
func (m *Monitor) fullReevalKNN(q *query.Query) {
	m.stats.FullReevals++
	if m.mobs != nil {
		m.mobs.lg.noteFullReeval(q)
	}
	m.evalKNN(q)
}

// infinitePoint is a pLst placeholder for objects that did not previously
// exist (registration): it is outside every quarantine area.
func infinitePoint() geom.Point {
	return geom.Point{X: math.Inf(1), Y: math.Inf(1)}
}
