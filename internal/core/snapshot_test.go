package core

import (
	"bytes"
	"math/rand"
	"testing"

	"srb/internal/geom"
	"srb/internal/query"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	w := newWorld(t, Options{GridM: 8})
	for i := 0; i < 120; i++ {
		w.add(uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	_, ups, err := w.mon.RegisterRange(1, geom.R(0.2, 0.2, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	_, ups, err = w.mon.RegisterKNN(2, geom.Pt(0.7, 0.7), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	_, ups, err = w.mon.RegisterKNN(3, geom.Pt(0.3, 0.8), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	w.apply(ups)
	_, cups, err := w.mon.RegisterCount(4, geom.R(0.6, 0.1, 0.9, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	w.apply(cups)
	// Churn a little so state is non-trivial.
	for step := 0; step < 200; step++ {
		id := uint64(rng.Intn(120))
		p := w.pos[id]
		w.move(id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.1), clamp01(p.Y+(rng.Float64()-0.5)*0.1)))
		got, _ := w.mon.Results(1)
		if !equalSeq(sortedCopy(got), w.bruteRange(geom.R(0.2, 0.2, 0.5, 0.5))) {
			sr, _ := w.mon.SafeRegion(id)
			t.Fatalf("churn step %d: moved %d to %v srvSR=%v clientR=%v; got %v want %v", step, id, w.pos[id], sr,
				w.safe[id], sortedCopy(got), w.bruteRange(geom.R(0.2, 0.2, 0.5, 0.5)))
		}
	}
	w.mon.SetTime(3.5)

	var buf bytes.Buffer
	if err := w.mon.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(Options{GridM: 8}, ProberFunc(func(id uint64) geom.Point { return w.pos[id] }), nil)
	if err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}
	if restored.Now() != 3.5 {
		t.Fatalf("Now = %v", restored.Now())
	}
	if restored.NumObjects() != w.mon.NumObjects() || restored.NumQueries() != w.mon.NumQueries() {
		t.Fatal("population mismatch after restore")
	}
	for _, qid := range []query.ID{1, 2, 3, 4} {
		a, _ := w.mon.Results(qid)
		b, _ := restored.Results(qid)
		if !equalSeq(a, b) {
			t.Fatalf("query %d results differ: %v vs %v", qid, a, b)
		}
		qa, _ := w.mon.Query(qid)
		qb, _ := restored.Query(qid)
		if qa.QRadius != qb.QRadius || qa.Aggregate != qb.Aggregate || qa.OrderSensitive != qb.OrderSensitive {
			t.Fatalf("query %d parameters differ", qid)
		}
	}
	for i := 0; i < 120; i++ {
		ra, _ := w.mon.SafeRegion(uint64(i))
		rb, _ := restored.SafeRegion(uint64(i))
		if ra != rb {
			t.Fatalf("object %d safe region differs: %v vs %v", i, ra, rb)
		}
	}
	// The restored monitor keeps operating correctly.
	for step := 0; step < 100; step++ {
		id := uint64(rng.Intn(120))
		p := w.pos[id]
		np := geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.1), clamp01(p.Y+(rng.Float64()-0.5)*0.1))
		w.pos[id] = np
		sr, _ := restored.SafeRegion(id)
		if !sr.Contains(np) {
			restored.Update(id, np)
		}
		got, _ := restored.Results(1)
		if !equalSeq(sortedCopy(got), w.bruteRange(geom.R(0.2, 0.2, 0.5, 0.5))) {
			orig, _ := w.mon.Results(1)
			t.Fatalf("restored monitor drifted at step %d (moved obj %d to %v, sr=%v): got %v want %v orig %v",
				step, id, np, sr, sortedCopy(got), w.bruteRange(geom.R(0.2, 0.2, 0.5, 0.5)), sortedCopy(orig))
		}
	}
}

func TestLoadSnapshotRejectsNonEmpty(t *testing.T) {
	w := newWorld(t, Options{})
	w.add(1, geom.Pt(0.5, 0.5))
	var buf bytes.Buffer
	if err := w.mon.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := w.mon.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading into a non-empty monitor must fail")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	m := New(Options{}, ProberFunc(func(uint64) geom.Point { return geom.Point{} }), nil)
	if err := m.LoadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestSnapshotEmptyMonitor(t *testing.T) {
	m := New(Options{}, ProberFunc(func(uint64) geom.Point { return geom.Point{} }), nil)
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{}, ProberFunc(func(uint64) geom.Point { return geom.Point{} }), nil)
	if err := m2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.NumObjects() != 0 || m2.NumQueries() != 0 {
		t.Fatal("empty snapshot should restore empty")
	}
}
