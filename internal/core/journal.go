package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"srb/internal/geom"
	"srb/internal/query"
)

// The update journal is the second half of crash recovery (snapshot.go holds
// the first): every mutating monitor operation is appended as one JSON line,
// including the answers of every probe the operation issued, so replaying the
// journal over the last snapshot reconstructs the monitor bit-identically —
// same safe regions, same results, same Stats. Probe answers must ride in the
// journal because a restarted server cannot re-ask a client where it was.
//
// Format: newline-delimited JSON, one JournalEntry per line, sequence numbers
// strictly increasing. A torn final line (crash mid-append) is detected and
// ignored by Replay. See DESIGN.md §11 for the recovery contract.

// Journal operation kinds.
const (
	JournalUpdate     = "update" // single location update
	JournalBatch      = "batch"  // coalesced update batch (pipeline tick)
	JournalAdd        = "add"    // object registration
	JournalRemove     = "remove" // object removal
	JournalRegister   = "reg"    // query registration
	JournalDeregister = "dereg"  // query removal
)

// Journal query kinds: the Kind field of a JournalRegister entry. The wire
// registration types map onto these in internal/remote's registrationEntry,
// and applyEntry's replay switch must handle every one — protodrift checks
// both sides, so a kind added to the writer without a replay case fails lint.
const (
	KindRange  = "range"  // axis-aligned range query
	KindCount  = "count"  // count-only range query
	KindCircle = "circle" // within-distance (circle) query
	KindKNN    = "knn"    // k-nearest-neighbor query
)

// ProbeAnswer is one recorded server-initiated probe reply.
type ProbeAnswer struct {
	ID uint64  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// BatchedUpdate is one update of a journaled batch entry, in arrival order.
type BatchedUpdate struct {
	Obj uint64  `json:"obj"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
}

// JournalEntry is one journaled monitor operation.
type JournalEntry struct {
	Seq uint64  `json:"seq"`
	T   float64 `json:"t"` // monitor clock when the op ran
	Op  string  `json:"op"`

	// Object ops (update/add/remove).
	Obj uint64  `json:"obj,omitempty"`
	X   float64 `json:"x,omitempty"`
	Y   float64 `json:"y,omitempty"`

	// Batch ops.
	Batch []BatchedUpdate `json:"batch,omitempty"`

	// Query ops.
	QID       uint64        `json:"qid,omitempty"`
	Kind      string        `json:"kind,omitempty"` // range|count|circle|knn
	MinX      float64       `json:"minx,omitempty"`
	MinY      float64       `json:"miny,omitempty"`
	MaxX      float64       `json:"maxx,omitempty"`
	MaxY      float64       `json:"maxy,omitempty"`
	K         int           `json:"k,omitempty"`
	Ordered   bool          `json:"ord,omitempty"`
	Radius    float64       `json:"radius,omitempty"`
	ProbesAns []ProbeAnswer `json:"probes,omitempty"`
}

// Journal appends monitor operations to an io.Writer as NDJSON. It is not
// safe for concurrent use; the caller serializes Begin/NoteProbe/Commit with
// the monitor operation they bracket (internal/remote does so on its event
// loop). A write error poisons the journal: every later Commit fails fast, so
// a caller cannot silently continue with a hole in the log.
type Journal struct {
	w       *bufio.Writer
	seq     uint64
	pending *JournalEntry
	err     error
}

// NewJournal creates a journal writer continuing after lastSeq (0 starts
// fresh).
func NewJournal(w io.Writer, lastSeq uint64) *Journal {
	return &Journal{w: bufio.NewWriter(w), seq: lastSeq}
}

// LastSeq returns the sequence number of the last committed entry.
func (j *Journal) LastSeq() uint64 { return j.seq }

// Err returns the sticky write error, if any.
func (j *Journal) Err() error { return j.err }

// Begin opens an entry for the operation about to run. Probe answers
// observed while the operation executes are attached via NoteProbe; Commit
// seals and writes the entry.
func (j *Journal) Begin(e JournalEntry) {
	j.pending = &e
}

// NoteProbe records one probe answer into the open entry. A probe outside
// any open entry is a bug in the caller's bracketing and is ignored.
func (j *Journal) NoteProbe(id uint64, p geom.Point) {
	if j.pending == nil {
		return
	}
	j.pending.ProbesAns = append(j.pending.ProbesAns, ProbeAnswer{ID: id, X: p.X, Y: p.Y})
}

// Abort discards the open entry, recording nothing — for operations that
// fail validation and leave the monitor untouched (e.g. a rejected query
// registration).
func (j *Journal) Abort() { j.pending = nil }

// Commit seals the open entry, assigns its sequence number, and writes it.
func (j *Journal) Commit() error {
	e := j.pending
	j.pending = nil
	if j.err != nil {
		return j.err
	}
	if e == nil {
		return nil
	}
	j.seq++
	e.Seq = j.seq
	b, err := json.Marshal(e)
	if err == nil {
		_, err = j.w.Write(append(b, '\n'))
	}
	if err == nil {
		err = j.w.Flush()
	}
	if err != nil {
		j.err = fmt.Errorf("core: journal append (seq %d): %w", e.Seq, err)
		return j.err
	}
	return nil
}

// ReplayStats summarizes one journal replay.
type ReplayStats struct {
	Entries int    // entries applied
	Skipped int    // entries at or below the snapshot's sequence number
	LastSeq uint64 // sequence number of the last entry seen
	Torn    bool   // a torn (unparseable) final line was discarded
}

// journalProber answers replayed probes from the recorded answers, a FIFO
// queue per object ID. The GLOBAL probe order may legitimately differ between
// the original run and the replay (the restored index tree has a different
// shape, so candidates enumerate differently), but the per-object order is
// invariant: each sub-operation probes an object at most once, sub-operations
// replay in the original order, and whether a given sub-operation probes a
// given object is a deterministic function of monitor state. Any probe
// without a recorded answer, or recorded answer left unused, fails the
// replay loudly.
type journalProber struct {
	answers map[uint64][]geom.Point
	left    int
	err     error
}

func newJournalProber(ans []ProbeAnswer) *journalProber {
	q := &journalProber{answers: make(map[uint64][]geom.Point, len(ans)), left: len(ans)}
	for _, a := range ans {
		q.answers[a.ID] = append(q.answers[a.ID], geom.Pt(a.X, a.Y))
	}
	return q
}

func (q *journalProber) Probe(id uint64) geom.Point {
	queue := q.answers[id]
	if len(queue) == 0 {
		if q.err == nil {
			q.err = fmt.Errorf("core: replay probed object %d with no recorded answer", id)
		}
		return geom.Point{}
	}
	p := queue[0]
	q.answers[id] = queue[1:]
	q.left--
	return p
}

// ReplayJournal applies the journal entries with Seq > fromSeq to m,
// answering probes from the recorded answers. The monitor's prober is
// swapped for the duration and restored afterwards. Replay is strictly
// sequential, so by the pipeline determinism contract a journaled batch is
// applied as its equivalent ascending-object-ID update sequence. A torn
// final line (crash mid-append) is discarded; a torn or out-of-order line
// anywhere else is an error.
func ReplayJournal(r io.Reader, m *Monitor, fromSeq uint64) (ReplayStats, error) {
	var rs ReplayStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 16<<20)
	prevSeq := uint64(0)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Only the final line may be torn; peek for more content.
			if sc.Scan() {
				return rs, fmt.Errorf("core: journal line after seq %d unparseable: %v", prevSeq, err)
			}
			rs.Torn = true
			break
		}
		if e.Seq <= prevSeq {
			return rs, fmt.Errorf("core: journal seq %d after %d: not strictly increasing", e.Seq, prevSeq)
		}
		prevSeq = e.Seq
		rs.LastSeq = e.Seq
		if e.Seq <= fromSeq {
			rs.Skipped++
			continue
		}
		if err := applyEntry(m, &e); err != nil {
			return rs, fmt.Errorf("core: replay seq %d (%s): %w", e.Seq, e.Op, err)
		}
		rs.Entries++
	}
	if err := sc.Err(); err != nil {
		return rs, fmt.Errorf("core: read journal: %w", err)
	}
	return rs, nil
}

func applyEntry(m *Monitor, e *JournalEntry) error {
	qp := newJournalProber(e.ProbesAns)
	orig := m.prober
	m.prober = qp
	defer func() { m.prober = orig }()
	m.SetTime(e.T)
	switch e.Op {
	case JournalUpdate:
		m.Update(e.Obj, geom.Pt(e.X, e.Y))
	case JournalBatch:
		// Ascending object ID, stable among duplicates: the exact application
		// order of internal/parallel.Pipeline.
		ups := append([]BatchedUpdate(nil), e.Batch...)
		sort.SliceStable(ups, func(a, b int) bool { return ups[a].Obj < ups[b].Obj })
		for i := range ups {
			m.Update(ups[i].Obj, geom.Pt(ups[i].X, ups[i].Y))
		}
	case JournalAdd:
		m.AddObject(e.Obj, geom.Pt(e.X, e.Y))
	case JournalRemove:
		m.RemoveObject(e.Obj)
	case JournalRegister:
		var err error
		qid := query.ID(e.QID)
		rect := geom.Rect{MinX: e.MinX, MinY: e.MinY, MaxX: e.MaxX, MaxY: e.MaxY}
		switch e.Kind {
		case KindRange:
			_, _, err = m.RegisterRange(qid, rect)
		case KindCount:
			_, _, err = m.RegisterCount(qid, rect)
		case KindCircle:
			_, _, err = m.RegisterWithinDistance(qid, geom.Pt(e.X, e.Y), e.Radius)
		case KindKNN:
			_, _, err = m.RegisterKNN(qid, geom.Pt(e.X, e.Y), e.K, e.Ordered)
		default:
			err = fmt.Errorf("unknown query kind %q", e.Kind)
		}
		if err != nil {
			return err
		}
	case JournalDeregister:
		m.Deregister(query.ID(e.QID))
	default:
		return fmt.Errorf("unknown op %q", e.Op)
	}
	if qp.err != nil {
		return qp.err
	}
	if qp.left != 0 {
		return fmt.Errorf("%d recorded probe answers unused: replay diverged", qp.left)
	}
	return nil
}
