package core

import (
	"strconv"
	"time"

	"srb/internal/obs"
	"srb/internal/query"
)

// monObs holds the Monitor's bound instruments. The Monitor keeps a nil
// *monObs when uninstrumented, so every hook on the hot path is one branch;
// with a sink attached, counters mirror the Stats work counters (folded in
// as per-operation deltas), op latencies land in per-kind histograms, and
// decision-level events (probe issued/avoided, kNN case taken, safe-region
// shrink) stream into the tracer.
type monObs struct {
	tr *obs.Tracer

	updates       *obs.Counter
	probes        *obs.Counter
	probesAvoided *obs.Counter
	virtualProbes *obs.Counter
	reevals       *obs.Counter
	fullReevals   *obs.Counter
	newQueryEvals *obs.Counter
	safeRegions   *obs.Counter
	resultChanges *obs.Counter
	knnCase       [3]*obs.Counter

	updSeconds *obs.Histogram
	addSeconds *obs.Histogram
	remSeconds *obs.Histogram
	regSeconds *obs.Histogram

	objects *obs.Gauge
	queries *obs.Gauge
}

// SetObs attaches an observability sink to the monitor (nil detaches). Must
// be called while no operation is in flight — in practice right after New,
// or from whatever serializes monitor access. Instrument registration is
// idempotent per registry, so several monitors may share one sink only if
// they are alternatives, not concurrent (their counters would merge).
func (m *Monitor) SetObs(sink *obs.Sink) {
	if sink == nil || (sink.Registry() == nil && sink.Tracer() == nil) {
		m.mobs = nil
		return
	}
	r := sink.Registry()
	o := &monObs{tr: sink.Tracer()}
	o.updates = r.Counter("srb_updates_total", "Client-initiated location updates processed.")
	o.probes = r.Counter("srb_probes_total", "Server-initiated probes issued.")
	o.probesAvoided = r.Counter("srb_probes_avoided_total", "Ambiguities resolved without a probe (lazy probing and reachability circle).")
	o.virtualProbes = r.Counter("srb_virtual_probes_total", "Reachability-circle safe-region shrinks (virtual probes, §6.1).")
	o.reevals = r.Counter("srb_reevaluations_total", "Incremental query reevaluations.")
	o.fullReevals = r.Counter("srb_full_reevaluations_total", "Reevaluations that fell back to from-scratch evaluation.")
	o.newQueryEvals = r.Counter("srb_new_query_evals_total", "From-scratch evaluations of newly registered queries.")
	o.safeRegions = r.Counter("srb_safe_regions_built_total", "Full safe-region computations.")
	o.resultChanges = r.Counter("srb_result_changes_total", "Result updates pushed to application servers.")
	for i := range o.knnCase {
		o.knnCase[i] = r.Counter("srb_knn_case_total", "Incremental kNN reevaluations by §4.3 case taken.",
			"case", strconv.Itoa(i+1))
	}
	help := "Monitor operation latency by operation kind."
	o.updSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "update")
	o.addSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "add")
	o.remSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "remove")
	o.regSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "register")
	o.objects = r.Gauge("srb_objects", "Registered moving objects.")
	o.queries = r.Gauge("srb_queries", "Registered continuous queries.")
	m.mobs = o
}

// obsStart snapshots the clock and the work counters at the head of an
// instrumented operation. Callers guard with `if m.mobs != nil`.
func (m *Monitor) obsStart() (time.Time, Stats) {
	// Latency instrumentation only: the timestamp never reaches results,
	// journal, snapshot or wire output.
	return time.Now(), m.stats //lint:allow wallclock latency instrumentation, never in output
}

// done closes an instrumented operation: observe its latency, fold the Stats
// deltas into the registry counters, refresh the population gauges, and emit
// a trace span carrying the operation's probe/reevaluation cost.
func (o *monObs) done(m *Monitor, op string, h *obs.Histogram, start time.Time, before Stats) {
	h.ObserveSince(start)
	d := m.stats
	o.updates.Add(d.SourceUpdates - before.SourceUpdates)
	o.probes.Add(d.Probes - before.Probes)
	o.probesAvoided.Add(d.ProbesAvoided - before.ProbesAvoided)
	o.virtualProbes.Add(d.VirtualProbes - before.VirtualProbes)
	o.reevals.Add(d.Reevaluations - before.Reevaluations)
	o.fullReevals.Add(d.FullReevals - before.FullReevals)
	o.newQueryEvals.Add(d.NewQueryEvals - before.NewQueryEvals)
	o.safeRegions.Add(d.SafeRegionsBuilt - before.SafeRegionsBuilt)
	o.resultChanges.Add(d.ResultChanges - before.ResultChanges)
	o.objects.Set(float64(len(m.objects)))
	o.queries.Set(float64(len(m.queries)))
	o.tr.Span("core", op, start,
		"probes", d.Probes-before.Probes,
		"reevals", d.Reevaluations-before.Reevaluations)
}

// noteProbe emits the decision-level probe event (the counter is folded in
// at operation end from the Stats delta).
func (m *Monitor) noteProbe(id uint64) {
	if m.mobs != nil {
		m.mobs.tr.Instant("core", "probe", "obj", int64(id), "", 0)
	}
}

// noteProbeAvoided counts an ambiguity resolved without a real probe and
// emits its trace marker.
func (m *Monitor) noteProbeAvoided(id uint64) {
	m.stats.ProbesAvoided++
	if m.mobs != nil {
		m.mobs.tr.Instant("core", "probe-avoided", "obj", int64(id), "", 0)
	}
}

// noteShrink emits the safe-region shrink event of a reachability-circle
// virtual probe; the event name carries the shrink reason.
func (m *Monitor) noteShrink(id uint64) {
	if m.mobs != nil {
		m.mobs.tr.Instant("core", "sr-shrink-reachability", "obj", int64(id), "", 0)
	}
}

// noteKNNCase records which §4.3 incremental case an order-sensitive kNN
// reevaluation took (1 = leave, 2 = enter, 3 = reorder).
func (m *Monitor) noteKNNCase(q *query.Query, c int) {
	if m.mobs != nil {
		m.mobs.knnCase[c-1].Inc()
		m.mobs.tr.Instant("core", "knn-case", "case", int64(c), "query", int64(q.ID))
	}
}

// noteFastPath counts a batch fast-path update (ApplyPlanned): the replayed
// effect sequence advances SourceUpdates and SafeRegionsBuilt without going
// through an instrumented op wrapper, so the two counters are bumped
// directly; population is unchanged and no probes or reevaluations happen on
// this path by construction.
func (m *Monitor) noteFastPath() {
	if m.mobs != nil {
		m.mobs.updates.Inc()
		m.mobs.safeRegions.Inc()
	}
}
