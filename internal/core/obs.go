package core

import (
	"strconv"
	"time"

	"srb/internal/obs"
	"srb/internal/query"
)

// monObs holds the Monitor's bound instruments. The Monitor keeps a nil
// *monObs when uninstrumented, so every hook on the hot path is one branch;
// with a sink attached, counters mirror the Stats work counters (folded in
// as per-operation deltas), op latencies land in per-kind histograms, and
// decision-level events (probe issued/avoided, kNN case taken, safe-region
// shrink) stream into the tracer.
type monObs struct {
	tr *obs.Tracer
	lg *ledger

	updates       *obs.Counter
	probes        *obs.Counter
	probesAvoided *obs.Counter
	virtualProbes *obs.Counter
	reevals       *obs.Counter
	fullReevals   *obs.Counter
	newQueryEvals *obs.Counter
	safeRegions   *obs.Counter
	resultChanges *obs.Counter
	knnCase       [3]*obs.Counter

	updSeconds *obs.Histogram
	addSeconds *obs.Histogram
	remSeconds *obs.Histogram
	regSeconds *obs.Histogram

	objects *obs.Gauge
	queries *obs.Gauge

	qTracked   *obs.Gauge
	qRetired   *obs.Counter
	qWireBytes *obs.Counter
	qSlowOps   *obs.Counter
}

// SetObs attaches an observability sink to the monitor (nil detaches). Must
// be called while no operation is in flight — in practice right after New,
// or from whatever serializes monitor access. Instrument registration is
// idempotent per registry, so several monitors may share one sink only if
// they are alternatives, not concurrent (their counters would merge).
func (m *Monitor) SetObs(sink *obs.Sink) {
	if sink == nil || (sink.Registry() == nil && sink.Tracer() == nil) {
		m.mobs = nil
		return
	}
	r := sink.Registry()
	o := &monObs{tr: sink.Tracer()}
	o.updates = r.Counter("srb_updates_total", "Client-initiated location updates processed.")
	o.probes = r.Counter("srb_probes_total", "Server-initiated probes issued.")
	o.probesAvoided = r.Counter("srb_probes_avoided_total", "Ambiguities resolved without a probe (lazy probing and reachability circle).")
	o.virtualProbes = r.Counter("srb_virtual_probes_total", "Reachability-circle safe-region shrinks (virtual probes, §6.1).")
	o.reevals = r.Counter("srb_reevaluations_total", "Incremental query reevaluations.")
	o.fullReevals = r.Counter("srb_full_reevaluations_total", "Reevaluations that fell back to from-scratch evaluation.")
	o.newQueryEvals = r.Counter("srb_new_query_evals_total", "From-scratch evaluations of newly registered queries.")
	o.safeRegions = r.Counter("srb_safe_regions_built_total", "Full safe-region computations.")
	o.resultChanges = r.Counter("srb_result_changes_total", "Result updates pushed to application servers.")
	for i := range o.knnCase {
		o.knnCase[i] = r.Counter("srb_knn_case_total", "Incremental kNN reevaluations by §4.3 case taken.",
			"case", strconv.Itoa(i+1))
	}
	help := "Monitor operation latency by operation kind."
	o.updSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "update")
	o.addSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "add")
	o.remSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "remove")
	o.regSeconds = r.Histogram("srb_op_seconds", help, obs.LatencyBuckets(), "op", "register")
	o.objects = r.Gauge("srb_objects", "Registered moving objects.")
	o.queries = r.Gauge("srb_queries", "Registered continuous queries.")
	o.qTracked = r.Gauge("srb_query_tracked", "Queries tracked in the per-query cost ledger.")
	o.qRetired = r.Counter("srb_query_retired_total", "Ledger entries folded into the retired aggregate on deregistration.")
	o.qWireBytes = r.Counter("srb_query_wire_bytes_total", "Estimated wire bytes attributed by the per-query ledger (probes, grants, result pushes).")
	o.qSlowOps = r.Counter("srb_query_slow_ops_total", "Monitor operations at or over the slow-op threshold.")
	o.lg = newLedger(m)
	m.mobs = o
}

// SetFlightRecorder attaches a black-box flight recorder; slow operations are
// recorded into it (and dumped by whoever owns the recorder's triggers). A
// nil recorder detaches.
func (m *Monitor) SetFlightRecorder(fr *obs.FlightRecorder) { m.flight = fr }

// SetOpTrace sets the causal trace ID the next operations run under; the
// server event loop sets it per dispatched wire op (0 clears). The ID tags
// the operation's trace spans, probe/shrink instants, slow-op records, and
// flight-recorder events, tying server-side work back to the client update
// that caused it.
func (m *Monitor) SetOpTrace(tr uint64) { m.opTrace = tr }

// obsStart snapshots the clock and the work counters at the head of an
// instrumented operation. Callers guard with `if m.mobs != nil`.
func (m *Monitor) obsStart() (time.Time, Stats) {
	// Latency instrumentation only: the timestamp never reaches results,
	// journal, snapshot or wire output.
	return time.Now(), m.stats //lint:allow wallclock latency instrumentation, never in output
}

// done closes an instrumented operation: observe its latency, fold the Stats
// deltas into the registry counters, refresh the population gauges, emit a
// trace span carrying the operation's probe/reevaluation cost, detect slow
// operations, and clear the ledger's per-op attribution context.
func (o *monObs) done(m *Monitor, op string, h *obs.Histogram, start time.Time, before Stats) {
	dur := time.Since(start) //lint:allow wallclock latency instrumentation, never in output
	h.Observe(dur.Seconds())
	d := m.stats
	o.updates.Add(d.SourceUpdates - before.SourceUpdates)
	o.probes.Add(d.Probes - before.Probes)
	o.probesAvoided.Add(d.ProbesAvoided - before.ProbesAvoided)
	o.virtualProbes.Add(d.VirtualProbes - before.VirtualProbes)
	o.reevals.Add(d.Reevaluations - before.Reevaluations)
	o.fullReevals.Add(d.FullReevals - before.FullReevals)
	o.newQueryEvals.Add(d.NewQueryEvals - before.NewQueryEvals)
	o.safeRegions.Add(d.SafeRegionsBuilt - before.SafeRegionsBuilt)
	o.resultChanges.Add(d.ResultChanges - before.ResultChanges)
	o.objects.Set(float64(len(m.objects)))
	o.queries.Set(float64(len(m.queries)))
	o.qTracked.Set(float64(len(o.lg.entries)))
	o.qWireBytes.Add(o.lg.wireTotal - o.lg.wireFolded)
	o.lg.wireFolded = o.lg.wireTotal
	o.qRetired.Add(o.lg.retiredN - o.lg.retiredFolded)
	o.lg.retiredFolded = o.lg.retiredN
	o.tr.SpanTr("core", op, m.opTrace, start,
		"probes", d.Probes-before.Probes,
		"reevals", d.Reevaluations-before.Reevaluations)
	if m.slowThresh > 0 && dur >= m.slowThresh {
		o.qSlowOps.Inc()
		if m.slowW != nil {
			m.writeSlowOp(op, dur, d, before)
		}
		m.flight.Record(obs.FlightEvent{
			Kind: obs.FlightSlowOp, Trace: m.opTrace,
			DurNS: dur.Nanoseconds(), Note: op,
		})
	}
	o.lg.opEnd()
}

// noteProbe emits the decision-level probe event (the counter is folded in
// at operation end from the Stats delta) and bills it to the focused query.
func (m *Monitor) noteProbe(id uint64) {
	if m.mobs != nil {
		m.mobs.tr.InstantTr("core", "probe", m.opTrace, "obj", int64(id), "", 0)
		m.mobs.lg.noteProbe(id)
	}
}

// noteProbeAvoided counts an ambiguity resolved without a real probe and
// emits its trace marker.
func (m *Monitor) noteProbeAvoided(id uint64) {
	m.stats.ProbesAvoided++
	if m.mobs != nil {
		m.mobs.tr.InstantTr("core", "probe-avoided", m.opTrace, "obj", int64(id), "", 0)
		m.mobs.lg.noteProbeAvoided()
	}
}

// noteShrink emits the safe-region shrink event of a reachability-circle
// virtual probe; the event name carries the shrink reason.
func (m *Monitor) noteShrink(id uint64) {
	if m.mobs != nil {
		m.mobs.tr.InstantTr("core", "sr-shrink-reachability", m.opTrace, "obj", int64(id), "", 0)
		m.mobs.lg.noteShrink(id)
	}
}

// noteKNNCase records which §4.3 incremental case an order-sensitive kNN
// reevaluation took (1 = leave, 2 = enter, 3 = reorder).
func (m *Monitor) noteKNNCase(q *query.Query, c int) {
	if m.mobs != nil {
		m.mobs.knnCase[c-1].Inc()
		m.mobs.tr.InstantTr("core", "knn-case", m.opTrace, "case", int64(c), "query", int64(q.ID))
		m.mobs.lg.noteKNNCase(q, c)
	}
}

// noteFastPath counts a batch fast-path update (ApplyPlanned): the replayed
// effect sequence advances SourceUpdates and SafeRegionsBuilt without going
// through an instrumented op wrapper, so the two counters are bumped
// directly; population is unchanged and no probes or reevaluations happen on
// this path by construction. The ledger books the same sequence (plus the
// single region grant) against its Unattributed bucket.
func (m *Monitor) noteFastPath() {
	if m.mobs != nil {
		m.mobs.updates.Inc()
		m.mobs.safeRegions.Inc()
		m.mobs.lg.noteFastPath()
	}
}
