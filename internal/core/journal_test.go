package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"srb/internal/geom"
)

// journaledRun drives a monitor through a randomized workload while
// journaling every op the way internal/remote does: Begin, execute (probes
// recorded by the prober hook), Commit. It snapshots mid-run and returns
// everything a recovery needs.
type journaledRun struct {
	mon     *Monitor
	journal *Journal
	logBuf  *bytes.Buffer
	pos     map[uint64]geom.Point
	now     float64

	midSnap bytes.Buffer
	midSeq  uint64
}

func newJournaledRun(t *testing.T, seed int64) *journaledRun {
	t.Helper()
	r := &journaledRun{logBuf: &bytes.Buffer{}, pos: map[uint64]geom.Point{}}
	r.journal = NewJournal(r.logBuf, 0)
	prober := ProberFunc(func(id uint64) geom.Point {
		p := r.pos[id]
		r.journal.NoteProbe(id, p)
		return p
	})
	r.mon = New(Options{GridM: 8}, prober, nil)
	return r
}

func (r *journaledRun) do(t *testing.T, e JournalEntry, op func()) {
	t.Helper()
	r.now += 0.01
	e.T = r.now
	r.mon.SetTime(r.now)
	r.journal.Begin(e)
	op()
	if err := r.journal.Commit(); err != nil {
		t.Fatal(err)
	}
}

func (r *journaledRun) add(t *testing.T, id uint64, p geom.Point) {
	r.pos[id] = p
	r.do(t, JournalEntry{Op: JournalAdd, Obj: id, X: p.X, Y: p.Y}, func() { r.mon.AddObject(id, p) })
}

func (r *journaledRun) update(t *testing.T, id uint64, p geom.Point) {
	r.pos[id] = p
	r.do(t, JournalEntry{Op: JournalUpdate, Obj: id, X: p.X, Y: p.Y}, func() { r.mon.Update(id, p) })
}

// batch applies a coalesced update batch the way the server pipeline does:
// journaled in arrival order, applied in ascending-object-ID stable order
// (the pipeline determinism contract).
func (r *journaledRun) batch(t *testing.T, ups []BatchedUpdate) {
	ordered := append([]BatchedUpdate(nil), ups...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Obj < ordered[b].Obj })
	r.do(t, JournalEntry{Op: JournalBatch, Batch: ups}, func() {
		for _, u := range ordered {
			r.pos[u.Obj] = geom.Pt(u.X, u.Y)
			r.mon.Update(u.Obj, geom.Pt(u.X, u.Y))
		}
	})
}

func TestJournalReplayBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1905))
	r := newJournaledRun(t, 1905)

	for i := 0; i < 80; i++ {
		r.add(t, uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	r.do(t, JournalEntry{Op: JournalRegister, QID: 1, Kind: "range", MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}, func() {
		if _, _, err := r.mon.RegisterRange(1, geom.R(0.2, 0.2, 0.6, 0.6)); err != nil {
			t.Fatal(err)
		}
	})
	r.do(t, JournalEntry{Op: JournalRegister, QID: 2, Kind: "knn", X: 0.7, Y: 0.7, K: 5, Ordered: true}, func() {
		if _, _, err := r.mon.RegisterKNN(2, geom.Pt(0.7, 0.7), 5, true); err != nil {
			t.Fatal(err)
		}
	})
	r.do(t, JournalEntry{Op: JournalRegister, QID: 3, Kind: "circle", X: 0.4, Y: 0.8, Radius: 0.2}, func() {
		if _, _, err := r.mon.RegisterWithinDistance(3, geom.Pt(0.4, 0.8), 0.2); err != nil {
			t.Fatal(err)
		}
	})
	r.do(t, JournalEntry{Op: JournalRegister, QID: 4, Kind: "count", MinX: 0.5, MinY: 0.1, MaxX: 0.9, MaxY: 0.5}, func() {
		if _, _, err := r.mon.RegisterCount(4, geom.R(0.5, 0.1, 0.9, 0.5)); err != nil {
			t.Fatal(err)
		}
	})

	nextID := uint64(80)
	for step := 0; step < 400; step++ {
		switch k := rng.Intn(20); {
		case k == 0: // object churn: add
			id := nextID
			nextID++
			r.add(t, id, geom.Pt(rng.Float64(), rng.Float64()))
		case k == 1: // object churn: remove a random live object
			ids := make([]uint64, 0, len(r.pos))
			for id := range r.pos {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			id := ids[rng.Intn(len(ids))]
			delete(r.pos, id)
			r.do(t, JournalEntry{Op: JournalRemove, Obj: id}, func() { r.mon.RemoveObject(id) })
		case k == 2: // query churn: deregister and re-register the range query
			r.do(t, JournalEntry{Op: JournalDeregister, QID: 1}, func() { r.mon.Deregister(1) })
			r.do(t, JournalEntry{Op: JournalRegister, QID: 1, Kind: "range", MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}, func() {
				if _, _, err := r.mon.RegisterRange(1, geom.R(0.2, 0.2, 0.6, 0.6)); err != nil {
					t.Fatal(err)
				}
			})
		case k < 7: // coalesced batch of 2..6 updates, duplicates allowed
			n := 2 + rng.Intn(5)
			ups := make([]BatchedUpdate, 0, n)
			for i := 0; i < n; i++ {
				ids := make([]uint64, 0, len(r.pos))
				for id := range r.pos {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
				id := ids[rng.Intn(len(ids))]
				ups = append(ups, BatchedUpdate{Obj: id, X: rng.Float64(), Y: rng.Float64()})
			}
			r.batch(t, ups)
		default: // single update, random walk
			ids := make([]uint64, 0, len(r.pos))
			for id := range r.pos {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			id := ids[rng.Intn(len(ids))]
			p := r.pos[id]
			r.update(t, id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.15), clamp01(p.Y+(rng.Float64()-0.5)*0.15)))
		}
		if step == 200 { // mid-run snapshot, as the periodic snapshotter would
			if err := r.mon.SaveSnapshot(&r.midSnap); err != nil {
				t.Fatal(err)
			}
			r.midSeq = r.journal.LastSeq()
		}
	}

	var want bytes.Buffer
	if err := r.mon.SaveSnapshot(&want); err != nil {
		t.Fatal(err)
	}

	// Recover: last snapshot + journal suffix. The prober must never be
	// consulted — every probe answer is in the journal.
	recovered := New(Options{GridM: 8}, ProberFunc(func(id uint64) geom.Point {
		t.Fatalf("recovery probed object %d live", id)
		return geom.Point{}
	}), nil)
	if err := recovered.LoadSnapshot(bytes.NewReader(r.midSnap.Bytes())); err != nil {
		t.Fatal(err)
	}
	rs, err := ReplayJournal(bytes.NewReader(r.logBuf.Bytes()), recovered, r.midSeq)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Skipped == 0 || rs.Entries == 0 || rs.Torn {
		t.Fatalf("replay stats %+v: want skipped prefix and applied suffix", rs)
	}
	if err := recovered.CheckInvariants(); err != nil {
		t.Fatalf("recovered invariants: %v", err)
	}
	if recovered.Stats() != r.mon.Stats() {
		t.Fatalf("Stats diverged:\nrecovered %+v\noriginal  %+v", recovered.Stats(), r.mon.Stats())
	}
	var got bytes.Buffer
	if err := recovered.SaveSnapshot(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered monitor state is not bit-identical to the uninterrupted run")
	}
	// Semantic spot check: the recovered range result matches brute force.
	gotRes, _ := recovered.Results(1)
	var truth []uint64
	for id, p := range r.pos {
		if geom.R(0.2, 0.2, 0.6, 0.6).Contains(p) {
			truth = append(truth, id)
		}
	}
	sort.Slice(truth, func(i, j int) bool { return truth[i] < truth[j] })
	if !equalSeq(sortedCopy(gotRes), truth) {
		t.Fatalf("recovered range result %v, brute force %v", sortedCopy(gotRes), truth)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	r := newJournaledRun(t, 7)
	for i := 0; i < 10; i++ {
		r.add(t, uint64(i), geom.Pt(0.1*float64(i), 0.5))
	}
	var want bytes.Buffer
	if err := r.mon.SaveSnapshot(&want); err != nil {
		t.Fatal(err)
	}
	log := append([]byte(nil), r.logBuf.Bytes()...)
	log = append(log, []byte(`{"seq":11,"t":0.2,"op":"upd`)...) // crash mid-append

	m := New(Options{GridM: 8}, ProberFunc(func(uint64) geom.Point { return geom.Point{} }), nil)
	rs, err := ReplayJournal(bytes.NewReader(log), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Torn || rs.Entries != 10 {
		t.Fatalf("replay stats %+v: want 10 entries and a torn tail", rs)
	}
	var got bytes.Buffer
	if err := m.SaveSnapshot(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("torn-tail replay diverged")
	}
}

func TestJournalRejectsCorruptionMidStream(t *testing.T) {
	r := newJournaledRun(t, 8)
	for i := 0; i < 5; i++ {
		r.add(t, uint64(i), geom.Pt(0.2, 0.2))
	}
	lines := bytes.Split(bytes.TrimSuffix(r.logBuf.Bytes(), []byte("\n")), []byte("\n"))
	lines[2] = []byte(`{"seq":3,"op"`) // torn line that is NOT the tail
	log := append(bytes.Join(lines, []byte("\n")), '\n')
	m := New(Options{GridM: 8}, ProberFunc(func(uint64) geom.Point { return geom.Point{} }), nil)
	if _, err := ReplayJournal(bytes.NewReader(log), m, 0); err == nil {
		t.Fatal("mid-stream corruption must fail replay")
	}

	// Out-of-order sequence numbers must also fail.
	r2 := newJournaledRun(t, 9)
	for i := 0; i < 3; i++ {
		r2.add(t, uint64(i), geom.Pt(0.3, 0.3))
	}
	lines = bytes.Split(bytes.TrimSuffix(r2.logBuf.Bytes(), []byte("\n")), []byte("\n"))
	lines[1], lines[2] = lines[2], lines[1]
	log = append(bytes.Join(lines, []byte("\n")), '\n')
	m2 := New(Options{GridM: 8}, ProberFunc(func(uint64) geom.Point { return geom.Point{} }), nil)
	if _, err := ReplayJournal(bytes.NewReader(log), m2, 0); err == nil {
		t.Fatal("out-of-order journal must fail replay")
	}
}
