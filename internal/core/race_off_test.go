//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build; the
// allocation-bound assertions are meaningless under its inflated counts.
const raceEnabled = false
