package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
)

// sumLedger folds every ledger bucket — per-query entries, Unattributed,
// Retired — into one total, the left-hand side of the sum invariant.
func sumLedger(m *Monitor) QueryCost {
	var sum QueryCost
	for _, e := range m.QueryCosts() {
		sum.add(&e)
	}
	u := m.UnattributedCost()
	sum.add(&u)
	r := m.RetiredCost()
	sum.add(&r)
	return sum
}

// checkLedgerMirrorsCounters asserts the sum invariant against the global
// registry counters for every mirrored family.
func checkLedgerMirrorsCounters(t *testing.T, m *Monitor, r *obs.Registry) {
	t.Helper()
	sum := sumLedger(m)
	for _, tc := range []struct {
		name string
		got  int64
	}{
		{"srb_updates_total", sum.Updates},
		{"srb_probes_total", sum.Probes},
		{"srb_probes_avoided_total", sum.ProbesAvoided},
		{"srb_virtual_probes_total", sum.Shrinks},
		{"srb_reevaluations_total", sum.Reevals},
		{"srb_full_reevaluations_total", sum.FullReevals},
		{"srb_new_query_evals_total", sum.NewQueryEvals},
		{"srb_safe_regions_built_total", sum.SafeRegions},
		{"srb_result_changes_total", sum.ResultChanges},
	} {
		if want := r.Counter(tc.name, "").Value(); tc.got != want {
			t.Errorf("ledger sum %d != global counter %s %d", tc.got, tc.name, want)
		}
	}
	for i, got := range []int64{sum.KNNCase1, sum.KNNCase2, sum.KNNCase3} {
		name := string(rune('1' + i))
		if want := r.Counter("srb_knn_case_total", "", "case", name).Value(); got != want {
			t.Errorf("ledger kNN case %s sum %d != counter %d", name, got, want)
		}
	}
}

// driveLedgerWorkload is driveObsWorkload plus advancing logical time so the
// reachability circle (MaxSpeed worlds) produces virtual probes, exercising
// the shrink-attribution path too.
func driveLedgerWorkload(t *testing.T, w *world) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	now := 0.0
	tick := func() {
		now += 0.05
		w.mon.SetTime(now)
	}
	for i := 0; i < 60; i++ {
		tick()
		w.add(uint64(i), geom.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	if _, _, err := w.mon.RegisterRange(1, geom.R(10, 10, 60, 60)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterKNN(2, geom.Pt(50, 50), 5, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterWithinDistance(3, geom.Pt(30, 70), 15); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.mon.RegisterCount(4, geom.R(0, 0, 40, 40)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tick()
		id := uint64(rng.Intn(60))
		p := w.pos[id]
		w.move(id, geom.Pt(p.X+rng.Float64()*20-10, p.Y+rng.Float64()*20-10))
	}
	w.mon.RemoveObject(5)
	w.mon.Deregister(4)
}

// TestLedgerSumsToGlobalCounters is the sequential-path differential test:
// after a mixed workload with object and query churn, the per-query ledger
// (entries + Unattributed + Retired) sums exactly to every global obs counter.
func TestLedgerSumsToGlobalCounters(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"base", Options{GridM: 10, Space: geom.R(0, 0, 100, 100)}},
		{"reachability", Options{GridM: 10, Space: geom.R(0, 0, 100, 100), MaxSpeed: 30}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			sink := obs.NewSink(reg, obs.NewTracer(obs.DefaultTraceDepth))
			w := newWorld(t, tc.opt)
			w.mon.SetObs(sink)
			driveLedgerWorkload(t, w)

			checkLedgerMirrorsCounters(t, w.mon, reg)

			// The workload must actually attribute work: at least the range and
			// kNN queries saw reevaluations, and the retired COUNT query's work
			// survived deregistration in the Retired aggregate.
			costs := w.mon.QueryCosts()
			if len(costs) != 3 {
				t.Fatalf("got %d ledger entries, want 3 live queries", len(costs))
			}
			var attributed int64
			for _, c := range costs {
				attributed += c.Reevals
				if c.Kind == "" {
					t.Errorf("query %d: ledger entry has no kind", c.Query)
				}
			}
			if attributed == 0 {
				t.Fatal("no reevaluations attributed to any query")
			}
			if w.mon.RetiredQueries() != 1 {
				t.Fatalf("RetiredQueries = %d, want 1 (the deregistered COUNT query)", w.mon.RetiredQueries())
			}
			if rc := w.mon.RetiredCost(); rc.NewQueryEvals != 1 {
				t.Errorf("retired aggregate NewQueryEvals = %d, want 1", rc.NewQueryEvals)
			}
			if u := w.mon.UnattributedCost(); u.Updates == 0 || u.SafeRegions == 0 || u.Grants == 0 {
				t.Errorf("unattributed bucket missing the updates' own work: %+v", u)
			}
			if tc.opt.MaxSpeed > 0 && sumLedger(w.mon).Shrinks == 0 {
				t.Error("reachability world produced no virtual probes to attribute")
			}

			// Wire-byte accounting is internally consistent: the registry
			// counter carries what the ledger accumulated.
			if got, want := reg.Counter("srb_query_wire_bytes_total", "").Value(), sumLedger(w.mon).WireBytes; got != want {
				t.Errorf("srb_query_wire_bytes_total = %d, ledger sum %d", got, want)
			}
			if got := reg.Counter("srb_query_retired_total", "").Value(); got != 1 {
				t.Errorf("srb_query_retired_total = %d, want 1", got)
			}
		})
	}
}

// TestLedgerNilSinkNeutral pins that ledger views are empty and harmless
// without a sink, and that the instrumented run's Stats stay bit-identical to
// the plain run (extending the PR 4 neutrality contract to the ledger).
func TestLedgerNilSinkNeutral(t *testing.T) {
	plain := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100), MaxSpeed: 30})
	driveLedgerWorkload(t, plain)

	inst := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100), MaxSpeed: 30})
	inst.mon.SetObs(obs.NewSink(obs.NewRegistry(), obs.NewTracer(256)))
	driveLedgerWorkload(t, inst)

	if plain.mon.Stats() != inst.mon.Stats() {
		t.Fatalf("ledger instrumentation changed behavior:\nplain = %+v\ninst  = %+v",
			plain.mon.Stats(), inst.mon.Stats())
	}
	if plain.mon.QueryCosts() != nil {
		t.Error("QueryCosts must be nil without a sink")
	}
	if plain.mon.HotQueries(3) != nil {
		t.Error("HotQueries must be nil without a sink")
	}
	if (plain.mon.UnattributedCost() != QueryCost{}) || (plain.mon.RetiredCost() != QueryCost{}) {
		t.Error("cost buckets must read zero without a sink")
	}
}

// TestLedgerHotQueries pins the top-K view: ordering by Score descending,
// deterministic tie-break by query ID, truncation to k.
func TestLedgerHotQueries(t *testing.T) {
	reg := obs.NewRegistry()
	w := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100)})
	w.mon.SetObs(obs.NewSink(reg, nil))
	driveLedgerWorkload(t, w)

	hot := w.mon.HotQueries(2)
	if len(hot) != 2 {
		t.Fatalf("HotQueries(2) returned %d entries", len(hot))
	}
	if hot[0].Score() < hot[1].Score() {
		t.Fatalf("hot queries not sorted: %d then %d", hot[0].Score(), hot[1].Score())
	}
	all := w.mon.HotQueries(100)
	if len(all) != 3 {
		t.Fatalf("HotQueries(100) returned %d, want all 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		si, sj := all[i-1].Score(), all[i].Score()
		if si < sj || (si == sj && all[i-1].Query >= all[i].Query) {
			t.Fatalf("ordering violated at %d: (%d,%d) then (%d,%d)",
				i, all[i-1].Query, si, all[i].Query, sj)
		}
	}
}

// TestLedgerSlowOpLog drives with a zero-distance threshold so every
// instrumented op is "slow", then checks the NDJSON records and the flight
// recorder's slow-op events.
func TestLedgerSlowOpLog(t *testing.T) {
	reg := obs.NewRegistry()
	w := newWorld(t, Options{GridM: 10, Space: geom.R(0, 0, 100, 100)})
	w.mon.SetObs(obs.NewSink(reg, nil))
	var buf bytes.Buffer
	w.mon.SetSlowOpLog(time.Nanosecond, &buf)
	fr := obs.NewFlightRecorder(128, t.TempDir())
	defer fr.Close()
	w.mon.SetFlightRecorder(fr)
	w.mon.SetOpTrace(7777)
	driveLedgerWorkload(t, w)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 66 {
		t.Fatalf("slow-op log has %d lines; every op should be over a 1ns threshold", len(lines))
	}
	ops := map[string]bool{}
	var sawChain, sawTrace bool
	for _, line := range lines {
		var rec struct {
			TS     int64      `json:"ts"`
			Op     string     `json:"op"`
			Trace  uint64     `json:"trace"`
			DurNS  int64      `json:"dur_ns"`
			Chain  []query.ID `json:"chain"`
			Probes int64      `json:"probes"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("slow-op line does not parse: %v (%q)", err, line)
		}
		if rec.TS == 0 || rec.DurNS <= 0 || rec.Op == "" {
			t.Fatalf("slow-op record missing core fields: %q", line)
		}
		ops[rec.Op] = true
		if len(rec.Chain) > 0 {
			sawChain = true
		}
		if rec.Trace == 7777 {
			sawTrace = true
		}
	}
	for _, op := range []string{"update", "add", "remove", "register"} {
		if !ops[op] {
			t.Errorf("slow-op log never saw op %q", op)
		}
	}
	if !sawChain {
		t.Error("no slow-op record carried a cause chain of reevaluated queries")
	}
	if !sawTrace {
		t.Error("no slow-op record carried the causal trace ID")
	}
	if got := reg.Counter("srb_query_slow_ops_total", "").Value(); got != int64(len(lines)) {
		t.Errorf("srb_query_slow_ops_total = %d, want %d (one per logged record)", got, len(lines))
	}
	var slow int
	for _, ev := range fr.Events() {
		if ev.Kind == obs.FlightSlowOp {
			slow++
			if ev.Trace != 7777 {
				t.Fatalf("flight slow-op event lost the trace ID: %+v", ev)
			}
		}
	}
	if slow == 0 {
		t.Error("flight recorder saw no slow-op events")
	}
}

// TestLedgerSurvivesRecovery replays a mid-run snapshot + journal suffix into
// a fresh instrumented monitor and checks that (a) every recovered query has
// a ledger entry, (b) the sum invariant holds over the replayed suffix, and
// (c) it keeps holding for traffic after recovery.
func TestLedgerSurvivesRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	r := newJournaledRun(t, 2026)
	for i := 0; i < 40; i++ {
		r.add(t, uint64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	r.do(t, JournalEntry{Op: JournalRegister, QID: 1, Kind: "range", MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}, func() {
		if _, _, err := r.mon.RegisterRange(1, geom.R(0.2, 0.2, 0.6, 0.6)); err != nil {
			t.Fatal(err)
		}
	})
	r.do(t, JournalEntry{Op: JournalRegister, QID: 2, Kind: "knn", X: 0.7, Y: 0.7, K: 5, Ordered: true}, func() {
		if _, _, err := r.mon.RegisterKNN(2, geom.Pt(0.7, 0.7), 5, true); err != nil {
			t.Fatal(err)
		}
	})
	for step := 0; step < 120; step++ {
		id := uint64(rng.Intn(40))
		p := r.pos[id]
		r.update(t, id, geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.2), clamp01(p.Y+(rng.Float64()-0.5)*0.2)))
		if step == 60 {
			if err := r.mon.SaveSnapshot(&r.midSnap); err != nil {
				t.Fatal(err)
			}
			r.midSeq = r.journal.LastSeq()
		}
	}

	reg := obs.NewRegistry()
	pos := map[uint64]geom.Point{}
	replaying := true
	recovered := New(Options{GridM: 8}, ProberFunc(func(id uint64) geom.Point {
		if replaying {
			t.Fatalf("recovery probed object %d live", id)
		}
		return pos[id]
	}), nil)
	recovered.SetObs(obs.NewSink(reg, nil))
	if err := recovered.LoadSnapshot(bytes.NewReader(r.midSnap.Bytes())); err != nil {
		t.Fatal(err)
	}
	// After recovery every registered query must already be tracked, zeroed.
	costs := recovered.QueryCosts()
	if len(costs) != 2 {
		t.Fatalf("recovered ledger has %d entries, want 2", len(costs))
	}
	for _, c := range costs {
		if c.Reevals != 0 || c.Probes != 0 {
			t.Fatalf("recovered ledger entry not re-based: %+v", c)
		}
	}
	if _, err := ReplayJournal(bytes.NewReader(r.logBuf.Bytes()), recovered, r.midSeq); err != nil {
		t.Fatal(err)
	}
	if recovered.Stats() != r.mon.Stats() {
		t.Fatalf("recovery diverged:\nrecovered %+v\noriginal  %+v", recovered.Stats(), r.mon.Stats())
	}
	checkLedgerMirrorsCounters(t, recovered, reg)

	// Post-recovery traffic keeps the invariant and lands on live entries.
	replaying = false
	for id, p := range r.pos {
		pos[id] = p
	}
	for step := 0; step < 60; step++ {
		id := uint64(rng.Intn(40))
		p := pos[id]
		np := geom.Pt(clamp01(p.X+(rng.Float64()-0.5)*0.3), clamp01(p.Y+(rng.Float64()-0.5)*0.3))
		pos[id] = np
		recovered.Update(id, np)
	}
	checkLedgerMirrorsCounters(t, recovered, reg)
	var reevals int64
	for _, c := range recovered.QueryCosts() {
		reevals += c.Reevals
	}
	if reevals == 0 {
		t.Fatal("post-recovery traffic attributed no reevaluations")
	}
}
