package core

import (
	"testing"

	"srb/internal/geom"
	"srb/internal/query"
)

// allocWorkload builds the steady-state scenario the allochot baseline is
// about: a populated monitor with live queries, and one object far from every
// quarantine area reporting conflict-free movement. Returns the monitor and
// the two positions the object alternates between.
func allocWorkload(tb testing.TB) (*Monitor, uint64, [2]geom.Point) {
	tb.Helper()
	m := New(Options{Space: geom.R(0, 0, 100, 100)}, ProberFunc(func(id uint64) geom.Point {
		return geom.Pt(float64(id), float64(id))
	}), nil)
	for id := uint64(1); id <= 32; id++ {
		m.AddObject(id, geom.Pt(float64(id), float64(id)))
	}
	if _, _, err := m.RegisterRange(query.ID(1), geom.R(0, 0, 10, 10)); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := m.RegisterKNN(query.ID(2), geom.Pt(5, 5), 3, true); err != nil {
		tb.Fatal(err)
	}
	// Object 90 lives in the far corner, outside every quarantine area and
	// every result; its updates take the conflict-free path.
	const mover = uint64(90)
	m.AddObject(mover, geom.Pt(90, 90))
	locs := [2]geom.Point{geom.Pt(90, 90), geom.Pt(92, 92)}
	// Warm up so per-object state and index nodes exist before measuring.
	for i := 0; i < 4; i++ {
		m.Update(mover, locs[i%2])
	}
	return m, mover, locs
}

// TestUpdateAllocsBound ratchets the sequential hot path: a steady-state
// conflict-free Monitor.Update must stay within a fixed allocation budget.
// The bound is deliberately loose (~2x the measured steady state) so it
// catches regressions that add allocation sites or per-call slices, not
// noise; tightening it is the ROADMAP allocation-reduction work. The
// companion inventory lives in lint/allochot.baseline.
func TestUpdateAllocsBound(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	m, mover, locs := allocWorkload(t)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		m.Update(mover, locs[i%2])
		i++
	})
	const bound = 40.0
	if avg > bound {
		t.Errorf("steady-state Update allocates %.1f objects per call, budget %.0f; "+
			"new hot-path allocation sites must be justified and baselined (lint/allochot.baseline)", avg, bound)
	}
}

// BenchmarkUpdateAllocs reports the sequential Update path's per-call
// allocation profile (run with -benchmem).
func BenchmarkUpdateAllocs(b *testing.B) {
	m, mover, locs := allocWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(mover, locs[i%2])
	}
}
