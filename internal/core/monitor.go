// Package core implements the database-server side of the safe-region
// monitoring framework (Sections 3-6 of Hu, Xu & Lee, SIGMOD 2005): the
// object index over safe regions, the grid query index over quarantine
// areas, query evaluation and incremental reevaluation with lazy probes, and
// safe-region computation.
//
// The Monitor processes three kinds of requests, mirroring Algorithm 1:
// query registration/deregistration, and source-initiated location updates.
// During processing it may probe objects through the Prober for
// server-initiated location updates. All calls are serialized by design
// (Section 3 assumes the server handles updates sequentially); the Monitor
// is not safe for concurrent use.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"srb/internal/geom"
	"srb/internal/gridindex"
	"srb/internal/obs"
	"srb/internal/query"
)

// Prober supplies the exact current location of an object on a
// server-initiated probe (step 2 in Figure 3.1).
type Prober interface {
	Probe(id uint64) geom.Point
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(id uint64) geom.Point

// Probe implements Prober.
func (f ProberFunc) Probe(id uint64) geom.Point { return f(id) }

// ResultUpdate reports a changed query result to the application server. For
// aggregate COUNT queries only Count is populated; for all other queries
// Results carries the member IDs (ordered for order-sensitive kNN).
type ResultUpdate struct {
	Query   query.ID
	Results []uint64
	Count   int
}

// SafeRegionUpdate carries a recomputed safe region back to a mobile client
// (step 5 in Figure 3.1). Probed reports whether the refresh was triggered by
// a server-initiated probe rather than the client's own update.
type SafeRegionUpdate struct {
	Object uint64
	Region geom.Rect
	Probed bool
}

// Options configures a Monitor.
type Options struct {
	// Space is the monitored region; objects and queries live inside it.
	Space geom.Rect
	// GridM is the query-index resolution M (Section 3.3). Default 50.
	GridM int
	// TreeCapacity is the R*-tree node capacity. Default 16.
	TreeCapacity int
	// MaxSpeed, when positive, enables the reachability-circle enhancement
	// (Section 6.1): object positions are additionally bounded by a circle of
	// radius MaxSpeed·(now − lastUpdate) around the last reported location.
	MaxSpeed float64
	// Steadiness is the steady-movement parameter D of Section 6.2. When
	// positive, safe regions are optimized under the weighted perimeter.
	Steadiness float64
	// DisableBatchRange disables the batch range safe-region computation of
	// Section 5.3, falling back to per-query strip intersection.
	DisableBatchRange bool
	// GreedyBatch forces the paper's greedy union in the batch computation
	// instead of the exact combination search (ablation).
	GreedyBatch bool
	// EagerProbes disables the lazy-probe technique of Section 4 (ablation):
	// every safe-region object popped during kNN evaluation is probed
	// immediately instead of being held until a probe becomes mandatory.
	EagerProbes bool
	// CellNeighborhood enlarges the area safe regions may span to the
	// (2r+1)×(2r+1) block of grid cells around the object (the adaptive-cell
	// extension the paper sketches in Section 7.4). 0 confines safe regions
	// to a single cell as in the base framework; 1 (a 3×3 block) trades a
	// little safe-region CPU for substantially fewer cell-crossing updates.
	CellNeighborhood int
}

// WithDefaults returns the options as the Monitor will actually use them,
// with zero values replaced by defaults (unit space, GridM 50, TreeCapacity
// 16). Components that must agree with the monitor's effective geometry —
// the shard partition function, external index implementations — normalize
// through this before deriving anything from Space or GridM.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if !o.Space.IsValid() || o.Space.Area() == 0 {
		o.Space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	if o.GridM <= 0 {
		o.GridM = 50
	}
	if o.TreeCapacity <= 0 {
		o.TreeCapacity = 16
	}
	return o
}

// Stats counts the work performed by the Monitor, the basis of the cost
// metrics in Section 7.
type Stats struct {
	SourceUpdates    int64 // client-initiated location updates processed
	Probes           int64 // server-initiated probes issued
	Reevaluations    int64 // incremental query reevaluations
	FullReevals      int64 // reevaluations that fell back to from-scratch
	NewQueryEvals    int64 // from-scratch evaluations of new queries
	SafeRegionsBuilt int64 // full safe-region computations
	ResultChanges    int64 // result updates pushed to application servers
	ProbesAvoided    int64 // range-query ambiguities resolved without a probe
	VirtualProbes    int64 // reachability-circle safe-region shrinks (§6.1)
}

type objectState struct {
	id       uint64
	lastLoc  geom.Point // last reported or probed location p_lst
	prevLoc  geom.Point // the report before that (steady-movement heading)
	lastTime float64    // timestamp of the last location report
	safe     geom.Rect  // current safe region, mirrored in the object index
}

// Monitor is the database server of Figure 3.1.
type Monitor struct {
	opt     Options
	objects map[uint64]*objectState
	index   ObjIndex
	grid    *gridindex.Grid
	queries map[query.ID]*query.Query
	// resultOf is the reverse result index: for each object, the queries it
	// currently appears in. It repairs states the quarantine test cannot see
	// (e.g. a result object drifting outside a shrunken quarantine circle):
	// every update from a result object reevaluates its queries.
	resultOf map[uint64]map[query.ID]bool
	prober   Prober
	report   func(ResultUpdate)
	now      float64
	stats    Stats

	// probedNow tracks objects probed during the current operation: their
	// authoritative representation is an exact point until their safe region
	// is recomputed at the end of the operation. probedFrom records each
	// probed object's previous reported location, because a probe is itself a
	// location update (the paper's "server-initiated probe and update") and
	// the movement it reveals can change other queries' results.
	probedNow  map[uint64]geom.Point
	probedFrom map[uint64]geom.Point
	// shrunkNow tracks objects whose safe region was durably shrunk by a
	// reachability-circle "virtual probe" during the current operation; the
	// shrunken regions must be pushed to the clients at the end of the
	// operation so the update protocol stays exact.
	shrunkNow map[uint64]bool

	// mobs holds the bound observability instruments (obs.go); nil when
	// uninstrumented, which keeps every hook to a single branch.
	mobs *monObs

	// Slow-op log configuration (SetSlowOpLog) and the black-box flight
	// recorder (SetFlightRecorder); both optional and only consulted while an
	// obs sink is attached, since operation timing exists only then.
	slowThresh time.Duration
	slowW      io.Writer
	flight     *obs.FlightRecorder

	// opTrace is the causal trace ID of the wire op currently being processed
	// (SetOpTrace); 0 outside a traced op. Never part of monitor semantics —
	// it only tags diagnostics (trace events, slow-op records, flight events).
	opTrace uint64
}

// New creates a Monitor. prober must not be nil; onUpdate may be nil when the
// caller polls results instead of subscribing.
func New(opt Options, prober Prober, onUpdate func(ResultUpdate)) *Monitor {
	if prober == nil {
		panic("core: nil prober")
	}
	opt = opt.withDefaults()
	if onUpdate == nil {
		onUpdate = func(ResultUpdate) {}
	}
	return &Monitor{
		opt:        opt,
		objects:    make(map[uint64]*objectState),
		index:      newLocalIndex(opt.TreeCapacity),
		grid:       gridindex.New(opt.GridM, opt.Space),
		queries:    make(map[query.ID]*query.Query),
		resultOf:   make(map[uint64]map[query.ID]bool),
		prober:     prober,
		report:     onUpdate,
		probedNow:  make(map[uint64]geom.Point),
		probedFrom: make(map[uint64]geom.Point),
		shrunkNow:  make(map[uint64]bool),
	}
}

// SetTime advances the server's logical clock, used by the reachability
// circle and recorded as the timestamp of subsequent location reports.
func (m *Monitor) SetTime(t float64) { m.now = t }

// Now returns the server's logical clock.
func (m *Monitor) Now() float64 { return m.now }

// Stats returns a copy of the work counters.
func (m *Monitor) Stats() Stats { return m.stats }

// NumObjects returns the number of registered objects.
func (m *Monitor) NumObjects() int { return len(m.objects) }

// NumQueries returns the number of registered queries.
func (m *Monitor) NumQueries() int { return len(m.queries) }

// Queries returns the registered query for an ID.
func (m *Monitor) Query(id query.ID) (*query.Query, bool) {
	q, ok := m.queries[id]
	return q, ok
}

// Results returns the current monitored results of a query.
func (m *Monitor) Results(id query.ID) ([]uint64, bool) {
	q, ok := m.queries[id]
	if !ok {
		return nil, false
	}
	return append([]uint64(nil), q.Results...), true
}

// SafeRegion returns the current safe region of an object.
func (m *Monitor) SafeRegion(id uint64) (geom.Rect, bool) {
	st, ok := m.objects[id]
	if !ok {
		return geom.Rect{}, false
	}
	return st.safe, true
}

// ObjectIDs returns the registered object IDs in ascending order.
func (m *Monitor) ObjectIDs() []uint64 {
	return m.sortedObjectIDs()
}

// QueryIDs returns the registered query IDs in ascending order.
func (m *Monitor) QueryIDs() []query.ID {
	return m.sortedQueryIDs()
}

// LastReported returns the last location the server has on file for id.
func (m *Monitor) LastReported(id uint64) (geom.Point, bool) {
	st, ok := m.objects[id]
	if !ok {
		return geom.Point{}, false
	}
	return st.lastLoc, true
}

// AddObject registers a moving object at p and returns its initial safe
// region together with safe-region refreshes for any object probed while
// folding the newcomer into existing query results.
func (m *Monitor) AddObject(id uint64, p geom.Point) []SafeRegionUpdate {
	if _, ok := m.objects[id]; ok {
		return m.Update(id, p)
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	st := &objectState{id: id, lastLoc: p, prevLoc: p, lastTime: m.now}
	m.objects[id] = st
	st.safe = geom.RectAround(p)
	m.index.Insert(id, st.safe)
	// A new object can change results of queries whose quarantine contains p.
	m.beginOp()
	for _, q := range m.grid.At(p) {
		if q.InQuarantine(p) || (q.Kind == query.KindKNN && len(q.Results) < q.K) {
			m.reevaluate(q, st, infinitePoint())
		}
	}
	out := m.finishOp(st)
	if m.mobs != nil {
		m.mobs.done(m, "add", m.mobs.addSeconds, t0, before)
	}
	m.assertInvariants()
	return out
}

// RemoveObject deregisters an object, repairing the results of every query
// it currently appears in. It returns safe-region refreshes for objects
// probed during the repairs.
func (m *Monitor) RemoveObject(id uint64) []SafeRegionUpdate {
	if _, ok := m.objects[id]; !ok {
		return nil
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	m.beginOp()
	m.index.Delete(id)
	delete(m.objects, id)
	for _, qid := range m.sortedQueryIDs() {
		q := m.queries[qid]
		if !q.InResult[id] {
			continue
		}
		// Focus the ledger on the query under repair so refill probes bill it.
		if m.mobs != nil {
			m.mobs.lg.focus(q)
		}
		switch q.Kind {
		case query.KindRange, query.KindCircle:
			m.removeResultID(q, id)
			m.publish(q)
		case query.KindKNN:
			m.removeResultID(q, id)
			m.refillKNN(q)
			m.publish(q)
			m.grid.Update(q)
		}
		if m.mobs != nil {
			m.mobs.lg.unfocus()
		}
	}
	delete(m.resultOf, id)
	out := m.finishOp(nil)
	if m.mobs != nil {
		m.mobs.done(m, "remove", m.mobs.remSeconds, t0, before)
	}
	m.assertInvariants()
	return out
}

func (m *Monitor) sortedQueryIDs() []query.ID {
	ids := make([]query.ID, 0, len(m.queries))
	for id := range m.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *Monitor) sortedProbedIDs() []uint64 {
	ids := make([]uint64, 0, len(m.probedNow))
	for id := range m.probedNow {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// beginOp resets per-operation probe bookkeeping.
func (m *Monitor) beginOp() {
	if len(m.probedNow) != 0 {
		m.probedNow = make(map[uint64]geom.Point)
	}
	if len(m.probedFrom) != 0 {
		m.probedFrom = make(map[uint64]geom.Point)
	}
	if len(m.shrunkNow) != 0 {
		m.shrunkNow = make(map[uint64]bool)
	}
}

// settleProbes treats each probe as the location update it is: the probed
// object's movement from its previous report can change the results of other
// queries (e.g. it crossed a range boundary while the transition would
// otherwise be consumed silently). Reevaluations here may probe further
// objects, so the loop drains until quiescent. skip excludes a query whose
// own evaluation is still in progress.
func (m *Monitor) settleProbes(primary *objectState, skip *query.Query) {
	processed := map[uint64]bool{}
	if primary != nil {
		processed[primary.id] = true
	}
	for {
		var todo []uint64
		for _, id := range m.sortedProbedIDs() {
			if !processed[id] {
				todo = append(todo, id)
			}
		}
		if len(todo) == 0 {
			return
		}
		for _, id := range todo {
			processed[id] = true
			st := m.objects[id]
			if st == nil {
				continue
			}
			from, ok := m.probedFrom[id]
			if !ok {
				continue
			}
			seen := map[query.ID]bool{}
			if skip != nil {
				seen[skip.ID] = true
			}
			for _, q := range m.grid.Affected(from, st.lastLoc) {
				if seen[q.ID] {
					continue
				}
				seen[q.ID] = true
				m.reevaluate(q, st, from)
			}
			if set := m.resultOf[id]; len(set) > 0 {
				var qids []query.ID
				for qid := range set {
					if !seen[qid] {
						qids = append(qids, qid)
					}
				}
				sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
				for _, qid := range qids {
					if q := m.queries[qid]; q != nil {
						m.reevaluate(q, st, from)
					}
				}
			}
		}
	}
}

// finishOp recomputes the safe region of the primary object st (when non-nil)
// and of every object probed during the operation, mirroring steps 4-5 of
// Figure 3.1, and returns the refreshed regions.
func (m *Monitor) finishOp(st *objectState) []SafeRegionUpdate {
	m.settleProbes(st, nil)
	var out []SafeRegionUpdate
	if st != nil {
		m.recomputeSafeRegion(st)
		out = append(out, SafeRegionUpdate{Object: st.id, Region: st.safe})
		m.noteGrant(st.id)
	}
	for _, pid := range m.sortedProbedIDs() {
		if st != nil && pid == st.id {
			continue
		}
		pst := m.objects[pid]
		if pst == nil {
			continue
		}
		m.recomputeSafeRegion(pst)
		out = append(out, SafeRegionUpdate{Object: pid, Region: pst.safe, Probed: true})
		m.noteGrant(pid)
	}
	out = append(out, m.flushShrunk(st)...)
	m.probedNow = make(map[uint64]geom.Point)
	m.probedFrom = make(map[uint64]geom.Point)
	return out
}

// flushShrunk emits the safe regions shrunk by virtual probes (reachability
// circle, Section 6.1) that were not superseded by a real probe or by the
// primary object's recompute. The push keeps the client protocol exact: the
// client resumes reporting against the shrunken region.
func (m *Monitor) flushShrunk(st *objectState) []SafeRegionUpdate {
	if len(m.shrunkNow) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(m.shrunkNow))
	for id := range m.shrunkNow {
		if _, probed := m.probedNow[id]; probed {
			continue // a real probe already triggered a full refresh
		}
		if st != nil && id == st.id {
			continue
		}
		if m.objects[id] == nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]SafeRegionUpdate, 0, len(ids))
	for _, id := range ids {
		out = append(out, SafeRegionUpdate{Object: id, Region: m.objects[id].safe, Probed: true})
		m.noteGrant(id)
	}
	m.shrunkNow = make(map[uint64]bool)
	return out
}

// noteGrant bills a safe-region grant pushed for an object to the query that
// caused the refresh (via the ledger's per-op cause map).
func (m *Monitor) noteGrant(id uint64) {
	if m.mobs != nil {
		m.mobs.lg.noteGrant(id)
	}
}

// probe requests an immediate location update from an object
// (server-initiated probe). The object's representation collapses to an
// exact point for the remainder of the operation.
func (m *Monitor) probe(id uint64) geom.Point {
	if p, ok := m.probedNow[id]; ok {
		return p
	}
	p := m.prober.Probe(id)
	m.stats.Probes++
	m.noteProbe(id)
	st := m.objects[id]
	m.probedFrom[id] = st.lastLoc
	st.prevLoc = st.lastLoc
	st.lastLoc = p
	st.lastTime = m.now
	m.probedNow[id] = p
	return p
}

// repr returns the current spatial representation of an object: the exact
// point if it was probed or updated during this operation, otherwise its
// safe region.
func (m *Monitor) repr(id uint64) geom.Rect {
	if p, ok := m.probedNow[id]; ok {
		return geom.RectAround(p)
	}
	return m.objects[id].safe
}

// isExact reports whether the object is currently represented by a point.
func (m *Monitor) isExact(id uint64) bool {
	if _, ok := m.probedNow[id]; ok {
		return true
	}
	st := m.objects[id]
	return st.safe.Width() == 0 && st.safe.Height() == 0
}

// bounds returns [δ, Δ] distance bounds between query point q and object id,
// derived from the object's authoritative representation (exact point after a
// probe, safe region otherwise). These bounds stay valid for as long as the
// object honors its safe region, so they are safe to bake into durable state
// (result order, quarantine radii, rings).
func (m *Monitor) bounds(qp geom.Point, id uint64) (float64, float64) {
	r := m.repr(id)
	return r.MinDist(qp), r.MaxDist(qp)
}

// virtualProbe is the reachability-circle enhancement (Section 6.1) recast as
// a durable operation: instead of merely consulting the circle, the object's
// safe region is shrunk to its intersection with the circle's bounding box
// (which certainly contains the object's true position right now) and the
// shrunken region is pushed to the client at the end of the operation. Any
// decision made against the shrunken region is then protected by the normal
// safe-region protocol. It reports whether the region actually shrank.
func (m *Monitor) virtualProbe(id uint64) bool {
	if m.opt.MaxSpeed <= 0 {
		return false
	}
	if _, probed := m.probedNow[id]; probed {
		return false
	}
	st := m.objects[id]
	rad := m.opt.MaxSpeed * (m.now - st.lastTime)
	if rad < 0 {
		rad = 0
	}
	rb := geom.RectAround(st.lastLoc).Expand(rad)
	if rb.ContainsRect(st.safe) {
		return false // the circle no longer constrains anything
	}
	shr := st.safe.Intersect(rb)
	st.safe = clampSafe(shr, st.lastLoc)
	m.index.Update(id, st.safe)
	m.shrunkNow[id] = true
	m.stats.VirtualProbes++
	m.noteShrink(id)
	return true
}

func (m *Monitor) publish(q *query.Query) {
	m.stats.ResultChanges++
	if m.mobs != nil {
		m.mobs.lg.notePublish(q, len(q.Results), q.Aggregate)
	}
	if q.Aggregate {
		m.report(ResultUpdate{Query: q.ID, Count: len(q.Results)})
		return
	}
	m.report(ResultUpdate{Query: q.ID, Results: append([]uint64(nil), q.Results...), Count: len(q.Results)})
}

// noteResult and unnoteResult maintain the reverse result index alongside a
// query's result list.
func (m *Monitor) noteResult(q *query.Query, id uint64) {
	set := m.resultOf[id]
	if set == nil {
		set = make(map[query.ID]bool, 2)
		m.resultOf[id] = set
	}
	set[q.ID] = true
}

func (m *Monitor) unnoteResult(q *query.Query, id uint64) {
	if set := m.resultOf[id]; set != nil {
		delete(set, q.ID)
		if len(set) == 0 {
			delete(m.resultOf, id)
		}
	}
}

// appendResultID adds id to a query's result list (position pos, or -1 for
// the end), updating the membership and reverse indexes.
func (m *Monitor) appendResultID(q *query.Query, id uint64, pos int) {
	if pos < 0 || pos > len(q.Results) {
		pos = len(q.Results)
	}
	q.Results = append(q.Results, 0)
	copy(q.Results[pos+1:], q.Results[pos:])
	q.Results[pos] = id
	q.InResult[id] = true
	m.noteResult(q, id)
}

// removeResultID removes id from a query's result list, updating both
// indexes.
func (m *Monitor) removeResultID(q *query.Query, id uint64) {
	for i, r := range q.Results {
		if r == id {
			q.Results = append(q.Results[:i], q.Results[i+1:]...)
			break
		}
	}
	delete(q.InResult, id)
	m.unnoteResult(q, id)
}

// setResults replaces a query's whole result list, updating the reverse
// index.
func (m *Monitor) setResults(q *query.Query, ids []uint64) {
	for _, id := range q.Results {
		m.unnoteResult(q, id)
	}
	q.SetResults(ids)
	for _, id := range ids {
		m.noteResult(q, id)
	}
}

// CheckInvariants validates cross-index consistency and the deep semantic
// invariants of the monitoring protocol: the R*-tree mirrors the object
// table, the grid index mirrors the query table (with the exact current
// quarantine bboxes), per-operation probe bookkeeping is drained, safe
// regions contain their object's last location and stay inside the monitored
// space, fixed-shape queries (range, COUNT, within-distance) satisfy
// member-containment and non-member interior-disjointness against their
// quarantine areas, and kNN queries hold exactly min(K, numObjects) results.
// Every violation names the object/query involved and the condition
// violated. Intended for tests and the srbdebug build, which asserts it
// after every mutating operation.
func (m *Monitor) CheckInvariants() error {
	if err := m.index.CheckInvariants(); err != nil {
		return err
	}
	if err := m.grid.CheckInvariants(); err != nil {
		return err
	}
	if m.index.Len() != len(m.objects) {
		return fmt.Errorf("tree has %d items, %d objects registered", m.index.Len(), len(m.objects))
	}
	if m.grid.Len() != len(m.queries) {
		return fmt.Errorf("grid indexes %d queries, %d registered", m.grid.Len(), len(m.queries))
	}
	if len(m.probedNow)+len(m.probedFrom)+len(m.shrunkNow) != 0 {
		return fmt.Errorf("probe bookkeeping not drained between operations: %d probedNow, %d probedFrom, %d shrunkNow",
			len(m.probedNow), len(m.probedFrom), len(m.shrunkNow))
	}
	for id, st := range m.objects {
		r, ok := m.index.Get(id)
		if !ok {
			return fmt.Errorf("object %d missing from tree", id)
		}
		//lint:allow floatcmp identity check: the tree must mirror st.safe bit-for-bit
		if r != st.safe {
			return fmt.Errorf("object %d: tree rect %v != safe %v", id, r, st.safe)
		}
		if !st.safe.Contains(st.lastLoc) {
			return fmt.Errorf("object %d: safe region %v excludes last location %v", id, st.safe, st.lastLoc)
		}
		if !m.opt.Space.Union(geom.RectAround(st.lastLoc)).ContainsRect(st.safe) {
			return fmt.Errorf("object %d: safe region %v escapes space %v beyond last location %v",
				id, st.safe, m.opt.Space, st.lastLoc)
		}
	}
	for id, q := range m.queries {
		if q.ID != id {
			return fmt.Errorf("query map key %d != id %d", id, q.ID)
		}
		if len(q.Results) != len(q.InResult) {
			return fmt.Errorf("query %d: %d results vs %d membership entries", id, len(q.Results), len(q.InResult))
		}
		//lint:allow floatcmp identity check: the grid must index the exact current quarantine bbox
		if ext := m.grid.ExtentOf(id); ext != q.QuarantineBBox() {
			return fmt.Errorf("query %d: grid extent %v != quarantine bbox %v", id, ext, q.QuarantineBBox())
		}
		for _, r := range q.Results {
			if _, ok := m.objects[r]; !ok {
				return fmt.Errorf("query %d references unknown object %d", id, r)
			}
			if !m.resultOf[r][id] {
				return fmt.Errorf("reverse index missing query %d for object %d", id, r)
			}
		}
		switch q.Kind {
		case query.KindKNN:
			want := q.K
			if n := len(m.objects); n < want {
				want = n
			}
			if len(q.Results) != want {
				return fmt.Errorf("kNN query %d: %d results, want min(K=%d, %d objects) = %d",
					id, len(q.Results), q.K, len(m.objects), want)
			}
		case query.KindRange:
			if err := m.checkRangeContainment(q); err != nil {
				return err
			}
		case query.KindCircle:
			if err := m.checkCircleContainment(q); err != nil {
				return err
			}
		}
	}
	// The reverse index must not hold stale entries.
	for oid, set := range m.resultOf {
		for qid := range set {
			q, ok := m.queries[qid]
			if !ok {
				return fmt.Errorf("reverse index references unknown query %d", qid)
			}
			if !q.InResult[oid] {
				return fmt.Errorf("reverse index claims %d in query %d, membership disagrees", oid, qid)
			}
		}
	}
	return nil
}

// checkRangeContainment verifies the fixed-rectangle quarantine invariant
// (Section 3.3): while every result object's safe region lies inside the
// rectangle and every non-result object's safe region avoids its interior,
// the result cannot change without a client report. kNN quarantine circles
// grow and shrink between reevaluations, so the analogous property is
// deliberately not an invariant there.
func (m *Monitor) checkRangeContainment(q *query.Query) error {
	outer := q.Rect.Expand(geom.Epsilon)
	for id, st := range m.objects {
		if q.InResult[id] {
			if !outer.ContainsRect(st.safe) {
				return fmt.Errorf("range query %d: member %d safe region %v escapes quarantine rect %v",
					q.ID, id, st.safe, q.Rect)
			}
		} else {
			inter := st.safe.Intersect(q.Rect)
			if inter.IsValid() && inter.Width() > geom.Epsilon && inter.Height() > geom.Epsilon {
				return fmt.Errorf("range query %d: non-member %d safe region %v overlaps quarantine rect %v interior",
					q.ID, id, st.safe, q.Rect)
			}
		}
	}
	return nil
}

// checkCircleContainment is the circular-quarantine counterpart for
// within-distance queries: members inside the circle, non-members outside.
func (m *Monitor) checkCircleContainment(q *query.Query) error {
	c := q.Circle()
	for id, st := range m.objects {
		if q.InResult[id] {
			if st.safe.MaxDist(c.Center) > c.R+geom.Epsilon {
				return fmt.Errorf("circle query %d: member %d safe region %v escapes quarantine circle r=%g",
					q.ID, id, st.safe, c.R)
			}
		} else if st.safe.MinDist(c.Center) < c.R-geom.Epsilon {
			return fmt.Errorf("circle query %d: non-member %d safe region %v intrudes into quarantine circle r=%g",
				q.ID, id, st.safe, c.R)
		}
	}
	return nil
}

// assertInvariants panics on an invariant violation. Under the default build
// it compiles to nothing; the srbdebug build tag turns it on, making every
// mutating Monitor operation self-checking.
//
//srb:coldpath
func (m *Monitor) assertInvariants() {
	if !debugInvariants {
		return
	}
	if err := m.CheckInvariants(); err != nil {
		panic("srbdebug: invariant violated: " + err.Error())
	}
}
