package core

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"srb/internal/geom"
	"srb/internal/query"
	"srb/internal/rtree"
)

// --- priority queue for best-first search (Algorithm 2) ----------------------

type pqItem struct {
	key   float64
	seq   uint64 // last-resort tie-breaker: FIFO among otherwise-equal entries
	node  *rtree.Node
	id    uint64
	shard int // owning ObjIndex shard of node/id (0 for a single tree)
	isObj bool
	exact bool
	pt    geom.Point // valid when exact
}

type evalPQ struct {
	items []pqItem
	seq   uint64
}

func (p *evalPQ) Len() int { return len(p.items) }

// Less orders the frontier canonically: key ascending; at equal key, nodes
// expand before objects, and objects tie-break by ID. This makes the object
// pop sequence a pure function of the indexed regions, independent of tree
// shape: when an object pops, no node with key ≤ its key remains, so any
// unpopped object with a smaller (key, ID) would still be covered by such a
// node — contradiction. A sharded forest and a single tree therefore pop
// objects (and thus hold, probe, and append results) in exactly the same
// order. See ARCHITECTURE.md "Determinism guarantees".
func (p *evalPQ) Less(i, j int) bool {
	a, b := &p.items[i], &p.items[j]
	//lint:allow floatcmp comparator tie-break: exact inequality guards the canonical fallback
	if a.key != b.key {
		return a.key < b.key
	}
	if a.isObj != b.isObj {
		return !a.isObj
	}
	if a.isObj && a.id != b.id {
		return a.id < b.id
	}
	return a.seq < b.seq
}
func (p *evalPQ) Swap(i, j int)      { p.items[i], p.items[j] = p.items[j], p.items[i] }
func (p *evalPQ) Push(x interface{}) { p.items = append(p.items, x.(pqItem)) }
func (p *evalPQ) Pop() interface{} {
	old := p.items
	n := len(old)
	it := old[n-1]
	p.items = old[:n-1]
	return it
}

func (p *evalPQ) push(it pqItem) {
	it.seq = p.seq
	p.seq++
	heap.Push(p, it)
}

func (p *evalPQ) pop() pqItem { return heap.Pop(p).(pqItem) }

// newExpander returns the node-expansion closure for one best-first search:
// it expands an index node through ObjIndex.Visit, pushing children and
// non-excluded leaf objects onto pq with keys relative to qp. One closure is
// allocated per search and reused for every expansion.
func (m *Monitor) newExpander(pq *evalPQ, qp geom.Point, exclude map[uint64]bool) func(pqItem) {
	var cur pqItem
	visit := func(child *rtree.Node, childRect geom.Rect, it rtree.Item, isItem bool) {
		if isItem {
			if exclude[it.ID] {
				return
			}
			if _, probed := m.probedNow[it.ID]; probed {
				return // seeded exactly by seedSearch; the indexed rect is stale
			}
			lo, _ := m.bounds(qp, it.ID)
			pq.push(pqItem{key: lo, id: it.ID, isObj: true, shard: cur.shard})
		} else {
			pq.push(pqItem{key: childRect.MinDist(qp), node: child, shard: cur.shard})
		}
	}
	return func(u pqItem) {
		cur = u
		m.index.Visit(u.shard, u.node, visit)
	}
}

// seedSearch primes a best-first frontier: one zero-key entry per index root,
// plus every object already probed in this operation as an exact point item.
// Probed objects must bypass tree discovery entirely: their authoritative
// representation is the probe point, but their indexed rect is still the
// pre-probe safe region (the index is only refreshed when the op finishes),
// so a covering node's MinDist no longer lower-bounds their distance. Left in
// the tree, their discovery time — and with it the canonical pop order —
// would depend on how the index groups objects, breaking the sharded/single
// equivalence. Seeded up front with exact keys, the remaining tree search is
// admissible for every object it can still discover.
func (m *Monitor) seedSearch(pq *evalPQ, qp geom.Point, exclude map[uint64]bool) {
	m.index.Seeds(func(shard int, root *rtree.Node) {
		pq.push(pqItem{key: 0, node: root, shard: shard})
	})
	for _, pid := range m.sortedProbedIDs() {
		if exclude[pid] {
			continue
		}
		p := m.probedNow[pid]
		pq.push(pqItem{key: qp.Dist(p), id: pid, isObj: true, exact: true, pt: p})
	}
}

// frontierObjectKey expands queued nodes until the queue front is an object
// and returns that object's key — the minimum δ over every object still in
// the frontier, which is a structure-independent quantity (a node's MinDist
// is not: it depends on how the index groups objects). Both kNN variants use
// it for the next-element bound behind the quarantine radius, and the
// order-insensitive variant for its displacement test. Returns false when no
// objects remain.
func (m *Monitor) frontierObjectKey(pq *evalPQ, expand func(pqItem)) (float64, bool) {
	for pq.Len() > 0 {
		if pq.items[0].isObj {
			return pq.items[0].key, true
		}
		expand(pq.pop())
	}
	return 0, false
}

// --- query registration -------------------------------------------------------

// RegisterRange registers a continuous range query and returns its initial
// result together with safe-region refreshes for every object probed during
// the evaluation.
func (m *Monitor) RegisterRange(id query.ID, rect geom.Rect) ([]uint64, []SafeRegionUpdate, error) {
	if _, ok := m.queries[id]; ok {
		return nil, nil, fmt.Errorf("core: query %d already registered", id)
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	q := query.NewRange(id, rect)
	m.beginOp()
	m.stats.NewQueryEvals++
	if m.mobs != nil {
		m.mobs.lg.noteRegister(q)
	}
	results := m.evalRange(q)
	m.setResults(q, results)
	m.queries[id] = q
	m.grid.Insert(q)
	updates := m.refreshProbedAgainst(q)
	if m.mobs != nil {
		m.mobs.done(m, "register", m.mobs.regSeconds, t0, before)
	}
	m.assertInvariants()
	return append([]uint64(nil), results...), updates, nil
}

// RegisterKNN registers a continuous kNN query and returns its initial
// result (ordered by distance) together with safe-region refreshes for every
// object probed during the evaluation.
func (m *Monitor) RegisterKNN(id query.ID, pt geom.Point, k int, orderSensitive bool) ([]uint64, []SafeRegionUpdate, error) {
	if _, ok := m.queries[id]; ok {
		return nil, nil, fmt.Errorf("core: query %d already registered", id)
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	q := query.NewKNN(id, pt, k, orderSensitive)
	m.beginOp()
	m.stats.NewQueryEvals++
	if m.mobs != nil {
		m.mobs.lg.noteRegister(q)
	}
	m.evalKNN(q)
	m.queries[id] = q
	m.grid.Insert(q)
	updates := m.refreshProbedAgainst(q)
	if m.mobs != nil {
		m.mobs.done(m, "register", m.mobs.regSeconds, t0, before)
	}
	m.assertInvariants()
	return append([]uint64(nil), q.Results...), updates, nil
}

// RegisterWithinDistance registers a circular range query: the monitor
// continuously maintains the set of objects within radius of center. Its
// quarantine area is the circle itself; safe regions reuse the inscribed
// rectangle (members) and complement (non-members) constructions of Section
// 5.2.
func (m *Monitor) RegisterWithinDistance(id query.ID, center geom.Point, radius float64) ([]uint64, []SafeRegionUpdate, error) {
	if _, ok := m.queries[id]; ok {
		return nil, nil, fmt.Errorf("core: query %d already registered", id)
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	q := query.NewWithinDistance(id, center, radius)
	m.beginOp()
	m.stats.NewQueryEvals++
	if m.mobs != nil {
		m.mobs.lg.noteRegister(q)
	}
	results := m.evalCircle(q)
	m.setResults(q, results)
	m.queries[id] = q
	m.grid.Insert(q)
	updates := m.refreshProbedAgainst(q)
	if m.mobs != nil {
		m.mobs.done(m, "register", m.mobs.regSeconds, t0, before)
	}
	m.assertInvariants()
	return append([]uint64(nil), results...), updates, nil
}

// evalCircle evaluates a circular range query over safe regions with lazy
// probes, mirroring evalRange with circle containment tests.
func (m *Monitor) evalCircle(q *query.Query) []uint64 {
	c := q.Circle()
	var results []uint64
	for _, it := range m.rangeCandidates(c.BBox()) {
		r := m.repr(it.ID)
		lo, hi := r.MinDist(q.Point), r.MaxDist(q.Point)
		if lo > c.R {
			continue
		}
		if hi <= c.R {
			results = append(results, it.ID)
			continue
		}
		if m.virtualProbe(it.ID) {
			r = m.repr(it.ID)
			lo, hi = r.MinDist(q.Point), r.MaxDist(q.Point)
			if lo > c.R {
				m.noteProbeAvoided(it.ID)
				continue
			}
			if hi <= c.R {
				m.noteProbeAvoided(it.ID)
				results = append(results, it.ID)
				continue
			}
		}
		p := m.probe(it.ID)
		if q.Point.Dist(p) <= c.R {
			results = append(results, it.ID)
		}
	}
	return results
}

// RegisterCount registers an aggregate COUNT range query (the Section 8
// extension): the monitor continuously maintains how many objects are inside
// rect, publishing only the count on changes. Returns the initial count.
func (m *Monitor) RegisterCount(id query.ID, rect geom.Rect) (int, []SafeRegionUpdate, error) {
	if _, ok := m.queries[id]; ok {
		return 0, nil, fmt.Errorf("core: query %d already registered", id)
	}
	var t0 time.Time
	var before Stats
	if m.mobs != nil {
		t0, before = m.obsStart()
	}
	q := query.NewCountRange(id, rect)
	m.beginOp()
	m.stats.NewQueryEvals++
	if m.mobs != nil {
		m.mobs.lg.noteRegister(q)
	}
	results := m.evalRange(q)
	m.setResults(q, results)
	m.queries[id] = q
	m.grid.Insert(q)
	updates := m.refreshProbedAgainst(q)
	if m.mobs != nil {
		m.mobs.done(m, "register", m.mobs.regSeconds, t0, before)
	}
	m.assertInvariants()
	return len(results), updates, nil
}

// Deregister removes a query from the system.
func (m *Monitor) Deregister(id query.ID) bool {
	q, ok := m.queries[id]
	if !ok {
		return false
	}
	for _, rid := range q.Results {
		m.unnoteResult(q, rid)
	}
	m.grid.Remove(q)
	delete(m.queries, id)
	if m.mobs != nil {
		m.mobs.lg.retire(id)
		m.mobs.queries.Set(float64(len(m.queries)))
		m.mobs.qTracked.Set(float64(len(m.mobs.lg.entries)))
		m.mobs.qRetired.Add(m.mobs.lg.retiredN - m.mobs.lg.retiredFolded)
		m.mobs.lg.retiredFolded = m.mobs.lg.retiredN
		m.mobs.tr.InstantTr("core", "deregister", m.opTrace, "query", int64(id), "", 0)
	}
	m.assertInvariants()
	return true
}

// refreshProbedAgainst updates the safe region of every object probed during
// the evaluation of new query q. Per Section 5 (case 1), the refreshed region
// is the intersection of the current safe region with the region induced by
// the new query alone, since no existing quarantine area changed.
func (m *Monitor) refreshProbedAgainst(q *query.Query) []SafeRegionUpdate {
	// Probes reveal movement that can change *other* queries' results; the
	// freshly registered query q itself was just evaluated on exact points.
	m.settleProbes(nil, q)
	var out []SafeRegionUpdate
	for _, pid := range m.sortedProbedIDs() {
		loc := m.probedNow[pid]
		st := m.objects[pid]
		cell := m.grid.NeighborhoodRect(loc, m.opt.CellNeighborhood)
		srQ := m.safeRegionForQuery(q, st, cell)
		st.safe = clampSafe(st.safe.Intersect(srQ), loc)
		m.index.Update(pid, st.safe)
		out = append(out, SafeRegionUpdate{Object: pid, Region: st.safe, Probed: true})
	}
	out = append(out, m.flushShrunk(nil)...)
	m.probedNow = make(map[uint64]geom.Point)
	m.probedFrom = make(map[uint64]geom.Point)
	return out
}

// --- range evaluation (Section 4.1) -------------------------------------------

// evalRange evaluates a new range query over safe regions: fully covered
// regions are results, partially overlapping objects are probed lazily,
// skipping probes the reachability circle can resolve.
func (m *Monitor) evalRange(q *query.Query) []uint64 {
	var results []uint64
	for _, it := range m.rangeCandidates(q.Rect) {
		r := m.repr(it.ID)
		if !r.Intersects(q.Rect) {
			continue // representation tightened since indexing
		}
		if q.Rect.ContainsRect(r) {
			results = append(results, it.ID)
			continue
		}
		// Try a reachability-circle virtual probe before a real one
		// (Section 6.1): the durably shrunken region may already decide
		// membership.
		if m.virtualProbe(it.ID) {
			r = m.repr(it.ID)
			if q.Rect.ContainsRect(r) {
				m.noteProbeAvoided(it.ID)
				results = append(results, it.ID)
				continue
			}
			if !r.Intersects(q.Rect) {
				m.noteProbeAvoided(it.ID)
				continue
			}
		}
		p := m.probe(it.ID)
		if q.Rect.Contains(p) {
			results = append(results, it.ID)
		}
	}
	return results
}

// rangeCandidates collects the indexed items intersecting r and sorts them
// by ascending object ID. The canonical order makes probe sequences, result
// lists, and journal entries independent of index structure — a single tree
// visits in R*-tree order, a sharded forest gathers shard by shard, and both
// collapse to the same sequence here.
func (m *Monitor) rangeCandidates(r geom.Rect) []rtree.Item {
	items := m.index.Collect(r, nil)
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	return items
}

// --- kNN evaluation (Section 4.2, Algorithm 2) ---------------------------------

const noNextElement = -1.0

// evalKNN evaluates a new kNN query from scratch over safe regions with lazy
// probes, filling q.Results and q.QRadius.
func (m *Monitor) evalKNN(q *query.Query) {
	var ids []uint64
	var maxK, nextMin float64
	if q.OrderSensitive {
		ids, maxK, nextMin = m.knnOrderSensitive(q.Point, q.K, nil)
	} else {
		ids, maxK, nextMin = m.knnOrderInsensitive(q.Point, q.K, nil)
	}
	m.setResults(q, ids)
	q.QRadius = m.quarantineRadius(maxK, nextMin)
}

// quarantineSplit positions the quarantine circle within its legal interval
// [Δ(q, o_k), δ(q, o_{k+1})). The paper uses the midpoint (0.5); we default
// to an asymmetric split closer to the k-th NN: the k-th is a single object
// whose annular safe region exits cheaply in the tangential direction,
// whereas every nearby non-result is corner-pinched against the circle, so
// granting the outside the larger share of the gap reduces total updates.
const quarantineSplit = 0.5

// quarantineRadius places the quarantine circle between the k-th NN's
// maximum distance and the next element's minimum distance (Section 3.3).
// With no next element the radius still covers the whole space.
func (m *Monitor) quarantineRadius(maxK, nextMin float64) float64 {
	//lint:allow floatcmp noNextElement is an exact sentinel value, never computed
	if nextMin == noNextElement {
		return maxK + m.opt.Space.Width() + m.opt.Space.Height()
	}
	if nextMin < maxK {
		nextMin = maxK
	}
	return maxK + quarantineSplit*(nextMin-maxK)
}

// knnOrderSensitive is Algorithm 2: best-first search holding at most one
// unresolved safe-region object, probing only when the order cannot be
// decided (lazy probes). exclude (optional) skips objects, as required by
// the constrained search of reevaluation case 1.
//
// It returns the ordered result IDs, the maximum distance bound of the k-th
// result, and the minimum distance of the next queue element (noNextElement
// when the queue ran dry).
func (m *Monitor) knnOrderSensitive(qp geom.Point, k int, exclude map[uint64]bool) ([]uint64, float64, float64) {
	pq := &evalPQ{}
	expand := m.newExpander(pq, qp, exclude)
	m.seedSearch(pq, qp, exclude)
	var results []uint64
	var lastMax float64 // Δ bound of the last appended result
	var held *pqItem

	appendResult := func(it pqItem) {
		results = append(results, it.id)
		_, hi := m.itemBounds(qp, it)
		lastMax = hi
	}

	for len(results) < k && (pq.Len() > 0 || held != nil) {
		if pq.Len() == 0 {
			// Queue exhausted with one object still held: it is the last
			// candidate, so it completes the result.
			appendResult(*held)
			held = nil
			break
		}
		u := pq.pop()
		if !u.isObj {
			expand(u)
			continue
		}
		if held != nil {
			_, heldMax := m.itemBounds(qp, *held)
			if heldMax <= u.key {
				appendResult(*held)
				held = nil
				if len(results) == k {
					pq.push(u) // put u back for the radius computation
					break
				}
			} else {
				h := *held
				held = nil
				// Virtual probes (Section 6.1) may shrink either safe region
				// enough to decide the order without a real probe.
				vh := !h.exact && m.virtualProbe(h.id)
				vu := !u.exact && m.virtualProbe(u.id)
				if vh || vu {
					lo, _ := m.bounds(qp, h.id)
					pq.push(pqItem{key: lo, id: h.id, isObj: true})
					if vu {
						u.key, _ = m.bounds(qp, u.id)
					}
					pq.push(u)
					continue
				}
				// Still ambiguous: probe the held object (mandatory by
				// laziness), re-enqueue both, and continue.
				pq.push(u)
				p := m.probe(h.id)
				pq.push(pqItem{key: qp.Dist(p), id: h.id, isObj: true, exact: true, pt: p})
				continue
			}
		}
		if !u.exact && !m.isExact(u.id) && m.opt.EagerProbes {
			// Ablation: probe immediately rather than holding lazily.
			p := m.probe(u.id)
			u = pqItem{key: qp.Dist(p), id: u.id, isObj: true, exact: true, pt: p}
			pq.push(u)
			continue
		}
		if u.exact || m.isExact(u.id) {
			appendResult(u)
		} else {
			held = &u
		}
	}
	if held != nil && len(results) < k {
		appendResult(*held)
	}
	nextMin := noNextElement
	if fk, ok := m.frontierObjectKey(pq, expand); ok {
		nextMin = fk
	}
	return results, lastMax, nextMin
}

// knnOrderInsensitive evaluates a set-semantics kNN query: up to k objects
// are held simultaneously, and a probe is issued only when the queue front
// could displace the worst held candidate (Section 4.2's order-insensitive
// variant, which needs fewer probes).
func (m *Monitor) knnOrderInsensitive(qp geom.Point, k int, exclude map[uint64]bool) ([]uint64, float64, float64) {
	pq := &evalPQ{}
	expand := m.newExpander(pq, qp, exclude)
	m.seedSearch(pq, qp, exclude)
	var held []pqItem

	worstHeld := func() (int, float64) {
		wi, wv := -1, -1.0
		for i := range held {
			if _, hi := m.itemBounds(qp, held[i]); hi > wv {
				wi, wv = i, hi
			}
		}
		return wi, wv
	}

	for {
		if len(held) == k {
			// Expand nodes until the queue front is an object: the break test
			// must compare against an object's δ, not a node's MinDist, or
			// the decision would depend on tree shape (a forest's shallow
			// trees surface objects earlier than one deep tree).
			topKey, ok := m.frontierObjectKey(pq, expand)
			wi, wv := worstHeld()
			if !ok || wv <= topKey {
				break // all held are certainly among the k nearest
			}
			w := held[wi]
			if !w.exact && !m.isExact(w.id) {
				// A virtual probe may shrink the candidate's region enough to
				// keep it; otherwise a lazy real probe resolves its distance.
				if m.virtualProbe(w.id) {
					continue
				}
				p := m.probe(w.id)
				held[wi] = pqItem{key: qp.Dist(p), id: w.id, isObj: true, exact: true, pt: p}
				continue
			}
			// The worst candidate is an exact point but the queue front is
			// still potentially closer: evict it back into the queue (with a
			// refreshed key — its stale enqueue-time key may underestimate
			// after a probe) and keep searching.
			held = append(held[:wi], held[wi+1:]...)
			w.key, _ = m.itemBounds(qp, w)
			pq.push(w)
		}
		if pq.Len() == 0 {
			break
		}
		u := pq.pop()
		if !u.isObj {
			expand(u)
			continue
		}
		held = append(held, u)
	}

	ids := make([]uint64, 0, len(held))
	maxK := 0.0
	for _, h := range held {
		ids = append(ids, h.id)
		if _, hi := m.itemBounds(qp, h); hi > maxK {
			maxK = hi
		}
	}
	nextMin := noNextElement
	if fk, ok := m.frontierObjectKey(pq, expand); ok {
		nextMin = fk
	}
	return ids, maxK, nextMin
}

// itemBounds returns [δ, Δ] for a queue item, using the exact point when the
// item was resolved by a probe.
func (m *Monitor) itemBounds(qp geom.Point, it pqItem) (float64, float64) {
	if it.exact {
		d := qp.Dist(it.pt)
		return d, d
	}
	return m.bounds(qp, it.id)
}

// constrained1NN finds the nearest object excluding the given set, returning
// the winner, the maximum-distance bound of the winner, the minimum distance
// of the runner-up (noNextElement when none), and whether a winner exists.
// Used by reevaluation case 1 to find a replacement k-th NN.
func (m *Monitor) constrained1NN(qp geom.Point, exclude map[uint64]bool) (uint64, float64, float64, bool) {
	ids, maxK, nextMin := m.knnOrderSensitive(qp, 1, exclude)
	if len(ids) == 0 {
		return 0, 0, 0, false
	}
	return ids[0], maxK, nextMin, true
}
