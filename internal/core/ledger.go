package core

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"srb/internal/query"
)

// ledger.go implements per-query cost accounting: the spatial-query analogue
// of a database slow-query log. The paper's evaluation axis is communication
// cost (probes, safe-region grants, reevaluations); the global Stats counters
// measure the aggregate, while the ledger attributes each unit of work to the
// query that caused it, so "which query is expensive and why" has an answer.
//
// The ledger lives inside monObs and exists only while an observability sink
// is attached, preserving the nil-sink neutrality contract: with obs disabled
// every hook is a single nil-check branch and the monitor's Stats, results,
// and state stay bit-identical.
//
// Attribution is exact by construction: every ledger bump is adjacent to the
// Stats bump it mirrors, and work with no single responsible query (a client
// update's own safe-region recompute, a batch fast-path apply) lands in an
// explicit Unattributed bucket. Deregistered queries fold into a Retired
// aggregate. The invariant — proven by the differential tests — is
//
//	sum(entries) + Unattributed + Retired == global obs counters
//
// for every mirrored counter, on both the sequential and the batch path.

// Estimated wire cost model: rough per-frame byte costs of the NDJSON client
// protocol, so per-query wire bytes track the paper's communication-cost
// metric without parsing actual frames.
const (
	probeWireBytes    = 40 // probe request frame + exact-point response
	grantWireBytes    = 56 // region grant: op tag, object ID, four coordinates
	resultWireBytes   = 24 // result-update frame overhead before member IDs
	resultIDWireBytes = 8  // each member ID in a result update
)

// QueryCost is one per-query ledger entry: the cumulative cost a query has
// imposed on the system since it was registered (or since the sink was
// attached, whichever is later).
type QueryCost struct {
	Query         query.ID `json:"query"`
	Kind          string   `json:"kind,omitempty"`
	Updates       int64    `json:"updates,omitempty"` // only the Unattributed bucket carries these
	Probes        int64    `json:"probes"`
	ProbesAvoided int64    `json:"probes_avoided"`
	Shrinks       int64    `json:"shrinks"` // reachability-circle virtual probes (§6.1)
	SafeRegions   int64    `json:"safe_regions"`
	Reevals       int64    `json:"reevals"`
	ReevalsEnter  int64    `json:"reevals_enter"` // range/circle: object entered the result
	ReevalsExit   int64    `json:"reevals_exit"`  // range/circle: object left the result
	KNNCase1      int64    `json:"knn_case1"`
	KNNCase2      int64    `json:"knn_case2"`
	KNNCase3      int64    `json:"knn_case3"`
	FullReevals   int64    `json:"full_reevals"`
	NewQueryEvals int64    `json:"new_query_evals"`
	ResultChanges int64    `json:"result_changes"`
	Grants        int64    `json:"grants"`
	WireBytes     int64    `json:"wire_bytes"`
}

// Score ranks queries for the hottest-queries view: estimated wire bytes (the
// paper's communication cost) plus a small CPU weight so compute-heavy
// queries that rarely touch the wire still surface.
func (c *QueryCost) Score() int64 {
	return c.WireBytes + 8*(c.Reevals+c.SafeRegions)
}

// add folds o into c, leaving identity fields untouched.
func (c *QueryCost) add(o *QueryCost) {
	c.Updates += o.Updates
	c.Probes += o.Probes
	c.ProbesAvoided += o.ProbesAvoided
	c.Shrinks += o.Shrinks
	c.SafeRegions += o.SafeRegions
	c.Reevals += o.Reevals
	c.ReevalsEnter += o.ReevalsEnter
	c.ReevalsExit += o.ReevalsExit
	c.KNNCase1 += o.KNNCase1
	c.KNNCase2 += o.KNNCase2
	c.KNNCase3 += o.KNNCase3
	c.FullReevals += o.FullReevals
	c.NewQueryEvals += o.NewQueryEvals
	c.ResultChanges += o.ResultChanges
	c.Grants += o.Grants
	c.WireBytes += o.WireBytes
}

// slowOpChainCap bounds the cause chain recorded per operation; an update
// rippling through more queries than this logs a truncated chain.
const slowOpChainCap = 16

// ledger is the mutable accounting state. It is owned by the monitor's
// serialized operation loop; no locking.
type ledger struct {
	entries      map[query.ID]*QueryCost
	unattributed QueryCost
	retired      QueryCost
	retiredN     int64

	// Per-operation attribution context, cleared by opEnd: cur is the query
	// whose (re)evaluation is in progress, causeBy maps an object probed or
	// shrunk during the operation to the query that did it (safe-region
	// recomputes and region grants for that object then bill the same query),
	// and opChain records the queries touched, for the slow-op log.
	cur     *QueryCost
	curID   query.ID
	causeBy map[uint64]query.ID
	opChain []query.ID

	// Folding cursors for the registry counters updated in monObs.done.
	wireTotal     int64
	wireFolded    int64
	retiredFolded int64
}

func newLedger(m *Monitor) *ledger {
	lg := &ledger{
		entries: make(map[query.ID]*QueryCost, len(m.queries)),
		causeBy: make(map[uint64]query.ID),
	}
	for id, q := range m.queries {
		lg.entries[id] = &QueryCost{Query: id, Kind: q.Kind.String()}
	}
	return lg
}

// reset re-bases the ledger on the monitor's current query population,
// zeroing all accumulation. Used after snapshot recovery: the restored Stats
// predate the ledger, so accounting restarts at the recovery point.
func (lg *ledger) reset(m *Monitor) {
	lg.entries = make(map[query.ID]*QueryCost, len(m.queries))
	for id, q := range m.queries {
		lg.entries[id] = &QueryCost{Query: id, Kind: q.Kind.String()}
	}
	lg.unattributed = QueryCost{}
	lg.retired = QueryCost{}
	lg.retiredN = 0
	lg.cur = nil
	lg.causeBy = make(map[uint64]query.ID)
	lg.opChain = lg.opChain[:0]
	lg.wireTotal = 0
	lg.wireFolded = 0
	lg.retiredFolded = 0
}

// bucket returns the entry work should bill to: the focused query when one is
// set, the Unattributed bucket otherwise.
func (lg *ledger) bucket() *QueryCost {
	if lg.cur != nil {
		return lg.cur
	}
	return &lg.unattributed
}

// entry returns (creating if needed) the ledger entry for a query.
func (lg *ledger) entry(q *query.Query) *QueryCost {
	e := lg.entries[q.ID]
	if e == nil {
		e = &QueryCost{Query: q.ID, Kind: q.Kind.String()}
		lg.entries[q.ID] = e
	}
	return e
}

// focus directs subsequent ambient work (probes, shrinks) to q;
// unfocus reverts to the Unattributed bucket.
func (lg *ledger) focus(q *query.Query) {
	lg.cur = lg.entry(q)
	lg.curID = q.ID
}

func (lg *ledger) unfocus() { lg.cur = nil }

// opEnd clears the per-operation attribution context.
func (lg *ledger) opEnd() {
	lg.cur = nil
	if len(lg.causeBy) != 0 {
		lg.causeBy = make(map[uint64]query.ID)
	}
	lg.opChain = lg.opChain[:0]
}

// --- attribution hooks (each adjacent to the Stats bump it mirrors) ----------

func (lg *ledger) noteUpdate() { lg.unattributed.Updates++ }

func (lg *ledger) noteProbe(obj uint64) {
	b := lg.bucket()
	b.Probes++
	b.WireBytes += probeWireBytes
	lg.wireTotal += probeWireBytes
	if lg.cur != nil {
		lg.causeBy[obj] = lg.curID
	}
}

func (lg *ledger) noteProbeAvoided() { lg.bucket().ProbesAvoided++ }

func (lg *ledger) noteShrink(obj uint64) {
	lg.bucket().Shrinks++
	if lg.cur != nil {
		lg.causeBy[obj] = lg.curID
	}
}

// noteSafeRegion bills a full safe-region computation for obj: to the query
// that probed or shrunk it this operation, else to the focused query, else
// Unattributed (the primary object's own recompute after its update).
func (lg *ledger) noteSafeRegion(obj uint64) {
	if qid, ok := lg.causeBy[obj]; ok {
		if e := lg.entries[qid]; e != nil {
			e.SafeRegions++
			return
		}
	}
	lg.bucket().SafeRegions++
}

// noteGrant bills a safe-region grant pushed to the client owning obj,
// attributed like noteSafeRegion.
func (lg *ledger) noteGrant(obj uint64) {
	b := lg.bucket()
	if qid, ok := lg.causeBy[obj]; ok {
		if e := lg.entries[qid]; e != nil {
			b = e
		}
	}
	b.Grants++
	b.WireBytes += grantWireBytes
	lg.wireTotal += grantWireBytes
}

func (lg *ledger) noteReeval(q *query.Query) {
	e := lg.entry(q)
	e.Reevals++
	lg.focus(q)
	if len(lg.opChain) < slowOpChainCap {
		lg.opChain = append(lg.opChain, q.ID)
	}
}

func (lg *ledger) noteEnter(q *query.Query) { lg.entry(q).ReevalsEnter++ }
func (lg *ledger) noteExit(q *query.Query)  { lg.entry(q).ReevalsExit++ }

func (lg *ledger) noteKNNCase(q *query.Query, c int) {
	e := lg.entry(q)
	switch c {
	case 1:
		e.KNNCase1++
	case 2:
		e.KNNCase2++
	case 3:
		e.KNNCase3++
	}
}

func (lg *ledger) noteFullReeval(q *query.Query) { lg.entry(q).FullReevals++ }

func (lg *ledger) noteRegister(q *query.Query) {
	e := lg.entry(q)
	e.NewQueryEvals++
	lg.focus(q)
}

func (lg *ledger) notePublish(q *query.Query, members int, aggregate bool) {
	e := lg.entry(q)
	e.ResultChanges++
	wb := int64(resultWireBytes)
	if !aggregate {
		wb += int64(members) * resultIDWireBytes
	}
	e.WireBytes += wb
	lg.wireTotal += wb
}

// noteFastPath mirrors ApplyPlanned's replayed effect sequence: one source
// update plus one safe-region build, conflict-free by construction, so both
// land in the Unattributed bucket along with the single region grant.
func (lg *ledger) noteFastPath() {
	lg.unattributed.Updates++
	lg.unattributed.SafeRegions++
	lg.unattributed.Grants++
	lg.unattributed.WireBytes += grantWireBytes
	lg.wireTotal += grantWireBytes
}

// retire folds a deregistered query's entry into the Retired aggregate so the
// sum invariant keeps holding after the query is gone.
func (lg *ledger) retire(id query.ID) {
	e := lg.entries[id]
	if e == nil {
		return
	}
	lg.retired.add(e)
	lg.retiredN++
	delete(lg.entries, id)
}

// --- public ledger views -----------------------------------------------------

// QueryCosts returns the per-query ledger entries in ascending query-ID
// order, or nil when no observability sink is attached.
func (m *Monitor) QueryCosts() []QueryCost {
	if m.mobs == nil {
		return nil
	}
	lg := m.mobs.lg
	out := make([]QueryCost, 0, len(lg.entries))
	for _, e := range lg.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// UnattributedCost returns the bucket of work with no single responsible
// query: client updates' own safe-region recomputes and grants, and batch
// fast-path applies.
func (m *Monitor) UnattributedCost() QueryCost {
	if m.mobs == nil {
		return QueryCost{}
	}
	return m.mobs.lg.unattributed
}

// RetiredCost returns the folded totals of deregistered queries; RetiredQueries
// how many entries were folded.
func (m *Monitor) RetiredCost() QueryCost {
	if m.mobs == nil {
		return QueryCost{}
	}
	return m.mobs.lg.retired
}

// RetiredQueries returns the number of ledger entries folded into RetiredCost.
func (m *Monitor) RetiredQueries() int64 {
	if m.mobs == nil {
		return 0
	}
	return m.mobs.lg.retiredN
}

// HotQueries returns the k highest-Score ledger entries, hottest first (ties
// broken by ascending query ID for determinism). Nil without a sink.
func (m *Monitor) HotQueries(k int) []QueryCost {
	all := m.QueryCosts()
	if all == nil || k <= 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		si, sj := all[i].Score(), all[j].Score()
		if si != sj {
			return si > sj
		}
		return all[i].Query < all[j].Query
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// SetSlowOpLog configures the structured slow-operation log: operations
// taking threshold or longer are appended to w as NDJSON records carrying the
// op kind, duration, causal trace ID, work deltas, and the chain of queries
// touched. Requires an attached observability sink (operation timing exists
// only then); threshold <= 0 or w == nil disables.
func (m *Monitor) SetSlowOpLog(threshold time.Duration, w io.Writer) {
	m.slowThresh = threshold
	m.slowW = w
}

// slowOpRecord is one NDJSON line of the slow-op log.
type slowOpRecord struct {
	TS       int64      `json:"ts"` // unix nanoseconds
	Op       string     `json:"op"`
	Trace    uint64     `json:"trace,omitempty"`
	DurNS    int64      `json:"dur_ns"`
	Probes   int64      `json:"probes"`
	Reevals  int64      `json:"reevals"`
	SafeRegs int64      `json:"safe_regions"`
	Results  int64      `json:"result_changes"`
	Chain    []query.ID `json:"chain,omitempty"` // queries touched, capped
}

// writeSlowOp appends one slow-op record. Failures are swallowed: the log is
// diagnostic, the operation itself already succeeded.
func (m *Monitor) writeSlowOp(op string, dur time.Duration, d, before Stats) {
	rec := slowOpRecord{
		TS:       time.Now().UnixNano(), //lint:allow wallclock slow-op log timestamps are wall-clock by design
		Op:       op,
		Trace:    m.opTrace,
		DurNS:    dur.Nanoseconds(),
		Probes:   d.Probes - before.Probes,
		Reevals:  d.Reevaluations - before.Reevaluations,
		SafeRegs: d.SafeRegionsBuilt - before.SafeRegionsBuilt,
		Results:  d.ResultChanges - before.ResultChanges,
	}
	if m.mobs != nil && len(m.mobs.lg.opChain) > 0 {
		rec.Chain = append([]query.ID(nil), m.mobs.lg.opChain...)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = m.slowW.Write(b) //lint:allow errdrop diagnostic log write; the operation already succeeded
}
