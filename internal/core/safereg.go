package core

import (
	"srb/internal/geom"
	"srb/internal/query"
	"srb/internal/saferegion"
)

// maxRelevantForExpansion caps the number of relevant queries under which the
// adaptive cell expansion of Section 7.4 stays active.
const maxRelevantForExpansion = 4

// objective returns the rectangle-scoring function for safe-region
// optimization: the exact Theorem 5.1 exit integral (see geom.MeanExitChord
// for why the paper's perimeter shortcut misbehaves for off-center objects),
// directionally weighted per Section 6.2 when the steady-movement enhancement
// is enabled and the object has a meaningful heading.
func (m *Monitor) objective(st *objectState) geom.Objective {
	if m.opt.Steadiness > 0 && !st.prevLoc.Eq(st.lastLoc) {
		return geom.WeightedExitObjective(st.prevLoc, st.lastLoc, m.opt.Steadiness)
	}
	return geom.ExitObjective(st.lastLoc)
}

// relevantQueriesAt selects the queries constraining a safe region around p
// together with the cell-neighborhood cap the region may span. Adaptive cell
// (Section 7.4): expand the safe-region cap to neighboring cells only while
// the local query load stays low — a wide cap removes pure cell-crossing
// updates in sparse areas, but in dense areas every extra relevant query
// intersects another constraint into the region and shrinks it instead.
// Read-only.
func (m *Monitor) relevantQueriesAt(p geom.Point) ([]*query.Query, geom.Rect) {
	r := m.opt.CellNeighborhood
	relevant := m.grid.AtNeighborhood(p, r)
	for r > 0 && len(relevant) > maxRelevantForExpansion {
		r--
		relevant = m.grid.AtNeighborhood(p, r)
	}
	return relevant, m.grid.NeighborhoodRect(p, r)
}

// safeRegionFromRelevant computes the maximal safe region of st at st.lastLoc
// against the given relevant queries (Section 5): the intersection of the
// per-query regions, with all range queries whose quarantine excludes the
// object handled in one batch pass (Section 5.3) unless disabled. It is pure
// with respect to monitor state, which lets the batch planner (batch.go) run
// it concurrently on a worker pool; for objects that are a result of some
// relevant query it additionally reads the neighbor objects' representations.
func (m *Monitor) safeRegionFromRelevant(st *objectState, relevant []*query.Query, cell geom.Rect) geom.Rect {
	p := st.lastLoc
	obj := m.objective(st)
	sr := cell
	var obstacles []geom.Rect
	for _, q := range relevant {
		switch q.Kind {
		case query.KindRange:
			if q.Rect.Contains(p) {
				sr = sr.Intersect(q.Rect)
			} else if !m.opt.DisableBatchRange {
				obstacles = append(obstacles, q.Rect)
			} else {
				sr = sr.Intersect(saferegion.ForRange(q.Rect, p, cell, obj))
			}
		case query.KindCircle:
			sr = sr.Intersect(m.circleSafeRegion(q, st, cell, obj))
		case query.KindKNN:
			sr = sr.Intersect(m.knnSafeRegion(q, st, cell, obj))
		}
	}
	if len(obstacles) > 0 {
		if m.opt.GreedyBatch {
			sr = sr.Intersect(saferegion.ForRangeBatchGreedy(obstacles, p, cell, obj))
		} else {
			sr = sr.Intersect(saferegion.ForRangeBatch(obstacles, p, cell, obj))
		}
	}
	return sr
}

// recomputeSafeRegion rebuilds the full safe region of an object from all
// relevant queries of its grid cell and mirrors it into the object index.
func (m *Monitor) recomputeSafeRegion(st *objectState) {
	m.stats.SafeRegionsBuilt++
	if m.mobs != nil {
		m.mobs.lg.noteSafeRegion(st.id)
	}
	relevant, cell := m.relevantQueriesAt(st.lastLoc)
	st.safe = clampSafe(m.safeRegionFromRelevant(st, relevant, cell), st.lastLoc)
	m.index.Update(st.id, st.safe)
}

// safeRegionForQuery computes the safe region p.sr_Q induced by a single
// query (used when a probe during a new query's evaluation only needs to
// intersect the existing region with the new query's contribution).
func (m *Monitor) safeRegionForQuery(q *query.Query, st *objectState, cell geom.Rect) geom.Rect {
	switch q.Kind {
	case query.KindRange:
		return saferegion.ForRange(q.Rect, st.lastLoc, cell, m.objective(st))
	case query.KindCircle:
		return m.circleSafeRegion(q, st, cell, m.objective(st))
	default:
		return m.knnSafeRegion(q, st, cell, m.objective(st))
	}
}

// circleSafeRegion computes p.sr_Q for a within-distance query: members roam
// the inscribed rectangle of the circle, non-members its complement (the
// Section 5.2 constructions applied to a fixed circle).
func (m *Monitor) circleSafeRegion(q *query.Query, st *objectState, cell geom.Rect, obj geom.Objective) geom.Rect {
	p := st.lastLoc
	c := q.Circle()
	if q.InResult[st.id] {
		if !c.Contains(p) {
			return geom.RectAround(p) // drifted under delays; next update heals
		}
		return geom.IrlpCircle(c, p, cell, obj)
	}
	if c.Contains(p) {
		return geom.RectAround(p)
	}
	return geom.IrlpCircleComplement(c, p, cell, obj)
}

// knnSafeRegion computes p.sr_Q for a kNN query (Section 5.2):
//
//   - non-result objects roam the complement of the quarantine circle;
//   - order-insensitive results roam the quarantine circle itself;
//   - the i-th result of an order-sensitive query roams the ring between its
//     neighbors' distance bounds, degenerating to a circle for i=1 and to the
//     quarantine radius for i=k.
func (m *Monitor) knnSafeRegion(q *query.Query, st *objectState, cell geom.Rect, obj geom.Objective) geom.Rect {
	p := st.lastLoc
	qc := q.QuarantineCircle()
	if !q.InResult[st.id] {
		if qc.Contains(p) {
			// Inconsistent under delays: freeze the object until its next
			// update rather than hand out a region violating the quarantine.
			return geom.RectAround(p)
		}
		return geom.IrlpCircleComplement(qc, p, cell, obj)
	}
	if !qc.Contains(p) {
		return geom.RectAround(p)
	}
	if !q.OrderSensitive {
		return geom.IrlpCircle(qc, p, cell, obj)
	}
	i := 0
	for ; i < len(q.Results); i++ {
		if q.Results[i] == st.id {
			break
		}
	}
	d := q.Point.Dist(p)
	inner := 0.0
	if i > 0 {
		prev := q.Results[i-1]
		_, inner = m.bounds(q.Point, prev)
		if m.isExact(prev) {
			// The neighbor's safe region is momentarily a point (probed, not
			// yet recomputed): split the slack between the two objects
			// (Section 5.2).
			inner = (q.Point.Dist(m.objects[prev].lastLoc) + d) / 2
		}
	}
	outer := q.QRadius
	if i < len(q.Results)-1 {
		next := q.Results[i+1]
		outer, _ = m.bounds(q.Point, next)
		if m.isExact(next) {
			outer = (q.Point.Dist(m.objects[next].lastLoc) + d) / 2
		}
	}
	// Keep the object inside its own ring even when bounds drifted under
	// communication delays.
	if inner > d {
		inner = d
	}
	if outer < d {
		outer = d
	}
	return geom.IrlpRing(geom.Ring{Center: q.Point, Inner: inner, Outer: outer}, p, cell, obj)
}

// clampSafe guards a computed region against floating-point drift: the final
// safe region must contain the object's reported location.
func clampSafe(r geom.Rect, p geom.Point) geom.Rect {
	if !r.IsValid() {
		return geom.RectAround(p)
	}
	if !r.Contains(p) {
		return r.Union(geom.RectAround(p))
	}
	return r
}
