package core

import (
	"fmt"

	"srb/internal/geom"
	"srb/internal/rtree"
)

// ObjIndex is the pluggable spatial index over object safe regions. The
// Monitor owns exactly one; by default it is a single R*-tree (localIndex),
// and internal/shard swaps in a Forest of per-shard trees behind the same
// contract. The interface is deliberately shaped so that every monitor
// algorithm produces bit-identical state regardless of how the index is
// partitioned:
//
//   - Collect returns candidate sets, not candidate sequences: callers sort
//     by object ID before visiting, so probe order and result order never
//     depend on tree shape.
//   - Best-first kNN search sees the index as a set of (shard, root) seeds
//     plus a Visit expansion primitive; the evalPQ comparator (evaluate.go)
//     orders equal-key entries canonically, which makes the object pop
//     sequence a pure function of monitor state (see ARCHITECTURE.md
//     "Determinism guarantees").
//
// Implementations are not required to be safe for concurrent use: the
// Monitor serializes all calls, mirroring its own single-writer contract.
type ObjIndex interface {
	// Insert adds an object's safe region to the index. The id must not be
	// present.
	Insert(id uint64, r geom.Rect)
	// Delete removes an object, reporting whether it was present.
	Delete(id uint64) bool
	// Update replaces an object's indexed region.
	Update(id uint64, r geom.Rect)
	// Get returns the indexed region of an object.
	Get(id uint64) (geom.Rect, bool)
	// Len returns the number of indexed objects.
	Len() int
	// Collect appends every indexed item whose region intersects q to dst
	// and returns the extended slice. Order is unspecified — callers that
	// need determinism sort the result (see rangeCandidates).
	Collect(q geom.Rect, dst []rtree.Item) []rtree.Item
	// Seeds yields one (shard, root) pair per non-empty constituent tree,
	// seeding a best-first search frontier. A single-tree index yields at
	// most one seed with shard 0.
	Seeds(yield func(shard int, root *rtree.Node))
	// Visit expands one node of the identified shard's tree, yielding each
	// child entry exactly once. The yield callback runs to completion before
	// Visit returns; implementations may execute it on another goroutine as
	// long as Visit itself provides the happens-before edge.
	Visit(shard int, n *rtree.Node, yield IndexVisitor)
	// CheckInvariants verifies internal index consistency (srbdebug builds
	// and tests).
	CheckInvariants() error
}

// IndexVisitor receives one entry of an expanded index node: either a child
// node with its bounding rect (isItem false) or a leaf item (isItem true).
type IndexVisitor func(child *rtree.Node, childRect geom.Rect, it rtree.Item, isItem bool)

// ExpandNode yields every entry of one R*-tree node through v. It is the
// shared expansion primitive behind ObjIndex.Visit: localIndex calls it
// inline, a sharded index calls it inside the owning shard's worker.
func ExpandNode(n *rtree.Node, v IndexVisitor) {
	for i := 0; i < n.Count(); i++ {
		if n.IsLeaf() {
			v(nil, geom.Rect{}, n.ItemAt(i), true)
		} else {
			v(n.ChildAt(i), n.RectAt(i), rtree.Item{}, false)
		}
	}
}

// localIndex is the default ObjIndex: one R*-tree, zero indirection beyond
// the interface calls.
type localIndex struct {
	t *rtree.Tree
}

func newLocalIndex(capacity int) *localIndex {
	return &localIndex{t: rtree.NewWithCapacity(capacity)}
}

func (x *localIndex) Insert(id uint64, r geom.Rect) { x.t.Insert(id, r) }
func (x *localIndex) Delete(id uint64) bool         { return x.t.Delete(id) }
func (x *localIndex) Update(id uint64, r geom.Rect) { x.t.Update(id, r) }
func (x *localIndex) Get(id uint64) (geom.Rect, bool) {
	return x.t.Get(id)
}
func (x *localIndex) Len() int { return x.t.Len() }

func (x *localIndex) Collect(q geom.Rect, dst []rtree.Item) []rtree.Item {
	x.t.Search(q, func(it rtree.Item) bool {
		dst = append(dst, it)
		return true
	})
	return dst
}

func (x *localIndex) Seeds(yield func(shard int, root *rtree.Node)) {
	if x.t.Len() > 0 {
		yield(0, x.t.Root())
	}
}

func (x *localIndex) Visit(_ int, n *rtree.Node, yield IndexVisitor) {
	ExpandNode(n, yield)
}

func (x *localIndex) CheckInvariants() error { return x.t.CheckInvariants() }

// SetIndex replaces the monitor's object index. It must be called before any
// object or query is registered — the index is the authoritative spatial
// store, and swapping it under live state would orphan every indexed region.
// remote.Server calls this between construction and Serve/Recover when the
// -shards flag selects a sharded index.
func (m *Monitor) SetIndex(idx ObjIndex) error {
	if idx == nil {
		return fmt.Errorf("core: SetIndex: nil index")
	}
	if len(m.objects) != 0 || len(m.queries) != 0 {
		return fmt.Errorf("core: SetIndex on a non-empty monitor (%d objects, %d queries)",
			len(m.objects), len(m.queries))
	}
	m.index = idx
	return nil
}
