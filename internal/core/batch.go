package core

import (
	"srb/internal/geom"
	"srb/internal/query"
)

// This file is the Monitor half of the batch/parallel update pipeline (see
// internal/parallel for the orchestration half). The paper's server model is
// strictly sequential; the pipeline keeps that model observable while moving
// the CPU hot spot — safe-region geometry — off the serial path:
//
//  1. PlanUpdate runs read-only against the current state and precomputes
//     everything a conflict-free update would do, most importantly the
//     Section 5 safe-region geometry. Because it is read-only it may run for
//     many updates concurrently.
//  2. ApplyPlanned revalidates the plan's inputs against the live state and,
//     when nothing moved underneath it, replays the exact effect sequence of
//     Update. On any drift it refuses and the caller falls back to Update.
//
// The contract is strict equivalence: for any batch, planning + applying in
// ascending object-ID order yields bit-identical monitor state, returned
// safe regions, published results, and Stats counters as calling Update
// sequentially in the same order. The fast path is taken only when that is
// provable, so equivalence holds by construction; the differential harness
// in internal/parallel enforces it empirically.

// planDep records one relevant query's mutable inputs to the planned
// safe-region geometry. Range/circle geometry is immutable after
// registration; only a kNN quarantine radius changes in place.
type planDep struct {
	id      query.ID
	qradius float64
}

// PlannedUpdate is a precomputed location update produced by PlanUpdate. It
// is immutable and opaque to callers; it stays valid until the monitor
// mutates state it depends on, which ApplyPlanned detects.
type PlannedUpdate struct {
	id     uint64
	loc    geom.Point // the reported new location
	oldLoc geom.Point // st.lastLoc observed at plan time
	cell   geom.Rect  // neighborhood cap the geometry was computed against
	safe   geom.Rect  // precomputed safe region at loc
	deps   []planDep  // relevant-query snapshot at plan time
}

// Object returns the updating object's ID.
func (p *PlannedUpdate) Object() uint64 { return p.id }

// Loc returns the planned new location.
func (p *PlannedUpdate) Loc() geom.Point { return p.loc }

// PlanUpdate precomputes the effect of Update(id, p) for a conflict-free
// update: the object exists, the movement from its last reported location to
// p touches no query's quarantine area (grid conflict partition rule), and
// the object is in no query's result. For such an update the sequential path
// performs no reevaluation and no probe; its entire cost is the safe-region
// recomputation, which is precomputed here.
//
// PlanUpdate is read-only and safe for concurrent use by multiple goroutines
// provided no monitor mutation runs concurrently (the pipeline's plan phase
// runs strictly between operations).
//
// The second return is false when the update is not plannable and must take
// the sequential path.
//
//srb:hotpath
func (m *Monitor) PlanUpdate(id uint64, p geom.Point) (PlannedUpdate, bool) {
	st, ok := m.objects[id]
	if !ok {
		return PlannedUpdate{}, false // registration path (AddObject)
	}
	if len(m.resultOf[id]) != 0 {
		return PlannedUpdate{}, false // member updates reevaluate their queries
	}
	if len(m.grid.Affected(st.lastLoc, p)) != 0 {
		return PlannedUpdate{}, false // movement touches a quarantine area
	}
	relevant, cell := m.relevantQueriesAt(p)
	deps := make([]planDep, len(relevant))
	for i, q := range relevant {
		if q.InResult[id] {
			return PlannedUpdate{}, false // stale membership; serialize
		}
		deps[i] = planDep{id: q.ID, qradius: q.QRadius}
	}
	// The update will set prevLoc to the current last location; mirror that in
	// a scratch state so the steady-movement objective sees the same heading
	// the sequential recompute would.
	tmp := objectState{id: id, lastLoc: p, prevLoc: st.lastLoc}
	safe := clampSafe(m.safeRegionFromRelevant(&tmp, relevant, cell), p)
	return PlannedUpdate{id: id, loc: p, oldLoc: st.lastLoc, cell: cell, safe: safe, deps: deps}, true
}

// ApplyPlanned applies a planned update after revalidating every input the
// plan depends on: the object's last reported location, its non-membership,
// the emptiness of the affected-query set, and the relevant-query snapshot
// (identity, kNN quarantine radii, and the neighborhood cap). When all inputs
// are bit-identical to plan time, the precomputed geometry is exactly what
// recomputeSafeRegion would produce, and the sequential Update's effect
// sequence is replayed without recomputing it. Otherwise it returns false and
// the caller must fall back to Update.
//
//srb:hotpath
func (m *Monitor) ApplyPlanned(pl *PlannedUpdate) ([]SafeRegionUpdate, bool) {
	st, ok := m.objects[pl.id]
	//lint:allow floatcmp plan-cache identity: any bit drift must invalidate the plan
	if !ok || st.lastLoc != pl.oldLoc || len(m.resultOf[pl.id]) != 0 {
		return nil, false
	}
	if len(m.grid.Affected(st.lastLoc, pl.loc)) != 0 {
		return nil, false
	}
	relevant, cell := m.relevantQueriesAt(pl.loc)
	//lint:allow floatcmp plan-cache identity: any bit drift must invalidate the plan
	if cell != pl.cell || len(relevant) != len(pl.deps) {
		return nil, false
	}
	for i, q := range relevant {
		d := pl.deps[i]
		//lint:allow floatcmp plan-cache identity: any bit drift must invalidate the plan
		if q.ID != d.id || q.QRadius != d.qradius || q.InResult[pl.id] {
			return nil, false
		}
	}
	// Identical inputs: replay Update's exact effect sequence for the
	// conflict-free case, including the intermediate point-rectangle index
	// state so the R*-tree evolves through the same operations and stays
	// structurally identical to the sequential run.
	m.stats.SourceUpdates++
	st.prevLoc = st.lastLoc
	st.lastLoc = pl.loc
	st.lastTime = m.now
	st.safe = geom.RectAround(pl.loc)
	m.index.Update(pl.id, st.safe)
	m.stats.SafeRegionsBuilt++
	st.safe = pl.safe
	m.index.Update(pl.id, st.safe)
	m.noteFastPath()
	m.assertInvariants()
	return []SafeRegionUpdate{{Object: pl.id, Region: st.safe}}, true
}
