package rtree

import (
	"testing"

	"srb/internal/geom"
)

// FuzzTreeOps drives the R*-tree through an arbitrary insert/update/delete
// stream decoded from the fuzz input, with CheckInvariants as the oracle
// after every mutation and a shadow map as the oracle for final contents.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 10, 20, 30, 1, 1, 0, 0, 0, 2, 2, 200, 100, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewWithCapacity(4)
		ref := make(map[uint64]geom.Rect)
		steps := 0
		for len(data) >= 5 && steps < 256 {
			op, id := data[0]%3, uint64(data[1]%32)
			x := float64(data[2]) / 255
			y := float64(data[3]) / 255
			w := float64(data[4]) / 255 * 0.2
			r := geom.R(x, y, x+w, y+w)
			switch op {
			case 0, 2: // Insert doubles as Update for a present id
				tr.Insert(id, r)
				ref[id] = r
			case 1:
				wantPresent := false
				if _, ok := ref[id]; ok {
					wantPresent = true
					delete(ref, id)
				}
				if got := tr.Delete(id); got != wantPresent {
					t.Fatalf("Delete(%d) = %v, shadow map says %v", id, got, wantPresent)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after step %d (op %d id %d rect %v): %v", steps, op, id, r, err)
			}
			data = data[5:]
			steps++
		}
		if tr.Len() != len(ref) {
			t.Fatalf("tree has %d items, shadow map %d", tr.Len(), len(ref))
		}
		for id, want := range ref {
			got, ok := tr.Get(id)
			//lint:allow floatcmp identity: the tree must return the exact stored rect
			if !ok || got != want {
				t.Fatalf("Get(%d) = %v, %v; want %v, true", id, got, ok, want)
			}
		}
		// Search over the whole space must surface every stored item once.
		seen := make(map[uint64]int)
		tr.Search(geom.R(-1, -1, 2, 2), func(it Item) bool {
			seen[it.ID]++
			return true
		})
		if len(seen) != len(ref) {
			t.Fatalf("full-space search found %d ids, want %d", len(seen), len(ref))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("full-space search returned id %d %d times", id, n)
			}
			if _, ok := ref[id]; !ok {
				t.Fatalf("full-space search returned unknown id %d", id)
			}
		}
	})
}
