package rtree

import (
	"container/heap"

	"srb/internal/geom"
)

// NearestIter enumerates items in non-decreasing order of their rectangle's
// minimum distance δ(q, ·) to a query point, using best-first search
// (Hjaltason & Samet, TODS 1999). It is incremental: callers pull as many
// neighbors as they need.
type NearestIter struct {
	q  geom.Point
	pq distHeap
}

type distEntry struct {
	dist float64
	node *Node // nil when this is an item
	item Item
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Nearest returns an iterator over items ordered by δ(q, rect).
func (t *Tree) Nearest(q geom.Point) *NearestIter {
	it := &NearestIter{q: q}
	if t.size > 0 {
		it.pq = append(it.pq, distEntry{dist: 0, node: t.root})
	}
	return it
}

// Next returns the next item and its δ distance; ok=false when exhausted.
func (it *NearestIter) Next() (Item, float64, bool) {
	for len(it.pq) > 0 {
		top := heap.Pop(&it.pq).(distEntry)
		if top.node == nil {
			return top.item, top.dist, true
		}
		n := top.node
		for i := range n.entries {
			e := &n.entries[i]
			d := e.rect.MinDist(it.q)
			if e.child != nil {
				heap.Push(&it.pq, distEntry{dist: d, node: e.child})
			} else {
				heap.Push(&it.pq, distEntry{dist: d, item: e.item})
			}
		}
	}
	return Item{}, 0, false
}

// KNearest returns the k items with smallest δ(q, rect), fewer when the tree
// holds fewer than k items.
func (t *Tree) KNearest(q geom.Point, k int) []Item {
	it := t.Nearest(q)
	out := make([]Item, 0, k)
	for len(out) < k {
		item, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, item)
	}
	return out
}
