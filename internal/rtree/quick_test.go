package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"srb/internal/geom"
)

// TestQuickOpSequences runs randomized insert/update/delete sequences against
// a map reference: after every batch the tree's invariants must hold and a
// full-space search must return exactly the live IDs.
func TestQuickOpSequences(t *testing.T) {
	f := func(seed int64, capSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + int(capSel%13)
		tr := NewWithCapacity(capacity)
		ref := map[uint64]geom.Rect{}
		nextID := uint64(0)
		for op := 0; op < 600; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				x, y := rng.Float64(), rng.Float64()
				r := geom.R(x, y, x+rng.Float64()*0.1, y+rng.Float64()*0.1)
				tr.Insert(nextID, r)
				ref[nextID] = r
				nextID++
			case 2: // update random live
				if len(ref) == 0 {
					continue
				}
				id := uint64(rng.Intn(int(nextID)))
				if _, ok := ref[id]; !ok {
					continue
				}
				x, y := rng.Float64(), rng.Float64()
				r := geom.R(x, y, x+rng.Float64()*0.05, y+rng.Float64()*0.05)
				tr.Update(id, r)
				ref[id] = r
			default: // delete random live
				if len(ref) == 0 {
					continue
				}
				id := uint64(rng.Intn(int(nextID)))
				_, ok := ref[id]
				if tr.Delete(id) != ok {
					return false
				}
				delete(ref, id)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		if tr.Len() != len(ref) {
			return false
		}
		got := map[uint64]geom.Rect{}
		tr.All(func(it Item) bool {
			got[it.ID] = it.Rect
			return true
		})
		if len(got) != len(ref) {
			return false
		}
		for id, r := range ref {
			if got[id] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
