package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"srb/internal/geom"
)

func randRect(rng *rand.Rand, maxSide float64) geom.Rect {
	x := rng.Float64()
	y := rng.Float64()
	return geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*maxSide, MaxY: y + rng.Float64()*maxSide}
}

func bruteRange(items map[uint64]geom.Rect, q geom.Rect) map[uint64]bool {
	out := map[uint64]bool{}
	for id, r := range items {
		if r.Intersects(q) {
			out[id] = true
		}
	}
	return out
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	ref := map[uint64]geom.Rect{}
	for i := 0; i < 2000; i++ {
		r := randRect(rng, 0.05)
		tr.Insert(uint64(i), r)
		ref[uint64(i)] = r
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := randRect(rng, 0.2)
		want := bruteRange(ref, q)
		got := map[uint64]bool{}
		tr.Search(q, func(it Item) bool {
			if got[it.ID] {
				t.Fatalf("duplicate result %d", it.ID)
			}
			got[it.ID] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("missing id %d", id)
			}
		}
	}
}

func TestDeleteAndCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	ref := map[uint64]geom.Rect{}
	for i := 0; i < 1500; i++ {
		r := randRect(rng, 0.03)
		tr.Insert(uint64(i), r)
		ref[uint64(i)] = r
	}
	// Delete two thirds in random order.
	ids := make([]uint64, 0, len(ref))
	for id := range ref {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:1000] {
		if !tr.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
		delete(ref, id)
	}
	if tr.Delete(99999) {
		t.Fatal("deleting unknown id must return false")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	q := geom.Rect{MinX: 0, MinY: 0, MaxX: 1.2, MaxY: 1.2}
	got := map[uint64]bool{}
	tr.Search(q, func(it Item) bool { got[it.ID] = true; return true })
	if len(got) != len(ref) {
		t.Fatalf("search after delete: %d vs %d", len(got), len(ref))
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	for i := 0; i < 300; i++ {
		tr.Insert(uint64(i), geom.R(float64(i)/300, 0, float64(i)/300+0.01, 0.01))
	}
	for i := 0; i < 300; i++ {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("delete %d", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("Bounds on empty tree should report !ok")
	}
}

func TestUpdateBottomUpFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	ref := map[uint64]geom.Rect{}
	for i := 0; i < 1000; i++ {
		r := randRect(rng, 0.02)
		tr.Insert(uint64(i), r)
		ref[uint64(i)] = r
	}
	// Shrinking an entry slightly must take the fast path: the new rect is
	// inside the parent entry's MBR.
	_, _, fastBefore, _ := tr.Stats()
	for i := 0; i < 1000; i++ {
		r := ref[uint64(i)]
		c := r.Center()
		nr := geom.Rect{MinX: c.X, MinY: c.Y, MaxX: c.X, MaxY: c.Y}
		tr.Update(uint64(i), nr)
		ref[uint64(i)] = nr
	}
	_, _, fastAfter, slow := tr.Stats()
	if fastAfter-fastBefore != 1000 {
		t.Fatalf("expected 1000 fast updates, got %d (slow %d)", fastAfter-fastBefore, slow)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for id, r := range ref {
		got, ok := tr.Get(id)
		if !ok || got != r {
			t.Fatalf("Get(%d) = %v,%v want %v", id, got, ok, r)
		}
	}
}

func TestUpdateMovesFarAway(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := New()
	ref := map[uint64]geom.Rect{}
	for i := 0; i < 800; i++ {
		r := randRect(rng, 0.02)
		tr.Insert(uint64(i), r)
		ref[uint64(i)] = r
	}
	for trial := 0; trial < 3000; trial++ {
		id := uint64(rng.Intn(800))
		r := randRect(rng, 0.02)
		tr.Update(id, r)
		ref[id] = r
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randRect(rng, 0.3)
		want := bruteRange(ref, q)
		got := map[uint64]bool{}
		tr.Search(q, func(it Item) bool { got[it.ID] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("after updates: got %d want %d", len(got), len(want))
		}
	}
}

func TestInsertExistingIDReplaces(t *testing.T) {
	tr := New()
	tr.Insert(7, geom.R(0, 0, 0.1, 0.1))
	tr.Insert(7, geom.R(0.5, 0.5, 0.6, 0.6))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	r, ok := tr.Get(7)
	if !ok || r != geom.R(0.5, 0.5, 0.6, 0.6) {
		t.Fatalf("Get = %v,%v", r, ok)
	}
}

func TestNearestOrderMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New()
	type rec struct {
		id uint64
		d  float64
	}
	ref := map[uint64]geom.Rect{}
	for i := 0; i < 1200; i++ {
		r := randRect(rng, 0.01)
		tr.Insert(uint64(i), r)
		ref[uint64(i)] = r
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		var brute []rec
		for id, r := range ref {
			brute = append(brute, rec{id, r.MinDist(q)})
		}
		sort.Slice(brute, func(i, j int) bool { return brute[i].d < brute[j].d })
		it := tr.Nearest(q)
		for k := 0; k < 25; k++ {
			item, d, ok := it.Next()
			if !ok {
				t.Fatal("iterator exhausted early")
			}
			if d != ref[item.ID].MinDist(q) {
				t.Fatalf("reported distance mismatch for %d", item.ID)
			}
			// Distances must be non-decreasing and match the brute ranking's
			// distance at that position (IDs may tie).
			if got, want := d, brute[k].d; gotAbs(got-want) > 1e-12 {
				t.Fatalf("k=%d: dist %v, want %v", k, got, want)
			}
		}
	}
}

func TestKNearest(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		x := float64(i) * 0.1
		tr.Insert(uint64(i), geom.R(x, 0, x, 0))
	}
	got := tr.KNearest(geom.Pt(0.34, 0), 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].ID != 3 {
		t.Fatalf("first = %d, want 3", got[0].ID)
	}
	// k larger than the population returns everything.
	if all := tr.KNearest(geom.Pt(0, 0), 99); len(all) != 10 {
		t.Fatalf("k>n: len = %d", len(all))
	}
	empty := New()
	if r := empty.KNearest(geom.Pt(0, 0), 3); len(r) != 0 {
		t.Fatalf("empty tree: %v", r)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), geom.R(0.5, 0.5, 0.5, 0.5))
	}
	n := 0
	tr.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, func(Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSmallCapacityTree(t *testing.T) {
	tr := NewWithCapacity(4)
	rng := rand.New(rand.NewSource(6))
	ref := map[uint64]geom.Rect{}
	for i := 0; i < 500; i++ {
		r := randRect(rng, 0.05)
		tr.Insert(uint64(i), r)
		ref[uint64(i)] = r
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a deep tree, height = %d", tr.Height())
	}
	q := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}
	want := bruteRange(ref, q)
	got := 0
	tr.Search(q, func(Item) bool { got++; return true })
	if got != len(want) {
		t.Fatalf("got %d want %d", got, len(want))
	}
}

func TestAllVisitsEverything(t *testing.T) {
	tr := New()
	for i := 0; i < 321; i++ {
		tr.Insert(uint64(i), geom.R(rand.Float64(), rand.Float64(), rand.Float64(), rand.Float64()))
	}
	n := 0
	tr.All(func(Item) bool { n++; return true })
	if n != 321 {
		t.Fatalf("All visited %d", n)
	}
}

func gotAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestBulkLoadMatchesInserted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 5, 16, 17, 100, 2500} {
		items := make([]Item, n)
		ref := map[uint64]geom.Rect{}
		for i := 0; i < n; i++ {
			r := randRect(rng, 0.02)
			items[i] = Item{ID: uint64(i), Rect: r}
			ref[uint64(i)] = r
		}
		tr := BulkLoad(items)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: invariants: %v", n, err)
		}
		for trial := 0; trial < 10 && n > 0; trial++ {
			q := randRect(rng, 0.3)
			want := bruteRange(ref, q)
			got := map[uint64]bool{}
			tr.Search(q, func(it Item) bool { got[it.ID] = true; return true })
			if len(got) != len(want) {
				t.Fatalf("n=%d trial %d: got %d want %d", n, trial, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadedTreeSupportsMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	items := make([]Item, 1000)
	ref := map[uint64]geom.Rect{}
	for i := range items {
		r := randRect(rng, 0.02)
		items[i] = Item{ID: uint64(i), Rect: r}
		ref[uint64(i)] = r
	}
	tr := BulkLoadWithCapacity(items, 8)
	for step := 0; step < 2000; step++ {
		switch rng.Intn(3) {
		case 0:
			id := uint64(1000 + step)
			r := randRect(rng, 0.02)
			tr.Insert(id, r)
			ref[id] = r
		case 1:
			id := uint64(rng.Intn(1000))
			if _, ok := ref[id]; ok {
				tr.Delete(id)
				delete(ref, id)
			}
		default:
			id := uint64(rng.Intn(1000))
			if _, ok := ref[id]; ok {
				r := randRect(rng, 0.02)
				tr.Update(id, r)
				ref[id] = r
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d want %d", tr.Len(), len(ref))
	}
	q := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}
	want := bruteRange(ref, q)
	got := 0
	tr.Search(q, func(Item) bool { got++; return true })
	if got != len(want) {
		t.Fatalf("search after churn: %d want %d", got, len(want))
	}
}

func TestBulkLoadFasterQueryQuality(t *testing.T) {
	// STR-packed trees should answer range queries touching no more leaves
	// than insertion-built trees of the same capacity (sanity: same results).
	rng := rand.New(rand.NewSource(15))
	items := make([]Item, 5000)
	for i := range items {
		r := randRect(rng, 0.01)
		items[i] = Item{ID: uint64(i), Rect: r}
	}
	bulk := BulkLoad(items)
	inc := New()
	for _, it := range items {
		inc.Insert(it.ID, it.Rect)
	}
	for trial := 0; trial < 20; trial++ {
		q := randRect(rng, 0.1)
		a, b := 0, 0
		bulk.Search(q, func(Item) bool { a++; return true })
		inc.Search(q, func(Item) bool { b++; return true })
		if a != b {
			t.Fatalf("result mismatch: %d vs %d", a, b)
		}
	}
}
