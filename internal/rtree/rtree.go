// Package rtree implements an in-memory R*-tree (Beckmann et al., SIGMOD
// 1990) over axis-aligned rectangles. It is the object index of the
// monitoring framework (Section 3.2 of the paper): leaf entries are the safe
// regions (or exact positions) of moving objects, keyed by object ID.
//
// Because safe regions change on every location update, the tree supports the
// bottom-up update technique of Lee et al. (VLDB 2003): a hash index from
// object ID to its leaf makes in-place updates O(1) when the new rectangle
// still fits the leaf's bounding box, falling back to a localized
// delete+reinsert otherwise.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"srb/internal/geom"
)

// Item is a leaf payload: an object ID together with its indexed rectangle.
type Item struct {
	ID   uint64
	Rect geom.Rect
}

const (
	defaultMax = 16
	// reinsertFraction is the R* forced-reinsertion share (30 %).
	reinsertFraction = 0.3
)

type entry struct {
	rect  geom.Rect
	child *Node // nil for leaf-level entries
	item  Item  // valid when child == nil
}

// Node is a tree node, exported opaquely so that query algorithms (e.g. the
// best-first kNN of Algorithm 2) can traverse the index with their own
// priority queues.
type Node struct {
	parent  *Node
	level   int // 0 for leaves
	entries []entry
}

// IsLeaf reports whether the node stores items rather than child nodes.
func (n *Node) IsLeaf() bool { return n.level == 0 }

// Count returns the number of entries in the node.
func (n *Node) Count() int { return len(n.entries) }

// ChildAt returns the i-th child node of an internal node.
func (n *Node) ChildAt(i int) *Node { return n.entries[i].child }

// ItemAt returns the i-th item of a leaf node.
func (n *Node) ItemAt(i int) Item { return n.entries[i].item }

// RectAt returns the bounding rectangle of the i-th entry.
func (n *Node) RectAt(i int) geom.Rect { return n.entries[i].rect }

func (n *Node) mbr() geom.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Tree is an R*-tree. It is not safe for concurrent mutation; the framework
// serializes location updates (Section 3 assumption 2).
type Tree struct {
	root   *Node
	size   int
	max    int
	min    int
	leafOf map[uint64]*Node

	// Stats counters, useful for the CPU-cost experiments and ablations.
	splits      int
	reinserts   int
	fastUpdates int
	slowUpdates int
}

// New returns an empty tree with the default node capacity.
func New() *Tree { return NewWithCapacity(defaultMax) }

// NewWithCapacity returns an empty tree whose nodes hold up to max entries.
func NewWithCapacity(max int) *Tree {
	if max < 4 {
		max = 4
	}
	return &Tree{
		root:   &Node{level: 0},
		max:    max,
		min:    max * 2 / 5, // R* recommends m ≈ 40 % of M
		leafOf: make(map[uint64]*Node),
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree that is a single leaf).
func (t *Tree) Height() int { return t.root.level + 1 }

// Root returns the root node for external traversals.
func (t *Tree) Root() *Node { return t.root }

// Bounds returns the bounding rectangle of all items and false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

// Stats reports internal counters: node splits, forced reinsertions, and how
// many updates took the fast bottom-up path versus delete+reinsert.
func (t *Tree) Stats() (splits, reinserts, fastUpdates, slowUpdates int) {
	return t.splits, t.reinserts, t.fastUpdates, t.slowUpdates
}

// Insert adds an item. Inserting an ID that is already present replaces its
// rectangle (via Update).
func (t *Tree) Insert(id uint64, r geom.Rect) {
	if _, ok := t.leafOf[id]; ok {
		t.Update(id, r)
		return
	}
	t.insertEntry(entry{rect: r, item: Item{ID: id, Rect: r}}, 0, make(map[int]bool))
	t.size++
}

// Delete removes the item with the given ID, reporting whether it existed.
func (t *Tree) Delete(id uint64) bool {
	leaf, ok := t.leafOf[id]
	if !ok {
		return false
	}
	idx := -1
	for i := range leaf.entries {
		if leaf.entries[i].child == nil && leaf.entries[i].item.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		// The leaf map is maintained on every structural change; a miss here
		// would be an invariant violation.
		panic(fmt.Sprintf("rtree: leaf map points to node without item %d", id))
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	delete(t.leafOf, id)
	t.size--
	t.condense(leaf)
	return true
}

// Update changes the rectangle of an existing item using the bottom-up path
// when possible. Unknown IDs are inserted.
func (t *Tree) Update(id uint64, r geom.Rect) {
	leaf, ok := t.leafOf[id]
	if !ok {
		t.Insert(id, r)
		return
	}
	// Fast path: the new rectangle remains inside the leaf MBR as seen by the
	// parent entry, so no ancestor rectangle needs to change structurally.
	if p := leaf.parent; p != nil {
		pe := p.entryOf(leaf)
		if pe.rect.ContainsRect(r) {
			for i := range leaf.entries {
				if leaf.entries[i].child == nil && leaf.entries[i].item.ID == id {
					leaf.entries[i].rect = r
					leaf.entries[i].item.Rect = r
					t.fastUpdates++
					return
				}
			}
		}
	} else {
		// Root is a leaf: just replace in place.
		for i := range leaf.entries {
			if leaf.entries[i].child == nil && leaf.entries[i].item.ID == id {
				leaf.entries[i].rect = r
				leaf.entries[i].item.Rect = r
				t.fastUpdates++
				return
			}
		}
	}
	t.slowUpdates++
	t.Delete(id)
	t.Insert(id, r)
}

// Get returns the stored rectangle for an ID.
func (t *Tree) Get(id uint64) (geom.Rect, bool) {
	leaf, ok := t.leafOf[id]
	if !ok {
		return geom.Rect{}, false
	}
	for i := range leaf.entries {
		if leaf.entries[i].child == nil && leaf.entries[i].item.ID == id {
			return leaf.entries[i].rect, true
		}
	}
	return geom.Rect{}, false
}

// Search invokes fn for every item whose rectangle intersects q, stopping
// early when fn returns false.
func (t *Tree) Search(q geom.Rect, fn func(Item) bool) {
	t.search(t.root, q, fn)
}

func (t *Tree) search(n *Node, q geom.Rect, fn func(Item) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(q) {
			continue
		}
		if e.child != nil {
			if !t.search(e.child, q, fn) {
				return false
			}
		} else if !fn(e.item) {
			return false
		}
	}
	return true
}

// All invokes fn for every stored item.
func (t *Tree) All(fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, t.root.mbr(), fn)
}

func (n *Node) entryOf(child *Node) *entry {
	for i := range n.entries {
		if n.entries[i].child == child {
			return &n.entries[i]
		}
	}
	panic("rtree: parent does not reference child")
}

// --- insertion --------------------------------------------------------------

func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	n := t.chooseSubtree(e.rect, level)
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	} else {
		t.leafOf[e.item.ID] = n
	}
	t.adjustUpward(n)
	if len(n.entries) > t.max {
		t.overflow(n, reinserted)
	}
}

func (t *Tree) chooseSubtree(r geom.Rect, level int) *Node {
	n := t.root
	for n.level > level {
		best := t.pickChild(n, r)
		n = n.entries[best].child
	}
	return n
}

// pickChild implements the R* ChooseSubtree heuristic: minimum overlap
// enlargement for nodes pointing to leaves, otherwise minimum area
// enlargement, with ties broken by smaller area.
func (t *Tree) pickChild(n *Node, r geom.Rect) int {
	best := 0
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	pointsToLeaves := n.level == 1
	for i := range n.entries {
		e := &n.entries[i]
		u := e.rect.Union(r)
		enlarge := u.Area() - e.rect.Area()
		area := e.rect.Area()
		overlap := 0.0
		if pointsToLeaves {
			for j := range n.entries {
				if j == i {
					continue
				}
				ov := u.Intersect(n.entries[j].rect)
				if ov.IsValid() {
					overlap += ov.Area()
				}
				pre := e.rect.Intersect(n.entries[j].rect)
				if pre.IsValid() {
					overlap -= pre.Area()
				}
			}
		}
		if overlap < bestOverlap ||
			//lint:allow floatcmp R*-tree tie-break chain: exact equality selects the next criterion
			(overlap == bestOverlap && enlarge < bestEnlarge) ||
			//lint:allow floatcmp R*-tree tie-break chain: exact equality selects the next criterion
			(overlap == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = i, overlap, enlarge, area
		}
	}
	return best
}

func (t *Tree) adjustUpward(n *Node) {
	for p := n.parent; p != nil; p = p.parent {
		e := p.entryOf(n)
		e.rect = n.mbr()
		n = p
	}
}

func (t *Tree) overflow(n *Node, reinserted map[int]bool) {
	if n != t.root && !reinserted[n.level] {
		reinserted[n.level] = true
		t.forcedReinsert(n, reinserted)
		return
	}
	t.split(n, reinserted)
}

// forcedReinsert removes the 30 % of entries farthest from the node center
// and reinserts them (R* OverflowTreatment).
func (t *Tree) forcedReinsert(n *Node, reinserted map[int]bool) {
	t.reinserts++
	c := n.mbr().Center()
	sort.Slice(n.entries, func(i, j int) bool {
		return n.entries[i].rect.Center().Dist2(c) < n.entries[j].rect.Center().Dist2(c)
	})
	k := int(float64(len(n.entries)) * reinsertFraction)
	if k < 1 {
		k = 1
	}
	cut := len(n.entries) - k
	removed := make([]entry, k)
	copy(removed, n.entries[cut:])
	n.entries = n.entries[:cut]
	t.adjustUpward(n)
	for _, e := range removed {
		t.insertEntry(e, n.level, reinserted)
	}
}

// split performs the R* topological split: choose the axis with minimum
// margin sum, then the distribution with minimum overlap (ties: minimum
// total area).
func (t *Tree) split(n *Node, reinserted map[int]bool) {
	t.splits++
	entries := n.entries

	bestAxisMargin := math.Inf(1)
	var bestSorted []entry
	for axis := 0; axis < 2; axis++ {
		sorted := make([]entry, len(entries))
		copy(sorted, entries)
		sortByAxis(sorted, axis)
		margin := 0.0
		for k := t.min; k <= len(sorted)-t.min; k++ {
			l := mbrOf(sorted[:k])
			r := mbrOf(sorted[k:])
			margin += l.Perimeter() + r.Perimeter()
		}
		if margin < bestAxisMargin {
			bestAxisMargin = margin
			bestSorted = sorted
		}
	}

	bestK := t.min
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := t.min; k <= len(bestSorted)-t.min; k++ {
		l := mbrOf(bestSorted[:k])
		r := mbrOf(bestSorted[k:])
		ov := 0.0
		inter := l.Intersect(r)
		if inter.IsValid() {
			ov = inter.Area()
		}
		area := l.Area() + r.Area()
		//lint:allow floatcmp split tie-break: exact equality selects the area criterion
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}

	left := make([]entry, bestK)
	copy(left, bestSorted[:bestK])
	right := make([]entry, len(bestSorted)-bestK)
	copy(right, bestSorted[bestK:])

	sibling := &Node{level: n.level, entries: right}
	n.entries = left
	t.reparent(n)
	t.reparent(sibling)

	if n == t.root {
		newRoot := &Node{level: n.level + 1}
		newRoot.entries = []entry{
			{rect: n.mbr(), child: n},
			{rect: sibling.mbr(), child: sibling},
		}
		n.parent = newRoot
		sibling.parent = newRoot
		t.root = newRoot
		return
	}
	p := n.parent
	e := p.entryOf(n)
	e.rect = n.mbr()
	p.entries = append(p.entries, entry{rect: sibling.mbr(), child: sibling})
	sibling.parent = p
	t.adjustUpward(p)
	if len(p.entries) > t.max {
		t.overflow(p, reinserted)
	}
}

func (t *Tree) reparent(n *Node) {
	for i := range n.entries {
		if c := n.entries[i].child; c != nil {
			c.parent = n
		} else {
			t.leafOf[n.entries[i].item.ID] = n
		}
	}
}

// --- deletion ---------------------------------------------------------------

func (t *Tree) condense(n *Node) {
	// Orphaned subtrees are flattened to their leaf items and reinserted as
	// items: reinserting whole subtrees at their original level is fragile
	// when the tree height shrinks during the same condense pass.
	var orphans []Item
	for n != t.root {
		p := n.parent
		if len(n.entries) < t.min {
			for i := range p.entries {
				if p.entries[i].child == n {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			collectItems(n, &orphans)
		} else {
			e := p.entryOf(n)
			e.rect = n.mbr()
		}
		n = p
	}
	// Shrink the root while it has a single child.
	for t.root.level > 0 && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	if t.root.level > 0 && len(t.root.entries) == 0 {
		t.root = &Node{level: 0}
	}
	for _, it := range orphans {
		t.insertEntry(entry{rect: it.Rect, item: it}, 0, map[int]bool{})
	}
}

func collectItems(n *Node, out *[]Item) {
	for i := range n.entries {
		if c := n.entries[i].child; c != nil {
			collectItems(c, out)
		} else {
			*out = append(*out, n.entries[i].item)
		}
	}
}

// --- helpers ----------------------------------------------------------------

func sortByAxis(es []entry, axis int) {
	if axis == 0 {
		sort.Slice(es, func(i, j int) bool {
			//lint:allow floatcmp comparator tie-break: exact inequality guards the MaxX fallback
			if es[i].rect.MinX != es[j].rect.MinX {
				return es[i].rect.MinX < es[j].rect.MinX
			}
			return es[i].rect.MaxX < es[j].rect.MaxX
		})
	} else {
		sort.Slice(es, func(i, j int) bool {
			//lint:allow floatcmp comparator tie-break: exact inequality guards the MaxY fallback
			if es[i].rect.MinY != es[j].rect.MinY {
				return es[i].rect.MinY < es[j].rect.MinY
			}
			return es[i].rect.MaxY < es[j].rect.MaxY
		})
	}
}

func mbrOf(es []entry) geom.Rect {
	r := es[0].rect
	for _, e := range es[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// CheckInvariants validates structural invariants (entry counts, MBR
// consistency, parent pointers, leaf map). Intended for tests.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n != t.root && (len(n.entries) < t.min || len(n.entries) > t.max) {
			return fmt.Errorf("node at level %d has %d entries (min %d, max %d)", n.level, len(n.entries), t.min, t.max)
		}
		for i := range n.entries {
			e := &n.entries[i]
			if n.level == 0 {
				if e.child != nil {
					return fmt.Errorf("leaf entry with child")
				}
				count++
				if t.leafOf[e.item.ID] != n {
					return fmt.Errorf("leaf map stale for id %d", e.item.ID)
				}
			} else {
				if e.child == nil {
					return fmt.Errorf("internal entry without child")
				}
				if e.child.parent != n {
					return fmt.Errorf("bad parent pointer at level %d", n.level)
				}
				if e.child.level != n.level-1 {
					return fmt.Errorf("level mismatch: child %d under %d", e.child.level, n.level)
				}
				if m := e.child.mbr(); !e.rect.ContainsRect(m) {
					return fmt.Errorf("entry rect %v does not cover child mbr %v", e.rect, m)
				}
				if err := walk(e.child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d leaf entries", t.size, count)
	}
	if len(t.leafOf) != t.size {
		return fmt.Errorf("leaf map has %d entries, size %d", len(t.leafOf), t.size)
	}
	return nil
}
