package rtree

import (
	"math"
	"sort"

	"srb/internal/geom"
)

// BulkLoad builds a tree from items using Sort-Tile-Recursive packing
// (Leutenegger et al., ICDE 1997): items are sorted into √s vertical slabs by
// center x, each slab sorted by center y, and packed into full leaves. The
// resulting tree is balanced with near-minimal overlap and builds in
// O(n log n), far faster than repeated insertion — useful for initial
// population at paper scale (100k objects) and for periodic-monitoring
// baselines that rebuild every cycle.
func BulkLoad(items []Item) *Tree {
	return BulkLoadWithCapacity(items, defaultMax)
}

// BulkLoadWithCapacity is BulkLoad with an explicit node capacity.
func BulkLoadWithCapacity(items []Item, max int) *Tree {
	t := NewWithCapacity(max)
	if len(items) == 0 {
		return t
	}
	// Pack leaves.
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect, item: it}
	}
	level := 0
	for {
		nodes := strPack(entries, t.max, level)
		if len(nodes) == 1 {
			t.root = nodes[0]
			break
		}
		parents := make([]entry, len(nodes))
		for i, n := range nodes {
			parents[i] = entry{rect: n.mbr(), child: n}
		}
		entries = parents
		level++
	}
	t.size = len(items)
	var index func(n *Node)
	index = func(n *Node) {
		for i := range n.entries {
			if c := n.entries[i].child; c != nil {
				c.parent = n
				index(c)
			} else {
				t.leafOf[n.entries[i].item.ID] = n
			}
		}
	}
	index(t.root)
	return t
}

// strPack groups entries into nodes of the given level using STR tiling.
// Group sizes are distributed evenly rather than greedily so every node
// (except a lone root) meets the R*-tree minimum fill: with k = ⌈n/max⌉
// groups, an even split gives every group more than max/2 ≥ min entries.
func strPack(entries []entry, max, level int) []*Node {
	n := len(entries)
	nodeCount := (n + max - 1) / max
	slabs := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	if slabs < 1 {
		slabs = 1
	}

	sorted := make([]entry, n)
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		return centerX(sorted[i].rect) < centerX(sorted[j].rect)
	})

	var nodes []*Node
	off := 0
	for _, slabSize := range splitEven(n, slabs*max) {
		slab := sorted[off : off+slabSize]
		off += slabSize
		sort.Slice(slab, func(i, j int) bool {
			return centerY(slab[i].rect) < centerY(slab[j].rect)
		})
		o := 0
		for _, groupSize := range splitEven(len(slab), max) {
			node := &Node{level: level, entries: append([]entry(nil), slab[o:o+groupSize]...)}
			o += groupSize
			nodes = append(nodes, node)
		}
	}
	return nodes
}

// splitEven partitions n into ⌈n/maxPer⌉ sizes that differ by at most one,
// each ≤ maxPer.
func splitEven(n, maxPer int) []int {
	if n <= 0 {
		return nil
	}
	k := (n + maxPer - 1) / maxPer
	base := n / k
	rem := n % k
	out := make([]int, k)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

func centerX(r geom.Rect) float64 { return (r.MinX + r.MaxX) / 2 }
func centerY(r geom.Rect) float64 { return (r.MinY + r.MaxY) / 2 }
