package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedFamily is one metric family recovered from a Prometheus text
// exposition by ParseText.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples map[string]float64 // full sample name (with labels) -> value
}

// ParseText parses the Prometheus text exposition format (the subset
// WriteText emits, which is the subset any compliant scraper accepts):
// HELP/TYPE comment lines and `name{labels} value` samples. It verifies that
// every sample belongs to a declared family (histogram _bucket/_sum/_count
// suffixes included) and that every family declares both HELP and TYPE.
// Tests and the obs-smoke gate use it to assert a scrape is well-formed.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := map[string]*ParsedFamily{}
	haveHelp := map[string]bool{}
	haveType := map[string]bool{}
	get := func(name string) *ParsedFamily {
		f, ok := fams[name]
		if !ok {
			f = &ParsedFamily{Name: name, Samples: map[string]float64{}}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineno, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			f := get(name)
			switch kind {
			case "HELP":
				f.Help = rest
				haveHelp[name] = true
			case "TYPE":
				f.Type = rest
				haveType[name] = true
			}
			continue
		}
		sample, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno, err)
		}
		base := sample
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		famName := base
		if _, ok := fams[famName]; !ok {
			// Histogram sample suffixes attach to their declared family.
			trimmed := false
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(base, suf) {
					if _, ok := fams[strings.TrimSuffix(base, suf)]; ok {
						famName = strings.TrimSuffix(base, suf)
						trimmed = true
						break
					}
				}
			}
			if !trimmed {
				return nil, fmt.Errorf("line %d: sample %q has no preceding HELP/TYPE family", lineno, sample)
			}
		}
		get(famName).Samples[sample] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name := range fams {
		if !haveHelp[name] {
			return nil, fmt.Errorf("family %s: missing HELP line", name)
		}
		if !haveType[name] {
			return nil, fmt.Errorf("family %s: missing TYPE line", name)
		}
	}
	return fams, nil
}

// parseComment dissects `# HELP name text` / `# TYPE name type` lines;
// returns kind "" for other comments.
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	switch {
	case strings.HasPrefix(body, "HELP "):
		kind = "HELP"
		body = strings.TrimPrefix(body, "HELP ")
	case strings.HasPrefix(body, "TYPE "):
		kind = "TYPE"
		body = strings.TrimPrefix(body, "TYPE ")
	default:
		return "", "", "", nil
	}
	parts := strings.SplitN(body, " ", 2)
	if parts[0] == "" {
		return "", "", "", fmt.Errorf("malformed %s line: %q", kind, line)
	}
	name = parts[0]
	if len(parts) == 2 {
		rest = parts[1]
	}
	if kind == "TYPE" {
		switch rest {
		case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
		default:
			return "", "", "", fmt.Errorf("unknown metric type %q", rest)
		}
	}
	return kind, name, rest, nil
}

// parseSample splits `name{labels} value` into the full sample name and its
// parsed float value, validating brace balance.
func parseSample(line string) (string, float64, error) {
	cut := -1
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("malformed sample %q", line)
		}
		cut = j + 1
	} else {
		cut = strings.IndexAny(line, " \t")
	}
	if cut < 0 || cut >= len(line) {
		return "", 0, fmt.Errorf("sample %q has no value", line)
	}
	name := strings.TrimSpace(line[:cut])
	valStr := strings.TrimSpace(line[cut:])
	// Timestamps (a second field) are not emitted by WriteText; reject them
	// rather than silently misparse.
	if strings.ContainsAny(valStr, " \t") {
		return "", 0, fmt.Errorf("sample %q has trailing fields", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	return name, v, nil
}

// FamilyNames returns the parsed family names in sorted order (test helper).
func FamilyNames(fams map[string]*ParsedFamily) []string {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
