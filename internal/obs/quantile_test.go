package obs

import (
	"math"
	"testing"
)

// TestQuantileExactSyntheticFill checks exact interpolated values on a
// hand-computed bucket fill. Bounds {1, 2, 4}; ten observations land one per
// 0.1 step in [0.05, 0.95] → all in the first bucket, uniformly assumed.
func TestQuantileExactSyntheticFill(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // exact sample values are irrelevant; only the bucket counts matter
	}
	// All 10 in (0,1]: rank q*10 interpolates linearly across [0,1].
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.5},
		{0.1, 0.1},
		{1.0, 1.0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("uniform fill: Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// Two-bucket fill: 5 in (0,1], 5 in (1,2]. Median sits exactly at the
	// first bucket's upper bound; p75 halfway into the second bucket.
	h2 := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 5; i++ {
		h2.Observe(0.5)
		h2.Observe(1.5)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 1.0},
		{0.75, 1.5},
		{0.25, 0.5},
	} {
		if got := h2.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("two-bucket fill: Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileOverflowClampsToLargestBound pins the +Inf bucket behavior:
// ranks landing in the overflow bucket report the largest finite bound
// rather than infinity, so SLO comparisons stay finite.
func TestQuantileOverflowClampsToLargestBound(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(100) // overflow bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow rank: Quantile(0.99) = %g, want clamp to 2", got)
	}
	if math.IsInf(h.Quantile(1), 0) || math.IsNaN(h.Quantile(1)) {
		t.Errorf("Quantile(1) not finite: %g", h.Quantile(1))
	}
}

// TestQuantileMonotone sweeps q and requires the estimate never decreases,
// on an uneven multi-bucket fill.
func TestQuantileMonotone(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	for _, v := range []float64{0.0001, 0.0004, 0.0004, 0.002, 0.002, 0.002, 0.015, 0.2, 0.2, 3, 50} {
		h.Observe(v)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: Quantile(%g) = %g < previous %g", q, got, prev)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Quantile(%g) not finite: %g", q, got)
		}
		prev = got
	}
}

// TestQuantileEmptyAndEdgeCases pins the degenerate inputs: empty and nil
// histograms report zero, q outside (0,1] clamps sanely.
func TestQuantileEmptyAndEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram: Quantile(0.5) = %g, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram: Quantile(0.5) = %g, want 0", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0", got)
	}
	if got := h.Quantile(-1); got != 0 {
		t.Errorf("Quantile(-1) = %g, want 0", got)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, want)
	}
}

// TestQuantileSingleObservation: one sample in bucket (1,2] — every quantile
// interpolates within that bucket and stays inside its bounds.
func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= 1 || got > 2 {
			t.Errorf("Quantile(%g) = %g, want within (1, 2]", q, got)
		}
	}
}
