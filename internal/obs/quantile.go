package obs

// Quantile estimation over the fixed-bucket histograms. The load harness
// (internal/load) derives p50/p99/p999 latencies from client-side histograms
// with the same estimator Prometheus applies to the exposition: rank the
// target observation within the cumulative bucket counts, then interpolate
// linearly inside the bucket that holds it.

// NewHistogram creates a standalone histogram with the given ascending bucket
// upper bounds (the +Inf bucket is implicit). Unlike Registry.Histogram it is
// not registered anywhere: the load harness uses free-standing histograms for
// per-stage latency accounting that must reset between ramp stages.
func NewHistogram(bounds []float64) *Histogram {
	return newHistogram(bounds)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed distribution
// by linear interpolation within the bucket holding the target rank. The
// first bucket interpolates from zero (all observations here are non-negative
// latencies and sizes); ranks landing in the +Inf overflow bucket clamp to
// the largest finite bound, which is the most that can honestly be said from
// bucketed data. An empty (or nil) histogram reports 0, as does q ≤ 0; q > 1
// is treated as 1.
//
// The estimate is exact when observations sit on bucket bounds, and is
// monotone in q by construction: the cumulative rank walk never moves
// backward. Concurrent Observe calls may be partially visible — each bucket
// load is atomic, the walk as a whole is not — which for a monotone stream of
// latency samples only blurs the estimate by the in-flight observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		n := float64(h.counts[i].Load())
		if n > 0 && cum+n >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (bound-lo)*((target-cum)/n)
		}
		cum += n
	}
	// Rank lives in the +Inf bucket: clamp to the largest finite bound.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}
