// Package obs is the zero-dependency observability substrate of the
// monitoring stack: a metrics registry of counters, gauges, and fixed-bucket
// histograms with Prometheus text-format and expvar exposition, plus a
// bounded decision-level tracer (trace.go) whose ring buffer exports as
// Chrome trace-event JSON.
//
// The package is built around one contract: observability off must cost
// nothing. Every instrument is nil-safe — methods on a nil *Counter, *Gauge,
// *Histogram, *Tracer, *Registry, or *Sink are no-ops — so instrumented code
// holds instrument pointers unconditionally and the uninstrumented path pays
// a single predictable branch, no allocation, no interface dispatch.
// Instrument hot paths (Counter.Add, Gauge.Set, Histogram.Observe) are one
// or two uncontended atomics; registration and exposition take locks and are
// expected to be rare.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter discards all operations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to use;
// a nil Gauge discards all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency/size histogram with cumulative
// Prometheus exposition. Observe is two atomic operations (bucket increment
// and a CAS loop on the sum); bounds are immutable after construction. A nil
// Histogram discards all operations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", b))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds()) //lint:allow wallclock latency measurement is the histogram's purpose
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBuckets returns the default latency bucket bounds, in seconds:
// 1µs .. 2.5s in a 1-2.5-5 progression. Wide enough for a single in-memory
// safe-region update (microseconds) through a full batch tick under load.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5,
	}
}

// SizeBuckets returns power-of-two bucket bounds for batch/queue sizes.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}

// --- registry ----------------------------------------------------------------

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a metric family. Exactly one of the
// instrument fields is set.
type series struct {
	labels string // `k="v",k2="v2"` without braces; "" for unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is a named metric family: HELP/TYPE metadata plus its series.
type family struct {
	name   string
	help   string
	typ    string
	series []*series
}

// Registry holds metric families and renders them in Prometheus text format
// (WriteText / ServeHTTP) and as an expvar snapshot (PublishExpvar). A nil
// Registry returns nil instruments from every constructor, which in turn
// no-op, so a single nil check at wiring time disables a whole subsystem's
// metrics.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelString renders variadic "key", "value" pairs into the canonical label
// body `k="v",k2="v2"`. Panics on an odd pair count (programmer error).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the family and series slot for a registration.
// Returns the existing series when the same name+labels was registered
// before (idempotent registration), so components can be re-wired to the
// same registry without double counting.
func (r *Registry) lookup(name, help, typ, labels string) (*family, *series, bool) {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labels == labels {
			return f, s, true
		}
	}
	s := &series{labels: labels}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return f, s, false
}

// Counter registers (or returns the existing) counter name with optional
// "key", "value" label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, ok := r.lookup(name, help, typeCounter, labelString(labels))
	if !ok {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, ok := r.lookup(name, help, typeGauge, labelString(labels))
	if !ok {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge evaluated at exposition time. fn must be safe
// to call from any goroutine and cheap (it runs under the registry lock).
// Re-registering the same name+labels replaces the function, so a restarted
// component can rebind its live state.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, _ := r.lookup(name, help, typeGauge, labelString(labels))
	s.g = nil
	s.gf = fn
}

// Histogram registers (or returns the existing) histogram with the given
// ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, ok := r.lookup(name, help, typeHistogram, labelString(labels))
	if !ok {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP and TYPE line per family, then its samples in
// label order; histograms expose cumulative _bucket series plus _sum and
// _count.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleName renders `name{labels}` or bare `name`, optionally appending an
// extra label (the histogram `le`).
func sampleName(name, labels, extra string) string {
	body := labels
	if extra != "" {
		if body != "" {
			body += ","
		}
		body += extra
	}
	if body == "" {
		return name
	}
	return name + "{" + body + "}"
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name, s.labels, ""), s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, s.labels, ""), formatFloat(s.g.Value()))
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, s.labels, ""), formatFloat(s.gf()))
		return err
	case s.h != nil:
		var cum int64
		for i, bound := range s.h.bounds {
			cum += s.h.counts[i].Load()
			le := `le="` + formatFloat(bound) + `"`
			if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", s.labels, le), cum); err != nil {
				return err
			}
		}
		cum += s.h.counts[len(s.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", s.labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name+"_sum", s.labels, ""), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", s.labels, ""), cum)
		return err
	}
	return nil
}

// ServeHTTP serves the Prometheus text exposition, so a Registry can be
// mounted directly on a mux (e.g. under /metrics).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A failed write means the scraper went away; nothing to do about it here.
	_ = r.WriteText(w) //lint:allow errdrop scraper disconnect is not actionable
}

// --- expvar exposition -------------------------------------------------------

// expvarTargets maps a published expvar name to the registry currently
// backing it. expvar.Publish is permanent (republishing panics), so the
// published Func indirects through this table and PublishExpvar swaps the
// target — tests and restarted components can rebind freely.
var (
	expvarMu      sync.Mutex
	expvarTargets = map[string]*Registry{}
)

// PublishExpvar exposes the registry under the given expvar name (visible on
// /debug/vars wherever the default mux is served). Calling it again — with
// this or another registry — rebinds the name.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarTargets[name]; !ok {
		expvar.Publish(name, expvar.Func(func() interface{} {
			expvarMu.Lock()
			t := expvarTargets[name]
			expvarMu.Unlock()
			return t.expvarSnapshot()
		}))
	}
	expvarTargets[name] = r
}

// expvarSnapshot renders the registry as a JSON-encodable map: counters and
// gauges as scalars, histograms as {count, sum}.
func (r *Registry) expvarSnapshot() map[string]interface{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]interface{}, len(r.fams))
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			name := sampleName(f.name, s.labels, "")
			switch {
			case s.c != nil:
				out[name] = s.c.Value()
			case s.g != nil:
				out[name] = s.g.Value()
			case s.gf != nil:
				out[name] = s.gf()
			case s.h != nil:
				out[name] = map[string]interface{}{"count": s.h.Count(), "sum": s.h.Sum()}
			}
		}
	}
	return out
}
