package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var r *Registry
	var s *Sink
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	tr.Span("a", "b", time.Now(), "", 0, "", 0)
	tr.Instant("a", "b", "", 0, "", 0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Total() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if s.Registry() != nil || s.Tracer() != nil {
		t.Fatal("nil sink must expose nil parts")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer must dump no events")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("srb_test_total", "help", "kind", "a")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("srb_test_total", "help", "kind", "a"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("srb_test_gauge", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	r.GaugeFunc("srb_test_fn", "help", func() float64 { return 7 })
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("srb_test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`srb_test_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary value 0.1
		`srb_test_seconds_bucket{le="1"} 3`,
		`srb_test_seconds_bucket{le="10"} 4`,
		`srb_test_seconds_bucket{le="+Inf"} 5`,
		`srb_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextParsesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("srb_updates_total", "Updates processed.").Add(3)
	r.Counter("srb_knn_case_total", "kNN cases.", "case", "1").Inc()
	r.Counter("srb_knn_case_total", "kNN cases.", "case", "2").Add(2)
	r.Gauge("srb_objects", "Registered objects.").Set(42)
	r.GaugeFunc("srb_queue_depth", "Queue depth.", func() float64 { return 7 })
	r.Histogram("srb_op_seconds", "Op latency.", LatencyBuckets(), "op", "update").Observe(0.002)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	for name, typ := range map[string]string{
		"srb_updates_total":  "counter",
		"srb_knn_case_total": "counter",
		"srb_objects":        "gauge",
		"srb_queue_depth":    "gauge",
		"srb_op_seconds":     "histogram",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing", name)
		}
		if f.Type != typ {
			t.Errorf("family %s: type %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("family %s: no HELP text", name)
		}
	}
	if got := fams["srb_updates_total"].Samples["srb_updates_total"]; got != 3 {
		t.Errorf("srb_updates_total = %g, want 3", got)
	}
	if got := fams["srb_knn_case_total"].Samples[`srb_knn_case_total{case="2"}`]; got != 2 {
		t.Errorf(`case="2" = %g, want 2`, got)
	}
	if got := fams["srb_op_seconds"].Samples[`srb_op_seconds_count{op="update"}`]; got != 1 {
		t.Errorf("op_seconds count = %g, want 1", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("srb_esc_total", "h", "k", `a"b\c`).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `srb_esc_total{k="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("srb_conflict", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering srb_conflict as gauge should panic")
		}
	}()
	r.Gauge("srb_conflict", "h")
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("srb_ev_total", "h").Add(9)
	r.Histogram("srb_ev_seconds", "h", []float64{1}).Observe(0.5)
	r.PublishExpvar("srb_test_expvar")
	snap := r.expvarSnapshot()
	if snap["srb_ev_total"] != int64(9) {
		t.Fatalf("expvar counter = %v, want 9", snap["srb_ev_total"])
	}
	// Rebinding the same name to a new registry must not panic and must win.
	r2 := NewRegistry()
	r2.Counter("srb_ev_total", "h").Add(1)
	r2.PublishExpvar("srb_test_expvar")
	expvarMu.Lock()
	bound := expvarTargets["srb_test_expvar"]
	expvarMu.Unlock()
	if bound != r2 {
		t.Fatal("PublishExpvar must rebind to the newest registry")
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("srb_conc_total", "h")
	h := r.Histogram("srb_conc_seconds", "h", LatencyBuckets())
	g := r.Gauge("srb_conc_gauge", "h")
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				g.Set(float64(i))
				tr.Instant("t", "tick", "w", int64(w), "", 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Error(err)
				return
			}
			tr.Events()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
	if tr.Total() != 4000 {
		t.Fatalf("tracer total = %d, want 4000", tr.Total())
	}
	if tr.Dropped() != 4000-64 {
		t.Fatalf("tracer dropped = %d, want %d", tr.Dropped(), 4000-64)
	}
}

func TestTracerRingAndChromeExport(t *testing.T) {
	tr := NewTracer(4)
	start := time.Now()
	tr.Span("core", "update", start, "probes", 2, "reevals", 3)
	for i := 0; i < 5; i++ {
		tr.Instant("core", "probe", "obj", int64(i), "", 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(evs))
	}
	// The span and the first instant were overwritten; oldest retained is obj=1.
	if evs[0].Name != "probe" || evs[0].V1 != 1 {
		t.Fatalf("oldest retained = %+v, want probe obj=1", evs[0])
	}
	if tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("total/dropped = %d/%d, want 6/2", tr.Total(), tr.Dropped())
	}

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			TS   float64          `json:"ts"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("chrome trace has %d events, want 4", len(out.TraceEvents))
	}
	for _, e := range out.TraceEvents {
		if e.Ph != "i" && e.Ph != "X" {
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Cat != "core" {
			t.Errorf("unexpected cat %q", e.Cat)
		}
	}
}

func TestTracerSpanPhases(t *testing.T) {
	tr := NewTracer(8)
	start := time.Now().Add(-time.Millisecond)
	tr.Span("batch", "plan", start, "updates", 10, "", 0)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	evs := out["traceEvents"].([]interface{})
	ev := evs[0].(map[string]interface{})
	if ev["ph"] != "X" {
		t.Fatalf("span phase = %v, want X", ev["ph"])
	}
	if dur, ok := ev["dur"].(float64); !ok || dur < 900 {
		t.Fatalf("span dur = %v µs, want >= 900 (1ms sleep)", ev["dur"])
	}
	if args := ev["args"].(map[string]interface{}); args["updates"].(float64) != 10 {
		t.Fatalf("span args = %v", args)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"srb_orphan 1\n", // sample without HELP/TYPE
		"# HELP srb_x h\n# TYPE srb_x counter\nsrb_x notanumber\n",
		"# HELP srb_x h\nsrb_x 1\n", // missing TYPE
		"# HELP srb_x h\n# TYPE srb_x flurble\nsrb_x 1\n",
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", c)
		}
	}
}
