package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Event is one decision-level trace record: a completed span (Dur > 0) or an
// instant marker. Up to two integer arguments ride along under fixed keys so
// emitting an event never allocates.
type Event struct {
	TS   int64 // nanoseconds since the tracer's epoch
	Dur  int64 // span duration in nanoseconds; 0 marks an instant event
	Cat  string
	Name string
	K1   string // "" when unused
	V1   int64
	K2   string
	V2   int64
}

// Tracer records recent events into a bounded ring buffer. Writers take one
// short mutex-protected critical section (a struct store and an index
// increment — tens of nanoseconds uncontended, and the monitoring stack's
// emitters are already serialized on the event loop); when the ring is full
// the oldest events are overwritten, so the tracer holds the most recent
// window of decision history at a fixed memory cost.
//
// A nil Tracer discards all events, so instrumented code can emit
// unconditionally behind a single enabled-check.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	n     uint64 // total events ever emitted
	epoch time.Time
}

// DefaultTraceDepth is the ring size used when NewTracer is given a
// non-positive size.
const DefaultTraceDepth = 16384

// NewTracer creates a tracer retaining the last size events.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceDepth
	}
	return &Tracer{buf: make([]Event, size), epoch: time.Now()} //lint:allow wallclock trace timestamps are wall-clock by design
}

func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
	t.mu.Unlock()
}

// Span records a completed operation that began at start. Unused argument
// slots take an empty key.
func (t *Tracer) Span(cat, name string, start time.Time, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	now := time.Now() //lint:allow wallclock trace timestamps are wall-clock by design
	t.emit(Event{
		TS:  start.Sub(t.epoch).Nanoseconds(),
		Dur: now.Sub(start).Nanoseconds(),
		Cat: cat, Name: name, K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// SpanBetween records a completed operation with explicit endpoints, for
// phases whose end is not the emit time (e.g. a pipeline phase reported after
// the following phase finished).
func (t *Tracer) SpanBetween(cat, name string, start, end time.Time, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	t.emit(Event{
		TS:  start.Sub(t.epoch).Nanoseconds(),
		Dur: end.Sub(start).Nanoseconds(),
		Cat: cat, Name: name, K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// Instant records a point-in-time marker.
func (t *Tracer) Instant(cat, name, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	t.emit(Event{
		TS:  time.Since(t.epoch).Nanoseconds(), //lint:allow wallclock trace timestamps are wall-clock by design
		Cat: cat, Name: name, K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// Total returns how many events were ever emitted; Dropped how many of those
// have been overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns the number of events lost to ring overwrites.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.buf))
	if t.n <= size {
		return append([]Event(nil), t.buf[:t.n]...)
	}
	out := make([]Event, 0, size)
	start := t.n % size
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format, loadable in
// chrome://tracing and Perfetto (https://ui.perfetto.dev).
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	S    string           `json:"s,omitempty"` // instant-event scope
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the retained events as Chrome trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(evs))}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   float64(e.TS) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			d := float64(e.Dur) / 1e3
			ce.Dur = &d
		} else {
			ce.Ph = "i"
			ce.S = "g"
		}
		if e.K1 != "" || e.K2 != "" {
			ce.Args = make(map[string]int64, 2)
			if e.K1 != "" {
				ce.Args[e.K1] = e.V1
			}
			if e.K2 != "" {
				ce.Args[e.K2] = e.V2
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ServeHTTP serves the Chrome trace JSON, so a Tracer can be mounted
// directly on a mux (e.g. under /trace).
func (t *Tracer) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if t == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="srb-trace.json"`)
	// A failed write means the downloader went away; nothing to do here.
	_ = t.WriteChromeTrace(w) //lint:allow errdrop client disconnect is not actionable
}

// Sink bundles a metrics Registry and a Tracer into the single handle
// instrumented components accept. A nil *Sink (and a Sink with nil parts) is
// fully operational as "observability off": Registry() and Tracer() return
// nil, which every downstream constructor and instrument tolerates.
type Sink struct {
	reg *Registry
	tr  *Tracer
}

// NewSink bundles a registry and tracer; either may be nil to enable only
// the other half.
func NewSink(reg *Registry, tr *Tracer) *Sink {
	return &Sink{reg: reg, tr: tr}
}

// Registry returns the sink's registry, or nil.
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the sink's tracer, or nil.
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}
