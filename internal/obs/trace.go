package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one decision-level trace record: a completed span (Dur > 0) or an
// instant marker. Up to two integer arguments ride along under fixed keys so
// emitting an event never allocates. Tr carries the causal trace ID minted at
// the client update/register site (0 when the event is not part of a causal
// chain), letting one wire update's whole server-side chain be filtered out
// of the Chrome trace.
type Event struct {
	TS   int64 // nanoseconds since the tracer's epoch
	Dur  int64 // span duration in nanoseconds; 0 marks an instant event
	Cat  string
	Name string
	Tr   uint64 // causal trace ID; 0 when unrelated to a wire op
	K1   string // "" when unused
	V1   int64
	K2   string
	V2   int64
}

// Tracer records recent events into a bounded ring buffer that is safe for
// fully concurrent writers and readers. A writer reserves a slot with one
// atomic increment and copies its event under that slot's private mutex; a
// sequence stamp per slot makes the newest reservation win, so a delayed
// writer that lost its slot to a wrap can never interleave a torn or stale
// event into the export. Readers (Events, WriteChromeTrace) lock each slot
// individually and order the survivors by sequence, so they see only complete
// events and never block the whole ring.
//
// A nil Tracer discards all events, so instrumented code can emit
// unconditionally behind a single enabled-check.
type Tracer struct {
	n     atomic.Uint64 // total reservations ever made
	slots []traceSlot
	epoch time.Time
}

// traceSlot is one ring entry: the event plus the 1-based reservation index
// that wrote it (0 = never written). The per-slot mutex makes the pair
// atomic with respect to readers and competing delayed writers.
type traceSlot struct {
	mu  sync.Mutex
	seq uint64
	ev  Event
}

// DefaultTraceDepth is the ring size used when NewTracer is given a
// non-positive size.
const DefaultTraceDepth = 16384

// NewTracer creates a tracer retaining the last size events.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceDepth
	}
	return &Tracer{slots: make([]traceSlot, size), epoch: time.Now()} //lint:allow wallclock trace timestamps are wall-clock by design
}

func (t *Tracer) emit(e Event) {
	idx := t.n.Add(1)
	s := &t.slots[(idx-1)%uint64(len(t.slots))]
	s.mu.Lock()
	// Newest reservation wins: if a later writer wrapped around and already
	// claimed this slot, a delayed older writer must not clobber it.
	if idx > s.seq {
		s.seq = idx
		s.ev = e
	}
	s.mu.Unlock()
}

// Span records a completed operation that began at start. Unused argument
// slots take an empty key.
func (t *Tracer) Span(cat, name string, start time.Time, k1 string, v1 int64, k2 string, v2 int64) {
	t.SpanTr(cat, name, 0, start, k1, v1, k2, v2)
}

// SpanTr records a completed operation tagged with a causal trace ID.
func (t *Tracer) SpanTr(cat, name string, tr uint64, start time.Time, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	now := time.Now() //lint:allow wallclock trace timestamps are wall-clock by design
	t.emit(Event{
		TS:  start.Sub(t.epoch).Nanoseconds(),
		Dur: now.Sub(start).Nanoseconds(),
		Cat: cat, Name: name, Tr: tr, K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// SpanBetween records a completed operation with explicit endpoints, for
// phases whose end is not the emit time (e.g. a pipeline phase reported after
// the following phase finished).
func (t *Tracer) SpanBetween(cat, name string, start, end time.Time, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	t.emit(Event{
		TS:  start.Sub(t.epoch).Nanoseconds(),
		Dur: end.Sub(start).Nanoseconds(),
		Cat: cat, Name: name, K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// Instant records a point-in-time marker.
func (t *Tracer) Instant(cat, name, k1 string, v1 int64, k2 string, v2 int64) {
	t.InstantTr(cat, name, 0, k1, v1, k2, v2)
}

// InstantTr records a point-in-time marker tagged with a causal trace ID.
func (t *Tracer) InstantTr(cat, name string, tr uint64, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	t.emit(Event{
		TS:  time.Since(t.epoch).Nanoseconds(), //lint:allow wallclock trace timestamps are wall-clock by design
		Cat: cat, Name: name, Tr: tr, K1: k1, V1: v1, K2: k2, V2: v2,
	})
}

// Total returns how many events were ever emitted; Dropped how many of those
// have been overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Dropped returns the number of events lost to ring overwrites. Under
// concurrent wrapping a handful of additional events may have been discarded
// by slot races; the figure is exact for serialized emitters.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.n.Load()
	if n <= uint64(len(t.slots)) {
		return 0
	}
	return n - uint64(len(t.slots))
}

// Events returns the retained events, oldest first. Each event is read
// atomically with its sequence stamp, so concurrent writers can wrap the ring
// during the scan without a torn record appearing in the output.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	type rec struct {
		seq uint64
		ev  Event
	}
	recs := make([]rec, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			recs = append(recs, rec{s.seq, s.ev})
		}
		s.mu.Unlock()
	}
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	out := make([]Event, len(recs))
	for i, r := range recs {
		out[i] = r.ev
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format, loadable in
// chrome://tracing and Perfetto (https://ui.perfetto.dev).
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	S    string           `json:"s,omitempty"` // instant-event scope
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the retained events as Chrome trace-event JSON.
// Events carrying a causal trace ID expose it as the "trace" arg, so one wire
// update's full chain is one search away in the trace viewer.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(evs))}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   float64(e.TS) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			d := float64(e.Dur) / 1e3
			ce.Dur = &d
		} else {
			ce.Ph = "i"
			ce.S = "g"
		}
		if e.K1 != "" || e.K2 != "" || e.Tr != 0 {
			ce.Args = make(map[string]int64, 3)
			if e.K1 != "" {
				ce.Args[e.K1] = e.V1
			}
			if e.K2 != "" {
				ce.Args[e.K2] = e.V2
			}
			if e.Tr != 0 {
				ce.Args["trace"] = int64(e.Tr)
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ServeHTTP serves the Chrome trace JSON, so a Tracer can be mounted
// directly on a mux (e.g. under /trace).
func (t *Tracer) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if t == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="srb-trace.json"`)
	// A failed write means the downloader went away; nothing to do here.
	_ = t.WriteChromeTrace(w) //lint:allow errdrop client disconnect is not actionable
}

// Sink bundles a metrics Registry and a Tracer into the single handle
// instrumented components accept. A nil *Sink (and a Sink with nil parts) is
// fully operational as "observability off": Registry() and Tracer() return
// nil, which every downstream constructor and instrument tolerates.
type Sink struct {
	reg *Registry
	tr  *Tracer
}

// NewSink bundles a registry and tracer; either may be nil to enable only
// the other half.
func NewSink(reg *Registry, tr *Tracer) *Sink {
	return &Sink{reg: reg, tr: tr}
}

// Registry returns the sink's registry, or nil.
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the sink's tracer, or nil.
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}
