package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightEvent is one black-box record: a causal wire event (update received,
// region granted, probe issued, query registered, session resumed) or an
// anomaly marker (slow op, dump). The ring of recent FlightEvents is the
// post-hoc evidence when a server dies or breaches its latency objective.
type FlightEvent struct {
	TS    int64  `json:"ts"` // unix nanoseconds
	Kind  string `json:"kind"`
	Trace uint64 `json:"trace,omitempty"` // causal trace ID from the wire frame
	Obj   uint64 `json:"obj,omitempty"`
	Query uint64 `json:"query,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	Note  string `json:"note,omitempty"`
}

// Flight-event kinds recorded by the server and monitor layers.
const (
	FlightUpdate    = "update"    // location update received off the wire
	FlightGrant     = "grant"     // safe-region grant pushed to a client
	FlightProbe     = "probe"     // server-initiated probe issued
	FlightRegister  = "register"  // query (de)registration processed
	FlightReconnect = "reconnect" // session resumed or rejoined
	FlightSlowOp    = "slow_op"   // monitor operation over the slow-op threshold
	FlightMigrate   = "migrate"   // object crossed a shard boundary (internal/shard)
	FlightDump      = "dump"      // dump marker carrying the trigger reason
)

// DefaultFlightDepth is the ring size used when NewFlightRecorder is given a
// non-positive size.
const DefaultFlightDepth = 65536

// FlightRecorder is an always-on bounded ring of recent FlightEvents with
// automatic dumping: TriggerDump hands a reason to a background writer that
// persists the ring as a timestamped NDJSON file, rate-limited so a breach
// storm produces one dump, not hundreds. Recording is one short mutex-guarded
// struct store; a nil *FlightRecorder discards everything, so instrumented
// code records unconditionally.
type FlightRecorder struct {
	mu       sync.Mutex
	buf      []FlightEvent
	n        uint64
	lastDump time.Time
	paths    []string // dump files written, oldest first

	dir    string
	minGap time.Duration

	// dumps carries trigger reasons to the writer goroutine. It is never
	// closed — TriggerDump may race Close, and a send on a closed channel
	// panics — so shutdown is signalled on stop instead, and the writer
	// drains any queued reason before exiting.
	dumps     chan string
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	logf      func(format string, args ...interface{})
}

// NewFlightRecorder creates a recorder retaining the last size events and
// dumping into dir (created on first dump). Automatic dumps are spaced at
// least 5s apart; SetMinGap adjusts.
func NewFlightRecorder(size int, dir string) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightDepth
	}
	fr := &FlightRecorder{
		buf:    make([]FlightEvent, size),
		dir:    dir,
		minGap: 5 * time.Second,
		dumps:  make(chan string, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Lifecycle: the writer exits when Close closes fr.stop and signals via
	// fr.done; dump I/O must not stall the event loop that triggers it.
	go fr.dumpLoop() //lint:allow goroleak exits when Close closes the stop channel
	return fr
}

// SetLogf installs a logger for dump outcomes (nil silences).
func (fr *FlightRecorder) SetLogf(logf func(format string, args ...interface{})) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.logf = logf
	fr.mu.Unlock()
}

// SetMinGap adjusts the minimum spacing between automatic dumps.
func (fr *FlightRecorder) SetMinGap(d time.Duration) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.minGap = d
	fr.mu.Unlock()
}

// Record appends one event to the ring. A zero TS is stamped with the
// current wall clock.
func (fr *FlightRecorder) Record(ev FlightEvent) {
	if fr == nil {
		return
	}
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano() //lint:allow wallclock flight-recorder timestamps are wall-clock by design
	}
	fr.mu.Lock()
	fr.buf[fr.n%uint64(len(fr.buf))] = ev
	fr.n++
	fr.mu.Unlock()
}

// Total returns how many events were ever recorded.
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.n
}

// Events returns the retained events, oldest first.
func (fr *FlightRecorder) Events() []FlightEvent {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	size := uint64(len(fr.buf))
	if fr.n <= size {
		return append([]FlightEvent(nil), fr.buf[:fr.n]...)
	}
	out := make([]FlightEvent, 0, size)
	start := fr.n % size
	out = append(out, fr.buf[start:]...)
	out = append(out, fr.buf[:start]...)
	return out
}

// WriteNDJSON renders the retained events as newline-delimited JSON, oldest
// first.
func (fr *FlightRecorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range fr.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// TriggerDump asks the background writer to persist the ring, recording the
// reason as a dump marker. Rate-limited: triggers inside the minimum gap are
// dropped, and a trigger arriving while a dump is already queued coalesces
// into it.
func (fr *FlightRecorder) TriggerDump(reason string) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	now := time.Now() //lint:allow wallclock flight-recorder dump spacing is wall-clock by design
	if !fr.lastDump.IsZero() && now.Sub(fr.lastDump) < fr.minGap {
		fr.mu.Unlock()
		return
	}
	fr.lastDump = now
	fr.mu.Unlock()
	select {
	case fr.dumps <- reason:
	default: // a queued dump will carry this window's evidence too
	}
}

// DumpFile synchronously persists the ring as a timestamped NDJSON file in
// the recorder's directory, prefixed with a dump marker naming the reason.
// Used directly by the SIGQUIT handler; automatic triggers go through
// TriggerDump so the event loop never blocks on disk.
func (fr *FlightRecorder) DumpFile(reason string) (string, error) {
	if fr == nil {
		return "", fmt.Errorf("obs: no flight recorder")
	}
	fr.Record(FlightEvent{Kind: FlightDump, Note: reason})
	dir := fr.dir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%d.ndjson", time.Now().UnixNano())) //lint:allow wallclock flight-recorder dump filenames are wall-clock by design
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriter(f)
	if err := fr.WriteNDJSON(bw); err != nil {
		f.Close()
		return "", err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	fr.mu.Lock()
	fr.paths = append(fr.paths, path)
	fr.mu.Unlock()
	return path, nil
}

// DumpPaths returns the dump files written so far, oldest first.
func (fr *FlightRecorder) DumpPaths() []string {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]string(nil), fr.paths...)
}

// dumpLoop drains dump triggers until Close, writing one final queued dump
// (if any) on the way out.
func (fr *FlightRecorder) dumpLoop() {
	defer close(fr.done)
	for {
		select {
		case reason := <-fr.dumps:
			fr.writeDump(reason)
		case <-fr.stop:
			select {
			case reason := <-fr.dumps:
				fr.writeDump(reason)
			default:
			}
			return
		}
	}
}

// writeDump runs one queued dump and logs the outcome.
func (fr *FlightRecorder) writeDump(reason string) {
	path, err := fr.DumpFile(reason) //lint:allow errdrop outcome goes to logf when configured; without a logger there is nowhere to report it
	fr.mu.Lock()
	logf := fr.logf
	fr.mu.Unlock()
	if logf == nil {
		return
	}
	if err != nil {
		logf("flightrec: dump (%s) failed: %v", reason, err)
	} else {
		logf("flightrec: dumped %s (%s)", path, reason)
	}
}

// Close stops the background writer after draining any queued dump. The
// recorder keeps accepting Record and TriggerDump calls afterwards (a
// post-Close trigger is simply never written); only automatic dumping stops.
func (fr *FlightRecorder) Close() {
	if fr == nil {
		return
	}
	fr.closeOnce.Do(func() {
		close(fr.stop)
		<-fr.done
	})
}

// ServeHTTP serves the current ring as NDJSON, so a FlightRecorder can be
// mounted directly on a mux (e.g. under /debug/flightrec).
func (fr *FlightRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if fr == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// A failed write means the scraper went away; nothing to do about it here.
	_ = fr.WriteNDJSON(w) //lint:allow errdrop scraper disconnect is not actionable
}
