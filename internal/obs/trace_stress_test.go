package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// stressNames maps a payload value to the event name a writer must have used,
// giving readers an internal-consistency relation to detect torn events: for
// every observed event, Name, V1 and V2 must all derive from the same value.
var stressNames = [3]string{"alpha", "beta", "gamma"}

// TestTracerConcurrentWrapNoTornEvents hammers a tiny ring with concurrent
// Span/Instant writers — every emit wraps the ring — while readers
// continuously export. Every observed event must be internally consistent
// (payload fields all from one writer) and the retained window must stay
// ordered and bounded. Run under -race this also pins the memory-safety of
// the slot protocol.
func TestTracerConcurrentWrapNoTornEvents(t *testing.T) {
	const (
		ringSize = 8
		writers  = 8
		iters    = 2000
	)
	tr := NewTracer(ringSize)

	check := func(e Event) {
		if e.K1 != "a" || e.K2 != "b" {
			t.Errorf("torn event: keys %q/%q", e.K1, e.K2)
		}
		if e.V1 != e.V2 {
			t.Errorf("torn event: V1=%d V2=%d", e.V1, e.V2)
		}
		if want := stressNames[e.V1%3]; e.Name != want {
			t.Errorf("torn event: name %q does not match payload %d (want %q)", e.Name, e.V1, want)
		}
		if uint64(e.V1) != e.Tr {
			t.Errorf("torn event: trace %d does not match payload %d", e.Tr, e.V1)
		}
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := tr.Events()
				if len(evs) > ringSize {
					t.Errorf("retained %d events, ring size %d", len(evs), ringSize)
				}
				for _, e := range evs {
					check(e)
				}
				if err := tr.WriteChromeTrace(io.Discard); err != nil {
					t.Errorf("chrome export: %v", err)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for i := 0; i < iters; i++ {
				v := int64(w*iters + i)
				name := stressNames[v%3]
				if i%2 == 0 {
					tr.InstantTr("stress", name, uint64(v), "a", v, "b", v)
				} else {
					tr.SpanTr("stress", name, uint64(v), start, "a", v, "b", v)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := tr.Total(), uint64(writers*iters); got != want {
		t.Fatalf("total = %d, want %d (no emit may be lost from the count)", got, want)
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > ringSize {
		t.Fatalf("retained %d events after quiescence, want 1..%d", len(evs), ringSize)
	}
	for _, e := range evs {
		check(e)
	}

	// The final export must be valid JSON with the trace IDs surfaced.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	for _, ce := range out.TraceEvents {
		if ce.Args["trace"] != ce.Args["a"] {
			t.Fatalf("chrome args lost the trace correlation: %v", ce.Args)
		}
	}
}

// TestFlightRecorderRingAndDump covers the ring semantics, the NDJSON
// exposition, and both dump paths (synchronous and triggered).
func TestFlightRecorderRingAndDump(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(4, dir)
	defer fr.Close()

	for i := 0; i < 6; i++ {
		fr.Record(FlightEvent{Kind: FlightUpdate, Obj: uint64(i), Trace: uint64(100 + i)})
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(evs))
	}
	if evs[0].Obj != 2 || evs[3].Obj != 5 {
		t.Fatalf("ring order wrong: oldest obj=%d newest obj=%d", evs[0].Obj, evs[3].Obj)
	}
	if fr.Total() != 6 {
		t.Fatalf("total = %d, want 6", fr.Total())
	}
	for _, e := range evs {
		if e.TS == 0 {
			t.Fatal("Record must stamp a zero TS")
		}
	}

	var buf bytes.Buffer
	if err := fr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("NDJSON has %d lines, want 4", len(lines))
	}
	var ev FlightEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("NDJSON line does not parse: %v", err)
	}
	if ev.Kind != FlightUpdate || ev.Trace != 102 {
		t.Fatalf("decoded %+v, want update trace=102", ev)
	}

	// Synchronous dump: marker plus ring, parseable line by line.
	path, err := fr.DumpFile("test-reason")
	if err != nil {
		t.Fatalf("DumpFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sawMarker bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e FlightEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("dump line does not parse: %v (%q)", err, line)
		}
		if e.Kind == FlightDump && e.Note == "test-reason" {
			sawMarker = true
		}
	}
	if !sawMarker {
		t.Fatal("dump file has no marker naming the trigger reason")
	}
	if got := fr.DumpPaths(); len(got) != 1 || got[0] != path {
		t.Fatalf("DumpPaths = %v, want [%s]", got, path)
	}

	// Triggered dump goes through the background writer; rate limiting folds
	// the second trigger into the first window.
	fr.SetMinGap(time.Hour)
	fr.TriggerDump("storm")
	fr.TriggerDump("storm-again")
	deadline := time.Now().Add(5 * time.Second)
	for len(fr.DumpPaths()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("triggered dump never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(fr.DumpPaths()); n != 2 {
		t.Fatalf("wrote %d dumps, want 2 (rate limit must drop the second trigger)", n)
	}
}

// TestFlightRecorderNil pins nil-safety: a nil recorder discards everything.
func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(FlightEvent{Kind: FlightUpdate})
	fr.TriggerDump("x")
	fr.SetMinGap(time.Second)
	fr.SetLogf(nil)
	fr.Close()
	if fr.Events() != nil || fr.Total() != 0 || fr.DumpPaths() != nil {
		t.Fatal("nil recorder must read empty")
	}
	if _, err := fr.DumpFile("x"); err == nil {
		t.Fatal("nil recorder DumpFile must error")
	}
}
