package mobility

import (
	"math"
	"testing"

	"srb/internal/geom"
)

// scripted is a deterministic two-segment model for cursor tests.
type scripted struct {
	segs []Segment
	idx  int
}

func (s *scripted) SegmentAt(t float64) Segment {
	for s.idx < len(s.segs)-1 && t > s.segs[s.idx].T1 {
		s.idx++
	}
	return s.segs[s.idx]
}

func (s *scripted) At(t float64) geom.Point { return s.SegmentAt(t).At(t) }

func newScripted() *scripted {
	return &scripted{segs: []Segment{
		{Start: geom.Pt(0, 0), V: geom.Pt(1, 0), T0: 0, T1: 1},
		{Start: geom.Pt(1, 0), V: geom.Pt(0, 1), T0: 1, T1: 2},
		{Start: geom.Pt(1, 1), V: geom.Pt(-1, 0), T0: 2, T1: 3},
		{Start: geom.Pt(0, 1), V: geom.Pt(0, 0), T0: 3, T1: 100},
	}}
}

func TestCursorAtAcrossSegments(t *testing.T) {
	c := NewCursor(newScripted())
	if got := c.At(0.5); got != geom.Pt(0.5, 0) {
		t.Fatalf("At(0.5) = %v", got)
	}
	if got := c.At(1.5); got != geom.Pt(1, 0.5) {
		t.Fatalf("At(1.5) = %v", got)
	}
	// Lookback within the cached window still works after reading ahead.
	if got := c.At(0.25); got != geom.Pt(0.25, 0) {
		t.Fatalf("lookback At(0.25) = %v", got)
	}
	if got := c.At(2.5); got != geom.Pt(0.5, 1) {
		t.Fatalf("At(2.5) = %v", got)
	}
}

func TestCursorTrimAndDistance(t *testing.T) {
	c := NewCursor(newScripted())
	_ = c.At(2.5) // extend window
	if d := c.DistanceTraveled(2.5); math.Abs(d-2.5) > 1e-12 {
		t.Fatalf("distance at 2.5 = %v", d)
	}
	c.Trim(1.5)
	if got := c.At(1.5); got != geom.Pt(1, 0.5) {
		t.Fatalf("At(1.5) after trim = %v", got)
	}
	if d := c.DistanceTraveled(3.0); math.Abs(d-3.0) > 1e-12 {
		t.Fatalf("distance at 3.0 after trim = %v", d)
	}
	c.Trim(50)
	if d := c.DistanceTraveled(60); math.Abs(d-3.0) > 1e-12 {
		t.Fatalf("stationary tail should add no distance, got %v", d)
	}
}

func TestCursorExitTime(t *testing.T) {
	c := NewCursor(newScripted())
	// Rect covering x ∈ [0, 0.6]: exits at t = 0.6 on the first segment.
	te, ok := c.ExitTime(geom.R(-1, -1, 0.6, 2), 0, 100)
	if !ok || math.Abs(te-0.6) > 1e-12 {
		t.Fatalf("exit = %v,%v", te, ok)
	}
	// Rect covering the whole first leg but y < 0.5: exit mid second segment.
	te, ok = c.ExitTime(geom.R(-1, -1, 2, 0.5), 0, 100)
	if !ok || math.Abs(te-1.5) > 1e-12 {
		t.Fatalf("exit = %v,%v", te, ok)
	}
	// Huge rect: never exits before the horizon.
	if _, ok := c.ExitTime(geom.R(-10, -10, 10, 10), 0, 100); ok {
		t.Fatal("should not exit")
	}
	// Starting outside: immediate exit at from.
	te, ok = c.ExitTime(geom.R(5, 5, 6, 6), 0.5, 100)
	if !ok || te != 0.5 {
		t.Fatalf("outside start: %v,%v", te, ok)
	}
}

func TestCursorExitTimeRespectsHorizon(t *testing.T) {
	c := NewCursor(newScripted())
	// Would exit at 0.6, but the horizon is earlier.
	if _, ok := c.ExitTime(geom.R(-1, -1, 0.6, 2), 0, 0.5); ok {
		t.Fatal("exit beyond horizon must report !ok")
	}
}

func TestCursorWithWaypoint(t *testing.T) {
	space := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	w := NewWaypoint(3, 5, space, 0.05, 0.1, geom.Pt(0.5, 0.5))
	c := NewCursor(w)
	last := 0.0
	for i := 0; i <= 400; i++ {
		tt := float64(i) * 0.05
		p := c.At(tt)
		if !space.Expand(1e-9).Contains(p) {
			t.Fatalf("escaped space at %v: %v", tt, p)
		}
		if i%50 == 0 {
			c.Trim(tt)
		}
		d := c.DistanceTraveled(tt)
		if d+1e-9 < last {
			t.Fatalf("distance decreased: %v -> %v", last, d)
		}
		last = d
	}
	if last <= 0 {
		t.Fatal("expected some distance traveled")
	}
}
