package mobility

import "srb/internal/geom"

// Cursor adapts a lazily generated Model to the access pattern of the
// event-driven simulator: position queries at any time not older than the
// last Trim point, even though the underlying model only supports monotone
// access. It also tracks the cumulative distance traveled, used by the
// cost-per-distance metric of Figure 7.4(a).
type Cursor struct {
	model Model
	segs  []Segment
	dist  float64 // distance covered by fully retired segments
}

// NewCursor wraps a model positioned at time 0.
func NewCursor(m Model) *Cursor {
	c := &Cursor{model: m}
	c.segs = append(c.segs, m.SegmentAt(0))
	return c
}

// At returns the position at time t. t must not precede the last Trim point.
func (c *Cursor) At(t float64) geom.Point {
	return c.segmentFor(t).At(t)
}

// SegmentFor returns the trajectory segment covering time t, extending the
// cached window as needed.
func (c *Cursor) SegmentFor(t float64) Segment {
	return c.segmentFor(t)
}

func (c *Cursor) segmentFor(t float64) Segment {
	for c.segs[len(c.segs)-1].T1 < t {
		c.segs = append(c.segs, c.model.SegmentAt(c.segs[len(c.segs)-1].T1+1e-12))
	}
	// The window is small (exit scans look ahead a handful of segments), so a
	// linear scan from the back is cheap and cache friendly.
	for i := len(c.segs) - 1; i >= 0; i-- {
		if t >= c.segs[i].T0 {
			return c.segs[i]
		}
	}
	return c.segs[0]
}

// Trim declares that no future At call will use a time earlier than t,
// allowing retired segments to be dropped and their length added to the
// distance counter.
func (c *Cursor) Trim(t float64) {
	i := 0
	for i < len(c.segs)-1 && c.segs[i].T1 <= t {
		s := c.segs[i]
		c.dist += s.V.Norm() * (s.T1 - s.T0)
		i++
	}
	if i > 0 {
		c.segs = append(c.segs[:0], c.segs[i:]...)
	}
}

// DistanceTraveled returns the length of the trajectory from time 0 through
// time t, where t must be within the currently cached window.
func (c *Cursor) DistanceTraveled(t float64) float64 {
	d := c.dist
	for _, s := range c.segs {
		if t <= s.T0 {
			break
		}
		end := s.T1
		if t < end {
			end = t
		}
		d += s.V.Norm() * (end - s.T0)
	}
	return d
}

// ExitTime returns the first time ≥ from at which the trajectory leaves rect,
// scanning forward segment by segment up to the horizon. ok=false when the
// object stays inside through the horizon. The position at from must be
// inside rect; if it is not, from itself is returned.
func (c *Cursor) ExitTime(rect geom.Rect, from, horizon float64) (float64, bool) {
	p := c.At(from)
	if !rect.Contains(p) {
		return from, true
	}
	t := from
	for t < horizon {
		seg := c.segmentFor(t)
		pos := seg.At(t)
		if exit, ok := geom.SegmentRectExit(rect, pos, seg.V); ok {
			te := t + exit
			if te <= seg.T1 {
				if te > horizon {
					return 0, false
				}
				return te, true
			}
		}
		if seg.T1 <= t {
			// Degenerate zero-length segment guard.
			t += 1e-12
			continue
		}
		t = seg.T1
	}
	return 0, false
}
