// Package mobility generates moving-object trajectories for the evaluation
// workloads. The primary model is the random waypoint model used by the
// paper (Section 7.1, following Broch et al.): each object repeatedly picks a
// uniform random destination and moves toward it at a speed drawn uniformly
// from [0, 2·v̄], re-planning on arrival or after a constant-movement period
// drawn uniformly from [0, 2·t̄v].
//
// Trajectories are piecewise linear and generated lazily: a walker holds only
// its current segment, so simulating hundreds of thousands of objects over
// long horizons stays O(1) memory per object. Accesses must be monotone in
// time, which the event-driven simulator guarantees.
package mobility

import (
	"math"
	"math/rand"

	"srb/internal/geom"
)

// Segment is a constant-velocity stretch of a trajectory: position at time
// t ∈ [T0, T1] is Start + (t-T0)·V.
type Segment struct {
	Start  geom.Point
	V      geom.Point
	T0, T1 float64
}

// At returns the position at time t, clamped into the segment's time span.
func (s Segment) At(t float64) geom.Point {
	if t < s.T0 {
		t = s.T0
	}
	if t > s.T1 {
		t = s.T1
	}
	dt := t - s.T0
	return geom.Pt(s.Start.X+dt*s.V.X, s.Start.Y+dt*s.V.Y)
}

// Model produces the trajectory of one object. SegmentAt must be called with
// non-decreasing times.
type Model interface {
	// SegmentAt returns the segment active at time t.
	SegmentAt(t float64) Segment
	// At returns the position at time t.
	At(t float64) geom.Point
}

// Waypoint is the random waypoint walker of the paper's simulation setup.
type Waypoint struct {
	rng        *rand.Rand
	space      geom.Rect
	meanSpeed  float64
	meanPeriod float64
	cur        Segment
}

// NewWaypoint creates a walker starting at start at time 0. Each (seed, id)
// pair yields an independent deterministic stream.
func NewWaypoint(seed int64, id uint64, space geom.Rect, meanSpeed, meanPeriod float64, start geom.Point) *Waypoint {
	w := &Waypoint{
		rng:        rand.New(rand.NewSource(seed ^ int64(id*0x9e3779b97f4a7c15+0x1234abcd))),
		space:      space,
		meanSpeed:  meanSpeed,
		meanPeriod: meanPeriod,
	}
	w.cur = w.plan(start, 0)
	return w
}

// plan draws the next leg starting at p0 at time t0.
func (w *Waypoint) plan(p0 geom.Point, t0 float64) Segment {
	dest := geom.Pt(
		w.space.MinX+w.rng.Float64()*w.space.Width(),
		w.space.MinY+w.rng.Float64()*w.space.Height(),
	)
	speed := w.rng.Float64() * 2 * w.meanSpeed
	period := w.rng.Float64() * 2 * w.meanPeriod
	// Floor the leg duration: a zero mean period would otherwise make the
	// walker generate unboundedly many segments per unit of simulated time.
	if period < 1e-4 {
		period = 1e-4
	}
	d := p0.Dist(dest)
	dur := period
	v := geom.Pt(0, 0)
	if speed > 0 && d > 0 {
		travel := d / speed
		if travel < dur {
			dur = travel
		}
		v = dest.Sub(p0).Scale(speed / d)
	}
	return Segment{Start: p0, V: v, T0: t0, T1: t0 + dur}
}

// SegmentAt implements Model.
func (w *Waypoint) SegmentAt(t float64) Segment {
	for t > w.cur.T1 {
		w.cur = w.plan(w.cur.At(w.cur.T1), w.cur.T1)
	}
	return w.cur
}

// At implements Model.
func (w *Waypoint) At(t float64) geom.Point { return w.SegmentAt(t).At(t) }

// Directed is a steadier mobility model for the Section 6.2 experiments: the
// object keeps a persistent heading with small Gaussian perturbations at each
// re-plan, bouncing off the space boundary. Higher persistence approximates
// "steady movement".
type Directed struct {
	rng        *rand.Rand
	space      geom.Rect
	meanSpeed  float64
	meanPeriod float64
	jitter     float64 // stddev of the heading perturbation in radians
	heading    float64
	cur        Segment
}

// NewDirected creates a directed walker; jitter controls how much the heading
// wobbles between legs (0 = perfectly straight until it bounces).
func NewDirected(seed int64, id uint64, space geom.Rect, meanSpeed, meanPeriod, jitter float64, start geom.Point) *Directed {
	rng := rand.New(rand.NewSource(seed ^ int64(id*0x9e3779b97f4a7c15+0x5bd1e995)))
	d := &Directed{
		rng:        rng,
		space:      space,
		meanSpeed:  meanSpeed,
		meanPeriod: meanPeriod,
		jitter:     jitter,
		heading:    rng.Float64() * 2 * math.Pi,
	}
	d.cur = d.plan(start, 0)
	return d
}

func (d *Directed) plan(p0 geom.Point, t0 float64) Segment {
	d.heading += d.rng.NormFloat64() * d.jitter
	speed := d.meanSpeed * (0.5 + d.rng.Float64()) // U[0.5, 1.5]·v̄
	period := d.meanPeriod * (0.5 + d.rng.Float64())
	v := geom.Pt(math.Cos(d.heading)*speed, math.Sin(d.heading)*speed)
	// Bounce off the boundary: reflect the heading component that would exit.
	if exit, ok := geom.SegmentRectExit(d.space, p0, v); ok && exit < period {
		end := geom.Pt(p0.X+exit*v.X, p0.Y+exit*v.Y)
		if end.X <= d.space.MinX || end.X >= d.space.MaxX {
			v.X = -v.X
		}
		if end.Y <= d.space.MinY || end.Y >= d.space.MaxY {
			v.Y = -v.Y
		}
		d.heading = math.Atan2(v.Y, v.X)
		period = exit
		if period <= 0 {
			period = 1e-9
		}
	}
	return Segment{Start: p0, V: v, T0: t0, T1: t0 + period}
}

// SegmentAt implements Model.
func (d *Directed) SegmentAt(t float64) Segment {
	for t > d.cur.T1 {
		d.cur = d.plan(d.cur.At(d.cur.T1), d.cur.T1)
	}
	return d.cur
}

// At implements Model.
func (d *Directed) At(t float64) geom.Point { return d.SegmentAt(t).At(t) }

// StartPositions returns n deterministic uniform starting positions.
func StartPositions(seed int64, n int, space geom.Rect) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(
			space.MinX+rng.Float64()*space.Width(),
			space.MinY+rng.Float64()*space.Height(),
		)
	}
	return out
}
