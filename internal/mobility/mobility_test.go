package mobility

import (
	"math"
	"testing"

	"srb/internal/geom"
)

var space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

func TestWaypointStaysInSpace(t *testing.T) {
	w := NewWaypoint(1, 7, space, 0.05, 0.5, geom.Pt(0.5, 0.5))
	for i := 0; i <= 2000; i++ {
		tt := float64(i) * 0.01
		p := w.At(tt)
		if !space.Expand(1e-9).Contains(p) {
			t.Fatalf("t=%v: position %v escaped the space", tt, p)
		}
	}
}

func TestWaypointDeterministic(t *testing.T) {
	a := NewWaypoint(42, 3, space, 0.02, 0.1, geom.Pt(0.1, 0.2))
	b := NewWaypoint(42, 3, space, 0.02, 0.1, geom.Pt(0.1, 0.2))
	for i := 0; i <= 500; i++ {
		tt := float64(i) * 0.037
		if a.At(tt) != b.At(tt) {
			t.Fatalf("t=%v: divergent positions", tt)
		}
	}
	c := NewWaypoint(42, 4, space, 0.02, 0.1, geom.Pt(0.1, 0.2))
	diverged := false
	for i := 1; i <= 200; i++ {
		if a.At(float64(i)*0.037+20) != c.At(float64(i)*0.037+20) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different object IDs should yield different trajectories")
	}
}

func TestWaypointSpeedBounded(t *testing.T) {
	mean := 0.03
	w := NewWaypoint(5, 1, space, mean, 0.2, geom.Pt(0.4, 0.4))
	for i := 0; i < 500; i++ {
		seg := w.SegmentAt(float64(i) * 0.05)
		sp := seg.V.Norm()
		if sp > 2*mean+1e-12 {
			t.Fatalf("segment speed %v exceeds 2·v̄", sp)
		}
	}
}

func TestWaypointSegmentsChain(t *testing.T) {
	w := NewWaypoint(9, 2, space, 0.05, 0.05, geom.Pt(0.5, 0.5))
	prev := w.SegmentAt(0)
	for i := 0; i < 300; i++ {
		seg := w.SegmentAt(prev.T1 + 1e-12)
		if seg.T0 != prev.T1 {
			t.Fatalf("segment gap: prev ends %v, next starts %v", prev.T1, seg.T0)
		}
		if got, want := seg.Start, prev.At(prev.T1); got.Dist(want) > 1e-12 {
			t.Fatalf("segment discontinuity: %v vs %v", got, want)
		}
		prev = seg
	}
}

func TestSegmentAtClamps(t *testing.T) {
	s := Segment{Start: geom.Pt(0, 0), V: geom.Pt(1, 0), T0: 1, T1: 2}
	if s.At(0.5) != geom.Pt(0, 0) {
		t.Fatal("before T0 should clamp to start")
	}
	if s.At(3) != geom.Pt(1, 0) {
		t.Fatal("after T1 should clamp to end")
	}
	if s.At(1.5) != geom.Pt(0.5, 0) {
		t.Fatal("midpoint wrong")
	}
}

func TestDirectedStaysInSpaceAndIsSteady(t *testing.T) {
	d := NewDirected(3, 11, space, 0.05, 0.2, 0.05, geom.Pt(0.5, 0.5))
	var lastHeading float64
	turns := 0
	samples := 0
	for i := 0; i <= 3000; i++ {
		tt := float64(i) * 0.01
		p := d.At(tt)
		if !space.Expand(1e-9).Contains(p) {
			t.Fatalf("t=%v: position %v escaped the space", tt, p)
		}
		seg := d.SegmentAt(tt)
		if seg.V.Norm() > 0 {
			h := math.Atan2(seg.V.Y, seg.V.X)
			if samples > 0 {
				dh := math.Abs(h - lastHeading)
				if dh > math.Pi {
					dh = 2*math.Pi - dh
				}
				if dh > 1.0 { // sharp turn (usually a bounce)
					turns++
				}
			}
			lastHeading = h
			samples++
		}
	}
	if turns > samples/5 {
		t.Fatalf("directed model turns too often: %d sharp turns in %d samples", turns, samples)
	}
}

func TestStartPositions(t *testing.T) {
	a := StartPositions(7, 100, space)
	b := StartPositions(7, 100, space)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("start positions must be deterministic")
		}
		if !space.Contains(a[i]) {
			t.Fatalf("position %v outside space", a[i])
		}
	}
	c := StartPositions(8, 100, space)
	same := 0
	for i := range c {
		if c[i] == a[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds should differ")
	}
}

func TestZeroMeanPeriod(t *testing.T) {
	// Degenerate configuration must not loop forever or divide by zero.
	w := NewWaypoint(1, 1, space, 0.05, 0, geom.Pt(0.5, 0.5))
	p := w.At(1.0)
	if !space.Expand(1e-9).Contains(p) {
		t.Fatalf("position %v", p)
	}
}
