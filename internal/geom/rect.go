package geom

import (
	"fmt"
	"math"
)

// Rect is a closed axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
// Safe regions, quarantine areas of range queries, R-tree entries and grid
// cells are all Rects.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R constructs a Rect, normalizing the corner order.
func R(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectAround returns the degenerate rectangle containing only p.
func RectAround(p Point) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g]x[%.6g,%.6g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Width returns MaxX - MinX.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns MaxY - MinY.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Perimeter returns the perimeter 2*(width+height), the objective maximized
// by safe-region computation (Theorem 5.1).
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Area returns width*height.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// IsValid reports whether the rectangle is non-empty (Min ≤ Max on both axes).
func (r Rect) IsValid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s is fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the closed rectangles share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection rectangle. The result may be invalid
// (check IsValid) when the rectangles are disjoint.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand grows the rectangle by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{r.MinX - m, r.MinY - m, r.MaxX + m, r.MaxY + m}
}

// ClampPoint returns the point of r nearest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{clamp(p.X, r.MinX, r.MaxX), clamp(p.Y, r.MinY, r.MaxY)}
}

// MinDist returns δ(p, r): the minimum distance between p and any point of r
// (zero when p is inside).
func (r Rect) MinDist(p Point) float64 {
	return p.Dist(r.ClampPoint(p))
}

// MaxDist returns Δ(p, r): the maximum distance between p and any point of r,
// attained at one of the four corners.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(p.X-r.MinX, r.MaxX-p.X)
	dy := math.Max(p.Y-r.MinY, r.MaxY-p.Y)
	return math.Hypot(dx, dy)
}

// MinDistRect returns δ(r, s): the minimum distance between a pair of points
// drawn from r and s respectively (zero when they intersect).
func (r Rect) MinDistRect(s Rect) float64 {
	dx := axisGap(r.MinX, r.MaxX, s.MinX, s.MaxX)
	dy := axisGap(r.MinY, r.MaxY, s.MinY, s.MaxY)
	return math.Hypot(dx, dy)
}

// MaxDistRect returns Δ(r, s): the maximum distance between a pair of points
// drawn from r and s.
func (r Rect) MaxDistRect(s Rect) float64 {
	dx := math.Max(r.MaxX-s.MinX, s.MaxX-r.MinX)
	dy := math.Max(r.MaxY-s.MinY, s.MaxY-r.MinY)
	return math.Hypot(dx, dy)
}

// Corners returns the four corner points in counter-clockwise order starting
// at (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

func axisGap(a1, a2, b1, b2 float64) float64 {
	switch {
	case b1 > a2:
		return b1 - a2
	case a1 > b2:
		return a1 - b2
	default:
		return 0
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
