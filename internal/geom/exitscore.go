package geom

import "math"

// MeanExitChord returns ∫₀^{2π} k(θ) dθ where k(θ) is the distance from p to
// the boundary of r along direction θ — the integral that Theorem 5.1 shows
// is inversely proportional to the amortized location-update rate of an
// object at p moving in a uniformly random direction.
//
// The paper equates this integral to the rectangle's perimeter, which only
// holds when p is the center of a disk; for rectangles the closed form is the
// sum of four corner terms a·asinh(b/a) + b·asinh(a/b) over the four
// quadrant margins (see DESIGN.md errata). Crucially, the integral correctly
// scores a rectangle whose boundary touches p as nearly worthless, whereas
// the raw perimeter would happily pin the object on an edge and trigger an
// immediate update.
//
// The result is 0 when p lies outside r. It is monotone under rectangle
// inclusion for a fixed p, so maximal candidate rectangles remain optimal
// within each Ir-lp family.
func MeanExitChord(r Rect, p Point) float64 {
	if !r.Contains(p) {
		return 0
	}
	l := p.X - r.MinX
	rr := r.MaxX - p.X
	b := p.Y - r.MinY
	t := r.MaxY - p.Y
	return cornerChord(rr, t) + cornerChord(l, t) + cornerChord(l, b) + cornerChord(rr, b)
}

// cornerChord is ∫₀^{π/2} min(a/cosθ, b/sinθ) dθ = a·asinh(b/a) + b·asinh(a/b).
func cornerChord(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return a*math.Asinh(b/a) + b*math.Asinh(a/b)
}

// ExitObjective returns the safe-region scoring function for an object at p:
// the exact Theorem 5.1 integral. Larger values mean a longer expected time
// before the next source-initiated update.
func ExitObjective(p Point) Objective {
	return func(r Rect) float64 { return MeanExitChord(r, p) }
}

// WeightedExitObjective combines the exact exit integral with the
// steady-movement directional weighting of Section 6.2: the plain integral is
// scaled by the ratio λw/λ of the paper's weighted perimeter to the plain
// perimeter, preferring regions with room ahead of the current heading.
func WeightedExitObjective(plst, p Point, d float64) Objective {
	wp := WeightedPerimeter(plst, p, d)
	return func(r Rect) float64 {
		base := MeanExitChord(r, p)
		if base <= 0 {
			return 0
		}
		per := r.Perimeter()
		if per <= 0 {
			return base
		}
		return base * wp(r) / per
	}
}
