package geom

import "math"

// Objective scores a candidate safe region; larger is better. The default is
// Rect.Perimeter (Theorem 5.1 shows minimizing the update rate is equivalent
// to maximizing the perimeter for uniformly random headings). Section 6.2
// substitutes the steady-movement weighted perimeter.
type Objective func(Rect) float64

// Perimeter is the default objective from Theorem 5.1.
func Perimeter(r Rect) float64 { return r.Perimeter() }

// WeightedPerimeter returns the steady-movement objective of Section 6.2.
// plst is the previous reported location, p the current one, and d ∈ [0, 1]
// the steadiness parameter. The weighted perimeter of a rectangle with
// ordinary perimeter λ, center o, is approximated through a circle of equal
// perimeter:
//
//	λw = (1+D)·λ − (2Dλ/π)·arccos(2π·|po|·cosβ / λ)
//
// where β is the angle between the vector p→o and the heading p_lst→p.
func WeightedPerimeter(plst, p Point, d float64) Objective {
	heading := p.Sub(plst)
	hn := heading.Norm()
	return func(r Rect) float64 {
		lambda := r.Perimeter()
		if lambda <= 0 {
			return 0
		}
		if d == 0 || hn == 0 {
			return lambda
		}
		po := r.Center().Sub(p)
		pod := po.Norm()
		cosBeta := 1.0
		if pod > 0 {
			cosBeta = (po.X*heading.X + po.Y*heading.Y) / (pod * hn)
		}
		arg := 2 * math.Pi * pod * cosBeta / lambda
		if arg > 1 {
			arg = 1
		} else if arg < -1 {
			arg = -1
		}
		return (1+d)*lambda - (2*d*lambda/math.Pi)*math.Acos(arg)
	}
}

// reflection maps the plane so that an arbitrary configuration becomes the
// canonical one (target point in the first quadrant relative to the pivot q),
// and maps results back. It is its own inverse.
type reflection struct {
	q      Point
	sx, sy float64
}

func canonicalize(q, p Point) reflection {
	rf := reflection{q: q, sx: 1, sy: 1}
	if p.X < q.X {
		rf.sx = -1
	}
	if p.Y < q.Y {
		rf.sy = -1
	}
	return rf
}

func (rf reflection) point(p Point) Point {
	return Point{rf.q.X + rf.sx*(p.X-rf.q.X), rf.q.Y + rf.sy*(p.Y-rf.q.Y)}
}

func (rf reflection) rect(r Rect) Rect {
	a := rf.point(Point{r.MinX, r.MinY})
	b := rf.point(Point{r.MaxX, r.MaxY})
	return R(a.X, a.Y, b.X, b.Y)
}

// optimizeTheta maximizes obj over the unimodal single-parameter rectangle
// family mk on [lo, hi]. It evaluates the interval endpoints, any analytic
// optima (clamped into the interval), and refines with the paper's
// three-point shrinking search (Section 6.2) for objectives without a closed
// form. Returns the best rectangle and its score; ok=false when lo > hi.
func optimizeTheta(lo, hi float64, mk func(float64) Rect, obj Objective, analytic ...float64) (Rect, float64, bool) {
	if lo > hi {
		return Rect{}, 0, false
	}
	best := mk(lo)
	bestScore := obj(best)
	try := func(theta float64) {
		r := mk(theta)
		if s := obj(r); s > bestScore {
			best, bestScore = r, s
		}
	}
	try(hi)
	for _, a := range analytic {
		if a > lo && a < hi {
			try(a)
		}
	}
	// Golden-section style refinement; 48 iterations are far below any
	// practically observable tolerance for coordinates in the unit square.
	a, b := lo, hi
	for i := 0; i < 48 && b-a > 1e-12; i++ {
		m1 := a + (b-a)/3
		m2 := b - (b-a)/3
		if obj(mk(m1)) < obj(mk(m2)) {
			a = m1
		} else {
			b = m2
		}
	}
	try((a + b) / 2)
	return best, bestScore, true
}

// IrlpCircle returns the inscribed rectangle of the disk c with the largest
// objective that still contains p (Proposition 5.2), intersected with cell.
// p must lie inside the disk; if it does not, the degenerate rectangle at p
// is returned.
func IrlpCircle(c Circle, p Point, cell Rect, obj Objective) Rect {
	if c.R <= 0 || !c.Contains(p) {
		return RectAround(p).Intersect(cell)
	}
	rf := canonicalize(c.Center, p)
	cp := rf.point(p)
	q := c.Center
	dx := cp.X - q.X
	dy := cp.Y - q.Y
	// Inscribed rectangle with corner at angle θ from the y-axis:
	// half-width r·sinθ, half-height r·cosθ. Containment of p requires
	// θ ∈ [arcsin(dx/r), arccos(dy/r)].
	thetaLo := math.Asin(clamp(dx/c.R, 0, 1))
	thetaHi := math.Acos(clamp(dy/c.R, 0, 1))
	mk := func(theta float64) Rect {
		hw := c.R * math.Sin(theta)
		hh := c.R * math.Cos(theta)
		return Rect{q.X - hw, q.Y - hh, q.X + hw, q.Y + hh}
	}
	best, _, ok := optimizeTheta(thetaLo, thetaHi, mk, objReflected(obj, rf), math.Pi/4)
	if !ok {
		return RectAround(p).Intersect(cell)
	}
	out := rf.rect(best).Intersect(cell)
	return ensureContains(out, p, cell)
}

// IrlpCircleComplement returns the largest-objective rectangle inside cell
// that avoids the disk c and contains p (Proposition 5.4, with the perimeter
// direction corrected — see DESIGN.md). p must lie inside cell and outside
// the disk.
func IrlpCircleComplement(c Circle, p Point, cell Rect, obj Objective) Rect {
	if !c.IntersectsRect(cell) {
		return cell
	}
	if c.Contains(p) {
		return RectAround(p).Intersect(cell)
	}
	// Work inside the cell enlarged to cover the circle, then clip back
	// (Section 5.2 "we enlarge the cell to fully contain the circle").
	e := cell.Union(c.BBox())
	rf := canonicalize(c.Center, p)
	cp := rf.point(p)
	ce := rf.rect(e)
	q := c.Center
	dx := cp.X - q.X
	dy := cp.Y - q.Y
	t := Point{ce.MaxX, ce.MaxY} // Lemma 5.3: cell corner of p's quadrant

	best := RectAround(cp)
	robj := objReflected(obj, rf)
	bestScore := robj(best)
	consider := func(r Rect) {
		if !r.IsValid() || !r.Contains(cp) {
			return
		}
		if s := robj(r); s > bestScore {
			best, bestScore = r, s
		}
	}

	// Family 1: opposite corner x on the quarter arc, x = q + (r·sinθ, r·cosθ).
	// Containment of p requires θ ≤ θx and θ ≥ θy.
	thetaX := math.Pi / 2
	if dx < c.R {
		thetaX = math.Asin(clamp(dx/c.R, 0, 1))
	}
	thetaY := 0.0
	if dy < c.R {
		thetaY = math.Acos(clamp(dy/c.R, 0, 1))
	}
	if thetaY <= thetaX {
		mk := func(theta float64) Rect {
			x := Point{q.X + c.R*math.Sin(theta), q.Y + c.R*math.Cos(theta)}
			return R(x.X, x.Y, t.X, t.Y)
		}
		if r, _, ok := optimizeTheta(thetaY, thetaX, mk, robj, math.Pi/4); ok && r.Contains(cp) {
			consider(r)
		}
	}
	// Family 2 (position ①): the full-width strip above the circle.
	if dy >= c.R {
		consider(Rect{ce.MinX, q.Y + c.R, ce.MaxX, ce.MaxY})
	}
	// Family 3 (position ②): the full-height strip beside the circle.
	if dx >= c.R {
		consider(Rect{q.X + c.R, ce.MinY, ce.MaxX, ce.MaxY})
	}

	out := rf.rect(best).Intersect(cell)
	return ensureContains(out, p, cell)
}

// IrlpRing returns the largest-objective rectangle within the annulus rg that
// contains p (Proposition 5.5 plus the radial-box fallback for objects beside
// the inner disk), intersected with cell.
func IrlpRing(rg Ring, p Point, cell Rect, obj Objective) Rect {
	if rg.Inner <= 0 {
		return IrlpCircle(Circle{rg.Center, rg.Outer}, p, cell, obj)
	}
	if !rg.Contains(p) {
		return RectAround(p).Intersect(cell)
	}
	rf := canonicalize(rg.Center, p)
	cp := rf.point(p)
	q := rg.Center
	dx := cp.X - q.X
	dy := cp.Y - q.Y
	rr, RR := rg.Inner, rg.Outer

	best := RectAround(cp)
	robj := objReflected(obj, rf)
	bestScore := robj(best)
	consider := func(r Rect) {
		if !r.IsValid() || !r.Contains(cp) {
			return
		}
		if s := robj(r); s > bestScore {
			best, bestScore = r, s
		}
	}

	thetaLo := math.Asin(clamp(dx/RR, 0, 1))
	thetaHi := math.Acos(clamp(dy/RR, 0, 1))
	// Layout H: tangent to the inner circle from above, corners on the outer
	// circle. Valid when p sits above the inner circle (dy ≥ inner).
	if dy >= rr && thetaLo <= thetaHi {
		mk := func(theta float64) Rect {
			hw := RR * math.Sin(theta)
			top := RR * math.Cos(theta)
			return Rect{q.X - hw, q.Y + rr, q.X + hw, q.Y + top}
		}
		if r, _, ok := optimizeTheta(thetaLo, thetaHi, mk, robj, math.Atan(2)); ok {
			consider(r)
		}
	}
	// Layout V: tangent to the inner circle from the right.
	if dx >= rr && thetaLo <= thetaHi {
		mk := func(theta float64) Rect {
			hh := RR * math.Cos(theta)
			right := RR * math.Sin(theta)
			return Rect{q.X + rr, q.Y - hh, q.X + right, q.Y + hh}
		}
		if r, _, ok := optimizeTheta(thetaLo, thetaHi, mk, robj, math.Atan(0.5)); ok {
			consider(r)
		}
	}
	// Radial box fallback: corners scaled along p's direction to the inner and
	// outer radii; always valid for p in the ring, and the only candidate when
	// dx < inner and dy < inner.
	d := math.Hypot(dx, dy)
	if d > 0 {
		consider(Rect{
			q.X + dx*rr/d, q.Y + dy*rr/d,
			q.X + dx*RR/d, q.Y + dy*RR/d,
		})
	}

	out := rf.rect(best).Intersect(cell)
	return ensureContains(out, p, cell)
}

// IrlpRectComplement returns the best of the four cell-anchored strips that
// avoid the (cell-clipped) rectangle q and contain p (Section 5.1, Figure
// 5.1(b)). p must be inside cell and outside q.
func IrlpRectComplement(q Rect, p Point, cell Rect, obj Objective) Rect {
	qc := q.Intersect(cell)
	if !qc.IsValid() {
		return cell
	}
	if qc.Contains(p) {
		return RectAround(p)
	}
	best := RectAround(p)
	bestScore := obj(best)
	for _, cand := range [4]Rect{
		{cell.MinX, cell.MinY, qc.MinX, cell.MaxY}, // left strip
		{qc.MaxX, cell.MinY, cell.MaxX, cell.MaxY}, // right strip
		{cell.MinX, cell.MinY, cell.MaxX, qc.MinY}, // bottom strip
		{cell.MinX, qc.MaxY, cell.MaxX, cell.MaxY}, // top strip
	} {
		if !cand.IsValid() || !cand.Contains(p) {
			continue
		}
		if s := obj(cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	return best
}

func objReflected(obj Objective, rf reflection) Objective {
	//lint:allow floatcmp sx/sy are exact ±1 reflection sentinels, never computed
	if rf.sx == 1 && rf.sy == 1 {
		return obj
	}
	return func(r Rect) float64 { return obj(rf.rect(r)) }
}

// ensureContains guards against floating-point rounding expelling p from the
// computed region: the result is widened by the minimum amount required so
// that p is inside, while staying inside cell.
func ensureContains(r Rect, p Point, cell Rect) Rect {
	if !r.IsValid() {
		r = RectAround(p)
	}
	if !r.Contains(p) {
		r = r.Union(RectAround(p))
	}
	return r.Intersect(cell.Union(RectAround(p)))
}
