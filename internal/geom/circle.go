package geom

import "math"

// Circle is the quarantine area of a kNN query: all points within distance R
// of Center.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies inside the closed disk.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= c.R*c.R
}

// BBox returns the minimum bounding rectangle of the circle.
func (c Circle) BBox() Rect {
	return Rect{c.Center.X - c.R, c.Center.Y - c.R, c.Center.X + c.R, c.Center.Y + c.R}
}

// IntersectsRect reports whether the disk and the rectangle share a point.
func (c Circle) IntersectsRect(r Rect) bool {
	return r.MinDist(c.Center) <= c.R
}

// ContainsRect reports whether the rectangle lies entirely inside the disk.
func (c Circle) ContainsRect(r Rect) bool {
	return r.MaxDist(c.Center) <= c.R
}

// Ring is the annulus Inner ≤ d(Center, ·) ≤ Outer, the region an i-th
// nearest neighbor of an order-sensitive kNN query may roam without
// perturbing the result order (Section 5.2).
type Ring struct {
	Center Point
	Inner  float64
	Outer  float64
}

// Contains reports whether p lies in the closed annulus.
func (rg Ring) Contains(p Point) bool {
	d2 := rg.Center.Dist2(p)
	return d2 >= rg.Inner*rg.Inner && d2 <= rg.Outer*rg.Outer
}

// SegmentCircleExit returns the smallest t ≥ 0 at which the point p + t*v
// leaves the disk, and ok=false when p starts outside or never leaves (v=0).
func SegmentCircleExit(c Circle, p Point, v Point) (float64, bool) {
	// Solve |p + t v - center|^2 = R^2 for the positive root.
	w := p.Sub(c.Center)
	a := v.X*v.X + v.Y*v.Y
	b := 2 * (w.X*v.X + w.Y*v.Y)
	cc := w.X*w.X + w.Y*w.Y - c.R*c.R
	if cc > 0 {
		return 0, false // already outside
	}
	if a == 0 {
		return 0, false // not moving
	}
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, false
	}
	t := (-b + math.Sqrt(disc)) / (2 * a)
	if t < 0 {
		return 0, false
	}
	return t, true
}
