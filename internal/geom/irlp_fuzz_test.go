package geom

import (
	"math"
	"testing"
)

// sanitize maps an arbitrary float into [0, 1), rejecting non-finite input.
func sanitize(v float64) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	v = math.Mod(math.Abs(v), 1)
	return v, true
}

// FuzzIrlpCircle cross-checks the Proposition 5.2 inscribed-rectangle
// construction against its defining properties and a brute-force sampler over
// the same rectangle family: the result must contain p, stay inside the disk
// and the cell, and its perimeter must not be beaten by any sampled inscribed
// rectangle that also contains p.
func FuzzIrlpCircle(f *testing.F) {
	f.Add(0.5, 0.5, 0.25, 0.3, 0.7)
	f.Add(0.4, 0.6, 0.1, 0.99, 0.01)
	f.Add(0.35, 0.35, 0.02, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, cx, cy, cr, px, py float64) {
		vals := [5]*float64{&cx, &cy, &cr, &px, &py}
		for _, v := range vals {
			s, ok := sanitize(*v)
			if !ok {
				t.Skip()
			}
			*v = s
		}
		cell := R(0, 0, 1, 1)
		// Keep the disk strictly inside the cell so clipping cannot shrink the
		// optimum; the sampler below assumes the unclipped family.
		c := Circle{Center: Pt(0.3+0.4*cx, 0.3+0.4*cy), R: 0.02 + 0.27*cr}
		p := Pt(px, py)

		got := IrlpCircle(c, p, cell, Perimeter)
		if !got.IsValid() {
			t.Fatalf("IrlpCircle(%v, %v) returned invalid rect %v", c, p, got)
		}
		if !got.Contains(p) {
			t.Fatalf("IrlpCircle(%v, %v) = %v does not contain p", c, p, got)
		}
		if !cell.ContainsRect(got) {
			t.Fatalf("IrlpCircle(%v, %v) = %v escapes the cell", c, p, got)
		}
		if !c.Contains(p) {
			return // degenerate branch: rectangle collapses to p
		}
		if d := got.MaxDist(c.Center); d > c.R+1e-9 {
			t.Fatalf("IrlpCircle(%v, %v) = %v leaves the disk: max dist %g > r %g", c, p, got, d, c.R)
		}
		// Brute-force sampler over the inscribed family: center-symmetric
		// rectangles with corner at angle theta on the circle.
		best := 0.0
		for i := 0; i <= 256; i++ {
			theta := float64(i) / 256 * math.Pi / 2
			hw := c.R * math.Sin(theta)
			hh := c.R * math.Cos(theta)
			r := Rect{c.Center.X - hw, c.Center.Y - hh, c.Center.X + hw, c.Center.Y + hh}
			if r.Contains(p) && r.Perimeter() > best {
				best = r.Perimeter()
			}
		}
		if got.Perimeter() < best-1e-6 {
			t.Fatalf("IrlpCircle(%v, %v) perimeter %g beaten by sampled inscribed rect %g",
				c, p, got.Perimeter(), best)
		}
	})
}

// FuzzIrlpCircleComplement checks the Proposition 5.4 construction for
// non-members: the result must contain p, stay inside the cell, and avoid the
// interior of the disk.
func FuzzIrlpCircleComplement(f *testing.F) {
	f.Add(0.5, 0.5, 0.2, 0.9, 0.9)
	f.Add(0.3, 0.7, 0.05, 0.1, 0.1)
	f.Add(0.6, 0.4, 0.3, 0.01, 0.99)
	f.Fuzz(func(t *testing.T, cx, cy, cr, px, py float64) {
		vals := [5]*float64{&cx, &cy, &cr, &px, &py}
		for _, v := range vals {
			s, ok := sanitize(*v)
			if !ok {
				t.Skip()
			}
			*v = s
		}
		cell := R(0, 0, 1, 1)
		c := Circle{Center: Pt(cx, cy), R: 0.01 + 0.4*cr}
		p := Pt(px, py)
		if c.Contains(p) {
			t.Skip() // the complement construction is specified for outside points
		}

		got := IrlpCircleComplement(c, p, cell, Perimeter)
		if !got.IsValid() {
			t.Fatalf("IrlpCircleComplement(%v, %v) returned invalid rect %v", c, p, got)
		}
		if !got.Contains(p) {
			t.Fatalf("IrlpCircleComplement(%v, %v) = %v does not contain p", c, p, got)
		}
		if !cell.ContainsRect(got) {
			t.Fatalf("IrlpCircleComplement(%v, %v) = %v escapes the cell", c, p, got)
		}
		if d := got.MinDist(c.Center); d < c.R-1e-9 {
			t.Fatalf("IrlpCircleComplement(%v, %v) = %v intrudes into the disk: min dist %g < r %g",
				c, p, got, d, c.R)
		}
	})
}
