package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNormalizes(t *testing.T) {
	r := R(0.7, 0.9, 0.2, 0.1)
	want := Rect{0.2, 0.1, 0.7, 0.9}
	if r != want {
		t.Fatalf("R() = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 2, 1}
	if got := r.Width(); got != 2 {
		t.Errorf("Width = %v, want 2", got)
	}
	if got := r.Height(); got != 1 {
		t.Errorf("Height = %v, want 1", got)
	}
	if got := r.Perimeter(); got != 6 {
		t.Errorf("Perimeter = %v, want 6", got)
	}
	if got := r.Area(); got != 2 {
		t.Errorf("Area = %v, want 2", got)
	}
	if got := r.Center(); got != Pt(1, 0.5) {
		t.Errorf("Center = %v, want (1,0.5)", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0.5, 0.5), true},
		{Pt(0, 0), true}, // closed rectangle includes the boundary
		{Pt(1, 1), true},
		{Pt(1.0001, 0.5), false},
		{Pt(0.5, -0.0001), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	got := a.Intersect(b)
	if got != (Rect{1, 1, 2, 2}) {
		t.Fatalf("Intersect = %v", got)
	}
	c := Rect{5, 5, 6, 6}
	if a.Intersect(c).IsValid() {
		t.Fatal("disjoint intersection should be invalid")
	}
	if a.Intersects(c) {
		t.Fatal("Intersects should be false for disjoint rects")
	}
	if !a.Intersects(Rect{2, 2, 3, 3}) {
		t.Fatal("touching rects intersect (closed semantics)")
	}
}

func TestRectMinMaxDistPoint(t *testing.T) {
	r := Rect{1, 1, 3, 2}
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Pt(2, 1.5), 0, math.Hypot(1, 0.5)},              // inside: min 0
		{Pt(0, 1.5), 1, math.Hypot(3, 0.5)},              // left of rect
		{Pt(0, 0), math.Hypot(1, 1), math.Hypot(3, 2)},   // below-left corner
		{Pt(2, 5), 3, math.Hypot(1, 4)},                  // above
		{Pt(4, 3), math.Hypot(1, 1), math.Hypot(3, 2)},   // above-right
		{Pt(1, 1), 0, math.Hypot(2, 1)},                  // on corner
		{Pt(3, 1.5), 0, math.Max(2, math.Hypot(2, 0.5))}, // on edge
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.min)
		}
		if got := r.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %v, want %v", c.p, got, c.max)
		}
	}
}

func TestRectRectDistances(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 0, 3, 1}
	if got := a.MinDistRect(b); got != 1 {
		t.Errorf("MinDistRect = %v, want 1", got)
	}
	if got := a.MinDistRect(a); got != 0 {
		t.Errorf("self MinDistRect = %v, want 0", got)
	}
	c := Rect{2, 3, 3, 4}
	if got := a.MinDistRect(c); math.Abs(got-math.Hypot(1, 2)) > 1e-12 {
		t.Errorf("diagonal MinDistRect = %v", got)
	}
	if got := a.MaxDistRect(b); math.Abs(got-math.Hypot(3, 1)) > 1e-12 {
		t.Errorf("MaxDistRect = %v", got)
	}
}

// Property: for random rects and points, sampling points inside the rect
// never produces a distance below MinDist or above MaxDist.
func TestMinMaxDistEnvelopeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(px, py, ax, ay, bx, by uint16) bool {
		p := Pt(float64(px)/65535, float64(py)/65535)
		r := R(float64(ax)/65535, float64(ay)/65535, float64(bx)/65535, float64(by)/65535)
		lo, hi := r.MinDist(p), r.MaxDist(p)
		for i := 0; i < 32; i++ {
			s := Pt(r.MinX+rng.Float64()*r.Width(), r.MinY+rng.Float64()*r.Height())
			d := p.Dist(s)
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return lo <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: rect-rect min/max distances bound all pairwise point samples.
func TestRectRectDistEnvelopeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 uint16) bool {
		u := func(v uint16) float64 { return float64(v) / 65535 }
		ra := R(u(a1), u(a2), u(a3), u(a4))
		rb := R(u(b1), u(b2), u(b3), u(b4))
		lo, hi := ra.MinDistRect(rb), ra.MaxDistRect(rb)
		for i := 0; i < 16; i++ {
			s := Pt(ra.MinX+rng.Float64()*ra.Width(), ra.MinY+rng.Float64()*ra.Height())
			q := Pt(rb.MinX+rng.Float64()*rb.Width(), rb.MinY+rng.Float64()*rb.Height())
			d := s.Dist(q)
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionExpandClamp(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, -1, 3, 0.5}
	if got := a.Union(b); got != (Rect{0, -1, 3, 1}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Expand(0.5); got != (Rect{-0.5, -0.5, 1.5, 1.5}) {
		t.Errorf("Expand = %v", got)
	}
	if got := a.ClampPoint(Pt(5, -3)); got != Pt(1, 0) {
		t.Errorf("ClampPoint = %v", got)
	}
}

func TestPointHelpers(t *testing.T) {
	p := Pt(3, 4)
	if p.Norm() != 5 {
		t.Errorf("Norm = %v", p.Norm())
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Sub(Pt(1, 1)); got != Pt(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := Lerp(Pt(0, 0), Pt(2, 4), 0.25); got != Pt(0.5, 1) {
		t.Errorf("Lerp = %v", got)
	}
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if d2 := Pt(0, 0).Dist2(Pt(3, 4)); d2 != 25 {
		t.Errorf("Dist2 = %v", d2)
	}
}
