package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var unitCell = Rect{0, 0, 1, 1}

// --- IrlpCircle -------------------------------------------------------------

func TestIrlpCircleCentered(t *testing.T) {
	// p at the center: the optimum is the inscribed square (θ = π/4).
	c := Circle{Pt(0.5, 0.5), 0.3}
	got := IrlpCircle(c, c.Center, Rect{-1, -1, 2, 2}, Perimeter)
	side := 0.3 * math.Sqrt2
	if math.Abs(got.Width()-side) > 1e-9 || math.Abs(got.Height()-side) > 1e-9 {
		t.Fatalf("inscribed square expected, got %v", got)
	}
	if math.Abs(got.Perimeter()-4*side) > 1e-9 {
		t.Fatalf("perimeter %v, want %v", got.Perimeter(), 4*side)
	}
}

func TestIrlpCircleOffCenterPoint(t *testing.T) {
	// p near the right edge forces θ ≥ θx > π/4: a tall thin rectangle.
	c := Circle{Pt(0.5, 0.5), 0.3}
	p := Pt(0.79, 0.5)
	got := IrlpCircle(c, p, Rect{-1, -1, 2, 2}, Perimeter)
	if !got.Contains(p) {
		t.Fatalf("region %v does not contain p %v", got, p)
	}
	if !c.ContainsRect(got) {
		t.Fatalf("region %v exceeds circle", got)
	}
	// Analytic: θ = arcsin(0.29/0.3); hw = 0.29.
	if math.Abs(got.Width()-0.58) > 1e-9 {
		t.Fatalf("width = %v, want 0.58", got.Width())
	}
}

func TestIrlpCirclePOutside(t *testing.T) {
	c := Circle{Pt(0.5, 0.5), 0.1}
	got := IrlpCircle(c, Pt(0.9, 0.9), unitCell, Perimeter)
	if got.Area() != 0 {
		t.Fatalf("expected degenerate rect for p outside, got %v", got)
	}
}

func TestIrlpCircleProperty(t *testing.T) {
	f := func(cx, cy, rad, ang, frac uint16) bool {
		c := Circle{Pt(0.2+0.6*u16(cx), 0.2+0.6*u16(cy)), 0.01 + 0.2*u16(rad)}
		// random p strictly inside the circle
		a := 2 * math.Pi * u16(ang)
		rr := c.R * 0.999 * u16(frac)
		p := Pt(c.Center.X+rr*math.Cos(a), c.Center.Y+rr*math.Sin(a))
		cell := Rect{-1, -1, 2, 2}
		got := IrlpCircle(c, p, cell, Perimeter)
		return got.Contains(p) && c.ContainsRect(got.Expand(-1e-9)) && got.Perimeter() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- IrlpCircleComplement ---------------------------------------------------

func TestIrlpComplementDisjointCircle(t *testing.T) {
	c := Circle{Pt(5, 5), 0.5}
	got := IrlpCircleComplement(c, Pt(0.5, 0.5), unitCell, Perimeter)
	if got != unitCell {
		t.Fatalf("circle far away: whole cell expected, got %v", got)
	}
}

func TestIrlpComplementStrip(t *testing.T) {
	// Circle at the cell center; p well above it: the full-width strip above
	// the circle must win (perimeter 2(1 + 0.3) = 2.6 beats any corner rect).
	c := Circle{Pt(0.5, 0.5), 0.2}
	p := Pt(0.5, 0.9)
	got := IrlpCircleComplement(c, p, unitCell, Perimeter)
	want := Rect{0, 0.7, 1, 1}
	if math.Abs(got.MinY-want.MinY) > 1e-9 || got.MinX != 0 || got.MaxX != 1 || got.MaxY != 1 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestIrlpComplementCorner(t *testing.T) {
	// p diagonally NE of the circle, not clear of it on either axis: the arc
	// family applies.
	c := Circle{Pt(0.4, 0.4), 0.3}
	p := Pt(0.62, 0.62)
	got := IrlpCircleComplement(c, p, unitCell, Perimeter)
	if !got.Contains(p) {
		t.Fatalf("region %v does not contain %v", got, p)
	}
	if c.IntersectsRect(got.Expand(-1e-9)) {
		t.Fatalf("region %v overlaps circle", got)
	}
}

func TestIrlpComplementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(cx, cy, rad, px, py uint16) bool {
		c := Circle{Pt(u16(cx), u16(cy)), 0.05 + 0.3*u16(rad)}
		p := Pt(u16(px), u16(py))
		if c.Contains(p) {
			return true // precondition: p outside quarantine circle
		}
		got := IrlpCircleComplement(c, p, unitCell, Perimeter)
		if !got.Contains(p) || !got.IsValid() {
			return false
		}
		if !unitCell.Expand(1e-9).ContainsRect(got) {
			return false
		}
		// Sample the region: no sampled point may fall in the circle.
		for i := 0; i < 24; i++ {
			s := Pt(got.MinX+rng.Float64()*got.Width(), got.MinY+rng.Float64()*got.Height())
			if c.Center.Dist(s) < c.R-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// The complement Ir-lp must prefer interval endpoints over the paper's
// (erroneous) θ=π/4 interior optimum; see DESIGN.md errata. With a symmetric
// configuration both endpoints beat π/4.
func TestIrlpComplementNotParkedAtQuarterPi(t *testing.T) {
	c := Circle{Pt(0, 0), 0.5}
	cell := Rect{-1, -1, 1, 1}
	p := Pt(0.45, 0.45) // outside the circle, diagonal
	got := IrlpCircleComplement(c, p, cell, Perimeter)
	// θ=π/4 rectangle would be [0.354,1]x[0.354,1] with perimeter ~2.59.
	quarter := 2 * ((1 - 0.5/math.Sqrt2) * 2)
	if got.Perimeter() <= quarter+1e-9 {
		t.Fatalf("perimeter %v not better than θ=π/4 rect %v", got.Perimeter(), quarter)
	}
}

// --- IrlpRing ---------------------------------------------------------------

func TestIrlpRingDegeneratesToCircle(t *testing.T) {
	rg := Ring{Pt(0.5, 0.5), 0, 0.3}
	got := IrlpRing(rg, Pt(0.5, 0.5), Rect{-1, -1, 2, 2}, Perimeter)
	side := 0.3 * math.Sqrt2
	if math.Abs(got.Width()-side) > 1e-9 {
		t.Fatalf("expected inscribed square of outer circle, got %v", got)
	}
}

func TestIrlpRingBelow(t *testing.T) {
	rg := Ring{Pt(0.5, 0.5), 0.05, 0.4}
	p := Pt(0.5, 0.44) // just below the inner circle, so θ=arctan2 is feasible
	got := IrlpRing(rg, p, Rect{-1, -1, 2, 2}, Perimeter)
	if !got.Contains(p) {
		t.Fatalf("region %v does not contain %v", got, p)
	}
	// Optimal layout-H at θ=arctan2: perimeter 4R·sinθ + 2(R·cosθ − r).
	th := math.Atan(2.0)
	want := 4*0.4*math.Sin(th) + 2*(0.4*math.Cos(th)-0.05)
	if math.Abs(got.Perimeter()-want) > 1e-6 {
		t.Fatalf("perimeter %v, want %v", got.Perimeter(), want)
	}
}

func TestIrlpRingDiagonalGap(t *testing.T) {
	// dx < r and dy < r: neither paper layout contains p; the radial-box
	// fallback must produce a valid region.
	rg := Ring{Pt(0.5, 0.5), 0.2, 0.5}
	p := Pt(0.65, 0.65) // dx=dy=0.15 < 0.2, d≈0.212 > 0.2
	if !rg.Contains(p) {
		t.Fatal("test setup: p must be inside the ring")
	}
	got := IrlpRing(rg, p, Rect{-1, -1, 2, 2}, Perimeter)
	if !got.Contains(p) {
		t.Fatalf("region %v does not contain %v", got, p)
	}
	if got.Area() <= 0 {
		t.Fatalf("fallback should yield non-degenerate rect, got %v", got)
	}
}

func TestIrlpRingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(cx, cy, r1, r2, ang, frac uint16) bool {
		inner := 0.05 + 0.2*u16(r1)
		outer := inner + 0.05 + 0.3*u16(r2)
		rg := Ring{Pt(u16(cx), u16(cy)), inner, outer}
		a := 2 * math.Pi * u16(ang)
		d := inner + (outer-inner)*u16(frac)
		p := Pt(rg.Center.X+d*math.Cos(a), rg.Center.Y+d*math.Sin(a))
		cell := Rect{-2, -2, 3, 3}
		got := IrlpRing(rg, p, cell, Perimeter)
		if !got.Contains(p) || !got.IsValid() {
			return false
		}
		// Every sampled point of the region must lie inside the ring.
		for i := 0; i < 24; i++ {
			s := Pt(got.MinX+rng.Float64()*got.Width(), got.MinY+rng.Float64()*got.Height())
			dd := rg.Center.Dist(s)
			if dd < inner-1e-9 || dd > outer+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// --- IrlpRectComplement -----------------------------------------------------

func TestIrlpRectComplementStrips(t *testing.T) {
	q := Rect{0.4, 0.4, 0.6, 0.6}
	cases := []struct {
		p    Point
		want Rect
	}{
		{Pt(0.2, 0.5), Rect{0, 0, 0.4, 1}}, // left strip
		{Pt(0.8, 0.5), Rect{0.6, 0, 1, 1}}, // right strip
		{Pt(0.5, 0.2), Rect{0, 0, 1, 0.4}}, // bottom strip
		{Pt(0.5, 0.9), Rect{0, 0.6, 1, 1}}, // top strip
	}
	for _, c := range cases {
		got := IrlpRectComplement(q, c.p, unitCell, Perimeter)
		if got != c.want {
			t.Errorf("p=%v: got %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIrlpRectComplementCornerPointPicksBest(t *testing.T) {
	// p in the corner area: two strips contain it; the longer-perimeter one
	// wins. Query near the left edge → right strip is nearly the whole cell.
	q := Rect{0, 0.4, 0.2, 0.6}
	p := Pt(0.9, 0.9)
	got := IrlpRectComplement(q, p, unitCell, Perimeter)
	if got != (Rect{0.2, 0, 1, 1}) {
		t.Fatalf("got %v, want right strip", got)
	}
}

func TestIrlpRectComplementQueryOutsideCell(t *testing.T) {
	q := Rect{2, 2, 3, 3}
	got := IrlpRectComplement(q, Pt(0.5, 0.5), unitCell, Perimeter)
	if got != unitCell {
		t.Fatalf("got %v, want whole cell", got)
	}
}

func TestIrlpRectComplementProperty(t *testing.T) {
	f := func(q1, q2, q3, q4, px, py uint16) bool {
		q := R(u16(q1), u16(q2), u16(q3), u16(q4))
		p := Pt(u16(px), u16(py))
		if q.Contains(p) {
			return true
		}
		got := IrlpRectComplement(q, p, unitCell, Perimeter)
		if !got.Contains(p) {
			return false
		}
		inter := got.Intersect(q)
		// Strips may share a boundary edge with q but no interior.
		return !inter.IsValid() || inter.Area() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// --- WeightedPerimeter (§6.2) -----------------------------------------------

func TestWeightedPerimeterAtCenterEqualsPlain(t *testing.T) {
	r := Rect{0, 0, 0.4, 0.2}
	p := r.Center()
	obj := WeightedPerimeter(Pt(-1, 0.1), p, 0.5)
	if math.Abs(obj(r)-r.Perimeter()) > 1e-9 {
		t.Fatalf("weighted %v != plain %v at center", obj(r), r.Perimeter())
	}
}

func TestWeightedPerimeterFavorsForwardRegion(t *testing.T) {
	// Heading east: a region whose center is ahead of p must score higher
	// than the mirror region behind p.
	p := Pt(0.5, 0.5)
	plst := Pt(0.4, 0.5)
	obj := WeightedPerimeter(plst, p, 0.8)
	ahead := Rect{0.5, 0.45, 0.7, 0.55}
	behind := Rect{0.3, 0.45, 0.5, 0.55}
	if obj(ahead) <= obj(behind) {
		t.Fatalf("ahead %v should beat behind %v", obj(ahead), obj(behind))
	}
	if obj(ahead) <= ahead.Perimeter() {
		t.Fatalf("forward region should exceed plain perimeter")
	}
}

func TestWeightedPerimeterZeroSteadiness(t *testing.T) {
	obj := WeightedPerimeter(Pt(0, 0), Pt(0.1, 0), 0)
	r := Rect{0, 0, 0.3, 0.1}
	if obj(r) != r.Perimeter() {
		t.Fatalf("D=0 must reduce to plain perimeter")
	}
}

func TestIrlpCircleWeightedStaysValid(t *testing.T) {
	c := Circle{Pt(0.5, 0.5), 0.25}
	p := Pt(0.55, 0.45)
	obj := WeightedPerimeter(Pt(0.4, 0.45), p, 0.5)
	got := IrlpCircle(c, p, Rect{-1, -1, 2, 2}, obj)
	if !got.Contains(p) || !c.ContainsRect(got.Expand(-1e-9)) {
		t.Fatalf("weighted Ir-lp invalid: %v", got)
	}
}

// --- motion -----------------------------------------------------------------

func TestSegmentRectExit(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	if tt, ok := SegmentRectExit(r, Pt(0.5, 0.5), Pt(1, 0)); !ok || math.Abs(tt-0.5) > 1e-12 {
		t.Fatalf("exit = %v,%v", tt, ok)
	}
	if tt, ok := SegmentRectExit(r, Pt(0.5, 0.5), Pt(-1, -2)); !ok || math.Abs(tt-0.25) > 1e-12 {
		t.Fatalf("exit = %v,%v", tt, ok)
	}
	if _, ok := SegmentRectExit(r, Pt(0.5, 0.5), Pt(0, 0)); ok {
		t.Fatal("stationary point never exits")
	}
	if _, ok := SegmentRectExit(r, Pt(2, 2), Pt(1, 0)); ok {
		t.Fatal("outside start: not an exit")
	}
}

func TestSegmentRectEnter(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	if tt, ok := SegmentRectEnter(r, Pt(0, 1.5), Pt(1, 0)); !ok || math.Abs(tt-1) > 1e-12 {
		t.Fatalf("enter = %v,%v", tt, ok)
	}
	if tt, ok := SegmentRectEnter(r, Pt(1.5, 1.5), Pt(1, 0)); !ok || tt != 0 {
		t.Fatalf("inside start: enter = %v,%v", tt, ok)
	}
	if _, ok := SegmentRectEnter(r, Pt(0, 0), Pt(-1, 0)); ok {
		t.Fatal("moving away never enters")
	}
	if _, ok := SegmentRectEnter(r, Pt(0, 0), Pt(0, 1)); ok {
		t.Fatal("parallel miss never enters")
	}
}

func TestSegmentCircleExit(t *testing.T) {
	c := Circle{Pt(0, 0), 1}
	if tt, ok := SegmentCircleExit(c, Pt(0, 0), Pt(1, 0)); !ok || math.Abs(tt-1) > 1e-12 {
		t.Fatalf("exit = %v,%v", tt, ok)
	}
	if tt, ok := SegmentCircleExit(c, Pt(0.5, 0), Pt(1, 0)); !ok || math.Abs(tt-0.5) > 1e-12 {
		t.Fatalf("exit = %v,%v", tt, ok)
	}
	if _, ok := SegmentCircleExit(c, Pt(2, 0), Pt(1, 0)); ok {
		t.Fatal("outside start")
	}
	if _, ok := SegmentCircleExit(c, Pt(0, 0), Pt(0, 0)); ok {
		t.Fatal("stationary")
	}
}

func u16(v uint16) float64 { return float64(v) / 65535 }
