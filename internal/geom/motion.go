package geom

import "math"

// SegmentRectExit returns the smallest t ≥ 0 at which the moving point
// p + t·v leaves the closed rectangle r. ok=false when p starts outside
// (exit time is immediately 0 in the caller's terms) or when v is zero
// (the point never leaves).
func SegmentRectExit(r Rect, p Point, v Point) (float64, bool) {
	if !r.Contains(p) {
		return 0, false
	}
	t := math.Inf(1)
	if v.X > 0 {
		t = math.Min(t, (r.MaxX-p.X)/v.X)
	} else if v.X < 0 {
		t = math.Min(t, (r.MinX-p.X)/v.X)
	}
	if v.Y > 0 {
		t = math.Min(t, (r.MaxY-p.Y)/v.Y)
	} else if v.Y < 0 {
		t = math.Min(t, (r.MinY-p.Y)/v.Y)
	}
	if math.IsInf(t, 1) {
		return 0, false
	}
	if t < 0 {
		t = 0
	}
	return t, true
}

// SegmentRectEnter returns the smallest t ≥ 0 at which the moving point
// p + t·v enters the closed rectangle r, and ok=false when it never does.
// When p starts inside, t is 0.
func SegmentRectEnter(r Rect, p Point, v Point) (float64, bool) {
	if r.Contains(p) {
		return 0, true
	}
	tEnter, tLeave := math.Inf(-1), math.Inf(1)
	for _, axis := range [2][3]float64{
		{p.X, v.X, 0}, // sentinel layout: pos, vel, axis id (unused)
		{p.Y, v.Y, 1},
	} {
		pos, vel := axis[0], axis[1]
		lo, hi := r.MinX, r.MaxX
		//lint:allow floatcmp axis id is an exact 0/1 sentinel, never computed
		if axis[2] == 1 {
			lo, hi = r.MinY, r.MaxY
		}
		if vel == 0 {
			if pos < lo || pos > hi {
				return 0, false
			}
			continue
		}
		t1 := (lo - pos) / vel
		t2 := (hi - pos) / vel
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tEnter = math.Max(tEnter, t1)
		tLeave = math.Min(tLeave, t2)
	}
	if tEnter > tLeave || tLeave < 0 {
		return 0, false
	}
	if tEnter < 0 {
		tEnter = 0
	}
	return tEnter, true
}
