package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Monte-Carlo reference for ∫ k(θ) dθ.
func monteCarloChord(r Rect, p Point, n int, rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * rng.Float64()
		v := Pt(math.Cos(theta), math.Sin(theta))
		if t, ok := SegmentRectExit(r, p, v); ok {
			sum += t
		}
	}
	return sum * 2 * math.Pi / float64(n)
}

func TestMeanExitChordMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []struct {
		r Rect
		p Point
	}{
		{Rect{0, 0, 1, 1}, Pt(0.5, 0.5)},
		{Rect{0, 0, 1, 1}, Pt(0.1, 0.9)},
		{Rect{0, 0, 2, 0.5}, Pt(1.7, 0.2)},
		{Rect{-1, -1, 1, 1}, Pt(0.99, -0.99)},
	}
	for _, c := range cases {
		got := MeanExitChord(c.r, c.p)
		want := monteCarloChord(c.r, c.p, 400000, rng)
		if math.Abs(got-want) > 0.02*want+1e-9 {
			t.Errorf("rect %v p %v: analytic %v vs MC %v", c.r, c.p, got, want)
		}
	}
}

func TestMeanExitChordCenteredSquare(t *testing.T) {
	// Closed form for the unit square center: 4·Q(1/2, 1/2) with
	// Q(a,a) = 2a·asinh(1).
	got := MeanExitChord(Rect{0, 0, 1, 1}, Pt(0.5, 0.5))
	want := 4 * (0.5*math.Asinh(1) + 0.5*math.Asinh(1))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMeanExitChordBoundaryIsWorthless(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	interior := MeanExitChord(r, Pt(0.5, 0.5))
	onEdge := MeanExitChord(r, Pt(0.5, 0))
	onCorner := MeanExitChord(r, Pt(0, 0))
	if onEdge >= 0.75*interior {
		t.Fatalf("edge point should score clearly lower: %v vs %v", onEdge, interior)
	}
	if onCorner >= onEdge {
		t.Fatalf("corner should score lowest: %v vs %v", onCorner, onEdge)
	}
	if MeanExitChord(r, Pt(2, 2)) != 0 {
		t.Fatal("outside point scores 0")
	}
}

// Property: monotone under rectangle inclusion for a fixed interior point.
func TestMeanExitChordMonotoneProperty(t *testing.T) {
	f := func(px, py, grow uint16) bool {
		p := Pt(0.2+0.6*u16(px), 0.2+0.6*u16(py))
		small := Rect{p.X - 0.1, p.Y - 0.1, p.X + 0.1, p.Y + 0.1}
		g := 0.001 + 0.5*u16(grow)
		big := small.Expand(g)
		return MeanExitChord(big, p) >= MeanExitChord(small, p)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: translation invariance.
func TestMeanExitChordTranslationProperty(t *testing.T) {
	f := func(px, py, dx, dy uint16) bool {
		p := Pt(0.3+0.4*u16(px), 0.3+0.4*u16(py))
		r := Rect{0.1, 0.2, 0.9, 0.8}
		ox, oy := 10*u16(dx)-5, 10*u16(dy)-5
		moved := Rect{r.MinX + ox, r.MinY + oy, r.MaxX + ox, r.MaxY + oy}
		a := MeanExitChord(r, p)
		b := MeanExitChord(moved, p.Add(ox, oy))
		return math.Abs(a-b) < 1e-9*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExitObjectiveRanksInteriorAboveBoundary(t *testing.T) {
	p := Pt(0.5, 0.5)
	obj := ExitObjective(p)
	centered := Rect{0.3, 0.3, 0.7, 0.7}
	pinned := Rect{0.5, 0.3, 0.9, 0.7} // same size, p on its left edge
	if obj(centered) <= obj(pinned) {
		t.Fatalf("centered %v should beat pinned %v", obj(centered), obj(pinned))
	}
}

func TestWeightedExitObjectiveForwardBias(t *testing.T) {
	p := Pt(0.5, 0.5)
	plst := Pt(0.45, 0.5) // heading east
	obj := WeightedExitObjective(plst, p, 0.8)
	ahead := Rect{0.45, 0.4, 0.75, 0.6}
	behind := Rect{0.25, 0.4, 0.55, 0.6}
	if obj(ahead) <= obj(behind) {
		t.Fatalf("forward region should win: %v vs %v", obj(ahead), obj(behind))
	}
	// Zero steadiness or zero heading degrade gracefully.
	if got := WeightedExitObjective(p, p, 0.8)(ahead); got <= 0 {
		t.Fatalf("no-heading weighted objective should still be positive: %v", got)
	}
	if WeightedExitObjective(plst, p, 0.8)(Rect{2, 2, 3, 3}) != 0 {
		t.Fatal("region not containing p scores 0")
	}
}

func TestCornerChordLimits(t *testing.T) {
	if cornerChord(0, 1) != 0 || cornerChord(1, 0) != 0 || cornerChord(0, 0) != 0 {
		t.Fatal("degenerate corner terms must vanish")
	}
	// Symmetry.
	if math.Abs(cornerChord(0.3, 0.7)-cornerChord(0.7, 0.3)) > 1e-12 {
		t.Fatal("corner term must be symmetric")
	}
}
