// Package geom provides the planar geometry substrate used throughout the
// safe-region monitoring framework: points, rectangles, circles and rings,
// the min/max distance functions δ and Δ from the paper, exit-time
// computations for linear motion, and the Ir-lp family of inscribed-rectangle
// optimizations from Section 5 of Hu, Xu & Lee (SIGMOD 2005).
package geom

import "math"

// Point is a location in the unit-square monitoring space.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance d(p, q).
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance, cheaper when only comparisons
// are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Scale returns p scaled by s, viewed as a vector.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Eq reports exact coordinate equality. It is the sanctioned exactness
// primitive: identity checks (cache invalidation, change detection) go
// through here so that intent is visible at the call site.
//
//lint:allow floatcmp Eq is the exact-equality primitive itself
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Epsilon is the default tolerance for approximate float comparison. It is
// sized for coordinates in the unit square scaled by typical space extents
// (up to ~1e4): large enough to absorb one rounding step of the Prop 5.2-5.6
// arithmetic, small enough not to mask real geometric differences.
const Epsilon = 1e-9

// Feq reports approximate equality of two floats within Epsilon.
func Feq(a, b float64) bool { return math.Abs(a-b) <= Epsilon }

// Near reports approximate coordinate equality within Epsilon per axis.
func (p Point) Near(q Point) bool { return Feq(p.X, q.X) && Feq(p.Y, q.Y) }

// Lerp returns the point a + t*(b-a).
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}
