package saferegion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"srb/internal/geom"
)

var cell = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

func TestForRangeInsideQuery(t *testing.T) {
	q := geom.R(0.2, 0.2, 0.6, 0.6)
	got := ForRange(q, geom.Pt(0.3, 0.3), cell, geom.Perimeter)
	if got != q {
		t.Fatalf("inside: safe region must be the quarantine rect, got %v", got)
	}
}

func TestForRangeInsideQueryClippedByCell(t *testing.T) {
	q := geom.R(0.8, 0.8, 1.5, 1.5)
	got := ForRange(q, geom.Pt(0.9, 0.9), cell, geom.Perimeter)
	if got != geom.R(0.8, 0.8, 1, 1) {
		t.Fatalf("clip: got %v", got)
	}
}

func TestForRangeOutsideQuery(t *testing.T) {
	q := geom.R(0.4, 0.4, 0.6, 0.6)
	got := ForRange(q, geom.Pt(0.2, 0.5), cell, geom.Perimeter)
	if got != (geom.Rect{MinX: 0, MinY: 0, MaxX: 0.4, MaxY: 1}) {
		t.Fatalf("outside: got %v, want left strip", got)
	}
}

func TestBatchNoObstacles(t *testing.T) {
	got := ForRangeBatch(nil, geom.Pt(0.5, 0.5), cell, geom.Perimeter)
	if got != cell {
		t.Fatalf("no obstacles: got %v, want cell", got)
	}
}

func TestBatchSingleObstacleMatchesSingleQuery(t *testing.T) {
	// With a single query rectangle, the batch result must be at least as good
	// as one of the four strips (it can equal the best strip).
	q := geom.R(0.4, 0.4, 0.6, 0.6)
	p := geom.Pt(0.2, 0.5)
	single := ForRange(q, p, cell, geom.Perimeter)
	batch := ForRangeBatch([]geom.Rect{q}, p, cell, geom.Perimeter)
	if !batch.Contains(p) {
		t.Fatalf("batch region %v does not contain p", batch)
	}
	if batch.Intersect(q).IsValid() && batch.Intersect(q).Area() > 1e-12 {
		t.Fatalf("batch region %v overlaps obstacle", batch)
	}
	if batch.Perimeter() < single.Perimeter()-1e-9 {
		t.Fatalf("batch %v (perim %v) worse than single strip %v (perim %v)",
			batch, batch.Perimeter(), single, single.Perimeter())
	}
}

func TestBatchTwoObstaclesFigure55(t *testing.T) {
	// Figure 5.5 style: two query rectangles NE of p; the component rectangle
	// construction must avoid both while keeping the region maximal.
	p := geom.Pt(0.3, 0.3)
	obs := []geom.Rect{
		geom.R(0.5, 0.4, 0.7, 0.55),
		geom.R(0.4, 0.6, 0.55, 0.8),
	}
	got := ForRangeBatch(obs, p, cell, geom.Perimeter)
	if !got.Contains(p) {
		t.Fatalf("region %v does not contain p", got)
	}
	for _, o := range obs {
		inter := got.Intersect(o)
		if inter.IsValid() && inter.Area() > 1e-12 {
			t.Fatalf("region %v overlaps obstacle %v", got, o)
		}
	}
	// The region must not be needlessly small: it can reach the cell's west
	// and south edges (no obstacles there).
	if got.MinX > 1e-9 || got.MinY > 1e-9 {
		t.Fatalf("region %v should extend to the SW cell corner", got)
	}
}

func TestBatchObstacleTouchingP(t *testing.T) {
	// p on the boundary of an obstacle: the region degenerates along that
	// axis but must stay valid and contain p.
	p := geom.Pt(0.5, 0.5)
	obs := []geom.Rect{geom.R(0.5, 0.4, 0.7, 0.6)} // p on its west edge
	got := ForRangeBatch(obs, p, cell, geom.Perimeter)
	if !got.Contains(p) || !got.IsValid() {
		t.Fatalf("degenerate case: got %v", got)
	}
	inter := got.Intersect(obs[0])
	if inter.IsValid() && inter.Area() > 1e-12 {
		t.Fatalf("region %v overlaps obstacle", got)
	}
}

func TestBatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := geom.Pt(0.05+0.9*r.Float64(), 0.05+0.9*r.Float64())
		n := 1 + r.Intn(12)
		var obs []geom.Rect
		for len(obs) < n {
			x, y := r.Float64(), r.Float64()
			o := geom.R(x, y, x+r.Float64()*0.3, y+r.Float64()*0.3)
			// Precondition: p is not interior to any obstacle.
			if o.Contains(p) {
				continue
			}
			obs = append(obs, o)
		}
		got := ForRangeBatch(obs, p, cell, geom.Perimeter)
		if !got.IsValid() || !got.Contains(p) {
			return false
		}
		if !cell.Expand(1e-9).ContainsRect(got) {
			return false
		}
		for _, o := range obs {
			inter := got.Intersect(o)
			if inter.IsValid() && inter.Area() > 1e-9 {
				return false
			}
		}
		// Sampled interior points must avoid every obstacle's interior.
		for i := 0; i < 16; i++ {
			s := geom.Pt(got.MinX+rng.Float64()*got.Width(), got.MinY+rng.Float64()*got.Height())
			for _, o := range obs {
				if s.X > o.MinX+1e-9 && s.X < o.MaxX-1e-9 && s.Y > o.MinY+1e-9 && s.Y < o.MaxY-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The batch algorithm's motivation (Section 5.3): with several obstacles it
// should usually produce a region at least as large as intersecting the
// per-query strips. We assert it never loses by more than the greedy bound on
// a randomized workload in aggregate.
func TestBatchBeatsIntersectionOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	batchWins, total := 0, 0
	for trial := 0; trial < 300; trial++ {
		p := geom.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64())
		var obs []geom.Rect
		for len(obs) < 4 {
			x, y := rng.Float64(), rng.Float64()
			o := geom.R(x, y, x+rng.Float64()*0.2, y+rng.Float64()*0.2)
			if o.Contains(p) {
				continue
			}
			obs = append(obs, o)
		}
		inter := cell
		for _, o := range obs {
			inter = inter.Intersect(ForRange(o, p, cell, geom.Perimeter))
		}
		batch := ForRangeBatch(obs, p, cell, geom.Perimeter)
		total++
		if batch.Perimeter() >= inter.Perimeter()-1e-9 {
			batchWins++
		}
	}
	if float64(batchWins)/float64(total) < 0.9 {
		t.Fatalf("batch computation should rarely lose to strip intersection: won %d/%d", batchWins, total)
	}
}

func TestBatchPOutsideCellIsTolerated(t *testing.T) {
	p := geom.Pt(1.2, 0.5)
	got := ForRangeBatch([]geom.Rect{geom.R(0.4, 0.4, 0.6, 0.6)}, p, cell, geom.Perimeter)
	if !got.Contains(p) {
		t.Fatalf("region %v must still contain p", got)
	}
}
