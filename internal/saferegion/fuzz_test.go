package saferegion

import (
	"math"
	"testing"

	"srb/internal/geom"
)

// FuzzBatch checks the core safety property of the batch safe-region
// computation on arbitrary inputs: the result contains p and its interior
// avoids every obstacle's interior.
func FuzzBatch(f *testing.F) {
	f.Add(0.5, 0.5, 0.2, 0.2, 0.4, 0.4, 0.6, 0.1, 0.8, 0.3)
	f.Add(0.1, 0.9, 0.0, 0.0, 1.0, 0.5, 0.5, 0.6, 0.7, 0.7)
	f.Fuzz(func(t *testing.T, px, py, a1, b1, a2, b2, c1, d1, c2, d2 float64) {
		for _, v := range []float64{px, py, a1, b1, a2, b2, c1, d1, c2, d2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < -10 || v > 10 {
				t.Skip()
			}
		}
		cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
		p := geom.Pt(px, py)
		obs := []geom.Rect{geom.R(a1, b1, a2, b2), geom.R(c1, d1, c2, d2)}
		for _, o := range obs {
			if o.Contains(p) && (p.X > o.MinX && p.X < o.MaxX && p.Y > o.MinY && p.Y < o.MaxY) {
				t.Skip() // precondition: p not interior to an obstacle
			}
		}
		got := ForRangeBatch(obs, p, cell, geom.ExitObjective(p))
		if !got.IsValid() {
			t.Fatalf("invalid region %v", got)
		}
		if !got.Contains(p) {
			t.Fatalf("region %v excludes p %v", got, p)
		}
		for _, o := range obs {
			inter := got.Intersect(o)
			if inter.IsValid() && inter.Area() > 1e-9 {
				t.Fatalf("region %v overlaps obstacle %v", got, o)
			}
		}
	})
}
