// Package saferegion computes maximal-perimeter safe regions for range
// queries (Sections 5.1 and 5.3 of the paper). The kNN constructions
// (inscribed rectangles of circles, complements and rings, Section 5.2) live
// in package geom as the Ir-lp family; this package adds the range-query
// strips and the batch algorithm that handles all range queries of a grid
// cell in a single staircase-and-greedy pass.
package saferegion

import (
	"sort"

	"srb/internal/geom"
)

// ForRange returns the safe region contributed by a single range query with
// query rectangle q for an object at p confined to cell (Section 5.1): the
// cell-clipped query rectangle itself when p is inside it, otherwise the best
// of the four cell-anchored strips.
func ForRange(q geom.Rect, p geom.Point, cell geom.Rect, obj geom.Objective) geom.Rect {
	qc := q.Intersect(cell)
	if qc.IsValid() && qc.Contains(p) {
		return qc
	}
	return geom.IrlpRectComplement(q, p, cell, obj)
}

// staircasePoint is an opposite corner t of a maximal component rectangle in
// one quadrant (Proposition 5.6), in p-relative quadrant coordinates.
type staircasePoint struct {
	tx, ty float64
}

// quadrant reflections, clockwise starting at north-east.
var quadrants = [4][2]float64{
	{1, 1},   // NE
	{1, -1},  // SE
	{-1, -1}, // SW
	{-1, 1},  // NW
}

// maxExhaustiveCombos bounds the quartic search over staircase combinations;
// beyond it the paper's greedy heuristic is used.
const maxExhaustiveCombos = 4096

// ForRangeBatch computes the safe region for an object at p with respect to
// all range-query rectangles in obstacles at once (Section 5.3): per quadrant
// it builds the staircase of non-dominated obstacle corners (the t set of
// Proposition 5.6) and combines one component rectangle per quadrant into the
// rectangular union. When the number of combinations is small the exact
// quartic search is used (the paper notes the optimum "takes quartic time");
// otherwise the paper's clockwise greedy is applied.
//
// Every obstacle must be a rectangle whose interior does not contain p
// (quarantine areas that contain p contribute their own rectangle and are
// intersected by the caller separately).
func ForRangeBatch(obstacles []geom.Rect, p geom.Point, cell geom.Rect, obj geom.Objective) geom.Rect {
	stairs, cell, ok := prepareStairs(obstacles, p, cell)
	if !ok {
		return cell
	}
	combos := len(stairs[0]) * len(stairs[1]) * len(stairs[2]) * len(stairs[3])
	if combos <= maxExhaustiveCombos {
		return exhaustiveUnion(stairs, p, cell, obj)
	}
	return greedyUnion(stairs, p, cell, obj)
}

// ForRangeBatchGreedy always applies the paper's greedy union regardless of
// staircase size. Exposed for the ablation benchmark comparing the greedy
// against the exact combination search.
func ForRangeBatchGreedy(obstacles []geom.Rect, p geom.Point, cell geom.Rect, obj geom.Objective) geom.Rect {
	stairs, cell, ok := prepareStairs(obstacles, p, cell)
	if !ok {
		return cell
	}
	return greedyUnion(stairs, p, cell, obj)
}

func prepareStairs(obstacles []geom.Rect, p geom.Point, cell geom.Rect) ([4][]staircasePoint, geom.Rect, bool) {
	var stairs [4][]staircasePoint
	if len(obstacles) == 0 {
		return stairs, cell, false
	}
	if !cell.Contains(p) {
		cell = cell.Union(geom.RectAround(p))
	}
	for qd, s := range quadrants {
		w := cell.MaxX - p.X
		if s[0] < 0 {
			w = p.X - cell.MinX
		}
		h := cell.MaxY - p.Y
		if s[1] < 0 {
			h = p.Y - cell.MinY
		}
		stairs[qd] = buildStaircase(obstacles, p, s, w, h)
	}
	return stairs, cell, true
}

// exhaustiveUnion evaluates every combination of one component rectangle per
// quadrant. The union extents are right = min over the two east choices,
// top = min over the two north choices, and so on; any valid safe region is
// dominated by some combination, so this search is exact for monotone
// objectives such as the perimeter.
func exhaustiveUnion(stairs [4][]staircasePoint, p geom.Point, cell geom.Rect, obj geom.Objective) geom.Rect {
	best := geom.RectAround(p)
	bestScore := obj(best)
	for _, ne := range stairs[0] {
		for _, se := range stairs[1] {
			right := minf(ne.tx, se.tx)
			for _, sw := range stairs[2] {
				bottom := minf(se.ty, sw.ty)
				for _, nw := range stairs[3] {
					cand := geom.Rect{
						MinX: p.X - minf(sw.tx, nw.tx),
						MinY: p.Y - bottom,
						MaxX: p.X + right,
						MaxY: p.Y + minf(ne.ty, nw.ty),
					}
					if s := obj(cand); s > bestScore {
						best, bestScore = cand, s
					}
				}
			}
		}
	}
	return best.Intersect(cell)
}

// greedyUnion is the paper's heuristic: start from the quadrant holding the
// longest-perimeter component rectangle, proceed clockwise, and in each
// quadrant keep the component rectangle leaving the best remaining union.
func greedyUnion(stairs [4][]staircasePoint, p geom.Point, cell geom.Rect, obj geom.Objective) geom.Rect {
	start := 0
	best := -1.0
	for qd := range stairs {
		for _, t := range stairs[qd] {
			if per := 2 * (t.tx + t.ty); per > best {
				best, start = per, qd
			}
		}
	}

	right, top := cell.MaxX-p.X, cell.MaxY-p.Y
	left, bottom := p.X-cell.MinX, p.Y-cell.MinY

	apply := func(qd int, t staircasePoint, r, tp, l, b float64) (float64, float64, float64, float64) {
		if quadrants[qd][0] > 0 {
			r = minf(r, t.tx)
		} else {
			l = minf(l, t.tx)
		}
		if quadrants[qd][1] > 0 {
			tp = minf(tp, t.ty)
		} else {
			b = minf(b, t.ty)
		}
		return r, tp, l, b
	}
	for step := 0; step < 4; step++ {
		qd := (start + step) % 4
		var bestT staircasePoint
		bestScore := -1.0
		for _, t := range stairs[qd] {
			r, tp, l, b := apply(qd, t, right, top, left, bottom)
			cand := geom.Rect{MinX: p.X - l, MinY: p.Y - b, MaxX: p.X + r, MaxY: p.Y + tp}
			if s := obj(cand); s > bestScore {
				bestScore, bestT = s, t
			}
		}
		right, top, left, bottom = apply(qd, bestT, right, top, left, bottom)
	}
	out := geom.Rect{MinX: p.X - left, MinY: p.Y - bottom, MaxX: p.X + right, MaxY: p.Y + top}
	return out.Intersect(cell)
}

// buildStaircase returns the maximal component-rectangle corners for one
// quadrant. Coordinates are p-relative, reflected so the quadrant is the
// first one; cw and ch bound the quadrant within the cell.
func buildStaircase(obstacles []geom.Rect, p geom.Point, s [2]float64, cw, ch float64) []staircasePoint {
	if cw < 0 {
		cw = 0
	}
	if ch < 0 {
		ch = 0
	}
	type corner struct{ ax, ay float64 }
	type span struct{ u1, u2, v1, v2 float64 }
	spans := make([]span, 0, len(obstacles))
	for _, o := range obstacles {
		u1 := s[0] * (o.MinX - p.X)
		u2 := s[0] * (o.MaxX - p.X)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		v1 := s[1] * (o.MinY - p.Y)
		v2 := s[1] * (o.MaxY - p.Y)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		// Ignore obstacles that do not overlap the open quadrant region.
		if u2 <= 0 || v2 <= 0 {
			continue
		}
		spans = append(spans, span{u1, u2, v1, v2})
	}
	// Obstacles that straddle a quadrant axis strictly cannot be escaped on
	// that axis (every rectangle around p overlaps their coordinate range
	// there), so they impose a hard cap on the other axis instead of a
	// staircase corner.
	for _, sp := range spans {
		strX := sp.u1 < 0
		strY := sp.v1 < 0
		switch {
		case strX && strY:
			// p is strictly interior to the obstacle; callers guarantee this
			// does not happen, but degrade gracefully to a degenerate region.
			cw, ch = 0, 0
		case strX:
			ch = minf(ch, sp.v1)
		case strY:
			cw = minf(cw, sp.u1)
		}
	}
	var cs []corner
	for _, sp := range spans {
		if sp.u1 < 0 || sp.v1 < 0 {
			continue // handled as a cap above
		}
		if sp.u1 >= cw || sp.v1 >= ch {
			continue // already satisfied by the caps / cell bounds
		}
		cs = append(cs, corner{sp.u1, sp.v1})
	}
	if len(cs) == 0 {
		return []staircasePoint{{cw, ch}}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ax < cs[j].ax })

	var out []staircasePoint
	minAy := ch
	emit := func(tx, ty float64) {
		// Keep only Pareto-maximal points: ty is non-increasing in emission
		// order, so it suffices to drop candidates not exceeding the previous
		// tx (same tx, smaller ty) and merge equal-ty runs onto the larger tx.
		if len(out) > 0 {
			last := &out[len(out)-1]
			if tx <= last.tx {
				return
			}
			if ty >= last.ty {
				last.tx = tx
				last.ty = ty
				return
			}
		}
		out = append(out, staircasePoint{tx, ty})
	}
	i := 0
	for i < len(cs) {
		ax := cs[i].ax
		emit(ax, minAy)
		//lint:allow floatcmp staircase grouping: corners at the same x are exact copies of one coordinate
		for i < len(cs) && cs[i].ax == ax {
			minAy = minf(minAy, cs[i].ay)
			i++
		}
	}
	emit(cw, minAy)
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
