// Package chaos is a deterministic fault-injection layer for the wire
// protocol: it wraps a net.Conn and injects frame-level faults — drop,
// duplicate, delay, and sever — independently per direction, driven by a
// seeded random stream so every failure scenario is reproducible.
//
// The wire protocol (internal/wire) frames messages as newline-terminated
// JSON, so the wrapper operates on whole frames: a dropped frame vanishes
// without corrupting the framing of its neighbors, a duplicated frame is
// delivered twice back to back, and a delayed frame stalls the link
// (head-of-line, as on a real TCP connection — frames are never reordered).
// Sever closes the underlying connection mid-stream, which is how the
// reconnect and session-lease machinery of internal/remote gets exercised.
//
// An Injector is the per-listener factory: each wrapped connection draws its
// own pair of random streams derived from the configured seed and a
// connection counter, so a multi-client test is deterministic as long as
// connections are established in a fixed order. Faults can be switched off at
// runtime (SetEnabled) to let a chaos test drive the system to quiescence
// over a clean link before checking end-state invariants.
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names an injected fault class.
type Kind string

// The injectable fault kinds.
const (
	KindDrop  Kind = "drop"
	KindDup   Kind = "dup"
	KindDelay Kind = "delay"
	KindSever Kind = "sever"
)

// Dir names a fault direction relative to the wrapped endpoint: "in" faults
// frames read from the peer, "out" faults frames written to it.
type Dir string

// The fault directions.
const (
	DirIn  Dir = "in"
	DirOut Dir = "out"
)

// Config sets the per-frame fault probabilities of one direction of a
// wrapped connection. The zero value injects nothing.
type Config struct {
	// Seed selects the deterministic random stream. Connections wrapped by
	// the same Injector derive distinct per-connection streams from it.
	Seed int64
	// Drop is the probability that a frame is silently discarded.
	Drop float64
	// Dup is the probability that a frame is delivered twice.
	Dup float64
	// DelayRate is the probability that a frame (and everything behind it)
	// is delayed by Delay before delivery.
	DelayRate float64
	// Delay is the stall applied to delayed frames.
	Delay time.Duration
	// Sever is the probability, evaluated after each frame, that the whole
	// connection is torn down.
	Sever float64
}

// Active reports whether the configuration injects any fault at all.
func (c Config) Active() bool {
	return c.Drop > 0 || c.Dup > 0 || (c.DelayRate > 0 && c.Delay > 0) || c.Sever > 0
}

// ParseSpec parses a comma-separated fault specification, e.g.
//
//	drop=0.01,dup=0.005,delay=5ms,delayrate=0.1,sever=0.001,seed=7
//
// Unknown keys are rejected. The resulting Config applies to both directions
// when handed to NewInjector via NewInjectorSpec-style symmetric use.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return c, fmt.Errorf("chaos: malformed field %q (want key=value)", kv)
		}
		key, val := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		var err error
		switch key {
		case "drop":
			c.Drop, err = strconv.ParseFloat(val, 64)
		case "dup":
			c.Dup, err = strconv.ParseFloat(val, 64)
		case "delayrate":
			c.DelayRate, err = strconv.ParseFloat(val, 64)
		case "delay":
			c.Delay, err = time.ParseDuration(val)
		case "sever":
			c.Sever, err = strconv.ParseFloat(val, 64)
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return c, fmt.Errorf("chaos: unknown field %q", key)
		}
		if err != nil {
			return c, fmt.Errorf("chaos: field %q: %v", key, err)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"dup", c.Dup}, {"delayrate", c.DelayRate}, {"sever", c.Sever}} {
		if p.v < 0 || p.v > 1 {
			return c, fmt.Errorf("chaos: %s=%g out of [0,1]", p.name, p.v)
		}
	}
	return c, nil
}

// Injector wraps connections with fault-injecting lanes. It is safe for
// concurrent use by an accept loop.
type Injector struct {
	in, out Config
	conns   atomic.Int64
	enabled atomic.Bool
	onFault atomic.Value // func(Dir, Kind)
}

// NewInjector creates an enabled injector with separate configurations for
// the inbound (frames read) and outbound (frames written) directions.
func NewInjector(in, out Config) *Injector {
	j := &Injector{in: in, out: out}
	j.enabled.Store(true)
	return j
}

// SetEnabled switches fault injection on or off at runtime. Wrapped
// connections keep flowing either way; with injection off they behave as a
// clean link, which lets tests drive the system to quiescence.
func (j *Injector) SetEnabled(on bool) { j.enabled.Store(on) }

// OnFault installs a callback invoked on every injected fault (for metrics).
// The callback must be safe for concurrent use.
func (j *Injector) OnFault(fn func(Dir, Kind)) {
	if fn != nil {
		j.onFault.Store(fn)
	}
}

func (j *Injector) note(d Dir, k Kind) {
	if fn, ok := j.onFault.Load().(func(Dir, Kind)); ok {
		fn(d, k)
	}
}

// Wrap returns conn with this injector's faults applied. Each call derives a
// fresh pair of per-direction random streams, so connection k of a run sees
// the same fault schedule in every execution with the same seeds.
func (j *Injector) Wrap(conn net.Conn) net.Conn {
	n := j.conns.Add(1)
	c := &faultConn{Conn: conn, inj: j}
	// Distinct odd multipliers keep the two directions' streams uncorrelated
	// even when the same seed configures both.
	c.in = newLane(j.in, j.in.Seed+n*2654435761, DirIn, c)
	c.out = newLane(j.out, j.out.Seed+n*40503*2654435761+1, DirOut, c)
	return c
}

// faultConn is one wrapped connection. The wire codec contract — one reader
// goroutine, one writer goroutine — carries over: Read and Write may run
// concurrently with each other but each side has a single user.
type faultConn struct {
	net.Conn
	inj       *Injector
	in, out   *lane
	severed   atomic.Bool
	closeOnce sync.Once
}

// sever tears the connection down as an injected fault.
func (c *faultConn) sever(d Dir) {
	c.severed.Store(true)
	c.inj.note(d, KindSever)
	c.closeOnce.Do(func() { _ = c.Conn.Close() })
}

// Close closes the underlying connection once.
func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.Conn.Close() })
	return err
}

// Write faults complete frames on their way out. Partial frames (no final
// newline yet) are buffered until completed.
func (c *faultConn) Write(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, fmt.Errorf("chaos: connection severed")
	}
	if !c.inj.enabled.Load() && len(c.out.pending) == 0 {
		return c.Conn.Write(p)
	}
	// Report len(p) on success: faults are transparent to the caller.
	if err := c.out.write(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read delivers faulted inbound frames.
func (c *faultConn) Read(p []byte) (int, error) {
	return c.in.read(p)
}

// lane applies one direction's fault schedule. A lane is used by a single
// goroutine (the codec's reader or writer side).
type lane struct {
	cfg  Config
	rng  *rand.Rand
	dir  Dir
	conn *faultConn

	pending []byte // partial frame awaiting its newline (write lane)
	queue   []byte // surviving bytes awaiting delivery (read lane)
	raw     []byte // read scratch buffer
	rawPart []byte // partial inbound frame
}

func newLane(cfg Config, seed int64, dir Dir, conn *faultConn) *lane {
	return &lane{cfg: cfg, rng: rand.New(rand.NewSource(seed)), dir: dir, conn: conn, raw: make([]byte, 4096)}
}

// judge rolls the fault schedule for one frame. It returns the number of
// copies to deliver (0 = drop, 2 = duplicate) and whether to sever after.
func (l *lane) judge() (copies int, sever bool) {
	copies = 1
	if !l.conn.inj.enabled.Load() || !l.cfg.Active() {
		return copies, false
	}
	if l.cfg.Drop > 0 && l.rng.Float64() < l.cfg.Drop {
		l.conn.inj.note(l.dir, KindDrop)
		copies = 0
	} else if l.cfg.Dup > 0 && l.rng.Float64() < l.cfg.Dup {
		l.conn.inj.note(l.dir, KindDup)
		copies = 2
	}
	if copies > 0 && l.cfg.DelayRate > 0 && l.cfg.Delay > 0 && l.rng.Float64() < l.cfg.DelayRate {
		l.conn.inj.note(l.dir, KindDelay)
		time.Sleep(l.cfg.Delay)
	}
	sever = l.cfg.Sever > 0 && l.rng.Float64() < l.cfg.Sever
	return copies, sever
}

// write consumes outbound bytes, faulting each completed frame.
func (l *lane) write(p []byte) error {
	l.pending = append(l.pending, p...)
	for {
		nl := bytes.IndexByte(l.pending, '\n')
		if nl < 0 {
			return nil
		}
		frame := l.pending[:nl+1]
		copies, sever := l.judge()
		for i := 0; i < copies; i++ {
			if _, err := l.conn.Conn.Write(frame); err != nil {
				return err
			}
		}
		l.pending = append(l.pending[:0], l.pending[nl+1:]...)
		if sever {
			l.conn.sever(l.dir)
			return fmt.Errorf("chaos: connection severed")
		}
	}
}

// read fills p from the surviving-frame queue, pulling and faulting more
// inbound frames as needed.
func (l *lane) read(p []byte) (int, error) {
	for len(l.queue) == 0 {
		n, err := l.conn.Conn.Read(l.raw)
		if n > 0 {
			l.ingest(l.raw[:n])
		}
		if err != nil {
			// Deliver surviving bytes before surfacing the error.
			if len(l.queue) > 0 {
				break
			}
			return 0, err
		}
	}
	n := copy(p, l.queue)
	l.queue = append(l.queue[:0], l.queue[n:]...)
	return n, nil
}

// ingest splits raw inbound bytes into frames and applies the schedule.
func (l *lane) ingest(b []byte) {
	l.rawPart = append(l.rawPart, b...)
	for {
		nl := bytes.IndexByte(l.rawPart, '\n')
		if nl < 0 {
			return
		}
		frame := l.rawPart[:nl+1]
		copies, sever := l.judge()
		for i := 0; i < copies; i++ {
			l.queue = append(l.queue, frame...)
		}
		l.rawPart = append(l.rawPart[:0], l.rawPart[nl+1:]...)
		if sever {
			l.conn.sever(l.dir)
			return
		}
	}
}
