package chaos

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"srb/internal/wire"
)

// pipePair returns a connected pair with faults applied to the a-side.
func pipePair(t *testing.T, j *Injector) (a net.Conn, b net.Conn) {
	t.Helper()
	pa, pb := net.Pipe()
	t.Cleanup(func() { _ = pa.Close(); _ = pb.Close() })
	return j.Wrap(pa), pb
}

// collect reads frames from c until it errors, returning the payloads seen.
func collect(c net.Conn) []string {
	codec := wire.NewCodec(c)
	var got []string
	for {
		m, err := codec.Recv()
		if err != nil {
			return got
		}
		got = append(got, m.Err)
	}
}

func sendN(t *testing.T, c net.Conn, n int) {
	t.Helper()
	codec := wire.NewCodec(c)
	for i := 0; i < n; i++ {
		if err := codec.Send(wire.Message{Type: wire.TError, Err: fmt.Sprintf("f%04d", i)}); err != nil {
			return
		}
	}
}

func TestCleanPassThrough(t *testing.T) {
	j := NewInjector(Config{}, Config{})
	a, b := pipePair(t, j)
	done := make(chan []string, 1)
	go func() { done <- collect(b) }()
	sendN(t, a, 50)
	_ = a.Close()
	got := <-done
	if len(got) != 50 {
		t.Fatalf("clean link delivered %d/50 frames", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("f%04d", i) {
			t.Fatalf("frame %d = %q, out of order", i, s)
		}
	}
}

func TestDropAndDupDeterministic(t *testing.T) {
	run := func() []string {
		j := NewInjector(Config{}, Config{Seed: 42, Drop: 0.3, Dup: 0.2})
		a, b := pipePair(t, j)
		done := make(chan []string, 1)
		go func() { done <- collect(b) }()
		sendN(t, a, 200)
		_ = a.Close()
		return <-done
	}
	first := run()
	if len(first) == 200 || len(first) == 0 {
		t.Fatalf("drop/dup schedule delivered %d/200 frames, faults not applied", len(first))
	}
	// Drops must exist, duplicates must exist.
	seen := map[string]int{}
	for _, s := range first {
		seen[s]++
	}
	dups := 0
	for _, n := range seen {
		if n == 2 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("no duplicated frame in 200 with dup=0.2")
	}
	if len(seen) == 200 {
		t.Fatal("no dropped frame in 200 with drop=0.3")
	}
	second := run()
	if strings.Join(first, ",") != strings.Join(second, ",") {
		t.Fatal("same seed produced different surviving-frame sequences")
	}
}

func TestOrderPreserved(t *testing.T) {
	j := NewInjector(Config{}, Config{Seed: 7, Drop: 0.2, Dup: 0.2, DelayRate: 0.05, Delay: time.Millisecond})
	a, b := pipePair(t, j)
	done := make(chan []string, 1)
	go func() { done <- collect(b) }()
	sendN(t, a, 300)
	_ = a.Close()
	got := <-done
	last := -1
	for _, s := range got {
		var i int
		if _, err := fmt.Sscanf(s, "f%d", &i); err != nil {
			t.Fatalf("bad frame %q", s)
		}
		if i < last {
			t.Fatalf("frame %d delivered after %d: reordering", i, last)
		}
		last = i
	}
}

func TestSeverClosesBothDirections(t *testing.T) {
	j := NewInjector(Config{}, Config{Seed: 3, Sever: 0.05})
	a, b := pipePair(t, j)
	var faults []string
	var mu sync.Mutex
	j.OnFault(func(d Dir, k Kind) {
		mu.Lock()
		faults = append(faults, string(d)+"/"+string(k))
		mu.Unlock()
	})
	done := make(chan []string, 1)
	go func() { done <- collect(b) }()
	codec := wire.NewCodec(a)
	var sendErr error
	for i := 0; i < 1000 && sendErr == nil; i++ {
		sendErr = codec.Send(wire.Message{Type: wire.TError, Err: "x"})
	}
	if sendErr == nil {
		t.Fatal("1000 frames with sever=0.05 never severed")
	}
	got := <-done // peer's read loop must terminate
	if len(got) == 0 {
		t.Fatal("no frame delivered before sever")
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, f := range faults {
		if f == "out/sever" {
			found = true
		}
	}
	if !found {
		t.Fatalf("OnFault did not record the sever; got %v", faults)
	}
}

func TestInboundFaults(t *testing.T) {
	j := NewInjector(Config{Seed: 9, Drop: 0.5}, Config{})
	a, b := pipePair(t, j) // a reads through the faulted lane
	done := make(chan []string, 1)
	go func() { done <- collect(a) }()
	sendN(t, b, 200)
	_ = b.Close()
	got := <-done
	if len(got) == 0 || len(got) >= 200 {
		t.Fatalf("inbound drop=0.5 delivered %d/200", len(got))
	}
}

func TestSetEnabledQuiesces(t *testing.T) {
	j := NewInjector(Config{}, Config{Seed: 5, Drop: 1})
	j.SetEnabled(false)
	a, b := pipePair(t, j)
	done := make(chan []string, 1)
	go func() { done <- collect(b) }()
	sendN(t, a, 20)
	_ = a.Close()
	if got := <-done; len(got) != 20 {
		t.Fatalf("disabled injector delivered %d/20", len(got))
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("drop=0.01,dup=0.005,delay=5ms,delayrate=0.1,sever=0.001,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.Drop != 0.01 || c.Dup != 0.005 || c.Delay != 5*time.Millisecond ||
		c.DelayRate != 0.1 || c.Sever != 0.001 || c.Seed != 7 {
		t.Fatalf("parsed %+v", c)
	}
	if !c.Active() {
		t.Fatal("parsed config should be active")
	}
	if c, err := ParseSpec(""); err != nil || c.Active() {
		t.Fatalf("empty spec: %v %+v", err, c)
	}
	for _, bad := range []string{"drop=2", "nope=1", "drop", "sever=-0.1", "delay=xyz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
