package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a reproduced figure or table: one row per x-value, one column per
// series, mirroring the series the paper plots.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Rows    []TableRow
}

// TableRow is one x-value with the measured series values.
type TableRow struct {
	X      float64
	Values []float64
}

// Format renders the table as aligned text for terminals and EXPERIMENTS.md.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%14s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%14.4g", r.X)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %16.6g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row, ready
// for external plotting tools.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%g", r.X)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

// Experiment regenerates one of the paper's figures at the configured scale.
type Experiment struct {
	ID    string
	Title string
	Run   func(base Config) Table
}

// Experiments returns the full per-figure index of Section 7, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table7.1", "Default simulation parameters", TableDefaults},
		{"fig7.1a", "Monitoring accuracy vs communication delay τ", Fig71a},
		{"fig7.1b", "Communication cost vs communication delay τ", Fig71b},
		{"fig7.2a", "Server CPU time vs number of queries W", Fig72a},
		{"fig7.2b", "Communication cost vs number of queries W", Fig72b},
		{"fig7.3a", "Server CPU time vs number of objects N", Fig73a},
		{"fig7.3b", "Communication cost vs number of objects N", Fig73b},
		{"fig7.4a", "Communication cost vs average speed v̄", Fig74a},
		{"fig7.4b", "Communication cost vs movement period t̄v", Fig74b},
		{"fig7.5", "Cost and CPU time vs grid partitioning M", Fig75},
		{"fig7.6a", "Reachability-circle enhancement vs W", Fig76a},
		{"fig7.6b", "Weighted-perimeter enhancement vs t̄v", Fig76b},
		{"figL.1", "Accuracy and cost vs wireless loss rate (lossy-link extension)", FigL1},
	}
}

// ExperimentByID finds an experiment by its figure/table identifier.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TableDefaults reports the effective parameter set (Table 7.1 analogue).
func TableDefaults(base Config) Table {
	t := Table{
		ID:      "table7.1",
		Title:   "Simulation parameters in effect",
		XLabel:  "—",
		Columns: []string{"value"},
	}
	add := func(v float64) { t.Rows = append(t.Rows, TableRow{X: float64(len(t.Rows)), Values: []float64{v}}) }
	add(float64(base.N))
	add(float64(base.W))
	add(base.MeanSpeed)
	add(base.MeanPeriod)
	add(base.QLen)
	add(float64(base.KMax))
	add(float64(base.GridM))
	add(base.Duration)
	return t
}

// Fig71a sweeps the one-way delay τ and reports monitoring accuracy for SRB,
// PRD(0.1) and PRD(1). The paper's shape: SRB starts at 100 % and degrades
// slowly; PRD(0.1) starts near 90 % and degrades quickly; PRD(1) is poor and
// flat.
func Fig71a(base Config) Table {
	t := Table{ID: "fig7.1a", Title: "Monitoring accuracy vs τ", XLabel: "tau",
		Columns: []string{"SRB", "PRD(0.1)", "PRD(1)"}}
	for _, tau := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		cfg := base
		cfg.Tau = tau
		t.Rows = append(t.Rows, TableRow{X: tau, Values: []float64{
			RunSRB(cfg).Accuracy,
			RunPRD(cfg, 0.1).Accuracy,
			RunPRD(cfg, 1).Accuracy,
		}})
	}
	return t
}

// Fig71b sweeps τ and reports the per-client communication cost; all schemes
// are essentially flat in τ, with OPT < SRB < PRD(1) < PRD(0.1)=10.
func Fig71b(base Config) Table {
	t := Table{ID: "fig7.1b", Title: "Communication cost vs τ", XLabel: "tau",
		Columns: []string{"OPT", "SRB", "PRD(1)", "PRD(0.1)"}}
	for _, tau := range []float64{0, 0.25, 0.5, 1} {
		cfg := base
		cfg.Tau = tau
		t.Rows = append(t.Rows, TableRow{X: tau, Values: []float64{
			RunOPT(cfg).CommPerClientTime,
			RunSRB(cfg).CommPerClientTime,
			RunPRD(cfg, 1).CommPerClientTime,
			RunPRD(cfg, 0.1).CommPerClientTime,
		}})
	}
	return t
}

// querySweep returns a geometric sweep of query counts up to base.W.
func querySweep(base Config) []int {
	ws := []int{}
	start := base.W / 16
	if start < 2 {
		start = 2
	}
	for w := start; w <= base.W; w *= 2 {
		ws = append(ws, w)
	}
	if len(ws) == 0 || ws[len(ws)-1] != base.W {
		ws = append(ws, base.W)
	}
	sort.Ints(ws)
	return ws
}

// Fig72a sweeps W and reports server CPU seconds per time unit: sublinear for
// SRB, linear for the PRD family.
func Fig72a(base Config) Table {
	t := Table{ID: "fig7.2a", Title: "CPU time per time unit vs W", XLabel: "W",
		Columns: []string{"SRB", "PRD(1)", "PRD(0.1)", "PRDGrid(0.1)"}}
	for _, w := range querySweep(base) {
		cfg := base
		cfg.W = w
		t.Rows = append(t.Rows, TableRow{X: float64(w), Values: []float64{
			RunSRB(cfg).CPUPerTimeUnit,
			RunPRD(cfg, 1).CPUPerTimeUnit,
			RunPRD(cfg, 0.1).CPUPerTimeUnit,
			RunPRDGrid(cfg, 0.1).CPUPerTimeUnit,
		}})
	}
	return t
}

// Fig72b sweeps W and reports communication cost: SRB grows sublinearly and
// stays close to OPT.
func Fig72b(base Config) Table {
	t := Table{ID: "fig7.2b", Title: "Communication cost vs W", XLabel: "W",
		Columns: []string{"OPT", "SRB"}}
	for _, w := range querySweep(base) {
		cfg := base
		cfg.W = w
		t.Rows = append(t.Rows, TableRow{X: float64(w), Values: []float64{
			RunOPT(cfg).CommPerClientTime,
			RunSRB(cfg).CommPerClientTime,
		}})
	}
	return t
}

func objectSweep(base Config) []int {
	ns := []int{}
	start := base.N / 16
	if start < 50 {
		start = 50
	}
	for n := start; n <= base.N; n *= 2 {
		ns = append(ns, n)
	}
	if len(ns) == 0 || ns[len(ns)-1] != base.N {
		ns = append(ns, base.N)
	}
	sort.Ints(ns)
	return ns
}

// Fig73a sweeps N and reports CPU time: sublinear for SRB, (hyper)linear for
// PRD.
func Fig73a(base Config) Table {
	t := Table{ID: "fig7.3a", Title: "CPU time per time unit vs N", XLabel: "N",
		Columns: []string{"SRB", "PRD(1)", "PRD(0.1)", "PRDGrid(0.1)"}}
	for _, n := range objectSweep(base) {
		cfg := base
		cfg.N = n
		t.Rows = append(t.Rows, TableRow{X: float64(n), Values: []float64{
			RunSRB(cfg).CPUPerTimeUnit,
			RunPRD(cfg, 1).CPUPerTimeUnit,
			RunPRD(cfg, 0.1).CPUPerTimeUnit,
			RunPRDGrid(cfg, 0.1).CPUPerTimeUnit,
		}})
	}
	return t
}

// Fig73b sweeps N and reports communication cost for OPT and SRB.
func Fig73b(base Config) Table {
	t := Table{ID: "fig7.3b", Title: "Communication cost vs N", XLabel: "N",
		Columns: []string{"OPT", "SRB"}}
	for _, n := range objectSweep(base) {
		cfg := base
		cfg.N = n
		t.Rows = append(t.Rows, TableRow{X: float64(n), Values: []float64{
			RunOPT(cfg).CommPerClientTime,
			RunSRB(cfg).CommPerClientTime,
		}})
	}
	return t
}

// Fig74a sweeps the mean speed v̄: the per-time cost grows linearly while the
// per-distance cost stays flat.
func Fig74a(base Config) Table {
	t := Table{ID: "fig7.4a", Title: "Communication cost vs v̄", XLabel: "v",
		Columns: []string{"SRB/time", "SRB/distance"}}
	for _, v := range []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1} {
		cfg := base
		cfg.MeanSpeed = v
		r := RunSRB(cfg)
		t.Rows = append(t.Rows, TableRow{X: v, Values: []float64{
			r.CommPerClientTime, r.CommPerDistance,
		}})
	}
	return t
}

// Fig74b sweeps the constant movement period t̄v: SRB is insensitive to it.
func Fig74b(base Config) Table {
	t := Table{ID: "fig7.4b", Title: "Communication cost vs t̄v", XLabel: "tv",
		Columns: []string{"SRB/time", "SRB/distance"}}
	for _, tv := range []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1} {
		cfg := base
		cfg.MeanPeriod = tv
		r := RunSRB(cfg)
		t.Rows = append(t.Rows, TableRow{X: tv, Values: []float64{
			r.CommPerClientTime, r.CommPerDistance,
		}})
	}
	return t
}

// Fig75 sweeps the grid resolution M: communication cost grows with M (cells
// cap safe regions) while CPU time falls (fewer relevant queries per cell).
func Fig75(base Config) Table {
	t := Table{ID: "fig7.5", Title: "Cost and CPU vs grid partitioning M", XLabel: "M",
		Columns: []string{"SRB comm", "SRB cpu"}}
	for _, m := range []int{5, 10, 20, 50, 100} {
		cfg := base
		cfg.GridM = m
		r := RunSRB(cfg)
		t.Rows = append(t.Rows, TableRow{X: float64(m), Values: []float64{
			r.CommPerClientTime, r.CPUPerTimeUnit,
		}})
	}
	return t
}

// Fig76a compares plain SRB against SRB with the reachability circle
// (Section 6.1) across W, reporting both costs and the improvement ratio.
func Fig76a(base Config) Table {
	t := Table{ID: "fig7.6a", Title: "Reachability-circle enhancement vs W", XLabel: "W",
		Columns: []string{"SRB", "SRB+MaxSpeed", "improvement%"}}
	for _, w := range querySweep(base) {
		cfg := base
		cfg.W = w
		plain := RunSRB(cfg).CommPerClientTime
		cfg.MaxSpeed = 2 * cfg.MeanSpeed
		enh := RunSRB(cfg).CommPerClientTime
		imp := 0.0
		if plain > 0 {
			imp = 100 * (plain - enh) / plain
		}
		t.Rows = append(t.Rows, TableRow{X: float64(w), Values: []float64{plain, enh, imp}})
	}
	return t
}

// FigL1 goes beyond the paper (which assumes a reliable link): it sweeps the
// wireless loss rate and reports SRB's monitoring accuracy and per-client
// communication cost. Accuracy degrades gracefully — a client that misses a
// shrunken safe-region grant keeps monitoring with its stale one — while the
// cost rises with the retransmissions that heal lost updates.
func FigL1(base Config) Table {
	t := Table{ID: "figL.1", Title: "SRB accuracy and cost vs wireless loss rate", XLabel: "loss",
		Columns: []string{"SRB acc", "SRB comm", "lost up", "lost down", "resends"}}
	for _, p := range []float64{0, 0.01, 0.05, 0.1, 0.2, 0.4} {
		cfg := base
		cfg.LossRate = p
		r := RunSRB(cfg)
		t.Rows = append(t.Rows, TableRow{X: p, Values: []float64{
			r.Accuracy, r.CommPerClientTime,
			float64(r.LostUpdates), float64(r.LostRegions), float64(r.Resends),
		}})
	}
	return t
}

// Fig76b compares plain SRB against SRB with the weighted perimeter (D=0.5,
// Section 6.2) across the movement period t̄v: steadier movement (larger t̄v)
// benefits more.
func Fig76b(base Config) Table {
	t := Table{ID: "fig7.6b", Title: "Weighted-perimeter enhancement vs t̄v", XLabel: "tv",
		Columns: []string{"SRB", "SRB+Steady", "improvement%"}}
	for _, tv := range []float64{0.001, 0.01, 0.1, 0.5, 1} {
		cfg := base
		cfg.MeanPeriod = tv
		plain := RunSRB(cfg).CommPerClientTime
		cfg.Steadiness = 0.5
		enh := RunSRB(cfg).CommPerClientTime
		imp := 0.0
		if plain > 0 {
			imp = 100 * (plain - enh) / plain
		}
		t.Rows = append(t.Rows, TableRow{X: tv, Values: []float64{plain, enh, imp}})
	}
	return t
}
