package sim

import (
	"fmt"
	"time"

	"srb/internal/exact"
	"srb/internal/geom"
	"srb/internal/query"
	"srb/internal/rtree"
)

// RunPRDGrid simulates periodic monitoring with a grid-based in-memory
// reevaluation structure instead of an R*-tree rebuild — the flavor of the
// paper's related work [14, 28] (Kalashnikov et al., Yu et al.). Its accuracy
// profile is identical to RunPRD at the same period; only the server CPU
// differs (grid rebuilds are cheaper than R*-tree rebuilds, which is exactly
// why those papers proposed them).
func RunPRDGrid(cfg Config, tPrd float64) Result {
	curs := newCursors(cfg)
	specs := genQueries(cfg)
	tr := newTruth(cfg, curs)

	res := Result{Scheme: fmt.Sprintf("PRD-Grid(%g)", tPrd)}
	var cpu time.Duration
	monitored := make(map[int][]uint64, len(specs))

	evaluate := func(t float64) {
		start := time.Now()
		m := 1
		for m*m < cfg.N/4 {
			m++
		}
		if m > 256 {
			m = 256
		}
		ix := exact.New(m, cfg.Space)
		for i := 0; i < cfg.N; i++ {
			ix.Set(uint64(i), curs[i].At(t))
		}
		for i, qs := range specs {
			if qs.Kind == query.KindRange {
				monitored[i] = ix.Range(qs.Rect)
			} else {
				nbs := ix.KNN(qs.Point, qs.K, nil)
				ids := make([]uint64, len(nbs))
				for j, nb := range nbs {
					ids[j] = nb.ID
				}
				monitored[i] = ids
			}
		}
		cpu += time.Since(start)
	}

	evaluate(0)
	updates := int64(cfg.N)
	nextSync := tPrd
	var okSamples, totalSamples int64

	for i := 0; ; i++ {
		ts := (float64(i) + 0.5) * cfg.SampleEvery
		if ts > cfg.Duration {
			break
		}
		for nextSync+cfg.Tau <= ts+1e-12 && nextSync <= cfg.Duration {
			evaluate(nextSync)
			updates += int64(cfg.N)
			nextSync += tPrd
		}
		tr.advance(ts)
		for i, qs := range specs {
			if sameResult(qs, monitored[i], tr.results(qs)) {
				okSamples++
			}
			totalSamples++
		}
		trim := ts
		if nextSync < trim {
			trim = nextSync
		}
		for _, c := range curs {
			c.Trim(trim)
		}
	}
	for nextSync <= cfg.Duration {
		evaluate(nextSync)
		updates += int64(cfg.N)
		nextSync += tPrd
	}

	res.Updates = updates
	res.CPUTime = cpu
	finalize(&res, cfg, okSamples, totalSamples, curs)
	return res
}

// RunPRD simulates the traditional periodic monitoring scheme: every tPrd
// time units all N clients report their positions simultaneously and the
// server reevaluates every registered query. Following the paper's setup,
// the server maintains an R*-tree over the reported positions (rebuilt
// incrementally through updates) and evaluates all queries on it, which makes
// its CPU cost linear in both N and W. Monitored results are stale between
// synchronization points, and a one-way delay τ shifts their validity.
func RunPRD(cfg Config, tPrd float64) Result {
	curs := newCursors(cfg)
	specs := genQueries(cfg)
	tr := newTruth(cfg, curs)

	res := Result{Scheme: fmt.Sprintf("PRD(%g)", tPrd)}
	var cpu time.Duration

	monitored := make(map[int][]uint64, len(specs))

	evaluate := func(t float64) {
		start := time.Now()
		// The paper's PRD builds a new R*-tree at every synchronization
		// instant ("they need to build a new R*-tree for query reevaluation
		// at each location updating instance"), which is what makes its CPU
		// cost linear in N with a large constant.
		tree := rtree.New()
		for i := 0; i < cfg.N; i++ {
			tree.Insert(uint64(i), geom.RectAround(curs[i].At(t)))
		}
		for i, qs := range specs {
			if qs.Kind == query.KindRange {
				var ids []uint64
				tree.Search(qs.Rect, func(it rtree.Item) bool {
					ids = append(ids, it.ID)
					return true
				})
				monitored[i] = ids
			} else {
				items := tree.KNearest(qs.Point, qs.K)
				ids := make([]uint64, len(items))
				for j, it := range items {
					ids[j] = it.ID
				}
				monitored[i] = ids
			}
		}
		cpu += time.Since(start)
	}

	// Initial synchronization at t=0 (results available after the delay).
	evaluate(0)
	updates := int64(cfg.N)
	nextSync := tPrd
	var okSamples, totalSamples int64

	for i := 0; ; i++ {
		ts := (float64(i) + 0.5) * cfg.SampleEvery
		if ts > cfg.Duration {
			break
		}
		// Process every synchronization point whose results are available by
		// this sample instant (positions sent at kT are processed at kT+τ).
		for nextSync+cfg.Tau <= ts+1e-12 && nextSync <= cfg.Duration {
			evaluate(nextSync)
			updates += int64(cfg.N)
			nextSync += tPrd
		}
		tr.advance(ts)
		for i, qs := range specs {
			if sameResult(qs, monitored[i], tr.results(qs)) {
				okSamples++
			}
			totalSamples++
		}
		// Trimming is capped at the last evaluated snapshot so a pending
		// synchronization between samples can still read its positions.
		trim := ts
		if nextSync < trim {
			trim = nextSync
		}
		for _, c := range curs {
			c.Trim(trim)
		}
	}
	// Account for synchronizations after the last sample tick.
	for nextSync <= cfg.Duration {
		evaluate(nextSync)
		updates += int64(cfg.N)
		nextSync += tPrd
	}

	res.Updates = updates
	res.CPUTime = cpu
	finalize(&res, cfg, okSamples, totalSamples, curs)
	return res
}
