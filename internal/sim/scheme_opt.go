package sim

// RunOPT simulates the optimal monitoring scheme of Section 7: every client
// has perfect knowledge of all queries and all other objects, so it sends a
// location update exactly when its movement changes some query's result. The
// scheme is infeasible in practice but provides the lower bound on
// communication cost and the accuracy yardstick (its results are exact by
// definition).
//
// Result-change instants are detected by differencing ground-truth results
// between consecutive sampling ticks; every object that entered, left, or
// changed rank in some query during a tick counts one update.
func RunOPT(cfg Config) Result {
	curs := newCursors(cfg)
	specs := genQueries(cfg)
	tr := newTruth(cfg, curs)

	res := Result{Scheme: "OPT", Accuracy: 1}

	prev := make(map[int][]uint64, len(specs))
	tr.advance(0)
	for i, qs := range specs {
		prev[i] = tr.results(qs)
	}

	var updates int64
	movers := make(map[uint64]bool)
	for i := 0; ; i++ {
		ts := (float64(i) + 0.5) * cfg.SampleEvery
		if ts > cfg.Duration {
			break
		}
		tr.advance(ts)
		for id := range movers {
			delete(movers, id)
		}
		for i, qs := range specs {
			cur := tr.results(qs)
			old := prev[i]
			if sameResult(qs, cur, old) {
				continue
			}
			// Attribute the change to the objects that joined or left; a pure
			// reorder with identical membership charges the object that moved
			// up (the one whose rank improved).
			oldSet := make(map[uint64]bool, len(old))
			for _, id := range old {
				oldSet[id] = true
			}
			curSet := make(map[uint64]bool, len(cur))
			for _, id := range cur {
				curSet[id] = true
			}
			changed := false
			for _, id := range cur {
				if !oldSet[id] {
					movers[id] = true
					changed = true
				}
			}
			for _, id := range old {
				if !curSet[id] {
					movers[id] = true
					changed = true
				}
			}
			if !changed {
				// Same membership, different order: find the first position
				// that differs and charge the object now occupying it.
				for j := range cur {
					if cur[j] != old[j] {
						movers[cur[j]] = true
						break
					}
				}
			}
			prev[i] = cur
		}
		updates += int64(len(movers))
		for _, c := range curs {
			c.Trim(ts)
		}
	}

	res.Updates = updates
	finalize(&res, cfg, 1, 1, curs)
	return res
}
