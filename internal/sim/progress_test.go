package sim

import (
	"testing"

	"srb/internal/obs"
)

// TestProgressSnapshots runs a short SRB simulation with progress enabled and
// an observability sink attached, checking the snapshot stream is monotone
// and consistent with the final result, and that the sink saw the workload.
func TestProgressSnapshots(t *testing.T) {
	cfg := Default()
	cfg.N = 200
	cfg.W = 8
	cfg.Duration = 2
	cfg.ProgressEvery = 0.5
	sink := obs.NewSink(obs.NewRegistry(), obs.NewTracer(4096))
	cfg.Obs = sink

	var snaps []Progress
	cfg.Progress = func(p Progress) { snaps = append(snaps, p) }
	res := RunSRB(cfg)

	if len(snaps) < 3 {
		t.Fatalf("got %d progress snapshots over %g time units at every %g, want >= 3",
			len(snaps), cfg.Duration, cfg.ProgressEvery)
	}
	for i, p := range snaps {
		if p.Scheme != "SRB" {
			t.Errorf("snapshot %d: scheme %q", i, p.Scheme)
		}
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("snapshot %d: accuracy %g out of range", i, p.Accuracy)
		}
		if i > 0 {
			prev := snaps[i-1]
			if p.T <= prev.T {
				t.Errorf("snapshot %d: time not increasing (%g -> %g)", i, prev.T, p.T)
			}
			if p.Updates < prev.Updates || p.Probes < prev.Probes || p.CommCost < prev.CommCost {
				t.Errorf("snapshot %d: counters decreased: %+v -> %+v", i, prev, p)
			}
		}
	}
	last := snaps[len(snaps)-1]
	if last.Updates > res.Updates || last.Probes > res.Probes {
		t.Errorf("last snapshot exceeds final result: %+v vs %+v", last, res)
	}
	if got := sink.Registry().Counter("srb_updates_total", "").Value(); got == 0 {
		t.Error("sink counter srb_updates_total did not move during the simulation")
	}
	if sink.Tracer().Total() == 0 {
		t.Error("sink tracer recorded no events during the simulation")
	}
}

// TestProgressOffByDefault checks that a zero ProgressEvery emits nothing
// even with a callback installed.
func TestProgressOffByDefault(t *testing.T) {
	cfg := Default()
	cfg.N = 50
	cfg.W = 4
	cfg.Duration = 1
	called := false
	cfg.Progress = func(Progress) { called = true }
	RunSRB(cfg)
	if called {
		t.Fatal("Progress fired with ProgressEvery unset")
	}
}
