package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/parallel"
	"srb/internal/query"
	"srb/internal/shard"
)

// event kinds of the SRB event-driven simulation.
const (
	evExit   = iota // a client crosses its safe-region boundary
	evServer        // a source-initiated update arrives at the server
	evRegion        // a refreshed safe region arrives at a client
	evSweep         // periodic client-side region check (GPS tick)
	evSample        // accuracy sampling instant
	evResend        // lossy link: retransmission timer for an unacked update
)

type event struct {
	t      float64
	seq    int64 // FIFO tie-break keeps causality at equal timestamps
	kind   int
	obj    uint64
	gen    int64
	pos    geom.Point
	region geom.Rect
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:allow floatcmp comparator tie-break: exact inequality guards the seq fallback
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type srbClient struct {
	region   geom.Rect
	gen      int64
	awaiting bool
}

// RunSRB simulates the safe-region-based monitoring framework.
func RunSRB(cfg Config) Result {
	curs := newCursors(cfg)
	specs := genQueries(cfg)
	tr := newTruth(cfg, curs)

	res := Result{Scheme: "SRB"}
	var cpu time.Duration
	serverDo := func(f func()) {
		start := time.Now()
		f()
		cpu += time.Since(start)
	}

	// serverNow is the logical server clock observed by the probe callback:
	// probes are synchronous under the paper's sequential-processing
	// assumption, so the object answers with its position at server time.
	var serverNow float64
	mon := core.New(cfg.coreOptions(), core.ProberFunc(func(id uint64) geom.Point {
		return curs[id].At(serverNow)
	}), nil)
	if cfg.Shards > 1 {
		forest := shard.NewForest(cfg.coreOptions(), cfg.Shards)
		if err := mon.SetIndex(forest); err != nil {
			panic("sim: sharding an empty monitor cannot fail: " + err.Error())
		}
		defer forest.Close()
		forest.SetObs(cfg.Obs)
	}
	mon.SetObs(cfg.Obs)
	var pipe *parallel.Pipeline
	if cfg.BatchWorkers > 0 {
		pipe = parallel.New(mon, cfg.BatchWorkers)
		pipe.SetObs(cfg.Obs)
	}

	clients := make([]srbClient, cfg.N)
	var events eventHeap
	var seq int64
	push := func(e event) {
		e.seq = seq
		seq++
		heap.Push(&events, e)
	}

	// The lossy-link extension: when LossRate > 0, updates and region grants
	// are dropped with that probability from a dedicated seeded stream (so a
	// LossRate = 0 run draws nothing and stays bit-identical to the reliable
	// model). Lost updates are healed by the clients' resend timer; a lost
	// grant leaves the client monitoring with its stale — strictly larger at
	// grant time — region until its next exchange, which is exactly the
	// accuracy degradation the figL.1 sweep quantifies.
	var lossRng *rand.Rand
	resendTO := cfg.ResendTimeout
	if cfg.LossRate > 0 {
		lossRng = rand.New(rand.NewSource(cfg.Seed*7919 + 13))
		if resendTO <= 0 {
			resendTO = 2*cfg.Tau + cfg.SampleEvery
		}
	}

	// deliver routes the server's safe-region refreshes to the clients.
	deliver := func(t float64, ups []core.SafeRegionUpdate) {
		for _, u := range ups {
			if lossRng != nil && lossRng.Float64() < cfg.LossRate {
				res.LostRegions++
				continue
			}
			push(event{t: t + cfg.Tau, kind: evRegion, obj: u.Object, region: u.Region})
		}
	}

	// Registration phase at t=0: objects first, then the query workload.
	serverNow = 0
	serverDo(func() {
		mon.SetTime(0)
		for i := 0; i < cfg.N; i++ {
			ups := mon.AddObject(uint64(i), curs[i].At(0))
			for _, u := range ups {
				clients[u.Object].region = u.Region
				clients[u.Object].gen++
			}
		}
		for _, qs := range specs {
			var ups []core.SafeRegionUpdate
			var err error
			if qs.Kind == query.KindRange {
				_, ups, err = mon.RegisterRange(qs.ID, qs.Rect)
			} else {
				_, ups, err = mon.RegisterKNN(qs.ID, qs.Point, qs.K, qs.OrderSensitive)
			}
			if err != nil {
				panic(err)
			}
			for _, u := range ups {
				clients[u.Object].region = u.Region
				clients[u.Object].gen++
			}
		}
	})
	probesAtStart := mon.Stats().Probes

	// Clients re-check their safe region at most once per check period:
	// besides modeling discrete positioning hardware, this bounds the update
	// rate of objects riding a paper-thin region (near-tied kNN neighbors).
	minGap := cfg.ClientCheckEvery
	if minGap <= 0 {
		minGap = cfg.SampleEvery / 10
	}
	if minGap <= 0 {
		minGap = 1e-3
	}
	scheduleExit := func(id uint64, from float64) {
		c := &clients[id]
		if te, ok := curs[id].ExitTime(c.region, from, cfg.Duration); ok {
			if te < from+minGap {
				te = from + minGap
			}
			push(event{t: te, kind: evExit, obj: id, gen: c.gen})
		}
	}
	for i := 0; i < cfg.N; i++ {
		scheduleExit(uint64(i), 0)
	}
	// Samples are offset to the middle of each interval so they never alias
	// with periodic events (PRD synchronizations use the same grid).
	for i := 0; ; i++ {
		ts := (float64(i) + 0.5) * cfg.SampleEvery
		if ts > cfg.Duration {
			break
		}
		// Clients verify their region right before each sample instant: exit
		// events are rate limited by minGap, and without this sweep an object
		// microscopically outside a paper-thin region (near-tied kNN
		// neighbors) would be caught mid-window by the sampler.
		push(event{t: ts - 1e-9, kind: evSweep})
		push(event{t: ts, kind: evSample})
	}

	var okSamples, totalSamples int64
	var updates int64

	// Progress snapshots ride the sampling grid: accuracy only changes at
	// sample instants, so finer emission would report stale numbers.
	nextProgress := cfg.ProgressEvery
	emitProgress := func(t float64) {
		if cfg.ProgressEvery <= 0 || cfg.Progress == nil || t < nextProgress {
			return
		}
		for nextProgress <= t {
			nextProgress += cfg.ProgressEvery
		}
		acc := 1.0
		if totalSamples > 0 {
			acc = float64(okSamples) / float64(totalSamples)
		}
		probes := mon.Stats().Probes - probesAtStart
		cfg.Progress(Progress{
			T:        t,
			Scheme:   "SRB",
			Accuracy: acc,
			Updates:  updates,
			Probes:   probes,
			CommCost: cfg.Cl*float64(updates) + cfg.Cp*float64(probes),
		})
	}

	sendUpdate := func(t float64, id uint64) {
		if debugUpdate != nil {
			debugUpdate(t, id)
		}
		c := &clients[id]
		c.awaiting = true
		updates++ // the transmission is paid for whether or not it arrives
		if lossRng != nil && lossRng.Float64() < cfg.LossRate {
			res.LostUpdates++
		} else {
			push(event{t: t + cfg.Tau, kind: evServer, obj: id, pos: curs[id].At(t)})
		}
		if lossRng != nil {
			// Arm the retransmission timer; a region grant (gen bump) or the
			// awaiting flag clearing makes it a no-op.
			push(event{t: t + resendTO, kind: evResend, obj: id, gen: c.gen})
		}
	}

	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		if e.t > cfg.Duration+1e-9 {
			break
		}
		switch e.kind {
		case evExit:
			c := &clients[e.obj]
			if e.gen != c.gen || c.awaiting {
				break // region changed since scheduling, or update in flight
			}
			sendUpdate(e.t, e.obj)
		case evServer:
			serverNow = e.t //nolint:ineffassign // read by the probe callback
			var ups []core.SafeRegionUpdate
			if pipe != nil {
				// Updates arriving at the same instant — a sweep's burst shares
				// one timestamp — form one batch tick. Heap order makes them
				// consecutive; seq preserves their arrival order in the batch.
				batch := []parallel.Update{{ID: e.obj, Loc: e.pos}}
				//lint:allow floatcmp batch coalescing: only bitwise-identical timestamps share a tick
				for events.Len() > 0 && events[0].kind == evServer && events[0].t == e.t {
					nx := heap.Pop(&events).(event)
					batch = append(batch, parallel.Update{ID: nx.obj, Loc: nx.pos})
				}
				serverDo(func() {
					mon.SetTime(e.t)
					ups = pipe.Apply(batch)
				})
			} else {
				serverDo(func() {
					mon.SetTime(e.t)
					ups = mon.Update(e.obj, e.pos)
				})
			}
			deliver(e.t, ups)
		case evRegion:
			c := &clients[e.obj]
			c.gen++
			c.region = e.region
			c.awaiting = false
			p := curs[e.obj].At(e.t)
			if debugRegion != nil {
				info := fmt.Sprintf("contains=%v pos=%v perim=%.6f", e.region.Contains(p), p, e.region.Perimeter())
				debugRegion(e.t, e.obj, e.region.String(), info)
			}
			if !c.region.Contains(p) {
				// The client already escaped the new region while it was in
				// flight (large τ): report immediately.
				sendUpdate(e.t, e.obj)
				break
			}
			scheduleExit(e.obj, e.t)
		case evResend:
			c := &clients[e.obj]
			if !c.awaiting || e.gen != c.gen {
				break // a region arrived (or a newer update owns the timer)
			}
			res.Resends++
			sendUpdate(e.t, e.obj)
		case evSweep:
			for id := range clients {
				c := &clients[id]
				if c.awaiting {
					continue
				}
				if !c.region.Contains(curs[id].At(e.t)) {
					sendUpdate(e.t, uint64(id))
				}
			}
		case evSample:
			tr.advance(e.t)
			for _, qs := range specs {
				monitored, _ := mon.Results(qs.ID)
				if sameResult(qs, monitored, tr.results(qs)) {
					okSamples++
				} else if debugMismatch != nil {
					debugMismatch(e.t, qs, monitored, tr.results(qs), clients, curs)
				}
				totalSamples++
			}
			for _, c := range curs {
				c.Trim(e.t)
			}
			emitProgress(e.t)
		}
	}

	stats := mon.Stats()
	res.Updates = updates
	res.Probes = stats.Probes - probesAtStart
	res.Stats = stats
	res.CPUTime = cpu
	finalize(&res, cfg, okSamples, totalSamples, curs)
	return res
}

// debugMismatch, when non-nil, is invoked on every accuracy mismatch; test
// instrumentation only.
var debugMismatch func(t float64, qs QuerySpec, monitored, real []uint64, clients []srbClient, curs []*mobility.Cursor)

// debugUpdate, when non-nil, observes every source-initiated update; test
// instrumentation only.
var debugUpdate func(t float64, id uint64)

// debugRegion, when non-nil, observes every safe region delivered to a
// client; test instrumentation only.
var debugRegion func(t float64, id uint64, region, info string)
