package sim

import (
	"math"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := Default()
	c.N = 150
	c.W = 10
	c.Duration = 3
	c.SampleEvery = 0.1
	c.QLen = 0.05
	c.GridM = 8
	return c
}

func TestSRBPerfectAccuracyWithoutDelay(t *testing.T) {
	r := RunSRB(tiny())
	if r.Accuracy != 1 {
		t.Fatalf("SRB with τ=0 must be exact, accuracy = %v", r.Accuracy)
	}
	if r.Updates == 0 {
		t.Fatal("expected some source-initiated updates")
	}
	if r.CommCost <= 0 || r.CommPerClientTime <= 0 {
		t.Fatalf("cost accounting broken: %+v", r)
	}
	if r.Distance <= 0 {
		t.Fatal("expected distance traveled")
	}
}

func TestSRBDeterministic(t *testing.T) {
	a := RunSRB(tiny())
	b := RunSRB(tiny())
	if a.Updates != b.Updates || a.Probes != b.Probes || a.Accuracy != b.Accuracy {
		t.Fatalf("non-deterministic run: %+v vs %+v", a, b)
	}
}

func TestSRBAccuracyDegradesWithDelay(t *testing.T) {
	cfg := tiny()
	cfg.Tau = 0.5
	delayed := RunSRB(cfg)
	if delayed.Accuracy >= 1 {
		t.Fatalf("large delay should cause some staleness, accuracy = %v", delayed.Accuracy)
	}
	if delayed.Accuracy < 0.3 {
		t.Fatalf("accuracy collapsed unexpectedly: %v", delayed.Accuracy)
	}
}

func TestOPTIsLowerBound(t *testing.T) {
	cfg := tiny()
	opt := RunOPT(cfg)
	srb := RunSRB(cfg)
	if opt.Accuracy != 1 {
		t.Fatalf("OPT accuracy = %v", opt.Accuracy)
	}
	if opt.CommCost > srb.CommCost {
		t.Fatalf("OPT (%v) must not cost more than SRB (%v)", opt.CommCost, srb.CommCost)
	}
	if opt.Updates == 0 {
		t.Fatal("expected result changes under movement")
	}
}

func TestPRDCostFormula(t *testing.T) {
	cfg := tiny()
	prd := RunPRD(cfg, 1)
	// One synchronization of N clients per period plus the initial one: the
	// per-client per-time cost must be Cl/tPrd.
	want := cfg.Cl / 1.0
	got := prd.CommPerClientTime
	// The initial sync adds 1/Duration extra per client.
	slack := cfg.Cl / cfg.Duration
	if math.Abs(got-want) > slack+1e-9 {
		t.Fatalf("PRD(1) cost per client-time = %v, want ≈ %v", got, want)
	}
	prdFast := RunPRD(cfg, 0.1)
	if prdFast.CommPerClientTime < 9 || prdFast.CommPerClientTime > 11.5 {
		t.Fatalf("PRD(0.1) cost per client-time = %v, want ≈ 10", prdFast.CommPerClientTime)
	}
}

func TestPRDAccuracyOrdering(t *testing.T) {
	cfg := tiny()
	fast := RunPRD(cfg, 0.1)
	slow := RunPRD(cfg, 1)
	if fast.Accuracy <= slow.Accuracy {
		t.Fatalf("PRD(0.1) accuracy %v should beat PRD(1) %v", fast.Accuracy, slow.Accuracy)
	}
	if fast.Accuracy >= 1 {
		t.Fatalf("periodic monitoring cannot be exact under movement: %v", fast.Accuracy)
	}
}

func TestSRBBeatsPRDOnAccuracyAndCost(t *testing.T) {
	cfg := tiny()
	srb := RunSRB(cfg)
	prd := RunPRD(cfg, 0.1)
	if srb.Accuracy < prd.Accuracy {
		t.Fatalf("SRB accuracy %v below PRD(0.1) %v", srb.Accuracy, prd.Accuracy)
	}
	if srb.CommPerClientTime >= prd.CommPerClientTime {
		t.Fatalf("SRB cost %v should undercut PRD(0.1) %v", srb.CommPerClientTime, prd.CommPerClientTime)
	}
}

func TestReachabilityEnhancementReducesCost(t *testing.T) {
	cfg := Default()
	cfg.N = 600
	cfg.W = 20
	cfg.Duration = 3
	plain := RunSRB(cfg)
	cfg.MaxSpeed = 2 * cfg.MeanSpeed
	enh := RunSRB(cfg)
	if enh.Accuracy != 1 {
		t.Fatalf("enhancement must preserve exactness, accuracy = %v", enh.Accuracy)
	}
	if enh.CommCost > plain.CommCost {
		t.Fatalf("reachability circle increased cost: %v > %v", enh.CommCost, plain.CommCost)
	}
	if enh.Stats.VirtualProbes == 0 {
		t.Fatal("expected virtual probes with MaxSpeed enabled")
	}
}

func TestSteadyMovementPreservesExactness(t *testing.T) {
	cfg := tiny()
	cfg.Steadiness = 0.5
	cfg.MeanPeriod = 0.5 // steady movement
	r := RunSRB(cfg)
	if r.Accuracy != 1 {
		t.Fatalf("weighted perimeter must preserve exactness, accuracy = %v", r.Accuracy)
	}
}

func TestDirectedMobility(t *testing.T) {
	cfg := tiny()
	cfg.Mobility = "directed"
	r := RunSRB(cfg)
	if r.Accuracy != 1 {
		t.Fatalf("SRB must stay exact under directed mobility: %v", r.Accuracy)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("expected 13 experiments (1 table + 12 figures), got %d", len(exps))
	}
	if _, ok := ExperimentByID("fig7.5"); !ok {
		t.Fatal("fig7.5 missing")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("unknown id should miss")
	}
}

func TestExperimentTablesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow")
	}
	base := tiny()
	base.N = 100
	base.W = 8
	base.Duration = 2
	for _, e := range Experiments() {
		tab := e.Run(base)
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", e.ID)
		}
		if s := tab.Format(); len(s) == 0 {
			t.Fatalf("%s format empty", e.ID)
		}
	}
}

func TestPaperConfigShape(t *testing.T) {
	p := Paper()
	if p.N != 100000 || p.W != 1000 || p.GridM != 50 || p.QLen != 0.005 {
		t.Fatalf("paper defaults drifted: %+v", p)
	}
	d := Default()
	if d.Cl != 1 || d.Cp != 1.5 {
		t.Fatalf("cost units drifted: %+v", d)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		XLabel:  "tau",
		Columns: []string{"SRB", "PRD(0.1)", `weird,"col`},
		Rows: []TableRow{
			{X: 0, Values: []float64{1, 0.5, 2}},
			{X: 0.25, Values: []float64{0.9, 0.4, 3}},
		},
	}
	got := tab.CSV()
	want := "tau,SRB,PRD(0.1),\"weird,\"\"col\"\n0,1,0.5,2\n0.25,0.9,0.4,3\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestPRDGridMatchesPRDBehavior(t *testing.T) {
	cfg := tiny()
	grid := RunPRDGrid(cfg, 0.1)
	tree := RunPRD(cfg, 0.1)
	// Same synchronization schedule → same update count and cost; the
	// accuracies agree too because both evaluate exact positions at the same
	// instants (kNN ties could differ, hence tolerance).
	if grid.Updates != tree.Updates {
		t.Fatalf("updates %d vs %d", grid.Updates, tree.Updates)
	}
	if math.Abs(grid.Accuracy-tree.Accuracy) > 0.02 {
		t.Fatalf("accuracy %v vs %v", grid.Accuracy, tree.Accuracy)
	}
	if grid.Accuracy >= 1 {
		t.Fatal("periodic monitoring cannot be exact under movement")
	}
}

// stripCPU zeroes the wall-clock fields, the only legitimately
// non-deterministic part of a Result, so full-struct equality can enforce
// seed determinism on everything else (EXPERIMENTS.md numbers must be
// reproducible from the seed alone).
func stripCPU(r Result) Result {
	r.CPUTime = 0
	r.CPUPerTimeUnit = 0
	return r
}

func TestSeedDeterminismAllSchemes(t *testing.T) {
	batch := tiny()
	batch.BatchWorkers = 4
	runs := []struct {
		name string
		run  func() Result
	}{
		{"SRB", func() Result { return RunSRB(tiny()) }},
		{"SRB-batch", func() Result { return RunSRB(batch) }},
		{"OPT", func() Result { return RunOPT(tiny()) }},
		{"PRD", func() Result { return RunPRD(tiny(), 0.1) }},
	}
	for _, rc := range runs {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			a, b := stripCPU(rc.run()), stripCPU(rc.run())
			//lint:allow floatcmp seed determinism means bit-identical metrics
			if a != b {
				t.Fatalf("same seed produced different metrics:\n%+v\n%+v", a, b)
			}
		})
	}
}

func TestLossyLinkDegradesGracefully(t *testing.T) {
	clean := RunSRB(tiny())
	cfg := tiny()
	cfg.LossRate = 0.2
	lossy := RunSRB(cfg)
	if lossy.LostUpdates == 0 || lossy.LostRegions == 0 {
		t.Fatalf("loss rate 0.2 dropped nothing: %+v", lossy)
	}
	if lossy.Resends == 0 {
		t.Fatal("expected retransmissions to heal lost updates")
	}
	if lossy.Accuracy >= clean.Accuracy {
		t.Fatalf("lossy accuracy %v not below reliable %v", lossy.Accuracy, clean.Accuracy)
	}
	if lossy.Accuracy < 0.5 {
		t.Fatalf("accuracy collapsed under 20%% loss: %v", lossy.Accuracy)
	}
	// The loss schedule is drawn from its own seeded stream: the run is
	// reproducible, and a reliable run draws nothing from it.
	again := RunSRB(cfg)
	//lint:allow floatcmp seed determinism means bit-identical metrics
	if stripCPU(lossy) != stripCPU(again) {
		t.Fatalf("lossy run not reproducible:\n%+v\n%+v", lossy, again)
	}
	if clean.LostUpdates != 0 || clean.LostRegions != 0 || clean.Resends != 0 {
		t.Fatalf("reliable run recorded losses: %+v", clean)
	}
}

func TestSRBBatchModeStaysExact(t *testing.T) {
	// The batch pipeline applies a same-instant burst in ascending object-ID
	// order instead of arrival order — a different but valid serialization of
	// simultaneous events — so per-run counters may drift slightly from the
	// sequential sim. Monitoring accuracy with tau=0 must stay perfect, and
	// the communication workload must stay in the same regime.
	seqr := RunSRB(tiny())
	cfg := tiny()
	cfg.BatchWorkers = 4
	batch := RunSRB(cfg)
	if batch.Accuracy != 1 {
		t.Fatalf("batched SRB with tau=0 must be exact, accuracy = %v", batch.Accuracy)
	}
	lo, hi := seqr.Updates*9/10, seqr.Updates*11/10
	if batch.Updates < lo || batch.Updates > hi {
		t.Fatalf("batched update count %d far from sequential %d", batch.Updates, seqr.Updates)
	}
}

func TestSRBShardedStaysBitIdentical(t *testing.T) {
	// Unlike batching (a different serialization of simultaneous events), the
	// sharded object index promises the exact same serialization: every
	// counter of the run must match the single-tree run bit for bit.
	single := stripCPU(RunSRB(tiny()))
	for _, n := range []int{2, 4} {
		cfg := tiny()
		cfg.Shards = n
		sharded := stripCPU(RunSRB(cfg))
		//lint:allow floatcmp the shard contract is bit-identical outcomes
		if single != sharded {
			t.Fatalf("%d-shard SRB diverged from single tree:\n%+v\n%+v", n, single, sharded)
		}
	}
}
