package sim

import (
	"math/rand"
	"sort"

	"srb/internal/exact"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/query"
)

// QuerySpec is a query of the simulated workload.
type QuerySpec struct {
	ID             query.ID
	Kind           query.Kind
	Rect           geom.Rect
	Point          geom.Point
	K              int
	OrderSensitive bool
}

// genQueries builds the Section 7.1 workload: W/2 square range queries with
// side U[0.5, 1.5]·QLen and W/2 order-sensitive kNN queries with k U[1, KMax],
// both uniformly placed.
func genQueries(cfg Config) []QuerySpec {
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 17))
	out := make([]QuerySpec, 0, cfg.W)
	nRange := cfg.W / 2
	for i := 0; i < cfg.W; i++ {
		if i < nRange {
			side := cfg.QLen * (0.5 + rng.Float64())
			x := cfg.Space.MinX + rng.Float64()*(cfg.Space.Width()-side)
			y := cfg.Space.MinY + rng.Float64()*(cfg.Space.Height()-side)
			out = append(out, QuerySpec{
				ID:   query.ID(i + 1),
				Kind: query.KindRange,
				Rect: geom.R(x, y, x+side, y+side),
			})
			continue
		}
		k := 1 + rng.Intn(cfg.KMax)
		out = append(out, QuerySpec{
			ID:             query.ID(i + 1),
			Kind:           query.KindKNN,
			Point:          geom.Pt(cfg.Space.MinX+rng.Float64()*cfg.Space.Width(), cfg.Space.MinY+rng.Float64()*cfg.Space.Height()),
			K:              k,
			OrderSensitive: true,
		})
	}
	return out
}

// newCursors builds the deterministic client trajectories.
func newCursors(cfg Config) []*mobility.Cursor {
	starts := mobility.StartPositions(cfg.Seed, cfg.N, cfg.Space)
	out := make([]*mobility.Cursor, cfg.N)
	for i := range out {
		var m mobility.Model
		if cfg.Mobility == "directed" {
			m = mobility.NewDirected(cfg.Seed, uint64(i), cfg.Space, cfg.MeanSpeed, cfg.MeanPeriod, 0.2, starts[i])
		} else {
			m = mobility.NewWaypoint(cfg.Seed, uint64(i), cfg.Space, cfg.MeanSpeed, cfg.MeanPeriod, starts[i])
		}
		out[i] = mobility.NewCursor(m)
	}
	return out
}

// truth evaluates ground-truth query results from exact positions.
type truth struct {
	ix   *exact.Index
	curs []*mobility.Cursor
}

func newTruth(cfg Config, curs []*mobility.Cursor) *truth {
	m := 1
	for m*m < cfg.N/4 {
		m++
	}
	if m > 256 {
		m = 256
	}
	tr := &truth{ix: exact.New(m, cfg.Space), curs: curs}
	return tr
}

// advance moves the exact index to time t.
func (tr *truth) advance(t float64) {
	for i, c := range tr.curs {
		tr.ix.Set(uint64(i), c.At(t))
	}
}

// results returns the true result of a query at the current index time; kNN
// results are ordered by distance with ties broken by ID.
func (tr *truth) results(q QuerySpec) []uint64 {
	if q.Kind == query.KindRange {
		return tr.ix.Range(q.Rect)
	}
	nbs := tr.ix.KNN(q.Point, q.K, nil)
	out := make([]uint64, len(nbs))
	for i, n := range nbs {
		out[i] = n.ID
	}
	return out
}

// sameResult compares a monitored result with the truth under the query's
// ordering semantics.
func sameResult(q QuerySpec, monitored, real []uint64) bool {
	if len(monitored) != len(real) {
		return false
	}
	if q.Kind == query.KindKNN && q.OrderSensitive {
		for i := range real {
			if monitored[i] != real[i] {
				return false
			}
		}
		return true
	}
	ms := append([]uint64(nil), monitored...)
	rs := append([]uint64(nil), real...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	for i := range rs {
		if ms[i] != rs[i] {
			return false
		}
	}
	return true
}
