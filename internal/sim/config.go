// Package sim is the discrete event-driven simulator used to reproduce the
// performance evaluation of Section 7: it drives N random-waypoint clients
// and W mixed queries against three monitoring schemes — the safe-region
// framework (SRB), the clairvoyant lower bound (OPT), and periodic
// monitoring (PRD) — measuring monitoring accuracy, wireless communication
// cost, and server CPU time.
package sim

import (
	"time"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
)

// Config describes one simulation run. The zero value is not usable; start
// from Default or Paper.
type Config struct {
	Seed int64
	// N is the number of moving objects; W the number of registered queries
	// (half range, half order-sensitive kNN, as in Section 7.1).
	N, W int
	// MeanSpeed is v̄: object speed is drawn from U[0, 2·v̄] per leg.
	MeanSpeed float64
	// MeanPeriod is t̄v: the constant movement period is drawn from
	// U[0, 2·t̄v].
	MeanPeriod float64
	// QLen is the mean side length of range query rectangles (U[0.5, 1.5]·QLen).
	QLen float64
	// KMax bounds k for kNN queries (k ~ U[1, KMax]).
	KMax int
	// GridM is the query-index resolution M.
	GridM int
	// Duration is the simulated horizon in time units.
	Duration float64
	// SampleEvery is the accuracy sampling interval.
	SampleEvery float64
	// ClientCheckEvery is the period at which a client compares its GPS fix
	// against its safe region (continuous boundary detection is impossible on
	// real positioning hardware; the paper is silent on this granularity).
	// Smaller values detect exits sooner but let near-tied kNN neighbors
	// generate more updates while their order is ambiguous. Defaults to
	// SampleEvery/10.
	ClientCheckEvery float64
	// Tau is the one-way communication delay between clients and the server.
	Tau float64
	// Cl and Cp are the costs of a source-initiated update and of a
	// server-initiated probe-plus-update (uplink twice the downlink: 1, 1.5).
	Cl, Cp float64
	// MaxSpeed enables the reachability-circle enhancement (Section 6.1) when
	// positive; it should be an upper bound on instantaneous object speed
	// (2·MeanSpeed under the waypoint model).
	MaxSpeed float64
	// Steadiness enables the weighted-perimeter enhancement (Section 6.2).
	Steadiness float64
	// DisableBatchRange and GreedyBatch select safe-region ablations.
	DisableBatchRange bool
	GreedyBatch       bool
	// EagerProbes disables lazy probing (ablation).
	EagerProbes bool
	// CellNeighborhood is the adaptive-cell radius of Section 7.4: safe
	// regions may span the (2r+1)² block of grid cells around the object.
	// 0 reproduces the base framework (single cell).
	CellNeighborhood int
	// BatchWorkers, when positive, routes the SRB scheme's source-initiated
	// updates through the batch pipeline of internal/parallel: updates arriving
	// at the server at the same instant (e.g. a client sweep) are applied as
	// one batch planned on this many workers. Results are bit-identical to the
	// sequential path by the pipeline's determinism contract.
	BatchWorkers int
	// Shards, when greater than 1, partitions the SRB scheme's object index
	// across goroutine-confined shards (internal/shard). Results are
	// bit-identical to the single tree by the forest's determinism contract;
	// the knob exists to exercise and measure the sharded index under
	// simulated workloads.
	Shards int
	// LossRate, when positive, models a lossy wireless link (SRB scheme
	// only): each source-initiated update and each safe-region grant is
	// independently lost with this probability, drawn from a dedicated seeded
	// stream so runs stay reproducible. The t=0 bootstrap and server probes
	// remain reliable (the remote layer's probe path falls back to the last
	// reported location, so probe loss does not stall the server).
	LossRate float64
	// ResendTimeout is the client's retransmission timer under LossRate > 0:
	// if no refreshed safe region arrives within this many time units of an
	// update, the client resends its current position. It must exceed the
	// 2·Tau round trip to avoid spurious resends; defaults to
	// 2·Tau + SampleEvery.
	ResendTimeout float64
	// Mobility selects the model: "waypoint" (default) or "directed".
	Mobility string
	// Space is the monitored region.
	Space geom.Rect
	// ProgressEvery, when positive, emits a Progress snapshot roughly every
	// that many simulated time units (aligned to the accuracy sampling grid,
	// since accuracy only changes at sample instants). SRB scheme only.
	ProgressEvery float64
	// Progress receives the periodic snapshots; ignored unless ProgressEvery
	// is positive.
	Progress func(Progress)
	// Obs, when non-nil, attaches this observability sink to the SRB scheme's
	// monitor and batch pipeline, so a long simulation can be scraped and
	// traced like a live server.
	Obs *obs.Sink
}

// Progress is one periodic snapshot of a running SRB simulation: the running
// accuracy and communication counters up to simulated time T.
type Progress struct {
	T        float64
	Scheme   string
	Accuracy float64 // running fraction of correct (query, sample) pairs
	Updates  int64   // source-initiated updates so far
	Probes   int64   // server-initiated probes so far
	CommCost float64 // Cl·Updates + Cp·Probes so far
}

// Default returns a configuration scaled down from Table 7.1 so that full
// experiment sweeps complete in benchmark time; the workload shape (query
// mix, sizes, mobility) matches the paper.
func Default() Config {
	return Config{
		Seed:        1,
		N:           2000,
		W:           40,
		MeanSpeed:   0.01,
		MeanPeriod:  0.005,
		QLen:        0.02,
		KMax:        10,
		GridM:       20,
		Duration:    10,
		SampleEvery: 0.1,
		Cl:          1,
		Cp:          1.5,
		Space:       geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
	}
}

// Paper returns the full-scale parameters of Table 7.1 (N=100,000 objects,
// W=1,000 queries, 5,000 time units). Running every figure at this scale
// takes hours, as it did on the paper's testbed.
func Paper() Config {
	c := Default()
	c.N = 100000
	c.W = 1000
	c.QLen = 0.005
	c.GridM = 50
	c.Duration = 5000
	c.SampleEvery = 0.1
	return c
}

func (c Config) coreOptions() core.Options {
	return core.Options{
		Space:             c.Space,
		GridM:             c.GridM,
		MaxSpeed:          c.MaxSpeed,
		Steadiness:        c.Steadiness,
		DisableBatchRange: c.DisableBatchRange,
		GreedyBatch:       c.GreedyBatch,
		CellNeighborhood:  c.CellNeighborhood,
		EagerProbes:       c.EagerProbes,
	}
}

// Result aggregates the metrics of one scheme run (Section 7.1).
type Result struct {
	Scheme string
	// Accuracy is the amortized monitoring accuracy: the fraction of
	// (query, sample instant) pairs at which the monitored result equals the
	// true result.
	Accuracy float64
	// Updates and Probes count client-initiated updates and server probes.
	Updates int64
	Probes  int64
	// CommCost is the total wireless communication cost (Cl·Updates +
	// Cp·Probes); CommPerClientTime divides by N·Duration (the paper's
	// per-client amortized cost); CommPerDistance divides by the total
	// distance traveled.
	CommCost          float64
	CommPerClientTime float64
	CommPerDistance   float64
	// CPUTime is the wall-clock time spent in server-side processing, and
	// CPUPerTimeUnit its average per simulated time unit.
	CPUTime        time.Duration
	CPUPerTimeUnit float64
	// Distance is the total distance traveled by all clients.
	Distance float64
	// LostUpdates and LostRegions count messages dropped by the lossy link
	// (LossRate > 0): source updates that never reached the server and safe
	// region grants that never reached their client. Resends counts the
	// retransmissions the clients' resend timer triggered.
	LostUpdates, LostRegions, Resends int64
	// Stats carries the SRB server's internal counters (zero for OPT/PRD).
	Stats core.Stats
}
