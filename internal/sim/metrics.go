package sim

import "srb/internal/mobility"

// finalize fills the derived metrics common to all schemes.
func finalize(res *Result, cfg Config, ok, total int64, curs []*mobility.Cursor) {
	if total > 0 {
		res.Accuracy = float64(ok) / float64(total)
	} else {
		res.Accuracy = 1
	}
	res.CommCost = cfg.Cl*float64(res.Updates) + cfg.Cp*float64(res.Probes)
	if cfg.N > 0 && cfg.Duration > 0 {
		res.CommPerClientTime = res.CommCost / (float64(cfg.N) * cfg.Duration)
	}
	var dist float64
	for _, c := range curs {
		c.At(cfg.Duration) // extend the cached window through the horizon
		dist += c.DistanceTraveled(cfg.Duration)
	}
	res.Distance = dist
	if dist > 0 {
		res.CommPerDistance = res.CommCost / dist
	}
	if cfg.Duration > 0 {
		res.CPUPerTimeUnit = res.CPUTime.Seconds() / cfg.Duration
	}
}
