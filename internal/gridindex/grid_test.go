package gridindex

import (
	"math/rand"
	"testing"

	"srb/internal/geom"
	"srb/internal/query"
)

var space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

func TestCellGeometry(t *testing.T) {
	g := New(4, space)
	i, j := g.CellOf(geom.Pt(0.26, 0.9))
	if i != 1 || j != 3 {
		t.Fatalf("CellOf = (%d,%d)", i, j)
	}
	r := g.CellRect(1, 3)
	if r != (geom.Rect{MinX: 0.25, MinY: 0.75, MaxX: 0.5, MaxY: 1}) {
		t.Fatalf("CellRect = %v", r)
	}
	// Boundary and out-of-space points clamp into the grid.
	if i, j := g.CellOf(geom.Pt(1, 1)); i != 3 || j != 3 {
		t.Fatalf("clamp high: (%d,%d)", i, j)
	}
	if i, j := g.CellOf(geom.Pt(-5, 2)); i != 0 || j != 3 {
		t.Fatalf("clamp out: (%d,%d)", i, j)
	}
	if !g.CellRectOf(geom.Pt(0.26, 0.9)).Contains(geom.Pt(0.26, 0.9)) {
		t.Fatal("CellRectOf must contain the point")
	}
}

func TestInsertRemoveBuckets(t *testing.T) {
	g := New(10, space)
	q := query.NewRange(1, geom.R(0.11, 0.11, 0.35, 0.15)) // spans cells x:1..3, y:1
	g.Insert(q)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	for _, p := range []geom.Point{geom.Pt(0.12, 0.12), geom.Pt(0.25, 0.12), geom.Pt(0.32, 0.12)} {
		if got := g.At(p); len(got) != 1 || got[0].ID != 1 {
			t.Fatalf("bucket at %v = %v", p, got)
		}
	}
	if got := g.At(geom.Pt(0.45, 0.12)); len(got) != 0 {
		t.Fatalf("unexpected bucket content: %v", got)
	}
	if !g.Remove(q) {
		t.Fatal("remove failed")
	}
	if g.Remove(q) {
		t.Fatal("second remove must report false")
	}
	if got := g.At(geom.Pt(0.12, 0.12)); len(got) != 0 {
		t.Fatalf("bucket not emptied: %v", got)
	}
}

func TestBucketsSortedByID(t *testing.T) {
	g := New(2, space)
	for _, id := range []query.ID{5, 1, 9, 3} {
		g.Insert(query.NewRange(id, geom.R(0.1, 0.1, 0.2, 0.2)))
	}
	b := g.At(geom.Pt(0.15, 0.15))
	if len(b) != 4 {
		t.Fatalf("bucket len = %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i-1].ID >= b[i].ID {
			t.Fatalf("bucket not sorted: %v %v", b[i-1].ID, b[i].ID)
		}
	}
}

func TestUpdateReindexesQuarantine(t *testing.T) {
	g := New(10, space)
	q := query.NewKNN(1, geom.Pt(0.5, 0.5), 2, false)
	q.QRadius = 0.05
	g.Insert(q)
	if len(g.At(geom.Pt(0.5, 0.5))) != 1 {
		t.Fatal("expected query at center")
	}
	// Enlarge quarantine: it now overlaps neighboring cells as well.
	q.QRadius = 0.15
	g.Update(q)
	if len(g.At(geom.Pt(0.38, 0.5))) != 1 {
		t.Fatal("expected query in neighboring cell after update")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d after update", g.Len())
	}
	// No-op update keeps things intact.
	g.Update(q)
	if g.Len() != 1 || len(g.At(geom.Pt(0.5, 0.5))) != 1 {
		t.Fatal("no-op update broke the index")
	}
}

func TestAffectedDeduplicatesAndFilters(t *testing.T) {
	g := New(10, space)
	r1 := query.NewRange(1, geom.R(0.0, 0.0, 0.3, 0.3)) // old point inside
	r2 := query.NewRange(2, geom.R(0.6, 0.6, 0.9, 0.9)) // new point inside
	r3 := query.NewRange(3, geom.R(0.0, 0.0, 0.95, 0.95))
	// r3 covers both positions: both inside → not affected.
	g.Insert(r1)
	g.Insert(r2)
	g.Insert(r3)
	pOld := geom.Pt(0.1, 0.1)
	pNew := geom.Pt(0.7, 0.7)
	got := g.Affected(pOld, pNew)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		ids := []query.ID{}
		for _, q := range got {
			ids = append(ids, q.ID)
		}
		t.Fatalf("affected = %v, want [1 2]", ids)
	}
	// Same-cell move: shared bucket must not duplicate results.
	got = g.Affected(geom.Pt(0.28, 0.28), geom.Pt(0.32, 0.32))
	for i := 1; i < len(got); i++ {
		if got[i-1].ID == got[i].ID {
			t.Fatal("duplicate in affected list")
		}
	}
}

func TestAffectedOrderSensitiveKNNInsideQuarantine(t *testing.T) {
	g := New(10, space)
	q := query.NewKNN(1, geom.Pt(0.5, 0.5), 2, true)
	q.QRadius = 0.2
	g.Insert(q)
	got := g.Affected(geom.Pt(0.45, 0.5), geom.Pt(0.55, 0.5))
	if len(got) != 1 {
		t.Fatalf("order-sensitive kNN must be affected by in-quarantine moves, got %d", len(got))
	}
}

func TestGridRandomizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := New(17, space)
	live := map[query.ID]*query.Query{}
	next := query.ID(1)
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0:
			var q *query.Query
			if rng.Intn(2) == 0 {
				x, y := rng.Float64()*0.9, rng.Float64()*0.9
				q = query.NewRange(next, geom.R(x, y, x+rng.Float64()*0.1, y+rng.Float64()*0.1))
			} else {
				q = query.NewKNN(next, geom.Pt(rng.Float64(), rng.Float64()), 1+rng.Intn(5), rng.Intn(2) == 0)
				q.QRadius = rng.Float64() * 0.1
			}
			g.Insert(q)
			live[next] = q
			next++
		case op == 1:
			for id, q := range live {
				g.Remove(q)
				delete(live, id)
				break
			}
		default:
			for _, q := range live {
				if q.Kind == query.KindKNN {
					q.QRadius = rng.Float64() * 0.1
				}
				g.Update(q)
				break
			}
		}
	}
	if g.Len() != len(live) {
		t.Fatalf("Len = %d, live = %d", g.Len(), len(live))
	}
	// Every live query must be found in the bucket of a point inside its
	// quarantine bbox.
	for _, q := range live {
		bb := q.QuarantineBBox().Intersect(space)
		if !bb.IsValid() {
			continue
		}
		c := bb.Center()
		found := false
		for _, cand := range g.At(c) {
			if cand.ID == q.ID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d not found in its center cell", q.ID)
		}
	}
}

func TestNeighborhoodRect(t *testing.T) {
	g := New(10, space)
	p := geom.Pt(0.55, 0.55) // cell (5,5)
	if got := g.NeighborhoodRect(p, 0); got != g.CellRectOf(p) {
		t.Fatalf("r=0 should equal the cell: %v", got)
	}
	got := g.NeighborhoodRect(p, 1)
	want := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.7, MaxY: 0.7}
	if got.MinDistRect(want) > 1e-12 || got.Width() < 0.3-1e-12 {
		t.Fatalf("3x3 block = %v, want %v", got, want)
	}
	// Corner cells clamp.
	corner := g.NeighborhoodRect(geom.Pt(0.01, 0.01), 1)
	if corner.MinX != 0 || corner.MinY != 0 {
		t.Fatalf("corner clamp: %v", corner)
	}
	if corner.MaxX > 0.2+1e-12 {
		t.Fatalf("corner extent: %v", corner)
	}
}

func TestAtNeighborhood(t *testing.T) {
	g := New(10, space)
	qNear := query.NewRange(1, geom.R(0.41, 0.41, 0.44, 0.44)) // one cell west-south of (5,5)
	qHere := query.NewRange(2, geom.R(0.52, 0.52, 0.58, 0.58)) // in (5,5)
	qFar := query.NewRange(3, geom.R(0.05, 0.05, 0.08, 0.08))  // far away
	qWide := query.NewRange(4, geom.R(0.30, 0.30, 0.75, 0.75)) // overlaps many cells
	for _, q := range []*query.Query{qNear, qHere, qFar, qWide} {
		g.Insert(q)
	}
	p := geom.Pt(0.55, 0.55)
	if got := g.AtNeighborhood(p, 0); len(got) != 2 { // qHere + qWide
		t.Fatalf("r=0: %d queries", len(got))
	}
	got := g.AtNeighborhood(p, 1)
	if len(got) != 3 { // + qNear, still not qFar
		ids := []query.ID{}
		for _, q := range got {
			ids = append(ids, q.ID)
		}
		t.Fatalf("r=1: got %v", ids)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatal("neighborhood result must be sorted and deduplicated")
		}
	}
	if got := g.AtNeighborhood(p, 9); len(got) != 4 {
		t.Fatalf("whole grid: %d", len(got))
	}
}

func TestExtentOf(t *testing.T) {
	g := New(10, space)
	q := query.NewKNN(5, geom.Pt(0.5, 0.5), 1, true)
	q.QRadius = 0.07
	g.Insert(q)
	if got := g.ExtentOf(5); got != q.QuarantineBBox() {
		t.Fatalf("ExtentOf = %v", got)
	}
	q.QRadius = 0.2
	g.Update(q)
	if got := g.ExtentOf(5); got != q.QuarantineBBox() {
		t.Fatalf("ExtentOf after update = %v", got)
	}
}
