// Package gridindex implements the in-memory M×M grid index over query
// quarantine areas (Section 3.3). Each cell's bucket lists the queries whose
// quarantine area overlaps the cell, so that a location update only needs to
// inspect the buckets of the cells containing the old and new positions, and
// safe-region computation only needs the "relevant queries" of the object's
// cell.
package gridindex

import (
	"fmt"
	"sort"

	"srb/internal/geom"
	"srb/internal/query"
)

// Grid partitions space into M×M uniform cells, each holding the queries
// whose quarantine bounding box overlaps it.
type Grid struct {
	m     int
	space geom.Rect
	cw    float64 // cell width
	ch    float64 // cell height
	cells []bucket
	// extent remembers the bbox each query was inserted with, so removal and
	// in-place quarantine updates do not depend on the query's mutable state.
	extent map[query.ID]geom.Rect
	size   int
}

type bucket []*query.Query

// New creates an M×M grid over the given space. m must be ≥ 1.
func New(m int, space geom.Rect) *Grid {
	if m < 1 {
		m = 1
	}
	return &Grid{
		m:      m,
		space:  space,
		cw:     space.Width() / float64(m),
		ch:     space.Height() / float64(m),
		cells:  make([]bucket, m*m),
		extent: make(map[query.ID]geom.Rect),
	}
}

// M returns the grid resolution.
func (g *Grid) M() int { return g.m }

// Space returns the indexed space.
func (g *Grid) Space() geom.Rect { return g.space }

// Len returns the number of indexed queries.
func (g *Grid) Len() int { return g.size }

// CellOf returns the (column, row) of the cell containing p, clamped into the
// grid for points on or beyond the boundary.
func (g *Grid) CellOf(p geom.Point) (int, int) {
	i := int((p.X - g.space.MinX) / g.cw)
	j := int((p.Y - g.space.MinY) / g.ch)
	return clampIdx(i, g.m), clampIdx(j, g.m)
}

// CellRect returns the rectangle of cell (i, j).
func (g *Grid) CellRect(i, j int) geom.Rect {
	return geom.Rect{
		MinX: g.space.MinX + float64(i)*g.cw,
		MinY: g.space.MinY + float64(j)*g.ch,
		MaxX: g.space.MinX + float64(i+1)*g.cw,
		MaxY: g.space.MinY + float64(j+1)*g.ch,
	}
}

// CellRectOf returns the rectangle of the cell containing p.
func (g *Grid) CellRectOf(p geom.Point) geom.Rect {
	i, j := g.CellOf(p)
	return g.CellRect(i, j)
}

// Insert indexes q under every cell its quarantine bbox overlaps.
func (g *Grid) Insert(q *query.Query) {
	bb := q.QuarantineBBox()
	g.extent[q.ID] = bb
	g.size++
	g.forEachCell(bb, func(c *bucket) {
		*c = insertSorted(*c, q)
	})
}

// Remove drops q from the index, reporting whether it was present.
func (g *Grid) Remove(q *query.Query) bool {
	bb, ok := g.extent[q.ID]
	if !ok {
		return false
	}
	delete(g.extent, q.ID)
	g.size--
	g.forEachCell(bb, func(c *bucket) {
		*c = removeSorted(*c, q.ID)
	})
	return true
}

// Update re-indexes q after its quarantine area changed.
func (g *Grid) Update(q *query.Query) {
	//lint:allow floatcmp cache-invalidation identity: any bit change must re-index
	if bb, ok := g.extent[q.ID]; ok && bb == q.QuarantineBBox() {
		return
	}
	g.Remove(q)
	g.Insert(q)
}

// At returns the bucket of the cell containing p. The returned slice is
// sorted by query ID and must not be modified.
func (g *Grid) At(p geom.Point) []*query.Query {
	i, j := g.CellOf(p)
	//lint:allow sliceescape documented read-only view; copying per probe would dominate the hot path
	return g.cells[j*g.m+i]
}

// NeighborhoodRect returns the rectangle covering the (2r+1)×(2r+1) block of
// cells centered on p's cell, clamped to the grid (Section 7.4 suggests
// enlarging the safe-region cell to the neighborhood when server load
// permits).
func (g *Grid) NeighborhoodRect(p geom.Point, r int) geom.Rect {
	i, j := g.CellOf(p)
	lo := g.CellRect(clampIdx(i-r, g.m), clampIdx(j-r, g.m))
	hi := g.CellRect(clampIdx(i+r, g.m), clampIdx(j+r, g.m))
	return lo.Union(hi)
}

// AtNeighborhood returns the union of the buckets of the (2r+1)×(2r+1) block
// of cells centered on p's cell, deduplicated and sorted by query ID.
func (g *Grid) AtNeighborhood(p geom.Point, r int) []*query.Query {
	if r <= 0 {
		return g.At(p)
	}
	ci, cj := g.CellOf(p)
	var out []*query.Query
	seen := make(map[query.ID]bool)
	for j := clampIdx(cj-r, g.m); j <= clampIdx(cj+r, g.m); j++ {
		for i := clampIdx(ci-r, g.m); i <= clampIdx(ci+r, g.m); i++ {
			for _, q := range g.cells[j*g.m+i] {
				if !seen[q.ID] {
					seen[q.ID] = true
					out = append(out, q)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Affected returns, in ID order without duplicates, every query in the
// buckets of pLst's and p's cells whose result may change for an object that
// moved from pLst to p (Section 3.3).
func (g *Grid) Affected(pLst, p geom.Point) []*query.Query {
	a := g.At(p)
	b := g.At(pLst)
	out := make([]*query.Query, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(q *query.Query) {
		if q.Affected(pLst, p) {
			out = append(out, q)
		}
	}
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID == b[j].ID:
			push(a[i])
			i++
			j++
		case a[i].ID < b[j].ID:
			push(a[i])
			i++
		default:
			push(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

func (g *Grid) forEachCell(bb geom.Rect, fn func(*bucket)) {
	bb = bb.Intersect(g.space)
	if !bb.IsValid() {
		return
	}
	i0, j0 := g.CellOf(geom.Point{X: bb.MinX, Y: bb.MinY})
	i1, j1 := g.CellOf(geom.Point{X: bb.MaxX, Y: bb.MaxY})
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			fn(&g.cells[j*g.m+i])
		}
	}
}

func insertSorted(b bucket, q *query.Query) bucket {
	i := sort.Search(len(b), func(i int) bool { return b[i].ID >= q.ID })
	if i < len(b) && b[i].ID == q.ID {
		b[i] = q
		return b
	}
	b = append(b, nil)
	copy(b[i+1:], b[i:])
	b[i] = q
	return b
}

func removeSorted(b bucket, id query.ID) bucket {
	i := sort.Search(len(b), func(i int) bool { return b[i].ID >= id })
	if i < len(b) && b[i].ID == id {
		return append(b[:i], b[i+1:]...)
	}
	return b
}

func clampIdx(i, m int) int {
	if i < 0 {
		return 0
	}
	if i >= m {
		return m - 1
	}
	return i
}

// ExtentOf returns the quarantine bounding box a query was last indexed
// under; diagnostic helper.
func (g *Grid) ExtentOf(id query.ID) geom.Rect {
	return g.extent[id]
}

// CheckInvariants validates the internal consistency of the index: the size
// counter matches the extent table, every bucket is strictly sorted by query
// ID and references only indexed queries, and every query appears in exactly
// the buckets of the cells its recorded extent overlaps. Intended for tests
// and the srbdebug build.
func (g *Grid) CheckInvariants() error {
	if g.size != len(g.extent) {
		return fmt.Errorf("grid: size counter %d != %d recorded extents", g.size, len(g.extent))
	}
	counts := make(map[query.ID]int)
	for idx, b := range g.cells {
		for k, q := range b {
			if k > 0 && b[k-1].ID >= q.ID {
				return fmt.Errorf("grid: cell %d bucket not strictly sorted: ids %d, %d adjacent", idx, b[k-1].ID, q.ID)
			}
			if _, ok := g.extent[q.ID]; !ok {
				return fmt.Errorf("grid: cell %d holds query %d with no recorded extent", idx, q.ID)
			}
			counts[q.ID]++
		}
	}
	for id, bb := range g.extent {
		want := 0
		present := true
		g.forEachCell(bb, func(c *bucket) {
			want++
			b := *c
			i := sort.Search(len(b), func(i int) bool { return b[i].ID >= id })
			if i >= len(b) || b[i].ID != id {
				present = false
			}
		})
		if !present {
			return fmt.Errorf("grid: query %d missing from a cell its extent %v overlaps", id, bb)
		}
		if counts[id] != want {
			return fmt.Errorf("grid: query %d appears in %d buckets, extent %v overlaps %d cells", id, counts[id], bb, want)
		}
	}
	return nil
}
