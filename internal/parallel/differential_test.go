package parallel_test

// Differential harness for the batch pipeline's determinism contract: a
// sequential Monitor and a ParallelMonitor are driven with the identical
// seeded random-waypoint workload — honest exit-driven reporting, range +
// kNN queries with register/deregister churn, object churn — and every tick
// asserts bit-identical safe-region streams, result-update streams, Stats
// counters, per-query results, and per-object safe regions. The parallel
// side receives each tick's batch in shuffled order, so the run also proves
// the ascending-object-ID normalization. The whole suite repeats at
// GOMAXPROCS 1, 4, and 8.

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"srb"
	"srb/internal/mobility"
)

// diffConfig sizes one differential scenario.
type diffConfig struct {
	seed    int64
	opt     srb.Options
	workers int
	nObj    int
	nQuery  int
	ticks   int
	dt      float64
}

func baseOptions() srb.Options {
	return srb.Options{
		Space: srb.R(0, 0, 1, 1),
		GridM: 10,
	}
}

func enhancedOptions() srb.Options {
	o := baseOptions()
	o.MaxSpeed = 0.2
	o.Steadiness = 0.5
	o.CellNeighborhood = 1
	return o
}

func TestDifferentialParallelVsSequential(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  diffConfig
	}{
		{"base", diffConfig{seed: 1, opt: baseOptions(), workers: 4, nObj: 150, nQuery: 12, ticks: 30, dt: 0.4}},
		{"enhanced", diffConfig{seed: 2, opt: enhancedOptions(), workers: 4, nObj: 120, nQuery: 10, ticks: 25, dt: 0.4}},
		{"single-worker", diffConfig{seed: 3, opt: baseOptions(), workers: 1, nObj: 100, nQuery: 8, ticks: 20, dt: 0.4}},
	}
	for _, gmp := range []int{1, 4, 8} {
		gmp := gmp
		t.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(t *testing.T) {
			// GOMAXPROCS is process-global: subtests must stay serial.
			prev := runtime.GOMAXPROCS(gmp)
			defer runtime.GOMAXPROCS(prev)
			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) { runDifferential(t, sc.cfg) })
			}
		})
	}
}

// runDifferential drives both monitor variants through the workload and
// fails on the first divergence.
func runDifferential(t *testing.T, cfg diffConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.seed))

	// Shared ground truth: both sides' probes answer with the object's exact
	// current position, so probe outcomes cannot diverge.
	pos := make(map[uint64]srb.Point)
	prober := srb.ProberFunc(func(id uint64) srb.Point { return pos[id] })

	var seqPushed, parPushed []srb.ResultUpdate
	seq := srb.NewMonitor(cfg.opt, prober, func(u srb.ResultUpdate) { seqPushed = append(seqPushed, u) })
	par := srb.NewParallelMonitor(cfg.opt, cfg.workers, prober, func(u srb.ResultUpdate) { parPushed = append(parPushed, u) })

	checkPushed := func(ctx string) {
		t.Helper()
		if !reflect.DeepEqual(seqPushed, parPushed) {
			t.Fatalf("%s: result-update streams diverged\nseq: %v\npar: %v", ctx, seqPushed, parPushed)
		}
		seqPushed, parPushed = nil, nil
	}
	checkState := func(ctx string, qids []srb.QueryID) {
		t.Helper()
		if s, p := seq.Stats(), par.Stats(); s != p {
			t.Fatalf("%s: stats diverged\nseq: %+v\npar: %+v", ctx, s, p)
		}
		for _, qid := range qids {
			sr, sok := seq.Results(qid)
			pr, pok := par.Results(qid)
			if sok != pok || !reflect.DeepEqual(sr, pr) {
				t.Fatalf("%s: query %d results diverged\nseq: %v (%v)\npar: %v (%v)", ctx, qid, sr, sok, pr, pok)
			}
		}
		for id := range pos {
			sr, sok := seq.SafeRegion(id)
			pr, pok := par.SafeRegion(id)
			//lint:allow floatcmp differential oracle: the contract is bit-identical state
			if sok != pok || sr != pr {
				t.Fatalf("%s: object %d safe region diverged\nseq: %v (%v)\npar: %v (%v)", ctx, id, sr, sok, pr, pok)
			}
		}
		if seq.NumObjects() != par.NumObjects() || seq.NumQueries() != par.NumQueries() {
			t.Fatalf("%s: population diverged: %d/%d objects, %d/%d queries",
				ctx, seq.NumObjects(), par.NumObjects(), seq.NumQueries(), par.NumQueries())
		}
	}

	// Registration phase at t=0: objects first, then the query workload.
	walkers := make(map[uint64]*mobility.Waypoint, cfg.nObj)
	seq.SetTime(0)
	par.SetTime(0)
	for i := 0; i < cfg.nObj; i++ {
		id := uint64(i)
		start := srb.Pt(rng.Float64(), rng.Float64())
		walkers[id] = mobility.NewWaypoint(cfg.seed, id, cfg.opt.Space, 0.08, 2, start)
		pos[id] = start
		su := seq.AddObject(id, start)
		pu := par.AddObject(id, start)
		if !reflect.DeepEqual(su, pu) {
			t.Fatalf("AddObject(%d): regions diverged\nseq: %v\npar: %v", id, su, pu)
		}
	}

	var qids []srb.QueryID
	nextQID := srb.QueryID(1)
	registerOne := func(ctx string) {
		t.Helper()
		qid := nextQID
		nextQID++
		var sres, pres []uint64
		var sups, pups []srb.SafeRegionUpdate
		var serr, perr error
		if rng.Intn(2) == 0 {
			x, y := rng.Float64(), rng.Float64()
			w, h := 0.05+rng.Float64()*0.15, 0.05+rng.Float64()*0.15
			r := srb.R(x, y, x+w, y+h)
			sres, sups, serr = seq.RegisterRange(qid, r)
			pres, pups, perr = par.RegisterRange(qid, r)
		} else {
			c := srb.Pt(rng.Float64(), rng.Float64())
			k := 1 + rng.Intn(5)
			ordered := rng.Intn(2) == 0
			sres, sups, serr = seq.RegisterKNN(qid, c, k, ordered)
			pres, pups, perr = par.RegisterKNN(qid, c, k, ordered)
		}
		if (serr == nil) != (perr == nil) {
			t.Fatalf("%s: register %d error diverged: %v vs %v", ctx, qid, serr, perr)
		}
		if serr == nil {
			qids = append(qids, qid)
		}
		if !reflect.DeepEqual(sres, pres) || !reflect.DeepEqual(sups, pups) {
			t.Fatalf("%s: register %d outcome diverged\nseq: %v %v\npar: %v %v", ctx, qid, sres, sups, pres, pups)
		}
	}
	for i := 0; i < cfg.nQuery; i++ {
		registerOne("initial registration")
	}
	checkPushed("after registration")
	checkState("after registration", qids)

	var removed []uint64 // object-churn victims awaiting re-add
	for tick := 1; tick <= cfg.ticks; tick++ {
		now := float64(tick) * cfg.dt
		ctx := fmt.Sprintf("tick %d", tick)
		seq.SetTime(now)
		par.SetTime(now)

		// Move everyone, then report honestly: exactly the objects that left
		// their safe region send an update.
		var batch []srb.ObjectUpdate
		for id, w := range walkers {
			p := w.At(now)
			pos[id] = p
			if r, ok := seq.SafeRegion(id); ok && !r.Contains(p) {
				batch = append(batch, srb.ObjectUpdate{ID: id, Loc: p})
			}
		}

		// Sequential side: ascending object-ID order — the order the contract
		// normalizes to.
		ordered := append([]srb.ObjectUpdate(nil), batch...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
		var sups []srb.SafeRegionUpdate
		for _, u := range ordered {
			sups = append(sups, seq.Update(u.ID, u.Loc)...)
		}
		// Parallel side: the same batch in shuffled arrival order.
		rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
		pups := par.UpdateBatch(batch)
		if !reflect.DeepEqual(sups, pups) {
			t.Fatalf("%s: safe-region streams diverged (%d updates)\nseq: %v\npar: %v", ctx, len(ordered), sups, pups)
		}
		checkPushed(ctx)
		checkState(ctx, qids)

		// Query churn: replace the oldest query every few ticks.
		if tick%4 == 0 && len(qids) > 0 {
			victim := qids[0]
			qids = qids[1:]
			sok := seq.Deregister(victim)
			pok := par.Deregister(victim)
			if sok != pok {
				t.Fatalf("%s: deregister %d diverged: %v vs %v", ctx, victim, sok, pok)
			}
			registerOne(ctx)
			checkPushed(ctx + " (query churn)")
			checkState(ctx+" (query churn)", qids)
		}
		// Object churn: remove one object, re-add it two ticks later at its
		// then-current position.
		if tick%7 == 0 {
			id := uint64(rng.Intn(cfg.nObj))
			if _, ok := pos[id]; ok {
				su := seq.RemoveObject(id)
				pu := par.RemoveObject(id)
				if !reflect.DeepEqual(su, pu) {
					t.Fatalf("%s: RemoveObject(%d) diverged\nseq: %v\npar: %v", ctx, id, su, pu)
				}
				delete(pos, id)
				removed = append(removed, id)
			}
		}
		if tick%7 == 2 && len(removed) > 0 {
			id := removed[0]
			removed = removed[1:]
			p := walkers[id].At(now)
			pos[id] = p
			su := seq.AddObject(id, p)
			pu := par.AddObject(id, p)
			if !reflect.DeepEqual(su, pu) {
				t.Fatalf("%s: re-AddObject(%d) diverged\nseq: %v\npar: %v", ctx, id, su, pu)
			}
			checkPushed(ctx + " (object churn)")
			checkState(ctx+" (object churn)", qids)
		}
	}

	// The harness only proves something about the parallel path if the fast
	// path actually ran; a workload where every update conflicts would pass
	// vacuously.
	bs := par.BatchStats()
	if bs.Updates == 0 {
		t.Fatalf("workload produced no batched updates")
	}
	if bs.Fast == 0 {
		t.Fatalf("no update took the fast path (stats %+v): scenario too dense to exercise the pipeline", bs)
	}
	t.Logf("batch stats: %+v (fast path %.0f%%)", bs, 100*float64(bs.Fast)/float64(bs.Updates))
}
