package parallel

import (
	"math/rand"
	"reflect"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
)

// ledgerSum folds every ledger bucket — per-query entries, Unattributed,
// Retired — into one total, the left-hand side of the sum invariant.
func ledgerSum(m *core.Monitor) core.QueryCost {
	var sum core.QueryCost
	for _, e := range m.QueryCosts() {
		sum.Updates += e.Updates
		sum.Probes += e.Probes
		sum.ProbesAvoided += e.ProbesAvoided
		sum.Shrinks += e.Shrinks
		sum.SafeRegions += e.SafeRegions
		sum.Reevals += e.Reevals
		sum.FullReevals += e.FullReevals
		sum.NewQueryEvals += e.NewQueryEvals
		sum.ResultChanges += e.ResultChanges
		sum.KNNCase1 += e.KNNCase1
		sum.KNNCase2 += e.KNNCase2
		sum.KNNCase3 += e.KNNCase3
	}
	for _, e := range []core.QueryCost{m.UnattributedCost(), m.RetiredCost()} {
		sum.Updates += e.Updates
		sum.Probes += e.Probes
		sum.ProbesAvoided += e.ProbesAvoided
		sum.Shrinks += e.Shrinks
		sum.SafeRegions += e.SafeRegions
		sum.Reevals += e.Reevals
		sum.FullReevals += e.FullReevals
		sum.NewQueryEvals += e.NewQueryEvals
		sum.ResultChanges += e.ResultChanges
		sum.KNNCase1 += e.KNNCase1
		sum.KNNCase2 += e.KNNCase2
		sum.KNNCase3 += e.KNNCase3
	}
	return sum
}

// checkBatchLedgerMirror asserts the sum invariant against the global registry
// counters for every mirrored family, on a monitor driven through the batch
// pipeline.
func checkBatchLedgerMirror(t *testing.T, m *core.Monitor, r *obs.Registry) {
	t.Helper()
	sum := ledgerSum(m)
	for _, tc := range []struct {
		name string
		got  int64
	}{
		{"srb_updates_total", sum.Updates},
		{"srb_probes_total", sum.Probes},
		{"srb_probes_avoided_total", sum.ProbesAvoided},
		{"srb_virtual_probes_total", sum.Shrinks},
		{"srb_reevaluations_total", sum.Reevals},
		{"srb_full_reevaluations_total", sum.FullReevals},
		{"srb_new_query_evals_total", sum.NewQueryEvals},
		{"srb_safe_regions_built_total", sum.SafeRegions},
		{"srb_result_changes_total", sum.ResultChanges},
	} {
		if want := r.Counter(tc.name, "").Value(); tc.got != want {
			t.Errorf("batch ledger sum %d != global counter %s %d", tc.got, tc.name, want)
		}
	}
	for i, got := range []int64{sum.KNNCase1, sum.KNNCase2, sum.KNNCase3} {
		name := string(rune('1' + i))
		if want := r.Counter("srb_knn_case_total", "", "case", name).Value(); got != want {
			t.Errorf("batch ledger kNN case %s sum %d != counter %d", name, got, want)
		}
	}
}

// batchLedgerWorld is one instrumented monitor under test: the sequential
// reference applies updates directly, the pipeline one through ApplyEach.
type batchLedgerWorld struct {
	mon  *core.Monitor
	pos  map[uint64]geom.Point
	sink *obs.Sink
}

func newBatchLedgerWorld(opt core.Options) *batchLedgerWorld {
	w := &batchLedgerWorld{pos: map[uint64]geom.Point{}}
	w.mon = core.New(opt, core.ProberFunc(func(id uint64) geom.Point { return w.pos[id] }), nil)
	w.sink = obs.NewSink(obs.NewRegistry(), nil)
	w.mon.SetObs(w.sink)
	return w
}

func registerBatchQuery(t *testing.T, m *core.Monitor, id query.ID, rng *rand.Rand) {
	t.Helper()
	var err error
	switch id % 4 {
	case 0:
		_, _, err = m.RegisterRange(id, geom.R(rng.Float64()*60, rng.Float64()*60, rng.Float64()*40+60, rng.Float64()*40+60))
	case 1:
		_, _, err = m.RegisterKNN(id, geom.Pt(rng.Float64()*100, rng.Float64()*100), 4, id%8 == 1)
	case 2:
		_, _, err = m.RegisterWithinDistance(id, geom.Pt(rng.Float64()*100, rng.Float64()*100), 15+rng.Float64()*10)
	default:
		_, _, err = m.RegisterCount(id, geom.R(rng.Float64()*60, rng.Float64()*60, rng.Float64()*40+60, rng.Float64()*40+60))
	}
	if err != nil {
		t.Fatalf("register query %d: %v", id, err)
	}
}

// TestLedgerBatchPathMirrorsCounters drives a seeded workload with query and
// object churn through the batch pipeline and proves the ledger sum invariant
// on the batch path: per-query totals plus the Unattributed and Retired
// buckets sum exactly to the global obs counters after every tick. A
// sequential reference monitor runs the identical workload (updates applied in
// ascending object-ID order, the pipeline's determinism contract) and must end
// with a bit-identical ledger — fast-path applies book the same Unattributed
// work a sequential primary update would.
func TestLedgerBatchPathMirrorsCounters(t *testing.T) {
	opt := core.Options{GridM: 12, MaxSpeed: 30}
	seq := newBatchLedgerWorld(opt)
	par := newBatchLedgerWorld(opt)
	pipe := New(par.mon, 4)

	rng := rand.New(rand.NewSource(1234))
	now := 0.0
	tickTime := func() {
		now += 0.05
		seq.mon.SetTime(now)
		par.mon.SetTime(now)
	}

	const nObj = 40
	for i := 0; i < nObj; i++ {
		tickTime()
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		seq.pos[uint64(i)] = p
		par.pos[uint64(i)] = p
		seq.mon.AddObject(uint64(i), p)
		par.mon.AddObject(uint64(i), p)
	}
	nextQ := query.ID(1)
	oldestQ := nextQ
	for i := 0; i < 6; i++ {
		qrng := rand.New(rand.NewSource(int64(nextQ)))
		registerBatchQuery(t, seq.mon, nextQ, qrng)
		qrng = rand.New(rand.NewSource(int64(nextQ)))
		registerBatchQuery(t, par.mon, nextQ, qrng)
		nextQ++
	}

	for tick := 0; tick < 40; tick++ {
		tickTime()
		// Query churn every 4 ticks: retire the oldest, register a fresh one,
		// exercising the Retired aggregate on both paths.
		if tick%4 == 3 {
			seq.mon.Deregister(oldestQ)
			par.mon.Deregister(oldestQ)
			oldestQ++
			qrng := rand.New(rand.NewSource(int64(nextQ)))
			registerBatchQuery(t, seq.mon, nextQ, qrng)
			qrng = rand.New(rand.NewSource(int64(nextQ)))
			registerBatchQuery(t, par.mon, nextQ, qrng)
			nextQ++
		}
		// Build one tick's batch in shuffled arrival order; the sequential
		// reference applies it in ascending object-ID order per the contract.
		ids := rng.Perm(nObj)[:12]
		batch := make([]Update, 0, len(ids))
		for _, i := range ids {
			id := uint64(i)
			p := par.pos[id]
			np := geom.Pt(clampCoord(p.X+rng.Float64()*8-4), clampCoord(p.Y+rng.Float64()*8-4))
			batch = append(batch, Update{ID: id, Loc: np})
		}
		for _, u := range batch {
			seq.pos[u.ID] = u.Loc
			par.pos[u.ID] = u.Loc
		}
		ordered := append([]Update(nil), batch...)
		for i := 1; i < len(ordered); i++ {
			for j := i; j > 0 && ordered[j].ID < ordered[j-1].ID; j-- {
				ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
			}
		}
		for _, u := range ordered {
			seq.mon.Update(u.ID, u.Loc)
		}
		pipe.Apply(batch)
		checkBatchLedgerMirror(t, par.mon, par.sink.Registry())
	}

	st := pipe.Stats()
	if st.Fast == 0 {
		t.Fatalf("batch workload never took the fast path: %+v", st)
	}
	if st.Fallback == 0 {
		t.Fatalf("batch workload never fell back to the serial path: %+v", st)
	}
	if par.mon.UnattributedCost().Updates == 0 {
		t.Error("no unattributed updates; fast path should book there")
	}
	if par.mon.RetiredQueries() == 0 {
		t.Error("query churn produced no retired ledger entries")
	}

	// Determinism contract extends to the ledger: identical workload, identical
	// per-query attribution on both paths.
	if got, want := par.mon.QueryCosts(), seq.mon.QueryCosts(); !reflect.DeepEqual(got, want) {
		t.Errorf("batch ledger entries diverge from sequential:\n batch: %+v\n   seq: %+v", got, want)
	}
	if got, want := par.mon.UnattributedCost(), seq.mon.UnattributedCost(); got != want {
		t.Errorf("batch Unattributed diverges: %+v vs %+v", got, want)
	}
	if got, want := par.mon.RetiredCost(), seq.mon.RetiredCost(); got != want {
		t.Errorf("batch Retired diverges: %+v vs %+v", got, want)
	}
	checkBatchLedgerMirror(t, seq.mon, seq.sink.Registry())
}

func clampCoord(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// TestApplyEachCtxBeforeHook pins the ApplyEachCtx contract the remote server
// relies on for causal tracing: before fires exactly once per update, in
// application order (ascending object ID), each invocation strictly preceding
// that update's emit.
func TestApplyEachCtxBeforeHook(t *testing.T) {
	pos := map[uint64]geom.Point{}
	mon := core.New(core.Options{GridM: 8}, core.ProberFunc(func(id uint64) geom.Point { return pos[id] }), nil)
	for i := 0; i < 8; i++ {
		pos[uint64(i)] = geom.Pt(float64(i)*10, float64(i)*10)
		mon.AddObject(uint64(i), pos[uint64(i)])
	}
	if _, _, err := mon.RegisterRange(1, geom.R(5, 5, 55, 55)); err != nil {
		t.Fatal(err)
	}
	pipe := New(mon, 2)

	batch := []Update{{ID: 5, Loc: geom.Pt(51, 51)}, {ID: 2, Loc: geom.Pt(22, 21)}, {ID: 7, Loc: geom.Pt(71, 70)}, {ID: 0, Loc: geom.Pt(1, 2)}}
	for _, u := range batch {
		pos[u.ID] = u.Loc
	}
	var beforeOrder, emitOrder []int
	pipe.ApplyEachCtx(batch,
		func(i int) { beforeOrder = append(beforeOrder, i) },
		func(i int, _ []core.SafeRegionUpdate) { emitOrder = append(emitOrder, i) })

	want := []int{3, 1, 0, 2} // batch indices in ascending object-ID order
	if !reflect.DeepEqual(beforeOrder, want) {
		t.Errorf("before order = %v, want %v", beforeOrder, want)
	}
	if !reflect.DeepEqual(emitOrder, want) {
		t.Errorf("emit order = %v, want %v", emitOrder, want)
	}
}
