// Package parallel implements the sharded batch update pipeline over the
// core Monitor: a tick's location updates are partitioned — via the grid
// query index — into a conflict-free group (movements touching no quarantine
// area and owned by objects in no result) and a conflicting residue. The
// conflict-free group's work, dominated by the Section 5 safe-region
// geometry, is precomputed on a bounded worker pool; the residue and all
// state mutation run serially in deterministic ascending object-ID order.
//
// The determinism contract: Pipeline.Apply(batch) leaves the monitor in a
// state bit-identical to calling Monitor.Update for every entry in ascending
// object-ID order (input order among duplicate IDs), returns the identical
// concatenated safe-region refreshes, publishes the identical result
// updates, and advances Stats identically. The fast path is only taken when
// core.ApplyPlanned can prove the precomputed geometry still matches, so the
// contract holds by construction; differential_test.go enforces it against
// the sequential monitor, metamorphic_test.go against the brute-force
// oracle in internal/exact.
package parallel

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
)

// Update is one location report in a batch: object id and its new exact
// position.
type Update struct {
	ID  uint64
	Loc geom.Point
}

// Stats counts the pipeline's partitioning effectiveness. Planned/Fast tell
// how much of the workload escaped the serial path; Fallback counts updates
// that took the sequential path (never planned, plan invalidated by an
// earlier conflicting update, or duplicate IDs within one batch).
type Stats struct {
	Batches  int64
	Updates  int64
	Planned  int64 // updates planned by the parallel phase
	Fast     int64 // plans that validated and applied on the fast path
	Fallback int64 // updates applied through the sequential path
}

// Pipeline batches location updates into a core Monitor. It is not safe for
// concurrent use; callers serialize Apply with every other monitor operation
// (srb.ParallelMonitor does so with an RWMutex, internal/remote with its
// event loop).
type Pipeline struct {
	mon     *core.Monitor
	workers int
	stats   Stats
	obs     *pipeObs
}

// New creates a pipeline over mon with the given worker-pool size; workers
// <= 0 selects GOMAXPROCS.
func New(mon *core.Monitor, workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{mon: mon, workers: workers}
}

// Workers returns the worker-pool size.
func (p *Pipeline) Workers() int { return p.workers }

// Stats returns the pipeline's partitioning counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Monitor returns the wrapped monitor.
func (p *Pipeline) Monitor() *core.Monitor { return p.mon }

// Apply processes a batch of location updates, equivalent to calling
// Monitor.Update for every entry in ascending object-ID order, and returns
// the concatenated safe-region refreshes in that order.
//
//srb:hotpath
func (p *Pipeline) Apply(batch []Update) []core.SafeRegionUpdate {
	var out []core.SafeRegionUpdate
	p.ApplyEach(batch, func(_ int, ups []core.SafeRegionUpdate) {
		out = append(out, ups...)
	})
	return out
}

// ApplyEach processes a batch like Apply but hands each update's safe-region
// refreshes to emit individually, in application order, together with the
// update's index in the input batch (so callers can route refreshes back to
// the connection that reported the update).
//
//srb:hotpath
func (p *Pipeline) ApplyEach(batch []Update, emit func(i int, ups []core.SafeRegionUpdate)) {
	p.ApplyEachCtx(batch, nil, emit)
}

// ApplyEachCtx is ApplyEach with a per-update context hook: before is invoked
// (when non-nil) immediately before each update's serial application, in
// application order, with the update's index in the input batch. Callers use
// it to install per-update context on the monitor — e.g. the causal trace ID
// of the client frame that carried the update — before the mutation that
// context should tag. The parallel planning phase is read-only and emits no
// events, so a serial-phase hook covers every attributed effect.
//
//srb:hotpath
func (p *Pipeline) ApplyEachCtx(batch []Update, before func(i int), emit func(i int, ups []core.SafeRegionUpdate)) {
	n := len(batch)
	if n == 0 {
		return
	}
	var t0 time.Time
	var obsBefore Stats
	if p.obs != nil {
		t0 = time.Now() //lint:allow wallclock latency instrumentation, never in output
		obsBefore = p.stats
	}
	p.stats.Batches++
	p.stats.Updates += int64(n)

	// Application order: ascending object ID, stable among duplicates. The
	// object ID is the deterministic tie-break the contract is defined over.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return batch[order[a]].ID < batch[order[b]].ID })

	// An object reporting several times in one batch is inherently
	// order-dependent (each update's plan would start from the previous one's
	// outcome); route all its updates to the serial path.
	plannable := make([]bool, n)
	for k := range order {
		i := order[k]
		dup := (k > 0 && batch[order[k-1]].ID == batch[i].ID) ||
			(k+1 < n && batch[order[k+1]].ID == batch[i].ID)
		plannable[i] = !dup
	}

	// Phase 1 — parallel, read-only: precompute the conflict-free updates'
	// safe-region geometry on the worker pool.
	plans := make([]core.PlannedUpdate, n)
	planned := make([]bool, n)
	plan := func(i int) {
		if plannable[i] {
			plans[i], planned[i] = p.mon.PlanUpdate(batch[i].ID, batch[i].Loc)
		}
	}
	if p.workers > 1 && n > 1 {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < p.workers && w < n; w++ {
			wg.Add(1)
			// Counter-gated exit: the loop is bounded by n (each worker claims
			// strictly increasing indices), which goroleak cannot prove.
			go func() { //lint:allow goroleak exit is counter-gated and bounded by n; workers cannot outlive Run
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					plan(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			plan(i)
		}
	}

	var planDone time.Time
	if p.obs != nil {
		planDone = time.Now() //lint:allow wallclock latency instrumentation, never in output
	}

	// Phase 2 — serial, in application order: fast-apply still-valid plans,
	// fall back to the sequential path for the conflicting residue.
	for _, i := range order {
		if before != nil {
			before(i)
		}
		if planned[i] {
			p.stats.Planned++
			if ups, ok := p.mon.ApplyPlanned(&plans[i]); ok {
				p.stats.Fast++
				emit(i, ups)
				continue
			}
		}
		p.stats.Fallback++
		emit(i, p.mon.Update(batch[i].ID, batch[i].Loc))
	}
	if p.obs != nil {
		p.obs.done(p, obsBefore, t0, planDone, time.Now()) //lint:allow wallclock latency instrumentation, never in output
	}
}
