package parallel

import (
	"math/rand"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
)

// TestPipelineObs drives batches through an instrumented pipeline and checks
// that the registry counters mirror the pipeline Stats, the phase histograms
// saw one observation per batch, and the fast-path fraction gauge lands on
// Fast/Updates.
func TestPipelineObs(t *testing.T) {
	pos := map[uint64]geom.Point{}
	mon := core.New(core.Options{GridM: 10}, core.ProberFunc(func(id uint64) geom.Point { return pos[id] }), nil)
	sink := obs.NewSink(obs.NewRegistry(), obs.NewTracer(1024))
	mon.SetObs(sink)
	pipe := New(mon, 2)
	pipe.SetObs(sink)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		pos[uint64(i)] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		mon.AddObject(uint64(i), pos[uint64(i)])
	}
	if _, _, err := mon.RegisterRange(1, geom.R(20, 20, 70, 70)); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 8; b++ {
		batch := make([]Update, 0, 25)
		for i := 0; i < 25; i++ {
			id := uint64(rng.Intn(50))
			p := pos[id]
			np := geom.Pt(p.X+rng.Float64()*10-5, p.Y+rng.Float64()*10-5)
			pos[id] = np
			batch = append(batch, Update{ID: id, Loc: np})
		}
		pipe.Apply(batch)
	}

	st := pipe.Stats()
	r := sink.Registry()
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"srb_batch_batches_total", st.Batches},
		{"srb_batch_updates_total", st.Updates},
		{"srb_batch_planned_total", st.Planned},
		{"srb_batch_fast_total", st.Fast},
		{"srb_batch_fallback_total", st.Fallback},
	} {
		if got := r.Counter(tc.name, "").Value(); got != tc.want {
			t.Errorf("%s = %d, want %d (Stats mirror)", tc.name, got, tc.want)
		}
	}
	if st.Fast+st.Fallback != st.Updates {
		t.Fatalf("stats do not partition: %+v", st)
	}
	for _, phase := range []string{"plan", "apply"} {
		h := r.Histogram("srb_batch_phase_seconds", "", obs.LatencyBuckets(), "phase", phase)
		if h.Count() != st.Batches {
			t.Errorf("phase %q histogram count = %d, want %d", phase, h.Count(), st.Batches)
		}
	}
	if h := r.Histogram("srb_batch_size", "", obs.SizeBuckets()); h.Count() != st.Batches || h.Sum() != float64(st.Updates) {
		t.Errorf("batch size histogram count/sum = %d/%g, want %d/%d", h.Count(), h.Sum(), st.Batches, st.Updates)
	}
	wantFrac := float64(st.Fast) / float64(st.Updates)
	//lint:allow floatcmp gauge stores exactly the value computed from the same integers
	if got := r.Gauge("srb_batch_fastpath_fraction", "").Value(); got != wantFrac {
		t.Errorf("fastpath fraction = %g, want %g", got, wantFrac)
	}
	// Phase spans landed in the tracer.
	var plan, apply bool
	for _, e := range sink.Tracer().Events() {
		if e.Cat == "batch" && e.Name == "plan" {
			plan = true
		}
		if e.Cat == "batch" && e.Name == "apply" {
			apply = true
		}
	}
	if !plan || !apply {
		t.Errorf("missing batch phase spans (plan=%v apply=%v)", plan, apply)
	}

	// SetObs(nil) detaches; further batches must not advance the counters.
	pipe.SetObs(nil)
	before := r.Counter("srb_batch_batches_total", "").Value()
	pipe.Apply([]Update{{ID: 1, Loc: pos[1]}})
	if got := r.Counter("srb_batch_batches_total", "").Value(); got != before {
		t.Errorf("detached pipeline still counting: %d -> %d", before, got)
	}
}
