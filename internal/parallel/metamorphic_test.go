package parallel_test

// Metamorphic properties of the batch pipeline checked against the
// brute-force oracle in internal/exact:
//
//   - permutation invariance: one batch tick applied in any input order
//     leaves the monitor in the identical state;
//   - register→deregister→register idempotence: a query re-registered after
//     removal reports the same (oracle-verified) result and leaves the same
//     state behind as the first registration;
//   - snapshot round-trips: SaveSnapshot/LoadSnapshot reproduce results for
//     both the sequential Monitor and the ParallelMonitor.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"srb"
	"srb/internal/exact"
)

// sortedSet returns a sorted copy for order-insensitive set comparison
// (range results are sets; their reporting order is unspecified).
func sortedSet(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// popWorld builds a seeded random population in a ParallelMonitor and the
// exact-oracle index side by side.
func popWorld(seed int64, n, workers int) (*srb.ParallelMonitor, *exact.Index, map[uint64]srb.Point, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	pos := make(map[uint64]srb.Point)
	mon := srb.NewParallelMonitor(baseOptions(), workers, srb.ProberFunc(func(id uint64) srb.Point { return pos[id] }), nil)
	oracle := exact.New(10, baseOptions().Space)
	mon.SetTime(0)
	for i := 0; i < n; i++ {
		id := uint64(i)
		p := srb.Pt(rng.Float64(), rng.Float64())
		pos[id] = p
		mon.AddObject(id, p)
		oracle.Set(id, p)
	}
	return mon, oracle, pos, rng
}

// monitorFingerprint captures the externally observable state: every query's
// results and every object's safe region, in a canonical order.
func monitorFingerprint(mon *srb.ParallelMonitor, qids []srb.QueryID, pos map[uint64]srb.Point) string {
	var buf bytes.Buffer
	for _, qid := range qids {
		r, ok := mon.Results(qid)
		fmt.Fprintf(&buf, "q%d:%v:%v\n", qid, ok, r)
	}
	ids := make([]uint64, 0, len(pos))
	for id := range pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r, ok := mon.SafeRegion(id)
		fmt.Fprintf(&buf, "o%d:%v:%v\n", id, ok, r)
	}
	fmt.Fprintf(&buf, "stats:%+v\n", mon.Stats())
	return buf.String()
}

func TestMetamorphicBatchPermutationInvariance(t *testing.T) {
	const n, nPerm = 120, 5
	// Build the identical world nPerm times and apply the identical batch in
	// a different input order each time; all final states must coincide.
	var want string
	for perm := 0; perm < nPerm; perm++ {
		mon, oracle, pos, rng := popWorld(11, n, 4)
		var qids []srb.QueryID
		ranges := make(map[srb.QueryID]srb.Rect)
		for q := 0; q < 8; q++ {
			qid := srb.QueryID(q + 1)
			if q%2 == 0 {
				x, y := rng.Float64(), rng.Float64()
				r := srb.R(x, y, x+0.15, y+0.15)
				if _, _, err := mon.RegisterRange(qid, r); err != nil {
					t.Fatal(err)
				}
				ranges[qid] = r
			} else {
				if _, _, err := mon.RegisterKNN(qid, srb.Pt(rng.Float64(), rng.Float64()), 3, true); err != nil {
					t.Fatal(err)
				}
			}
			qids = append(qids, qid)
		}
		// One tick of movement; rng is at the same stream position in every
		// iteration, so the batch content is identical across permutations.
		mon.SetTime(1)
		batch := make([]srb.ObjectUpdate, 0, n)
		for i := 0; i < n; i++ {
			id := uint64(i)
			p := srb.Pt(rng.Float64(), rng.Float64())
			pos[id] = p
			oracle.Set(id, p)
			batch = append(batch, srb.ObjectUpdate{ID: id, Loc: p})
		}
		permRng := rand.New(rand.NewSource(int64(100 + perm)))
		permRng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
		mon.UpdateBatch(batch)

		got := monitorFingerprint(mon, qids, pos)
		if perm == 0 {
			want = got
		} else if got != want {
			t.Fatalf("permutation %d produced a different final state", perm)
		}
		// Range results must also agree with the brute-force oracle: range
		// maintenance is exact once every object has reported its position
		// (every object in this batch did). kNN results are only
		// oracle-checked at registration (see the idempotence test) because
		// continuous kNN maintenance legitimately tolerates bounded staleness.
		for _, qid := range qids {
			r, isRange := ranges[qid]
			if !isRange {
				continue
			}
			got, _ := mon.Results(qid)
			if want := oracle.Range(r); !reflect.DeepEqual(sortedSet(got), want) {
				t.Fatalf("permutation %d: range %d disagrees with oracle\ngot:  %v\nwant: %v", perm, qid, got, want)
			}
		}
	}
}

func TestMetamorphicRegisterDeregisterIdempotence(t *testing.T) {
	mon, oracle, pos, rng := popWorld(22, 150, 4)
	for trial := 0; trial < 10; trial++ {
		qid := srb.QueryID(trial + 1)
		x, y := rng.Float64()*0.8, rng.Float64()*0.8
		r := srb.R(x, y, x+0.2, y+0.2)

		first, _, err := mon.RegisterRange(qid, r)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Range(r); !reflect.DeepEqual(sortedSet(first), want) {
			t.Fatalf("trial %d: first registration disagrees with oracle\ngot:  %v\nwant: %v", trial, first, want)
		}
		if !mon.Deregister(qid) {
			t.Fatalf("trial %d: deregister failed", trial)
		}
		second, _, err := mon.RegisterRange(qid, r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedSet(first), sortedSet(second)) {
			t.Fatalf("trial %d: re-registration changed the result\nfirst:  %v\nsecond: %v", trial, first, second)
		}
		// kNN round-trip: same center and k report the same neighbors, and
		// they match the oracle's distance order.
		kid := srb.QueryID(1000 + trial)
		c := srb.Pt(rng.Float64(), rng.Float64())
		kFirst, _, err := mon.RegisterKNN(kid, c, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		wantK := oracle.KNN(c, 4, nil)
		if len(kFirst) != len(wantK) {
			t.Fatalf("trial %d: kNN size %d, oracle %d", trial, len(kFirst), len(wantK))
		}
		for i, nb := range wantK {
			if kFirst[i] != nb.ID {
				t.Fatalf("trial %d: kNN disagrees with oracle at %d: got %v want %v", trial, i, kFirst, wantK)
			}
		}
		if !mon.Deregister(kid) {
			t.Fatalf("trial %d: kNN deregister failed", trial)
		}
		kSecond, _, err := mon.RegisterKNN(kid, c, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(kFirst, kSecond) {
			t.Fatalf("trial %d: kNN re-registration changed the result\nfirst:  %v\nsecond: %v", trial, kFirst, kSecond)
		}
		if !mon.Deregister(qid) || !mon.Deregister(kid) {
			t.Fatalf("trial %d: cleanup deregister failed", trial)
		}
		_ = pos
	}
}

func TestMetamorphicSnapshotRoundTrip(t *testing.T) {
	// Build a world with some history, snapshot it, restore into both monitor
	// variants, and require identical query results and safe regions.
	mon, _, pos, rng := popWorld(33, 100, 4)
	var qids []srb.QueryID
	for q := 0; q < 6; q++ {
		qid := srb.QueryID(q + 1)
		if q%2 == 0 {
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			if _, _, err := mon.RegisterRange(qid, srb.R(x, y, x+0.2, y+0.2)); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, _, err := mon.RegisterKNN(qid, srb.Pt(rng.Float64(), rng.Float64()), 3, false); err != nil {
				t.Fatal(err)
			}
		}
		qids = append(qids, qid)
	}
	mon.SetTime(1)
	var batch []srb.ObjectUpdate
	for id := range pos {
		p := srb.Pt(rng.Float64(), rng.Float64())
		pos[id] = p
		batch = append(batch, srb.ObjectUpdate{ID: id, Loc: p})
	}
	mon.UpdateBatch(batch)

	var buf bytes.Buffer
	if err := mon.SaveSnapshot(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	snap := buf.Bytes()

	prober := srb.ProberFunc(func(id uint64) srb.Point { return pos[id] })
	seq := srb.NewMonitor(baseOptions(), prober, nil)
	if err := seq.LoadSnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatalf("load into Monitor: %v", err)
	}
	par := srb.NewParallelMonitor(baseOptions(), 4, prober, nil)
	if err := par.LoadSnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatalf("load into ParallelMonitor: %v", err)
	}

	for _, qid := range qids {
		want, wok := mon.Results(qid)
		gotS, sok := seq.Results(qid)
		gotP, pok := par.Results(qid)
		if wok != sok || wok != pok || !reflect.DeepEqual(want, gotS) || !reflect.DeepEqual(want, gotP) {
			t.Fatalf("query %d results diverged after round-trip: src %v, seq %v, par %v", qid, want, gotS, gotP)
		}
	}
	for id := range pos {
		want, wok := mon.SafeRegion(id)
		gotS, sok := seq.SafeRegion(id)
		gotP, pok := par.SafeRegion(id)
		//lint:allow floatcmp snapshot round-trip must be bit-exact
		if wok != sok || wok != pok || want != gotS || want != gotP {
			t.Fatalf("object %d safe region diverged after round-trip: src %v, seq %v, par %v", id, want, gotS, gotP)
		}
	}
	// The restored monitors must remain fully operational: one more batch on
	// the restored parallel monitor equals the sequential path on the
	// restored sequential monitor.
	seq.SetTime(2)
	par.SetTime(2)
	var b2 []srb.ObjectUpdate
	for id := range pos {
		p := srb.Pt(rng.Float64(), rng.Float64())
		pos[id] = p
		b2 = append(b2, srb.ObjectUpdate{ID: id, Loc: p})
	}
	ordered := append([]srb.ObjectUpdate(nil), b2...)
	sortByID(ordered)
	var sups []srb.SafeRegionUpdate
	for _, u := range ordered {
		sups = append(sups, seq.Update(u.ID, u.Loc)...)
	}
	pups := par.UpdateBatch(b2)
	if !reflect.DeepEqual(sups, pups) {
		t.Fatalf("post-restore batch diverged from sequential path")
	}
}

func sortByID(us []srb.ObjectUpdate) {
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j].ID < us[j-1].ID; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}
