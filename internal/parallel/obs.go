package parallel

import (
	"time"

	"srb/internal/obs"
)

// pipeObs holds the pipeline's bound instruments; a nil *pipeObs (the
// default) keeps ApplyEach allocation- and syscall-free. Counters fold in the
// Stats deltas per batch; the two phase histograms split a batch's wall time
// into the parallel plan phase and the serial apply phase; the fraction gauge
// tracks the cumulative share of updates that validated onto the fast path.
type pipeObs struct {
	tr *obs.Tracer

	batches  *obs.Counter
	updates  *obs.Counter
	planned  *obs.Counter
	fast     *obs.Counter
	fallback *obs.Counter

	batchSize    *obs.Histogram
	planSeconds  *obs.Histogram
	applySeconds *obs.Histogram

	fastFrac *obs.Gauge
}

// SetObs attaches an observability sink to the pipeline (nil detaches). Like
// Apply, it must be serialized with every other pipeline call.
func (p *Pipeline) SetObs(sink *obs.Sink) {
	if sink == nil || (sink.Registry() == nil && sink.Tracer() == nil) {
		p.obs = nil
		return
	}
	r := sink.Registry()
	o := &pipeObs{tr: sink.Tracer()}
	o.batches = r.Counter("srb_batch_batches_total", "Update batches processed by the parallel pipeline.")
	o.updates = r.Counter("srb_batch_updates_total", "Location updates processed through batches.")
	o.planned = r.Counter("srb_batch_planned_total", "Updates precomputed by the parallel plan phase.")
	o.fast = r.Counter("srb_batch_fast_total", "Plans that validated and applied on the fast path.")
	o.fallback = r.Counter("srb_batch_fallback_total", "Updates that took the sequential fallback path.")
	o.batchSize = r.Histogram("srb_batch_size", "Updates per batch.", obs.SizeBuckets())
	help := "Batch phase latency: the parallel plan phase and the serial apply phase."
	o.planSeconds = r.Histogram("srb_batch_phase_seconds", help, obs.LatencyBuckets(), "phase", "plan")
	o.applySeconds = r.Histogram("srb_batch_phase_seconds", help, obs.LatencyBuckets(), "phase", "apply")
	o.fastFrac = r.Gauge("srb_batch_fastpath_fraction", "Cumulative fraction of batched updates applied via the fast path.")
	p.obs = o
}

// done closes one instrumented batch: phase latencies, Stats deltas, the
// cumulative fast-path fraction, and plan/apply trace spans sized by the
// batch's outcome.
func (o *pipeObs) done(p *Pipeline, before Stats, t0, planDone, applyDone time.Time) {
	d := p.stats
	o.batches.Add(d.Batches - before.Batches)
	o.updates.Add(d.Updates - before.Updates)
	o.planned.Add(d.Planned - before.Planned)
	o.fast.Add(d.Fast - before.Fast)
	o.fallback.Add(d.Fallback - before.Fallback)
	o.batchSize.Observe(float64(d.Updates - before.Updates))
	o.planSeconds.Observe(planDone.Sub(t0).Seconds())
	o.applySeconds.Observe(applyDone.Sub(planDone).Seconds())
	if d.Updates > 0 {
		o.fastFrac.Set(float64(d.Fast) / float64(d.Updates))
	}
	o.tr.SpanBetween("batch", "plan", t0, planDone, "updates", d.Updates-before.Updates, "planned", d.Planned-before.Planned)
	o.tr.SpanBetween("batch", "apply", planDone, applyDone, "fast", d.Fast-before.Fast, "fallback", d.Fallback-before.Fallback)
}
