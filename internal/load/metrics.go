package load

import "srb/internal/obs"

// Metrics is the harness's client-side view in an observability registry: the
// latency families the server cannot see (they include the wire and the
// client runtime) plus generator health counters. All instruments are
// nil-safe, so a harness without a registry pays one branch per event.
type Metrics struct {
	// UpdateAck observes the update→region-grant round trip per acked update.
	UpdateAck *obs.Histogram
	// ProbeRTT observes the synchronous registration probe round trip.
	ProbeRTT *obs.Histogram
	// UpdatesSent counts location-update frames handed to the transport.
	UpdatesSent *obs.Counter
	// Acks counts region grants matched to a pending update.
	Acks *obs.Counter
	// Errors counts frame-write and probe round-trip failures.
	Errors *obs.Counter
	// Reconnects counts completed session resumes across all sessions.
	Reconnects *obs.Counter
	// Sessions gauges the currently dialed mobile sessions.
	Sessions *obs.Gauge
}

// NewMetrics registers the load-generator families in reg (nil reg yields
// all-nil, no-op instruments). The family set is pinned by METRICS.md via
// TestMetricsDocMatchesRegistry.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		UpdateAck: reg.Histogram("srb_load_update_ack_seconds",
			"Client-side update to safe-region-grant round-trip latency.", obs.LatencyBuckets()),
		ProbeRTT: reg.Histogram("srb_load_probe_rtt_seconds",
			"Client-side synchronous query-registration probe round-trip latency.", obs.LatencyBuckets()),
		UpdatesSent: reg.Counter("srb_load_updates_sent_total",
			"Location-update frames the load generator handed to the transport."),
		Acks: reg.Counter("srb_load_acks_total",
			"Safe-region grants the load generator matched to a pending update."),
		Errors: reg.Counter("srb_load_errors_total",
			"Load-generator frame-write and probe round-trip failures."),
		Reconnects: reg.Counter("srb_load_reconnects_total",
			"Completed session resumes across all load-generator sessions."),
		Sessions: reg.Gauge("srb_load_sessions",
			"Mobile sessions the load generator currently holds open."),
	}
}
