// Package load is the open-loop production load harness: it drives a real
// srb-server over the wire with K concurrent mobile sessions following the
// random-waypoint model (internal/mobility) and a mix of registered
// continuous queries, ramps the session count in stages until the server
// misses the declared latency SLO, and emits a machine-readable capacity
// report (LOAD_*.json) with p50/p99/p999 update-ack and probe round-trip
// latency, the maximum sustained sessions-per-core at the SLO, and — when a
// ServerControl is supplied — a recovery-time objective measured by killing
// the server mid-run and timing journal recovery plus lease resume back to
// the SLO.
//
// The generator is open loop: every session ticks on a wall-clock schedule
// and hands update frames to the transport without waiting for the previous
// ack, so offered load does not shrink when the server queues (the classic
// closed-loop coordination blindspot). Two latency families are measured on
// the client side, where the server cannot flatter itself:
//
//   - update-ack: the time from handing a location-update frame to the
//     transport until the next safe-region grant on that session. The server
//     pushes a fresh region after processing an update that moved the safe
//     region, so the grant is the protocol-level acknowledgement. Grants
//     match the newest pending update (a grant supersedes the older in-flight
//     updates it coalesced over), and unsolicited grants while no update is
//     pending are ignored.
//   - probe RTT: a synchronous COUNT-query register/deregister round trip
//     through the full event loop, issued at a fixed rate as an active probe
//     of server responsiveness even when every session sits happily inside
//     its safe region.
//
// All workload randomness — trajectories, start positions, query placement —
// derives from Config.Seed and the session/query index alone, so two runs of
// the same configuration offer bit-identical workloads and reports differ
// only by measured timing.
package load

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
	"srb/internal/remote"
)

// ServerControl lets the harness crash and resurrect the server under test
// for the recovery drill. The process-based implementation lives in
// cmd/srb-load (SIGKILL + re-exec with -recover); tests use an in-process
// one over remote.Server.
type ServerControl interface {
	// Kill terminates the server abruptly — no goodbyes, no final snapshot.
	Kill() error
	// Restart brings the server back on the same address, recovering from
	// its persist directory, and returns once it is accepting connections
	// (journal replay may still be ahead of the event loop going live).
	Restart() error
}

// RecoveryConfig enables the mid-run SIGKILL drill.
type RecoveryConfig struct {
	// Control kills and restarts the server under test.
	Control ServerControl
	// Timeout bounds the whole drill; exceeding it fails the run (an
	// unmeasurable RTO is a finding, not a report). Default 30s.
	Timeout time.Duration
}

// Config parameterizes a harness run. The zero value is not runnable; Addr
// and Sessions are required, everything else has production-shaped defaults.
type Config struct {
	// Addr is the srb-server wire address to drive.
	Addr string
	// Seed derives every per-session and per-query RNG stream.
	Seed int64
	// Space is the coordinate universe; defaults to the unit square.
	Space geom.Rect
	// Sessions is the stage-1 mobile-session count.
	Sessions int
	// StageMultipliers scales Sessions per ramp stage and must be strictly
	// increasing. Default {1, 2, 4}.
	StageMultipliers []int
	// StageDuration is how long each ramp stage holds its session count.
	// Default 10s.
	StageDuration time.Duration
	// TickEvery is the per-session movement tick interval. Default 20ms.
	TickEvery time.Duration
	// ReportEvery, when > 0, forces each session to send a location update at
	// least this often even while inside its safe region, flooring the
	// offered update rate independent of safe-region geometry.
	ReportEvery time.Duration
	// ProbeEvery is the probe round-trip sampling interval. Default 250ms.
	ProbeEvery time.Duration
	// MeanSpeed and MeanPeriod parameterize the random-waypoint model, in
	// space units per simulated time unit. Defaults 0.2 and 0.1.
	MeanSpeed, MeanPeriod float64
	// Timescale maps wall seconds to simulated time units. Default 2.5
	// (matching srb-client's 0.05 units per 20ms tick).
	Timescale float64
	// RangeQueries, CircleQueries, KNNQueries and CountQueries set the
	// registered continuous-query mix. Defaults 4, 2, 2, 1.
	RangeQueries, CircleQueries, KNNQueries, CountQueries int
	// SLOP99 is the latency objective: a stage is sustained when both p99
	// update-ack and p99 probe RTT stay at or under it. Default 50ms.
	SLOP99 time.Duration
	// Recovery, when non-nil, runs the SIGKILL drill after the ramp.
	Recovery *RecoveryConfig
	// Registry, when non-nil, receives the client-side metric families
	// (NewMetrics) for scraping alongside the report.
	Registry *obs.Registry
	// MetricsURL, when non-empty, is the server's /metrics endpoint; selected
	// family sums are scraped into the report's server section at run end.
	MetricsURL string
	// FlightURL, when non-empty, is the server's /debug/flightrec endpoint.
	// At the end of the ramp (before any recovery drill restarts the server
	// and resets its ring) the harness resolves the run's worst update-ack
	// trace ID against the flight recorder and folds the outcome into the
	// report's flight section.
	FlightURL string
	// Logf receives progress lines; nil silences the harness.
	Logf func(format string, args ...interface{})
}

// withDefaults fills unset fields and validates the ramp shape.
func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("load: Addr is required")
	}
	if c.Sessions <= 0 {
		return c, fmt.Errorf("load: Sessions must be positive")
	}
	if !c.Space.IsValid() || c.Space.Area() == 0 {
		c.Space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	if len(c.StageMultipliers) == 0 {
		c.StageMultipliers = []int{1, 2, 4}
	}
	for i, m := range c.StageMultipliers {
		if m <= 0 || (i > 0 && m <= c.StageMultipliers[i-1]) {
			return c, fmt.Errorf("load: StageMultipliers must be strictly increasing and positive, got %v", c.StageMultipliers)
		}
	}
	if c.StageDuration <= 0 {
		c.StageDuration = 10 * time.Second
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 20 * time.Millisecond
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	if c.MeanSpeed <= 0 {
		c.MeanSpeed = 0.2
	}
	if c.MeanPeriod <= 0 {
		c.MeanPeriod = 0.1
	}
	if c.Timescale <= 0 {
		c.Timescale = 2.5
	}
	if c.RangeQueries == 0 && c.CircleQueries == 0 && c.KNNQueries == 0 && c.CountQueries == 0 {
		c.RangeQueries, c.CircleQueries, c.KNNQueries, c.CountQueries = 4, 2, 2, 1
	}
	if c.SLOP99 <= 0 {
		c.SLOP99 = 50 * time.Millisecond
	}
	if c.Recovery != nil && c.Recovery.Timeout <= 0 {
		c.Recovery.Timeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c, nil
}

// sessionSeed derives the deterministic RNG seed for one workload stream
// (sessions and queries share the derivation with disjoint ID ranges) using
// a splitmix64 finalizer, so neighboring IDs get uncorrelated streams.
func sessionSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + id*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// querySpec is one deterministic continuous query of the workload mix.
type querySpec struct {
	id     query.ID
	kind   string // a core.Kind* query kind
	rect   geom.Rect
	center geom.Point
	radius float64
	k      int
}

// queryIDBase keeps workload query IDs clear of the prober's transient IDs.
const queryIDBase = 1_000_000

// workloadQueries derives the deterministic query mix for a config. Exported
// determinism is by construction: only Seed and the counts shape the result.
func workloadQueries(cfg Config) []querySpec {
	var specs []querySpec
	qi := uint64(0)
	place := func() (*rand.Rand, uint64) {
		qi++
		return rand.New(rand.NewSource(sessionSeed(cfg.Seed, 1<<40+qi))), qi
	}
	w, h := cfg.Space.Width(), cfg.Space.Height()
	for i := 0; i < cfg.RangeQueries; i++ {
		rng, id := place()
		x := cfg.Space.MinX + rng.Float64()*w*0.9
		y := cfg.Space.MinY + rng.Float64()*h*0.9
		specs = append(specs, querySpec{
			id: query.ID(queryIDBase + id), kind: core.KindRange,
			rect: geom.R(x, y, x+0.1*w, y+0.1*h),
		})
	}
	for i := 0; i < cfg.CircleQueries; i++ {
		rng, id := place()
		specs = append(specs, querySpec{
			id: query.ID(queryIDBase + id), kind: core.KindCircle,
			center: geom.Pt(cfg.Space.MinX+rng.Float64()*w, cfg.Space.MinY+rng.Float64()*h),
			radius: 0.05 * w,
		})
	}
	for i := 0; i < cfg.KNNQueries; i++ {
		rng, id := place()
		specs = append(specs, querySpec{
			id: query.ID(queryIDBase + id), kind: core.KindKNN,
			center: geom.Pt(cfg.Space.MinX+rng.Float64()*w, cfg.Space.MinY+rng.Float64()*h),
			k:      1 + rng.Intn(4),
		})
	}
	for i := 0; i < cfg.CountQueries; i++ {
		rng, id := place()
		x := cfg.Space.MinX + rng.Float64()*w*0.9
		y := cfg.Space.MinY + rng.Float64()*h*0.9
		specs = append(specs, querySpec{
			id: query.ID(queryIDBase + id), kind: core.KindCount,
			rect: geom.R(x, y, x+0.1*w, y+0.1*h),
		})
	}
	return specs
}

// stageAcc accumulates one ramp stage's observations. Sessions and the
// prober publish into the harness's current stageAcc through an atomic
// pointer, so stage switches never block the hot path.
type stageAcc struct {
	ack     *obs.Histogram
	probe   *obs.Histogram
	updates atomic.Int64
	acks    atomic.Int64
	errors  atomic.Int64

	// The worst (maximum-latency) ack and the causal trace ID of the update
	// it acknowledged, for post-mortem lookup in the server's flight
	// recorder. Mutex-guarded: the worst-ack update is off the common path
	// (most acks lose the comparison after one read under the lock).
	mu         sync.Mutex
	worstLat   float64
	worstTrace uint64
}

// noteWorst keeps the maximum observed ack latency and its trace.
func (a *stageAcc) noteWorst(lat float64, tr uint64) {
	a.mu.Lock()
	if lat > a.worstLat {
		a.worstLat, a.worstTrace = lat, tr
	}
	a.mu.Unlock()
}

// worst returns the stage's maximum ack latency and its trace.
func (a *stageAcc) worst() (float64, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.worstLat, a.worstTrace
}

func newStageAcc() *stageAcc {
	return &stageAcc{
		ack:   obs.NewHistogram(obs.LatencyBuckets()),
		probe: obs.NewHistogram(obs.LatencyBuckets()),
	}
}

// harness is one Run's shared state.
type harness struct {
	cfg      Config
	m        *Metrics
	epoch    time.Time
	cur      atomic.Pointer[stageAcc]
	watch    ackWatch
	sessions []*session
	wg       sync.WaitGroup
	done     chan struct{}
}

// ackWatch arms the recovery drill's "back to SLO" detector: the first update
// ack at or under the SLO observed while armed signals the channel.
type ackWatch struct {
	mu    sync.Mutex
	armed bool
	slo   float64
	ch    chan time.Time
}

// arm starts watching for an ack within slo seconds.
func (w *ackWatch) arm(slo float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.armed = true
	w.slo = slo
	w.ch = make(chan time.Time, 1)
}

// note feeds one observed ack latency; fires the watch once when armed. The
// send happens outside the lock: the channel is buffered and disarming under
// the lock guarantees at most one send per arming, so it never blocks.
func (w *ackWatch) note(lat float64, now time.Time) {
	w.mu.Lock()
	var ch chan time.Time
	if w.armed && lat <= w.slo {
		w.armed = false
		ch = w.ch
	}
	w.mu.Unlock()
	if ch != nil {
		ch <- now
	}
}

// noteAck records one update-ack observation everywhere it is consumed:
// current stage (including the worst-ack trace tracker), registry metrics,
// and the recovery watch.
func (h *harness) noteAck(lat float64, now time.Time, trace uint64) {
	if acc := h.cur.Load(); acc != nil {
		acc.ack.Observe(lat)
		acc.acks.Add(1)
		acc.noteWorst(lat, trace)
	}
	h.m.UpdateAck.Observe(lat)
	h.m.Acks.Inc()
	h.watch.note(lat, now)
}

// noteUpdate records one update frame handed to the transport (or its write
// failure).
func (h *harness) noteUpdate(err error) {
	acc := h.cur.Load()
	if err != nil {
		if acc != nil {
			acc.errors.Add(1)
		}
		h.m.Errors.Inc()
		return
	}
	if acc != nil {
		acc.updates.Add(1)
	}
	h.m.UpdatesSent.Inc()
}

// noteProbe records one probe round trip outcome.
func (h *harness) noteProbe(lat float64, err error) {
	acc := h.cur.Load()
	if err != nil {
		if acc != nil {
			acc.errors.Add(1)
		}
		h.m.Errors.Inc()
		return
	}
	if acc != nil {
		acc.probe.Observe(lat)
	}
	h.m.ProbeRTT.Observe(lat)
}

// Run executes the configured ramp (and optional recovery drill) against the
// server at cfg.Addr and returns the capacity report. Run fails on workload
// bring-up errors and on a drill that cannot be measured within its timeout;
// a server that merely misses the SLO is a measurement, not an error.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h := &harness{
		cfg:   cfg,
		m:     NewMetrics(cfg.Registry),
		epoch: time.Now(),
		done:  make(chan struct{}),
	}
	defer h.shutdown()

	// The query mix registers once, up front, through a reconnecting app
	// handle so it survives the recovery drill.
	app, err := remote.DialAppOpts(cfg.Addr, remote.AppOptions{
		Reconnect: true, Seed: sessionSeed(cfg.Seed, 1<<41),
	})
	if err != nil {
		return nil, fmt.Errorf("load: dial app: %w", err)
	}
	app.SetLogf(nil)
	defer app.Close()
	h.wg.Add(1)
	go h.drainResults(app)
	if err := registerQueries(app, workloadQueries(cfg)); err != nil {
		return nil, err
	}

	report := &Report{
		Schema: ReportSchema,
		Cores:  runtime.NumCPU(),
		Config: ConfigEcho{
			Seed:             cfg.Seed,
			BaseSessions:     cfg.Sessions,
			StageMultipliers: cfg.StageMultipliers,
			StageSeconds:     cfg.StageDuration.Seconds(),
			TickSeconds:      cfg.TickEvery.Seconds(),
			ReportSeconds:    cfg.ReportEvery.Seconds(),
			ProbeSeconds:     cfg.ProbeEvery.Seconds(),
			MeanSpeed:        cfg.MeanSpeed,
			Timescale:        cfg.Timescale,
			RangeQueries:     cfg.RangeQueries,
			CircleQueries:    cfg.CircleQueries,
			KNNQueries:       cfg.KNNQueries,
			CountQueries:     cfg.CountQueries,
		},
	}

	prober := newProber(h, cfg.Addr)
	h.wg.Add(1)
	go prober.loop()

	sloSec := cfg.SLOP99.Seconds()
	lastReconnects := int64(0)
	for i, mult := range cfg.StageMultipliers {
		want := cfg.Sessions * mult
		if err := h.growSessions(want); err != nil {
			return nil, err
		}
		acc := newStageAcc()
		h.cur.Store(acc)
		cfg.Logf("load: stage %d: %d sessions for %s", i+1, want, cfg.StageDuration)
		t0 := time.Now()
		h.sleep(cfg.StageDuration)
		dur := time.Since(t0).Seconds()

		recon := h.reconnects()
		worstLat, worstTr := acc.worst()
		st := StageReport{
			Sessions:        want,
			DurationSeconds: dur,
			OfferedUpdates:  acc.updates.Load(),
			AckedUpdates:    acc.acks.Load(),
			UpdateAck:       summarize(acc.ack),
			ProbeRTT:        summarize(acc.probe),
			WorstAckSeconds: worstLat,
			WorstAckTrace:   worstTr,
			Errors:          acc.errors.Load(),
			Reconnects:      recon - lastReconnects,
		}
		lastReconnects = recon
		if st.DurationSeconds > 0 {
			st.OfferedRate = float64(st.OfferedUpdates) / st.DurationSeconds
		}
		st.MetSLO = st.UpdateAck.Count > 0 && st.UpdateAck.P99 <= sloSec &&
			st.ProbeRTT.Count > 0 && st.ProbeRTT.P99 <= sloSec
		report.Stages = append(report.Stages, st)
		cfg.Logf("load: stage %d: offered %.0f up/s, ack p99 %.1fms, probe p99 %.1fms, slo=%v",
			i+1, st.OfferedRate, st.UpdateAck.P99*1e3, st.ProbeRTT.P99*1e3, st.MetSLO)
		if !st.MetSLO {
			// The ramp found the knee; later (heavier) stages cannot pass.
			report.Capacity.Saturated = true
			break
		}
	}
	report.Capacity.SLOP99Seconds = sloSec
	for _, st := range report.Stages {
		if st.MetSLO && st.Sessions > report.Capacity.MaxSessionsAtSLO {
			report.Capacity.MaxSessionsAtSLO = st.Sessions
		}
	}
	report.Capacity.SessionsPerCore = float64(report.Capacity.MaxSessionsAtSLO) / float64(report.Cores)

	// Resolve the worst tail's causal chain before the drill: a recovery
	// restart would replace the server process and its flight-recorder ring.
	if cfg.FlightURL != "" {
		report.Flight = checkFlight(cfg.FlightURL, report.Stages)
		cfg.Logf("load: flight: trace %#x (stage %d): %d events %v, complete=%v",
			report.Flight.Trace, report.Flight.Stage+1, report.Flight.Events,
			report.Flight.Kinds, report.Flight.Complete)
	}

	if cfg.Recovery != nil {
		rec, err := h.recoveryDrill(cfg.Recovery)
		if err != nil {
			return nil, err
		}
		rec.Reconnects = h.reconnects() - lastReconnects
		report.Recovery = rec
	}

	if cfg.MetricsURL != "" {
		report.Server = scrapeServer(cfg.MetricsURL)
	}
	return report, nil
}

// drainResults consumes the app handle's result stream so pushes never back
// up; result contents are irrelevant to capacity measurement.
func (h *harness) drainResults(app *remote.AppClient) {
	defer h.wg.Done()
	for range app.Updates() {
	}
}

// registerQueries registers the deterministic workload mix.
func registerQueries(app *remote.AppClient, specs []querySpec) error {
	for _, q := range specs {
		var err error
		switch q.kind {
		case core.KindRange:
			_, err = app.RegisterRange(q.id, q.rect)
		case core.KindCount:
			_, err = app.RegisterCount(q.id, q.rect)
		case core.KindCircle:
			_, err = app.RegisterWithinDistance(q.id, q.center, q.radius)
		case core.KindKNN:
			_, err = app.RegisterKNN(q.id, q.center, q.k, true)
		}
		if err != nil {
			return fmt.Errorf("load: register %s query %d: %w", q.kind, q.id, err)
		}
	}
	return nil
}

// growSessions dials sessions until the live count reaches want.
func (h *harness) growSessions(want int) error {
	for len(h.sessions) < want {
		s, err := newSession(h, uint64(len(h.sessions)+1))
		if err != nil {
			return fmt.Errorf("load: dial session %d: %w", len(h.sessions)+1, err)
		}
		h.sessions = append(h.sessions, s)
		h.m.Sessions.Set(float64(len(h.sessions)))
	}
	return nil
}

// reconnects sums completed resumes across all sessions.
func (h *harness) reconnects() int64 {
	var n int64
	for _, s := range h.sessions {
		n += s.client.Reconnects()
	}
	h.m.Reconnects.Add(n - h.m.Reconnects.Value())
	return n
}

// sleep waits d or until the harness shuts down.
func (h *harness) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-h.done:
	}
}

// shutdown stops the tick and prober goroutines and closes every session.
func (h *harness) shutdown() {
	select {
	case <-h.done:
	default:
		close(h.done)
	}
	for _, s := range h.sessions {
		_ = s.client.Close()
	}
	h.wg.Wait()
	h.m.Sessions.Set(0)
}

// checkFlight resolves the ramp's worst update-ack trace against the
// server's flight-recorder ring: it picks the stage with the largest worst
// ack, streams the /debug/flightrec NDJSON, and classifies the events
// carrying that trace. A complete chain has both the causing wire event
// (update receipt, session resume, or query registration) and the
// safe-region grant it produced.
func checkFlight(url string, stages []StageReport) FlightCheck {
	fc := FlightCheck{Checked: true}
	for i, st := range stages {
		if st.WorstAckTrace != 0 && st.WorstAckSeconds >= stages[fc.Stage].WorstAckSeconds {
			fc.Stage, fc.Trace = i, st.WorstAckTrace
		}
	}
	if fc.Trace == 0 {
		return fc
	}
	resp, err := http.Get(url)
	if err != nil {
		return fc
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var cause, grant bool
	for {
		var ev obs.FlightEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.Trace != fc.Trace {
			continue
		}
		fc.Events++
		fc.Kinds = appendUnique(fc.Kinds, ev.Kind)
		switch ev.Kind {
		case obs.FlightUpdate, obs.FlightReconnect, obs.FlightRegister:
			cause = true
		case obs.FlightGrant:
			grant = true
		}
	}
	fc.Complete = cause && grant
	return fc
}

// appendUnique appends s if absent (kind lists are tiny; linear scan wins).
func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// scrapedFamilies is the server-side family selection folded into the report.
var scrapedFamilies = []string{
	"srb_updates_total",
	"srb_probes_total",
	"srb_server_clients",
	"srb_server_reconnects_total",
	"srb_server_journal_entries_total",
	"srb_server_replay_entries",
}

// scrapeServer pulls the selected family sums from a /metrics endpoint.
// Scrape failures yield an empty map: the server-side view is corroborating
// evidence, not a gating input.
func scrapeServer(url string) map[string]float64 {
	resp, err := http.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil
	}
	out := make(map[string]float64)
	sort.Strings(scrapedFamilies)
	for _, name := range scrapedFamilies {
		f := fams[name]
		if f == nil {
			continue
		}
		var sum float64
		for _, v := range f.Samples {
			sum += v
		}
		out[name] = sum
	}
	return out
}
