package load

import (
	"fmt"
	"time"

	"srb/internal/geom"
	"srb/internal/query"
	"srb/internal/remote"
)

// recoveryDrill measures the recovery-time objective: kill the server with
// sessions live, restart it into journal recovery, and time (a) how long
// until a probe round trip first succeeds against the restarted event loop
// and (b) how long until the update path is back within the SLO. The fleet's
// auto-reconnecting sessions resume their leases throughout, so the drill
// exercises journal replay, lease resume, and region re-push together.
func (h *harness) recoveryDrill(rc *RecoveryConfig) (RecoveryReport, error) {
	cfg := h.cfg
	deadline := time.Now().Add(rc.Timeout)
	killAt := time.Now()
	cfg.Logf("load: recovery drill: killing server at t=%.2fs", killAt.Sub(h.epoch).Seconds())
	if err := rc.Control.Kill(); err != nil {
		return RecoveryReport{}, fmt.Errorf("load: kill server: %w", err)
	}
	if err := rc.Control.Restart(); err != nil {
		return RecoveryReport{}, fmt.Errorf("load: restart server: %w", err)
	}
	// Arm the SLO-restore watch only now: acks measured from here on are
	// against the recovered server, not frames in flight before the kill.
	h.watch.arm(cfg.SLOP99.Seconds())

	recoveredAt, err := h.waitServerReady(deadline)
	if err != nil {
		return RecoveryReport{}, err
	}
	cfg.Logf("load: recovery drill: probe succeeded %.3fs after kill", recoveredAt.Sub(killAt).Seconds())

	var restoredAt time.Time
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case restoredAt = <-h.watch.ch:
	case <-timer.C:
		return RecoveryReport{}, fmt.Errorf("load: no update ack within the %s SLO observed %s after the kill",
			cfg.SLOP99, rc.Timeout)
	case <-h.done:
		return RecoveryReport{}, fmt.Errorf("load: harness shut down during the recovery drill")
	}
	cfg.Logf("load: recovery drill: SLO restored %.3fs after kill", restoredAt.Sub(killAt).Seconds())

	return RecoveryReport{
		Performed:            true,
		KillAtSeconds:        killAt.Sub(h.epoch).Seconds(),
		RecoveredAtSeconds:   recoveredAt.Sub(h.epoch).Seconds(),
		SLORestoredAtSeconds: restoredAt.Sub(h.epoch).Seconds(),
		RTOSeconds:           recoveredAt.Sub(killAt).Seconds(),
		SLORestoreSeconds:    restoredAt.Sub(killAt).Seconds(),
	}, nil
}

// waitServerReady polls the restarted server with short probe round trips —
// a fresh dial plus a COUNT registration — until one completes, proving the
// listener is up AND the event loop is processing (journal replay done).
func (h *harness) waitServerReady(deadline time.Time) (time.Time, error) {
	sp := h.cfg.Space
	rect := geom.R(sp.MinX, sp.MinY, sp.MinX+0.01*sp.Width(), sp.MinY+0.01*sp.Height())
	n := uint64(0)
	for time.Now().Before(deadline) {
		select {
		case <-h.done:
			return time.Time{}, fmt.Errorf("load: harness shut down during the recovery drill")
		default:
		}
		n++
		if t, ok := h.tryProbe(rect, n); ok {
			return t, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return time.Time{}, fmt.Errorf("load: server did not answer a probe round trip within the drill timeout")
}

// tryProbe runs one throwaway probe round trip against the server.
func (h *harness) tryProbe(rect geom.Rect, n uint64) (time.Time, bool) {
	app, err := remote.DialAppOpts(h.cfg.Addr, remote.AppOptions{
		RPCTimeout:  500 * time.Millisecond,
		RPCAttempts: 1,
		Seed:        sessionSeed(h.cfg.Seed, 1<<45+n),
	})
	if err != nil {
		return time.Time{}, false
	}
	app.SetLogf(nil)
	defer app.Close()
	qid := query.ID(probeIDBase + 500_000 + n)
	if _, err := app.RegisterCount(qid, rect); err != nil {
		return time.Time{}, false
	}
	_ = app.Deregister(qid)
	return time.Now(), true
}
