package load

import (
	"strings"
	"testing"
	"time"
)

func baseConfig() Config {
	cfg, err := (Config{Addr: "127.0.0.1:1", Seed: 7, Sessions: 8}).withDefaults()
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestWorkloadDeterminism pins the reproducibility contract: the same seed
// produces byte-identical workloads, and different seeds do not.
func TestWorkloadDeterminism(t *testing.T) {
	a := workloadQueries(baseConfig())
	b := workloadQueries(baseConfig())
	if len(a) == 0 {
		t.Fatal("default config produced an empty query mix")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs across identical configs:\n%+v\n%+v", i, a[i], b[i])
		}
	}

	other := baseConfig()
	other.Seed = 8
	c := workloadQueries(other)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical query mix")
	}

	// Query IDs must be unique and clear of the prober's namespace.
	seen := map[uint64]bool{}
	for _, q := range a {
		id := uint64(q.id)
		if seen[id] {
			t.Fatalf("duplicate query ID %d", id)
		}
		seen[id] = true
		if id >= probeIDBase {
			t.Fatalf("workload query ID %d collides with prober namespace (base %d)", id, probeIDBase)
		}
	}
}

// TestStartPositionDeterminism checks per-session start positions reproduce
// for the same (seed, id) and spread across IDs.
func TestStartPositionDeterminism(t *testing.T) {
	cfg := baseConfig()
	p1 := startPosition(cfg, 3)
	p2 := startPosition(cfg, 3)
	if p1 != p2 {
		t.Fatalf("same (seed,id) produced %v then %v", p1, p2)
	}
	if p1 == startPosition(cfg, 4) {
		t.Fatal("adjacent session IDs produced the same start position")
	}
	if !cfg.Space.Contains(p1) {
		t.Fatalf("start position %v outside space %v", p1, cfg.Space)
	}
	other := cfg
	other.Seed = 99
	if p1 == startPosition(other, 3) {
		t.Fatal("different seeds produced the same start position")
	}
}

// TestSessionSeedDisjoint spot-checks the splitmix64 derivation: distinct IDs
// give distinct streams even with adversarially close inputs.
func TestSessionSeedDisjoint(t *testing.T) {
	seen := map[int64]uint64{}
	for id := uint64(0); id < 10_000; id++ {
		s := sessionSeed(1, id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("sessionSeed(1, %d) == sessionSeed(1, %d) == %d", id, prev, s)
		}
		seen[s] = id
	}
	if sessionSeed(1, 5) == sessionSeed(2, 5) {
		t.Fatal("different base seeds collided for the same ID")
	}
}

// TestConfigDefaultsValidation covers withDefaults rejections.
func TestConfigDefaultsValidation(t *testing.T) {
	if _, err := (Config{Addr: "x", Sessions: 4, StageMultipliers: []int{1, 2, 2}}).withDefaults(); err == nil {
		t.Error("non-increasing stage multipliers accepted")
	}
	if _, err := (Config{Sessions: 4}).withDefaults(); err == nil {
		t.Error("missing Addr accepted")
	}
	if _, err := (Config{Addr: "x", Sessions: 4, StageMultipliers: []int{0, 1}}).withDefaults(); err == nil {
		t.Error("zero stage multiplier accepted")
	}
	if _, err := (Config{Addr: "x", Sessions: 0}).withDefaults(); err == nil {
		t.Error("zero sessions accepted")
	}
	cfg, err := (Config{Addr: "x", Sessions: 4}).withDefaults()
	if err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if len(cfg.StageMultipliers) == 0 || cfg.StageDuration <= 0 || cfg.SLOP99 <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

// validReport builds a report that passes Validate, for mutation tests.
func validReport() *Report {
	mk := func(n int64) LatencySummary {
		return LatencySummary{Count: n, P50: 0.001, P99: 0.004, P999: 0.009, Mean: 0.002}
	}
	return &Report{
		Schema: ReportSchema,
		Cores:  4,
		Stages: []StageReport{
			{Sessions: 8, DurationSeconds: 5, OfferedUpdates: 100, AckedUpdates: 90,
				UpdateAck: mk(90), ProbeRTT: mk(20),
				WorstAckSeconds: 0.011, WorstAckTrace: 0xdeadbeef, MetSLO: true},
			{Sessions: 16, DurationSeconds: 5, OfferedUpdates: 200, AckedUpdates: 180,
				UpdateAck: mk(180), ProbeRTT: mk(20),
				WorstAckSeconds: 0.031, WorstAckTrace: 0xfeedface, MetSLO: false},
		},
		Capacity: CapacityReport{SLOP99Seconds: 0.05, MaxSessionsAtSLO: 8, SessionsPerCore: 2, Saturated: true},
		Flight: FlightCheck{Checked: true, Trace: 0xfeedface, Stage: 1, Events: 3,
			Kinds: []string{"update", "probe", "grant"}, Complete: true},
		Recovery: RecoveryReport{Performed: true, KillAtSeconds: 10, RecoveredAtSeconds: 10.4,
			SLORestoredAtSeconds: 10.9, RTOSeconds: 0.4, SLORestoreSeconds: 0.9},
	}
}

// TestReportValidateNegatives mutates a valid report one field at a time and
// asserts Validate rejects each corruption with a message naming the problem.
func TestReportValidateNegatives(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatalf("baseline report invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Report)
		wantSub string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "srb-load/v0" }, "schema"},
		{"zero cores", func(r *Report) { r.Cores = 0 }, "cores"},
		{"no stages", func(r *Report) { r.Stages = nil }, "no ramp stages"},
		{"non-monotone ramp", func(r *Report) { r.Stages[1].Sessions = 8 }, "not monotone"},
		{"zero-session stage", func(r *Report) { r.Stages[0].Sessions = 0 }, "sessions"},
		{"zero duration", func(r *Report) { r.Stages[0].DurationSeconds = 0 }, "duration"},
		{"zero quantiles with samples", func(r *Report) { r.Stages[0].UpdateAck.P50 = 0 }, "zero quantiles"},
		{"non-monotone quantiles", func(r *Report) { r.Stages[0].ProbeRTT.P99 = 1 }, "not monotone"},
		{"no acks in stage 1", func(r *Report) { r.Stages[0].UpdateAck = LatencySummary{} }, "no update acks"},
		{"no probes in stage 1", func(r *Report) { r.Stages[0].ProbeRTT = LatencySummary{} }, "no probe"},
		{"acks but no worst-ack latency", func(r *Report) { r.Stages[0].WorstAckSeconds = 0 }, "worst-ack"},
		{"worst ack below mean", func(r *Report) { r.Stages[1].WorstAckSeconds = 0.001 }, "below mean"},
		{"untraced worst ack", func(r *Report) { r.Stages[0].WorstAckTrace = 0 }, "causal trace"},
		{"no SLO", func(r *Report) { r.Capacity.SLOP99Seconds = 0 }, "SLO"},
		{"no capacity", func(r *Report) { r.Capacity.MaxSessionsAtSLO = 0 }, "no stage met"},
		{"no per-core figure", func(r *Report) { r.Capacity.SessionsPerCore = 0 }, "per-core"},
		{"flight check without a trace", func(r *Report) { r.Flight.Trace = 0 }, "no worst-ack trace"},
		{"unresolved flight trace", func(r *Report) { r.Flight.Events = 0 }, "no flight-recorder events"},
		{"incomplete causal chain", func(r *Report) { r.Flight.Complete = false }, "incomplete"},
		{"zero RTO", func(r *Report) { r.Recovery.RTOSeconds = 0 }, "rto_seconds"},
		{"recovery before kill", func(r *Report) { r.Recovery.RecoveredAtSeconds = 9 }, "sequencing"},
		{"restore before kill", func(r *Report) { r.Recovery.SLORestoredAtSeconds = 9 }, "sequencing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatalf("corruption %q passed Validate", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// A drill-free report must not be judged on its zeroed recovery block.
	r := validReport()
	r.Recovery = RecoveryReport{}
	if err := r.Validate(); err != nil {
		t.Fatalf("report without a drill rejected: %v", err)
	}
}

// TestAckWatch covers the SLO-restore watch arming semantics: acks before
// arming or above the SLO are ignored; the first compliant ack fires once.
func TestAckWatch(t *testing.T) {
	var w ackWatch
	w.note(0.001, time.Now()) // unarmed: must not panic or fire
	w.arm(0.05)
	w.note(0.2, time.Now()) // above SLO
	select {
	case <-w.ch:
		t.Fatal("watch fired on an over-SLO ack")
	default:
	}
	fire := time.Now()
	w.note(0.01, fire)
	select {
	case got := <-w.ch:
		if !got.Equal(fire) {
			t.Fatalf("watch delivered %v, want %v", got, fire)
		}
	default:
		t.Fatal("watch did not fire on a compliant ack")
	}
	w.note(0.01, time.Now()) // disarmed after firing: must not block or refire
	select {
	case <-w.ch:
		t.Fatal("watch fired twice off one arming")
	default:
	}
}
