package load

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"srb/internal/obs"
)

// ReportSchema identifies the capacity-report JSON layout; bump it when a
// field changes meaning so downstream diffing tools can refuse mixed files.
// v2 added the per-stage worst-ack latency and its causal trace ID
// (worst_ack_seconds / worst_ack_trace).
const ReportSchema = "srb-load/v2"

// LatencySummary is the quantile digest of one latency histogram, in seconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Mean  float64 `json:"mean"`
}

// summarize digests a histogram into its quantile summary.
func summarize(h *obs.Histogram) LatencySummary {
	s := LatencySummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if s.Count > 0 {
		s.Mean = h.Sum() / float64(s.Count)
	}
	return s
}

// StageReport is the outcome of one ramp stage.
type StageReport struct {
	// Sessions is the concurrent mobile-session count held through the stage.
	Sessions int `json:"sessions"`
	// DurationSeconds is the measured stage length.
	DurationSeconds float64 `json:"duration_seconds"`
	// OfferedUpdates counts location-update frames handed to the transport.
	OfferedUpdates int64 `json:"offered_updates"`
	// OfferedRate is OfferedUpdates per second of stage time.
	OfferedRate float64 `json:"offered_rate"`
	// AckedUpdates counts safe-region grants matched to a pending update.
	AckedUpdates int64 `json:"acked_updates"`
	// UpdateAck digests the update→region-grant round-trip latency.
	UpdateAck LatencySummary `json:"update_ack_seconds"`
	// ProbeRTT digests the synchronous query-registration probe round trips.
	ProbeRTT LatencySummary `json:"probe_rtt_seconds"`
	// WorstAckSeconds is the single worst update-ack latency observed in the
	// stage — the exact maximum, not a histogram-bucket estimate like P999.
	WorstAckSeconds float64 `json:"worst_ack_seconds"`
	// WorstAckTrace is the causal trace ID minted for the update whose ack
	// was WorstAckSeconds. Feeding it to the server's flight recorder dump
	// (/debug/flightrec) or Chrome trace reconstructs the tail event's full
	// causal chain: update receipt, probes, safe-region grant.
	WorstAckTrace uint64 `json:"worst_ack_trace"`
	// Errors counts frame-write and probe round-trip failures in the stage.
	Errors int64 `json:"errors"`
	// Reconnects counts session resumes that completed during the stage.
	Reconnects int64 `json:"reconnects"`
	// MetSLO reports whether the stage held the declared latency objective:
	// non-empty ack sample with p99 update-ack and p99 probe RTT ≤ the SLO.
	MetSLO bool `json:"met_slo"`
}

// CapacityReport is the headline number: what the server sustained at the SLO.
type CapacityReport struct {
	// SLOP99Seconds is the declared objective both latency families' p99 must
	// stay under for a stage to count as sustained.
	SLOP99Seconds float64 `json:"slo_p99_seconds"`
	// MaxSessionsAtSLO is the largest stage session count that met the SLO.
	MaxSessionsAtSLO int `json:"max_sessions_at_slo"`
	// SessionsPerCore normalizes MaxSessionsAtSLO by the machine's CPU count
	// (generator and server share the box in the default single-node drill).
	SessionsPerCore float64 `json:"sessions_per_core"`
	// Saturated reports whether the ramp actually found the limit: a later
	// stage missed the SLO. False means every stage passed and true capacity
	// is at or above MaxSessionsAtSLO.
	Saturated bool `json:"saturated"`
}

// RecoveryReport is the outcome of the mid-run SIGKILL drill.
type RecoveryReport struct {
	// Performed distinguishes a measured drill from a run without one.
	Performed bool `json:"performed"`
	// KillAtSeconds, RecoveredAtSeconds and SLORestoredAtSeconds are offsets
	// from the run start: when the server was killed, when a probe round trip
	// first succeeded against the restarted server, and when the first
	// post-restart update ack within the SLO was observed.
	KillAtSeconds        float64 `json:"kill_at_seconds"`
	RecoveredAtSeconds   float64 `json:"recovered_at_seconds"`
	SLORestoredAtSeconds float64 `json:"slo_restored_at_seconds"`
	// RTOSeconds is RecoveredAtSeconds - KillAtSeconds: the recovery-time
	// objective actually measured (restart + journal replay + event loop up).
	RTOSeconds float64 `json:"rto_seconds"`
	// SLORestoreSeconds is SLORestoredAtSeconds - KillAtSeconds: kill until
	// the update path was back within the latency objective.
	SLORestoreSeconds float64 `json:"slo_restore_seconds"`
	// Reconnects counts session resumes observed during the drill.
	Reconnects int64 `json:"reconnects"`
}

// FlightCheck is the outcome of resolving the run's worst update-ack trace
// ID against the server's flight recorder (/debug/flightrec): the black-box
// proof that the tail event's causal chain — update receipt through
// safe-region grant — survived into the post-mortem evidence.
type FlightCheck struct {
	// Checked distinguishes a performed resolution from a run without a
	// flight endpoint configured.
	Checked bool `json:"checked"`
	// Trace is the worst update-ack trace ID that was looked up, and Stage
	// the zero-based ramp stage it came from.
	Trace uint64 `json:"trace"`
	Stage int    `json:"stage"`
	// Events counts flight-recorder events carrying the trace; Kinds lists
	// their distinct kinds in ring order.
	Events int      `json:"events"`
	Kinds  []string `json:"kinds,omitempty"`
	// Complete reports a full causal chain: both the causing wire event and
	// the safe-region grant it produced were retained.
	Complete bool `json:"complete"`
}

// ConfigEcho pins the inputs that shaped the run into the report, so two
// LOAD_*.json files are only compared when they measured the same workload.
type ConfigEcho struct {
	Seed             int64   `json:"seed"`
	BaseSessions     int     `json:"base_sessions"`
	StageMultipliers []int   `json:"stage_multipliers"`
	StageSeconds     float64 `json:"stage_seconds"`
	TickSeconds      float64 `json:"tick_seconds"`
	ReportSeconds    float64 `json:"report_seconds,omitempty"`
	ProbeSeconds     float64 `json:"probe_seconds"`
	MeanSpeed        float64 `json:"mean_speed"`
	Timescale        float64 `json:"timescale"`
	RangeQueries     int     `json:"range_queries"`
	CircleQueries    int     `json:"circle_queries"`
	KNNQueries       int     `json:"knn_queries"`
	CountQueries     int     `json:"count_queries"`
}

// Report is the machine-readable capacity report the harness emits
// (LOAD_*.json). Every latency is in seconds.
type Report struct {
	Schema   string         `json:"schema"`
	Cores    int            `json:"cores"`
	Config   ConfigEcho     `json:"config"`
	Stages   []StageReport  `json:"stages"`
	Capacity CapacityReport `json:"capacity"`
	Recovery RecoveryReport `json:"recovery"`
	Flight   FlightCheck    `json:"flight"`
	// Server holds selected family sums scraped from the server's /metrics at
	// the end of the run (empty when no metrics URL was configured) — the
	// server-side view to hold against the client-side latencies above.
	Server map[string]float64 `json:"server,omitempty"`
}

// Validate checks the report is well-formed and the run measured something: a
// recognized schema, a monotone session ramp, non-zero latency quantiles, a
// capacity figure at the SLO, and — when a drill ran — a finite, correctly
// sequenced recovery timeline. The CI smoke gate and the tier-1 integration
// test both fail on the first violated property.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("load: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Cores < 1 {
		return fmt.Errorf("load: cores = %d", r.Cores)
	}
	if len(r.Stages) == 0 {
		return fmt.Errorf("load: no ramp stages")
	}
	for i, st := range r.Stages {
		if st.Sessions <= 0 {
			return fmt.Errorf("load: stage %d has %d sessions", i, st.Sessions)
		}
		if i > 0 && st.Sessions <= r.Stages[i-1].Sessions {
			return fmt.Errorf("load: ramp not monotone: stage %d has %d sessions after %d",
				i, st.Sessions, r.Stages[i-1].Sessions)
		}
		if st.DurationSeconds <= 0 {
			return fmt.Errorf("load: stage %d has non-positive duration", i)
		}
		if err := st.UpdateAck.validate(fmt.Sprintf("stage %d update_ack", i)); err != nil {
			return err
		}
		if err := st.ProbeRTT.validate(fmt.Sprintf("stage %d probe_rtt", i)); err != nil {
			return err
		}
		// Any stage that observed acks must have attributed its worst one:
		// a positive exact maximum at or above the histogram's mean, carrying
		// the causal trace ID of the update it acknowledged.
		if st.UpdateAck.Count > 0 {
			if st.WorstAckSeconds <= 0 {
				return fmt.Errorf("load: stage %d observed %d acks but no worst-ack latency", i, st.UpdateAck.Count)
			}
			if st.WorstAckSeconds < st.UpdateAck.Mean {
				return fmt.Errorf("load: stage %d worst ack %gs below mean %gs", i, st.WorstAckSeconds, st.UpdateAck.Mean)
			}
			if st.WorstAckTrace == 0 {
				return fmt.Errorf("load: stage %d worst ack carries no causal trace ID", i)
			}
		}
	}
	// The first stage must actually have exercised both latency families —
	// a report with empty histograms means the workload never ran.
	if r.Stages[0].UpdateAck.Count == 0 {
		return fmt.Errorf("load: first stage observed no update acks")
	}
	if r.Stages[0].ProbeRTT.Count == 0 {
		return fmt.Errorf("load: first stage observed no probe round trips")
	}
	if r.Capacity.SLOP99Seconds <= 0 {
		return fmt.Errorf("load: no declared SLO")
	}
	if r.Capacity.MaxSessionsAtSLO <= 0 {
		return fmt.Errorf("load: no stage met the SLO (p99 objective %gs)", r.Capacity.SLOP99Seconds)
	}
	if r.Capacity.SessionsPerCore <= 0 {
		return fmt.Errorf("load: sessions-per-core capacity not measured")
	}
	if r.Flight.Checked {
		if r.Flight.Trace == 0 {
			return fmt.Errorf("load: flight check ran but found no worst-ack trace to resolve")
		}
		if r.Flight.Events == 0 {
			return fmt.Errorf("load: worst-ack trace %#x resolved to no flight-recorder events", r.Flight.Trace)
		}
		if !r.Flight.Complete {
			return fmt.Errorf("load: worst-ack trace %#x causal chain incomplete: kinds %v", r.Flight.Trace, r.Flight.Kinds)
		}
	}
	if r.Recovery.Performed {
		rec := r.Recovery
		for name, v := range map[string]float64{
			"rto_seconds":          rec.RTOSeconds,
			"slo_restore_seconds":  rec.SLORestoreSeconds,
			"kill_at_seconds":      rec.KillAtSeconds,
			"recovered_at_seconds": rec.RecoveredAtSeconds,
		} {
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return fmt.Errorf("load: recovery %s = %g, want finite > 0", name, v)
			}
		}
		if rec.RecoveredAtSeconds <= rec.KillAtSeconds {
			return fmt.Errorf("load: recovery sequencing: recovered at %gs not after kill at %gs",
				rec.RecoveredAtSeconds, rec.KillAtSeconds)
		}
		if rec.SLORestoredAtSeconds <= rec.KillAtSeconds {
			return fmt.Errorf("load: recovery sequencing: SLO restored at %gs not after kill at %gs",
				rec.SLORestoredAtSeconds, rec.KillAtSeconds)
		}
	}
	return nil
}

// validate checks a non-empty summary has sane, ordered quantiles.
func (s LatencySummary) validate(what string) error {
	if s.Count == 0 {
		return nil // an idle later stage is legal; emptiness of stage 1 is checked above
	}
	if s.P50 <= 0 || s.P99 <= 0 || s.P999 <= 0 {
		return fmt.Errorf("load: %s has zero quantiles with %d observations", what, s.Count)
	}
	if s.P50 > s.P99 || s.P99 > s.P999 {
		return fmt.Errorf("load: %s quantiles not monotone: p50=%g p99=%g p999=%g",
			what, s.P50, s.P99, s.P999)
	}
	return nil
}

// WriteFile marshals the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
