package load

import (
	"math/rand"
	"sync"
	"time"

	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/remote"
)

// maxPending caps the per-session queue of unacknowledged update send times.
// Under saturation the server coalesces a burst into one grant, so older
// pending entries are superseded rather than individually acked; the cap
// bounds memory while the newest-pending matching rule keeps the latency
// measurement honest (see the package comment).
const maxPending = 32

// pendingUpdate is one unacked update frame: when it was handed to the
// transport and the causal trace ID minted for it, so the worst-latency ack of
// a stage can be traced through the server's flight recorder.
type pendingUpdate struct {
	t  time.Time
	tr uint64
}

// session is one simulated mobile user: a deterministic waypoint walker, an
// auto-reconnecting wire client, and the pending-ack bookkeeping that turns
// region grants into latency observations.
type session struct {
	h      *harness
	id     uint64
	walker *mobility.Waypoint
	client *remote.MobileClient

	mu       sync.Mutex
	pending  []pendingUpdate // unacked updates, oldest first
	lastSend time.Time       // last update frame of any kind, for ReportEvery
}

// newSession dials one mobile session and starts its tick loop. Each session
// derives every random stream from (cfg.Seed, id), so the fleet's offered
// workload is reproducible run to run.
func newSession(h *harness, id uint64) (*session, error) {
	cfg := h.cfg
	start := startPosition(cfg, id)
	s := &session{
		h:      h,
		id:     id,
		walker: mobility.NewWaypoint(cfg.Seed, id, cfg.Space, cfg.MeanSpeed, cfg.MeanPeriod, start),
	}
	client, err := remote.DialClientOpts(cfg.Addr, id, start, remote.ClientOptions{
		Reconnect:  true,
		BackoffMin: 20 * time.Millisecond,
		Seed:       sessionSeed(cfg.Seed, 1<<42+id),
		Hooks: remote.ClientHooks{
			UpdateSent:    s.onUpdateSent,
			RegionGranted: s.onRegionGranted,
		},
	})
	if err != nil {
		return nil, err
	}
	s.client = client
	h.wg.Add(1)
	go s.run()
	return s, nil
}

// startPosition derives the session's deterministic starting point.
// mobility.StartPositions draws all n positions from one stream; sessions
// here join incrementally across stages, so derive per-ID instead.
func startPosition(cfg Config, id uint64) geom.Point {
	rng := rand.New(rand.NewSource(sessionSeed(cfg.Seed, 1<<43+id)))
	return geom.Pt(
		cfg.Space.MinX+rng.Float64()*cfg.Space.Width(),
		cfg.Space.MinY+rng.Float64()*cfg.Space.Height(),
	)
}

// onUpdateSent is the client hook for every update frame handed to the
// transport; it timestamps the pending ack and feeds the offered-rate
// counters.
func (s *session) onUpdateSent(trace uint64, err error) {
	now := time.Now()
	s.h.noteUpdate(err)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.lastSend = now
	if len(s.pending) == maxPending {
		copy(s.pending, s.pending[1:])
		s.pending = s.pending[:maxPending-1]
	}
	s.pending = append(s.pending, pendingUpdate{t: now, tr: trace})
	s.mu.Unlock()
}

// onRegionGranted is the client hook for safe-region grants: the grant acks
// the newest pending update (older in-flight updates were coalesced under
// it), and grants with nothing pending — pushes caused by other objects'
// movement or query churn — are not acks and are ignored. The latency
// observation carries a causal trace ID so the stage's worst ack can be
// looked up in the server's flight recorder: the grant's echoed trace when
// present (it names the event the server recorded as the grant's cause),
// else the acked update's own minted trace.
func (s *session) onRegionGranted(grantTr uint64) {
	now := time.Now()
	s.mu.Lock()
	var lat float64
	var tr uint64
	acked := len(s.pending) > 0
	if acked {
		newest := s.pending[len(s.pending)-1]
		lat = now.Sub(newest.t).Seconds()
		tr = grantTr
		if tr == 0 {
			tr = newest.tr
		}
		s.pending = s.pending[:0]
	}
	s.mu.Unlock()
	if acked {
		s.h.noteAck(lat, now, tr)
	}
}

// run is the session's open-loop tick goroutine: advance the walker on the
// wall-clock schedule, let the safe-region protocol decide whether to report,
// and floor the offered rate with forced reports when configured. It never
// waits on acknowledgements.
func (s *session) run() {
	defer s.h.wg.Done()
	cfg := s.h.cfg
	ticker := time.NewTicker(cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.h.done:
			return
		case now := <-ticker.C:
			t := now.Sub(s.h.epoch).Seconds() * cfg.Timescale
			p := s.walker.At(t)
			s.client.Tick(p)
			if cfg.ReportEvery > 0 {
				s.mu.Lock()
				stale := time.Since(s.lastSend) >= cfg.ReportEvery
				s.mu.Unlock()
				if stale {
					s.client.Report(p)
				}
			}
		}
	}
}
