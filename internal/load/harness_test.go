package load

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/remote"
)

// inprocControl implements ServerControl over an in-process remote.Server:
// Kill tears the listener and event loop down without snapshotting (the
// journal tail survives, exactly like a SIGKILL), Restart builds a fresh
// server on the same address and recovers from the persist directory.
//
// Kill deliberately does not wait for Serve to return: connection goroutines
// whose peer is idle only exit once the peer closes (exactly as a killed
// process's kernel would reset them), and the fleet's own shutdown closes
// every client at the end of the run.
type inprocControl struct {
	addr string
	dir  string
	srv  *remote.Server
}

func startInprocServer(t *testing.T, addr string) *remote.Server {
	t.Helper()
	s, err := remote.NewServer(addr, core.Options{
		Space: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		GridM: 20,
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	s.SetLogf(nil)
	s.SetWorkers(2)
	s.SetLease(30 * time.Second)
	go func() { _ = s.Serve() }()
	return s
}

func (c *inprocControl) Kill() error {
	return c.srv.Close()
}

func (c *inprocControl) Restart() error {
	s, err := remote.NewServer(c.addr, core.Options{
		Space: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		GridM: 20,
	})
	if err != nil {
		return err
	}
	s.SetLogf(nil)
	s.SetWorkers(2)
	s.SetLease(30 * time.Second)
	if _, err := s.Recover(c.dir); err != nil {
		_ = s.Close()
		return err
	}
	if err := s.SetPersist(c.dir, 0); err != nil {
		_ = s.Close()
		return err
	}
	go func() { _ = s.Serve() }()
	c.srv = s
	return nil
}

// TestLoadHarnessShortRun is the tier-1 end-to-end gate over the wire stack:
// a real server and the open-loop generator run in-process, the server is
// killed and recovered mid-run, and the resulting capacity report must
// validate — schema, non-zero latency quantiles, monotone ramp, and the
// SIGKILL → recover → SLO-restored sequencing.
func TestLoadHarnessShortRun(t *testing.T) {
	dir := t.TempDir()
	srv := startInprocServer(t, "127.0.0.1:0")
	if err := srv.SetPersist(dir, 0); err != nil {
		t.Fatalf("persist: %v", err)
	}
	addr := srv.Addr()
	ctl := &inprocControl{addr: addr, dir: dir, srv: srv}
	t.Cleanup(func() { _ = ctl.srv.Close() })

	// Flight recorder + admin surface on the first server life: the harness
	// resolves the worst-ack trace before the drill kills this process, so
	// the restarted life needs neither.
	fr := obs.NewFlightRecorder(8192, t.TempDir())
	t.Cleanup(fr.Close)
	srv.SetFlightRecorder(fr)
	admin := httptest.NewServer(srv.AdminHandler())
	t.Cleanup(admin.Close)

	reg := obs.NewRegistry()
	cfg := Config{
		Addr:             addr,
		Seed:             42,
		Sessions:         4,
		StageMultipliers: []int{1, 2},
		StageDuration:    700 * time.Millisecond,
		TickEvery:        20 * time.Millisecond,
		ReportEvery:      60 * time.Millisecond,
		ProbeEvery:       50 * time.Millisecond,
		MeanSpeed:        0.3,
		Timescale:        5,
		RangeQueries:     2,
		CircleQueries:    1,
		KNNQueries:       1,
		SLOP99:           2 * time.Second, // generous: CI boxes are slow, the schema is the test
		Recovery:         &RecoveryConfig{Control: ctl, Timeout: 20 * time.Second},
		Registry:         reg,
		FlightURL:        admin.URL + "/debug/flightrec",
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("report does not validate: %v", err)
	}

	// Ramp shape: the configured multiplier ladder, strictly monotone.
	if len(report.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(report.Stages))
	}
	if report.Stages[0].Sessions != 4 || report.Stages[1].Sessions != 8 {
		t.Errorf("stage sessions = %d,%d; want 4,8", report.Stages[0].Sessions, report.Stages[1].Sessions)
	}

	// The workload must have flowed: offered updates, acks with non-zero
	// quantiles, probe round trips.
	st := report.Stages[0]
	if st.OfferedUpdates == 0 || st.AckedUpdates == 0 {
		t.Errorf("stage 1 moved nothing: offered=%d acked=%d", st.OfferedUpdates, st.AckedUpdates)
	}
	for _, q := range []float64{st.UpdateAck.P50, st.UpdateAck.P99, st.UpdateAck.P999} {
		if q <= 0 {
			t.Errorf("stage 1 update-ack quantiles not all positive: %+v", st.UpdateAck)
			break
		}
	}

	// The worst-ack trace must resolve to a complete causal chain — causing
	// wire event plus the grant it produced — in the flight-recorder ring.
	if !report.Flight.Checked || report.Flight.Trace == 0 {
		t.Errorf("flight check did not run: %+v", report.Flight)
	}
	if !report.Flight.Complete {
		t.Errorf("worst-ack trace %#x chain incomplete: %d events, kinds %v",
			report.Flight.Trace, report.Flight.Events, report.Flight.Kinds)
	}

	// SIGKILL → recover → SLO-restored sequencing, all finite.
	rec := report.Recovery
	if !rec.Performed {
		t.Fatal("recovery drill did not run")
	}
	if rec.RTOSeconds <= 0 || rec.SLORestoreSeconds <= 0 {
		t.Errorf("recovery not measured: RTO=%g SLORestore=%g", rec.RTOSeconds, rec.SLORestoreSeconds)
	}
	if !(rec.KillAtSeconds < rec.RecoveredAtSeconds) {
		t.Errorf("sequencing: kill at %g not before recovered at %g", rec.KillAtSeconds, rec.RecoveredAtSeconds)
	}
	if !(rec.KillAtSeconds < rec.SLORestoredAtSeconds) {
		t.Errorf("sequencing: kill at %g not before SLO restored at %g", rec.KillAtSeconds, rec.SLORestoredAtSeconds)
	}

	// The client-side metric families must mirror the run.
	if v := metricValue(t, reg, "srb_load_updates_sent_total"); v <= 0 {
		t.Errorf("srb_load_updates_sent_total = %g, want > 0", v)
	}
	if v := metricValue(t, reg, "srb_load_acks_total"); v <= 0 {
		t.Errorf("srb_load_acks_total = %g, want > 0", v)
	}

	// Round-trip the report through its JSON file form.
	path := t.TempDir() + "/LOAD_test.json"
	if err := report.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

// metricValue reads one unlabeled counter/gauge sample from a registry via
// the text exposition, so the test exercises the same path a scraper does.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	fams, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	f := fams[name]
	if f == nil {
		t.Fatalf("family %s missing", name)
	}
	return f.Samples[name]
}
