package load

import (
	"time"

	"srb/internal/geom"
	"srb/internal/query"
	"srb/internal/remote"
)

// probeIDBase keeps the prober's transient query IDs clear of the workload
// mix registered at queryIDBase.
const probeIDBase = 2_000_000

// prober samples server responsiveness at a fixed rate with a synchronous
// COUNT-query register/deregister round trip: unlike update acks, which only
// flow when objects leave their safe regions, the probe exercises the full
// event loop on schedule and its RTT is measurable even on an idle fleet.
type prober struct {
	h    *harness
	addr string
	app  *remote.AppClient
	rect geom.Rect
	next uint64
}

// newProber builds the prober; its connection dials lazily on first use so a
// server that is briefly down only costs that probe.
func newProber(h *harness, addr string) *prober {
	// A tiny rect in a deterministic corner of the space: cheap to evaluate,
	// and identical across runs with the same seed.
	sp := h.cfg.Space
	return &prober{
		h:    h,
		addr: addr,
		rect: geom.R(sp.MinX, sp.MinY, sp.MinX+0.01*sp.Width(), sp.MinY+0.01*sp.Height()),
	}
}

// loop runs until the harness shuts down, issuing one probe per interval.
func (p *prober) loop() {
	defer p.h.wg.Done()
	defer func() {
		if p.app != nil {
			_ = p.app.Close()
		}
	}()
	ticker := time.NewTicker(p.h.cfg.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-p.h.done:
			return
		case <-ticker.C:
			lat, err := p.once()
			p.h.noteProbe(lat, err)
		}
	}
}

// once performs one probe round trip and returns its latency.
func (p *prober) once() (float64, error) {
	if p.app == nil {
		app, err := remote.DialAppOpts(p.addr, remote.AppOptions{
			RPCTimeout:  2 * time.Second,
			RPCAttempts: 1,
			Seed:        sessionSeed(p.h.cfg.Seed, 1<<44),
		})
		if err != nil {
			return 0, err
		}
		app.SetLogf(nil)
		p.app = app
		p.h.wg.Add(1)
		go func() {
			defer p.h.wg.Done()
			for range app.Updates() {
			}
		}()
	}
	p.next++
	qid := query.ID(probeIDBase + p.next)
	t0 := time.Now()
	_, err := p.app.RegisterCount(qid, p.rect)
	lat := time.Since(t0).Seconds()
	if err != nil {
		// The conn may be dead (server crash): drop it so the next probe
		// re-dials instead of failing forever.
		_ = p.app.Close()
		p.app = nil
		return 0, err
	}
	if err := p.app.Deregister(qid); err != nil {
		_ = p.app.Close()
		p.app = nil
	}
	return lat, nil
}
