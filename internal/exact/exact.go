// Package exact evaluates range and kNN queries over exact object positions
// using a uniform grid. It is the "perfect knowledge" substrate of the OPT
// scheme in the paper's evaluation (Section 7), the ground truth for the
// monitoring-accuracy metric, and a brute-force-style oracle for tests of the
// safe-region monitor.
package exact

import (
	"sort"

	"srb/internal/geom"
)

// Index is a uniform-grid point index. It is not safe for concurrent use.
type Index struct {
	m     int
	space geom.Rect
	cw    float64
	ch    float64
	cells []map[uint64]struct{}
	pos   map[uint64]geom.Point
}

// New creates an index with an m×m grid over space.
func New(m int, space geom.Rect) *Index {
	if m < 1 {
		m = 1
	}
	return &Index{
		m:     m,
		space: space,
		cw:    space.Width() / float64(m),
		ch:    space.Height() / float64(m),
		cells: make([]map[uint64]struct{}, m*m),
		pos:   make(map[uint64]geom.Point),
	}
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.pos) }

// Pos returns the position of an object.
func (ix *Index) Pos(id uint64) (geom.Point, bool) {
	p, ok := ix.pos[id]
	return p, ok
}

// Set inserts the object or moves it to p.
func (ix *Index) Set(id uint64, p geom.Point) {
	if old, ok := ix.pos[id]; ok {
		oc := ix.cellIdx(old)
		nc := ix.cellIdx(p)
		if oc != nc {
			delete(ix.cells[oc], id)
			ix.addToCell(nc, id)
		}
	} else {
		ix.addToCell(ix.cellIdx(p), id)
	}
	ix.pos[id] = p
}

// Remove deletes an object, reporting whether it existed.
func (ix *Index) Remove(id uint64) bool {
	p, ok := ix.pos[id]
	if !ok {
		return false
	}
	delete(ix.cells[ix.cellIdx(p)], id)
	delete(ix.pos, id)
	return true
}

// Range returns the IDs of all objects inside r (closed), sorted ascending.
func (ix *Index) Range(r geom.Rect) []uint64 {
	rr := r.Intersect(ix.space)
	var out []uint64
	if !rr.IsValid() {
		return out
	}
	i0, j0 := ix.cellOf(geom.Point{X: rr.MinX, Y: rr.MinY})
	i1, j1 := ix.cellOf(geom.Point{X: rr.MaxX, Y: rr.MaxY})
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			for id := range ix.cells[j*ix.m+i] {
				if r.Contains(ix.pos[id]) {
					out = append(out, id)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Neighbor is a kNN result: an object and its distance to the query point.
type Neighbor struct {
	ID   uint64
	Dist float64
}

// KNN returns the k nearest objects to q ordered by distance (ties broken by
// ID), skipping objects for which exclude returns true. exclude may be nil.
func (ix *Index) KNN(q geom.Point, k int, exclude func(uint64) bool) []Neighbor {
	if k < 1 || len(ix.pos) == 0 {
		return nil
	}
	qi, qj := ix.cellOf(q)
	var best []Neighbor // kept sorted ascending, at most k entries
	worst := func() float64 {
		if len(best) < k {
			return -1 // sentinel: accept anything
		}
		return best[len(best)-1].Dist
	}
	addCell(ix, qi, qj, q, k, &best, exclude)
	for ring := 1; ring < 2*ix.m; ring++ {
		// Minimum possible distance from q to any cell in this ring.
		ringDist := float64(ring-1) * minf(ix.cw, ix.ch)
		if w := worst(); w >= 0 && ringDist > w {
			break
		}
		touched := false
		for di := -ring; di <= ring; di++ {
			for _, dj := range ringEdges(di, ring) {
				i, j := qi+di, qj+dj
				if i < 0 || i >= ix.m || j < 0 || j >= ix.m {
					continue
				}
				touched = true
				if w := worst(); w >= 0 && ix.cellRect(i, j).MinDist(q) > w {
					continue
				}
				addCell(ix, i, j, q, k, &best, exclude)
			}
		}
		if !touched && ring > ix.m {
			break
		}
	}
	return best
}

func addCell(ix *Index, i, j int, q geom.Point, k int, best *[]Neighbor, exclude func(uint64) bool) {
	cell := ix.cells[j*ix.m+i]
	for id := range cell {
		if exclude != nil && exclude(id) {
			continue
		}
		d := ix.pos[id].Dist(q)
		insertNeighbor(best, Neighbor{ID: id, Dist: d}, k)
	}
}

func insertNeighbor(best *[]Neighbor, n Neighbor, k int) {
	b := *best
	pos := sort.Search(len(b), func(i int) bool {
		//lint:allow floatcmp comparator tie-break: exact inequality guards the ID fallback
		if b[i].Dist != n.Dist {
			return b[i].Dist > n.Dist
		}
		return b[i].ID > n.ID
	})
	if pos >= k {
		return
	}
	b = append(b, Neighbor{})
	copy(b[pos+1:], b[pos:])
	b[pos] = n
	if len(b) > k {
		b = b[:k]
	}
	*best = b
}

func (ix *Index) cellOf(p geom.Point) (int, int) {
	i := int((p.X - ix.space.MinX) / ix.cw)
	j := int((p.Y - ix.space.MinY) / ix.ch)
	return clampIdx(i, ix.m), clampIdx(j, ix.m)
}

func (ix *Index) cellIdx(p geom.Point) int {
	i, j := ix.cellOf(p)
	return j*ix.m + i
}

func (ix *Index) cellRect(i, j int) geom.Rect {
	return geom.Rect{
		MinX: ix.space.MinX + float64(i)*ix.cw,
		MinY: ix.space.MinY + float64(j)*ix.ch,
		MaxX: ix.space.MinX + float64(i+1)*ix.cw,
		MaxY: ix.space.MinY + float64(j+1)*ix.ch,
	}
}

func (ix *Index) addToCell(c int, id uint64) {
	if ix.cells[c] == nil {
		ix.cells[c] = make(map[uint64]struct{})
	}
	ix.cells[c][id] = struct{}{}
}

// ringEdges returns the dj offsets forming the boundary of the square ring at
// the given di column: the full edge for the extreme columns, otherwise just
// the top and bottom rows.
func ringEdges(di, ring int) []int {
	if di == -ring || di == ring {
		out := make([]int, 0, 2*ring+1)
		for dj := -ring; dj <= ring; dj++ {
			out = append(out, dj)
		}
		return out
	}
	return []int{-ring, ring}
}

func clampIdx(i, m int) int {
	if i < 0 {
		return 0
	}
	if i >= m {
		return m - 1
	}
	return i
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
