package exact

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"srb/internal/geom"
)

var space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

func populate(rng *rand.Rand, n int, m int) (*Index, map[uint64]geom.Point) {
	ix := New(m, space)
	ref := map[uint64]geom.Point{}
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		ix.Set(uint64(i), p)
		ref[uint64(i)] = p
	}
	return ix, ref
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix, ref := populate(rng, 3000, 20)
	for trial := 0; trial < 60; trial++ {
		x, y := rng.Float64(), rng.Float64()
		q := geom.R(x, y, x+rng.Float64()*0.3, y+rng.Float64()*0.3)
		var want []uint64
		for id, p := range ref {
			if q.Contains(p) {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := ix.Range(q)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix, ref := populate(rng, 2500, 25)
	for trial := 0; trial < 60; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(10)
		type nd struct {
			id uint64
			d  float64
		}
		var brute []nd
		for id, p := range ref {
			brute = append(brute, nd{id, p.Dist(q)})
		}
		sort.Slice(brute, func(i, j int) bool {
			if brute[i].d != brute[j].d {
				return brute[i].d < brute[j].d
			}
			return brute[i].id < brute[j].id
		})
		got := ix.KNN(q, k, nil)
		if len(got) != k {
			t.Fatalf("trial %d: len = %d want %d", trial, len(got), k)
		}
		for i := 0; i < k; i++ {
			if got[i].ID != brute[i].id {
				t.Fatalf("trial %d k=%d: pos %d got %d want %d", trial, k, i, got[i].ID, brute[i].id)
			}
		}
	}
}

func TestKNNExclude(t *testing.T) {
	ix := New(4, space)
	for i := 0; i < 10; i++ {
		ix.Set(uint64(i), geom.Pt(float64(i)*0.1, 0.5))
	}
	got := ix.KNN(geom.Pt(0, 0.5), 2, func(id uint64) bool { return id == 0 })
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("exclude failed: %+v", got)
	}
}

func TestKNNFewerThanK(t *testing.T) {
	ix := New(4, space)
	ix.Set(1, geom.Pt(0.1, 0.1))
	ix.Set(2, geom.Pt(0.9, 0.9))
	got := ix.KNN(geom.Pt(0.5, 0.5), 5, nil)
	if len(got) != 2 {
		t.Fatalf("want all objects, got %d", len(got))
	}
	if got := New(4, space).KNN(geom.Pt(0, 0), 3, nil); got != nil {
		t.Fatalf("empty index: %v", got)
	}
}

func TestSetMovesBetweenCells(t *testing.T) {
	ix := New(10, space)
	ix.Set(1, geom.Pt(0.05, 0.05))
	ix.Set(1, geom.Pt(0.95, 0.95))
	if got := ix.Range(geom.R(0, 0, 0.2, 0.2)); len(got) != 0 {
		t.Fatalf("stale cell content: %v", got)
	}
	if got := ix.Range(geom.R(0.9, 0.9, 1, 1)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("moved object missing: %v", got)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestRemove(t *testing.T) {
	ix := New(10, space)
	ix.Set(1, geom.Pt(0.5, 0.5))
	if !ix.Remove(1) {
		t.Fatal("remove existing failed")
	}
	if ix.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if got := ix.Range(space); len(got) != 0 {
		t.Fatalf("object still indexed: %v", got)
	}
}

func TestPos(t *testing.T) {
	ix := New(10, space)
	ix.Set(7, geom.Pt(0.3, 0.4))
	p, ok := ix.Pos(7)
	if !ok || p != geom.Pt(0.3, 0.4) {
		t.Fatalf("Pos = %v,%v", p, ok)
	}
	if _, ok := ix.Pos(8); ok {
		t.Fatal("unknown id should miss")
	}
}

func TestRangeOutsideSpace(t *testing.T) {
	ix := New(10, space)
	ix.Set(1, geom.Pt(0.5, 0.5))
	if got := ix.Range(geom.R(2, 2, 3, 3)); len(got) != 0 {
		t.Fatalf("out-of-space range: %v", got)
	}
}

func TestKNNAfterHeavyChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix, ref := populate(rng, 800, 15)
	for step := 0; step < 5000; step++ {
		id := uint64(rng.Intn(800))
		p := geom.Pt(rng.Float64(), rng.Float64())
		ix.Set(id, p)
		ref[id] = p
	}
	q := geom.Pt(0.5, 0.5)
	got := ix.KNN(q, 5, nil)
	type nd struct {
		id uint64
		d  float64
	}
	var brute []nd
	for id, p := range ref {
		brute = append(brute, nd{id, p.Dist(q)})
	}
	sort.Slice(brute, func(i, j int) bool {
		if brute[i].d != brute[j].d {
			return brute[i].d < brute[j].d
		}
		return brute[i].id < brute[j].id
	})
	for i := range got {
		if got[i].ID != brute[i].id {
			t.Fatalf("pos %d: got %d want %d", i, got[i].ID, brute[i].id)
		}
	}
}

// Property: random op sequences keep the index consistent with a map.
func TestQuickIndexConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := New(8, space)
		ref := map[uint64]geom.Point{}
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				id := uint64(rng.Intn(60))
				p := geom.Pt(rng.Float64(), rng.Float64())
				ix.Set(id, p)
				ref[id] = p
			case 2:
				id := uint64(rng.Intn(60))
				_, had := ref[id]
				if ix.Remove(id) != had {
					return false
				}
				delete(ref, id)
			default:
				x, y := rng.Float64()*0.8, rng.Float64()*0.8
				q := geom.R(x, y, x+0.3, y+0.3)
				got := ix.Range(q)
				want := 0
				for _, p := range ref {
					if q.Contains(p) {
						want++
					}
				}
				if len(got) != want {
					return false
				}
			}
		}
		return ix.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
