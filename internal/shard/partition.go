// Package shard partitions the safe-region monitor's object index across N
// goroutine-confined shards behind the core.ObjIndex contract, and wraps the
// whole assembly in a ShardedMonitor presenting the same thread-safe surface
// as srb.ConcurrentMonitor.
//
// The split point is deliberately narrow: the coordinator (one core.Monitor)
// keeps every piece of query state — the grid index, result sets, reverse
// result index, probe bookkeeping, stats, ledger — and only the R*-tree over
// object safe regions is sharded. Each shard owns a contiguous stripe of
// grid-cell columns and a private R*-tree confined to one worker goroutine;
// the Forest routes point operations to the owning shard (migrating objects
// whose region crosses a stripe boundary), scatters range searches to all
// shards in parallel, and gathers kNN candidates through a per-node Visit
// protocol that a later PR can move behind the wire. Because the evalPQ
// comparator and candidate collection in internal/core are canonicalized,
// every monitor outcome — safe regions, results, Stats, journal — is
// bit-identical to the single-tree run (differential_test.go proves it at
// 1/2/4/8 shards). See ARCHITECTURE.md for the full contract.
package shard

import (
	"fmt"

	"srb/internal/core"
	"srb/internal/geom"
)

// Partition is the pure spatial ownership function: it divides the monitored
// space into N vertical stripes of whole grid-cell columns (the base M/N
// columns per shard, with the first M mod N stripes one column wider) and
// routes a safe region to the stripe containing its center. Routing depends
// only on the rect and the (space, M, N) triple — never on index state — so
// a snapshot written under one shard count reloads correctly under another,
// and a future remote shard can compute ownership locally.
type Partition struct {
	n     int // shard count
	m     int // grid resolution (columns)
	space geom.Rect
	cellW float64
}

// NewPartition builds the stripe partition for an n-shard index over the
// monitor's effective space and grid resolution (core.Options.WithDefaults).
// n is clamped below by 1; an n larger than the column count M leaves the
// trailing shards empty (legal but wasteful — see OPERATIONS.md "Choosing a
// shard count").
func NewPartition(opt core.Options, n int) Partition {
	opt = opt.WithDefaults()
	if n < 1 {
		n = 1
	}
	return Partition{n: n, m: opt.GridM, space: opt.Space, cellW: opt.Space.Width() / float64(opt.GridM)}
}

// N returns the shard count.
func (p Partition) N() int { return p.n }

// Route returns the shard owning a safe region: the stripe whose column
// range contains the rect's center. Centers on a column boundary belong to
// the right-hand column, mirroring the grid index's half-open cells.
func (p Partition) Route(r geom.Rect) int {
	cx := (r.MinX + r.MaxX) / 2
	col := int((cx - p.space.MinX) / p.cellW)
	if col < 0 {
		col = 0
	}
	if col >= p.m {
		col = p.m - 1
	}
	return p.shardOfColumn(col)
}

// shardOfColumn maps a grid column to its owning stripe: the first M mod N
// stripes take base+1 columns, the rest take base.
func (p Partition) shardOfColumn(col int) int {
	base := p.m / p.n
	if base == 0 {
		return col // more shards than columns: one column per stripe, rest empty
	}
	extra := p.m % p.n
	wide := extra * (base + 1)
	if col < wide {
		return col / (base + 1)
	}
	return extra + (col-wide)/base
}

// StripeRect returns the region of space owned by shard i (empty rect when
// the shard owns no columns). Diagnostic only — routing never consults it.
func (p Partition) StripeRect(i int) geom.Rect {
	lo, hi := p.columnRange(i)
	if lo >= hi {
		return geom.Rect{}
	}
	return geom.Rect{
		MinX: p.space.MinX + float64(lo)*p.cellW,
		MinY: p.space.MinY,
		MaxX: p.space.MinX + float64(hi)*p.cellW,
		MaxY: p.space.MaxY,
	}
}

// columnRange returns the half-open [lo, hi) column interval of shard i.
func (p Partition) columnRange(i int) (int, int) {
	base := p.m / p.n
	if base == 0 {
		if i < p.m {
			return i, i + 1
		}
		return p.m, p.m
	}
	extra := p.m % p.n
	if i < extra {
		return i * (base + 1), (i + 1) * (base + 1)
	}
	lo := extra*(base+1) + (i-extra)*base
	return lo, lo + base
}

// checkPartition verifies the stripe arithmetic covers every column exactly
// once (used by Forest.CheckInvariants).
func (p Partition) check() error {
	prev := 0
	for i := 0; i < p.n; i++ {
		lo, hi := p.columnRange(i)
		if lo != prev || hi < lo {
			return fmt.Errorf("shard: partition stripe %d covers [%d,%d), want start %d", i, lo, hi, prev)
		}
		prev = hi
	}
	if prev != p.m {
		return fmt.Errorf("shard: partition covers %d of %d columns", prev, p.m)
	}
	return nil
}
