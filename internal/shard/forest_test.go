package shard

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/rtree"
)

// A forest driven with random inserts, updates (including boundary
// crossings), and deletes must stay consistent with a brute-force mirror:
// identical Collect sets, Len, Get, and passing invariants throughout.
func TestForestAgainstBruteForce(t *testing.T) {
	opt := optsWithGrid(10)
	f := NewForest(opt, 4)
	defer f.Close()
	rng := rand.New(rand.NewSource(11))
	truth := make(map[uint64]geom.Rect)

	randRect := func() geom.Rect {
		x, y := rng.Float64(), rng.Float64()
		return geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*0.1, MaxY: y + rng.Float64()*0.1}
	}
	collectIDs := func(q geom.Rect) []uint64 {
		var ids []uint64
		for _, it := range f.Collect(q, nil) {
			ids = append(ids, it.ID)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	bruteIDs := func(q geom.Rect) []uint64 {
		var ids []uint64
		for id, r := range truth {
			if r.Intersects(q) {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}

	for step := 0; step < 3000; step++ {
		id := uint64(rng.Intn(150))
		switch rng.Intn(4) {
		case 0:
			r := randRect()
			if _, ok := truth[id]; ok {
				f.Update(id, r)
			} else {
				f.Insert(id, r)
			}
			truth[id] = r
		case 1:
			if _, ok := truth[id]; ok {
				r := randRect()
				f.Update(id, r)
				truth[id] = r
			}
		case 2:
			_, ok := truth[id]
			if got := f.Delete(id); got != ok {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, id, got, ok)
			}
			delete(truth, id)
		default:
			q := randRect()
			got, want := collectIDs(q), bruteIDs(q)
			if len(got) != len(want) {
				t.Fatalf("step %d: Collect returned %v, want %v", step, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Collect returned %v, want %v", step, got, want)
				}
			}
		}
		want, inTruth := truth[id]
		r, ok := f.Get(id)
		//lint:allow floatcmp mirror equality is the contract
		if ok != inTruth || (ok && r != want) {
			t.Fatalf("step %d: Get(%d) = %v,%v; truth %v,%v", step, id, r, ok, want, inTruth)
		}
		if f.Len() != len(truth) {
			t.Fatalf("step %d: Len %d, truth %d", step, f.Len(), len(truth))
		}
		if step%500 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("final: %v", err)
	}
	if f.Migrations() == 0 {
		t.Fatal("no migrations: workload too static to test boundary crossings")
	}
}

// An in-place shrink whose center crosses a stripe boundary must NOT migrate
// (the mid-search hazard): the object becomes a stray in its old shard, is
// still found by Collect, and the next non-shrink update migrates it.
func TestForestStrayShrink(t *testing.T) {
	f := NewForest(optsWithGrid(10), 2)
	defer f.Close()
	// Wide rect centered right of the stripe boundary at x=0.5 → shard 1.
	wide := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.8, MaxY: 0.6}
	f.Insert(1, wide)
	if got := f.part.Route(wide); got != 1 {
		t.Fatalf("setup: wide rect routed to %d, want 1", got)
	}
	// Shrink to the left edge: contained in wide, center now routes to shard 0.
	shrunk := geom.Rect{MinX: 0.4, MinY: 0.45, MaxX: 0.45, MaxY: 0.55}
	if got := f.part.Route(shrunk); got != 0 {
		t.Fatalf("setup: shrunk rect routed to %d, want 0", got)
	}
	f.Update(1, shrunk)
	if n := f.Migrations(); n != 0 {
		t.Fatalf("shrink migrated (%d migrations), must stay in place", n)
	}
	if ids := f.StrayIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("StrayIDs = %v, want [1]", ids)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants with stray: %v", err)
	}
	found := f.Collect(geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.5, MaxY: 0.7}, nil)
	if len(found) != 1 || found[0].ID != 1 {
		t.Fatalf("stray not found by Collect: %v", found)
	}
	// A non-shrink update (disjoint from the current rect) migrates it home.
	moved := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}
	f.Update(1, moved)
	if n := f.Migrations(); n != 1 {
		t.Fatalf("boundary-crossing update made %d migrations, want 1", n)
	}
	if ids := f.StrayIDs(); len(ids) != 0 {
		t.Fatalf("stray mark not cleared: %v", ids)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after migration: %v", err)
	}
}

// SetObs registers the six srb_shard_* families and keeps the per-shard
// object gauges in step with mutations.
func TestForestObs(t *testing.T) {
	f := NewForest(optsWithGrid(10), 2)
	defer f.Close()
	sink := obs.NewSink(obs.NewRegistry(), nil)
	f.SetObs(sink)
	fr := obs.NewFlightRecorder(16, "")
	f.SetFlightRecorder(fr)

	left := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}
	right := geom.Rect{MinX: 0.7, MinY: 0.1, MaxX: 0.8, MaxY: 0.2}
	f.Insert(1, left)
	f.Insert(2, right)
	f.Update(1, right) // migrate 0 -> 1
	f.Collect(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, nil)

	var dumpBuf strings.Builder
	if err := sink.Registry().WriteText(&dumpBuf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	dump := dumpBuf.String()
	for _, want := range []string{
		`srb_shard_objects{shard="0"} 0`,
		`srb_shard_objects{shard="1"} 2`,
		`srb_shard_migrations_total{shard="1"} 1`,
		`srb_shard_scatter_total{shard="1"} 1`,
		"srb_shard_stray_objects 0",
		"srb_shard_scatter_fanout",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, dump)
		}
	}
	var migrates int
	for _, ev := range fr.Events() {
		if ev.Kind == obs.FlightMigrate && ev.Obj == 1 {
			migrates++
		}
	}
	if migrates != 1 {
		t.Fatalf("flight recorder holds %d migrate events for object 1, want 1", migrates)
	}
}

// Close is idempotent and leaves no workers behind.
func TestForestClose(t *testing.T) {
	f := NewForest(optsWithGrid(10), 3)
	f.Insert(1, geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2})
	f.Close()
	f.Close()
}

// Visit expands a node inside the owning worker, yielding the same children a
// direct expansion would.
func TestForestVisit(t *testing.T) {
	f := NewForest(optsWithGrid(10), 2)
	defer f.Close()
	for i := 0; i < 20; i++ {
		x := float64(i) / 20
		f.Insert(uint64(i), geom.Rect{MinX: x, MinY: 0.4, MaxX: x + 0.02, MaxY: 0.45})
	}
	seen := make(map[uint64]bool)
	var walk func(shard int, n *rtree.Node)
	walk = func(shard int, n *rtree.Node) {
		f.Visit(shard, n, func(child *rtree.Node, _ geom.Rect, it rtree.Item, isItem bool) {
			if isItem {
				seen[it.ID] = true
			} else {
				walk(shard, child)
			}
		})
	}
	f.Seeds(walk)
	if len(seen) != 20 {
		t.Fatalf("walked %d objects via Seeds+Visit, want 20", len(seen))
	}
}
