package shard

import (
	"fmt"
	"io"
	"sync"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
)

// ShardedMonitor is a thread-safe monitoring server whose object index is
// partitioned across N goroutine-confined shards. It presents exactly the
// srb.ConcurrentMonitor surface — remote.Server, the simulator, and srb-load
// drive it unchanged — while the Forest underneath routes, migrates,
// scatters, and gathers. All monitor semantics (results, safe regions,
// stats, journaling, snapshots) are bit-identical to a single-tree monitor;
// the differential harness in this package proves it at 1, 2, 4 and 8
// shards, including across a crash-recovery cycle.
type ShardedMonitor struct {
	mu     sync.Mutex
	mon    *core.Monitor
	forest *Forest
}

// New creates a sharded monitor with n shards. The prober and onUpdate
// callbacks are invoked while the internal lock is held: they must not call
// back into the monitor. Close releases the shard workers when done.
func New(opt core.Options, n int, prober core.Prober, onUpdate func(core.ResultUpdate)) (*ShardedMonitor, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	mon := core.New(opt, prober, onUpdate)
	f := NewForest(opt, n)
	if err := mon.SetIndex(f); err != nil {
		f.Close()
		return nil, err
	}
	return &ShardedMonitor{mon: mon, forest: f}, nil
}

// Close stops the shard workers. The monitor must not be used afterwards.
func (s *ShardedMonitor) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forest.Close()
}

// Core returns the wrapped core.Monitor for recovery wiring (journal replay
// drives the monitor directly) and tests. Callers must serialize access
// themselves while using it.
func (s *ShardedMonitor) Core() *core.Monitor { return s.mon }

// Forest returns the sharded index for per-shard diagnostics.
func (s *ShardedMonitor) Forest() *Forest { return s.forest }

// NumShards returns the shard count.
func (s *ShardedMonitor) NumShards() int { return s.forest.NumShards() }

// SetObs attaches an observability sink to the monitor and the forest.
func (s *ShardedMonitor) SetObs(sink *obs.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mon.SetObs(sink)
	s.forest.SetObs(sink)
}

// SetFlightRecorder attaches a flight recorder to the monitor and the
// forest (migration events).
func (s *ShardedMonitor) SetFlightRecorder(fr *obs.FlightRecorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mon.SetFlightRecorder(fr)
	s.forest.SetFlightRecorder(fr)
}

// SetTime advances the monitor clock.
func (s *ShardedMonitor) SetTime(t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mon.SetTime(t)
}

// AddObject registers a moving object.
func (s *ShardedMonitor) AddObject(id uint64, p geom.Point) []core.SafeRegionUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.AddObject(id, p)
}

// RemoveObject deregisters an object.
func (s *ShardedMonitor) RemoveObject(id uint64) []core.SafeRegionUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.RemoveObject(id)
}

// Update processes a location update.
func (s *ShardedMonitor) Update(id uint64, p geom.Point) []core.SafeRegionUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Update(id, p)
}

// RegisterRange registers a continuous range query.
func (s *ShardedMonitor) RegisterRange(id query.ID, rect geom.Rect) ([]uint64, []core.SafeRegionUpdate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.RegisterRange(id, rect)
}

// RegisterKNN registers a continuous kNN query.
func (s *ShardedMonitor) RegisterKNN(id query.ID, pt geom.Point, k int, ordered bool) ([]uint64, []core.SafeRegionUpdate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.RegisterKNN(id, pt, k, ordered)
}

// RegisterCount registers an aggregate COUNT range query.
func (s *ShardedMonitor) RegisterCount(id query.ID, rect geom.Rect) (int, []core.SafeRegionUpdate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.RegisterCount(id, rect)
}

// RegisterWithinDistance registers a circular range query.
func (s *ShardedMonitor) RegisterWithinDistance(id query.ID, center geom.Point, radius float64) ([]uint64, []core.SafeRegionUpdate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.RegisterWithinDistance(id, center, radius)
}

// Deregister removes a query.
func (s *ShardedMonitor) Deregister(id query.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Deregister(id)
}

// Results returns the current results of a query.
func (s *ShardedMonitor) Results(id query.ID) ([]uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Results(id)
}

// SafeRegion returns the current safe region of an object.
func (s *ShardedMonitor) SafeRegion(id uint64) (geom.Rect, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.SafeRegion(id)
}

// Stats returns the monitor's work counters.
func (s *ShardedMonitor) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Stats()
}

// NumObjects returns the number of registered objects.
func (s *ShardedMonitor) NumObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.NumObjects()
}

// NumQueries returns the number of registered queries.
func (s *ShardedMonitor) NumQueries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.NumQueries()
}

// SaveSnapshot writes the monitor state to w. The format is shard-count
// independent: a snapshot written under one -shards value reloads correctly
// under another, because routing is a pure function of each safe region.
func (s *ShardedMonitor) SaveSnapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.SaveSnapshot(w)
}

// LoadSnapshot restores monitor state saved by SaveSnapshot (sharded or
// not) into this empty monitor, re-routing every object to its shard.
func (s *ShardedMonitor) LoadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.LoadSnapshot(r)
}
