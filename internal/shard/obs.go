package shard

import (
	"fmt"
	"strconv"

	"srb/internal/obs"
)

// forestObs holds the forest's bound instruments, one slot per shard for the
// labeled families. Nil when uninstrumented; every hook is a single branch,
// mirroring core's monObs convention.
type forestObs struct {
	objects    []*obs.Gauge   // srb_shard_objects{shard}
	strays     *obs.Gauge     // srb_shard_stray_objects
	migrations []*obs.Counter // srb_shard_migrations_total{shard} (arrivals)
	scatters   []*obs.Counter // srb_shard_scatter_total{shard}
	visits     []*obs.Counter // srb_shard_visits_total{shard}
	fanout     *obs.Histogram // srb_shard_scatter_fanout
}

// scatterFanoutBuckets bounds the fanout histogram: a scatter touching one
// shard is the common case, the full broadcast the worst.
func scatterFanoutBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16}
}

// SetObs attaches an observability sink to the forest (nil detaches).
// Instrument registration is idempotent per registry; the shard label is the
// stripe index as a decimal string.
func (f *Forest) SetObs(sink *obs.Sink) {
	if sink == nil || sink.Registry() == nil {
		f.fobs = nil
		return
	}
	r := sink.Registry()
	n := f.part.N()
	o := &forestObs{
		objects:    make([]*obs.Gauge, n),
		migrations: make([]*obs.Counter, n),
		scatters:   make([]*obs.Counter, n),
		visits:     make([]*obs.Counter, n),
	}
	for i := 0; i < n; i++ {
		s := strconv.Itoa(i)
		o.objects[i] = r.Gauge("srb_shard_objects", "Objects owned by each shard of the sharded object index.", "shard", s)
		o.migrations[i] = r.Counter("srb_shard_migrations_total", "Objects that migrated into each shard across a stripe boundary.", "shard", s)
		o.scatters[i] = r.Counter("srb_shard_scatter_total", "Scatter-gather range searches executed by each shard.", "shard", s)
		o.visits[i] = r.Counter("srb_shard_visits_total", "Best-first kNN node expansions served by each shard (cross-shard candidate exchange).", "shard", s)
	}
	o.strays = r.Gauge("srb_shard_stray_objects", "Objects indexed off their routed stripe after an in-place shrink (migration deferred).")
	o.fanout = r.Histogram("srb_shard_scatter_fanout", "Shards contributing candidates per scatter-gather range search.", scatterFanoutBuckets())
	for i := range f.counts {
		o.objects[i].Set(float64(f.counts[i]))
	}
	f.fobs = o
}

// SetFlightRecorder attaches a flight recorder; migrations are recorded into
// it as "migrate" events. A nil recorder detaches.
func (f *Forest) SetFlightRecorder(fr *obs.FlightRecorder) { f.flight = fr }

func (f *Forest) noteCount(shard int) {
	if f.fobs == nil {
		return
	}
	f.fobs.objects[shard].Set(float64(f.counts[shard]))
	f.fobs.strays.Set(float64(f.strayN))
}

func (f *Forest) noteMigration(id uint64, from, to int) {
	if f.fobs != nil {
		f.fobs.migrations[to].Inc()
	}
	if f.flight != nil {
		f.flight.Record(obs.FlightEvent{
			Kind: obs.FlightMigrate,
			Obj:  id,
			Note: fmt.Sprintf("shard %d->%d", from, to),
		})
	}
}

func (f *Forest) noteScatter(fanout int) {
	if f.fobs == nil {
		return
	}
	for i, w := range f.workers {
		if w.tree.Len() > 0 {
			f.fobs.scatters[i].Inc()
		}
	}
	f.fobs.fanout.Observe(float64(fanout))
}

func (f *Forest) noteVisit(shard int) {
	if f.fobs != nil {
		f.fobs.visits[shard].Inc()
	}
}
