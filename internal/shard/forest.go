package shard

import (
	"fmt"
	"sort"
	"sync"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/rtree"
)

// call is one unit of work shipped to a shard worker. fn runs on the
// worker's goroutine; when ack is non-nil the worker signals completion on
// it, giving the coordinator a happens-before edge over everything fn read
// or wrote.
type call struct {
	fn  func()
	ack chan<- struct{}
}

// worker owns one shard's R*-tree. The tree is confined to the worker's
// goroutine: every read or write runs as a call on reqs, so the only
// synchronization the Forest needs is the channel itself. This is the local
// embodiment of the remote-shard seam — a later PR replaces the channel with
// the wire protocol and the closures with request/response messages (route,
// migrate, scatter, gather) without touching the coordinator's algorithms.
type worker struct {
	id   int
	tree *rtree.Tree
	reqs chan call
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for c := range w.reqs {
		c.fn()
		if c.ack != nil {
			c.ack <- struct{}{}
		}
	}
}

// objInfo is the coordinator-side mirror of one indexed object: owning
// shard, indexed rect, and whether the object is a stray (its rect routes to
// a different stripe than its owner — see Update).
type objInfo struct {
	shard int
	rect  geom.Rect
	stray bool
}

// Forest is a core.ObjIndex sharded into N per-stripe R*-trees, each
// confined to its own worker goroutine. The coordinator (the monitor's
// single mutator goroutine) routes point operations to the owning shard,
// migrates objects whose updates cross a stripe boundary, scatters range
// collection to every shard in parallel, and serves best-first kNN expansion
// by executing each node visit inside the owning worker.
//
// Concurrency contract: all ObjIndex methods and Close must be called from
// one goroutine at a time (the Monitor serializes them); only the internal
// scatter fans out. Close stops the workers; no method may be called after.
type Forest struct {
	part    Partition
	workers []*worker
	objs    map[uint64]objInfo
	counts  []int
	ack     chan struct{} // reusable completion for serialized single-shard calls
	wg      sync.WaitGroup
	closed  sync.Once

	// Scatter scratch, reused across Collect calls (coordinator-confined).
	buckets [][]rtree.Item

	migrations int64 // total cross-shard migrations (tests and /queries)
	scatters   int64 // total scatter-gather collections
	strayN     int   // objects currently indexed off their routed stripe

	fobs   *forestObs
	flight *obs.FlightRecorder
}

// NewForest builds an n-shard forest for a monitor configured with opt. The
// partition derives from the effective options (core.Options.WithDefaults),
// so the caller may pass the same opt it gives core.New. Workers start
// immediately; the caller owns Close.
func NewForest(opt core.Options, n int) *Forest {
	opt = opt.WithDefaults()
	f := &Forest{
		part:    NewPartition(opt, n),
		workers: make([]*worker, 0, n),
		objs:    make(map[uint64]objInfo),
		counts:  make([]int, n),
		ack:     make(chan struct{}),
		buckets: make([][]rtree.Item, n),
	}
	for i := 0; i < n; i++ {
		w := &worker{id: i, tree: rtree.NewWithCapacity(opt.TreeCapacity), reqs: make(chan call)}
		f.workers = append(f.workers, w)
		f.wg.Add(1)
		go w.run(&f.wg) //lint:allow bareGoroutine shard worker: runs until Close closes reqs, tracked by f.wg
	}
	return f
}

// Close stops every shard worker and waits for them to exit. Idempotent and
// safe to call from multiple goroutines; must not race any in-flight index
// call.
func (f *Forest) Close() {
	f.closed.Do(func() {
		for _, w := range f.workers {
			close(w.reqs) //lint:allow chanlife the coordinator is the sole sender; callers must not race Close with index calls
		}
		f.wg.Wait()
	})
}

// NumShards returns the shard count.
func (f *Forest) NumShards() int { return f.part.N() }

// Partition returns the pure routing function of this forest.
func (f *Forest) Partition() Partition { return f.part }

// Migrations returns how many objects have crossed a shard boundary.
func (f *Forest) Migrations() int64 { return f.migrations }

// Scatters returns how many scatter-gather range collections have run.
func (f *Forest) Scatters() int64 { return f.scatters }

// Strays returns how many objects are currently indexed off their routed
// stripe (in-place shrinks whose migration is deferred — see Update).
func (f *Forest) Strays() int { return f.strayN }

// ShardObjects returns the number of objects owned by each shard.
func (f *Forest) ShardObjects() []int {
	return append([]int(nil), f.counts...)
}

// do1 runs fn inside one shard's worker and waits for it to finish. The
// shared unbuffered ack channel is safe because calls are serialized by the
// coordinator.
func (f *Forest) do1(shard int, fn func()) {
	f.workers[shard].reqs <- call{fn: fn, ack: f.ack}
	<-f.ack
}

// Insert implements core.ObjIndex.
func (f *Forest) Insert(id uint64, r geom.Rect) {
	to := f.part.Route(r)
	w := f.workers[to]
	f.do1(to, func() { w.tree.Insert(id, r) })
	f.objs[id] = objInfo{shard: to, rect: r}
	f.counts[to]++
	f.noteCount(to)
}

// Delete implements core.ObjIndex.
func (f *Forest) Delete(id uint64) bool {
	info, ok := f.objs[id]
	if !ok {
		return false
	}
	w := f.workers[info.shard]
	f.do1(info.shard, func() { w.tree.Delete(id) })
	delete(f.objs, id)
	f.counts[info.shard]--
	if info.stray {
		f.strayN--
	}
	f.noteCount(info.shard)
	return true
}

// Update implements core.ObjIndex. An update whose new rect routes to a
// different stripe migrates the object — delete from the old shard, insert
// into the new, flip ownership — and records the migration (counter plus
// flight-recorder event). The one exception is an in-place shrink: a rect
// contained in the currently indexed rect comes from a reachability-circle
// virtual probe, which can fire mid-search while the evaluation frontier
// holds node pointers into this very tree. A shrink always takes the R*-tree
// fast path (no restructuring), so it is applied in the owning shard even
// when its center has crossed a stripe boundary; the object is then a
// "stray" until its next boundary-crossing update migrates it. Strays cost
// only load-balance precision — every search is a broadcast over all shards,
// so ownership never affects results (ARCHITECTURE.md "Migration protocol").
func (f *Forest) Update(id uint64, r geom.Rect) {
	info, ok := f.objs[id]
	if !ok {
		f.Insert(id, r)
		return
	}
	to := f.part.Route(r)
	from := info.shard
	if to == from || info.rect.ContainsRect(r) {
		w := f.workers[from]
		f.do1(from, func() { w.tree.Update(id, r) })
		stray := to != from
		if stray != info.stray {
			if stray {
				f.strayN++
			} else {
				f.strayN--
			}
		}
		f.objs[id] = objInfo{shard: from, rect: r, stray: stray}
		f.noteCount(from)
		return
	}
	src, dst := f.workers[from], f.workers[to]
	f.do1(from, func() { src.tree.Delete(id) })
	f.do1(to, func() { dst.tree.Insert(id, r) })
	if info.stray {
		f.strayN--
	}
	f.objs[id] = objInfo{shard: to, rect: r}
	f.counts[from]--
	f.counts[to]++
	f.migrations++
	f.noteCount(from)
	f.noteCount(to)
	f.noteMigration(id, from, to)
}

// Get implements core.ObjIndex from the coordinator-side mirror.
func (f *Forest) Get(id uint64) (geom.Rect, bool) {
	info, ok := f.objs[id]
	if !ok {
		return geom.Rect{}, false
	}
	return info.rect, true
}

// Len implements core.ObjIndex.
func (f *Forest) Len() int { return len(f.objs) }

// Collect implements core.ObjIndex by scatter-gather: every shard searches
// its own tree in parallel on its worker goroutine, then the coordinator
// concatenates the per-shard buckets shard-major. The concatenation order is
// irrelevant to the monitor — rangeCandidates sorts by object ID — which is
// exactly what makes the scatter safe to parallelize.
func (f *Forest) Collect(q geom.Rect, dst []rtree.Item) []rtree.Item {
	var wg sync.WaitGroup
	for i, w := range f.workers {
		f.buckets[i] = f.buckets[i][:0]
		if w.tree.Len() == 0 {
			continue
		}
		wg.Add(1)
		bucket := &f.buckets[i]
		ww := w
		ff := func() {
			defer wg.Done()
			ww.tree.Search(q, func(it rtree.Item) bool {
				*bucket = append(*bucket, it)
				return true
			})
		}
		ww.reqs <- call{fn: ff}
	}
	wg.Wait()
	fanout := 0
	for i := range f.buckets {
		if len(f.buckets[i]) > 0 {
			fanout++
		}
		dst = append(dst, f.buckets[i]...)
	}
	f.scatters++
	f.noteScatter(fanout)
	return dst
}

// Seeds implements core.ObjIndex: one seed per non-empty shard tree. The
// root pointers are read from the coordinator goroutine, which is safe —
// every mutation was acknowledged through a channel, giving the coordinator
// a happens-before edge over all worker writes, and no mutation can run
// concurrently with an evaluation.
func (f *Forest) Seeds(yield func(shard int, root *rtree.Node)) {
	for i, w := range f.workers {
		if w.tree.Len() > 0 {
			yield(i, w.tree.Root())
		}
	}
}

// Visit implements core.ObjIndex: the node expansion runs inside the owning
// shard's worker (the cross-shard candidate-exchange step of a boundary
// kNN), with the coordinator blocked until it completes. The yield callback
// may therefore touch coordinator state — the channel rendezvous orders the
// accesses.
func (f *Forest) Visit(shard int, n *rtree.Node, yield core.IndexVisitor) {
	f.do1(shard, func() { core.ExpandNode(n, yield) })
	f.noteVisit(shard)
}

// CheckInvariants implements core.ObjIndex: per-shard tree invariants plus
// the forest's own — the partition covers every grid column exactly once,
// the coordinator mirror matches each tree's contents bit for bit, per-shard
// counts agree, and every non-stray object is indexed in the stripe its rect
// routes to.
func (f *Forest) CheckInvariants() error {
	if err := f.part.check(); err != nil {
		return err
	}
	total := 0
	for i, w := range f.workers {
		var err error
		var items []rtree.Item
		ww := w
		f.do1(i, func() {
			err = ww.tree.CheckInvariants()
			ww.tree.All(func(it rtree.Item) bool {
				items = append(items, it)
				return true
			})
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if len(items) != f.counts[i] {
			return fmt.Errorf("shard %d: tree has %d items, count says %d", i, len(items), f.counts[i])
		}
		total += len(items)
		for _, it := range items {
			info, ok := f.objs[it.ID]
			if !ok {
				return fmt.Errorf("shard %d: object %d indexed but not in mirror", i, it.ID)
			}
			if info.shard != i {
				return fmt.Errorf("object %d: mirror says shard %d, found in %d", it.ID, info.shard, i)
			}
			//lint:allow floatcmp mirror and tree hold copies of the same rect; bit equality is the invariant
			if info.rect != it.Rect {
				return fmt.Errorf("object %d: mirror rect %v != indexed %v", it.ID, info.rect, it.Rect)
			}
			if want := f.part.Route(it.Rect); want != i && !info.stray {
				return fmt.Errorf("object %d: routed to shard %d but owned by %d without stray mark", it.ID, want, i)
			}
		}
	}
	if total != len(f.objs) {
		return fmt.Errorf("shard trees hold %d objects, mirror has %d", total, len(f.objs))
	}
	return nil
}

// StrayIDs returns the IDs of stray objects (indexed off their routed
// stripe after an in-place shrink), ascending. Diagnostic only.
func (f *Forest) StrayIDs() []uint64 {
	var ids []uint64
	for id, info := range f.objs {
		if info.stray {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
