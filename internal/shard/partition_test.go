package shard

import (
	"math/rand"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
)

func optsWithGrid(m int) core.Options {
	return core.Options{Space: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, GridM: m}
}

// Every (M, N) combination must cover each grid column exactly once, and
// Route must agree with the stripe intervals.
func TestPartitionCoverage(t *testing.T) {
	for m := 1; m <= 24; m++ {
		for n := 1; n <= 20; n++ {
			p := NewPartition(optsWithGrid(m), n)
			if err := p.check(); err != nil {
				t.Fatalf("M=%d N=%d: %v", m, n, err)
			}
			for col := 0; col < m; col++ {
				s := p.shardOfColumn(col)
				if s < 0 || s >= n {
					t.Fatalf("M=%d N=%d: column %d routed to shard %d", m, n, col, s)
				}
				lo, hi := p.columnRange(s)
				if col < lo || col >= hi {
					t.Fatalf("M=%d N=%d: column %d routed to shard %d owning [%d,%d)", m, n, col, s, lo, hi)
				}
			}
		}
	}
}

// Route is a pure function of the rect center: clamped at the space edges,
// boundary centers belong to the right-hand column, and stripe rects agree.
func TestPartitionRoute(t *testing.T) {
	p := NewPartition(optsWithGrid(10), 4)
	at := func(x float64) geom.Rect { return geom.RectAround(geom.Pt(x, 0.5)) }
	if got := p.Route(at(-5)); got != 0 {
		t.Fatalf("below-space center routed to %d, want 0", got)
	}
	if got := p.Route(at(5)); got != p.N()-1 {
		t.Fatalf("above-space center routed to %d, want %d", got, p.N()-1)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		x, y := rng.Float64(), rng.Float64()
		w, h := rng.Float64()*0.2, rng.Float64()*0.2
		r := geom.Rect{MinX: x - w, MinY: y - h, MaxX: x + w, MaxY: y + h}
		s := p.Route(r)
		sr := p.StripeRect(s)
		cx := (r.MinX + r.MaxX) / 2
		if cx < sr.MinX || cx > sr.MaxX {
			t.Fatalf("rect centered at x=%v routed to shard %d owning %v", cx, s, sr)
		}
	}
}

// With more shards than columns, each leading shard owns one column and the
// trailing shards own nothing; routing still lands on an owning shard.
func TestPartitionMoreShardsThanColumns(t *testing.T) {
	p := NewPartition(optsWithGrid(4), 7)
	if err := p.check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	for i := 4; i < 7; i++ {
		if r := p.StripeRect(i); r.Width() > 0 {
			t.Fatalf("shard %d should own nothing, owns %v", i, r)
		}
	}
	if s := p.Route(geom.RectAround(geom.Pt(0.99, 0.5))); s != 3 {
		t.Fatalf("rightmost column routed to %d, want 3", s)
	}
}
