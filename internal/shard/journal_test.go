package shard_test

// Journal-based crash recovery for the sharded monitor: a live ShardedMonitor
// is driven with every operation journaled (probes bracketed exactly the way
// internal/remote does it), then the journal is replayed into a fresh
// single-tree monitor AND a fresh sharded monitor with a different shard
// count. All three must agree bit for bit. The replay sides get a prober that
// fails the test if consulted — every probe must be answered from the
// recorded per-object FIFO, proving the sharded index preserves the probe
// sequence the journal format relies on.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/query"
	"srb/internal/shard"
)

func TestShardedJournalRecovery(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			runShardedJournalRecovery(t, shards)
		})
	}
}

func runShardedJournalRecovery(t *testing.T, shards int) {
	t.Helper()
	opt := enhancedOptions()
	rng := rand.New(rand.NewSource(int64(40 + shards)))
	pos := make(map[uint64]geom.Point)

	var buf bytes.Buffer
	j := core.NewJournal(&buf, 0)

	// Live prober records every answer into the pending journal entry, like
	// remote.Server's persistence hook.
	prober := core.ProberFunc(func(id uint64) geom.Point {
		p := pos[id]
		j.NoteProbe(id, p)
		return p
	})
	live, err := shard.New(opt, shards, prober, nil)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	defer live.Close()

	commit := func(op string) {
		t.Helper()
		if err := j.Commit(); err != nil {
			t.Fatalf("journal commit after %s: %v", op, err)
		}
	}

	const nObj = 80
	walkers := make(map[uint64]*mobility.Waypoint, nObj)
	now := 0.0
	live.SetTime(now)
	for i := 0; i < nObj; i++ {
		id := uint64(i)
		start := geom.Pt(rng.Float64(), rng.Float64())
		walkers[id] = mobility.NewWaypoint(int64(7), id, opt.Space, 0.08, 2, start)
		pos[id] = start
		j.Begin(core.JournalEntry{T: now, Op: core.JournalAdd, Obj: id, X: start.X, Y: start.Y})
		live.AddObject(id, start)
		commit("add")
	}
	qid := query.ID(1)
	register := func() {
		switch rng.Intn(4) {
		case 0:
			x, y := rng.Float64(), rng.Float64()
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.15, MaxY: y + 0.15}
			j.Begin(core.JournalEntry{T: now, Op: core.JournalRegister, QID: uint64(qid), Kind: core.KindRange, MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY})
			if _, _, err := live.RegisterRange(qid, r); err != nil {
				t.Fatalf("register range: %v", err)
			}
		case 1:
			c := geom.Pt(rng.Float64(), rng.Float64())
			k := 1 + rng.Intn(4)
			ordered := rng.Intn(2) == 0
			j.Begin(core.JournalEntry{T: now, Op: core.JournalRegister, QID: uint64(qid), Kind: core.KindKNN, X: c.X, Y: c.Y, K: k, Ordered: ordered})
			if _, _, err := live.RegisterKNN(qid, c, k, ordered); err != nil {
				t.Fatalf("register knn: %v", err)
			}
		case 2:
			c := geom.Pt(rng.Float64(), rng.Float64())
			rad := 0.05 + rng.Float64()*0.1
			j.Begin(core.JournalEntry{T: now, Op: core.JournalRegister, QID: uint64(qid), Kind: core.KindCircle, X: c.X, Y: c.Y, Radius: rad})
			if _, _, err := live.RegisterWithinDistance(qid, c, rad); err != nil {
				t.Fatalf("register circle: %v", err)
			}
		default:
			x, y := rng.Float64(), rng.Float64()
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2}
			j.Begin(core.JournalEntry{T: now, Op: core.JournalRegister, QID: uint64(qid), Kind: core.KindCount, MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY})
			if _, _, err := live.RegisterCount(qid, r); err != nil {
				t.Fatalf("register count: %v", err)
			}
		}
		commit("register")
		qid++
	}
	for i := 0; i < 10; i++ {
		register()
	}

	for tick := 1; tick <= 16; tick++ {
		now = float64(tick) * 0.4
		live.SetTime(now)
		for id, w := range walkers {
			p := w.At(now)
			pos[id] = p
		}
		for id := uint64(0); id < nObj; id++ {
			p, ok := pos[id]
			if !ok {
				continue
			}
			if r, srOK := live.SafeRegion(id); srOK && !r.Contains(p) {
				j.Begin(core.JournalEntry{T: now, Op: core.JournalUpdate, Obj: id, X: p.X, Y: p.Y})
				live.Update(id, p)
				commit("update")
			}
		}
		if tick%5 == 0 {
			victim := query.ID(uint64(tick/5) + 1)
			j.Begin(core.JournalEntry{T: now, Op: core.JournalDeregister, QID: uint64(victim)})
			live.Deregister(victim)
			commit("dereg")
			register()
		}
		if tick%6 == 0 {
			id := uint64(rng.Intn(nObj))
			if _, ok := pos[id]; ok {
				j.Begin(core.JournalEntry{T: now, Op: core.JournalRemove, Obj: id})
				live.RemoveObject(id)
				commit("remove")
				delete(pos, id)
				delete(walkers, id)
			}
		}
	}

	// Replay must never consult the live prober: all probes were recorded.
	deadProber := core.ProberFunc(func(id uint64) geom.Point {
		t.Fatalf("replay probed object %d instead of using the journal", id)
		return geom.Point{}
	})

	single := core.New(opt, deadProber, nil)
	if _, err := core.ReplayJournal(bytes.NewReader(buf.Bytes()), single, 0); err != nil {
		t.Fatalf("replay into single monitor: %v", err)
	}
	resharded, err := shard.New(opt, shards+1, deadProber, nil)
	if err != nil {
		t.Fatalf("shard.New for replay: %v", err)
	}
	defer resharded.Close()
	if _, err := core.ReplayJournal(bytes.NewReader(buf.Bytes()), resharded.Core(), 0); err != nil {
		t.Fatalf("replay into sharded monitor: %v", err)
	}

	check := func(name string, got interface {
		Stats() core.Stats
		Results(query.ID) ([]uint64, bool)
		SafeRegion(uint64) (geom.Rect, bool)
		NumObjects() int
		NumQueries() int
	}) {
		t.Helper()
		if l, g := live.Stats(), got.Stats(); l != g {
			t.Fatalf("%s: stats diverged\nlive: %+v\nreplayed: %+v", name, l, g)
		}
		for q := query.ID(1); q < qid; q++ {
			lr, lok := live.Results(q)
			gr, gok := got.Results(q)
			if lok != gok || !reflect.DeepEqual(lr, gr) {
				t.Fatalf("%s: query %d results diverged: %v (%v) vs %v (%v)", name, q, lr, lok, gr, gok)
			}
		}
		for id := range pos {
			lr, lok := live.SafeRegion(id)
			gr, gok := got.SafeRegion(id)
			//lint:allow floatcmp recovery oracle: the contract is bit-identical state
			if lok != gok || lr != gr {
				t.Fatalf("%s: object %d safe region diverged: %v vs %v", name, id, lr, gr)
			}
		}
		if live.NumObjects() != got.NumObjects() || live.NumQueries() != got.NumQueries() {
			t.Fatalf("%s: population diverged", name)
		}
	}
	check("single-tree replay", single)
	check("resharded replay", resharded)
	if live.Stats().Probes == 0 {
		t.Fatalf("workload issued no probes: recovery path not exercised")
	}
}
