package shard_test

// Differential harness for the sharded index's determinism contract: a
// single-tree core.Monitor and a ShardedMonitor are driven with the
// identical seeded random-waypoint workload — honest exit-driven reporting,
// range + circle + COUNT + kNN queries with register/deregister churn,
// object churn — and every tick asserts bit-identical safe-region streams,
// result-update streams, Stats counters, per-query results, and per-object
// safe regions, at 1, 2, 4 and 8 shards. Mid-run both sides snapshot
// (byte-identical), the sharded side is rebuilt under a DIFFERENT shard
// count, and the drive continues — the crash-recovery cycle plus the
// partition-independence claim in one stroke. The whole suite repeats at
// GOMAXPROCS 1, 4 and 8 (make shard-diff runs it under -race).

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/query"
	"srb/internal/shard"
)

// shardDiffConfig sizes one differential scenario.
type shardDiffConfig struct {
	seed   int64
	opt    core.Options
	shards int
	nObj   int
	nQuery int
	ticks  int
	dt     float64
}

func baseOptions() core.Options {
	return core.Options{
		Space: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		GridM: 10,
	}
}

func enhancedOptions() core.Options {
	o := baseOptions()
	o.MaxSpeed = 0.2
	o.Steadiness = 0.5
	o.CellNeighborhood = 1
	return o
}

func TestShardedDifferential(t *testing.T) {
	type scenario struct {
		name string
		cfg  shardDiffConfig
	}
	var scenarios []scenario
	for _, n := range []int{1, 2, 4, 8} {
		scenarios = append(scenarios,
			scenario{fmt.Sprintf("base/shards=%d", n),
				shardDiffConfig{seed: int64(n), opt: baseOptions(), shards: n, nObj: 130, nQuery: 12, ticks: 24, dt: 0.4}},
			scenario{fmt.Sprintf("enhanced/shards=%d", n),
				shardDiffConfig{seed: int64(n) + 100, opt: enhancedOptions(), shards: n, nObj: 110, nQuery: 10, ticks: 20, dt: 0.4}},
		)
	}
	for _, gmp := range []int{1, 4, 8} {
		gmp := gmp
		t.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(t *testing.T) {
			// GOMAXPROCS is process-global: subtests must stay serial.
			prev := runtime.GOMAXPROCS(gmp)
			defer runtime.GOMAXPROCS(prev)
			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) { runShardDifferential(t, sc.cfg) })
			}
		})
	}
}

// runShardDifferential drives both monitor variants through the workload and
// fails on the first divergence.
func runShardDifferential(t *testing.T, cfg shardDiffConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.seed))

	// Shared ground truth: both sides' probes answer with the object's exact
	// current position, so probe outcomes cannot diverge.
	pos := make(map[uint64]geom.Point)
	prober := core.ProberFunc(func(id uint64) geom.Point { return pos[id] })

	var seqPushed, shPushed []core.ResultUpdate
	pushSeq := func(u core.ResultUpdate) { seqPushed = append(seqPushed, u) }
	pushSh := func(u core.ResultUpdate) { shPushed = append(shPushed, u) }

	seq := core.New(cfg.opt, prober, pushSeq)
	sh, err := shard.New(cfg.opt, cfg.shards, prober, pushSh)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	defer func() { sh.Close() }()

	checkPushed := func(ctx string) {
		t.Helper()
		if !reflect.DeepEqual(seqPushed, shPushed) {
			t.Fatalf("%s: result-update streams diverged\nseq: %v\nsharded: %v", ctx, seqPushed, shPushed)
		}
		seqPushed, shPushed = nil, nil
	}
	var qids []query.ID
	checkState := func(ctx string) {
		t.Helper()
		if s, p := seq.Stats(), sh.Stats(); s != p {
			t.Fatalf("%s: stats diverged\nseq: %+v\nsharded: %+v", ctx, s, p)
		}
		for _, qid := range qids {
			sr, sok := seq.Results(qid)
			pr, pok := sh.Results(qid)
			if sok != pok || !reflect.DeepEqual(sr, pr) {
				t.Fatalf("%s: query %d results diverged\nseq: %v (%v)\nsharded: %v (%v)", ctx, qid, sr, sok, pr, pok)
			}
		}
		for id := range pos {
			sr, sok := seq.SafeRegion(id)
			pr, pok := sh.SafeRegion(id)
			//lint:allow floatcmp differential oracle: the contract is bit-identical state
			if sok != pok || sr != pr {
				t.Fatalf("%s: object %d safe region diverged\nseq: %v (%v)\nsharded: %v (%v)", ctx, id, sr, sok, pr, pok)
			}
		}
		if seq.NumObjects() != sh.NumObjects() || seq.NumQueries() != sh.NumQueries() {
			t.Fatalf("%s: population diverged: %d/%d objects, %d/%d queries",
				ctx, seq.NumObjects(), sh.NumObjects(), seq.NumQueries(), sh.NumQueries())
		}
	}

	// Registration phase at t=0: objects first, then the query workload.
	walkers := make(map[uint64]*mobility.Waypoint, cfg.nObj)
	seq.SetTime(0)
	sh.SetTime(0)
	for i := 0; i < cfg.nObj; i++ {
		id := uint64(i)
		start := geom.Pt(rng.Float64(), rng.Float64())
		walkers[id] = mobility.NewWaypoint(cfg.seed, id, cfg.opt.Space, 0.08, 2, start)
		pos[id] = start
		su := seq.AddObject(id, start)
		pu := sh.AddObject(id, start)
		if !reflect.DeepEqual(su, pu) {
			t.Fatalf("AddObject(%d): regions diverged\nseq: %v\nsharded: %v", id, su, pu)
		}
	}

	nextQID := query.ID(1)
	registerOne := func(ctx string) {
		t.Helper()
		qid := nextQID
		nextQID++
		var sres, pres []uint64
		var sups, pups []core.SafeRegionUpdate
		var serr, perr error
		switch rng.Intn(4) {
		case 0:
			x, y := rng.Float64(), rng.Float64()
			w, h := 0.05+rng.Float64()*0.15, 0.05+rng.Float64()*0.15
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			sres, sups, serr = seq.RegisterRange(qid, r)
			pres, pups, perr = sh.RegisterRange(qid, r)
		case 1:
			c := geom.Pt(rng.Float64(), rng.Float64())
			k := 1 + rng.Intn(5)
			ordered := rng.Intn(2) == 0
			sres, sups, serr = seq.RegisterKNN(qid, c, k, ordered)
			pres, pups, perr = sh.RegisterKNN(qid, c, k, ordered)
		case 2:
			c := geom.Pt(rng.Float64(), rng.Float64())
			rad := 0.05 + rng.Float64()*0.1
			sres, sups, serr = seq.RegisterWithinDistance(qid, c, rad)
			pres, pups, perr = sh.RegisterWithinDistance(qid, c, rad)
		default:
			x, y := rng.Float64(), rng.Float64()
			w, h := 0.05+rng.Float64()*0.2, 0.05+rng.Float64()*0.2
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			var sn, pn int
			sn, sups, serr = seq.RegisterCount(qid, r)
			pn, pups, perr = sh.RegisterCount(qid, r)
			if sn != pn {
				t.Fatalf("%s: register count %d diverged: %d vs %d", ctx, qid, sn, pn)
			}
		}
		if (serr == nil) != (perr == nil) {
			t.Fatalf("%s: register %d error diverged: %v vs %v", ctx, qid, serr, perr)
		}
		if serr == nil {
			qids = append(qids, qid)
		}
		if !reflect.DeepEqual(sres, pres) || !reflect.DeepEqual(sups, pups) {
			t.Fatalf("%s: register %d outcome diverged\nseq: %v %v\nsharded: %v %v", ctx, qid, sres, sups, pres, pups)
		}
	}
	for i := 0; i < cfg.nQuery; i++ {
		registerOne("initial registration")
	}
	checkPushed("after registration")
	checkState("after registration")

	migrated := int64(0)  // cumulative across the recovery rebuild
	scattered := int64(0) // cumulative across the recovery rebuild

	var removed []uint64 // object-churn victims awaiting re-add
	for tick := 1; tick <= cfg.ticks; tick++ {
		now := float64(tick) * cfg.dt
		ctx := fmt.Sprintf("tick %d", tick)
		seq.SetTime(now)
		sh.SetTime(now)

		// Move everyone, then report honestly: exactly the objects that left
		// their safe region send an update, in ascending object-ID order on
		// both sides (the serialized-op contract; batching is the PR 3
		// pipeline's concern, not the shard layer's).
		var due []uint64
		for id, w := range walkers {
			p := w.At(now)
			pos[id] = p
			if r, ok := seq.SafeRegion(id); ok && !r.Contains(p) {
				due = append(due, id)
			}
		}
		sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
		for _, id := range due {
			su := seq.Update(id, pos[id])
			pu := sh.Update(id, pos[id])
			if !reflect.DeepEqual(su, pu) {
				t.Fatalf("%s: Update(%d) safe-region stream diverged\nseq: %v\nsharded: %v", ctx, id, su, pu)
			}
		}
		checkPushed(ctx)
		checkState(ctx)

		// Query churn: replace the oldest query every few ticks.
		if tick%4 == 0 && len(qids) > 0 {
			victim := qids[0]
			qids = qids[1:]
			sok := seq.Deregister(victim)
			pok := sh.Deregister(victim)
			if sok != pok {
				t.Fatalf("%s: deregister %d diverged: %v vs %v", ctx, victim, sok, pok)
			}
			registerOne(ctx)
			checkPushed(ctx + " (query churn)")
			checkState(ctx + " (query churn)")
		}
		// Object churn: remove one object, re-add it two ticks later at its
		// then-current position.
		if tick%7 == 0 {
			id := uint64(rng.Intn(cfg.nObj))
			if _, ok := pos[id]; ok {
				su := seq.RemoveObject(id)
				pu := sh.RemoveObject(id)
				if !reflect.DeepEqual(su, pu) {
					t.Fatalf("%s: RemoveObject(%d) diverged\nseq: %v\nsharded: %v", ctx, id, su, pu)
				}
				delete(pos, id)
				removed = append(removed, id)
			}
		}
		if tick%7 == 2 && len(removed) > 0 {
			id := removed[0]
			removed = removed[1:]
			p := walkers[id].At(now)
			pos[id] = p
			su := seq.AddObject(id, p)
			pu := sh.AddObject(id, p)
			if !reflect.DeepEqual(su, pu) {
				t.Fatalf("%s: re-AddObject(%d) diverged\nseq: %v\nsharded: %v", ctx, id, su, pu)
			}
			checkPushed(ctx + " (object churn)")
			checkState(ctx + " (object churn)")
		}
		if tick%8 == 0 {
			if err := sh.Core().CheckInvariants(); err != nil {
				t.Fatalf("%s: sharded invariants: %v", ctx, err)
			}
		}

		// Crash-recovery cycle at half-time: both sides snapshot
		// (byte-identical, since snapshot content is index-independent), the
		// sharded side is torn down and rebuilt under a different shard
		// count, and the workload continues against the recovered pair.
		if tick == cfg.ticks/2 {
			var sb, pb bytes.Buffer
			if err := seq.SaveSnapshot(&sb); err != nil {
				t.Fatalf("%s: seq snapshot: %v", ctx, err)
			}
			if err := sh.SaveSnapshot(&pb); err != nil {
				t.Fatalf("%s: sharded snapshot: %v", ctx, err)
			}
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Fatalf("%s: snapshots differ between single and sharded monitor", ctx)
			}
			migrated += sh.Forest().Migrations()
			scattered += sh.Forest().Scatters()
			sh.Close()
			rotated := cfg.shards + 1
			sh2, err := shard.New(cfg.opt, rotated, prober, pushSh)
			if err != nil {
				t.Fatalf("%s: rebuild with %d shards: %v", ctx, rotated, err)
			}
			if err := sh2.LoadSnapshot(&pb); err != nil {
				t.Fatalf("%s: sharded LoadSnapshot: %v", ctx, err)
			}
			seq2 := core.New(cfg.opt, prober, pushSeq)
			if err := seq2.LoadSnapshot(&sb); err != nil {
				t.Fatalf("%s: seq LoadSnapshot: %v", ctx, err)
			}
			seq, sh = seq2, sh2
			if err := sh.Core().CheckInvariants(); err != nil {
				t.Fatalf("%s: invariants after recovery: %v", ctx, err)
			}
			checkState(ctx + " (after recovery)")
		}
	}

	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("final seq invariants: %v", err)
	}
	if err := sh.Core().CheckInvariants(); err != nil {
		t.Fatalf("final sharded invariants: %v", err)
	}

	// Vacuity guards: the harness only proves something about the shard
	// layer if objects actually crossed boundaries and searches actually
	// scattered.
	migrated += sh.Forest().Migrations()
	scattered += sh.Forest().Scatters()
	if scattered == 0 {
		t.Fatalf("workload produced no scatter-gather searches")
	}
	if cfg.shards > 1 {
		if migrated == 0 {
			t.Fatalf("no object ever migrated across a shard boundary: scenario too static")
		}
		counts := sh.Forest().ShardObjects()
		nonEmpty := 0
		for _, c := range counts {
			if c > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Fatalf("only %d shard(s) populated (%v): partition not exercised", nonEmpty, counts)
		}
	}
	t.Logf("shards=%d: %d migrations, %d scatters, per-shard %v, %d strays",
		cfg.shards, migrated, scattered, sh.Forest().ShardObjects(), len(sh.Forest().StrayIDs()))
}
