// Package trace records monitoring workloads — object arrivals, location
// updates, query registrations — as JSON-lines streams and replays them
// deterministically against a Monitor. Captured traces reproduce production
// incidents offline and double as regression fixtures.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/query"
)

// Operation names.
const (
	OpAdd        = "add"
	OpUpdate     = "update"
	OpRemove     = "remove"
	OpRange      = "range"
	OpKNN        = "knn"
	OpCount      = "count"
	OpCircle     = "circle"
	OpDeregister = "dereg"
	// OpProbe records a server-initiated probe's answer; written by the
	// prober wrapper returned from Recorder.WrapProber and consumed by
	// ReplayExact to reproduce the live run bit for bit (probes observe
	// positions that are otherwise absent from the trace).
	OpProbe = "probe"
)

// Event is one recorded operation.
type Event struct {
	T  float64 `json:"t"`
	Op string  `json:"op"`

	Obj uint64  `json:"obj,omitempty"`
	X   float64 `json:"x,omitempty"`
	Y   float64 `json:"y,omitempty"`

	QID     uint64  `json:"qid,omitempty"`
	MinX    float64 `json:"minx,omitempty"`
	MinY    float64 `json:"miny,omitempty"`
	MaxX    float64 `json:"maxx,omitempty"`
	MaxY    float64 `json:"maxy,omitempty"`
	K       int     `json:"k,omitempty"`
	Ordered bool    `json:"ord,omitempty"`
	Radius  float64 `json:"radius,omitempty"`
}

// Recorder serializes events to a stream. It is not safe for concurrent use;
// wrap it in the same serialization discipline as the Monitor itself.
type Recorder struct {
	w     *bufio.Writer
	enc   *json.Encoder
	n     int64
	lastT float64
}

// NewRecorder writes JSON lines to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Events returns the number of events recorded so far.
func (r *Recorder) Events() int64 { return r.n }

// Flush writes any buffered events through.
func (r *Recorder) Flush() error { return r.w.Flush() }

func (r *Recorder) emit(e Event) error {
	r.n++
	r.lastT = e.T
	return r.enc.Encode(e)
}

// WrapProber returns a Prober that records every probe answer into the
// trace. Drive the monitor with the wrapped prober and write each operation's
// event *before* invoking the monitor, so probe events nest after their
// operation in the stream — the layout ReplayExact expects.
func (r *Recorder) WrapProber(inner core.Prober) core.Prober {
	return core.ProberFunc(func(id uint64) geom.Point {
		p := inner.Probe(id)
		_ = r.emit(Event{T: r.lastT, Op: OpProbe, Obj: id, X: p.X, Y: p.Y})
		return p
	})
}

// Add records an object arrival.
func (r *Recorder) Add(t float64, id uint64, p geom.Point) error {
	return r.emit(Event{T: t, Op: OpAdd, Obj: id, X: p.X, Y: p.Y})
}

// Update records a source-initiated location update.
func (r *Recorder) Update(t float64, id uint64, p geom.Point) error {
	return r.emit(Event{T: t, Op: OpUpdate, Obj: id, X: p.X, Y: p.Y})
}

// Remove records an object departure.
func (r *Recorder) Remove(t float64, id uint64) error {
	return r.emit(Event{T: t, Op: OpRemove, Obj: id})
}

// RegisterRange records a range-query registration.
func (r *Recorder) RegisterRange(t float64, id query.ID, rect geom.Rect) error {
	return r.emit(Event{T: t, Op: OpRange, QID: uint64(id), MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY})
}

// RegisterCount records an aggregate COUNT registration.
func (r *Recorder) RegisterCount(t float64, id query.ID, rect geom.Rect) error {
	return r.emit(Event{T: t, Op: OpCount, QID: uint64(id), MinX: rect.MinX, MinY: rect.MinY, MaxX: rect.MaxX, MaxY: rect.MaxY})
}

// RegisterKNN records a kNN registration.
func (r *Recorder) RegisterKNN(t float64, id query.ID, pt geom.Point, k int, ordered bool) error {
	return r.emit(Event{T: t, Op: OpKNN, QID: uint64(id), X: pt.X, Y: pt.Y, K: k, Ordered: ordered})
}

// RegisterWithinDistance records a circular range registration.
func (r *Recorder) RegisterWithinDistance(t float64, id query.ID, center geom.Point, radius float64) error {
	return r.emit(Event{T: t, Op: OpCircle, QID: uint64(id), X: center.X, Y: center.Y, Radius: radius})
}

// Deregister records a query removal.
func (r *Recorder) Deregister(t float64, id query.ID) error {
	return r.emit(Event{T: t, Op: OpDeregister, QID: uint64(id)})
}

// Stats summarizes a replay.
type Stats struct {
	Events  int64
	Objects int
	Queries int
	Server  core.Stats
}

// decoder streams events with one-event lookahead.
type decoder struct {
	sc   *bufio.Scanner
	line int
	peek *Event
	err  error
}

func newDecoder(rd io.Reader) *decoder {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &decoder{sc: sc}
}

// next returns the following event, nil at end of stream.
func (d *decoder) next() *Event {
	if d.err != nil {
		return nil
	}
	if d.peek != nil {
		e := d.peek
		d.peek = nil
		return e
	}
	for d.sc.Scan() {
		d.line++
		if len(d.sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(d.sc.Bytes(), &e); err != nil {
			d.err = fmt.Errorf("trace: line %d: %w", d.line, err)
			return nil
		}
		return &e
	}
	if err := d.sc.Err(); err != nil {
		d.err = err
	}
	return nil
}

func (d *decoder) unread(e *Event) { d.peek = e }

// apply dispatches one operation event onto the monitor.
func apply(mon *core.Monitor, e *Event, line int) error {
	mon.SetTime(e.T)
	var err error
	switch e.Op {
	case OpAdd:
		mon.AddObject(e.Obj, geom.Pt(e.X, e.Y))
	case OpUpdate:
		mon.Update(e.Obj, geom.Pt(e.X, e.Y))
	case OpRemove:
		mon.RemoveObject(e.Obj)
	case OpRange:
		_, _, err = mon.RegisterRange(query.ID(e.QID), geom.Rect{MinX: e.MinX, MinY: e.MinY, MaxX: e.MaxX, MaxY: e.MaxY})
	case OpCount:
		_, _, err = mon.RegisterCount(query.ID(e.QID), geom.Rect{MinX: e.MinX, MinY: e.MinY, MaxX: e.MaxX, MaxY: e.MaxY})
	case OpKNN:
		_, _, err = mon.RegisterKNN(query.ID(e.QID), geom.Pt(e.X, e.Y), e.K, e.Ordered)
	case OpCircle:
		_, _, err = mon.RegisterWithinDistance(query.ID(e.QID), geom.Pt(e.X, e.Y), e.Radius)
	case OpDeregister:
		mon.Deregister(query.ID(e.QID))
	default:
		return fmt.Errorf("trace: line %d: unknown op %q", line, e.Op)
	}
	if err != nil {
		return fmt.Errorf("trace: line %d: %w", line, err)
	}
	return nil
}

// Replay streams events from rd into mon in order, advancing the monitor's
// clock to each event's timestamp. Probe events (if present in the trace)
// are skipped: the caller's prober answers probes instead. For bit-exact
// reproduction of a recorded run use ReplayExact.
func Replay(rd io.Reader, mon *core.Monitor) (Stats, error) {
	var st Stats
	d := newDecoder(rd)
	for {
		e := d.next()
		if e == nil {
			break
		}
		if e.Op == OpProbe {
			continue
		}
		if err := apply(mon, e, d.line); err != nil {
			return st, err
		}
		st.Events++
	}
	if d.err != nil {
		return st, d.err
	}
	st.Objects = mon.NumObjects()
	st.Queries = mon.NumQueries()
	st.Server = mon.Stats()
	return st, nil
}

// ReplayExact reconstructs a monitor from a trace recorded with a wrapped
// prober (Recorder.WrapProber): probes issued during replay are answered with
// the positions the live run observed, reproducing the run exactly. The
// monitor is constructed with opt and returned.
func ReplayExact(rd io.Reader, opt core.Options) (*core.Monitor, Stats, error) {
	var st Stats
	d := newDecoder(rd)
	var probeErr error
	prober := core.ProberFunc(func(id uint64) geom.Point {
		e := d.next()
		if e == nil || e.Op != OpProbe {
			if probeErr == nil {
				probeErr = fmt.Errorf("trace: line %d: monitor probed %d but the trace has no probe event here", d.line, id)
			}
			if e != nil {
				d.unread(e)
			}
			return geom.Point{}
		}
		if e.Obj != id {
			if probeErr == nil {
				probeErr = fmt.Errorf("trace: line %d: probe order diverged (trace has %d, monitor asked %d)", d.line, e.Obj, id)
			}
			return geom.Point{}
		}
		return geom.Pt(e.X, e.Y)
	})
	mon := core.New(opt, prober, nil)
	for {
		e := d.next()
		if e == nil {
			break
		}
		if e.Op == OpProbe {
			return mon, st, fmt.Errorf("trace: line %d: probe event outside any operation", d.line)
		}
		if err := apply(mon, e, d.line); err != nil {
			return mon, st, err
		}
		if probeErr != nil {
			return mon, st, probeErr
		}
		st.Events++
	}
	if d.err != nil {
		return mon, st, d.err
	}
	st.Objects = mon.NumObjects()
	st.Queries = mon.NumQueries()
	st.Server = mon.Stats()
	return mon, st, nil
}
