package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/query"
)

func newMon(pos map[uint64]geom.Point) *core.Monitor {
	return core.New(core.Options{GridM: 8}, core.ProberFunc(func(id uint64) geom.Point {
		return pos[id]
	}), nil)
}

// record drives a protocol-faithful random workload against a live monitor
// whose prober is wrapped by the recorder, returning the trace and the live
// monitor for comparison.
func record(t *testing.T, seed int64, buf *bytes.Buffer) (*core.Monitor, *Recorder, map[uint64]geom.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pos := map[uint64]geom.Point{}
	rec := NewRecorder(buf)
	live := core.New(core.Options{GridM: 8},
		rec.WrapProber(core.ProberFunc(func(id uint64) geom.Point { return pos[id] })), nil)

	regions := map[uint64]geom.Rect{}
	apply := func(ups []core.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}

	tm := 0.0
	for i := uint64(0); i < 80; i++ {
		pos[i] = geom.Pt(rng.Float64(), rng.Float64())
		if err := rec.Add(tm, i, pos[i]); err != nil {
			t.Fatal(err)
		}
		live.SetTime(tm)
		apply(live.AddObject(i, pos[i]))
	}
	// Register one query of each supported kind; the op event is written
	// before the call so probe events nest after it.
	_ = rec.RegisterRange(tm, 1, geom.R(0.2, 0.2, 0.5, 0.5))
	if _, ups, err := live.RegisterRange(1, geom.R(0.2, 0.2, 0.5, 0.5)); err == nil {
		apply(ups)
	}
	knnPt := geom.Pt(rng.Float64(), rng.Float64())
	_ = rec.RegisterKNN(tm, 2, knnPt, 3, true)
	if _, ups, err := live.RegisterKNN(2, knnPt, 3, true); err == nil {
		apply(ups)
	}
	_ = rec.RegisterCount(tm, 3, geom.R(0.6, 0.6, 0.9, 0.9))
	if _, ups, err := live.RegisterCount(3, geom.R(0.6, 0.6, 0.9, 0.9)); err == nil {
		apply(ups)
	}
	cPt := geom.Pt(rng.Float64(), rng.Float64())
	_ = rec.RegisterWithinDistance(tm, 4, cPt, 0.12)
	if _, ups, err := live.RegisterWithinDistance(4, cPt, 0.12); err == nil {
		apply(ups)
	}
	insPt := geom.Pt(rng.Float64(), rng.Float64())
	_ = rec.RegisterKNN(tm, 5, insPt, 2, false)
	if _, ups, err := live.RegisterKNN(5, insPt, 2, false); err == nil {
		apply(ups)
	}

	for step := 0; step < 400; step++ {
		tm = float64(step) * 0.01
		id := uint64(rng.Intn(80))
		p := pos[id]
		np := geom.Pt(clampf(p.X+(rng.Float64()-0.5)*0.05), clampf(p.Y+(rng.Float64()-0.5)*0.05))
		pos[id] = np
		if !regions[id].Contains(np) {
			if err := rec.Update(tm, id, np); err != nil {
				t.Fatal(err)
			}
			live.SetTime(tm)
			apply(live.Update(id, np))
		}
	}
	_ = rec.Remove(tm, 79)
	live.SetTime(tm)
	live.RemoveObject(79)
	delete(pos, 79)
	_ = rec.Deregister(tm, 5)
	live.Deregister(5)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return live, rec, pos
}

// TestExactReplayReproducesRun replays a recorded trace (including probe
// answers) and requires bit-identical query state.
func TestExactReplayReproducesRun(t *testing.T) {
	var buf bytes.Buffer
	live, rec, _ := record(t, 7, &buf)
	if rec.Events() == 0 {
		t.Fatal("nothing recorded")
	}

	replayMon, st, err := ReplayExact(bytes.NewReader(buf.Bytes()), core.Options{GridM: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != live.NumObjects() || st.Queries != live.NumQueries() {
		t.Fatalf("population mismatch: %+v", st)
	}
	for _, qid := range []query.ID{1, 2, 3, 4} {
		a, _ := live.Results(qid)
		b, _ := replayMon.Results(qid)
		if len(a) != len(b) {
			t.Fatalf("query %d: %v vs %v", qid, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d results diverge: %v vs %v", qid, a, b)
			}
		}
		qa, _ := live.Query(qid)
		qb, _ := replayMon.Query(qid)
		if qa.QRadius != qb.QRadius {
			t.Fatalf("query %d radius diverged: %v vs %v", qid, qa.QRadius, qb.QRadius)
		}
	}
	// Safe regions must match exactly too.
	for id := uint64(0); id < 79; id++ {
		ra, okA := live.SafeRegion(id)
		rb, okB := replayMon.SafeRegion(id)
		if okA != okB || ra != rb {
			t.Fatalf("object %d region diverged: %v vs %v", id, ra, rb)
		}
	}
	// Server work counters line up (same probes, same reevaluations).
	sa, sb := live.Stats(), replayMon.Stats()
	if sa.Probes != sb.Probes || sa.Reevaluations != sb.Reevaluations || sa.SourceUpdates != sb.SourceUpdates {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
}

// TestLooseReplayIsValidRun replays without probe scripting: the run may
// differ from the live one (probes observe last-reported positions) but must
// still be a self-consistent monitor.
func TestLooseReplayIsValidRun(t *testing.T) {
	var buf bytes.Buffer
	record(t, 11, &buf)
	pos := map[uint64]geom.Point{}
	mon := core.New(core.Options{GridM: 8}, core.ProberFunc(func(id uint64) geom.Point {
		return pos[id]
	}), nil)
	// Maintain last-reported positions for the prober by pre-scanning.
	d := newDecoder(bytes.NewReader(buf.Bytes()))
	var filtered bytes.Buffer
	rec2 := NewRecorder(&filtered)
	for {
		e := d.next()
		if e == nil {
			break
		}
		if e.Op == OpProbe {
			continue
		}
		_ = rec2.emit(*e)
	}
	_ = rec2.Flush()
	// Use a side table fed by add/update events for probing.
	d2 := newDecoder(bytes.NewReader(filtered.Bytes()))
	for {
		e := d2.next()
		if e == nil {
			break
		}
		if e.Op == OpAdd || e.Op == OpUpdate {
			pos[e.Obj] = geom.Pt(e.X, e.Y)
		}
		if err := apply(mon, e, d2.line); err != nil {
			t.Fatal(err)
		}
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if mon.NumQueries() == 0 || mon.NumObjects() == 0 {
		t.Fatal("replay produced empty state")
	}
}

func clampf(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestReplayRejectsGarbage(t *testing.T) {
	mon := newMon(map[uint64]geom.Point{})
	if _, err := Replay(strings.NewReader("{bad json\n"), mon); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := Replay(strings.NewReader(`{"t":0,"op":"warp"}`+"\n"), mon); err == nil {
		t.Fatal("unknown op must fail")
	}
}

func TestReplayEmpty(t *testing.T) {
	mon := newMon(map[uint64]geom.Point{})
	st, err := Replay(strings.NewReader(""), mon)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 0 || st.Objects != 0 {
		t.Fatalf("empty replay: %+v", st)
	}
}

func TestReplayExactRejectsStrayProbe(t *testing.T) {
	in := `{"t":0,"op":"probe","obj":1,"x":0.5,"y":0.5}` + "\n"
	if _, _, err := ReplayExact(strings.NewReader(in), core.Options{}); err == nil {
		t.Fatal("top-level probe event must fail")
	}
}

func TestReplaySkipsProbeEvents(t *testing.T) {
	in := `{"t":0,"op":"add","obj":1,"x":0.5,"y":0.5}` + "\n" +
		`{"t":0,"op":"probe","obj":1,"x":0.5,"y":0.5}` + "\n"
	mon := newMon(map[uint64]geom.Point{1: geom.Pt(0.5, 0.5)})
	st, err := Replay(strings.NewReader(in), mon)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 1 || st.Objects != 1 {
		t.Fatalf("replay: %+v", st)
	}
}
