package remote

import (
	"fmt"
	"net"
	"sync"
	"time"

	"srb/internal/geom"
	"srb/internal/query"
	"srb/internal/wire"
)

// dialTimeout bounds the TCP connect of DialClient/DialApp; a black-holed
// address fails fast instead of hanging the caller.
const dialTimeout = 10 * time.Second

// MobileClient is the moving-object runtime: it keeps the current safe
// region, reports the position to the server only when it leaves the region
// (the source-initiated update of the paper), and answers server-initiated
// probes with the current position.
type MobileClient struct {
	id    uint64
	conn  net.Conn
	codec *wire.Codec

	mu       sync.Mutex
	pos      geom.Point
	region   geom.Rect
	hasRgn   bool
	updates  int64
	probes   int64
	closed   bool
	readErr  error
	readDone chan struct{}
}

// DialClient connects a mobile client, announcing its initial position. The
// first safe region arrives asynchronously; until then every Tick reports.
func DialClient(addr string, id uint64, start geom.Point) (*MobileClient, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	c := &MobileClient{
		id:       id,
		conn:     conn,
		codec:    wire.NewCodec(conn),
		pos:      start,
		readDone: make(chan struct{}),
	}
	hello := wire.Message{Type: wire.THello, Obj: id}
	hello.SetPoint(start)
	if err := c.send(hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *MobileClient) send(m wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("remote: client %d closed", c.id)
	}
	return c.codec.Send(m)
}

// readLoop handles probes and safe-region grants.
func (c *MobileClient) readLoop() {
	defer close(c.readDone)
	for {
		// The receive loop lives as long as the connection; Close unblocks it
		// by tearing the conn down, so no read deadline is wanted here.
		m, err := c.codec.Recv() //lint:allow ctxdeadline long-lived loop, bounded by Close
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			return
		}
		switch m.Type {
		case wire.TRegion:
			c.mu.Lock()
			c.region = m.Rect()
			c.hasRgn = true
			pos := c.pos
			outside := !c.region.Contains(pos)
			c.mu.Unlock()
			if outside {
				// Already escaped the granted region (delays): report now.
				c.report(pos)
			}
		case wire.TProbe:
			c.mu.Lock()
			pos := c.pos
			c.probes++
			c.mu.Unlock()
			reply := wire.Message{Type: wire.TProbeReply, Obj: c.id, Seq: m.Seq}
			reply.SetPoint(pos)
			if err := c.send(reply); err != nil {
				return
			}
		}
	}
}

func (c *MobileClient) report(p geom.Point) {
	m := wire.Message{Type: wire.TUpdate, Obj: c.id}
	m.SetPoint(p)
	c.mu.Lock()
	c.updates++
	c.mu.Unlock()
	_ = c.send(m)
}

// Tick advances the client to position p, sending a location update exactly
// when p is outside the current safe region (or none has arrived yet).
func (c *MobileClient) Tick(p geom.Point) {
	c.mu.Lock()
	c.pos = p
	needsReport := !c.hasRgn || !c.region.Contains(p)
	if needsReport {
		// Invalidate the region until the server grants a fresh one, so
		// rapid ticks do not flood the uplink.
		c.hasRgn = false
	}
	c.mu.Unlock()
	if needsReport {
		c.report(p)
	}
}

// Region returns the current safe region and whether one has been granted.
func (c *MobileClient) Region() (geom.Rect, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.region, c.hasRgn
}

// Stats returns the number of updates sent and probes answered.
func (c *MobileClient) Stats() (updates, probes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates, c.probes
}

// Close says goodbye and tears the connection down.
func (c *MobileClient) Close() error {
	_ = c.send(wire.Message{Type: wire.TBye, Obj: c.id})
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	return err
}

// AppClient is an application-server handle: it registers continuous queries
// and receives the stream of result updates.
type AppClient struct {
	conn  net.Conn
	codec *wire.Codec

	mu      sync.Mutex
	pending map[uint64]chan wire.Message
	updates chan ResultUpdate
	closed  bool
}

// ResultUpdate is a pushed result change for a registered query. Aggregate
// COUNT queries populate only Count.
type ResultUpdate struct {
	Query   query.ID
	Results []uint64
	Count   int
}

// DialApp connects an application server.
func DialApp(addr string) (*AppClient, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	a := &AppClient{
		conn:    conn,
		codec:   wire.NewCodec(conn),
		pending: make(map[uint64]chan wire.Message),
		updates: make(chan ResultUpdate, 256),
	}
	go a.readLoop()
	return a, nil
}

func (a *AppClient) readLoop() {
	defer close(a.updates)
	for {
		// Long-lived result stream; Close tears the conn down to unblock it.
		m, err := a.codec.Recv() //lint:allow ctxdeadline long-lived loop, bounded by Close
		if err != nil {
			return
		}
		a.mu.Lock()
		ch := a.pending[m.QID]
		if ch != nil {
			delete(a.pending, m.QID)
		}
		a.mu.Unlock()
		if ch != nil {
			ch <- m
			continue
		}
		if m.Type == wire.TResults {
			select {
			case a.updates <- ResultUpdate{Query: query.ID(m.QID), Results: m.IDs, Count: m.Count}:
			default: // drop on backpressure rather than stalling the stream
			}
		}
	}
}

// Updates streams result changes for all queries registered on this handle.
// The channel closes when the connection drops.
func (a *AppClient) Updates() <-chan ResultUpdate { return a.updates }

func (a *AppClient) roundTrip(m wire.Message) (wire.Message, error) {
	ch := make(chan wire.Message, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return wire.Message{}, fmt.Errorf("remote: app client closed")
	}
	a.pending[m.QID] = ch
	err := a.codec.Send(m)
	a.mu.Unlock()
	if err != nil {
		return wire.Message{}, err
	}
	reply, ok := <-ch
	if !ok {
		return wire.Message{}, fmt.Errorf("remote: connection closed")
	}
	if reply.Type == wire.TError {
		return wire.Message{}, fmt.Errorf("remote: %s", reply.Err)
	}
	return reply, nil
}

// RegisterRange registers a continuous range query and returns its initial
// result.
func (a *AppClient) RegisterRange(id query.ID, r geom.Rect) ([]uint64, error) {
	m := wire.Message{Type: wire.TRegisterRange, QID: uint64(id)}
	m.SetRect(r)
	reply, err := a.roundTrip(m)
	return reply.IDs, err
}

// RegisterCount registers an aggregate COUNT range query and returns the
// initial count.
func (a *AppClient) RegisterCount(id query.ID, r geom.Rect) (int, error) {
	m := wire.Message{Type: wire.TRegisterCount, QID: uint64(id)}
	m.SetRect(r)
	reply, err := a.roundTrip(m)
	return reply.Count, err
}

// RegisterWithinDistance registers a circular range query (objects within
// radius of center) and returns its initial result.
func (a *AppClient) RegisterWithinDistance(id query.ID, center geom.Point, radius float64) ([]uint64, error) {
	m := wire.Message{Type: wire.TRegisterCircle, QID: uint64(id), Radius: radius}
	m.SetPoint(center)
	reply, err := a.roundTrip(m)
	return reply.IDs, err
}

// RegisterKNN registers a continuous kNN query and returns its initial
// (distance-ordered) result.
func (a *AppClient) RegisterKNN(id query.ID, pt geom.Point, k int, ordered bool) ([]uint64, error) {
	m := wire.Message{Type: wire.TRegisterKNN, QID: uint64(id), K: k, Ordered: ordered}
	m.SetPoint(pt)
	reply, err := a.roundTrip(m)
	return reply.IDs, err
}

// Deregister removes a query.
func (a *AppClient) Deregister(id query.ID) error {
	return a.codecSend(wire.Message{Type: wire.TDeregister, QID: uint64(id)})
}

func (a *AppClient) codecSend(m wire.Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.codec.Send(m)
}

// Close tears down the connection; the server deregisters this handle's
// queries.
func (a *AppClient) Close() error {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	return a.conn.Close()
}
