package remote

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
	"srb/internal/wire"
)

// dialTimeout bounds the TCP connect of DialClient/DialApp; a black-holed
// address fails fast instead of hanging the caller.
const dialTimeout = 10 * time.Second

// ClientOptions tunes the mobile client's reconnect behavior. The zero value
// disables reconnecting (one connection, historical behavior).
type ClientOptions struct {
	// Reconnect re-dials with exponential backoff after a connection loss and
	// resumes the session (wire.THello with Resume set), instead of
	// surfacing the read error and going silent.
	Reconnect bool
	// BackoffMin and BackoffMax bound the exponential backoff delay.
	// Defaults: 50ms and 5s.
	BackoffMin, BackoffMax time.Duration
	// Jitter is the relative randomization of each delay (0.2 = ±20%).
	// Defaults to 0.2; negative disables.
	Jitter float64
	// Seed makes the jitter sequence deterministic for tests; 0 derives one
	// from the object ID.
	Seed int64
	// MaxAttempts caps consecutive failed dials before giving up; 0 retries
	// forever (until Close).
	MaxAttempts int
	// Hooks receives wire-visible session events for external latency
	// measurement (the load harness). Zero value disables all callbacks.
	Hooks ClientHooks
}

// ClientHooks carries optional callbacks the mobile-client runtime invokes at
// wire-visible moments, so an external harness (internal/load) can timestamp
// per-operation latency without the runtime itself touching the wall clock.
// Callbacks run on the goroutine that triggered the event — UpdateSent on the
// Tick/Report caller, RegionGranted and Probed on the session read goroutine —
// and must be fast and non-blocking; they are invoked outside the client's
// lock. Nil members are skipped.
type ClientHooks struct {
	// UpdateSent fires after a location-update frame was handed to the
	// transport; trace is the causal trace ID minted for the frame and err
	// the frame write error (nil on success).
	UpdateSent func(trace uint64, err error)
	// RegionGranted fires when a safe-region grant arrives from the server;
	// trace echoes the causal ID of the update (or registration) whose
	// processing produced the grant, 0 when untraced.
	RegionGranted func(trace uint64)
	// Probed fires after the session answered a server-initiated probe.
	Probed func()
}

// mintTrace derives a nonzero 64-bit causal trace ID from the sender identity
// and a per-sender sequence number (splitmix64 finalizer over their
// combination): deterministic per session, no coordination, vanishing
// collision odds across senders.
func mintTrace(id, seq uint64) uint64 {
	x := id*0x9e3779b97f4a7c15 + seq
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func (o ClientOptions) withDefaults(id uint64) ClientOptions {
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Seed == 0 {
		o.Seed = int64(id)*2654435761 + 1
	}
	return o
}

// MobileClient is the moving-object runtime: it keeps the current safe
// region, reports the position to the server only when it leaves the region
// (the source-initiated update of the paper), and answers server-initiated
// probes with the current position.
type MobileClient struct {
	id   uint64
	addr string
	opts ClientOptions
	rng  *rand.Rand // jitter source, used only by the read/reconnect goroutine

	mu         sync.Mutex
	conn       net.Conn
	codec      *wire.Codec
	pos        geom.Point
	region     geom.Rect
	hasRgn     bool
	updates    int64
	probes     int64
	reconnects int64
	traceSeq   uint64 // per-session sequence feeding mintTrace
	closed     bool
	readErr    error
	readDone   chan struct{}
}

// DialClient connects a mobile client, announcing its initial position. The
// first safe region arrives asynchronously; until then every Tick reports.
func DialClient(addr string, id uint64, start geom.Point) (*MobileClient, error) {
	return DialClientOpts(addr, id, start, ClientOptions{})
}

// DialClientOpts is DialClient with reconnect options.
func DialClientOpts(addr string, id uint64, start geom.Point, opts ClientOptions) (*MobileClient, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(id)
	c := &MobileClient{
		id:       id,
		addr:     addr,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		conn:     conn,
		codec:    wire.NewCodec(conn),
		pos:      start,
		readDone: make(chan struct{}),
	}
	c.traceSeq++
	hello := wire.Message{Type: wire.THello, Obj: id, Trace: mintTrace(id, c.traceSeq)}
	hello.SetPoint(start)
	if err := c.send(hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *MobileClient) send(m wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("remote: client %d closed", c.id)
	}
	return c.codec.Send(m)
}

// readLoop handles probes and safe-region grants, reconnecting on
// connection loss when enabled.
func (c *MobileClient) readLoop() {
	defer close(c.readDone)
	for {
		// The receive loop lives as long as the connection; Close unblocks it
		// by tearing the conn down, so no read deadline is wanted here.
		// c.codec is only swapped by this goroutine (in reconnect), so the
		// unlocked read is safe.
		m, err := c.codec.Recv() //lint:allow ctxdeadline long-lived loop, bounded by Close
		if err != nil {
			if c.reconnect() {
				continue
			}
			c.mu.Lock()
			if c.readErr == nil {
				c.readErr = err
			}
			c.mu.Unlock()
			return
		}
		switch m.Type {
		case wire.TRegion:
			c.mu.Lock()
			c.region = m.Rect()
			c.hasRgn = true
			pos := c.pos
			outside := !c.region.Contains(pos)
			c.mu.Unlock()
			if f := c.opts.Hooks.RegionGranted; f != nil {
				f(m.Trace)
			}
			if outside {
				// Already escaped the granted region (delays): report now.
				c.report(pos)
			}
		case wire.TProbe:
			c.mu.Lock()
			pos := c.pos
			c.probes++
			c.mu.Unlock()
			reply := wire.Message{Type: wire.TProbeReply, Obj: c.id, Seq: m.Seq}
			reply.SetPoint(pos)
			if f := c.opts.Hooks.Probed; f != nil {
				f()
			}
			if err := c.send(reply); err != nil {
				// A failed write means the connection is gone just like a
				// failed read does; going silent here would leave a zombie
				// client that never reconnects.
				if c.reconnect() {
					continue
				}
				c.mu.Lock()
				if c.readErr == nil {
					c.readErr = err
				}
				c.mu.Unlock()
				return
			}
		}
	}
}

// reconnect re-dials the server with jittered exponential backoff and
// resumes the session. It reports false when reconnecting is disabled, the
// client is closed, or the attempt budget is exhausted. Runs on the read
// goroutine only.
func (c *MobileClient) reconnect() bool {
	if !c.opts.Reconnect {
		return false
	}
	delay := c.opts.BackoffMin
	for attempt := 0; c.opts.MaxAttempts <= 0 || attempt < c.opts.MaxAttempts; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return false
		}
		// Invalidate the region: the server will re-push a current one on
		// resume, and until then every Tick must report.
		c.hasRgn = false
		pos := c.pos
		c.traceSeq++
		tr := mintTrace(c.id, c.traceSeq)
		c.mu.Unlock()

		if attempt > 0 {
			d := delay
			if c.opts.Jitter > 0 {
				d += time.Duration(float64(delay) * c.opts.Jitter * (2*c.rng.Float64() - 1))
			}
			time.Sleep(d)
			if delay *= 2; delay > c.opts.BackoffMax {
				delay = c.opts.BackoffMax
			}
		}
		conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
		if err != nil {
			continue
		}
		codec := wire.NewCodec(conn)
		hello := wire.Message{Type: wire.THello, Obj: c.id, Resume: true, Trace: tr}
		hello.SetPoint(pos)
		if err := codec.Send(hello); err != nil {
			_ = conn.Close()
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return false
		}
		_ = c.conn.Close()
		c.conn, c.codec = conn, codec
		c.reconnects++
		c.mu.Unlock()
		return true
	}
	return false
}

func (c *MobileClient) report(p geom.Point) {
	c.mu.Lock()
	c.updates++
	c.traceSeq++
	tr := mintTrace(c.id, c.traceSeq)
	c.mu.Unlock()
	m := wire.Message{Type: wire.TUpdate, Obj: c.id, Trace: tr}
	m.SetPoint(p)
	if f := c.opts.Hooks.UpdateSent; f != nil {
		f(tr, c.send(m))
		return
	}
	_ = c.send(m)
}

// Report sends a location update unconditionally, whether or not p is inside
// the granted safe region. The protocol never requires this — Tick reports
// exactly on region exit — but the load harness uses it to hold a constant
// offered update rate (open loop) independent of safe-region geometry. The
// granted region stays valid: an in-region update does not change what the
// client must monitor.
func (c *MobileClient) Report(p geom.Point) {
	c.mu.Lock()
	c.pos = p
	c.mu.Unlock()
	c.report(p)
}

// Tick advances the client to position p, sending a location update exactly
// when p is outside the current safe region (or none has arrived yet).
func (c *MobileClient) Tick(p geom.Point) {
	c.mu.Lock()
	c.pos = p
	needsReport := !c.hasRgn || !c.region.Contains(p)
	if needsReport {
		// Invalidate the region until the server grants a fresh one, so
		// rapid ticks do not flood the uplink.
		c.hasRgn = false
	}
	c.mu.Unlock()
	if needsReport {
		c.report(p)
	}
}

// Region returns the current safe region and whether one has been granted.
func (c *MobileClient) Region() (geom.Rect, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.region, c.hasRgn
}

// Stats returns the number of updates sent and probes answered.
func (c *MobileClient) Stats() (updates, probes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates, c.probes
}

// Reconnects returns how many times the session was resumed over a fresh
// connection.
func (c *MobileClient) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close says goodbye and tears the connection down.
func (c *MobileClient) Close() error {
	_ = c.send(wire.Message{Type: wire.TBye, Obj: c.id})
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	err := conn.Close()
	<-c.readDone
	return err
}

// AppOptions tunes the application-server handle's fault tolerance. The zero
// value disables reconnecting and round-trip timeouts (one connection, wait
// forever — historical behavior).
type AppOptions struct {
	// Reconnect re-dials with exponential backoff after a connection loss and
	// re-registers every query this handle holds, instead of closing the
	// Updates stream. Safe because registration is idempotent at the wire
	// layer (a duplicate ID replaces the query).
	Reconnect bool
	// BackoffMin and BackoffMax bound the exponential backoff delay.
	// Defaults: 50ms and 5s.
	BackoffMin, BackoffMax time.Duration
	// Jitter is the relative randomization of each delay (0.2 = ±20%).
	// Defaults to 0.2; negative disables.
	Jitter float64
	// Seed makes the jitter sequence deterministic for tests; 0 seeds from 1.
	Seed int64
	// MaxAttempts caps consecutive failed dials before giving up; 0 retries
	// forever (until Close).
	MaxAttempts int
	// RPCTimeout bounds each register round trip; on expiry the frame is
	// re-sent (registration being idempotent makes the retry safe, whether
	// the request or the reply was lost). 0 waits forever; defaults to 2s
	// when Reconnect is set.
	RPCTimeout time.Duration
	// RPCAttempts caps register retries when RPCTimeout is set. Defaults
	// to 4.
	RPCAttempts int
}

func (o AppOptions) withDefaults() AppOptions {
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Reconnect && o.RPCTimeout == 0 {
		o.RPCTimeout = 2 * time.Second
	}
	if o.RPCAttempts <= 0 {
		o.RPCAttempts = 4
	}
	return o
}

// AppClient is an application-server handle: it registers continuous queries
// and receives the stream of result updates.
type AppClient struct {
	addr string
	opts AppOptions
	rng  *rand.Rand // jitter source, used only by the read/reconnect goroutine
	logf func(format string, args ...interface{})

	mu          sync.Mutex
	conn        net.Conn
	codec       *wire.Codec
	traceSeq    uint64 // per-handle sequence feeding mintTrace
	pending     map[uint64]chan wire.Message
	specs       map[uint64]wire.Message // registration frames, for re-register on reconnect
	updates     chan ResultUpdate
	closed      bool
	reconnects  int64
	dropped     int64        // result pushes discarded on backpressure
	lastDropLog time.Time    // throttles the drop warning
	obsDropped  *obs.Counter // nil-safe mirror of dropped
}

// dropLogEvery throttles the backpressure warning: losing result pushes is
// worth telling the operator about, but not once per dropped frame.
const dropLogEvery = 5 * time.Second

// ResultUpdate is a pushed result change for a registered query. Aggregate
// COUNT queries populate only Count.
type ResultUpdate struct {
	Query   query.ID
	Results []uint64
	Count   int
}

// DialApp connects an application server.
func DialApp(addr string) (*AppClient, error) {
	return DialAppOpts(addr, AppOptions{})
}

// DialAppOpts is DialApp with reconnect and round-trip retry options.
func DialAppOpts(addr string, opts AppOptions) (*AppClient, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	a := &AppClient{
		addr:    addr,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		conn:    conn,
		codec:   wire.NewCodec(conn),
		logf:    log.Printf,
		pending: make(map[uint64]chan wire.Message),
		specs:   make(map[uint64]wire.Message),
		updates: make(chan ResultUpdate, 256),
	}
	go a.readLoop()
	return a, nil
}

// SetObs mirrors the handle's dropped-push counter into an observability
// registry as srb_app_results_dropped_total. Nil detaches.
func (a *AppClient) SetObs(sink *obs.Sink) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if sink == nil || sink.Registry() == nil {
		a.obsDropped = nil
		return
	}
	a.obsDropped = sink.Registry().Counter("srb_app_results_dropped_total",
		"Result pushes dropped by the app client because its Updates channel was full.")
}

// SetLogf replaces the handle's logger (useful to silence tests).
func (a *AppClient) SetLogf(f func(string, ...interface{})) {
	if f == nil {
		f = func(string, ...interface{}) {}
	}
	a.logf = f
}

// Dropped returns how many result pushes were discarded because the Updates
// channel was full. A non-zero value means the consumer is too slow and has
// missed intermediate results (each query's next push supersedes them).
func (a *AppClient) Dropped() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// noteDrop accounts one discarded result push, warning at a throttled rate.
func (a *AppClient) noteDrop(qid uint64) {
	a.mu.Lock()
	a.dropped++
	n := a.dropped
	ctr := a.obsDropped
	warn := time.Since(a.lastDropLog) >= dropLogEvery
	if warn {
		a.lastDropLog = time.Now()
	}
	a.mu.Unlock()
	ctr.Inc() // nil-safe
	if warn {
		a.logf("remote: app client dropped result push for query %d on backpressure (%d dropped total)", qid, n)
	}
}

func (a *AppClient) readLoop() {
	defer close(a.updates)
	defer a.failPending()
	for {
		// Long-lived result stream; Close tears the conn down to unblock it.
		// a.codec is only swapped by this goroutine (in reconnect), so the
		// unlocked read is safe.
		m, err := a.codec.Recv() //lint:allow ctxdeadline long-lived loop, bounded by Close
		if err != nil {
			if a.reconnect() {
				continue
			}
			return
		}
		a.mu.Lock()
		ch := a.pending[m.QID]
		if ch != nil {
			delete(a.pending, m.QID)
		}
		a.mu.Unlock()
		if ch != nil {
			ch <- m
			continue
		}
		if m.Type == wire.TResults {
			select {
			case a.updates <- ResultUpdate{Query: query.ID(m.QID), Results: m.IDs, Count: m.Count}:
			default:
				// Drop on backpressure rather than stalling the stream — but
				// never invisibly: count it and warn at a throttled rate.
				a.noteDrop(m.QID)
			}
		} else if m.Type == wire.TError {
			// An error frame with no round-trip waiter (the waiter timed out,
			// or the server pushed it) must not vanish silently.
			a.logf("remote: unrouted server error for query %d: %s", m.QID, m.Err)
		}
	}
}

// Updates streams result changes for all queries registered on this handle.
// The channel closes when the connection drops — or, with Reconnect, when the
// handle is closed or the dial budget is exhausted. After a reconnect the
// fresh registrations' initial results arrive on this channel too.
func (a *AppClient) Updates() <-chan ResultUpdate { return a.updates }

// reconnect re-dials the server with jittered exponential backoff and
// re-registers every query this handle holds (idempotent at the wire layer,
// so a query that survived server-side is simply replaced). It reports false
// when reconnecting is disabled, the handle is closed, or the attempt budget
// is exhausted. Runs on the read goroutine only.
func (a *AppClient) reconnect() bool {
	if !a.opts.Reconnect {
		return false
	}
	delay := a.opts.BackoffMin
	for attempt := 0; a.opts.MaxAttempts <= 0 || attempt < a.opts.MaxAttempts; attempt++ {
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			return false
		}
		a.mu.Unlock()

		if attempt > 0 {
			d := delay
			if a.opts.Jitter > 0 {
				d += time.Duration(float64(delay) * a.opts.Jitter * (2*a.rng.Float64() - 1))
			}
			time.Sleep(d)
			if delay *= 2; delay > a.opts.BackoffMax {
				delay = a.opts.BackoffMax
			}
		}
		conn, err := net.DialTimeout("tcp", a.addr, dialTimeout)
		if err != nil {
			continue
		}
		codec := wire.NewCodec(conn)
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			_ = conn.Close()
			return false
		}
		_ = a.conn.Close()
		a.conn, a.codec = conn, codec
		a.reconnects++
		// Re-register in ascending query order for a deterministic journal.
		specs := make([]wire.Message, 0, len(a.specs))
		for _, sm := range a.specs {
			specs = append(specs, sm)
		}
		a.mu.Unlock()
		sort.Slice(specs, func(i, j int) bool { return specs[i].QID < specs[j].QID })

		// Replies route to a pending round-trip waiter when one is in
		// flight, otherwise they surface as ordinary result pushes.
		ok := true
		for _, sm := range specs {
			if err := a.codecSend(sm); err != nil {
				ok = false // the fresh conn died already; back off and retry
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// roundTrip sends a request frame and waits for its reply. With RPCTimeout
// set it re-sends the frame when the reply does not arrive in time — safe
// whether the request or the reply was lost, because registration is
// idempotent at the wire layer.
func (a *AppClient) roundTrip(m wire.Message) (wire.Message, error) {
	attempts := 1
	if a.opts.RPCTimeout > 0 {
		attempts = a.opts.RPCAttempts
	}
	for i := 0; ; i++ {
		reply, err, again := a.roundTripOnce(m) //lint:allow errdrop a retried attempt's error is superseded by the final one
		if !again || i == attempts-1 {
			return reply, err
		}
	}
}

// roundTripOnce performs one send+wait attempt; again reports whether the
// failure is a timeout-class one worth retrying.
func (a *AppClient) roundTripOnce(m wire.Message) (wire.Message, error, bool) {
	ch := make(chan wire.Message, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return wire.Message{}, fmt.Errorf("remote: app client closed"), false
	}
	a.pending[m.QID] = ch
	sendErr := a.codec.Send(m)
	a.mu.Unlock()
	if sendErr != nil {
		a.clearPending(m.QID, ch)
		if !a.opts.Reconnect || a.opts.RPCTimeout <= 0 {
			return wire.Message{}, sendErr, false
		}
		// The conn is gone and the read loop is re-dialing; wait out one
		// timeout and retry on the fresh session.
		time.Sleep(a.opts.RPCTimeout)
		return wire.Message{}, sendErr, true
	}
	var timeout <-chan time.Time
	if a.opts.RPCTimeout > 0 {
		timer := time.NewTimer(a.opts.RPCTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return wire.Message{}, fmt.Errorf("remote: connection closed"), false
		}
		if reply.Type == wire.TError {
			return wire.Message{}, fmt.Errorf("remote: %s", reply.Err), false
		}
		return reply, nil, false
	case <-timeout:
		a.clearPending(m.QID, ch)
		return wire.Message{}, fmt.Errorf("remote: round trip for query %d timed out", m.QID), true
	}
}

// clearPending removes the waiter for qid if it is still ours (a retry may
// have installed a fresh one).
func (a *AppClient) clearPending(qid uint64, ch chan wire.Message) {
	a.mu.Lock()
	if a.pending[qid] == ch {
		delete(a.pending, qid)
	}
	a.mu.Unlock()
}

// failPending closes every outstanding round-trip waiter; runs when the read
// loop exits for good so no caller is left blocked forever.
func (a *AppClient) failPending() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for qid, ch := range a.pending {
		// The read loop — the only sender on pending channels — has already
		// exited when this runs, so the receive-side close cannot race a send.
		close(ch) //lint:allow chanlife sole sender (the read loop) has exited before failPending runs
		delete(a.pending, qid)
	}
}

// request runs the round trip and, on success, records the registration
// frame so a reconnect can replay it. Each registration is one causal
// operation: the minted trace ID survives retries and reconnect replays, so
// the server-side fan-out of a re-sent frame still correlates.
func (a *AppClient) request(m wire.Message) (wire.Message, error) {
	m.Trace = a.mintAppTrace()
	reply, err := a.roundTrip(m)
	if err == nil {
		a.mu.Lock()
		a.specs[m.QID] = m
		a.mu.Unlock()
	}
	return reply, err
}

// RegisterRange registers a continuous range query and returns its initial
// result.
func (a *AppClient) RegisterRange(id query.ID, r geom.Rect) ([]uint64, error) {
	m := wire.Message{Type: wire.TRegisterRange, QID: uint64(id)}
	m.SetRect(r)
	reply, err := a.request(m)
	return reply.IDs, err
}

// RegisterCount registers an aggregate COUNT range query and returns the
// initial count.
func (a *AppClient) RegisterCount(id query.ID, r geom.Rect) (int, error) {
	m := wire.Message{Type: wire.TRegisterCount, QID: uint64(id)}
	m.SetRect(r)
	reply, err := a.request(m)
	return reply.Count, err
}

// RegisterWithinDistance registers a circular range query (objects within
// radius of center) and returns its initial result.
func (a *AppClient) RegisterWithinDistance(id query.ID, center geom.Point, radius float64) ([]uint64, error) {
	m := wire.Message{Type: wire.TRegisterCircle, QID: uint64(id), Radius: radius}
	m.SetPoint(center)
	reply, err := a.request(m)
	return reply.IDs, err
}

// RegisterKNN registers a continuous kNN query and returns its initial
// (distance-ordered) result.
func (a *AppClient) RegisterKNN(id query.ID, pt geom.Point, k int, ordered bool) ([]uint64, error) {
	m := wire.Message{Type: wire.TRegisterKNN, QID: uint64(id), K: k, Ordered: ordered}
	m.SetPoint(pt)
	reply, err := a.request(m)
	return reply.IDs, err
}

// mintAppTrace derives the next causal trace ID for a frame sent by this
// handle, keyed by the jitter seed so concurrent handles mint from different
// streams.
func (a *AppClient) mintAppTrace() uint64 {
	a.mu.Lock()
	a.traceSeq++
	tr := mintTrace(0xa99c1e27^uint64(a.opts.Seed), a.traceSeq)
	a.mu.Unlock()
	return tr
}

// Deregister removes a query.
func (a *AppClient) Deregister(id query.ID) error {
	a.mu.Lock()
	delete(a.specs, uint64(id))
	a.mu.Unlock()
	return a.codecSend(wire.Message{Type: wire.TDeregister, QID: uint64(id), Trace: a.mintAppTrace()})
}

// Reconnects returns how many times the handle re-dialed and re-registered
// its queries over a fresh connection.
func (a *AppClient) Reconnects() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconnects
}

func (a *AppClient) codecSend(m wire.Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.codec.Send(m)
}

// Close tears down the connection; the server deregisters this handle's
// queries.
func (a *AppClient) Close() error {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	return a.conn.Close()
}
