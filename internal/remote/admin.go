package remote

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"srb/internal/core"
	"srb/internal/parallel"
	"srb/internal/viz"
)

// AdminHandler returns an HTTP handler exposing the server's operational
// surface:
//
//	GET /stats            server work counters and population as JSON
//	                      (batch pipeline counters included when enabled)
//	GET /snapshot         the monitor state as a gob snapshot (core.SaveSnapshot)
//	GET /svg              the spatial state rendered as SVG (safe regions included)
//	GET /metrics          Prometheus text exposition (404 until SetObs)
//	GET /trace            Chrome trace-event JSON of recent decision events
//	                      (load in chrome://tracing or https://ui.perfetto.dev)
//	GET /queries          per-query cost ledger as JSON: hottest queries first
//	                      (?k=N caps the list, default 20), plus the
//	                      Unattributed and Retired buckets (404 until SetObs)
//	GET /debug/flightrec  the flight recorder's ring as NDJSON (404 until
//	                      SetFlightRecorder)
//	GET /debug/pprof/...  the standard net/http/pprof profiling surface
//
// /stats, /snapshot, /svg and /queries serialize through the event loop, so
// they observe consistent state; /metrics, /trace and /debug/flightrec read
// lock-free snapshots and never touch the loop.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		type shardStats struct {
			N          int   `json:"n"`
			Objects    []int `json:"objects"`    // owned objects per shard, stripe order
			Strays     int   `json:"strays"`     // indexed off their routed stripe
			Migrations int64 `json:"migrations"` // boundary crossings since start
			Scatters   int64 `json:"scatters"`   // scatter-gather searches since start
		}
		var payload struct {
			Objects int             `json:"objects"`
			Queries int             `json:"queries"`
			Clients int             `json:"clients"`
			Stats   core.Stats      `json:"stats"`
			Batch   *parallel.Stats `json:"batch,omitempty"`
			Shards  *shardStats     `json:"shards,omitempty"`
		}
		if err := s.do(func() {
			payload.Objects = s.mon.NumObjects()
			payload.Queries = s.mon.NumQueries()
			payload.Clients = len(s.clients)
			payload.Stats = s.mon.Stats()
			if s.pipe != nil {
				bs := s.pipe.Stats()
				payload.Batch = &bs
			}
			if s.forest != nil {
				payload.Shards = &shardStats{
					N:          s.forest.NumShards(),
					Objects:    s.forest.ShardObjects(),
					Strays:     s.forest.Strays(),
					Migrations: s.forest.Migrations(),
					Scatters:   s.forest.Scatters(),
				}
			}
		}); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if derr := s.do(func() {
			w.Header().Set("Content-Type", "application/octet-stream")
			err = s.mon.SaveSnapshot(w)
		}); derr != nil {
			http.Error(w, derr.Error(), http.StatusServiceUnavailable)
			return
		}
		if err != nil {
			s.logf("remote: snapshot: %v", err)
		}
	})
	mux.HandleFunc("/svg", func(w http.ResponseWriter, r *http.Request) {
		var snap viz.Snapshot
		if err := s.do(func() {
			snap = viz.Capture(s.mon, s.mon.ObjectIDs(), s.mon.QueryIDs())
		}); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		if err := viz.Render(w, snap, viz.Options{Space: s.opt.Space, ShowSafeRegions: true, ShowQuarantines: true}); err != nil {
			s.logf("remote: render svg: %v", err)
		}
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		k := 20
		if v := r.URL.Query().Get("k"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				k = n
			}
		}
		var payload struct {
			Hot          []core.QueryCost `json:"hot"`
			Unattributed core.QueryCost   `json:"unattributed"`
			Retired      core.QueryCost   `json:"retired"`
			RetiredN     int64            `json:"retired_queries"`
		}
		var enabled bool
		if err := s.do(func() {
			payload.Hot = s.mon.HotQueries(k)
			payload.Unattributed = s.mon.UnattributedCost()
			payload.Retired = s.mon.RetiredCost()
			payload.RetiredN = s.mon.RetiredQueries()
			enabled = s.mon.QueryCosts() != nil
		}); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if !enabled {
			http.Error(w, "per-query ledger disabled (no observability sink attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		// A nil recorder answers 404 itself.
		s.flight.ServeHTTP(w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := s.sink.Registry()
		if reg == nil {
			http.Error(w, "metrics disabled (no observability sink attached)", http.StatusNotFound)
			return
		}
		reg.ServeHTTP(w, r)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		// A nil tracer answers 404 itself.
		s.sink.Tracer().ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
