package remote

import (
	"encoding/json"
	"net/http"

	"srb/internal/core"
	"srb/internal/viz"
)

// AdminHandler returns an HTTP handler exposing the server's operational
// surface:
//
//	GET /stats     server work counters and population as JSON
//	GET /snapshot  the monitor state as a gob snapshot (core.SaveSnapshot)
//	GET /svg       the spatial state rendered as SVG (safe regions included)
//
// All endpoints serialize through the event loop, so they observe consistent
// state.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		var payload struct {
			Objects int        `json:"objects"`
			Queries int        `json:"queries"`
			Clients int        `json:"clients"`
			Stats   core.Stats `json:"stats"`
		}
		if err := s.do(func() {
			payload.Objects = s.mon.NumObjects()
			payload.Queries = s.mon.NumQueries()
			payload.Clients = len(s.clients)
			payload.Stats = s.mon.Stats()
		}); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var err error
		if derr := s.do(func() {
			w.Header().Set("Content-Type", "application/octet-stream")
			err = s.mon.SaveSnapshot(w)
		}); derr != nil {
			http.Error(w, derr.Error(), http.StatusServiceUnavailable)
			return
		}
		if err != nil {
			s.logf("remote: snapshot: %v", err)
		}
	})
	mux.HandleFunc("/svg", func(w http.ResponseWriter, r *http.Request) {
		var snap viz.Snapshot
		if err := s.do(func() {
			snap = viz.Capture(s.mon, s.mon.ObjectIDs(), s.mon.QueryIDs())
		}); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		if err := viz.Render(w, snap, viz.Options{Space: s.opt.Space, ShowSafeRegions: true, ShowQuarantines: true}); err != nil {
			s.logf("remote: render svg: %v", err)
		}
	})
	return mux
}
