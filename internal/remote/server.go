// Package remote runs the monitoring framework over a network: a Server
// hosting the core Monitor, MobileClient runtimes that report location
// updates only when leaving their safe region, and AppClient handles that
// register continuous queries and stream result updates — the full system of
// Figure 1.1, with TCP/JSON substituted for the paper's SOAP/HTTP transport.
package remote

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"srb/internal/chaos"
	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/parallel"
	"srb/internal/query"
	"srb/internal/shard"
	"srb/internal/wire"
)

// probeTimeout bounds how long the server waits for a probe reply before
// falling back to the client's last reported location.
const probeTimeout = 2 * time.Second

// helloTimeout bounds the wait for a new connection's first frame, so a peer
// that connects and sends nothing cannot pin a handler goroutine forever.
const helloTimeout = 30 * time.Second

// Reconnect-storm detection: this many resume hellos inside the window
// trigger a flight-recorder dump (rate-limited by the recorder itself), so
// the evidence of what caused a mass reconnect survives the storm.
const (
	reconnectStormCount  = 8
	reconnectStormWindow = 10 * time.Second
)

// Server hosts a Monitor on a TCP listener. All monitor operations run on a
// single event-loop goroutine, matching the framework's sequential
// processing assumption.
type Server struct {
	opt    core.Options
	mon    *core.Monitor
	forest *shard.Forest      // sharded object index, nil for the single tree
	pipe   *parallel.Pipeline // non-nil when batch updates are enabled
	ln     net.Listener
	reqs   chan request
	done   chan struct{}

	sink *obs.Sink // attached observability, nil when off
	obs  *srvObs

	flight    *obs.FlightRecorder // black-box ring, nil when off
	sloThresh time.Duration       // event-loop SLO; breaches trigger a flight dump

	inj     *chaos.Injector // fault injection on accepted conns, nil when off
	lease   time.Duration   // how long a disconnected session survives; 0 = none
	probeTO time.Duration   // per-probe reply deadline, default probeTimeout

	// State below is owned by the event loop goroutine.
	clients map[uint64]*clientConn
	watch   map[query.ID]*appConn
	leases  map[uint64]*time.Timer // pending lease expiries by object
	persist *persistState          // crash-recovery journal, nil when off

	// curTrace is the causal trace ID of the wire frame whose consequences the
	// event loop is currently applying; probe frames and result pushes issued
	// from inside the operation echo it. Event-loop owned.
	curTrace uint64
	// recentRec holds the timestamps of recent resume hellos for
	// reconnect-storm detection. Event-loop owned.
	recentRec []time.Time

	closeOnce sync.Once
	serving   atomic.Bool // Serve started; its exit path owns forest shutdown
	wg        sync.WaitGroup
	start     time.Time
	timeBase  float64 // monitor clock at recovery, so time never runs backward
	recSeq    uint64  // journal sequence recovery stopped at; SetPersist continues it

	// Startup-recovery outcome, written once in Recover (before Serve) and
	// read by the observability gauges.
	replaySeconds float64
	replayEntries int
	logf          func(format string, args ...interface{})
}

// request is one event-loop operation: either an arbitrary closure or a
// location update carried as data, so the loop can coalesce a burst of queued
// updates into a single pipeline batch.
type request struct {
	fn func()      // non-update operation; nil for updates
	c  *clientConn // update: the reporting connection
	p  geom.Point  // update: the reported location
	tr uint64      // update: causal trace ID carried by the wire frame
}

type clientConn struct {
	obj     uint64
	codec   *wire.Codec
	conn    net.Conn
	lastPos geom.Point
	seq     uint64
	replies chan wire.Message

	// needRegion marks a session whose last safe-region push failed (or that
	// just resumed): the current region must be re-sent before the client can
	// be trusted to suppress updates again. Event-loop owned.
	needRegion bool
	// bye records a clean TBye departure, which releases the object
	// immediately instead of holding its session lease.
	bye bool
}

type appConn struct {
	codec *wire.Codec
	conn  net.Conn
	mu    sync.Mutex // application frames are written from the event loop and registration acks
}

func (a *appConn) send(m wire.Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.codec.Send(m)
}

// NewServer creates a server with the given monitor options, listening on
// addr (e.g. "127.0.0.1:0"). Serve must be called to start accepting.
func NewServer(addr string, opt core.Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:     opt,
		ln:      ln,
		reqs:    make(chan request, 4096),
		done:    make(chan struct{}),
		clients: make(map[uint64]*clientConn),
		watch:   make(map[query.ID]*appConn),
		leases:  make(map[uint64]*time.Timer),
		start:   time.Now(),
		logf:    log.Printf,
	}
	s.mon = core.New(opt, core.ProberFunc(s.probe), s.onResults)
	return s, nil
}

// SetLogf replaces the server's logger (useful to silence tests).
func (s *Server) SetLogf(f func(string, ...interface{})) {
	if f == nil {
		f = func(string, ...interface{}) {}
	}
	s.logf = f
}

// SetShards partitions the monitor's object index across n goroutine-confined
// shards: each owns a contiguous stripe of grid columns and a private R*-tree,
// with the router migrating boundary-crossing objects and scatter-gathering
// boundary-straddling searches (see internal/shard and ARCHITECTURE.md). The
// sharded index changes no observable semantics — results, safe regions,
// stats, journal and snapshot bytes stay bit-identical to the single tree — it
// adds per-shard srb_shard_* metrics and "migrate" flight events. Must be
// called before Serve, Recover, and SetPersist, while the monitor is still
// empty. n <= 1 keeps the default single tree. Composes freely with
// SetWorkers: the batch pipeline plans geometry, the shards store regions.
func (s *Server) SetShards(n int) error {
	if n <= 1 {
		return nil
	}
	f := shard.NewForest(s.opt, n)
	if err := s.mon.SetIndex(f); err != nil {
		f.Close()
		return err
	}
	s.forest = f
	if s.sink != nil {
		f.SetObs(s.sink)
	}
	if s.flight != nil {
		f.SetFlightRecorder(s.flight)
	}
	return nil
}

// NumShards returns the object-index shard count (1 for the single tree).
func (s *Server) NumShards() int {
	if s.forest == nil {
		return 1
	}
	return s.forest.NumShards()
}

// SetWorkers enables the batch update pipeline: bursts of queued location
// updates are coalesced into one batch whose conflict-free part is planned on
// n workers (n <= 0 keeps the pure sequential path). The batch outcome is
// bit-identical to sequential processing in ascending object-ID order — see
// internal/parallel. Must be called before Serve.
func (s *Server) SetWorkers(n int) {
	if n > 0 {
		s.pipe = parallel.New(s.mon, n)
		if s.sink != nil {
			s.pipe.SetObs(s.sink)
		}
	} else {
		s.pipe = nil
	}
}

// SetChaos wraps every accepted connection with the given fault injector
// (see internal/chaos). Injected faults are counted in the observability
// registry when a sink is attached. Must be called before Serve; nil
// disables.
func (s *Server) SetChaos(inj *chaos.Injector) {
	s.inj = inj
	if inj != nil && s.obs != nil {
		inj.OnFault(s.obs.noteFault)
	}
}

// SetFlightRecorder attaches a black-box flight recorder: the server records
// every wire-causal event (updates, grants, probes, registrations, resumes)
// into its bounded ring, the monitor adds slow-op markers, and dumps trigger
// automatically on an event-loop SLO breach (SetSLO) or a reconnect storm.
// Works with or without an observability sink. Must be called before Serve;
// nil detaches. The caller owns the recorder's lifecycle (Close, SIGQUIT
// dumps).
func (s *Server) SetFlightRecorder(fr *obs.FlightRecorder) {
	s.flight = fr
	s.mon.SetFlightRecorder(fr)
	if s.forest != nil {
		s.forest.SetFlightRecorder(fr)
	}
}

// SetSLO sets the event-loop latency objective: a request (update batch or
// other operation) taking d or longer triggers a flight-recorder dump with
// reason "slo-breach" (rate-limited by the recorder). 0 disables. Must be
// called before Serve; effective only with a flight recorder attached.
func (s *Server) SetSLO(d time.Duration) { s.sloThresh = d }

// SetSlowOpLog configures the monitor's structured slow-operation NDJSON log
// (core.Monitor.SetSlowOpLog): monitor operations taking threshold or longer
// are appended to w with their op kind, duration, causal trace ID, work
// deltas, and the chain of queries touched. Requires an observability sink
// (operation timing exists only then). Must be called before Serve.
func (s *Server) SetSlowOpLog(threshold time.Duration, w io.Writer) {
	s.mon.SetSlowOpLog(threshold, w)
}

// setTrace installs tr as the causal trace of the operation about to run:
// the monitor tags its spans, instants, and slow-op records with it, and the
// server echoes it on probe frames and result pushes issued from inside the
// operation. Runs on the event loop.
func (s *Server) setTrace(tr uint64) {
	s.curTrace = tr
	s.mon.SetOpTrace(tr)
}

// SetProbeTimeout overrides how long a server-initiated probe waits for the
// client's reply before falling back to the last reported location (default
// 2s). Probes run on the event loop, so on a lossy link a shorter timeout
// bounds how long one unanswered probe can stall all other sessions. Must be
// called before Serve.
func (s *Server) SetProbeTimeout(d time.Duration) { s.probeTO = d }

// SetLease makes a disconnected mobile-client session survive for d: the
// object stays in the monitor so a client that reconnects with Resume gets
// its state back (and a fresh safe-region push) instead of being re-added
// from scratch. d = 0 restores the historical behavior of removing the
// object the moment its connection drops. Must be called before Serve.
func (s *Server) SetLease(d time.Duration) { s.lease = d }

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve runs the accept and event loops until Close. It always returns a
// non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve() error {
	s.serving.Store(true)
	s.wg.Add(1)
	// The event loop's only data-bounded loop is settleProbes' worklist drain
	// (processed grows monotonically over a finite ID set), which goroleak's
	// gate classifier cannot prove terminating; the loop itself exits on
	// <-s.done.
	go s.loop() //lint:allow goroleak settleProbes is a bounded worklist drain, not a shutdown hazard
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.closeOnce.Do(func() { close(s.done) })
			s.wg.Wait()
			if s.forest != nil {
				s.forest.Close() // after wg.Wait: no event-loop op can touch the index now
			}
			return err
		}
		s.wg.Add(1)
		go s.handle(conn) //lint:allow goroleak reaches settleProbes via probe enqueue; same bounded worklist drain as the event loop
	}
}

// Close stops the server and terminates all connections. When Serve is
// running, shard workers (SetShards) are released by Serve's exit path once
// the event loop has drained; when Serve was never started, Close releases
// them directly.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.closeOnce.Do(func() { close(s.done) })
	if s.persist != nil && s.persist.timer != nil {
		s.persist.timer.Stop()
	}
	if s.forest != nil && !s.serving.Load() {
		s.forest.Close()
	}
	return err
}

// loop serializes all monitor operations.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.reqs:
			s.mon.SetTime(s.timeBase + time.Since(s.start).Seconds())
			s.dispatch(r)
		case <-s.done:
			return
		}
	}
}

// dispatch runs one request. A location update additionally drains — without
// blocking — the updates already queued behind it, so a burst of reports
// becomes one pipeline batch; draining stops at the first non-update request
// to preserve FIFO order with respect to registrations and disconnects.
func (s *Server) dispatch(r request) {
	timed := s.obs != nil || (s.flight != nil && s.sloThresh > 0)
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	if r.fn != nil {
		r.fn()
		s.noteOp(t0)
		s.checkSLO(t0, "op")
		return
	}
	conns := []*clientConn{r.c}
	pts := []geom.Point{r.p}
	trs := []uint64{r.tr}
	var after *request
drain:
	for {
		select {
		case nx := <-s.reqs:
			if nx.fn != nil {
				after = &nx
				break drain
			}
			conns = append(conns, nx.c)
			pts = append(pts, nx.p)
			trs = append(trs, nx.tr)
		default:
			break drain
		}
	}
	s.applyUpdates(conns, pts, trs)
	s.noteBatch(t0, len(conns))
	s.checkSLO(t0, "update-batch")
	if after != nil {
		var ta time.Time
		if timed {
			ta = time.Now()
		}
		after.fn()
		s.noteOp(ta)
		s.checkSLO(ta, "op")
	}
}

// checkSLO triggers a flight-recorder dump when an event-loop request blew the
// latency objective; the breach itself is recorded so the dump carries it.
func (s *Server) checkSLO(t0 time.Time, kind string) {
	if s.flight == nil || s.sloThresh <= 0 {
		return
	}
	if dur := time.Since(t0); dur >= s.sloThresh {
		s.flight.Record(obs.FlightEvent{
			Kind: obs.FlightSlowOp, DurNS: dur.Nanoseconds(), Note: "event-loop " + kind,
		})
		s.flight.TriggerDump("slo-breach")
	}
}

// applyUpdates processes a coalesced batch of location updates through the
// parallel pipeline when enabled (and worthwhile), else sequentially, and
// routes each update's safe-region refreshes back through dispatchRegions
// with the reporting object as primary.
func (s *Server) applyUpdates(conns []*clientConn, pts []geom.Point, trs []uint64) {
	// lastPos is only the probe-timeout fallback; every batched report has
	// been received by now, so expose all of them before the monitor runs
	// (and possibly probes) any update of the batch.
	for i, c := range conns {
		c.lastPos = pts[i]
		s.flight.Record(obs.FlightEvent{Kind: obs.FlightUpdate, Trace: trs[i], Obj: c.obj})
	}
	if s.pipe != nil && len(conns) > 1 {
		// One journal entry for the whole coalesced batch, in arrival order;
		// replay applies it in ascending-object-ID stable order, which the
		// pipeline determinism contract guarantees is the same outcome.
		if s.persist != nil {
			je := core.JournalEntry{Op: core.JournalBatch, Batch: make([]core.BatchedUpdate, len(conns))}
			for i, c := range conns {
				je.Batch[i] = core.BatchedUpdate{Obj: c.obj, X: pts[i].X, Y: pts[i].Y}
			}
			s.jBegin(je)
		}
		batch := make([]parallel.Update, len(conns))
		for i, c := range conns {
			batch[i] = parallel.Update{ID: c.obj, Loc: pts[i]}
		}
		// The serial apply phase installs each update's trace just before its
		// effects run, so probes, grants, and slow-op records inside carry the
		// causing frame's ID even though planning ran for the whole batch.
		s.pipe.ApplyEachCtx(batch,
			func(i int) { s.setTrace(trs[i]) },
			func(i int, ups []core.SafeRegionUpdate) {
				s.dispatchRegions(conns[i].obj, ups, trs[i])
			})
		s.setTrace(0)
		s.jCommit()
	} else {
		// Sequential path applies in arrival order, so journal one entry per
		// update to preserve that order on replay.
		for i, c := range conns {
			s.setTrace(trs[i])
			s.jBegin(core.JournalEntry{Op: core.JournalUpdate, Obj: c.obj, X: pts[i].X, Y: pts[i].Y})
			ups := s.mon.Update(c.obj, pts[i])
			s.jCommit()
			s.dispatchRegions(c.obj, ups, trs[i])
		}
		s.setTrace(0)
	}
	for i, c := range conns {
		if c.needRegion {
			s.pushRegion(c, trs[i])
		}
	}
}

// do schedules an operation on the event loop and waits for it.
func (s *Server) do(f func()) error {
	doneCh := make(chan struct{})
	select {
	case s.reqs <- request{fn: func() { f(); close(doneCh) }}:
	case <-s.done:
		return errors.New("remote: server closed")
	}
	select {
	case <-doneCh:
		return nil
	case <-s.done:
		return errors.New("remote: server closed")
	}
}

// probe implements the server-initiated probe: a round trip to the client's
// connection, falling back to the last reported location on timeout or after
// disconnect.
func (s *Server) probe(id uint64) geom.Point {
	p := s.probeLive(id)
	// Whatever answer the monitor consumes — live reply, fallback, or zero —
	// is what a journal replay must reproduce.
	if s.persist != nil {
		s.persist.journal.NoteProbe(id, p)
	}
	return p
}

func (s *Server) probeLive(id uint64) geom.Point {
	c := s.clients[id]
	if c == nil {
		// Disconnected but lease-alive object: its last reported location is
		// the best the server has.
		if p, ok := s.mon.LastReported(id); ok {
			return p
		}
		return geom.Point{}
	}
	c.seq++
	seq := c.seq
	s.flight.Record(obs.FlightEvent{Kind: obs.FlightProbe, Trace: s.curTrace, Obj: id})
	if err := c.codec.Send(wire.Message{Type: wire.TProbe, Seq: seq, Trace: s.curTrace}); err != nil {
		return c.lastPos
	}
	to := s.probeTO
	if to <= 0 {
		to = probeTimeout
	}
	timer := time.NewTimer(to)
	defer timer.Stop()
	for {
		select {
		case m := <-c.replies:
			if m.Seq == seq {
				c.lastPos = m.Point()
				return c.lastPos
			}
			// Stale reply to an earlier probe: keep draining.
		case <-timer.C:
			return c.lastPos
		case <-s.done:
			return c.lastPos
		}
	}
}

// onResults pushes a changed result to the application server watching the
// query. Runs on the event loop.
func (s *Server) onResults(u core.ResultUpdate) {
	if a := s.watch[u.Query]; a != nil {
		if err := a.send(wire.Message{Type: wire.TResults, QID: uint64(u.Query), IDs: u.Results, Count: u.Count, Trace: s.curTrace}); err != nil {
			s.logf("remote: push results to app: %v", err)
		}
	}
}

// handle demultiplexes a new connection by its first frame: a THello starts a
// mobile-client session, anything else an application session.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	if s.inj != nil {
		conn = s.inj.Wrap(conn)
	}
	codec := wire.NewCodec(conn)
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	first, err := codec.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	// The session established, reads are unbounded again: both session kinds
	// block on their peer indefinitely and are torn down via Close.
	_ = conn.SetReadDeadline(time.Time{})
	if first.Type == wire.THello {
		s.serveClient(conn, codec, first)
		return
	}
	if first.Type == wire.TUpdate {
		// A mobile client whose (resume) hello was lost in transit: its first
		// surviving frame is a location report. Reconstruct the hello from it —
		// updates carry the object ID and position — so the session attaches
		// instead of being misrouted as an application connection.
		hello := wire.Message{Type: wire.THello, Obj: first.Obj, Resume: true, Trace: first.Trace}
		hello.SetPoint(first.Point())
		s.serveClient(conn, codec, hello)
		return
	}
	s.serveApp(conn, codec, first)
}

func (s *Server) serveClient(conn net.Conn, codec *wire.Codec, hello wire.Message) {
	defer conn.Close()
	c := &clientConn{
		obj:     hello.Obj,
		codec:   codec,
		conn:    conn,
		lastPos: hello.Point(),
		replies: make(chan wire.Message, 4),
	}
	// The client reader must never wait for the event loop: the loop may be
	// blocked probing this very connection, and the probe reply has to keep
	// flowing. Updates are therefore fire-and-forget enqueues; FIFO order per
	// connection is preserved by the request channel.
	enqueue := func(r request) error {
		select {
		case s.reqs <- r:
			return nil
		case <-s.done:
			return errors.New("remote: server closed")
		}
	}
	if err := enqueue(request{fn: func() { s.attachClient(c, hello) }}); err != nil {
		return
	}
	defer func() {
		_ = enqueue(request{fn: func() { s.detachClient(c) }})
	}()
	for {
		// Per-client session loop: lives until the peer leaves or the server
		// closes the conn; an idle (in-region) client is legitimate.
		m, err := codec.Recv() //lint:allow ctxdeadline long-lived session, bounded by conn close
		if err != nil {
			return
		}
		switch m.Type { //lint:allow protodrift THello is consumed by the accept handshake before this session loop starts
		case wire.TUpdate:
			if err := enqueue(request{c: c, p: m.Point(), tr: m.Trace}); err != nil {
				return
			}
		case wire.TProbeReply:
			// Keep the freshest reply: the prober matches by sequence number
			// and drains stale ones, so on a full buffer evict the oldest
			// rather than dropping the reply it is actually waiting for.
			for delivered := false; !delivered; {
				select {
				case c.replies <- m:
					delivered = true
				default:
					select {
					case <-c.replies:
					default:
					}
				}
			}
		case wire.TBye:
			c.bye = true // published to the event loop by the detach enqueue
			return
		default:
			s.logf("remote: client %d sent unexpected %q", c.obj, m.Type)
		}
	}
}

// attachClient installs a new or resumed mobile-client session. Runs on the
// event loop.
func (s *Server) attachClient(c *clientConn, hello wire.Message) {
	if old := s.clients[c.obj]; old != nil && old != c {
		// Session takeover: the client reconnected before the old conn's read
		// loop noticed the loss. Tear the stale conn down; its detach is a
		// no-op because the map no longer points at it.
		_ = old.conn.Close()
	}
	if t := s.leases[c.obj]; t != nil {
		t.Stop()
		delete(s.leases, c.obj)
	}
	s.clients[c.obj] = c
	s.noteClients()
	p := hello.Point()
	c.lastPos = p
	_, known := s.mon.SafeRegion(c.obj)
	if hello.Resume && known {
		// The lease kept the object alive: fold the announced position in as
		// an ordinary update, then re-push the current region so the client
		// never monitors with a stale one.
		s.noteReconnect(true)
		s.noteReconnectFlight(c.obj, hello.Trace, "resumed")
		s.setTrace(hello.Trace)
		s.jBegin(core.JournalEntry{Op: core.JournalUpdate, Obj: c.obj, X: p.X, Y: p.Y})
		ups := s.mon.Update(c.obj, p)
		s.jCommit()
		s.dispatchRegions(c.obj, ups, hello.Trace)
		s.pushRegion(c, hello.Trace)
		s.setTrace(0)
		return
	}
	if hello.Resume {
		s.noteReconnect(false) // lease expired while away; re-add from scratch
		s.noteReconnectFlight(c.obj, hello.Trace, "rejoined")
	}
	s.setTrace(hello.Trace)
	s.jBegin(core.JournalEntry{Op: core.JournalAdd, Obj: c.obj, X: p.X, Y: p.Y})
	ups := s.mon.AddObject(c.obj, p)
	s.jCommit()
	s.dispatchRegions(c.obj, ups, hello.Trace)
	s.setTrace(0)
}

// noteReconnectFlight records a resume hello in the flight recorder and runs
// reconnect-storm detection: enough resumes inside the window dump the ring,
// preserving the evidence of whatever severed the sessions. Runs on the event
// loop.
func (s *Server) noteReconnectFlight(obj, tr uint64, outcome string) {
	if s.flight == nil {
		return
	}
	s.flight.Record(obs.FlightEvent{Kind: obs.FlightReconnect, Trace: tr, Obj: obj, Note: outcome})
	now := time.Now() //lint:allow wallclock reconnect-storm detection is wall-clock by design
	keep := s.recentRec[:0]
	for _, t := range s.recentRec {
		if now.Sub(t) < reconnectStormWindow {
			keep = append(keep, t)
		}
	}
	s.recentRec = append(keep, now)
	if len(s.recentRec) >= reconnectStormCount {
		s.flight.TriggerDump("reconnect-storm")
	}
}

// detachClient handles a session ending. With a lease configured the object
// outlives the connection; otherwise (or on a clean TBye) it is removed
// immediately. Runs on the event loop.
func (s *Server) detachClient(c *clientConn) {
	if s.clients[c.obj] != c {
		return // superseded by a resumed session; nothing to release
	}
	delete(s.clients, c.obj)
	s.noteClients()
	if s.lease > 0 && !c.bye {
		s.startLease(c.obj)
		return
	}
	s.removeObject(c.obj)
}

// removeObject journals and applies an object removal. Runs on the event
// loop.
func (s *Server) removeObject(id uint64) {
	s.jBegin(core.JournalEntry{Op: core.JournalRemove, Obj: id})
	s.mon.RemoveObject(id)
	s.jCommit()
}

// startLease arms the removal countdown for a disconnected object. Runs on
// the event loop.
func (s *Server) startLease(id uint64) {
	if t := s.leases[id]; t != nil {
		t.Stop()
	}
	s.leases[id] = time.AfterFunc(s.lease, func() {
		select {
		case s.reqs <- request{fn: func() { s.expireLease(id) }}:
		case <-s.done:
		}
	})
}

// expireLease removes an object whose lease ran out without a resume. Runs
// on the event loop.
func (s *Server) expireLease(id uint64) {
	delete(s.leases, id)
	if _, live := s.clients[id]; live {
		return // resumed between timer fire and event-loop turn
	}
	s.noteLeaseExpiry()
	s.removeObject(id)
}

// pushRegion sends the object's current safe region to its session,
// clearing the re-push mark on success. Runs on the event loop.
func (s *Server) pushRegion(c *clientConn, tr uint64) {
	r, ok := s.mon.SafeRegion(c.obj)
	if !ok {
		return
	}
	m := wire.Message{Type: wire.TRegion, Obj: c.obj, Trace: tr}
	m.SetRect(r)
	if err := c.codec.Send(m); err != nil {
		c.needRegion = true
		return
	}
	c.needRegion = false
	s.flight.Record(obs.FlightEvent{Kind: obs.FlightGrant, Trace: tr, Obj: c.obj, Note: "repush"})
	s.noteRepush()
}

// ResyncRegions re-pushes the current safe region to every connected
// session. A region push lost in transit is invisible to the server (the
// write succeeds locally), so after a period of degraded connectivity this
// sweep re-establishes the safe-region contract in one round trip per
// client: a client that receives a region it has already left reports
// immediately.
func (s *Server) ResyncRegions() error {
	return s.do(func() {
		// Push in ascending object-ID order: s.clients is a map, and region
		// frames interleave with result pushes on the shared codecs, so map
		// order would leak into the wire stream.
		ids := make([]uint64, 0, len(s.clients))
		for id := range s.clients {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			s.pushRegion(s.clients[id], 0)
		}
	})
}

// dispatchRegions delivers refreshed safe regions to their clients. Runs on
// the event loop.
func (s *Server) dispatchRegions(primary uint64, ups []core.SafeRegionUpdate, tr uint64) {
	for _, u := range ups {
		c := s.clients[u.Object]
		if c == nil {
			continue
		}
		var m wire.Message
		m.Type = wire.TRegion
		m.Obj = u.Object
		m.SetRect(u.Region)
		m.Trace = tr
		if err := c.codec.Send(m); err != nil {
			// The session must not be left monitoring with a stale region:
			// mark it so the current region is re-sent at the next chance
			// (next update from it, or its resume after a reconnect).
			c.needRegion = true
			s.noteRegionSendFail()
			if u.Object == primary {
				s.logf("remote: send region to %d: %v", u.Object, err)
			}
			continue
		}
		c.needRegion = false
		s.flight.Record(obs.FlightEvent{Kind: obs.FlightGrant, Trace: tr, Obj: u.Object})
	}
}

func (s *Server) serveApp(conn net.Conn, codec *wire.Codec, first wire.Message) {
	defer conn.Close()
	a := &appConn{codec: codec, conn: conn}
	var owned []query.ID
	defer func() {
		_ = s.do(func() {
			for _, qid := range owned {
				if s.watch[qid] != a {
					// A reconnected app server re-registered this query on a
					// newer session; it is no longer ours to tear down.
					continue
				}
				s.jBegin(core.JournalEntry{Op: core.JournalDeregister, QID: uint64(qid)})
				s.mon.Deregister(qid)
				s.jCommit()
				delete(s.watch, qid)
			}
		})
	}()
	m := first
	for {
		switch m.Type {
		case wire.TRegisterRange, wire.TRegisterKNN, wire.TRegisterCount, wire.TRegisterCircle:
			qid := query.ID(m.QID)
			req := m
			var results []uint64
			var count int
			var regErr error
			err := s.do(func() {
				// Registration is idempotent at the wire layer: a duplicate ID
				// (a retried frame whose reply was lost, or an app server
				// re-registering after a reconnect) replaces the existing
				// query instead of erroring. The replacement is journaled as
				// deregister+register so replay stays exact.
				if _, ok := s.mon.Query(qid); ok {
					s.jBegin(core.JournalEntry{Op: core.JournalDeregister, QID: uint64(qid)})
					s.mon.Deregister(qid)
					s.jCommit()
					delete(s.watch, qid)
				}
				var ups []core.SafeRegionUpdate
				s.setTrace(req.Trace)
				s.flight.Record(obs.FlightEvent{Kind: obs.FlightRegister, Trace: req.Trace, Query: req.QID, Note: req.Type})
				s.jBegin(registrationEntry(req))
				switch req.Type { //lint:allow protodrift TDeregister is routed by the enclosing frame switch before this point
				case wire.TRegisterRange:
					results, ups, regErr = s.mon.RegisterRange(qid, req.Rect())
					count = len(results)
				case wire.TRegisterCount:
					count, ups, regErr = s.mon.RegisterCount(qid, req.Rect())
				case wire.TRegisterCircle:
					results, ups, regErr = s.mon.RegisterWithinDistance(qid, req.Point(), req.Radius)
					count = len(results)
				case wire.TRegisterKNN:
					results, ups, regErr = s.mon.RegisterKNN(qid, req.Point(), req.K, req.Ordered)
					count = len(results)
				}
				if regErr == nil {
					s.jCommit()
					s.watch[qid] = a
					owned = append(owned, qid)
					s.dispatchRegions(0, ups, req.Trace)
				} else {
					s.jAbort() // rejected registration left the monitor untouched
				}
				s.setTrace(0)
			})
			if err != nil {
				return
			}
			reply := wire.Message{Type: wire.TResults, QID: m.QID, IDs: results, Count: count, Trace: m.Trace}
			if regErr != nil {
				reply = wire.Message{Type: wire.TError, QID: m.QID, Err: regErr.Error(), Trace: m.Trace}
			}
			if err := a.send(reply); err != nil {
				return
			}
		case wire.TDeregister:
			qid := query.ID(m.QID)
			tr := m.Trace
			if err := s.do(func() {
				s.setTrace(tr)
				s.flight.Record(obs.FlightEvent{Kind: obs.FlightRegister, Trace: tr, Query: uint64(qid), Note: wire.TDeregister})
				s.jBegin(core.JournalEntry{Op: core.JournalDeregister, QID: uint64(qid)})
				s.mon.Deregister(qid)
				s.jCommit()
				delete(s.watch, qid)
				s.setTrace(0)
			}); err != nil {
				return
			}
		default:
			_ = a.send(wire.Message{Type: wire.TError, Err: fmt.Sprintf("unexpected %q", m.Type)})
		}
		var err error
		// App sessions register queries then sit idle listening for pushes;
		// the read is unbounded by design and ends when the conn closes.
		m, err = codec.Recv() //lint:allow ctxdeadline long-lived session, bounded by conn close
		if err != nil {
			return
		}
	}
}
