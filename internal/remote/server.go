// Package remote runs the monitoring framework over a network: a Server
// hosting the core Monitor, MobileClient runtimes that report location
// updates only when leaving their safe region, and AppClient handles that
// register continuous queries and stream result updates — the full system of
// Figure 1.1, with TCP/JSON substituted for the paper's SOAP/HTTP transport.
package remote

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/parallel"
	"srb/internal/query"
	"srb/internal/wire"
)

// probeTimeout bounds how long the server waits for a probe reply before
// falling back to the client's last reported location.
const probeTimeout = 2 * time.Second

// helloTimeout bounds the wait for a new connection's first frame, so a peer
// that connects and sends nothing cannot pin a handler goroutine forever.
const helloTimeout = 30 * time.Second

// Server hosts a Monitor on a TCP listener. All monitor operations run on a
// single event-loop goroutine, matching the framework's sequential
// processing assumption.
type Server struct {
	opt  core.Options
	mon  *core.Monitor
	pipe *parallel.Pipeline // non-nil when batch updates are enabled
	ln   net.Listener
	reqs chan request
	done chan struct{}

	sink *obs.Sink // attached observability, nil when off
	obs  *srvObs

	// State below is owned by the event loop goroutine.
	clients map[uint64]*clientConn
	watch   map[query.ID]*appConn

	closeOnce sync.Once
	wg        sync.WaitGroup
	start     time.Time
	logf      func(format string, args ...interface{})
}

// request is one event-loop operation: either an arbitrary closure or a
// location update carried as data, so the loop can coalesce a burst of queued
// updates into a single pipeline batch.
type request struct {
	fn func()      // non-update operation; nil for updates
	c  *clientConn // update: the reporting connection
	p  geom.Point  // update: the reported location
}

type clientConn struct {
	obj     uint64
	codec   *wire.Codec
	conn    net.Conn
	lastPos geom.Point
	seq     uint64
	replies chan wire.Message
}

type appConn struct {
	codec *wire.Codec
	conn  net.Conn
	mu    sync.Mutex // application frames are written from the event loop and registration acks
}

func (a *appConn) send(m wire.Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.codec.Send(m)
}

// NewServer creates a server with the given monitor options, listening on
// addr (e.g. "127.0.0.1:0"). Serve must be called to start accepting.
func NewServer(addr string, opt core.Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:     opt,
		ln:      ln,
		reqs:    make(chan request, 4096),
		done:    make(chan struct{}),
		clients: make(map[uint64]*clientConn),
		watch:   make(map[query.ID]*appConn),
		start:   time.Now(),
		logf:    log.Printf,
	}
	s.mon = core.New(opt, core.ProberFunc(s.probe), s.onResults)
	return s, nil
}

// SetLogf replaces the server's logger (useful to silence tests).
func (s *Server) SetLogf(f func(string, ...interface{})) {
	if f == nil {
		f = func(string, ...interface{}) {}
	}
	s.logf = f
}

// SetWorkers enables the batch update pipeline: bursts of queued location
// updates are coalesced into one batch whose conflict-free part is planned on
// n workers (n <= 0 keeps the pure sequential path). The batch outcome is
// bit-identical to sequential processing in ascending object-ID order — see
// internal/parallel. Must be called before Serve.
func (s *Server) SetWorkers(n int) {
	if n > 0 {
		s.pipe = parallel.New(s.mon, n)
		if s.sink != nil {
			s.pipe.SetObs(s.sink)
		}
	} else {
		s.pipe = nil
	}
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve runs the accept and event loops until Close. It always returns a
// non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve() error {
	s.wg.Add(1)
	go s.loop()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.closeOnce.Do(func() { close(s.done) })
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops the server and terminates all connections.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.closeOnce.Do(func() { close(s.done) })
	return err
}

// loop serializes all monitor operations.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.reqs:
			s.mon.SetTime(time.Since(s.start).Seconds())
			s.dispatch(r)
		case <-s.done:
			return
		}
	}
}

// dispatch runs one request. A location update additionally drains — without
// blocking — the updates already queued behind it, so a burst of reports
// becomes one pipeline batch; draining stops at the first non-update request
// to preserve FIFO order with respect to registrations and disconnects.
func (s *Server) dispatch(r request) {
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	if r.fn != nil {
		r.fn()
		s.noteOp(t0)
		return
	}
	conns := []*clientConn{r.c}
	pts := []geom.Point{r.p}
	var after *request
drain:
	for {
		select {
		case nx := <-s.reqs:
			if nx.fn != nil {
				after = &nx
				break drain
			}
			conns = append(conns, nx.c)
			pts = append(pts, nx.p)
		default:
			break drain
		}
	}
	s.applyUpdates(conns, pts)
	s.noteBatch(t0, len(conns))
	if after != nil {
		var ta time.Time
		if s.obs != nil {
			ta = time.Now()
		}
		after.fn()
		s.noteOp(ta)
	}
}

// applyUpdates processes a coalesced batch of location updates through the
// parallel pipeline when enabled (and worthwhile), else sequentially, and
// routes each update's safe-region refreshes back through dispatchRegions
// with the reporting object as primary.
func (s *Server) applyUpdates(conns []*clientConn, pts []geom.Point) {
	// lastPos is only the probe-timeout fallback; every batched report has
	// been received by now, so expose all of them before the monitor runs
	// (and possibly probes) any update of the batch.
	for i, c := range conns {
		c.lastPos = pts[i]
	}
	if s.pipe != nil && len(conns) > 1 {
		batch := make([]parallel.Update, len(conns))
		for i, c := range conns {
			batch[i] = parallel.Update{ID: c.obj, Loc: pts[i]}
		}
		s.pipe.ApplyEach(batch, func(i int, ups []core.SafeRegionUpdate) {
			s.dispatchRegions(conns[i].obj, ups)
		})
		return
	}
	for i, c := range conns {
		s.dispatchRegions(c.obj, s.mon.Update(c.obj, pts[i]))
	}
}

// do schedules an operation on the event loop and waits for it.
func (s *Server) do(f func()) error {
	doneCh := make(chan struct{})
	select {
	case s.reqs <- request{fn: func() { f(); close(doneCh) }}:
	case <-s.done:
		return errors.New("remote: server closed")
	}
	select {
	case <-doneCh:
		return nil
	case <-s.done:
		return errors.New("remote: server closed")
	}
}

// probe implements the server-initiated probe: a round trip to the client's
// connection, falling back to the last reported location on timeout or after
// disconnect.
func (s *Server) probe(id uint64) geom.Point {
	c := s.clients[id]
	if c == nil {
		return geom.Point{}
	}
	c.seq++
	seq := c.seq
	if err := c.codec.Send(wire.Message{Type: wire.TProbe, Seq: seq}); err != nil {
		return c.lastPos
	}
	timer := time.NewTimer(probeTimeout)
	defer timer.Stop()
	for {
		select {
		case m := <-c.replies:
			if m.Seq == seq {
				c.lastPos = m.Point()
				return c.lastPos
			}
			// Stale reply to an earlier probe: keep draining.
		case <-timer.C:
			return c.lastPos
		case <-s.done:
			return c.lastPos
		}
	}
}

// onResults pushes a changed result to the application server watching the
// query. Runs on the event loop.
func (s *Server) onResults(u core.ResultUpdate) {
	if a := s.watch[u.Query]; a != nil {
		if err := a.send(wire.Message{Type: wire.TResults, QID: uint64(u.Query), IDs: u.Results, Count: u.Count}); err != nil {
			s.logf("remote: push results to app: %v", err)
		}
	}
}

// handle demultiplexes a new connection by its first frame: a THello starts a
// mobile-client session, anything else an application session.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	codec := wire.NewCodec(conn)
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	first, err := codec.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	// The session established, reads are unbounded again: both session kinds
	// block on their peer indefinitely and are torn down via Close.
	_ = conn.SetReadDeadline(time.Time{})
	if first.Type == wire.THello {
		s.serveClient(conn, codec, first)
		return
	}
	s.serveApp(conn, codec, first)
}

func (s *Server) serveClient(conn net.Conn, codec *wire.Codec, hello wire.Message) {
	defer conn.Close()
	c := &clientConn{
		obj:     hello.Obj,
		codec:   codec,
		conn:    conn,
		lastPos: hello.Point(),
		replies: make(chan wire.Message, 4),
	}
	// The client reader must never wait for the event loop: the loop may be
	// blocked probing this very connection, and the probe reply has to keep
	// flowing. Updates are therefore fire-and-forget enqueues; FIFO order per
	// connection is preserved by the request channel.
	enqueue := func(r request) error {
		select {
		case s.reqs <- r:
			return nil
		case <-s.done:
			return errors.New("remote: server closed")
		}
	}
	if err := enqueue(request{fn: func() {
		s.clients[c.obj] = c
		s.noteClients()
		c.lastPos = hello.Point()
		s.dispatchRegions(c.obj, s.mon.AddObject(c.obj, hello.Point()))
	}}); err != nil {
		return
	}
	defer func() {
		_ = enqueue(request{fn: func() {
			delete(s.clients, c.obj)
			s.noteClients()
			s.mon.RemoveObject(c.obj)
		}})
	}()
	for {
		// Per-client session loop: lives until the peer leaves or the server
		// closes the conn; an idle (in-region) client is legitimate.
		m, err := codec.Recv() //lint:allow ctxdeadline long-lived session, bounded by conn close
		if err != nil {
			return
		}
		switch m.Type {
		case wire.TUpdate:
			if err := enqueue(request{c: c, p: m.Point()}); err != nil {
				return
			}
		case wire.TProbeReply:
			select {
			case c.replies <- m:
			default:
			}
		case wire.TBye:
			return
		default:
			s.logf("remote: client %d sent unexpected %q", c.obj, m.Type)
		}
	}
}

// dispatchRegions delivers refreshed safe regions to their clients. Runs on
// the event loop.
func (s *Server) dispatchRegions(primary uint64, ups []core.SafeRegionUpdate) {
	for _, u := range ups {
		c := s.clients[u.Object]
		if c == nil {
			continue
		}
		var m wire.Message
		m.Type = wire.TRegion
		m.Obj = u.Object
		m.SetRect(u.Region)
		if err := c.codec.Send(m); err != nil && u.Object == primary {
			s.logf("remote: send region to %d: %v", u.Object, err)
		}
	}
}

func (s *Server) serveApp(conn net.Conn, codec *wire.Codec, first wire.Message) {
	defer conn.Close()
	a := &appConn{codec: codec, conn: conn}
	var owned []query.ID
	defer func() {
		_ = s.do(func() {
			for _, qid := range owned {
				s.mon.Deregister(qid)
				delete(s.watch, qid)
			}
		})
	}()
	m := first
	for {
		switch m.Type {
		case wire.TRegisterRange, wire.TRegisterKNN, wire.TRegisterCount, wire.TRegisterCircle:
			qid := query.ID(m.QID)
			req := m
			var results []uint64
			var count int
			var regErr error
			err := s.do(func() {
				var ups []core.SafeRegionUpdate
				switch req.Type {
				case wire.TRegisterRange:
					results, ups, regErr = s.mon.RegisterRange(qid, req.Rect())
					count = len(results)
				case wire.TRegisterCount:
					count, ups, regErr = s.mon.RegisterCount(qid, req.Rect())
				case wire.TRegisterCircle:
					results, ups, regErr = s.mon.RegisterWithinDistance(qid, req.Point(), req.Radius)
					count = len(results)
				default:
					results, ups, regErr = s.mon.RegisterKNN(qid, req.Point(), req.K, req.Ordered)
					count = len(results)
				}
				if regErr == nil {
					s.watch[qid] = a
					owned = append(owned, qid)
					s.dispatchRegions(0, ups)
				}
			})
			if err != nil {
				return
			}
			reply := wire.Message{Type: wire.TResults, QID: m.QID, IDs: results, Count: count}
			if regErr != nil {
				reply = wire.Message{Type: wire.TError, QID: m.QID, Err: regErr.Error()}
			}
			if err := a.send(reply); err != nil {
				return
			}
		case wire.TDeregister:
			qid := query.ID(m.QID)
			if err := s.do(func() {
				s.mon.Deregister(qid)
				delete(s.watch, qid)
			}); err != nil {
				return
			}
		default:
			_ = a.send(wire.Message{Type: wire.TError, Err: fmt.Sprintf("unexpected %q", m.Type)})
		}
		var err error
		// App sessions register queries then sit idle listening for pushes;
		// the read is unbounded by design and ends when the conn closes.
		m, err = codec.Recv() //lint:allow ctxdeadline long-lived session, bounded by conn close
		if err != nil {
			return
		}
	}
}
