package remote

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/wire"
)

// collectTraces gathers hook-delivered trace IDs behind a lock, since hooks
// run on client goroutines.
type collectTraces struct {
	mu      sync.Mutex
	sent    []uint64
	granted []uint64
}

func (c *collectTraces) hooks() ClientHooks {
	return ClientHooks{
		UpdateSent: func(tr uint64, err error) {
			c.mu.Lock()
			c.sent = append(c.sent, tr)
			c.mu.Unlock()
		},
		RegionGranted: func(tr uint64) {
			c.mu.Lock()
			c.granted = append(c.granted, tr)
			c.mu.Unlock()
		},
	}
}

func (c *collectTraces) lastSent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.sent) == 0 {
		return 0
	}
	return c.sent[len(c.sent)-1]
}

func (c *collectTraces) grantedHas(tr uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, g := range c.granted {
		if g == tr {
			return true
		}
	}
	return false
}

// TestTraceEchoUpdateToGrant pins the causal-ID contract end to end: the
// trace minted for a location update is echoed on the safe-region grant that
// update produces, and both ends of the chain — update receipt and grant —
// land in the server's flight recorder under the same trace.
func TestTraceEchoUpdateToGrant(t *testing.T) {
	s := startServer(t)
	fr := obs.NewFlightRecorder(1024, t.TempDir())
	t.Cleanup(fr.Close)
	s.SetFlightRecorder(fr)

	var traces collectTraces
	c, err := DialClientOpts(s.Addr(), 42, geom.Pt(0.1, 0.1), ClientOptions{Hooks: traces.hooks()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	// A registered query makes safe regions meaningful: crossing its boundary
	// forces a recompute and hence a grant attributable to the update.
	if _, err := app.RegisterRange(1, geom.R(0.4, 0.4, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}

	c.Report(geom.Pt(0.5, 0.5)) // into the query: the region must change
	waitFor(t, "update trace minted", func() bool { return traces.lastSent() != 0 })
	tr := traces.lastSent()
	waitFor(t, "grant echoing the update's trace", func() bool { return traces.grantedHas(tr) })

	// The flight recorder must hold the complete server-side chain.
	waitFor(t, "flight recorder chain", func() bool {
		var update, grant bool
		for _, ev := range fr.Events() {
			if ev.Trace != tr {
				continue
			}
			switch ev.Kind {
			case obs.FlightUpdate:
				update = true
			case obs.FlightGrant:
				grant = true
			}
		}
		return update && grant
	})
}

// TestAdminQueriesEndpoint checks /queries against a live instrumented
// server: the ledger's top-K view is served hottest-first with the
// unattributed and retired buckets alongside, and ?k caps the list.
func TestAdminQueriesEndpoint(t *testing.T) {
	s, _ := startObsServer(t)
	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()

	for i := 1; i <= 4; i++ {
		c, err := DialClient(s.Addr(), uint64(i), geom.Pt(float64(i)*0.2, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0.1, 0.1, 0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterKNN(2, geom.Pt(0.5, 0.5), 2, true); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/queries")
	if code != http.StatusOK {
		t.Fatalf("/queries status %d: %s", code, body)
	}
	var payload struct {
		Hot []struct {
			Query uint64 `json:"query"`
			Kind  string `json:"kind"`
		} `json:"hot"`
		RetiredN int64 `json:"retired_queries"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("/queries is not valid JSON: %v\n%s", err, body)
	}
	if len(payload.Hot) != 2 {
		t.Fatalf("/queries hot = %d entries, want 2: %s", len(payload.Hot), body)
	}
	for _, h := range payload.Hot {
		if h.Query == 0 || h.Kind == "" {
			t.Errorf("/queries entry lacks identity: %+v", h)
		}
	}

	code, body = get("/queries?k=1")
	if code != http.StatusOK {
		t.Fatalf("/queries?k=1 status %d", code)
	}
	var capped struct {
		Hot []json.RawMessage `json:"hot"`
	}
	if err := json.Unmarshal(body, &capped); err != nil {
		t.Fatal(err)
	}
	if len(capped.Hot) != 1 {
		t.Errorf("/queries?k=1 returned %d entries, want 1", len(capped.Hot))
	}

	// Deregistering folds the entry into the retired bucket. The deregister
	// frame is fire-and-forget, so poll until the event loop processed it.
	if err := app.Deregister(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deregistered query folded into retired bucket", func() bool {
		code, body := get("/queries")
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			return false
		}
		return len(payload.Hot) == 1 && payload.RetiredN == 1
	})
}

// TestAdminQueriesFlightrecDisabled checks the dark surface: without a sink
// the ledger endpoint answers 404, and without a recorder so does
// /debug/flightrec.
func TestAdminQueriesFlightrecDisabled(t *testing.T) {
	s := startServer(t)
	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()
	for _, path := range []string{"/queries", "/debug/flightrec"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestFlightrecEndpointServesRing checks /debug/flightrec streams the ring as
// NDJSON once a recorder is attached and a workload recorded into it.
func TestFlightrecEndpointServesRing(t *testing.T) {
	s := startServer(t)
	fr := obs.NewFlightRecorder(1024, t.TempDir())
	t.Cleanup(fr.Close)
	s.SetFlightRecorder(fr)
	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()

	c, err := DialClient(s.Addr(), 9, geom.Pt(0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Report(geom.Pt(0.8, 0.8))
	waitFor(t, "flight events recorded", func() bool { return fr.Total() > 0 })

	resp, err := http.Get(srv.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flightrec status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	n := 0
	for {
		var ev obs.FlightEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.TS == 0 || ev.Kind == "" {
			t.Errorf("flight event missing timestamp or kind: %+v", ev)
		}
		n++
	}
	if n == 0 {
		t.Fatal("/debug/flightrec served no events after a workload")
	}
}

// TestSLOBreachDumpsFlightRecorder sets an unmeetable event-loop SLO and
// checks a single request is enough to trigger an automatic black-box dump
// whose file carries the breach marker.
func TestSLOBreachDumpsFlightRecorder(t *testing.T) {
	s := startServer(t)
	dir := t.TempDir()
	fr := obs.NewFlightRecorder(1024, dir)
	t.Cleanup(fr.Close)
	s.SetFlightRecorder(fr)
	s.SetSLO(time.Nanosecond) // everything breaches

	c, err := DialClient(s.Addr(), 3, geom.Pt(0.3, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Report(geom.Pt(0.7, 0.7))

	waitFor(t, "slo-breach dump file", func() bool { return len(fr.DumpPaths()) > 0 })
	paths := fr.DumpPaths()
	buf, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"note":"slo-breach"`) {
		t.Errorf("dump %s lacks the slo-breach marker", paths[0])
	}
	if !strings.Contains(string(buf), `"kind":"slow_op"`) {
		t.Errorf("dump %s lacks the slow-op breach event", paths[0])
	}
}

// TestReconnectStormDumpsFlightRecorder fires a burst of resume hellos and
// checks the storm detector preserves the evidence with an automatic dump.
func TestReconnectStormDumpsFlightRecorder(t *testing.T) {
	s := startServer(t)
	s.SetLease(time.Minute)
	dir := t.TempDir()
	fr := obs.NewFlightRecorder(1024, dir)
	t.Cleanup(fr.Close)
	s.SetFlightRecorder(fr)

	// Each raw connection announces a resume and hangs up: rejoin or resume,
	// every one counts toward the storm window.
	for i := 0; i < reconnectStormCount; i++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		codec := wire.NewCodec(conn)
		hello := wire.Message{Type: wire.THello, Obj: 77, Resume: true, Trace: uint64(1000 + i)}
		hello.SetPoint(geom.Pt(0.5, 0.5))
		if err := codec.Send(hello); err != nil {
			t.Fatal(err)
		}
		// Wait for the grant so the server has processed the hello before the
		// next resume supersedes this session.
		if _, err := codec.Recv(); err != nil {
			t.Fatalf("resume %d: no grant: %v", i, err)
		}
		conn.Close()
	}

	waitFor(t, "reconnect-storm dump file", func() bool { return len(fr.DumpPaths()) > 0 })
	buf, err := os.ReadFile(fr.DumpPaths()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"note":"reconnect-storm"`) {
		t.Errorf("dump lacks the reconnect-storm marker")
	}
	if !strings.Contains(string(buf), `"kind":"reconnect"`) {
		t.Errorf("dump lacks the reconnect events that caused it")
	}
}
