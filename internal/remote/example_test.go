package remote

import (
	"fmt"
	"sort"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
)

// The complete wire deployment in one loopback process: a server hosting the
// monitor, an application registering a continuous query, and a mobile client
// that reports only when it leaves its safe region.
func ExampleMobileClient() {
	s, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		panic(err)
	}
	s.SetLogf(nil)
	go s.Serve()
	defer s.Close()

	app, err := DialApp(s.Addr())
	if err != nil {
		panic(err)
	}
	defer app.Close()

	c, err := DialClient(s.Addr(), 1, geom.Point{X: 0.25, Y: 0.25})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	// The server answers the hello with a safe-region grant — at GridM 10 the
	// base framework confines it to the object's grid cell, [0.2,0.3]².
	for {
		if _, ok := c.Region(); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// A continuous range query over the west half; object 1 matches.
	initial, err := app.RegisterRange(7, geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("initial:", initial)

	// Wandering inside the safe region is free: no message leaves the client.
	c.Tick(geom.Point{X: 0.26, Y: 0.24})
	updates, _ := c.Stats()
	fmt.Println("updates after silent move:", updates)

	// Crossing into the east half exits the region: the client reports once
	// and the application sees the result change.
	c.Tick(geom.Point{X: 0.8, Y: 0.2})
	ru := <-app.Updates()
	ids := append([]uint64(nil), ru.Results...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("query", ru.Query, "now:", ids)
	updates, _ = c.Stats()
	fmt.Println("updates after crossing:", updates)

	// Output:
	// initial: [1]
	// updates after silent move: 0
	// query 7 now: []
	// updates after crossing: 1
}
