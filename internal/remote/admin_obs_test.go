package remote

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/parallel"
)

// startObsServer is startServer with an observability sink attached and the
// batch pipeline enabled before Serve.
func startObsServer(t *testing.T) (*Server, *obs.Sink) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(nil)
	sink := obs.NewSink(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceDepth))
	s.SetObs(sink)
	s.SetWorkers(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Serve()
	}()
	t.Cleanup(func() {
		_ = s.Close()
		wg.Wait()
	})
	return s, sink
}

func scrape(t *testing.T, url string) map[string]*obs.ParsedFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics output does not parse: %v", err)
	}
	return fams
}

// TestAdminMetricsAndTrace drives a small workload against an instrumented
// server and checks the whole new admin surface: /metrics serves parseable
// Prometheus text whose families are complete and whose counters move with
// the workload, /trace serves loadable Chrome trace JSON, /stats carries the
// batch pipeline counters, and /debug/pprof answers.
func TestAdminMetricsAndTrace(t *testing.T) {
	s, _ := startObsServer(t)
	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()

	for i := 1; i <= 6; i++ {
		c, err := DialClient(s.Addr(), uint64(i), geom.Pt(float64(i)*0.1, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	waitFor(t, "objects", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 6
	})
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterKNN(1, geom.Pt(0.5, 0.5), 3, true); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterRange(2, geom.R(0.2, 0.2, 0.8, 0.8)); err != nil {
		t.Fatal(err)
	}

	before := scrape(t, srv.URL)
	for _, fam := range []string{
		"srb_updates_total", "srb_probes_total", "srb_reevaluations_total",
		"srb_new_query_evals_total", "srb_op_seconds",
		"srb_objects", "srb_queries",
		"srb_server_clients", "srb_server_queue_depth", "srb_server_request_seconds",
	} {
		f := before[fam]
		if f == nil {
			t.Fatalf("family %s missing from scrape; have %v", fam, obs.FamilyNames(before))
		}
		if f.Help == "" || f.Type == "" {
			t.Errorf("family %s lacks HELP/TYPE", fam)
		}
	}
	if got := before["srb_objects"].Samples["srb_objects"]; got != 6 {
		t.Errorf("srb_objects = %g, want 6", got)
	}
	if got := before["srb_server_clients"].Samples["srb_server_clients"]; got != 6 {
		t.Errorf("srb_server_clients = %g, want 6", got)
	}

	// Drive updates: move every client far out of its region several times so
	// each tick reports, then wait until the server processed them.
	clients := make([]*MobileClient, 0, 6)
	for i := 1; i <= 6; i++ {
		c, err := DialClient(s.Addr(), uint64(100+i), geom.Pt(0.1, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	for round := 0; round < 5; round++ {
		for i, c := range clients {
			c.Tick(geom.Pt(float64((round*7+i*3)%10)/10+0.05, float64((round*3+i)%10)/10+0.05))
		}
	}
	waitFor(t, "updates counted", func() bool {
		var n int64
		_ = s.do(func() { n = s.mon.Stats().SourceUpdates })
		return n >= 10
	})

	after := scrape(t, srv.URL)
	if b, a := before["srb_updates_total"].Samples["srb_updates_total"], after["srb_updates_total"].Samples["srb_updates_total"]; a <= b {
		t.Errorf("srb_updates_total did not move: %g -> %g", b, a)
	}
	if cnt := after["srb_op_seconds"].Samples[`srb_op_seconds_count{op="update"}`]; cnt == 0 {
		t.Error(`srb_op_seconds{op="update"} histogram saw no observations`)
	}
	if cnt := after["srb_server_request_seconds"].Samples[`srb_server_request_seconds_count{kind="update"}`]; cnt == 0 {
		t.Error(`srb_server_request_seconds{kind="update"} saw no observations`)
	}

	// /stats carries the pipeline counters when workers are enabled.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Stats core.Stats      `json:"stats"`
		Batch *parallel.Stats `json:"batch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if payload.Batch == nil {
		t.Fatal("/stats batch section missing with workers enabled")
	}
	if payload.Batch.Fast+payload.Batch.Fallback != payload.Batch.Updates {
		t.Errorf("/stats batch counters do not partition: %+v", payload.Batch)
	}

	// /trace serves loadable Chrome trace JSON with core decision events.
	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	resp.Body.Close()
	if len(trace.TraceEvents) == 0 {
		t.Fatal("/trace has no events after a workload")
	}
	names := map[string]bool{}
	for _, e := range trace.TraceEvents {
		names[e.Name] = true
		if e.Ph != "X" && e.Ph != "i" {
			t.Errorf("unexpected trace phase %q", e.Ph)
		}
	}
	if !names["update"] {
		t.Errorf("trace lacks core update spans; saw %v", names)
	}

	// The pprof surface answers.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ status %d, body %.60q", resp.StatusCode, body)
	}
}

// TestAdminMetricsDisabled checks the surface without a sink: /metrics and
// /trace answer 404 instead of serving empty documents.
func TestAdminMetricsDisabled(t *testing.T) {
	s := startServer(t)
	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without sink: status %d, want 404", path, resp.StatusCode)
		}
	}
}
