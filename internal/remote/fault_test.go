package remote

// Integration tests for the fault-tolerance layer: reconnect/resume with
// session leases, crash recovery from snapshot + journal, and the end-to-end
// chaos differential — under seeded drop/dup/delay/sever faults the journaled
// history must recover into a monitor bit-identical to the live one.

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"srb/internal/chaos"
	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/query"
)

// startServerCfg is startServer with a configuration hook that runs between
// NewServer and Serve (for SetWorkers, SetLease, SetPersist, ...).
func startServerCfg(t *testing.T, cfg func(*Server)) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(nil)
	cfg(s)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Serve()
	}()
	t.Cleanup(func() {
		_ = s.Close()
		wg.Wait()
	})
	return s
}

// dropConn kills the client's current connection without the TBye goodbye,
// simulating an abrupt network loss.
func dropConn(c *MobileClient) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	_ = conn.Close()
}

// normalizedNow pins the monitor clock before a snapshot so live and
// recovered state can be compared bit-for-bit (the clock otherwise advances
// with wall time).
const normalizedNow = 4242.0

// captureState snapshots the server's live monitor with the clock pinned.
func captureState(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if derr := s.do(func() {
		s.mon.SetTime(normalizedNow)
		err = s.mon.SaveSnapshot(&buf)
	}); derr != nil {
		t.Fatal(derr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// settle drives the system to quiescence over a clean link: regions are
// re-pushed until every live client holds a region containing its true
// position. A client granted a region it has already left reports
// immediately, so the sweep converges; once it holds, no client has a report
// left to send and the trailing no-op drains anything still queued.
func settle(t *testing.T, s *Server, clients []*MobileClient, pos []geom.Point) {
	t.Helper()
	defer func() {
		if t.Failed() {
			debugSettle(t, s, clients, pos)
		}
	}()
	waitFor(t, "clients settled on current regions", func() bool {
		if err := s.ResyncRegions(); err != nil {
			return false
		}
		for i, c := range clients {
			if c == nil {
				continue
			}
			r, ok := c.Region()
			if !ok {
				// No region on this connection yet — the resume hello or the
				// region push may have been lost while faults were active.
				// Re-report the position: the server attaches the session off
				// the update frame and replies with the current region.
				c.Tick(pos[i])
				return false
			}
			if !r.Contains(pos[i]) {
				return false
			}
		}
		return true
	})
	if err := s.do(func() {}); err != nil {
		t.Fatal(err)
	}
}

// debugSettle dumps the per-client and server-side view when settling times
// out, so a chaos-test failure explains which session got stuck and how.
func debugSettle(t *testing.T, s *Server, clients []*MobileClient, pos []geom.Point) {
	t.Helper()
	for i, c := range clients {
		if c == nil {
			continue
		}
		r, ok := c.Region()
		c.mu.Lock()
		rc := c.reconnects
		c.mu.Unlock()
		var srvR geom.Rect
		var srvOK, conn bool
		var last geom.Point
		_ = s.do(func() {
			srvR, srvOK = s.mon.SafeRegion(c.id)
			_, conn = s.clients[c.id]
			last, _ = s.mon.LastReported(c.id)
		})
		t.Logf("client %d: pos=%v region=%v ok=%v contains=%v reconnects=%d | server: region=%v ok=%v connected=%v last=%v",
			c.id, pos[i], r, ok, ok && r.Contains(pos[i]), rc, srvR, srvOK, conn, last)
	}
}

// recoverInto replays dir into a fresh (never served) server and returns its
// normalized snapshot for comparison against captureState output.
func recoverInto(t *testing.T, dir string) []byte {
	t.Helper()
	s2, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.SetLogf(nil)
	rs, err := s2.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LastSeq == 0 {
		t.Fatal("recovery saw an empty journal")
	}
	if err := s2.mon.CheckInvariants(); err != nil {
		t.Fatalf("recovered monitor violates invariants: %v", err)
	}
	s2.mon.SetTime(normalizedNow)
	var buf bytes.Buffer
	if err := s2.mon.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func sortedEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReconnectResumesSession(t *testing.T) {
	reg := obs.NewRegistry()
	s := startServerCfg(t, func(s *Server) {
		s.SetLease(time.Minute)
		s.SetObs(obs.NewSink(reg, nil))
	})
	c, err := DialClientOpts(s.Addr(), 7, geom.Pt(0.5, 0.5), ClientOptions{
		Reconnect:  true,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0.4, 0.4, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first region", func() bool { _, ok := c.Region(); return ok })

	dropConn(c)
	waitFor(t, "session resumed with a fresh region", func() bool {
		_, ok := c.Region()
		return c.Reconnects() >= 1 && ok
	})
	// The lease held: the server resumed the session instead of re-adding
	// the object from scratch.
	if n := reg.Counter("srb_server_reconnects_total", "", "outcome", "resumed").Value(); n < 1 {
		t.Fatalf("resumed reconnects = %d, want >= 1", n)
	}
	var objs int
	_ = s.do(func() { objs = s.mon.NumObjects() })
	if objs != 1 {
		t.Fatalf("objects after resume = %d, want 1", objs)
	}
	// The resumed connection carries updates as before.
	c.Tick(geom.Pt(0.95, 0.95))
	waitFor(t, "update over the resumed connection", func() bool {
		var p geom.Point
		var ok bool
		_ = s.do(func() { p, ok = s.mon.LastReported(7) })
		return ok && p.X > 0.9
	})
}

// dropAppConn kills the app handle's current connection without a goodbye,
// simulating an abrupt network loss on the application-server side.
func dropAppConn(a *AppClient) {
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	_ = conn.Close()
}

// TestRegisterIdempotentReplaces pins the wire-layer idempotency contract:
// registering an already-registered ID replaces the query (needed so a
// retried register frame or a reconnected app server is safe) instead of
// erroring like the monitor API does.
func TestRegisterIdempotentReplaces(t *testing.T) {
	s := startServerCfg(t, func(*Server) {})
	c, err := DialClient(s.Addr(), 5, geom.Pt(0.55, 0.55))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	app.SetLogf(nil)
	waitFor(t, "object added", func() bool {
		var n int
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 1
	})

	res, err := app.RegisterRange(1, geom.R(0.4, 0.4, 0.7, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(res, []uint64{5}) {
		t.Fatalf("initial results = %v, want [5]", res)
	}
	// Same ID, different geometry: must replace, not error.
	res, err = app.RegisterRange(1, geom.R(0, 0, 0.2, 0.2))
	if err != nil {
		t.Fatalf("re-register errored: %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("replaced query results = %v, want empty", res)
	}
	var nq int
	_ = s.do(func() { nq = s.mon.NumQueries() })
	if nq != 1 {
		t.Fatalf("queries after replace = %d, want 1", nq)
	}
	// The replacement is live: moving into the new rect pushes a result.
	c.Tick(geom.Pt(0.1, 0.1))
	waitFor(t, "push for the replacing query", func() bool {
		select {
		case u := <-app.Updates():
			return u.Query == 1 && sortedEqual(u.Results, []uint64{5})
		default:
			return false
		}
	})
}

// TestAppReconnectReregisters cuts the application server's connection and
// checks the handle re-dials, re-registers its queries, and keeps receiving
// result pushes — the app-side counterpart of TestReconnectResumesSession.
func TestAppReconnectReregisters(t *testing.T) {
	s := startServerCfg(t, func(*Server) {})
	c, err := DialClient(s.Addr(), 5, geom.Pt(0.55, 0.55))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	app, err := DialAppOpts(s.Addr(), AppOptions{
		Reconnect:  true,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		RPCTimeout: 250 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	app.SetLogf(nil)
	waitFor(t, "object added", func() bool {
		var n int
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 1
	})

	if _, err := app.RegisterRange(1, geom.R(0.4, 0.4, 0.7, 0.7)); err != nil {
		t.Fatal(err)
	}
	dropAppConn(app)
	waitFor(t, "app handle reconnected", func() bool { return app.Reconnects() >= 1 })
	// The re-registered query must be live server-side again (the old
	// session's teardown may briefly deregister it first).
	waitFor(t, "query re-registered", func() bool {
		var nq int
		_ = s.do(func() { nq = s.mon.NumQueries() })
		return nq == 1
	})
	// Registering another query over the fresh session still works, and
	// pushes flow: the re-registration's initial results and subsequent
	// moves arrive on Updates.
	if _, err := app.RegisterKNN(2, geom.Pt(0.5, 0.5), 1, true); err != nil {
		t.Fatalf("register after reconnect: %v", err)
	}
	c.Tick(geom.Pt(0.1, 0.1))
	waitFor(t, "push for query 1 after reconnect", func() bool {
		select {
		case u := <-app.Updates():
			return u.Query == 1 && len(u.Results) == 0
		default:
			return false
		}
	})
}

func TestLeaseExpiryRemovesObject(t *testing.T) {
	s := startServerCfg(t, func(s *Server) { s.SetLease(50 * time.Millisecond) })
	c, err := DialClient(s.Addr(), 3, geom.Pt(0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "object added", func() bool {
		var n int
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 1
	})
	dropConn(c)
	waitFor(t, "lease expiry removes the object", func() bool {
		var n int
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 0
	})
	var timers int
	_ = s.do(func() { timers = len(s.leases) })
	if timers != 0 {
		t.Fatalf("%d lease timers left after expiry", timers)
	}
}

func TestByeReleasesObjectDespiteLease(t *testing.T) {
	s := startServerCfg(t, func(s *Server) { s.SetLease(time.Minute) })
	c, err := DialClient(s.Addr(), 9, geom.Pt(0.4, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "object added", func() bool {
		var n int
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 1
	})
	_ = c.Close() // clean TBye: no lease, immediate removal
	waitFor(t, "clean departure removes the object", func() bool {
		var n int
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 0
	})
}

// TestRecoverBitIdentical drives a fault-free workload — registrations of
// every query kind, random-walk updates, a mid-run snapshot, a clean
// departure and a deregistration — and checks that Recover rebuilds the
// monitor bit-for-bit (regions, results, stats) from snapshot + journal.
func TestRecoverBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s := startServerCfg(t, func(s *Server) {
		s.SetLease(time.Minute)
		if err := s.SetPersist(dir, 0); err != nil {
			t.Fatal(err)
		}
	})
	const n = 6
	clients := make([]*MobileClient, n)
	pos := make([]geom.Point, n)
	rng := rand.New(rand.NewSource(11))
	for i := range clients {
		pos[i] = geom.Pt(rng.Float64(), rng.Float64())
		c, err := DialClient(s.Addr(), uint64(i+1), pos[i])
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0.2, 0.2, 0.7, 0.7)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterCount(2, geom.R(0.5, 0.5, 0.9, 0.9)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterKNN(3, geom.Pt(0.3, 0.6), 3, true); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterWithinDistance(4, geom.Pt(0.6, 0.4), 0.2); err != nil {
		t.Fatal(err)
	}

	step := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for i, c := range clients {
				if c == nil {
					continue
				}
				pos[i] = geom.Pt(clampUnit(pos[i].X+0.08*(rng.Float64()-0.5)),
					clampUnit(pos[i].Y+0.08*(rng.Float64()-0.5)))
				c.Tick(pos[i])
			}
			time.Sleep(time.Millisecond)
		}
	}
	step(30)

	// Mid-run snapshot: recovery must load it and replay only the journal
	// suffix appended after it.
	var snapErr error
	if err := s.do(func() { snapErr = s.snapshotNow() }); err != nil {
		t.Fatal(err)
	}
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	// One client leaves cleanly (a journaled removal), one query is dropped.
	_ = clients[0].Close()
	clients[0] = nil
	if err := app.Deregister(2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "departure and deregistration applied", func() bool {
		var nq, no int
		_ = s.do(func() { nq, no = s.mon.NumQueries(), s.mon.NumObjects() })
		return nq == 3 && no == n-1
	})
	step(30)

	settle(t, s, clients, pos)
	live := captureState(t, s)
	_ = s.Close() // no further journal writes; the files are now stable

	rec := recoverInto(t, dir)
	if !bytes.Equal(live, rec) {
		t.Fatalf("recovered state differs from live state (%d vs %d snapshot bytes)", len(live), len(rec))
	}
}

// TestChaosDifferential is the end-to-end fault-tolerance acceptance test:
// a fleet of reconnecting clients runs a workload through seeded
// drop/dup/delay/sever faults with session leases, periodic snapshots and
// journaling enabled. After driving the system to quiescence over a clean
// link, (a) the settled range results must match a brute-force evaluation of
// the true client positions, and (b) recovering the snapshot + journal into
// a fresh server must reproduce the live monitor bit-identically.
func TestChaosDifferential(t *testing.T) {
	dir := t.TempDir()
	faulty := chaos.Config{Seed: 42, Drop: 0.05, Dup: 0.03, DelayRate: 0.05, Delay: time.Millisecond, Sever: 0.02}
	out := faulty
	out.Sever = 0 // mobile conns sever via the inbound lane; keep app pushes flowing
	inj := chaos.NewInjector(faulty, out)
	inj.SetEnabled(false) // clean link while the fleet assembles
	s := startServerCfg(t, func(s *Server) {
		s.SetWorkers(2)
		s.SetLease(time.Minute)
		s.SetProbeTimeout(50 * time.Millisecond)
		s.SetChaos(inj)
		if err := s.SetPersist(dir, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})

	const n = 8
	clients := make([]*MobileClient, n)
	pos := make([]geom.Point, n)
	rng := rand.New(rand.NewSource(5))
	for i := range clients {
		pos[i] = geom.Pt(rng.Float64(), rng.Float64())
		c, err := DialClientOpts(s.Addr(), uint64(i+1), pos[i], ClientOptions{
			Reconnect:  true,
			BackoffMin: 2 * time.Millisecond,
			BackoffMax: 30 * time.Millisecond,
			Seed:       int64(i) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	app.SetLogf(nil)
	go func() { // result pushes are not asserted on; keep the stream drained
		for range app.Updates() {
		}
	}()
	rect := geom.R(0.25, 0.25, 0.75, 0.75)
	if _, err := app.RegisterRange(1, rect); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterCount(2, geom.R(0.1, 0.5, 0.6, 0.95)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterKNN(3, geom.Pt(0.5, 0.5), 3, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fleet assembled", func() bool {
		var objs int
		_ = s.do(func() { objs = s.mon.NumObjects() })
		return objs == n
	})

	inj.SetEnabled(true)
	for step := 0; step < 200; step++ {
		for i, c := range clients {
			pos[i] = geom.Pt(clampUnit(pos[i].X+0.06*(rng.Float64()-0.5)),
				clampUnit(pos[i].Y+0.06*(rng.Float64()-0.5)))
			c.Tick(pos[i])
		}
		time.Sleep(time.Millisecond)
	}
	inj.SetEnabled(false)

	settle(t, s, clients, pos)

	var reconnects int64
	for _, c := range clients {
		reconnects += c.Reconnects()
	}
	if reconnects == 0 {
		t.Fatal("chaos run triggered no reconnects; the fault schedule is too tame to prove anything")
	}

	// Settled results must agree with a brute-force evaluation over the true
	// positions: after the resync sweep every client sits inside the same
	// safe region the server holds for it, and within a safe region query
	// membership cannot change — so the server's view (built from possibly
	// older in-region positions) classifies exactly like the truth.
	var got []uint64
	var ok bool
	_ = s.do(func() { got, ok = s.mon.Results(query.ID(1)) })
	if !ok {
		t.Fatal("range query lost during the chaos run")
	}
	var want []uint64
	for i := range clients {
		if rect.Contains(pos[i]) {
			want = append(want, uint64(i+1))
		}
	}
	if !sortedEqual(got, want) {
		t.Fatalf("settled range results = %v, want brute-force %v", got, want)
	}

	live := captureState(t, s)
	_ = s.Close()

	rec := recoverInto(t, dir)
	if !bytes.Equal(live, rec) {
		t.Fatalf("recovered state differs from live state after chaos (%d vs %d snapshot bytes)", len(live), len(rec))
	}
}

// TestSnapshotUnderConcurrentUpdates exercises the admin /snapshot endpoint
// while update batches are in flight: each snapshot must serialize through
// the event loop and capture a consistent state that restores into a monitor
// passing its invariant checks.
func TestSnapshotUnderConcurrentUpdates(t *testing.T) {
	s := startServerCfg(t, func(s *Server) { s.SetWorkers(4) })
	const n = 16
	clients := make([]*MobileClient, n)
	for i := range clients {
		start := geom.Pt(float64(i%4)*0.25+0.1, float64(i/4)*0.25+0.1)
		c, err := DialClient(s.Addr(), uint64(i+1), start)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0.2, 0.2, 0.8, 0.8)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fleet assembled", func() bool {
		var objs int
		_ = s.do(func() { objs = s.mon.NumObjects() })
		return objs == n
	})

	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *MobileClient) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 100))
			p := geom.Pt(rng.Float64(), rng.Float64())
			for {
				select {
				case <-stop:
					return
				default:
				}
				p = geom.Pt(clampUnit(p.X+0.1*(rng.Float64()-0.5)), clampUnit(p.Y+0.1*(rng.Float64()-0.5)))
				c.Tick(p)
				time.Sleep(time.Millisecond)
			}
		}(i, c)
	}
	for round := 0; round < 5; round++ {
		resp, err := http.Get(srv.URL + "/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		restored := core.New(core.Options{GridM: 10}, core.ProberFunc(func(uint64) geom.Point {
			return geom.Point{}
		}), nil)
		err = restored.LoadSnapshot(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.CheckInvariants(); err != nil {
			t.Fatalf("round %d: restored snapshot violates invariants: %v", round, err)
		}
		if restored.NumObjects() != n || restored.NumQueries() != 1 {
			t.Fatalf("round %d: restored %d objects / %d queries, want %d / 1",
				round, restored.NumObjects(), restored.NumQueries(), n)
		}
	}
	close(stop)
	wg.Wait()
}
