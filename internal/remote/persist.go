package remote

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"srb/internal/core"
	"srb/internal/wire"
)

// Crash recovery for the server: the monitor state is made durable as a
// periodic snapshot plus an append-only operation journal (see
// internal/core/journal.go and DESIGN.md §11). The persistence directory
// holds two files:
//
//	snapshot.srb    one JSON meta line {"v":1,"last_seq":N} followed by the
//	                gob blob of core.SaveSnapshot; written tmp+rename so a
//	                crash mid-snapshot leaves the previous one intact
//	journal.ndjson  core.Journal entries appended after the snapshot
//
// The journal's sequence numbers are monotonic across snapshots; the meta
// line's last_seq tells recovery which prefix of the journal the snapshot
// already contains, so the snapshot/truncate pair does not need to be atomic.
const (
	snapshotFile = "snapshot.srb"
	journalFile  = "journal.ndjson"
)

// snapshotMeta is the JSON header line of a snapshot file.
type snapshotMeta struct {
	V       int    `json:"v"`
	LastSeq uint64 `json:"last_seq"`
}

type persistState struct {
	dir     string
	file    *os.File
	journal *core.Journal
	every   time.Duration
	timer   *time.Timer
}

// Recover loads the last snapshot from dir (if any) and replays the journal
// suffix over it, leaving the server's monitor exactly as it was when the
// last journaled operation committed. Must be called before Serve, on an
// empty monitor. A missing directory or empty directory is not an error —
// there is simply nothing to recover. The replayed journal's last sequence
// number carries over into SetPersist, so new entries continue the log.
func (s *Server) Recover(dir string) (core.ReplayStats, error) {
	var rs core.ReplayStats
	var fromSeq uint64
	t0 := time.Now()
	sf, err := os.Open(filepath.Join(dir, snapshotFile))
	switch {
	case err == nil:
		meta, blob, err := readSnapshotHeader(sf)
		if err != nil {
			_ = sf.Close()
			return rs, err
		}
		err = s.mon.LoadSnapshot(blob)
		_ = sf.Close()
		if err != nil {
			return rs, err
		}
		fromSeq = meta.LastSeq
	case os.IsNotExist(err):
		// Cold start with no snapshot; the journal alone may still replay.
	default:
		return rs, fmt.Errorf("remote: open snapshot: %w", err)
	}
	jf, err := os.Open(filepath.Join(dir, journalFile))
	switch {
	case err == nil:
		rs, err = core.ReplayJournal(bufio.NewReader(jf), s.mon, fromSeq)
		_ = jf.Close()
		if err != nil {
			return rs, err
		}
	case os.IsNotExist(err):
	default:
		return rs, fmt.Errorf("remote: open journal: %w", err)
	}
	if rs.LastSeq < fromSeq {
		rs.LastSeq = fromSeq
	}
	// The monitor clock must never run backward across a restart: fold the
	// recovered clock into the base that Serve's event loop adds elapsed
	// wall time to.
	s.timeBase = s.mon.Now()
	s.recSeq = rs.LastSeq
	s.noteRecovery(rs, time.Since(t0))
	return rs, nil
}

// SetPersist enables journaling into dir, creating it if needed, and — when
// snapshotEvery > 0 — periodic snapshots that bound replay time (each
// snapshot truncates the journal). Call after Recover (to continue its
// sequence numbers) and before Serve.
func (s *Server) SetPersist(dir string, snapshotEvery time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("remote: persist dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("remote: open journal for append: %w", err)
	}
	s.persist = &persistState{
		dir:     dir,
		file:    f,
		journal: core.NewJournal(f, s.recSeq),
		every:   snapshotEvery,
	}
	if snapshotEvery > 0 {
		s.armSnapshot()
	}
	return nil
}

// armSnapshot schedules the next periodic snapshot onto the event loop.
func (s *Server) armSnapshot() {
	s.persist.timer = time.AfterFunc(s.persist.every, func() {
		select {
		case s.reqs <- request{fn: func() {
			if err := s.snapshotNow(); err != nil {
				s.logf("remote: periodic snapshot: %v", err)
			}
			s.armSnapshot()
		}}:
		case <-s.done:
		}
	})
}

// snapshotNow writes a snapshot of the current monitor state and truncates
// the journal it supersedes. Runs on the event loop.
func (s *Server) snapshotNow() error {
	p := s.persist
	if p == nil {
		return nil
	}
	t0 := time.Now()
	tmp := filepath.Join(p.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	meta, _ := json.Marshal(snapshotMeta{V: 1, LastSeq: p.journal.LastSeq()})
	w := bufio.NewWriter(f)
	_, err = w.Write(append(meta, '\n'))
	if err == nil {
		err = s.mon.SaveSnapshot(w)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil { //lint:allow errdrop the write error takes precedence over the close error
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(p.dir, snapshotFile))
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// The snapshot now covers every journaled entry; drop them. If this
	// truncate is lost to a crash, recovery skips the covered prefix via the
	// snapshot's last_seq, so durability does not depend on it.
	if err := p.file.Truncate(0); err != nil {
		s.logf("remote: truncate journal after snapshot: %v", err)
	}
	s.noteSnapshot(time.Since(t0))
	return nil
}

// readSnapshotHeader parses the meta line and positions the reader at the
// gob blob.
func readSnapshotHeader(f *os.File) (snapshotMeta, io.Reader, error) {
	var meta snapshotMeta
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return meta, nil, fmt.Errorf("remote: snapshot header: %w", err)
	}
	if err := json.Unmarshal(line, &meta); err != nil {
		return meta, nil, fmt.Errorf("remote: snapshot header: %w", err)
	}
	if meta.V != 1 {
		return meta, nil, fmt.Errorf("remote: snapshot envelope version %d, want 1", meta.V)
	}
	return meta, br, nil
}

// jBegin/jCommit/jAbort bracket one monitor operation in the journal; all
// are no-ops without persistence and run on the event loop.
func (s *Server) jBegin(e core.JournalEntry) {
	if s.persist == nil {
		return
	}
	e.T = s.mon.Now()
	s.persist.journal.Begin(e)
}

func (s *Server) jCommit() {
	if s.persist == nil {
		return
	}
	if err := s.persist.journal.Commit(); err != nil {
		s.logf("remote: %v", err)
		return
	}
	s.noteJournal()
}

func (s *Server) jAbort() {
	if s.persist != nil {
		s.persist.journal.Abort()
	}
}

// registrationEntry maps a registration frame to its journal entry.
func registrationEntry(req wire.Message) core.JournalEntry {
	e := core.JournalEntry{Op: core.JournalRegister, QID: req.QID}
	switch req.Type { //lint:allow protodrift TDeregister is journaled directly by the deregister path, never through this helper
	case wire.TRegisterRange:
		e.Kind = core.KindRange
		e.MinX, e.MinY, e.MaxX, e.MaxY = req.MinX, req.MinY, req.MaxX, req.MaxY
	case wire.TRegisterCount:
		e.Kind = core.KindCount
		e.MinX, e.MinY, e.MaxX, e.MaxY = req.MinX, req.MinY, req.MaxX, req.MaxY
	case wire.TRegisterCircle:
		e.Kind = core.KindCircle
		e.X, e.Y, e.Radius = req.X, req.Y, req.Radius
	case wire.TRegisterKNN:
		e.Kind = core.KindKNN
		e.X, e.Y, e.K, e.Ordered = req.X, req.Y, req.K, req.Ordered
	}
	return e
}
