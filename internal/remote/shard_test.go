package remote

// End-to-end coverage for the sharded object index behind the network
// frontend (SetShards): mobile clients and application queries drive a
// 4-shard server over real connections, the march across stripe boundaries
// must migrate objects between shards, the admin /stats payload must expose
// the shards block, /metrics must carry the srb_shard_* families, and the
// journaled history must recover into a *differently* sharded server whose
// snapshot is bit-identical to the live one — the shard contract's
// "snapshots are shard-count independent" clause, over the wire.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
)

func TestShardedServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sink := obs.NewSink(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceDepth))
	s := startServerCfg(t, func(s *Server) {
		if err := s.SetShards(4); err != nil {
			t.Fatal(err)
		}
		if err := s.SetPersist(dir, 0); err != nil {
			t.Fatal(err)
		}
		s.SetObs(sink)
	})
	if got := s.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}

	// Clients spread across the x axis so several stripes start populated
	// (GridM 10, 4 shards: stripe boundaries at x = 0.3, 0.6, 0.8).
	const n = 12
	clients := make([]*MobileClient, n)
	pos := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pos[i] = geom.Pt(0.05+0.07*float64(i), 0.2+0.05*float64(i%5))
		c, err := DialClient(s.Addr(), uint64(i+1), pos[i])
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	waitFor(t, "objects registered", func() bool {
		cnt := 0
		_ = s.do(func() { cnt = s.mon.NumObjects() })
		return cnt == n
	})

	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	// A range straddling three stripes and a kNN near a boundary: both force
	// scatter-gather searches across shard workers.
	if _, err := app.RegisterRange(1, geom.R(0.25, 0.0, 0.75, 1.0)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterKNN(2, geom.Pt(0.6, 0.4), 3, true); err != nil {
		t.Fatal(err)
	}

	// March every client rightward far enough to cross at least one stripe
	// boundary; settle between legs so reports are not suppressed while a
	// region grant is in flight.
	for leg := 0; leg < 4; leg++ {
		for i, c := range clients {
			pos[i] = geom.Pt(clampUnit(pos[i].X+0.08), pos[i].Y)
			c.Tick(pos[i])
		}
		settle(t, s, clients, pos)
	}

	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Objects int `json:"objects"`
		Shards  *struct {
			N          int   `json:"n"`
			Objects    []int `json:"objects"`
			Strays     int   `json:"strays"`
			Migrations int64 `json:"migrations"`
			Scatters   int64 `json:"scatters"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Shards == nil {
		t.Fatal("/stats payload has no shards block")
	}
	if stats.Shards.N != 4 || len(stats.Shards.Objects) != 4 {
		t.Fatalf("shards block = %+v, want n=4 with 4 per-shard counts", stats.Shards)
	}
	owned := 0
	for _, c := range stats.Shards.Objects {
		owned += c
	}
	if owned+stats.Shards.Strays != stats.Objects {
		t.Fatalf("per-shard objects %v + %d strays != %d total",
			stats.Shards.Objects, stats.Shards.Strays, stats.Objects)
	}
	if stats.Shards.Migrations == 0 {
		t.Fatal("no migrations recorded after clients crossed stripe boundaries")
	}
	if stats.Shards.Scatters == 0 {
		t.Fatal("no scatter-gather searches recorded despite straddling queries")
	}

	// The registry must carry the per-shard metric families.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"srb_shard_objects{", "srb_shard_migrations_total{",
		"srb_shard_scatter_total{", "srb_shard_stray_objects",
	} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}

	// Query results over the sharded index match a brute-force check of the
	// positions the clients settled on.
	var res []uint64
	if err := s.do(func() { res, _ = s.mon.Results(1) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	var want []uint64
	for i, p := range pos {
		if geom.R(0.25, 0.0, 0.75, 1.0).Contains(p) {
			want = append(want, uint64(i+1))
		}
	}
	if len(res) != len(want) {
		t.Fatalf("range results = %v, want %v", res, want)
	}
	for i := range res {
		if res[i] != want[i] {
			t.Fatalf("range results = %v, want %v", res, want)
		}
	}

	// Crash-recovery across a shard-count change: replay the journal into a
	// 2-shard server and compare snapshots bit-for-bit with the live 4-shard
	// one. The snapshot format never mentions shards, so this must hold.
	live := captureState(t, s)
	s2, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.SetLogf(nil)
	if err := s2.SetShards(2); err != nil {
		t.Fatal(err)
	}
	rs, err := s2.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LastSeq == 0 {
		t.Fatal("recovery saw an empty journal")
	}
	if err := s2.mon.CheckInvariants(); err != nil {
		t.Fatalf("recovered sharded monitor violates invariants: %v", err)
	}
	s2.mon.SetTime(normalizedNow)
	var buf bytes.Buffer
	if err := s2.mon.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, buf.Bytes()) {
		t.Fatalf("recovered 2-shard snapshot differs from live 4-shard snapshot (%d vs %d bytes)",
			buf.Len(), len(live))
	}
}
