package remote

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Serve()
	}()
	t.Cleanup(func() {
		_ = s.Close()
		wg.Wait()
	})
	return s
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestClientReceivesRegionAndReportsOnExit(t *testing.T) {
	s := startServer(t)
	c, err := DialClient(s.Addr(), 1, geom.Pt(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	// Registering a query forces safe regions to be meaningful; the client
	// should have received one after its first report.
	if _, err := app.RegisterRange(1, geom.R(0.4, 0.4, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
	c.Tick(geom.Pt(0.51, 0.5)) // likely inside; report only if no region yet
	waitFor(t, "safe region", func() bool { _, ok := c.Region(); return ok })

	rgn, _ := c.Region()
	if !rgn.Contains(geom.Pt(0.51, 0.5)) {
		// The region corresponds to the last reported point; at minimum it
		// contains what we reported.
		t.Logf("region %v does not contain current tick; acceptable if granted for an earlier report", rgn)
	}
	// March out of the region; the client must report and obtain a new one.
	upBefore, _ := c.Stats()
	p := geom.Pt(0.9, 0.9)
	c.Tick(p)
	waitFor(t, "update sent", func() bool { up, _ := c.Stats(); return up > upBefore })
	waitFor(t, "fresh region containing new position", func() bool {
		r, ok := c.Region()
		return ok && r.Contains(p)
	})
}

func TestRangeQueryOverNetwork(t *testing.T) {
	s := startServer(t)
	var clients []*MobileClient
	pts := []geom.Point{{X: 0.45, Y: 0.45}, {X: 0.55, Y: 0.55}, {X: 0.9, Y: 0.9}}
	for i, p := range pts {
		c, err := DialClient(s.Addr(), uint64(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	// Ensure all hellos are processed before registering.
	waitFor(t, "objects registered", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 3
	})

	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	res, err := app.RegisterRange(7, geom.R(0.4, 0.4, 0.6, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	if len(res) != 2 || res[0] != 1 || res[1] != 2 {
		t.Fatalf("initial results = %v, want [1 2]", res)
	}

	// Client 3 walks into the rectangle: an update must be pushed.
	go func() {
		p := geom.Pt(0.9, 0.9)
		for i := 0; i < 60; i++ {
			p = geom.Pt(p.X-0.007, p.Y-0.007)
			clients[2].Tick(p)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case u := <-app.Updates():
			if u.Query == 7 && len(u.Results) == 3 {
				return // client 3 joined the result
			}
		case <-deadline:
			t.Fatal("no result update pushed")
		}
	}
}

func TestKNNQueryOverNetworkWithProbes(t *testing.T) {
	s := startServer(t)
	for i := 1; i <= 8; i++ {
		c, err := DialClient(s.Addr(), uint64(i), geom.Pt(float64(i)*0.1, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	waitFor(t, "objects registered", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 8
	})
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	res, err := app.RegisterKNN(3, geom.Pt(0.12, 0.5), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != 1 || res[1] != 2 {
		t.Fatalf("kNN results = %v, want [1 2]", res)
	}
}

// TestDuplicateQueryReplaces: the monitor API rejects duplicate IDs, but the
// wire layer replaces them — registration must be idempotent so a retried
// frame or a reconnected app server is safe (see TestRegisterIdempotentReplaces
// for the full contract).
func TestDuplicateQueryReplaces(t *testing.T) {
	s := startServer(t)
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterRange(1, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatalf("duplicate registration must replace, got error: %v", err)
	}
	var nq int
	_ = s.do(func() { nq = s.mon.NumQueries() })
	if nq != 1 {
		t.Fatalf("queries after duplicate register = %d, want 1", nq)
	}
}

func TestAppDisconnectDeregisters(t *testing.T) {
	s := startServer(t)
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RegisterRange(5, geom.R(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	_ = app.Close()
	waitFor(t, "query deregistered", func() bool {
		n := -1
		_ = s.do(func() { n = s.mon.NumQueries() })
		return n == 0
	})
}

func TestClientDisconnectRemovesObject(t *testing.T) {
	s := startServer(t)
	c, err := DialClient(s.Addr(), 9, geom.Pt(0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "object added", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 1
	})
	_ = c.Close()
	waitFor(t, "object removed", func() bool {
		n := -1
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 0
	})
}

func TestCountQueryOverNetwork(t *testing.T) {
	s := startServer(t)
	for i := 1; i <= 5; i++ {
		c, err := DialClient(s.Addr(), uint64(i), geom.Pt(float64(i)*0.1, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	waitFor(t, "objects registered", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 5
	})
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	count, err := app.RegisterCount(11, geom.R(0.05, 0.4, 0.35, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3 (objects 1..3)", count)
	}
}

func TestWithinDistanceQueryOverNetwork(t *testing.T) {
	s := startServer(t)
	for i := 1; i <= 6; i++ {
		c, err := DialClient(s.Addr(), uint64(i), geom.Pt(float64(i)*0.1, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	waitFor(t, "objects registered", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 6
	})
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	res, err := app.RegisterWithinDistance(21, geom.Pt(0.25, 0.5), 0.12)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	if len(res) != 2 || res[0] != 2 || res[1] != 3 {
		t.Fatalf("results = %v, want [2 3]", res)
	}
}

func TestAdminHandler(t *testing.T) {
	s := startServer(t)
	for i := 1; i <= 4; i++ {
		c, err := DialClient(s.Addr(), uint64(i), geom.Pt(float64(i)*0.2, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	waitFor(t, "objects", func() bool {
		n := 0
		_ = s.do(func() { n = s.mon.NumObjects() })
		return n == 4
	})
	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0.1, 0.1, 0.7, 0.7)); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.AdminHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Objects int `json:"objects"`
		Queries int `json:"queries"`
		Clients int `json:"clients"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Objects != 4 || stats.Queries != 1 || stats.Clients != 4 {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err = http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	restored := core.New(core.Options{GridM: 10}, core.ProberFunc(func(uint64) geom.Point {
		return geom.Point{}
	}), nil)
	if err := restored.LoadSnapshot(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if restored.NumObjects() != 4 || restored.NumQueries() != 1 {
		t.Fatalf("snapshot restore: %d/%d", restored.NumObjects(), restored.NumQueries())
	}

	resp, err = http.Get(srv.URL + "/svg")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body), "<svg") {
		t.Fatalf("svg endpoint returned %q...", body[:min(40, len(body))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestBatchedUpdatesOverNetwork runs the server with the batch pipeline
// enabled and hammers it with a burst of concurrent client reports: the event
// loop must coalesce them, apply them through the pipeline, and still deliver
// a correct region to every reporter and correct results to the watcher.
func TestBatchedUpdatesOverNetwork(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogf(nil)
	s.SetWorkers(4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Serve()
	}()
	t.Cleanup(func() {
		_ = s.Close()
		wg.Wait()
	})

	const n = 20
	clients := make([]*MobileClient, n)
	for i := range clients {
		c, err := DialClient(s.Addr(), uint64(i+1), geom.Pt(0.1+0.03*float64(i%5), 0.1+0.03*float64(i/5)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	waitFor(t, "objects registered", func() bool {
		cnt := 0
		_ = s.do(func() { cnt = s.mon.NumObjects() })
		return cnt == n
	})

	app, err := DialApp(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterRange(1, geom.R(0.6, 0.6, 0.9, 0.9)); err != nil {
		t.Fatal(err)
	}

	// Everyone jumps into the query rectangle at once: a burst the event loop
	// should coalesce into batches.
	var cwg sync.WaitGroup
	for i, c := range clients {
		cwg.Add(1)
		go func(i int, c *MobileClient) {
			defer cwg.Done()
			c.Tick(geom.Pt(0.65+0.01*float64(i%5), 0.65+0.01*float64(i/5)))
		}(i, c)
	}
	cwg.Wait()

	waitFor(t, "all objects in the range result", func() bool {
		var res []uint64
		_ = s.do(func() { res, _ = s.mon.Results(1) })
		return len(res) == n
	})
	// Every reporter must have received a region containing its new position.
	for i, c := range clients {
		i, c := i, c
		waitFor(t, "region delivery", func() bool {
			r, ok := c.Region()
			return ok && r.Contains(geom.Pt(0.65+0.01*float64(i%5), 0.65+0.01*float64(i/5)))
		})
	}
}
