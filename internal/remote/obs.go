package remote

import (
	"time"

	"srb/internal/chaos"
	"srb/internal/core"
	"srb/internal/obs"
)

// srvObs holds the server's bound instruments. The event loop pays one nil
// check per request when observability is off; with a sink attached it
// records per-request latency by kind, the size of each coalesced update
// batch, the live client population, and the request queue depth.
type srvObs struct {
	tr *obs.Tracer

	clients       *obs.Gauge
	updateSeconds *obs.Histogram
	opSeconds     *obs.Histogram
	batchSize     *obs.Histogram

	// Fault-tolerance instruments.
	resumed         *obs.Counter // reconnects that resumed a leased session
	rejoined        *obs.Counter // reconnects whose lease had expired
	leaseExpiries   *obs.Counter
	regionRepush    *obs.Counter
	regionSendFail  *obs.Counter
	journalEntries  *obs.Counter
	snapshotSeconds *obs.Histogram
	faults          map[chaos.Dir]map[chaos.Kind]*obs.Counter
}

// SetObs attaches an observability sink to the server and everything it
// hosts: the core monitor, the batch pipeline (current and any created later
// by SetWorkers), the sharded object index (current and any created later by
// SetShards), and the server's own event-loop instruments. Must be called
// before Serve; nil detaches.
func (s *Server) SetObs(sink *obs.Sink) {
	if sink == nil || (sink.Registry() == nil && sink.Tracer() == nil) {
		s.sink = nil
		s.obs = nil
		s.mon.SetObs(nil)
		if s.pipe != nil {
			s.pipe.SetObs(nil)
		}
		if s.forest != nil {
			s.forest.SetObs(nil)
		}
		return
	}
	s.sink = sink
	s.mon.SetObs(sink)
	if s.pipe != nil {
		s.pipe.SetObs(sink)
	}
	if s.forest != nil {
		s.forest.SetObs(sink)
	}
	r := sink.Registry()
	o := &srvObs{tr: sink.Tracer()}
	o.clients = r.Gauge("srb_server_clients", "Connected mobile clients.")
	help := "Event-loop request latency by kind (update batch or other operation)."
	o.updateSeconds = r.Histogram("srb_server_request_seconds", help, obs.LatencyBuckets(), "kind", "update")
	o.opSeconds = r.Histogram("srb_server_request_seconds", help, obs.LatencyBuckets(), "kind", "op")
	o.batchSize = r.Histogram("srb_server_batch_size", "Location updates coalesced per event-loop batch.", obs.SizeBuckets())
	// Channel length is safe to read from the scrape goroutine.
	r.GaugeFunc("srb_server_queue_depth", "Requests waiting in the event-loop queue.", func() float64 {
		return float64(len(s.reqs))
	})
	rhelp := "Mobile-client reconnects by outcome (resumed = lease held, rejoined = lease had expired)."
	o.resumed = r.Counter("srb_server_reconnects_total", rhelp, "outcome", "resumed")
	o.rejoined = r.Counter("srb_server_reconnects_total", rhelp, "outcome", "rejoined")
	o.leaseExpiries = r.Counter("srb_server_lease_expiries_total", "Disconnected sessions removed after their lease ran out.")
	o.regionRepush = r.Counter("srb_server_region_repush_total", "Safe regions re-pushed to sessions after a resume or a failed push.")
	o.regionSendFail = r.Counter("srb_server_region_send_failures_total", "Safe-region pushes that failed to send; the session is marked for re-push.")
	o.journalEntries = r.Counter("srb_server_journal_entries_total", "Operations appended to the crash-recovery journal.")
	o.snapshotSeconds = r.Histogram("srb_server_snapshot_seconds", "Latency of periodic crash-recovery snapshots.", obs.LatencyBuckets())
	// Recovery runs once, before Serve; expose its outcome as gauges read
	// straight off the server fields (written before any scrape can happen).
	r.GaugeFunc("srb_server_replay_seconds", "Wall time of the last journal replay at startup.", func() float64 {
		return s.replaySeconds
	})
	r.GaugeFunc("srb_server_replay_entries", "Journal entries applied by the last startup recovery.", func() float64 {
		return float64(s.replayEntries)
	})
	fhelp := "Faults injected by the chaos transport wrapper."
	o.faults = make(map[chaos.Dir]map[chaos.Kind]*obs.Counter)
	for _, d := range []chaos.Dir{chaos.DirIn, chaos.DirOut} {
		o.faults[d] = make(map[chaos.Kind]*obs.Counter)
		for _, k := range []chaos.Kind{chaos.KindDrop, chaos.KindDup, chaos.KindDelay, chaos.KindSever} {
			o.faults[d][k] = r.Counter("srb_server_chaos_faults_total", fhelp, "dir", string(d), "kind", string(k))
		}
	}
	s.obs = o
	if s.inj != nil {
		s.inj.OnFault(o.noteFault)
	}
}

// noteFault counts one injected chaos fault; called from connection
// goroutines, so it must not touch event-loop state.
func (o *srvObs) noteFault(d chaos.Dir, k chaos.Kind) {
	if c := o.faults[d][k]; c != nil {
		c.Inc()
	}
}

// noteReconnect counts a resume hello; resumed tells whether the lease was
// still holding the session's object.
func (s *Server) noteReconnect(resumed bool) {
	if s.obs == nil {
		return
	}
	if resumed {
		s.obs.resumed.Inc()
	} else {
		s.obs.rejoined.Inc()
	}
}

func (s *Server) noteLeaseExpiry() {
	if s.obs != nil {
		s.obs.leaseExpiries.Inc()
	}
}

func (s *Server) noteRepush() {
	if s.obs != nil {
		s.obs.regionRepush.Inc()
	}
}

func (s *Server) noteRegionSendFail() {
	if s.obs != nil {
		s.obs.regionSendFail.Inc()
	}
}

func (s *Server) noteJournal() {
	if s.obs != nil {
		s.obs.journalEntries.Inc()
	}
}

func (s *Server) noteSnapshot(d time.Duration) {
	if s.obs != nil {
		s.obs.snapshotSeconds.Observe(d.Seconds())
	}
}

// noteRecovery records the startup recovery outcome on the server; the
// gauges registered in SetObs read these fields.
func (s *Server) noteRecovery(rs core.ReplayStats, d time.Duration) {
	s.replaySeconds = d.Seconds()
	s.replayEntries = rs.Entries
}

// noteClients refreshes the client-population gauge; runs on the event loop.
func (s *Server) noteClients() {
	if s.obs != nil {
		s.obs.clients.Set(float64(len(s.clients)))
	}
}

// noteOp records a non-update event-loop request.
func (s *Server) noteOp(t0 time.Time) {
	if s.obs != nil {
		s.obs.opSeconds.ObserveSince(t0)
	}
}

// noteBatch records one coalesced update batch: its latency, its size, and a
// server-level trace span framing the core/pipeline spans inside it.
func (s *Server) noteBatch(t0 time.Time, n int) {
	if s.obs != nil {
		s.obs.updateSeconds.ObserveSince(t0)
		s.obs.batchSize.Observe(float64(n))
		s.obs.tr.Span("server", "batch", t0, "updates", int64(n), "queued", int64(len(s.reqs)))
	}
}
