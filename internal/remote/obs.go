package remote

import (
	"time"

	"srb/internal/obs"
)

// srvObs holds the server's bound instruments. The event loop pays one nil
// check per request when observability is off; with a sink attached it
// records per-request latency by kind, the size of each coalesced update
// batch, the live client population, and the request queue depth.
type srvObs struct {
	tr *obs.Tracer

	clients       *obs.Gauge
	updateSeconds *obs.Histogram
	opSeconds     *obs.Histogram
	batchSize     *obs.Histogram
}

// SetObs attaches an observability sink to the server and everything it
// hosts: the core monitor, the batch pipeline (current and any created later
// by SetWorkers), and the server's own event-loop instruments. Must be called
// before Serve; nil detaches.
func (s *Server) SetObs(sink *obs.Sink) {
	if sink == nil || (sink.Registry() == nil && sink.Tracer() == nil) {
		s.sink = nil
		s.obs = nil
		s.mon.SetObs(nil)
		if s.pipe != nil {
			s.pipe.SetObs(nil)
		}
		return
	}
	s.sink = sink
	s.mon.SetObs(sink)
	if s.pipe != nil {
		s.pipe.SetObs(sink)
	}
	r := sink.Registry()
	o := &srvObs{tr: sink.Tracer()}
	o.clients = r.Gauge("srb_server_clients", "Connected mobile clients.")
	help := "Event-loop request latency by kind (update batch or other operation)."
	o.updateSeconds = r.Histogram("srb_server_request_seconds", help, obs.LatencyBuckets(), "kind", "update")
	o.opSeconds = r.Histogram("srb_server_request_seconds", help, obs.LatencyBuckets(), "kind", "op")
	o.batchSize = r.Histogram("srb_server_batch_size", "Location updates coalesced per event-loop batch.", obs.SizeBuckets())
	// Channel length is safe to read from the scrape goroutine.
	r.GaugeFunc("srb_server_queue_depth", "Requests waiting in the event-loop queue.", func() float64 {
		return float64(len(s.reqs))
	})
	s.obs = o
}

// noteClients refreshes the client-population gauge; runs on the event loop.
func (s *Server) noteClients() {
	if s.obs != nil {
		s.obs.clients.Set(float64(len(s.clients)))
	}
}

// noteOp records a non-update event-loop request.
func (s *Server) noteOp(t0 time.Time) {
	if s.obs != nil {
		s.obs.opSeconds.ObserveSince(t0)
	}
}

// noteBatch records one coalesced update batch: its latency, its size, and a
// server-level trace span framing the core/pipeline spans inside it.
func (s *Server) noteBatch(t0 time.Time, n int) {
	if s.obs != nil {
		s.obs.updateSeconds.ObserveSince(t0)
		s.obs.batchSize.Observe(float64(n))
		s.obs.tr.Span("server", "batch", t0, "updates", int64(n), "queued", int64(len(s.reqs)))
	}
}
