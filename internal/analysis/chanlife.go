package analysis

// chanlife.go is the channel-lifecycle analyzer: the concurrency-contract
// half of the v4 suite (protodrift.go is the wire-contract half). Before the
// module grows sharded multi-server monitoring — which multiplies the
// channel/goroutine surface with shard request loops, scatter-gather fan-out
// and migration queues — every channel's make/send/receive/close protocol
// should be machine-checked.
//
// A channel is identified by a *cell* abstracted over instances, mirroring
// the lockorder analyzer's lock keys: "Type.field" for a struct field,
// "pkg.var" for a package-level channel, a line-qualified local name
// otherwise. Cells that provably refer to the same channel are unified with
// a union-find: assignment, storing into / loading from a field or map
// element, passing as an argument to a declared module function (the arg
// cell joins the callee's parameter cell), and returning from one (the
// result joins the callee's "ret" cell, so `range app.Updates()` counts as a
// receive on the updates field). Closures are folded into their enclosing
// declaration, as in the call graph. The representative of a unified class
// is the most stable cell (field > package var > param/ret > local), so
// reports name the declaration site a reader can find.
//
// Four rules over the module-wide aggregation:
//
//  1. send-no-receiver: a cell with at least one send site, zero receive
//     sites anywhere in the module, a module-local make, and no escape to
//     code we cannot see. Such a send can only block forever or leak the
//     goroutine.
//  2. receive-side close: a close in a function that neither sends on the
//     cell nor makes it, while other functions do send on it. Close belongs
//     to the sending side; a receive-side close races the senders into a
//     send-on-closed panic.
//  3. double-close: two or more close sites for one cell that are not
//     guarded by sync.Once.Do. One owner (or a Once) must close.
//  4. blocking-under-lock: a blocking channel operation — a send or receive
//     outside any select, or inside a select without a default — executed
//     while a mutex (lockorder's keys) is held. The channel may stay
//     unready indefinitely, extending the critical section into a deadlock
//     vector.
//
// Known imprecision (DESIGN.md §13): cells abstract per declaration, not per
// instance; channels stored in non-map containers or reached through
// interfaces are untracked (their cell is empty and the op is ignored);
// rule 4 tracks only directly-acquired locks and ignores blocking that
// happens inside callees.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ChanLife tracks channel make/send/receive/close sites through per-function
// cells unified module-wide, and checks the lifecycle contract.
var ChanLife = &Analyzer{
	Name:      "chanlife",
	Doc:       "flags sends with no receiver, receive-side or double closes, and blocking channel ops under a mutex",
	RunModule: runChanLife,
}

// chanOpKind is one recorded channel event.
type chanOpKind int

const (
	chanMake chanOpKind = iota
	chanSend
	chanRecv
	chanClose
)

// chanOp is one channel event at a source position, attributed to the
// enclosing declaration.
type chanOp struct {
	cell    string
	kind    chanOpKind
	pkg     *Package
	pos     token.Pos
	fn      string // funcID of the enclosing declaration (closures folded)
	guarded bool   // close inside sync.Once.Do(func(){ ... })
}

// chanState accumulates the module-wide scan.
type chanState struct {
	mp      *ModulePass
	decls   map[string]bool   // funcIDs declared in the module
	parent  map[string]string // union-find over cells
	ops     []chanOp
	escaped map[string]bool // cells handed to code outside the module
}

func runChanLife(mp *ModulePass) {
	st := &chanState{
		mp:      mp,
		decls:   make(map[string]bool),
		parent:  make(map[string]string),
		escaped: make(map[string]bool),
	}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					st.decls[funcID(obj)] = true
				}
			}
		}
	}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				st.scanFunc(pkg, fd, funcID(obj))
			}
		}
	}
	st.checkLifecycle()
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkBlockingUnderLock(mp, pkg, fd.Body)
				}
			}
		}
	}
}

// cellRank orders cell stability for union-find representative election.
func cellRank(cell string) int {
	switch {
	case strings.HasPrefix(cell, "field:"):
		return 4
	case strings.HasPrefix(cell, "global:"):
		return 3
	case strings.HasPrefix(cell, "param:"), strings.HasPrefix(cell, "ret:"):
		return 2
	}
	return 1
}

// cellDisplay strips the internal prefix for report text.
func cellDisplay(cell string) string {
	for _, p := range []string{"field:", "global:", "param:", "ret:", "local:"} {
		if strings.HasPrefix(cell, p) {
			return strings.TrimPrefix(cell, p)
		}
	}
	return cell
}

func (st *chanState) find(cell string) string {
	p, ok := st.parent[cell]
	if !ok || p == cell {
		return cell
	}
	root := st.find(p)
	st.parent[cell] = root
	return root
}

// union merges two cells, electing the more stable (then lexicographically
// smaller, for determinism) as representative.
func (st *chanState) union(a, b string) {
	if a == "" || b == "" {
		return
	}
	ra, rb := st.find(a), st.find(b)
	if ra == rb {
		return
	}
	if cellRank(rb) > cellRank(ra) || (cellRank(rb) == cellRank(ra) && rb < ra) {
		ra, rb = rb, ra
	}
	st.parent[rb] = ra
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// chanElemType returns the channel element type of a map or slice of
// channels, or nil.
func containerChanElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		if isChanType(u.Elem()) {
			return u.Elem()
		}
	case *types.Slice:
		if isChanType(u.Elem()) {
			return u.Elem()
		}
	}
	return nil
}

// cellOf names the abstract cell an expression denotes: a struct field, a
// package-level variable, a map/slice element of one of those, the result of
// a declared module function, or a line-qualified local. Empty when the
// shape is untrackable.
func (st *chanState) cellOf(pkg *Package, fnID string, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj == nil || x.Name == "_" {
			return ""
		}
		if isPackageVar(obj) {
			return "global:" + obj.Pkg().Path() + "." + obj.Name()
		}
		return fmt.Sprintf("local:%s.%s@L%d", fnID, x.Name, pkg.Fset.Position(obj.Pos()).Line)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if obj := pkg.Info.Uses[x.Sel]; obj != nil && isPackageVar(obj) {
					return "global:" + obj.Pkg().Path() + "." + obj.Name()
				}
				return ""
			}
		}
		if named := namedOf(pkg.Info.TypeOf(x.X)); named != nil {
			return "field:" + qualifiedTypeName(named) + "." + x.Sel.Name
		}
		return ""
	case *ast.IndexExpr:
		base := st.cellOf(pkg, fnID, x.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.CallExpr:
		if fn := calleeFunc(pkg.Info, x); fn != nil {
			if id := funcID(fn); st.decls[id] {
				return "ret:" + id
			}
		}
		return ""
	}
	return ""
}

func (st *chanState) record(cell string, kind chanOpKind, pkg *Package, pos token.Pos, fn string, guarded bool) {
	if cell == "" {
		return
	}
	st.ops = append(st.ops, chanOp{cell: cell, kind: kind, pkg: pkg, pos: pos, fn: fn, guarded: guarded})
}

// scanFunc records every channel event in one declaration (closures folded).
func (st *chanState) scanFunc(pkg *Package, fd *ast.FuncDecl, fnID string) {
	info := pkg.Info

	// Parameter cells: a channel parameter unifies with the cross-function
	// "param:fn#i" cell that call sites also join their argument cells to.
	if fd.Type.Params != nil {
		idx := 0
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && isChanType(obj.Type()) {
					st.union(st.cellOf(pkg, fnID, name), fmt.Sprintf("param:%s#%d", fnID, idx))
				}
				idx++
			}
		}
	}

	// Closes inside sync.Once.Do(func(){ ... }) are once-guarded.
	guardedClose := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Do" || typeName(recvTypeOf(fn)) != "Once" {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && builtinName(info, c) == "close" {
				guardedClose[c] = true
			}
			return true
		})
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					st.bindAssign(pkg, fnID, n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					st.bindAssign(pkg, fnID, name, n.Values[i])
				}
			}
		case *ast.CompositeLit:
			// Struct literal installing channels into fields:
			// &Server{reqs: make(chan request, n)}.
			named := namedOf(info.TypeOf(n))
			if named == nil {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !isChanType(info.TypeOf(kv.Value)) {
					continue
				}
				st.bindAssignCell(pkg, fnID, "field:"+qualifiedTypeName(named)+"."+key.Name, kv.Value)
			}
		case *ast.SendStmt:
			st.record(st.cellOf(pkg, fnID, n.Chan), chanSend, pkg, n.Pos(), fnID, false)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				st.record(st.cellOf(pkg, fnID, n.X), chanRecv, pkg, n.Pos(), fnID, false)
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if isChanType(t) {
				st.record(st.cellOf(pkg, fnID, n.X), chanRecv, pkg, n.Pos(), fnID, false)
				return true
			}
			// Ranging over a map/slice of channels binds the value variable
			// to the container's element cell.
			if containerChanElem(t) != nil && n.Value != nil {
				base := st.cellOf(pkg, fnID, n.X)
				if base != "" {
					st.union(st.cellOf(pkg, fnID, n.Value), base+"[]")
				}
			}
		case *ast.CallExpr:
			switch builtinName(info, n) {
			case "close":
				if len(n.Args) == 1 {
					st.record(st.cellOf(pkg, fnID, n.Args[0]), chanClose, pkg, n.Pos(), fnID, guardedClose[n])
				}
				return true
			case "":
				// Not a builtin: fall through to argument tracking.
			default:
				return true // make/len/cap/...: no channel flow through args
			}
			if isConversion(info, n) {
				return true
			}
			fn := calleeFunc(info, n)
			for i, a := range n.Args {
				if !isChanType(info.TypeOf(a)) {
					continue
				}
				ac := st.cellOf(pkg, fnID, a)
				if ac == "" {
					continue
				}
				if fn != nil {
					if id := funcID(fn); st.decls[id] {
						st.union(ac, fmt.Sprintf("param:%s#%d", id, i))
						continue
					}
				}
				// Handed to code outside the module (signal.Notify, a stored
				// callback, an interface method): receives may happen there.
				st.escaped[ac] = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isChanType(info.TypeOf(r)) {
					st.union(st.cellOf(pkg, fnID, r), "ret:"+fnID)
				}
			}
		}
		return true
	})
}

// bindAssign wires one lhs = rhs pair of channel type.
func (st *chanState) bindAssign(pkg *Package, fnID string, lhs, rhs ast.Expr) {
	if !isChanType(pkg.Info.TypeOf(ast.Unparen(rhs))) {
		return
	}
	st.bindAssignCell(pkg, fnID, st.cellOf(pkg, fnID, lhs), rhs)
}

// bindAssignCell wires an already-resolved destination cell to an rhs: a
// make() is the cell's creation site, a module call result joins the callee's
// ret cell, an external call result is an escape (unknown peer), and any
// other expression unifies the two cells.
func (st *chanState) bindAssignCell(pkg *Package, fnID, lc string, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if builtinName(pkg.Info, call) == "make" {
			st.record(lc, chanMake, pkg, call.Pos(), fnID, false)
			return
		}
		if isConversion(pkg.Info, call) {
			if len(call.Args) == 1 {
				st.union(lc, st.cellOf(pkg, fnID, call.Args[0]))
			}
			return
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil {
			if id := funcID(fn); st.decls[id] {
				st.union(lc, "ret:"+id)
				return
			}
		}
		if lc != "" {
			// A channel minted outside the module (time.After, ...): its
			// peers are invisible to us.
			st.escaped[lc] = true
		}
		return
	}
	st.union(lc, st.cellOf(pkg, fnID, rhs))
}

// chanAgg is the module-wide event aggregation of one unified cell class.
type chanAgg struct {
	makes, sends, recvs []chanOp
	closes              []chanOp
	sendFns, makeFns    map[string]bool
	escaped             bool
}

// checkLifecycle applies rules 1–3 over the aggregated cells.
func (st *chanState) checkLifecycle() {
	agg := make(map[string]*chanAgg)
	get := func(cell string) *chanAgg {
		k := st.find(cell)
		a := agg[k]
		if a == nil {
			a = &chanAgg{sendFns: make(map[string]bool), makeFns: make(map[string]bool)}
			agg[k] = a
		}
		return a
	}
	for _, op := range st.ops {
		a := get(op.cell)
		switch op.kind {
		case chanMake:
			a.makes = append(a.makes, op)
			a.makeFns[op.fn] = true
		case chanSend:
			a.sends = append(a.sends, op)
			a.sendFns[op.fn] = true
		case chanRecv:
			a.recvs = append(a.recvs, op)
		case chanClose:
			a.closes = append(a.closes, op)
		}
	}
	for cell := range st.escaped {
		get(cell).escaped = true
	}

	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := agg[k]
		name := cellDisplay(k)

		// Rule 1: sends with no receiver anywhere.
		if len(a.sends) > 0 && len(a.recvs) == 0 && len(a.makes) > 0 && !a.escaped {
			for _, op := range a.sends {
				st.mp.Reportf(op.pkg, op.pos,
					"send on channel %s, which is never received from anywhere in the module: the send can only block forever or leak", name)
			}
		}

		// Rule 2: close on the receive side while others send.
		if len(a.sendFns) > 0 && len(a.makes) > 0 {
			for _, op := range a.closes {
				if a.sendFns[op.fn] || a.makeFns[op.fn] {
					continue
				}
				st.mp.Reportf(op.pkg, op.pos,
					"channel %s is closed by %s, which never sends on it: close belongs to the sending side (a receive-side close races senders into a send-on-closed panic)",
					name, op.fn)
			}
		}

		// Rule 3: multiple unguarded closes.
		var unguarded []chanOp
		for _, op := range a.closes {
			if !op.guarded {
				unguarded = append(unguarded, op)
			}
		}
		if len(unguarded) >= 2 {
			for _, op := range unguarded {
				st.mp.Reportf(op.pkg, op.pos,
					"channel %s has %d close sites not guarded by sync.Once.Do (double-close panic risk): close from a single owner or guard with a Once",
					name, len(unguarded))
			}
		}
	}
}

// recvTypeOf returns the receiver type of a method, or nil.
func recvTypeOf(fn *types.Func) types.Type {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return sig.Recv().Type()
	}
	return nil
}

// checkBlockingUnderLock runs rule 4 over one function body and its closures:
// the lockorder-style held-set dataflow, flagging blocking channel operations
// at nodes where the set is non-empty. A send or receive that is the
// communication of a select with a default case cannot block and is exempt.
func checkBlockingUnderLock(mp *ModulePass, pkg *Package, body *ast.BlockStmt) {
	// Communication statements of selects that have a default case.
	nonBlocking := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				nonBlocking[cc.Comm] = true
			}
		}
		return true
	})

	main, lits := FuncCFGs(body)
	cfgs := []*CFG{main}
	litKeys := make([]*ast.FuncLit, 0, len(lits))
	for fl := range lits {
		litKeys = append(litKeys, fl)
	}
	sort.Slice(litKeys, func(i, j int) bool { return litKeys[i].Pos() < litKeys[j].Pos() })
	for _, fl := range litKeys {
		cfgs = append(cfgs, lits[fl])
	}
	// The edge map deduplicates reports across solver iterations (held sets
	// only grow, so the first non-empty visit is representative).
	reported := make(map[token.Pos]bool)
	for _, cfg := range cfgs {
		Solve(cfg, FlowProblem{
			Entry: lockSet{},
			Join:  joinLockSets,
			Transfer: func(b *Block, in Fact) Fact {
				held := in.(lockSet)
				for _, n := range b.Nodes {
					held = blockingTransfer(mp, pkg, n, held, nonBlocking, reported)
				}
				return held
			},
		})
	}
}

// blockingTransfer flags the node's blocking channel ops under the current
// held set, then applies its lock events (mirroring lockorder.transferNode).
func blockingTransfer(mp *ModulePass, pkg *Package, node ast.Node, held lockSet, nonBlocking map[ast.Node]bool, reported map[token.Pos]bool) lockSet {
	report := func(pos token.Pos, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		mp.Reportf(pkg, pos,
			"blocking channel %s while holding mutex %s: the channel may stay unready indefinitely, extending the critical section into a deadlock vector",
			what, strings.Join(held.keys, ", "))
	}
	if len(held.keys) > 0 && !nonBlocking[node] {
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false // separate execution context
			case *ast.SendStmt:
				report(n.Arrow, "send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.OpPos, "receive")
				}
			}
			return true
		})
	}

	var deferred *ast.CallExpr
	if ds, ok := node.(*ast.DeferStmt); ok {
		deferred = ds.Call
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, n)
			if fn == nil {
				return true
			}
			switch mutexMethodKind(fn) {
			case lockAcquire:
				if n == deferred {
					return true
				}
				if key := lockKeyOf(pkg, n); key != "" {
					held = held.with(key)
				}
			case lockRelease:
				if n == deferred {
					return true
				}
				if key := lockKeyOf(pkg, n); key != "" {
					held = held.without(key)
				}
			}
		}
		return true
	})
	return held
}
