package analysis

// baseline.go implements the accepted-findings file that turns allochot from
// a report into a ratchet: the checked-in lint/allochot.baseline lists every
// known hot-path allocation site, the driver subtracts it, and CI fails only
// on sites not in the file. The format is deliberately boring — a fixed
// header, then one sorted `path:line:col: check: message` entry per finding
// with module-relative slash paths and no timestamps — so regenerating it on
// an unchanged tree is byte-identical and diffs stay reviewable.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baselineHeader precedes the entries; lines starting with '#' and blank
// lines are ignored when parsing.
const baselineHeader = `# srb-lint accepted findings.
# One "path:line:col: check: message" per line, sorted; paths are
# module-relative with forward slashes. Regenerate with:
#   go run ./cmd/srb-lint -checks allochot -write-baseline lint/allochot.baseline ./...
`

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	File  string // module-relative, forward slashes
	Line  int
	Col   int
	Check string
	Msg   string
}

// Key is the match identity: file, line, column, check and message. Line
// numbers shifting invalidates entries by design — the baseline is
// regenerated alongside the edit that moves the code.
func (e BaselineEntry) Key() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", e.File, e.Line, e.Col, e.Check, e.Msg)
}

// BaselineEntryOf converts a diagnostic to its baseline form, relativizing
// the file path against the module directory.
func BaselineEntryOf(moduleDir string, d Diagnostic) BaselineEntry {
	return BaselineEntry{
		File:  relPath(moduleDir, d.Pos.Filename),
		Line:  d.Pos.Line,
		Col:   d.Pos.Column,
		Check: d.Analyzer,
		Msg:   d.Message,
	}
}

// relPath makes filename module-relative with forward slashes; paths outside
// the module (or unrelatable) pass through slash-converted.
func relPath(moduleDir, filename string) string {
	if moduleDir != "" {
		if rel, err := filepath.Rel(moduleDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// FormatBaseline renders diagnostics as baseline file contents: header plus
// sorted entries. Suppressed findings are excluded — an allow comment already
// accepts them. Output is deterministic for a fixed set of findings.
func FormatBaseline(moduleDir string, diags []Diagnostic) string {
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		lines = append(lines, BaselineEntryOf(moduleDir, d).Key())
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString(baselineHeader)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseBaseline reads baseline entries, ignoring comments and blank lines.
func ParseBaseline(r io.Reader) (map[string]bool, error) {
	accepted := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Minimal shape check: path:line:col: check: message.
		if strings.Count(line, ":") < 4 {
			return nil, fmt.Errorf("baseline line %d: malformed entry %q", lineNo, line)
		}
		accepted[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return accepted, nil
}

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	defer f.Close()
	return ParseBaseline(f)
}

// ApplyBaseline marks diagnostics whose baseline key is accepted as
// suppressed, returning how many it matched.
func ApplyBaseline(moduleDir string, accepted map[string]bool, diags []Diagnostic) int {
	n := 0
	for i := range diags {
		if diags[i].Suppressed {
			continue
		}
		if accepted[BaselineEntryOf(moduleDir, diags[i]).Key()] {
			diags[i].Suppressed = true
			n++
		}
	}
	return n
}
