package analysis

import (
	"strings"
	"testing"
)

// The distunits fixtures live under an internal/geom path so the fixture's
// own Dist/Dist2 signatures are recognized as the unit sources.
const distFixturePrelude = `package geom

import "math"

type Point struct{ X, Y float64 }

func Dist(a, b Point) float64 {
	return math.Sqrt(Dist2(a, b))
}

func Dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
`

func TestDistUnitsComparison(t *testing.T) {
	pkg := loadSource(t, "srb/internal/geom", distFixturePrelude+`
func bad(a, b, c Point) bool {
	d := Dist(a, b)
	d2 := Dist2(a, c)
	return d < d2
}

func sqrtFix(a, b, c Point) bool {
	d := Dist(a, b)
	d2 := Dist2(a, c)
	return d < math.Sqrt(d2)
}

func squareFix(a, b, c Point) bool {
	d := Dist(a, b)
	d2 := Dist2(a, c)
	return d*d < d2
}
`)
	diags := RunPackage(pkg, []*Analyzer{DistUnits})
	wantLines(t, diags, []int{19}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "comparison mixes distance and squared distance") {
		t.Errorf("message %q should name both units", diags[0].Message)
	}
}

func TestDistUnitsRadius(t *testing.T) {
	// The within-distance shape: radius parameters are distances, so testing
	// them against Dist2 without squaring is the bug.
	pkg := loadSource(t, "srb/internal/geom", distFixturePrelude+`
func badWithin(center, p Point, radius float64) bool {
	return Dist2(center, p) <= radius
}

func goodWithin(center, p Point, radius float64) bool {
	return Dist2(center, p) <= radius*radius
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{DistUnits}), []int{17}, nil)
}

func TestDistUnitsArithmeticAndJoin(t *testing.T) {
	pkg := loadSource(t, "srb/internal/geom", distFixturePrelude+`
func addMix(a, b, c Point) float64 {
	d := Dist(a, b)
	d2 := Dist2(a, c)
	return d + d2
}

func mixedJoin(cond bool, a, b, c Point) bool {
	x := Dist(a, b)
	if cond {
		x = Dist2(a, c)
	}
	// x is mixed here, not definitely one unit: no report.
	return x < Dist(a, c)
}

func sameUnit(a, b, c Point) float64 {
	return Dist(a, b) + Dist(b, c)
}
`)
	diags := RunPackage(pkg, []*Analyzer{DistUnits})
	wantLines(t, diags, []int{19}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "arithmetic mixes") {
		t.Errorf("message %q should describe the arithmetic mix", diags[0].Message)
	}
}

func TestDistUnitsHeapKeyConflict(t *testing.T) {
	// The min-heap-ordering bug: one enqueue site keys the heap entry with a
	// distance, another with a squared distance.
	pkg := loadSource(t, "srb/internal/geom", distFixturePrelude+`
type heapEntry struct {
	id  uint64
	key float64
}

func enqueue(a, b, c Point) []heapEntry {
	e1 := heapEntry{id: 1, key: Dist(a, b)}
	e2 := heapEntry{id: 2, key: Dist2(a, c)}
	return []heapEntry{e1, e2}
}
`)
	diags := RunPackage(pkg, []*Analyzer{DistUnits})
	wantLines(t, diags, []int{23}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "field key is assigned") {
		t.Errorf("message %q should name the conflicted field", diags[0].Message)
	}
}

func TestDistUnitsSuppressed(t *testing.T) {
	pkg := loadSource(t, "srb/internal/geom", distFixturePrelude+`
func deliberate(a, b, c Point) bool {
	d := Dist(a, b)
	d2 := Dist2(a, c)
	//lint:allow distunits fixture: cross-unit compare under test
	return d < d2
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{DistUnits}), nil, []int{20})
}
