package analysis

import (
	"go/ast"
	"go/types"
)

// funcDecls indexes the package's function and method declarations by their
// types.Func object, so analyzers can chase same-package calls.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// calleeFunc resolves the called function object of a call expression, if it
// is a statically known func or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// builtinName returns the name of the builtin a call invokes ("append",
// "make", "delete", ...), or "" for anything else. Builtins resolve to
// *types.Builtin, not *types.Func, so calleeFunc misses them.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// recvIdent returns the receiver identifier of a method declaration, nil for
// plain functions or anonymous receivers.
func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// namedOf unwraps pointers and returns the named type of t, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeName returns the declared name of the (possibly pointer-wrapped) named
// type of t, or "".
func typeName(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// isExported reports whether a function declaration is callable from outside
// the package: an exported function, or an exported method on an exported
// named receiver type.
func isExported(pass *Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.Info.TypeOf(fd.Recv.List[0].Type)
	n := namedOf(t)
	return n != nil && n.Obj().Exported()
}

// containsRecover reports whether the AST node contains a call to the
// built-in recover.
func containsRecover(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
