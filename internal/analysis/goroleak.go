package analysis

// goroleak.go upgrades the AST-level bareGoroutine check to a flow-sensitive
// termination analysis: every goroutine started in the long-running process
// surfaces — cmd/, internal/remote, internal/parallel — must have an exit
// path gated by a shutdown signal. BareGoroutine proves a goroutine is
// *observable* (panic recovery or lifecycle tracking); goroleak proves it is
// *stoppable*: an infinite loop inside one must have a reachable exit whose
// governing condition involves a channel receive (done-channel or select
// case), a context (ctx.Done()/ctx.Err()), or an error check (the
// connection-close gate of the read loops).
//
// The suspect shape is `for { ... }` with no condition. Loops with a
// condition and ranges are assumed bounded by their iteration clause (a
// range over a channel ends when the channel closes). An exit is a return,
// a break reaching the loop, or a terminal call (panic, os.Exit); it is
// *gated* when some enclosing if-condition mentions a receive expression, an
// error-typed comparison, or a Done()/Err() call — or when it sits in the
// body of a select communication clause. A counter-gated exit
// (`if i >= n { return }`) is deliberately NOT accepted: it proves the loop
// bounded only if the counter is, which this analysis cannot see — annotate
// such loops with //lint:allow goroleak and say why.
//
// Ungated loops propagate bottom-up over the call graph, so `go s.run()` is
// checked against run's body and everything run calls. Loops inside nested
// `go` statements belong to the nested goroutine and are checked at its own
// go site, not the spawner's summary.
//
// Known imprecision (DESIGN.md §13): gates are recognized syntactically
// (a boolean derived from a receive two statements earlier is missed);
// closures called through stored function values contribute no summary;
// callee summaries fold closures in, over-approximating loops that the
// callee only runs conditionally.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak proves every goroutine in cmd/, internal/remote and
// internal/parallel has a gated exit path.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "flags goroutines in cmd/, internal/remote and internal/parallel whose infinite loops have no channel/context/error-gated exit",
	RunModule: runGoroLeak,
}

// goroLeakProtected matches the long-running process surfaces.
func goroLeakProtected(path, moduleName string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") {
		return true
	}
	return protectedPkg(path, moduleName, []string{"internal/remote", "internal/parallel"}) &&
		path != moduleName // the root package is not a goroutine surface
}

func runGoroLeak(mp *ModulePass) {
	st := ipaFor(mp.Pkgs)
	moduleName := moduleNameOf(mp.Pkgs)

	// Bottom-up loop summaries: witness[id] is the position of one ungated
	// infinite loop reachable from id (its own body first, else a callee's).
	witness := make(map[string]token.Position)
	for _, comp := range st.cg.Comps {
		for _, id := range comp {
			node := st.cg.Nodes[id]
			if node == nil {
				continue
			}
			if loops := ungatedLoops(node.Pkg.Info, node.Decl.Body); len(loops) > 0 {
				witness[id] = node.Pkg.Fset.Position(loops[0])
			}
		}
		for changed := true; changed; {
			changed = false
			for _, id := range comp {
				node := st.cg.Nodes[id]
				if node == nil {
					continue
				}
				if _, ok := witness[id]; ok {
					continue
				}
				for _, callee := range node.Callees {
					if w, ok := witness[callee]; ok {
						witness[id] = w
						changed = true
						break
					}
				}
			}
		}
	}

	for _, pkg := range mp.Pkgs {
		if !goroLeakProtected(pkg.Path, moduleName) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(mp, st, pkg, gs, witness)
				return true
			})
		}
	}
}

// checkGoStmt verifies one go statement: its literal body's own loops, then
// the summaries of everything the body (or the named callee) calls.
func checkGoStmt(mp *ModulePass, st *ipa, pkg *Package, gs *ast.GoStmt, witness map[string]token.Position) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if loops := ungatedLoops(pkg.Info, lit.Body); len(loops) > 0 {
			p := pkg.Fset.Position(loops[0])
			mp.Reportf(pkg, gs.Pos(),
				"goroutine runs an infinite loop (line %d) with no exit gated by a channel receive, context, or error check: it cannot be shut down", p.Line)
			return
		}
		reportLoopingCallees(mp, st, pkg, gs, lit.Body, witness)
		return
	}
	fn := calleeFunc(pkg.Info, gs.Call)
	if fn == nil {
		return // body out of view; bareGoroutine already flags this
	}
	id := funcID(fn)
	if w, ok := witness[id]; ok {
		mp.Reportf(pkg, gs.Pos(),
			"goroutine calls %s, which can run an infinite loop (%s:%d) with no exit gated by a channel receive, context, or error check: it cannot be shut down",
			id, w.Filename, w.Line)
	}
}

// reportLoopingCallees flags module calls inside a goroutine literal whose
// summaries carry an ungated loop.
func reportLoopingCallees(mp *ModulePass, st *ipa, pkg *Package, gs *ast.GoStmt, body *ast.BlockStmt, witness map[string]token.Position) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // a nested goroutine is checked at its own site
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil {
			return true
		}
		id := funcID(fn)
		if w, ok := witness[id]; ok {
			mp.Reportf(pkg, gs.Pos(),
				"goroutine calls %s, which can run an infinite loop (%s:%d) with no exit gated by a channel receive, context, or error check: it cannot be shut down",
				id, w.Filename, w.Line)
			return false
		}
		return true
	})
}

// ungatedLoops returns the positions of condition-less for loops in the body
// with no gated exit. Loops inside nested go statements are excluded (they
// run in a different goroutine); loops inside non-go closures are folded in,
// like everywhere else in the interprocedural layer.
func ungatedLoops(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if !loopHasGatedExit(info, fs) {
			out = append(out, fs.Pos())
		}
		return true // nested loops are judged on their own
	})
	return out
}

// loopHasGatedExit walks the loop body looking for a return, loop-reaching
// break, or terminal call whose enclosing condition chain includes an
// accepted gate.
func loopHasGatedExit(info *types.Info, loop *ast.ForStmt) bool {
	found := false
	var visit func(s ast.Stmt, gates int, breakCaptured bool)
	exit := func(gates int) {
		if gates > 0 {
			found = true
		}
	}
	visit = func(s ast.Stmt, gates int, breakCaptured bool) {
		if s == nil || found {
			return
		}
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, st := range s.List {
				visit(st, gates, breakCaptured)
			}
		case *ast.LabeledStmt:
			visit(s.Stmt, gates, breakCaptured)
		case *ast.IfStmt:
			g := gates
			if gatedCond(info, s.Cond) {
				g++
			}
			visit(s.Body, g, breakCaptured)
			visit(s.Else, g, breakCaptured)
		case *ast.ForStmt:
			visit(s.Body, gates, true)
		case *ast.RangeStmt:
			visit(s.Body, gates, true)
		case *ast.SwitchStmt:
			visit(s.Body, gates, true)
		case *ast.TypeSwitchStmt:
			visit(s.Body, gates, true)
		case *ast.CaseClause:
			for _, st := range s.Body {
				visit(st, gates, breakCaptured)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				g := gates
				if cc.Comm != nil {
					g++ // a ready communication is itself the gate
				}
				for _, st := range cc.Body {
					visit(st, g, true)
				}
			}
		case *ast.ReturnStmt:
			exit(gates)
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if s.Label != nil || !breakCaptured {
					exit(gates)
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(call) {
				exit(gates)
			}
		}
		// GoStmt, DeferStmt, FuncLit bodies: different execution context.
	}
	visit(loop.Body, 0, false)
	return found
}

// gatedCond reports whether a condition expression involves an accepted
// shutdown signal: a channel receive, an error-typed comparison operand, or
// a no-argument Done()/Err() call (the context idiom).
func gatedCond(info *types.Info, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	gated := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				gated = true
				return false
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isErrorType(info.TypeOf(n.X)) || isErrorType(info.TypeOf(n.Y)) {
					gated = true
					return false
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && len(n.Args) == 0 {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
					gated = true
					return false
				}
			}
		}
		return true
	})
	return gated
}

// isErrorType reports whether t is the built-in error interface (or an
// interface embedding it under the same name).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Error" {
			return true
		}
	}
	return false
}
