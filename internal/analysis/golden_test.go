package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the golden gate: the full analyzer suite over the whole
// module must produce zero unsuppressed findings. Every deliberate exact
// comparison, read-only slice view and ownership transfer in the repo carries
// a //lint:allow annotation stating why, so any new finding is a regression —
// either a real bug or a missing justification.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Expand(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("expected the module to expand to at least 10 packages, got %d: %v", len(paths), paths)
	}
	suppressed := 0
	for _, path := range paths {
		pkgs, err := loader.LoadForAnalysis(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		for _, pkg := range pkgs {
			for _, d := range RunPackage(pkg, All()) {
				if d.Suppressed {
					suppressed++
					continue
				}
				t.Errorf("unsuppressed finding: %s", d)
			}
		}
	}
	if suppressed == 0 {
		t.Error("expected at least one suppressed finding (the repo carries //lint:allow annotations); suppression matching may be broken")
	}
}
