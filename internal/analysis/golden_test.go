package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the golden gate: the full analyzer suite over the whole
// module must produce zero unsuppressed findings. Every deliberate exact
// comparison, read-only slice view, ownership transfer and unbounded receive
// loop in the repo carries a //lint:allow annotation stating why, so any new
// finding is a regression — either a real bug or a missing justification.
//
// All packages are loaded before running, mirroring cmd/srb-lint: the
// module-scope lockorder analyzer needs the whole call graph to certify the
// lock-acquisition order acyclic.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Expand(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("expected the module to expand to at least 10 packages, got %d: %v", len(paths), paths)
	}
	var all []*Package
	for _, path := range paths {
		pkgs, err := loader.LoadForAnalysis(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		all = append(all, pkgs...)
	}
	suppressedByCheck := make(map[string]int)
	for _, d := range Run(all, All()) {
		if d.Suppressed {
			suppressedByCheck[d.Analyzer]++
			continue
		}
		t.Errorf("unsuppressed finding: %s", d)
	}
	if len(suppressedByCheck) == 0 {
		t.Error("expected at least one suppressed finding (the repo carries //lint:allow annotations); suppression matching may be broken")
	}
	// The v2 triage annotated the deliberately-unbounded receive loops; if
	// those suppressions stop matching, the deadline gate is not running.
	if suppressedByCheck["ctxdeadline"] == 0 {
		t.Error("expected suppressed ctxdeadline findings on the long-lived receive loops")
	}
}
