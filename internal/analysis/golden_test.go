package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the golden gate: the full analyzer suite over the whole
// module, minus the checked-in allochot baseline, must produce zero
// unsuppressed findings. Every deliberate exact comparison, read-only slice
// view, ownership transfer, unbounded receive loop and wall-clock read in the
// repo carries a //lint:allow annotation stating why, and every known
// hot-path allocation site is listed in lint/allochot.baseline, so any new
// finding is a regression — either a real bug or a missing justification.
//
// All packages are loaded before running, mirroring cmd/srb-lint: the
// module-scope analyzers (lockorder and the interprocedural v3 suite) need
// the whole module in one pass.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Expand(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("expected the module to expand to at least 10 packages, got %d: %v", len(paths), paths)
	}
	var all []*Package
	for _, path := range paths {
		pkgs, err := loader.LoadForAnalysis(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		all = append(all, pkgs...)
	}
	if want := len(All()); want < 17 {
		t.Fatalf("expected the suite to carry at least 17 analyzers, got %d", want)
	}
	diags := Run(all, All())

	// The checked-in allochot baseline is part of the gate: it must absorb
	// exactly the current hot-path allocation inventory, and regenerating it
	// must be byte-identical to the committed file (acceptance criterion).
	baselinePath := filepath.Join(root, "lint", "allochot.baseline")
	accepted, err := LoadBaseline(baselinePath)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(accepted) == 0 {
		t.Fatalf("empty or missing %s; regenerate with: go run ./cmd/srb-lint -checks allochot -write-baseline lint/allochot.baseline ./...", baselinePath)
	}
	var allocDiags []Diagnostic
	for _, d := range diags {
		if d.Analyzer == AllocHot.Name {
			allocDiags = append(allocDiags, d)
		}
	}
	want, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatBaseline(root, allocDiags); got != string(want) {
		t.Errorf("lint/allochot.baseline is stale: regenerate with: go run ./cmd/srb-lint -checks allochot -write-baseline lint/allochot.baseline ./...")
	}
	ApplyBaseline(root, accepted, diags)

	suppressedByCheck := make(map[string]int)
	for _, d := range diags {
		if d.Suppressed {
			suppressedByCheck[d.Analyzer]++
			continue
		}
		t.Errorf("unsuppressed finding: %s", d)
	}
	if len(suppressedByCheck) == 0 {
		t.Error("expected at least one suppressed finding (the repo carries //lint:allow annotations); suppression matching may be broken")
	}
	// The v2 triage annotated the deliberately-unbounded receive loops; if
	// those suppressions stop matching, the deadline gate is not running.
	if suppressedByCheck["ctxdeadline"] == 0 {
		t.Error("expected suppressed ctxdeadline findings on the long-lived receive loops")
	}
	// The v3 triage annotated the deliberate wall-clock reads in the
	// observability layer and accepted the hot-path allocation inventory; if
	// either count drops to zero, the interprocedural layer is not running.
	if suppressedByCheck["wallclock"] == 0 {
		t.Error("expected suppressed wallclock findings on the annotated instrumentation sites")
	}
	if suppressedByCheck["allochot"] == 0 {
		t.Error("expected baseline-suppressed allochot findings on the hot-path allocation inventory")
	}
	// The v4 triage annotated the contract checks' deliberate exceptions: the
	// reconnect-era receive-side close of the round-trip waiters (chanlife),
	// the counter-gated parallel workers and the event loop's bounded
	// worklist drain (goroleak), and the dispatch switches whose missing
	// kinds are consumed earlier on the frame path (protodrift). A zero count
	// means that contract check is not running.
	for _, check := range []string{"chanlife", "goroleak", "protodrift"} {
		if suppressedByCheck[check] == 0 {
			t.Errorf("expected suppressed %s findings on the annotated contract-exception sites", check)
		}
	}
}
