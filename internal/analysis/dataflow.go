package analysis

// dataflow.go is a small forward worklist solver over a CFG. Each analyzer
// supplies its own lattice: an entry fact, a join, and a transfer function
// mapping a block's entry fact through its nodes to its exit fact.
//
// Facts are treated as immutable values: Transfer and Join must return fresh
// facts rather than mutating their inputs, because the solver re-reads stored
// facts across iterations. Lattices must have finite height (every analyzer
// here tracks finite sets over the function's identifiers), which bounds the
// iteration.

// Fact is one dataflow value.
type Fact interface {
	// Equal reports whether two facts are identical; the solver stops
	// propagating along an edge when the joined fact equals the stored one.
	Equal(Fact) bool
}

// FlowProblem is one forward dataflow instance.
type FlowProblem struct {
	// Entry is the fact at the function entry.
	Entry Fact
	// Join merges the facts of two predecessors.
	Join func(a, b Fact) Fact
	// Transfer maps a block's entry fact to its exit fact.
	Transfer func(b *Block, in Fact) Fact
}

// Solve iterates the problem to a fixpoint and returns the entry fact of
// every block reachable from cfg.Entry (unreachable blocks are absent).
func Solve(cfg *CFG, p FlowProblem) map[*Block]Fact {
	in := map[*Block]Fact{cfg.Entry: p.Entry}
	work := []*Block{cfg.Entry}
	queued := map[*Block]bool{cfg.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := p.Transfer(b, in[b])
		for _, s := range b.Succs {
			next := out
			if cur, ok := in[s]; ok {
				next = p.Join(cur, out)
				if next.Equal(cur) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
