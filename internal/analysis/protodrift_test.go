package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// Exhaustiveness over doc-comment subgroups of the wire const block: a
// dispatch switch mentioning two of a direction's three types must mention
// the third; a default clause does not count, but an unambiguous raw string
// literal does; a switch over the other direction is judged only against
// that direction's members.
func TestProtoDriftDispatchExhaustiveness(t *testing.T) {
	pkgs := loadModuleSource(t, []fixturePkg{
		{path: "srb/internal/wire", src: `package wire

// Message types.
const (
	// Client → server.
	THello  = "hello"
	TUpdate = "update"
	TBye    = "bye"
	// Server → client.
	TPing = "ping"
	TPong = "pong"
)
`},
		{path: "srb/internal/remote", src: `package remote

import "srb/internal/wire"

func produce() []string {
	return []string{wire.THello, wire.TUpdate, wire.TBye, wire.TPing, wire.TPong}
}

func incomplete(t string) int {
	switch t {
	case wire.THello:
		return 1
	case wire.TUpdate:
		return 2
	default:
		return 0
	}
}

func rawLiteral(t string) int {
	switch t {
	case wire.THello:
		return 1
	case wire.TUpdate:
		return 2
	case "bye":
		return 3
	}
	return 0
}

func otherDirection(t string) bool {
	switch t {
	case wire.TPing:
		return true
	case wire.TPong:
		return false
	}
	return false
}

func suppressed(t string) int {
	switch t { //lint:allow protodrift TBye handled by the session teardown path
	case wire.THello:
		return 1
	case wire.TUpdate:
		return 2
	}
	return 0
}
`},
	})
	// fixture1 line 10: incomplete misses TBye. rawLiteral's "bye" case and
	// otherDirection's full Server → client coverage are clean; the annotated
	// switch is suppressed.
	wantLines(t, Run(pkgs, []*Analyzer{ProtoDrift}), []int{10}, []int{43})
}

// Dead kinds: a member of an actively-dispatched subgroup that every use
// merely compares or switches on — nothing produces it.
func TestProtoDriftDeadKind(t *testing.T) {
	pkgs := loadModuleSource(t, []fixturePkg{
		{path: "srb/internal/wire", src: `package wire

// Server → client frames.
const (
	TPing = "ping"
	TPong = "pong"
)
`},
		{path: "srb/internal/remote", src: `package remote

import "srb/internal/wire"

func producePing() string { return wire.TPing }

func dispatch(t string) bool {
	switch t {
	case wire.TPing:
		return true
	case wire.TPong:
		return false
	}
	return false
}
`},
	})
	// TPong (fixture0 line 6) is dispatched on but never produced.
	wantLines(t, Run(pkgs, []*Analyzer{ProtoDrift}), []int{6}, nil)
}

// The seeded drift fixture from the issue: a journal kind added to the
// writer without a replay case fails the gate.
func TestProtoDriftJournalKindWriterWithoutReplayer(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

// Journal query kinds.
const (
	KindRange = "range"
	KindCount = "count"
	KindKNN   = "knn"
)

type Entry struct{ Kind string }

func write(k string) Entry { return Entry{Kind: k} }

func WriteAll() []Entry {
	return []Entry{write(KindRange), write(KindCount), write(KindKNN)}
}

func Replay(e Entry) int {
	switch e.Kind {
	case KindRange:
		return 1
	case KindCount:
		return 2
	default:
		return 0
	}
}
`)
	// The replay switch (line 19) misses KindKNN even though WriteAll
	// journals it: exactly the drift protodrift exists to catch.
	wantLines(t, RunPackage(pkg, []*Analyzer{ProtoDrift}), []int{19}, nil)
}

// Const blocks outside the protocol packages, and blocks that are not string
// sets, contribute nothing.
func TestProtoDriftScope(t *testing.T) {
	pkg := loadSource(t, "srb/internal/query", `package query

const (
	KindA = "a"
	KindB = "b"
)

func dispatch(k string) int {
	switch k {
	case KindA:
		return 1
	}
	return 0
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{ProtoDrift}), nil, nil)
}

// FuzzProtoDriftExtract feeds arbitrary parseable const declarations to the
// subgroup extractor and asserts the structural invariants: extraction never
// panics, every emitted subgroup is non-empty with a non-empty label, member
// keys are unique across the result, and a second extraction over the same
// package is identical (the determinism the golden gate depends on).
func FuzzProtoDriftExtract(f *testing.F) {
	seeds := []string{
		"const (\n\tA = \"a\"\n\tB = \"b\"\n)",
		"// Doc.\nconst (\n\t// First group.\n\tA = \"a\"\n\tB = \"b\"\n\t// Second group.\n\tC = \"c\"\n)",
		"const (\n\tA = iota\n\tB\n)",
		"const A, B = \"a\", \"b\"",
		"const (\n\tA = \"a\"\n)",
		"const (\n\tA string = \"a\"\n\tB        = A\n\tC        = \"c\" + \"d\"\n)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, decls string) {
		src := "package p\n\n" + decls + "\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		}
		// No importer: fuzz inputs that import anything are skipped, which
		// keeps the target fast and hermetic.
		conf := types.Config{Error: func(error) {}}
		tp, err := conf.Check("srb/internal/wire", fset, []*ast.File{file}, info)
		if err != nil {
			t.Skip()
		}
		pkg := &Package{Path: "srb/internal/wire", Fset: fset, Files: []*ast.File{file}, Types: tp, Info: info}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("extractProtoSubgroups panicked: %v\ninput:\n%s", r, decls)
			}
		}()
		subs := extractProtoSubgroups(pkg)
		seen := make(map[string]bool)
		for _, sub := range subs {
			if len(sub.members) == 0 {
				t.Fatalf("empty subgroup %q\ninput:\n%s", sub.label, decls)
			}
			if sub.label == "" {
				t.Fatalf("subgroup with empty label\ninput:\n%s", decls)
			}
			for _, m := range sub.members {
				if seen[m.key] {
					t.Fatalf("duplicate member key %q\ninput:\n%s", m.key, decls)
				}
				seen[m.key] = true
			}
		}
		again := extractProtoSubgroups(pkg)
		if len(again) != len(subs) {
			t.Fatalf("non-deterministic extraction: %d then %d subgroups\ninput:\n%s", len(subs), len(again), decls)
		}
		for i := range subs {
			if subs[i].label != again[i].label || len(subs[i].members) != len(again[i].members) {
				t.Fatalf("non-deterministic subgroup %d\ninput:\n%s", i, decls)
			}
		}
	})
}
