package analysis

import "testing"

// Termination gates on goroutines in a protected package: a bare infinite
// loop and a looping named callee fire; select-comm, error-comparison and
// Done()-style gates are accepted; a counter gate is rejected by design and
// carries the allow annotation.
func TestGoroLeakGates(t *testing.T) {
	pkg := loadSource(t, "srb/internal/remote", `package remote

type R struct {
	done chan struct{}
	work chan int
}

func (r *R) Run() {
	go r.spin()
	go func() {
		for {
		}
	}()
	go func() {
		for {
			select {
			case <-r.done:
				return
			case w := <-r.work:
				_ = w
			}
		}
	}()
	go r.gated()
	go r.ctxStyle()
}

func (r *R) spin() {
	for {
	}
}

func (r *R) gated() {
	for {
		if r.poll() != nil {
			return
		}
	}
}

func (r *R) ctxStyle() {
	for {
		if r.Err() != nil {
			return
		}
	}
}

func (r *R) poll() error { return nil }

func (r *R) Err() error { return nil }

func counters(n int) {
	//lint:allow goroleak exit is counter-gated and bounded by n
	go func() {
		i := 0
		for {
			i++
			if i >= n {
				return
			}
		}
	}()
}
`)
	// Line 9: go r.spin(), flagged through spin's summary. Line 10: the
	// literal with a bare infinite loop. The select-gated, error-gated and
	// Err()-gated goroutines stay clean; the counter-gated one is suppressed.
	wantLines(t, RunPackage(pkg, []*Analyzer{GoroLeak}), []int{9, 10}, []int{55})
}

// The protected-surface scope: the same ungated loop in a package outside
// cmd/, internal/remote and internal/parallel is not goroleak's business
// (bareGoroutine still governs observability there).
func TestGoroLeakScope(t *testing.T) {
	src := `package p

func run() {
	go func() {
		for {
		}
	}()
}
`
	pkg := loadSource(t, "srb/internal/geom", src)
	wantLines(t, RunPackage(pkg, []*Analyzer{GoroLeak}), nil, nil)
	pkg = loadSource(t, "srb/cmd/srb-server", src)
	wantLines(t, RunPackage(pkg, []*Analyzer{GoroLeak}), []int{4}, nil)
}

// Transitive witness propagation: the loop sits two calls below the go
// statement, and the report names the callee actually spawned.
func TestGoroLeakTransitiveWitness(t *testing.T) {
	pkg := loadSource(t, "srb/internal/parallel", `package parallel

func Start() {
	go outer()
}

func outer() { inner() }

func inner() {
	for {
	}
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{GoroLeak}), []int{4}, nil)
}
