package analysis

import "testing"

// Mixed-discipline access: a field and a package variable updated through
// sync/atomic are flagged at every plain load or store; locals and the
// method-only typed atomics are out of scope.
func TestAtomicMix(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync/atomic"

type C struct{ n int64 }

func (c *C) inc() { atomic.AddInt64(&c.n, 1) }

func (c *C) read() int64 { return c.n } // plain load

func (c *C) reset() { c.n = 0 } // plain store

var hits int64

func bump() { atomic.AddInt64(&hits, 1) }

func total() int64 { return atomic.LoadInt64(&hits) }

func raw() int64 { return hits } // plain load of a package var

func local(n int) int64 {
	var next int64
	for i := 0; i < n; i++ {
		atomic.AddInt64(&next, 1)
	}
	return next // locals are skipped: visibility is bounded by the captures
}

type T struct{ v atomic.Int64 }

func (t *T) use() int64 {
	t.v.Add(1) // typed atomics are method-only and cannot be mixed
	return t.v.Load()
}

func snapshot(c *C) int64 {
	return c.n //lint:allow atomicmix read under the owner's lock in tests
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{AtomicMix}), []int{9, 11, 19}, []int{37})
}

// The atomic operand itself is not a plain access, even through parentheses,
// and an alias taken outside an atomic call counts as plain.
func TestAtomicMixAliases(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync/atomic"

type G struct{ seq uint64 }

func (g *G) next() uint64 { return atomic.AddUint64((&g.seq), 1) }

func (g *G) leak() *uint64 { return &g.seq } // aliased outside atomic
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{AtomicMix}), []int{9}, nil)
}
