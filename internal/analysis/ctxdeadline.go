package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxDeadline applies to the long-lived network surfaces — packages under
// cmd/ and internal/remote — and flags blocking wire operations reachable
// without any deadline or timeout armed:
//
//   - net.Dial has no connect timeout at all and is always flagged (use
//     net.DialTimeout, or a net.Dialer with Timeout/DialContext);
//   - a Codec.Recv (the module's blocking frame read) is flagged when, on at
//     least one path from the function entry to the call, nothing armed a
//     bound first: no SetDeadline/SetReadDeadline/SetWriteDeadline on the
//     connection, no timer construction (time.After/NewTimer/AfterFunc/Tick/
//     NewTicker), no context.WithTimeout/WithDeadline, no net.DialTimeout.
//
// The dataflow is a must-analysis: the fact is "a bound has been armed on
// every path so far", joins take the conjunction, and a Recv in the unarmed
// state is reported. The analysis is per-function and does not track which
// connection a deadline was set on (no aliasing; see DESIGN.md §8): any
// arming event sanctions subsequent blocking calls in the same function.
// Deliberately unbounded reads — the long-lived per-connection receive loops,
// whose lifetime is ended by Close tearing the connection down — carry
// //lint:allow ctxdeadline annotations stating exactly that.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "flags dials and blocking wire reads in cmd/ and internal/remote reachable without a deadline or timeout",
	Run:  runCtxDeadline,
}

func runCtxDeadline(pass *Pass) {
	if !strings.Contains(pass.PkgPath, "/cmd/") && !strings.HasSuffix(pass.PkgPath, "/internal/remote") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			main, lits := FuncCFGs(fd.Body)
			deadlineFlow(pass, main)
			for _, cfg := range lits {
				// Closures run at unknown times with unknown arming state;
				// analyze pessimistically from an unarmed entry.
				deadlineFlow(pass, cfg)
			}
		}
	}
}

// armedFact is true when a deadline/timeout has been armed on every path.
type armedFact bool

func (a armedFact) Equal(o Fact) bool { b, ok := o.(armedFact); return ok && a == b }

func joinArmed(a, b Fact) Fact { return armedFact(bool(a.(armedFact)) && bool(b.(armedFact))) }

type deadliner struct {
	pass   *Pass
	report bool
}

func deadlineFlow(pass *Pass, cfg *CFG) {
	d := &deadliner{pass: pass}
	problem := FlowProblem{
		Entry: armedFact(false),
		Join:  joinArmed,
		Transfer: func(b *Block, in Fact) Fact {
			armed := bool(in.(armedFact))
			for _, n := range b.Nodes {
				armed = d.node(n, armed)
			}
			return armedFact(armed)
		},
	}
	in := Solve(cfg, problem)
	d.report = true
	for _, b := range cfg.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		armed := bool(f.(armedFact))
		for _, n := range b.Nodes {
			armed = d.node(n, armed)
		}
	}
}

// node walks one block node in evaluation order, updating the armed state and
// (in the report pass) flagging unarmed blocking calls.
func (d *deadliner) node(n ast.Node, armed bool) bool {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(d.pass.Info, call)
		if fn == nil {
			return true
		}
		switch {
		case armsDeadline(fn):
			armed = true
		case isNetDial(fn):
			if d.report {
				d.pass.Reportf(call.Pos(), "net.Dial has no connect timeout; a black-holed address blocks forever — use net.DialTimeout or a net.Dialer with Timeout")
			}
		case isBlockingRecv(fn):
			if !armed && d.report {
				d.pass.Reportf(call.Pos(), "%s.Recv is reachable with no deadline or timeout armed on any path; a silent peer blocks this goroutine forever", recvTypeName(fn))
			}
		}
		return true
	})
	return armed
}

// armsDeadline recognizes the calls that bound a subsequent blocking wait.
func armsDeadline(fn *types.Func) bool {
	switch fn.Name() {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "time.After", "time.NewTimer", "time.AfterFunc", "time.Tick", "time.NewTicker",
		"context.WithTimeout", "context.WithDeadline",
		"net.DialTimeout":
		return true
	}
	return false
}

func isNetDial(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "net" && fn.Name() == "Dial" &&
		func() bool { sig, ok := fn.Type().(*types.Signature); return ok && sig.Recv() == nil }()
}

// isBlockingRecv matches the module's blocking frame read: a Recv method on a
// codec-shaped receiver (named type "Codec").
func isBlockingRecv(fn *types.Func) bool {
	return fn.Name() == "Recv" && recvTypeName(fn) == "Codec"
}

func recvTypeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return typeName(sig.Recv().Type())
	}
	return ""
}
