package analysis

import (
	"strings"
	"testing"
)

func TestErrDropOverwrite(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }

func overwrite() error {
	err := mk()
	err = mk()
	return err
}
`)
	diags := RunPackage(pkg, []*Analyzer{ErrDrop})
	wantLines(t, diags, []int{7}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "overwriting it drops") {
		t.Errorf("message %q should describe the overwrite", diags[0].Message)
	}
}

func TestErrDropAbandonedOnPath(t *testing.T) {
	// err is read only when c is true; on the other path it reaches the
	// return unread.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }

func abandoned(c bool) {
	err := mk()
	if c {
		println(err)
	}
}
`)
	diags := RunPackage(pkg, []*Analyzer{ErrDrop})
	wantLines(t, diags, []int{6}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "at least one path") {
		t.Errorf("message %q should say the drop is path-dependent", diags[0].Message)
	}
}

func TestErrDropAllPathsRead(t *testing.T) {
	// Both branches read err before the overwrite/return: flow-sensitivity
	// must keep this clean (a purely syntactic check would flag it).
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }

func clean(c bool) error {
	err := mk()
	if c {
		if err != nil {
			return err
		}
	} else {
		println(err)
	}
	err = mk()
	return err
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{ErrDrop}), nil, nil)
}

func TestErrDropDiscardedCall(t *testing.T) {
	// A bare statement call to a module-internal error-returning function is
	// flagged; the explicit `_ =` discard is deliberate and is not.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }

func discard() {
	mk()
	_ = mk()
}
`)
	diags := RunPackage(pkg, []*Analyzer{ErrDrop})
	wantLines(t, diags, []int{6}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "discarded") {
		t.Errorf("message %q should describe the discard", diags[0].Message)
	}
}

func TestErrDropExemptions(t *testing.T) {
	// Address-taken and closure-captured error variables are out of scope:
	// the alias may read them at any time.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }
func sink(e *error)  {}
func check(e error)  {}

func addrTaken() {
	err := mk()
	sink(&err)
	err = mk()
}

func captured() {
	err := mk()
	defer func() { check(err) }()
	err = mk()
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{ErrDrop}), nil, nil)
}

func TestErrDropSuppressed(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }

func suppressed() {
	err := mk()
	//lint:allow errdrop fixture: first result is best-effort
	err = mk()
	println(err)
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{ErrDrop}), nil, []int{8})
}

func TestErrDropLoopReassignment(t *testing.T) {
	// The classic loop bug: err from the last failed iteration is overwritten
	// at the top of the next one.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func mk() error { return nil }

func loop() error {
	var err error
	for i := 0; i < 3; i++ {
		err = mk()
	}
	return err
}
`)
	// err flows around the back edge unread, so the reassignment is flagged.
	wantLines(t, RunPackage(pkg, []*Analyzer{ErrDrop}), []int{8}, nil)
}
