package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BareGoroutine applies to the long-running process surfaces — packages under
// cmd/ and internal/remote — where a goroutine that dies silently (panic) or
// outlives shutdown (no lifecycle tracking) turns into an operational
// incident. Every `go` statement there must either
//
//   - defer a recover (directly, or through a same-package helper whose body
//     recovers), or
//   - defer a WaitGroup Done, or
//   - defer a close(ch) of a done-channel (both lifecycle-tracking idioms of
//     the server and client runtimes),
//
// in the goroutine's body. Goroutines whose body is out of package view are
// flagged too: wrap them in a tracked closure.
var BareGoroutine = &Analyzer{
	Name: "bareGoroutine",
	Doc:  "flags go statements in cmd/ and internal/remote without panic recovery or lifecycle tracking",
	Run:  runBareGoroutine,
}

func runBareGoroutine(pass *Pass) {
	if !strings.Contains(pass.PkgPath, "/cmd/") && !strings.HasSuffix(pass.PkgPath, "/internal/remote") {
		return
	}
	decls := funcDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass, decls, gs.Call)
			if body == nil {
				pass.Reportf(gs.Pos(), "goroutine body is outside the package and cannot be verified; wrap it in a closure with panic recovery or lifecycle tracking")
				return true
			}
			if !hasGuardDefer(pass, decls, body) {
				pass.Reportf(gs.Pos(), "goroutine has neither panic recovery (defer func(){ recover() }()) nor lifecycle tracking (defer wg.Done()); a panic here kills the process silently and shutdown cannot wait for it")
			}
			return true
		})
	}
}

// goroutineBody resolves the body of the function started by a go statement.
func goroutineBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := calleeFunc(pass.Info, call); fn != nil {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasGuardDefer reports whether any top-level defer of the body is a
// recognized guard: a closure containing recover(), a same-package function
// whose body recovers, or a WaitGroup Done.
func hasGuardDefer(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		ds, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if isWaitGroupDone(pass, ds.Call) || isChanClose(pass, ds.Call) {
			return true
		}
		switch fun := ast.Unparen(ds.Call.Fun).(type) {
		case *ast.FuncLit:
			if containsRecover(pass.Info, fun.Body) {
				return true
			}
		default:
			if fn := calleeFunc(pass.Info, ds.Call); fn != nil {
				if fd := decls[fn]; fd != nil && fd.Body != nil && containsRecover(pass.Info, fd.Body) {
					return true
				}
			}
		}
	}
	return false
}

// isChanClose matches defer close(ch): closing a done-channel on exit is the
// lifecycle signal Close() methods wait on.
func isChanClose(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	_, isChan := pass.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan)
	return isChan
}

// isWaitGroupDone matches defer x.Done() / x.wg.Done() where the receiver is
// a sync.WaitGroup.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	n := namedOf(pass.Info.TypeOf(sel.X))
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}
