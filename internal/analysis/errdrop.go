package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrDrop flags error values that are lost along some execution path: a local
// error variable that is assigned and then overwritten before anything reads
// it, or that may reach a return while still unread; and a statement that
// calls a module-internal function returning an error and simply discards the
// whole result. Explicit discards (`_ = f()`) are deliberate and not flagged.
//
// The check is a forward may-analysis over the CFG: the fact is the set of
// error variables holding a possibly-unread error, keyed to the position of
// the assignment that produced it. Joins take the union (unread on any path
// counts), every read anywhere in an expression clears the variable, and
// assigning the nil literal clears it too (there is nothing to lose).
//
// Out of scope, by design: variables whose address is taken or that are
// captured by a closure (the closure may read them later — e.g. the common
// `defer func(){ ... err ... }()`), named result parameters (naked returns
// read them), and error-typed struct fields.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags error values overwritten or abandoned before being read along some path",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			errDropFunc(pass, fd.Body)
			// Closures are separate roots: their tracked variables are the
			// ones they declare themselves (captured ones are exempt).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					errDropFunc(pass, fl.Body)
				}
				return true
			})
		}
	}
}

// errFact maps each possibly-unread error variable to the position of the
// assignment that produced its value.
type errFact struct {
	vars map[types.Object]token.Pos
}

func (f errFact) Equal(o Fact) bool {
	g, ok := o.(errFact)
	if !ok || len(f.vars) != len(g.vars) {
		return false
	}
	for k, v := range f.vars {
		if w, ok := g.vars[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (f errFact) clone() errFact {
	out := make(map[types.Object]token.Pos, len(f.vars))
	for k, v := range f.vars {
		out[k] = v
	}
	return errFact{out}
}

func joinErrFacts(a, b Fact) Fact {
	f, g := a.(errFact), b.(errFact)
	out := f.clone()
	for k, v := range g.vars {
		if w, ok := out.vars[k]; !ok || v < w {
			out.vars[k] = v
		}
	}
	return out
}

type errDropper struct {
	pass    *Pass
	tracked map[types.Object]bool
	report  bool
}

func errDropFunc(pass *Pass, body *ast.BlockStmt) {
	d := &errDropper{pass: pass, tracked: trackedErrorVars(pass, body)}
	cfg := NewCFG(body)
	problem := FlowProblem{
		Entry: errFact{map[types.Object]token.Pos{}},
		Join:  joinErrFacts,
		Transfer: func(b *Block, in Fact) Fact {
			f := in.(errFact).clone()
			for _, n := range b.Nodes {
				d.node(n, &f)
			}
			return f
		},
	}
	in := Solve(cfg, problem)
	// Second pass with reporting on, over the final facts of reachable blocks.
	d.report = true
	blocks := reachableInOrder(cfg, in)
	for _, b := range blocks {
		f := in[b].(errFact).clone()
		for _, n := range b.Nodes {
			d.node(n, &f)
		}
	}
	// Anything still unread on entry to the exit block is abandoned.
	if exitFact, ok := in[cfg.Exit]; ok {
		leaks := exitFact.(errFact)
		type leak struct {
			obj types.Object
			pos token.Pos
		}
		var ls []leak
		for obj, pos := range leaks.vars {
			ls = append(ls, leak{obj, pos})
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i].pos < ls[j].pos })
		for _, l := range ls {
			pass.Reportf(l.pos, "error assigned to %s may reach a return without ever being read (dropped on at least one path)", l.obj.Name())
		}
	}
}

// reachableInOrder returns the reachable blocks in index order.
func reachableInOrder(cfg *CFG, in map[*Block]Fact) []*Block {
	var out []*Block
	for _, b := range cfg.Blocks {
		if _, ok := in[b]; ok {
			out = append(out, b)
		}
	}
	return out
}

// trackedErrorVars collects the error-typed local variables declared directly
// in this function body that are safe to reason about: never address-taken
// and never captured by a nested function literal. Named result parameters
// are declared in the signature, not the body, so they are never collected
// (naked returns read them invisibly).
func trackedErrorVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	errType := types.Universe.Lookup("error").Type()
	tracked := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // their declarations belong to their own root
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil || obj.Type() == nil || !types.Identical(obj.Type(), errType) {
			return true
		}
		if _, isVar := obj.(*types.Var); isVar {
			tracked[obj] = true
		}
		return true
	})
	// Exemptions: address-taken or closure-captured variables may be read
	// through the alias at any time.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					delete(tracked, pass.Info.Uses[id])
					delete(tracked, pass.Info.Defs[id])
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					delete(tracked, pass.Info.Uses[id])
				}
				return true
			})
			return false
		}
		return true
	})
	return tracked
}

// node applies one CFG node to the fact: reads clear variables, assignments
// report overwrites and record fresh unread errors, bare module calls that
// return an error are flagged as discarded.
func (d *errDropper) node(n ast.Node, f *errFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			d.reads(rhs, f)
		}
		for _, lhs := range n.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				d.reads(lhs, f) // m[err] = ..., x.f = ...: index/base reads
			}
		}
		d.assign(n, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					d.reads(v, f)
				}
				d.declare(vs, f)
			}
		}
	case *ast.RangeStmt:
		d.reads(n.X, f)
	case *ast.ExprStmt:
		d.reads(n.X, f)
		d.checkDiscardedCall(n)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			d.reads(r, f)
		}
	case *ast.DeferStmt:
		d.reads(n.Call, f)
	case *ast.GoStmt:
		d.reads(n.Call, f)
	case *ast.SendStmt:
		d.reads(n.Chan, f)
		d.reads(n.Value, f)
	case *ast.IncDecStmt:
		d.reads(n.X, f)
	case ast.Expr:
		d.reads(n, f) // a condition/tag expression hoisted into the block
	}
}

// reads clears every tracked variable referenced anywhere in the expression.
func (d *errDropper) reads(e ast.Expr, f *errFact) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := d.pass.Info.Uses[id]; obj != nil && d.tracked[obj] {
				delete(f.vars, obj)
			}
		}
		return true
	})
}

// assign processes the write targets of an assignment.
func (d *errDropper) assign(n *ast.AssignStmt, f *errFact) {
	tuple := len(n.Rhs) == 1 && len(n.Lhs) > 1
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := d.pass.Info.Defs[id]
		if obj == nil {
			obj = d.pass.Info.Uses[id]
		}
		if obj == nil || !d.tracked[obj] {
			continue
		}
		if prev, unread := f.vars[obj]; unread && d.report {
			d.pass.Reportf(id.Pos(), "%s still holds the unread error assigned at %s; overwriting it drops that error",
				id.Name, d.pass.Fset.Position(prev))
		}
		if !tuple && isNilIdent(n.Rhs[i]) {
			delete(f.vars, obj)
			continue
		}
		f.vars[obj] = id.Pos()
	}
}

// declare processes `var err error = v` declarations (no value: stays nil).
func (d *errDropper) declare(vs *ast.ValueSpec, f *errFact) {
	if len(vs.Values) == 0 {
		return
	}
	tuple := len(vs.Values) == 1 && len(vs.Names) > 1
	for i, id := range vs.Names {
		if id.Name == "_" {
			continue
		}
		obj := d.pass.Info.Defs[id]
		if obj == nil || !d.tracked[obj] {
			continue
		}
		if !tuple && isNilIdent(vs.Values[i]) {
			continue
		}
		f.vars[obj] = id.Pos()
	}
}

// checkDiscardedCall flags `f(...)` statements whose module-internal callee
// returns an error that nothing receives.
func (d *errDropper) checkDiscardedCall(n *ast.ExprStmt) {
	if !d.report {
		return
	}
	call, ok := ast.Unparen(n.X).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(d.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || !sameModule(fn.Pkg().Path(), d.pass.PkgPath) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			d.pass.Reportf(call.Pos(), "error result of %s is discarded; check it, or make the discard explicit with `_ =` and a reason", fn.Name())
			return
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// sameModule reports whether two import paths share the module root segment.
func sameModule(a, b string) bool {
	seg := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return seg(a) == seg(b)
}
