package analysis

import "testing"

func TestMissingDoc(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func Undocumented() {}

// Documented does nothing, verbosely.
func Documented() {}

func unexported() {}

type Exported struct{}

func (Exported) Method() {}

// DocType is documented.
type DocType struct{}

// Grouped declarations share the group doc.
const (
	GroupedA = 1
	GroupedB = 2
)

var Bare = 3

var inert = 4

type hidden struct{}

func (hidden) Invisible() {} // methods on unexported types are exempt

func Allowed() {} //lint:allow missingdoc exercised by the suppression test
`)
	// Line 1: the fixture has no package doc. A comment placed above a
	// declaration becomes its doc comment, so suppressing missingdoc takes the
	// trailing form (line 31).
	wantLines(t, RunPackage(pkg, []*Analyzer{MissingDoc}), []int{1, 3, 10, 12, 23}, []int{31})
}

func TestMissingDocPackageDocSatisfies(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `// Package fixture is documented.
package fixture

// All is documented.
func All() {}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{MissingDoc}), nil, nil)
}
