package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags taint from Go's randomized map iteration order into the
// module's order-sensitive sinks — the exact property the sharded-vs-single
// and crash-recovery bit-identity tests assume. The protected packages are
// the deterministic spine: internal/core, internal/parallel, internal/wire,
// internal/remote and the root package.
//
// Two rules, both anchored at a `for ... range m` over a map:
//
//  1. The range body reaches an ordered sink — a wire Codec.Send, a
//     journal Begin/NoteProbe/Commit, a gob/json Encoder.Encode — either
//     directly or through a module call whose summary EmitsOrdered. Each
//     iteration then emits in map order: nondeterministic output.
//
//  2. The range body appends to a slice declared outside the range and the
//     function never sorts that slice afterwards (no sort.*/slices.Sort*
//     call mentioning it after the range). That is the repo's
//     collect-then-sort idiom with the sort forgotten; the collected slice
//     carries map order wherever it goes.
//
// Iterations that only fold into order-insensitive state (counters, sets,
// min/max) don't match either rule and stay clean.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "flags map-iteration order reaching ordered sinks (wire, journal, snapshot) or unsorted collections",
	RunModule: runMapOrder,
}

// mapOrderProtected lists the import-path suffixes of the deterministic
// packages (matched against the loader's module-qualified paths).
var mapOrderProtected = []string{
	"internal/core", "internal/parallel", "internal/wire", "internal/remote",
}

func protectedPkg(path, moduleName string, suffixes []string) bool {
	if path == moduleName {
		return true // root package
	}
	for _, s := range suffixes {
		if path == moduleName+"/"+s || path == s {
			return true
		}
	}
	return false
}

func runMapOrder(mp *ModulePass) {
	st := ipaFor(mp.Pkgs)
	moduleName := moduleNameOf(mp.Pkgs)
	for _, comp := range st.cg.Comps {
		for _, id := range comp {
			node := st.cg.Nodes[id]
			if node == nil || !protectedPkg(node.Pkg.Path, moduleName, mapOrderProtected) {
				continue
			}
			checkMapRanges(mp, st, node)
		}
	}
}

// moduleNameOf recovers the module path prefix shared by the loaded
// packages ("srb" for this repo): the shortest package path that is a prefix
// of every other, or "" when packages were loaded bare.
func moduleNameOf(pkgs []*Package) string {
	name := ""
	for _, p := range pkgs {
		if i := strings.IndexByte(p.Path, '/'); i > 0 {
			cand := p.Path[:i]
			if name == "" || cand < name {
				name = cand
			}
		} else if p.Path != "" && (name == "" || p.Path < name) {
			name = p.Path
		}
	}
	return name
}

func checkMapRanges(mp *ModulePass, st *ipa, node *CGNode) {
	info := node.Pkg.Info
	body := node.Decl.Body

	// Collect the map ranges first; rule 2 needs the statements *after* each
	// range, so walk with position awareness.
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})

	for _, rs := range ranges {
		// Rule 1: ordered sink reachable from the body.
		if pos, sink, ok := sinkInBody(st, node, rs.Body); ok {
			mp.Reportf(node.Pkg, pos,
				"map-iteration order reaches ordered sink %s: each iteration emits in nondeterministic map order (sort the keys first)", sink)
			continue
		}
		// Rule 2: collect-without-sort.
		for _, obj := range unsortedCollects(info, node, rs) {
			mp.Reportf(node.Pkg, rs.For,
				"map-range collects into %q without sorting it afterwards: the slice carries nondeterministic map order (sort after the loop)", obj.Name())
		}
	}
}

// sinkInBody looks for an ordered-sink call in a range body: a direct sink
// call, or a call to a module function whose summary EmitsOrdered.
func sinkInBody(st *ipa, node *CGNode, body *ast.BlockStmt) (token.Pos, string, bool) {
	info := node.Pkg.Info
	var pos token.Pos
	var sink string
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if isOrderedSink(fn) {
			pos, sink, found = call.Pos(), funcID(fn), true
			return false
		}
		if iface := recvInterface(fn); iface == nil {
			if s := st.summaries[funcID(fn)]; s != nil && s.EmitsOrdered {
				pos, sink, found = call.Pos(), funcID(fn)+" (emits ordered output)", true
				return false
			}
		}
		return true
	})
	return pos, sink, found
}

// unsortedCollects returns the objects of slices that the range body appends
// to, that are declared outside the range, and that the function never sorts
// after the range ends.
func unsortedCollects(info *types.Info, node *CGNode, rs *ast.RangeStmt) []types.Object {
	// Appends inside the body targeting an outer slice variable.
	collected := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if builtinName(info, call) != "append" {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj == nil {
				continue
			}
			// Declared outside the range body (a collector, not a scratch
			// variable of the iteration)?
			if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
				continue
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				collected[obj] = true
			}
		}
		return true
	})
	if len(collected) == 0 {
		return nil
	}

	// Strike out every collector mentioned in a sort call after the range.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						delete(collected, obj)
					}
				}
				return true
			})
		}
		return true
	})
	if len(collected) == 0 {
		return nil
	}
	out := make([]types.Object, 0, len(collected))
	for obj := range collected {
		out = append(out, obj)
	}
	sortObjects(out)
	return out
}

func sortObjects(objs []types.Object) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j].Pos() < objs[j-1].Pos(); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}
