package analysis

import "testing"

// The acceptance fixture: a map range whose body reaches a journal write.
// The Journal type mirrors internal/core's (Begin/NoteProbe/Commit are the
// ordered sinks); each iteration journals in nondeterministic map order.
func TestMapOrderJournalSink(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

import "sort"

type Journal struct{ n int }

func (j *Journal) Begin(id uint64) { j.n++ }

func (j *Journal) Commit() { j.n++ }

func bad(j *Journal, pending map[uint64]bool) {
	for id := range pending {
		j.Begin(id) // map order reaches the journal
	}
	j.Commit()
}

func throughHelper(j *Journal, pending map[uint64]bool) {
	for id := range pending {
		emit(j, id) // sink reached through a summarized module call
	}
}

func emit(j *Journal, id uint64) { j.Begin(id) }

func good(j *Journal, pending map[uint64]bool) {
	ids := make([]uint64, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		j.Begin(id)
	}
	j.Commit()
}
`)
	// Line 13: j.Begin directly inside the map range. Line 20: emit(), a
	// module call whose summary EmitsOrdered. good's collect-then-sort idiom
	// stays clean.
	wantLines(t, RunPackage(pkg, []*Analyzer{MapOrder}), []int{13, 20}, nil)
}

func TestMapOrderCollectThenSort(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

import "sort"

func unsorted(m map[uint64]int) []uint64 {
	var ids []uint64
	for id := range m {
		ids = append(ids, id)
	}
	return ids // carries map order
}

func sorted(m map[uint64]int) []uint64 {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func scratch(m map[uint64]int) int {
	total := 0
	for _, v := range m {
		tmp := []int{v} // declared inside the range: not a collector
		total += tmp[0]
	}
	return total
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{MapOrder}), []int{7}, nil)
}

func TestMapOrderSuppressedAndUnprotected(t *testing.T) {
	src := `package core

type Journal struct{ n int }

func (j *Journal) Begin(id uint64) { j.n++ }

func allowed(j *Journal, pending map[uint64]bool) {
	for id := range pending {
		j.Begin(id) //lint:allow maporder replay tolerates any order under test
	}
}
`
	pkg := loadSource(t, "srb/internal/core", src)
	wantLines(t, RunPackage(pkg, []*Analyzer{MapOrder}), nil, []int{9})

	// The same code outside the deterministic packages is out of scope.
	out := loadSource(t, "srb/internal/obs", src)
	wantLines(t, RunPackage(out, []*Analyzer{MapOrder}), nil, nil)
}
