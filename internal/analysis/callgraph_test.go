package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fixturePkg is one in-memory package of a multi-package fixture module.
type fixturePkg struct {
	path string
	src  string
}

// fixtureImporter resolves fixture import paths to already-checked fixture
// packages and everything else through the stdlib source importer.
type fixtureImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (im fixtureImporter) Import(path string) (*types.Package, error) {
	if p := im.local[path]; p != nil {
		return p, nil
	}
	return im.std.Import(path)
}

// loadModuleSource type-checks a sequence of in-memory fixture packages in
// order (dependencies first); later fixtures may import earlier ones by path.
// It is the multi-package counterpart of loadSource, for the interprocedural
// analyzers whose findings cross package boundaries.
func loadModuleSource(t *testing.T, fixtures []fixturePkg) []*Package {
	t.Helper()
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	im := fixtureImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package),
	}
	var out []*Package
	for i, fx := range fixtures {
		f, err := parser.ParseFile(fset, fmt.Sprintf("fixture%d.go", i), fx.src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", fx.path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: im}
		pkg, err := conf.Check(fx.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck fixture %s: %v", fx.path, err)
		}
		im.local[fx.path] = pkg
		out = append(out, &Package{Path: fx.path, Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info})
	}
	return out
}

func TestCallGraphSCCAndMarkers(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func a() { b() }

func b() { a() }

func c() { a() }

//srb:hotpath
func hotRoot() { helper() }

func helper() { colder() }

//srb:coldpath
func colder() { buried() }

func buried() {}
`)
	cg := BuildCallGraph([]*Package{pkg})
	id := func(name string) string { return "srb/internal/fixture." + name }

	// a and b are mutually recursive: one component, distinct from c's.
	if cg.CompOf[id("a")] != cg.CompOf[id("b")] {
		t.Errorf("a and b should share a component: %d vs %d", cg.CompOf[id("a")], cg.CompOf[id("b")])
	}
	if cg.CompOf[id("a")] == cg.CompOf[id("c")] {
		t.Error("c should not be in a's component")
	}
	// Comps is callee-first: the {a,b} component precedes its caller c's.
	if cg.CompOf[id("a")] >= cg.CompOf[id("c")] {
		t.Errorf("callee component {a,b} (%d) should precede caller c (%d)",
			cg.CompOf[id("a")], cg.CompOf[id("c")])
	}

	// Doc markers.
	if !cg.Nodes[id("hotRoot")].Hot {
		t.Error("hotRoot should carry the //srb:hotpath marker")
	}
	if !cg.Nodes[id("colder")].Cold {
		t.Error("colder should carry the //srb:coldpath marker")
	}
	roots := cg.HotRoots()
	if len(roots) != 1 || roots[0] != id("hotRoot") {
		t.Errorf("HotRoots = %v, want [%s]", roots, id("hotRoot"))
	}

	// Reachability stops *through* coldpath nodes: colder itself is seen,
	// buried behind it is not.
	reach := cg.Reachable(roots)
	for _, want := range []string{"hotRoot", "helper", "colder"} {
		if !reach[id(want)] {
			t.Errorf("Reachable should include %s", want)
		}
	}
	if reach[id("buried")] {
		t.Error("Reachable should not traverse through the coldpath node colder into buried")
	}
}

func TestCallGraphInterfaceResolution(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

type Prober interface{ Probe() int }

type counter struct{ n int }

func (c *counter) Probe() int { c.n++; return c.n }

type other struct{}

func (other) Name() string { return "other" }

func viaIface(p Prober) int { return p.Probe() }
`)
	cg := BuildCallGraph([]*Package{pkg})
	node := cg.Nodes["srb/internal/fixture.viaIface"]
	if node == nil {
		t.Fatal("missing viaIface node")
	}
	want := "srb/internal/fixture.counter.Probe"
	found := false
	for _, c := range node.Callees {
		if c == want {
			found = true
		}
		if c == "srb/internal/fixture.other.Name" {
			t.Error("interface call must not resolve to a type that does not implement Prober")
		}
	}
	if !found {
		t.Errorf("viaIface callees %v should include the interface-resolved edge %s", node.Callees, want)
	}
}

func TestSummaryPropagation(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "time"

func top() time.Time { return mid() }

func mid() time.Time { return leaf() }

func leaf() time.Time { return time.Now() }

func recA(n int) {
	if n > 0 {
		recB(n - 1)
	}
}

func recB(n int) {
	clock()
	recA(n - 1)
}

func clock() { _ = time.Now() }

func iter(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func callsIter(m map[int]int) int { return iter(m) }

func pure(a, b int) int { return a + b }
`)
	_, sums := ComputeSummaries([]*Package{pkg})
	id := func(name string) string { return "srb/internal/fixture." + name }

	// WallClock propagates bottom-up through the chain and through the
	// recursive component.
	for _, name := range []string{"leaf", "mid", "top", "clock", "recA", "recB"} {
		if s := sums[id(name)]; s == nil || !s.WallClock {
			t.Errorf("summary of %s should be WallClock-tainted, got %+v", name, sums[id(name)])
		}
	}
	// RangesMap propagates one level up; the pure function stays clean.
	for _, name := range []string{"iter", "callsIter"} {
		if s := sums[id(name)]; s == nil || !s.RangesMap {
			t.Errorf("summary of %s should have RangesMap, got %+v", name, sums[id(name)])
		}
	}
	if s := sums[id("pure")]; s == nil || s.WallClock || s.RangesMap || s.Allocates {
		t.Errorf("summary of pure should be empty, got %+v", s)
	}
}

func TestSummaryWritesReceiverThroughCallee(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

type box struct{ n int }

func (b *box) bump() { b.n++ }

func (b *box) indirect() { b.bump() }

func (b *box) read() int { return b.n }
`)
	_, sums := ComputeSummaries([]*Package{pkg})
	id := func(name string) string { return "srb/internal/fixture.box." + name }
	if s := sums[id("bump")]; s == nil || !s.WritesReceiver {
		t.Errorf("bump should WritesReceiver, got %+v", s)
	}
	if s := sums[id("indirect")]; s == nil || !s.WritesReceiver {
		t.Errorf("indirect should inherit WritesReceiver through the receiver-rooted call, got %+v", s)
	}
	if s := sums[id("read")]; s == nil || s.WritesReceiver {
		t.Errorf("read should not WritesReceiver, got %+v", s)
	}
}
