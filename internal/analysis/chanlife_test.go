package analysis

import "testing"

// The lifecycle rules over one package: a send with no receiver anywhere
// (rule 1), a receive-side close racing the sender (rule 2), an unguarded
// double close (rule 3), with the sync.Once-guarded idiom and an escaping
// channel staying clean.
func TestChanLifeLifecycleRules(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

func sendNoRecv() {
	ch := make(chan int, 1)
	ch <- 1 // never received anywhere: rule 1
}

type S struct{ ch chan int }

func (s *S) start() {
	s.ch = make(chan int, 1)
	s.ch <- 1
}

func (s *S) stop() {
	<-s.ch
	close(s.ch) // receive-side close while start sends: rule 2
}

func doubleClose() {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	close(ch)
	close(ch) // rule 3: two unguarded closes
}

type Server struct {
	done chan struct{}
	once sync.Once
}

func NewServer() *Server { return &Server{done: make(chan struct{})} }

func (s *Server) Close() { s.once.Do(func() { close(s.done) }) }

func (s *Server) Shutdown() { s.once.Do(func() { close(s.done) }) }

func (s *Server) Wait() { <-s.done }

func escapes(notify func(chan int)) {
	ch := make(chan int, 1)
	notify(ch) // handed outside the module: receives may happen there
	ch <- 1
}

func suppressed() {
	ch := make(chan int, 1)
	ch <- 1 //lint:allow chanlife fixture send, consumed by the test harness
}
`)
	// Line 7: rule-1 send. Line 19: rule-2 close. Lines 26, 27: the rule-3
	// close pair. The Once-guarded closes, the escaping channel and the
	// allow-annotated send stay clean or suppressed.
	wantLines(t, RunPackage(pkg, []*Analyzer{ChanLife}), []int{7, 19, 26, 27}, []int{51})
}

// Cross-function unification: a field channel returned by an accessor is
// received through the accessor's ret cell in another package, so the field's
// sends have a receiver; a second field with no consumer anywhere fires.
func TestChanLifeCrossPackageUnification(t *testing.T) {
	pkgs := loadModuleSource(t, []fixturePkg{
		{path: "srb/internal/remote", src: `package remote

type App struct {
	updates chan int
	orphan  chan int
}

func New() *App {
	return &App{updates: make(chan int, 1), orphan: make(chan int, 1)}
}

func (a *App) run() {
	a.updates <- 1
	a.orphan <- 1 // no receiver anywhere in the module
}

func (a *App) Updates() <-chan int { return a.updates }
`},
		{path: "srb/cmd/client", src: `package main

import "srb/internal/remote"

func main() {
	app := remote.New()
	for range app.Updates() {
	}
	run(app)
}

func run(a *remote.App) {}
`},
	})
	// Only the orphan field's send (fixture0 line 14) fires: updates is
	// received via the Updates() ret-cell unification in cmd/client.
	wantLines(t, Run(pkgs, []*Analyzer{ChanLife}), []int{14}, nil)
}

// Rule 4: a blocking send or receive while a lockorder mutex key is held; a
// select with a default cannot block and is exempt, as is channel traffic
// after the unlock.
func TestChanLifeBlockingUnderLock(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type Q struct {
	mu sync.Mutex
	ch chan int
}

func fill(q *Q) { q.ch = make(chan int, 1) }

func (q *Q) bad() {
	q.mu.Lock()
	q.ch <- 1 // blocks while q.mu is held
	q.mu.Unlock()
}

func (q *Q) badRecv() {
	q.mu.Lock()
	<-q.ch // blocks while q.mu is held
	q.mu.Unlock()
}

func (q *Q) okSelect() {
	q.mu.Lock()
	select {
	case q.ch <- 1:
	default:
	}
	q.mu.Unlock()
}

func (q *Q) okAfter() {
	q.mu.Lock()
	q.mu.Unlock()
	<-q.ch
}

func (q *Q) suppressed() {
	q.mu.Lock()
	<-q.ch //lint:allow chanlife bounded hand-off, peer never holds q.mu
	q.mu.Unlock()
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{ChanLife}), []int{14, 20}, []int{41})
}
