package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("srb/internal/core")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages of this module from source,
// delegating out-of-module imports (the standard library) to the stdlib
// source importer. It uses only go/ast, go/parser and go/types plus their
// support packages — no external tooling.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds in-package _test.go files to analyzed packages and
	// additionally yields external (package foo_test) test packages.
	IncludeTests bool

	moduleName string
	moduleDir  string
	ctx        build.Context
	std        types.ImporterFrom
	cache      map[string]*Package
	loading    map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, name, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	// The source importer type-checks the standard library from GOROOT
	// source; with cgo disabled the pure-Go fallbacks of net and friends are
	// selected, keeping the whole pipeline free of C toolchain dependencies.
	ctx.CgoEnabled = false
	build.Default.CgoEnabled = false
	l := &Loader{
		Fset:       fset,
		moduleName: name,
		moduleDir:  root,
		ctx:        ctx,
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	l.std = std
	return l, nil
}

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModuleName returns the module path from go.mod.
func (l *Loader) ModuleName() string { return l.moduleName }

func findModule(dir string) (root, name string, err error) {
	for d := dir; ; {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s has no module line", gm)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer for the type-checker: module-local paths
// are loaded from source, everything else is delegated to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

func (l *Loader) inModule(path string) bool {
	return path == l.moduleName || strings.HasPrefix(path, l.moduleName+"/")
}

func (l *Loader) dirOf(path string) string {
	if path == l.moduleName {
		return l.moduleDir
	}
	rel := strings.TrimPrefix(path, l.moduleName+"/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

func (l *Loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.moduleName, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleDir)
	}
	return l.moduleName + "/" + filepath.ToSlash(rel), nil
}

// load type-checks the pure (non-test) package at the import path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.check(path, false, false)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadForAnalysis returns the packages to analyze at the import path: the
// primary package (with in-package test files when IncludeTests is set) and,
// when present and requested, the external _test package.
func (l *Loader) LoadForAnalysis(path string) ([]*Package, error) {
	if !l.IncludeTests {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	}
	var out []*Package
	pkg, err := l.check(path, true, false)
	if err != nil {
		return nil, err
	}
	out = append(out, pkg)
	ext, err := l.check(path, true, true)
	if err != nil {
		return nil, err
	}
	if ext != nil {
		out = append(out, ext)
	}
	return out, nil
}

// check parses and type-checks one package variant. With external set it
// builds the package foo_test variant (nil when the directory has none).
func (l *Loader) check(path string, tests, external bool) (*Package, error) {
	dir := l.dirOf(path)
	names, err := l.sourceFiles(dir, tests)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var pkgName string
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ext := strings.HasSuffix(file.Name.Name, "_test")
		if ext != external {
			continue
		}
		if pkgName == "" {
			pkgName = file.Name.Name
		}
		if file.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed package names %s and %s", dir, pkgName, file.Name.Name)
		}
		files = append(files, file)
	}
	if len(files) == 0 {
		if external {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	checkPath := path
	if external {
		checkPath = path + "_test"
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(checkPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", checkPath, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// sourceFiles lists the buildable .go files of dir under the loader's build
// context, optionally including _test.go files.
func (l *Loader) sourceFiles(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := l.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves package patterns relative to baseDir into import paths.
// Supported forms: "./...", "./dir/...", "./dir", "dir", and plain module
// import paths ("srb/internal/core").
func (l *Loader) Expand(baseDir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		if l.inModule(pat) && !strings.Contains(pat, "...") {
			add(pat)
			continue
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(baseDir, dir)
		}
		if !recursive {
			p, err := l.pathOf(dir)
			if err != nil {
				return nil, err
			}
			add(p)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(d.Name(), ".go") || strings.HasPrefix(d.Name(), ".") {
				return nil
			}
			if !l.IncludeTests && strings.HasSuffix(d.Name(), "_test.go") {
				return nil
			}
			ok, merr := l.ctx.MatchFile(filepath.Dir(path), d.Name())
			if merr != nil || !ok {
				return merr
			}
			p, perr := l.pathOf(filepath.Dir(path))
			if perr != nil {
				return perr
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
