package analysis

// protodrift.go is the protocol-exhaustiveness analyzer: the wire-contract
// half of the v4 suite (chanlife.go is the concurrency half). The module's
// two protocols — the wire.T* message-type constants and the journal Op/Kind
// string sets in internal/core — are each a closed set of string constants
// dispatched over by switches (server.handle loops, client read loops, the
// journal replay). Adding a kind to the producer without teaching every
// dispatcher is the classic drift bug: the seeded-fixture test proves a
// journal kind written but not replayed fails the lint gate.
//
// Extraction: every top-level const block in a package whose path ends in
// internal/wire or internal/core contributes its string-valued constants,
// identified by "pkgpath.Name" (object identity is useless across the
// loader's re-checked test variants). A block is split into *subgroups* at
// each spec carrying its own doc comment — the wire block's direction
// comments ("Client → server.", ...) partition the message types into the
// four directional sub-protocols, and exhaustiveness is judged per
// direction: a client-frame switch need not handle server-bound types.
//
// Checks, over every package in the module:
//
//   - unhandled kind: a switch whose cases mention at least two members of a
//     subgroup must mention all of them. A default clause does NOT count as
//     handling — defaults are for corrupt input, and routing a real protocol
//     kind through one is exactly the drift this check exists to catch.
//   - dead kind: a member of an actively-dispatched subgroup (some switch
//     mentions ≥2 of its members) that is never *produced* — every use in
//     the module is a case label or an ==/!= comparison. Nothing ever sends
//     or writes it, so either the producer is missing or the kind is dead
//     weight in every dispatcher.
//
// A string literal in a case clause that equals exactly one member's value
// counts as handling that member (pre-refactor code dispatches on raw
// literals); production is only recognized through the named constant.
//
// Known imprecision (DESIGN.md §13): if-chains (m.Type == wire.TResults)
// are consumption but not exhaustiveness-checked — only switches are;
// constants threaded through variables before the switch are not traced.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ProtoDrift verifies every protocol constant is produced somewhere and
// handled in every consuming dispatch switch.
var ProtoDrift = &Analyzer{
	Name:      "protodrift",
	Doc:       "flags protocol/journal string constants unhandled in dispatch switches or never produced (dead kinds)",
	RunModule: runProtoDrift,
}

// protoConstPkgs lists the path suffixes of the protocol-defining packages.
var protoConstPkgs = []string{"internal/wire", "internal/core"}

// protoMember is one string constant of a protocol subgroup.
type protoMember struct {
	key      string // "pkgpath.Name": stable across re-checked variants
	display  string // "pkgname.Name" for report text
	value    string
	pkg      *Package
	pos      token.Pos
	produced bool
}

// protoSub is one doc-comment-delimited run of a const block: the unit of
// exhaustiveness.
type protoSub struct {
	label   string
	members []*protoMember
	active  bool // some switch dispatches over ≥2 members
}

func runProtoDrift(mp *ModulePass) {
	moduleName := moduleNameOf(mp.Pkgs)
	var subs []*protoSub
	for _, pkg := range mp.Pkgs {
		if !protectedPkg(pkg.Path, moduleName, protoConstPkgs) {
			continue
		}
		subs = append(subs, extractProtoSubgroups(pkg)...)
	}
	if len(subs) == 0 {
		return
	}
	byKey := make(map[string]*protoMember)
	subOf := make(map[string]*protoSub)
	byValue := make(map[string][]*protoMember)
	for _, sub := range subs {
		for _, m := range sub.members {
			byKey[m.key] = m
			subOf[m.key] = sub
			byValue[m.value] = append(byValue[m.value], m)
		}
	}

	// Pass 1: dispatch switches — exhaustiveness per subgroup — collecting
	// the identifiers used in consumption contexts along the way.
	consuming := make(map[*ast.Ident]bool)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SwitchStmt:
					if n.Tag != nil {
						checkDispatchSwitch(mp, pkg, n, byKey, subOf, byValue, consuming)
					}
				case *ast.BinaryExpr:
					if n.Op == token.EQL || n.Op == token.NEQ {
						for _, op := range []ast.Expr{n.X, n.Y} {
							if id, m := protoMemberRef(pkg, op, byKey); m != nil {
								consuming[id] = true
							}
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: any remaining use of a member is a production.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || consuming[id] {
					return true
				}
				c, ok := pkg.Info.Uses[id].(*types.Const)
				if !ok || c.Pkg() == nil {
					return true
				}
				if m := byKey[c.Pkg().Path()+"."+c.Name()]; m != nil {
					m.produced = true
				}
				return true
			})
		}
	}

	// Dead kinds: unproduced members of actively-dispatched subgroups.
	for _, sub := range subs {
		if !sub.active {
			continue
		}
		for _, m := range sub.members {
			if !m.produced {
				mp.Reportf(m.pkg, m.pos,
					"protocol constant %s (%q) is dispatched on but never produced anywhere in the module (dead kind): remove it or add the producer", m.display, m.value)
			}
		}
	}
}

// checkDispatchSwitch judges one tagged switch against every subgroup it
// dispatches over (≥2 members mentioned in its cases).
func checkDispatchSwitch(mp *ModulePass, pkg *Package, sw *ast.SwitchStmt, byKey map[string]*protoMember, subOf map[string]*protoSub, byValue map[string][]*protoMember, consuming map[*ast.Ident]bool) {
	present := make(map[string]bool) // member key → mentioned in a case
	var touched []*protoSub
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var m *protoMember
			if id, ref := protoMemberRef(pkg, e, byKey); ref != nil {
				m = ref
				consuming[id] = true
			} else if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if v, err := strconv.Unquote(lit.Value); err == nil {
					if ms := byValue[v]; len(ms) == 1 {
						m = ms[0] // unambiguous raw-literal dispatch
					}
				}
			}
			if m == nil {
				continue
			}
			if !present[m.key] {
				present[m.key] = true
				sub := subOf[m.key]
				seen := false
				for _, t := range touched {
					if t == sub {
						seen = true
					}
				}
				if !seen {
					touched = append(touched, sub)
				}
			}
		}
	}
	for _, sub := range touched {
		mentioned := 0
		var missing []string
		for _, m := range sub.members {
			if present[m.key] {
				mentioned++
			} else {
				missing = append(missing, m.display)
			}
		}
		if mentioned < 2 || len(missing) == 0 {
			continue // incidental single mention, or fully handled
		}
		sub.active = true
		mp.Reportf(pkg, sw.Pos(),
			"dispatch switch handles %d of %d constants of %s: missing %s (a default clause does not count as handling a protocol kind)",
			mentioned, len(sub.members), sub.label, strings.Join(missing, ", "))
	}
	// A fully-handled dispatch still activates its subgroups for the
	// dead-kind check.
	for _, sub := range touched {
		mentioned := 0
		for _, m := range sub.members {
			if present[m.key] {
				mentioned++
			}
		}
		if mentioned >= 2 {
			sub.active = true
		}
	}
}

// protoMemberRef resolves an expression to a protocol member reference,
// returning the identifier that names the constant (for consumption
// bookkeeping) and the member.
func protoMemberRef(pkg *Package, e ast.Expr, byKey map[string]*protoMember) (*ast.Ident, *protoMember) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, nil
	}
	c, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return nil, nil
	}
	m := byKey[c.Pkg().Path()+"."+c.Name()]
	if m == nil {
		return nil, nil
	}
	return id, m
}

// extractProtoSubgroups pulls the doc-comment-delimited string-constant
// subgroups out of one package's top-level const blocks. Blocks with fewer
// than two string constants are not protocols and are skipped.
func extractProtoSubgroups(pkg *Package) []*protoSub {
	var subs []*protoSub
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			blockSubs := extractConstBlock(pkg, gd)
			total := 0
			for _, s := range blockSubs {
				total += len(s.members)
			}
			if total >= 2 {
				subs = append(subs, blockSubs...)
			}
		}
	}
	return subs
}

// extractConstBlock splits one const GenDecl into subgroups at each spec
// carrying its own doc comment.
func extractConstBlock(pkg *Package, gd *ast.GenDecl) []*protoSub {
	var subs []*protoSub
	var cur *protoSub
	label := func(first *protoMember, doc *ast.CommentGroup) string {
		if doc != nil {
			if line := strings.TrimSpace(strings.TrimPrefix(strings.SplitN(doc.Text(), "\n", 2)[0], "//")); line != "" {
				return first.pkg.Types.Name() + " group " + strings.TrimSuffix(line, ".") + ""
			}
		}
		return first.pkg.Types.Name() + " group starting at " + first.display
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if vs.Doc != nil && cur != nil && len(cur.members) > 0 {
			cur = nil // a documented spec starts the next subgroup
		}
		for _, name := range vs.Names {
			c, ok := pkg.Info.Defs[name].(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			m := &protoMember{
				key:     pkg.Path + "." + c.Name(),
				display: pkg.Types.Name() + "." + c.Name(),
				value:   constant.StringVal(c.Val()),
				pkg:     pkg,
				pos:     name.Pos(),
			}
			if cur == nil {
				cur = &protoSub{}
				cur.label = label(m, vs.Doc)
				subs = append(subs, cur)
			}
			cur.members = append(cur.members, m)
		}
	}
	// Singleton subgroups stay in the list for production bookkeeping, but
	// can never fire a check: exhaustiveness needs ≥2 mentions in a switch,
	// and the dead-kind check needs the activity that implies.
	return subs
}
