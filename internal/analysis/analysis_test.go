package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSource type-checks a single in-memory fixture file under the given
// import path, using the source importer for any stdlib imports.
func loadSource(t *testing.T, pkgpath, src string) *Package {
	t.Helper()
	// The source importer typechecks stdlib dependencies from source; cgo
	// files in them (net, os/user) cannot be handled, so force the netgo-style
	// pure-Go view regardless of whether NewLoader ran first.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgpath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return &Package{Path: pkgpath, Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// lines splits diagnostics into unsuppressed and suppressed line numbers.
func lines(diags []Diagnostic) (unsup, sup []int) {
	for _, d := range diags {
		if d.Suppressed {
			sup = append(sup, d.Pos.Line)
		} else {
			unsup = append(unsup, d.Pos.Line)
		}
	}
	return
}

func wantLines(t *testing.T, diags []Diagnostic, wantUnsup, wantSup []int) {
	t.Helper()
	unsup, sup := lines(diags)
	if fmt.Sprint(unsup) != fmt.Sprint(wantUnsup) || fmt.Sprint(sup) != fmt.Sprint(wantSup) {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "  %s (suppressed=%v)\n", d, d.Suppressed)
		}
		t.Errorf("findings on lines %v (suppressed %v), want %v (suppressed %v)\ngot:\n%s",
			unsup, sup, wantUnsup, wantSup, b.String())
	}
}

func TestFloatCmp(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

func bad(a, b float64) bool { return a == b }

type pt struct{ X, Y float64 }

func badStruct(p, q pt) bool { return p != q }

func zeroGuard(a float64) bool { return a == 0 } // exact-zero guard is sanctioned

func ints(a, b int) bool { return a == b }

//lint:allow floatcmp sentinel comparison under test
func allowed(a, b float64) bool { return a == b }
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{FloatCmp}), []int{3, 7}, []int{14})
}

func TestLockReentry(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.Total() // deadlock: Total relocks c.mu while Add still holds it
}

func (c *Counter) SafeAdd() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	_ = c.Total() // fine: the manual block released the lock first
}

func (c *Counter) DeferredClosure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = func() int { return c.Total() } // closure runs later, not flagged
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{LockReentry}), []int{20}, nil)
}

func TestLockReentryProberCallback(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

type Monitor struct{ n int }

func (m *Monitor) Update(id uint64) {}

type ProberFunc func(id uint64) int

func register(p ProberFunc) {}

func bad(m *Monitor) {
	register(func(id uint64) int {
		m.Update(id) // probers must not re-enter the monitor
		return 0
	})
}

func good(m *Monitor) {
	register(func(id uint64) int { return int(id) })
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{LockReentry}), []int{13}, nil)
}

func TestSliceEscape(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

type Buf struct {
	data []int
	rows [][]int
}

func (b *Buf) Data() []int { return b.data }

func (b *Buf) Row(i int) []int { return b.rows[i] }

func (b *Buf) SetData(xs []int) { b.data = xs }

func (b *Buf) CopyData() []int { return append([]int(nil), b.data...) }

func (b *Buf) internal() []int { return b.data } // unexported: callers are package-local

//lint:allow sliceescape ownership transfer under test
func (b *Buf) Adopt(xs []int) { b.data = xs }
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{SliceEscape}), []int{8, 10, 12}, []int{19})
}

func TestBareGoroutine(t *testing.T) {
	src := `package main

import "sync"

func bad() {
	go func() { work() }()
}

func tracked(wg *sync.WaitGroup) {
	go func() { defer wg.Done(); work() }()
}

func recovered() {
	go func() {
		defer func() { _ = recover() }()
		work()
	}()
}

func chanTracked(done chan struct{}) {
	go func() { defer close(done); work() }()
}

func opaque() {
	go work() // body is visible and has no guard
}

func work() {}
`
	pkg := loadSource(t, "srb/cmd/fixture", src)
	wantLines(t, RunPackage(pkg, []*Analyzer{BareGoroutine}), []int{6, 25}, nil)

	// The same code outside cmd/ and internal/remote is out of scope.
	out := loadSource(t, "srb/internal/fixture", src)
	wantLines(t, RunPackage(out, []*Analyzer{BareGoroutine}), nil, nil)
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//lint:allow floatcmp", []string{"floatcmp"}, true},
		{"//lint:allow floatcmp,sliceescape some reason", []string{"floatcmp", "sliceescape"}, true},
		{"// lint:allow all legacy", []string{"all"}, true},
		{"//lint:allow", nil, false},
		{"// regular comment", nil, false},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.text)
		if ok != c.ok || fmt.Sprint(got) != fmt.Sprint([]string(c.want)) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, got, ok, c.want, c.ok)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := ByName("floatcmp, bareGoroutine")
	if err != nil || len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "bareGoroutine" {
		t.Fatalf("ByName selection failed: %v, %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
