package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "body.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the set of blocks reachable from the entry.
func reachable(cfg *CFG) map[*Block]bool {
	seen := map[*Block]bool{cfg.Entry: true}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func TestCFGLinear(t *testing.T) {
	cfg := NewCFG(parseBody(t, "x := 1\nx++\n_ = x"))
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
	if len(cfg.Entry.Succs) != 1 || cfg.Entry.Succs[0] != cfg.Exit {
		t.Errorf("entry succs = %v, want just exit", cfg.Entry)
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg := NewCFG(parseBody(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x"))
	// Entry holds the assignment and the hoisted condition, then branches to
	// both arms; both arms reach the join, which reaches exit.
	if len(cfg.Entry.Nodes) != 2 {
		t.Errorf("entry has %d nodes, want assign+condition", len(cfg.Entry.Nodes))
	}
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2 (then, else)", len(cfg.Entry.Succs))
	}
	if !reachable(cfg)[cfg.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg := NewCFG(parseBody(t, "for i := 0; i < 3; i++ {\n\tprintln(i)\n}"))
	// The head must have a back-edge path: head -> body -> post -> head.
	var head *Block
	for _, b := range cfg.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("for.head succs = %d, want 2 (done, body)", len(head.Succs))
	}
	// Walking body->post must come back to head.
	seen := map[*Block]bool{}
	cur := head.Succs[1] // body (done edge is added first for conditioned loops)
	for i := 0; i < 5 && cur != nil && !seen[cur]; i++ {
		seen[cur] = true
		if cur == head {
			return
		}
		if len(cur.Succs) == 0 {
			break
		}
		cur = cur.Succs[0]
	}
	if cur != head {
		t.Error("no back edge from loop body to head")
	}
}

func TestCFGTerminalCall(t *testing.T) {
	cfg := NewCFG(parseBody(t, "x := 1\nif x > 0 {\n\tpanic(\"boom\")\n}\n_ = x"))
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok && isTerminalCall(call) {
				if len(b.Succs) != 0 {
					t.Errorf("panic block %v has successors %v, want none", b, b.Succs)
				}
			}
		}
	}
}

func TestCFGDeadCodeKept(t *testing.T) {
	cfg := NewCFG(parseBody(t, "return\nprintln(\"dead\")"))
	checkPartition(t, parseBody(t, "return\nprintln(\"dead\")"))
	r := reachable(cfg)
	dead := 0
	for _, b := range cfg.Blocks {
		if !r[b] && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Error("statement after return should land in an unreachable block, not vanish")
	}
}

func TestCFGSelect(t *testing.T) {
	body := parseBody(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		println(v)
	case ch <- 1:
	default:
		println("none")
	}`)
	cfg := NewCFG(body)
	cases := 0
	for _, b := range cfg.Blocks {
		if b.Kind == "select.case" {
			cases++
		}
	}
	if cases != 3 {
		t.Errorf("select produced %d case blocks, want 3", cases)
	}
	checkPartition(t, body)
}

func TestCFGPartitionTrickyShapes(t *testing.T) {
	bodies := []string{
		// labeled loops with targeted break/continue
		"outer:\nfor i := 0; i < 3; i++ {\n\tfor {\n\t\tif i > 1 {\n\t\t\tbreak outer\n\t\t}\n\t\tcontinue outer\n\t}\n}",
		// goto, forward and backward
		"i := 0\nagain:\ni++\nif i < 3 {\n\tgoto again\n}\ngoto done\ni--\ndone:\nprintln(i)",
		// switch with fallthrough and default
		"switch x := 2; x {\ncase 1:\n\tprintln(1)\n\tfallthrough\ncase 2:\n\tprintln(2)\ndefault:\n\tprintln(0)\n}",
		// type switch
		"var v interface{} = 1\nswitch v.(type) {\ncase int:\n\tprintln(\"int\")\ncase string:\n\tprintln(\"string\")\n}",
		// range with closure inside (closure body excluded from outer CFG)
		"xs := []int{1, 2}\nfor _, x := range xs {\n\tf := func() int { return x * 2 }\n\t_ = f()\n}",
		// defer and go
		"defer println(\"bye\")\ngo println(\"hi\")\nprintln(\"mid\")",
	}
	for i, b := range bodies {
		body := parseBody(t, b)
		checkPartition(t, body)
		_ = i
	}
}

// atomicStmt reports whether s is one of the CFG's atomic statement kinds
// (each must land in exactly one block).
func atomicStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.AssignStmt, *ast.DeclStmt, *ast.ExprStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt,
		*ast.BranchStmt, *ast.EmptyStmt, *ast.RangeStmt:
		return true
	}
	return false
}

// checkPartition asserts the CFG partition invariant on a body: construction
// succeeds and every atomic statement outside function literals appears in
// exactly one block (dead code included).
func checkPartition(t *testing.T, body *ast.BlockStmt) {
	t.Helper()
	cfg := NewCFG(body)
	count := make(map[ast.Node]int)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			count[n]++
		}
	}
	for n, c := range count {
		if c > 1 {
			t.Errorf("node %T appears in %d blocks, want 1", n, c)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && atomicStmt(s) {
			if count[s] != 1 {
				t.Errorf("atomic statement %T at offset %d appears in %d blocks, want exactly 1",
					s, s.Pos(), count[s])
			}
		}
		return true
	})
}

// FuzzCFG feeds arbitrary parseable function bodies to the CFG builder and
// asserts the two structural invariants: construction never panics, and every
// atomic statement lands in exactly one block.
func FuzzCFG(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"for {\n\tbreak\n}",
		"outer:\nfor i := 0; ; i++ {\n\tswitch i {\n\tcase 0:\n\t\tcontinue outer\n\tcase 1:\n\t\tfallthrough\n\tdefault:\n\t\tbreak outer\n\t}\n}",
		"goto l\nl:\nreturn",
		"select {\ncase <-make(chan int):\ndefault:\n}",
		"defer panic(\"x\")\nreturn\nprintln(\"dead\")",
		"if true {\n\tos.Exit(1)\n}\nprintln(\"after\")",
		"xs := map[int]int{}\nfor k, v := range xs {\n\t_ = func() int { return k + v }\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("NewCFG panicked: %v\nbody:\n%s", r, body)
					}
				}()
				cfg := NewCFG(fd.Body)
				count := make(map[ast.Node]int)
				for _, b := range cfg.Blocks {
					for _, n := range b.Nodes {
						count[n]++
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					if s, ok := n.(ast.Stmt); ok && atomicStmt(s) && count[s] != 1 {
						t.Fatalf("statement %T in %d blocks, want 1; body:\n%s\ncfg: %v",
							s, count[s], body, fmt.Sprint(cfg.Blocks))
					}
					return true
				})
			}()
		}
	})
}
