package analysis

// callgraph.go builds the module-wide static call graph underlying the
// interprocedural (v3) analyzers: maporder, wallclock, allochot and rwpurity.
//
// Nodes are function and method declarations of the analyzed packages,
// identified by the same cross-package-stable funcID strings the lockorder
// analyzer uses ("pkg.Type.Name" / "pkg.Name"). Function literals are not
// separate nodes: a closure's body is folded into its enclosing declaration,
// so a summary of the declaration over-approximates whatever its closures do
// whenever they run. Edges come from two sources:
//
//   - static calls: a call expression whose callee resolves to a declared
//     module function or method;
//   - interface calls: a call through an interface method is resolved against
//     the method sets of every concrete named type declared in the module —
//     each implementing type contributes an edge to its concrete method. This
//     is the usual class-analysis over-approximation: precise enough for a
//     module whose interfaces (Prober, net handlers) have a handful of
//     implementations, conservative for all of them at once.
//
// Calls through stored function values (fields, variables, parameters)
// contribute no edges; see DESIGN.md §12 for the imprecision catalogue.
//
// The graph is SCC-condensed with the same Tarjan algorithm the lockorder
// analyzer uses (tarjanComps below is shared): Comps lists the strongly
// connected components in callee-first (reverse topological) order, which is
// exactly the bottom-up order the per-function summary computation in
// summary.go needs.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// hotpathMarker in a function's doc comment makes it an allochot root;
// coldpathMarker removes the function (and everything only reachable through
// it) from hot-path traversal — for debug-only surfaces like the srbdebug
// invariant assertions.
const (
	hotpathMarker  = "//srb:hotpath"
	coldpathMarker = "//srb:coldpath"
)

// CGNode is one declared function or method in the call graph.
type CGNode struct {
	ID   string
	Pkg  *Package
	Decl *ast.FuncDecl
	// Callees lists the funcIDs of module functions this one may call,
	// sorted and deduplicated. Closure bodies are folded in.
	Callees []string
	// Hot and Cold reflect //srb:hotpath and //srb:coldpath doc markers.
	Hot  bool
	Cold bool

	graph   *CallGraph                // back-pointer for module-membership lookups
	derived map[types.Object]rootKind // rootSets cache (summary.go)
}

// CallGraph is the module-wide call graph plus its SCC condensation.
type CallGraph struct {
	Nodes map[string]*CGNode
	// CompOf maps a funcID to its index in Comps.
	CompOf map[string]int
	// Comps lists the strongly connected components in callee-first
	// (reverse topological) order: iterating Comps front to back visits
	// every callee component before any of its callers.
	Comps [][]string
}

// BuildCallGraph constructs the call graph of the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{Nodes: make(map[string]*CGNode)}

	// Pass 1: nodes, plus the concrete named types used to resolve
	// interface calls.
	type concrete struct {
		pkgPath string
		named   *types.Named
	}
	var concretes []concrete
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{ID: funcID(obj), Pkg: pkg, Decl: fd, graph: cg}
				n.Hot = docHasMarker(fd, hotpathMarker)
				n.Cold = docHasMarker(fd, coldpathMarker)
				cg.Nodes[n.ID] = n
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concretes = append(concretes, concrete{pkg.Path, named})
		}
	}

	// Pass 2: edges.
	for _, node := range cg.Nodes {
		callees := make(map[string]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(node.Pkg.Info, call)
			if fn == nil {
				return true
			}
			if iface := recvInterface(fn); iface != nil {
				// Interface call: every concrete module type implementing the
				// interface may be the dynamic receiver.
				for _, c := range concretes {
					if implementsEither(c.named, iface) {
						id := c.pkgPath + "." + c.named.Obj().Name() + "." + fn.Name()
						if _, ok := cg.Nodes[id]; ok {
							callees[id] = true
						}
					}
				}
				return true
			}
			if id := funcID(fn); id != node.ID {
				if _, ok := cg.Nodes[id]; ok {
					callees[id] = true
				}
			} else if _, ok := cg.Nodes[id]; ok {
				callees[id] = true // direct recursion is still an edge
			}
			return true
		})
		node.Callees = sortedKeys(callees)
	}

	// SCC condensation, callee-first.
	ids := make([]string, 0, len(cg.Nodes))
	for id := range cg.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	adj := make(map[string][]string, len(ids))
	for _, id := range ids {
		adj[id] = cg.Nodes[id].Callees
	}
	cg.CompOf, cg.Comps = tarjanComps(ids, adj)
	return cg
}

// Reachable returns the set of funcIDs reachable from the given roots along
// Callees edges, excluding traversal through //srb:coldpath nodes (the roots
// themselves are always included). The result includes the roots.
func (cg *CallGraph) Reachable(roots []string) map[string]bool {
	seen := make(map[string]bool)
	work := append([]string(nil), roots...)
	sort.Strings(work)
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		if seen[id] {
			continue
		}
		node := cg.Nodes[id]
		if node == nil {
			continue
		}
		seen[id] = true
		if node.Cold {
			continue // coldpath: counted, not traversed through
		}
		work = append(work, node.Callees...)
	}
	return seen
}

// HotRoots returns the funcIDs of //srb:hotpath-annotated declarations,
// sorted.
func (cg *CallGraph) HotRoots() []string {
	var out []string
	for id, n := range cg.Nodes {
		if n.Hot {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// docHasMarker reports whether a declaration's doc comment contains the
// given //srb: marker on a line of its own.
func docHasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// recvInterface returns the interface type a method is declared on, or nil
// for plain functions and concrete methods.
func recvInterface(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// implementsEither reports whether T or *T implements the interface.
func implementsEither(named *types.Named, iface *types.Interface) bool {
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

// tarjanComps computes the strongly connected components of the graph over
// nodes with the given adjacency, returning each node's component index and
// the components themselves. Tarjan finishes a component only after every
// component reachable from it, so Comps comes out in callee-first (reverse
// topological) order — the order a bottom-up summary propagation wants.
// Members within a component are sorted for deterministic iteration.
func tarjanComps(nodes []string, adj map[string][]string) (compOf map[string]int, comps [][]string) {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	compOf = make(map[string]int)
	var stack []string
	next := 1

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, known := index[w]; !known {
				// Targets outside the node list (edges into undeclared
				// functions) become their own single-node components.
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Strings(members)
			id := len(comps)
			for _, m := range members {
				compOf[m] = id
			}
			comps = append(comps, members)
		}
	}
	for _, v := range nodes {
		if _, known := index[v]; !known {
			strongconnect(v)
		}
	}
	return compOf, comps
}
