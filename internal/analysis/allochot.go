package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AllocHot reports every heap-allocation site in functions reachable from a
// //srb:hotpath-annotated root — the batch update spine: Monitor.Update,
// PlanUpdate/ApplyPlanned and Pipeline.Apply. The report is an inventory, not
// a judgement: the driver subtracts a checked-in baseline
// (lint/allochot.baseline) so CI fails only when a *new* site appears on the
// hot path, turning ROADMAP's ~2,500-allocs/tick reduction target into a
// ratchet instead of a one-off cleanup.
//
// Classified sites: make of maps/slices/channels, new, pointer-to-composite
// and slice/map literals, append, closure creation, and interface boxing at
// call arguments (a concrete value passed to an interface parameter, the
// fmt/error pattern). Sites inside a for/range statement carry an "in loop"
// marker — those dominate the per-tick count. //srb:coldpath on a function
// (e.g. the srbdebug-only invariant assertions) cuts traversal so debug-only
// surfaces don't pollute the inventory.
var AllocHot = &Analyzer{
	Name:      "allochot",
	Doc:       "inventories allocation sites reachable from //srb:hotpath roots (baseline-gated in CI)",
	RunModule: runAllocHot,
}

func runAllocHot(mp *ModulePass) {
	st := ipaFor(mp.Pkgs)
	roots := st.cg.HotRoots()
	if len(roots) == 0 {
		return
	}
	reach := st.cg.Reachable(roots)
	for _, id := range sortedKeys(reach) {
		node := st.cg.Nodes[id]
		if node == nil || node.Cold {
			continue
		}
		for _, site := range allocSites(node) {
			marker := ""
			if site.inLoop {
				marker = " in loop"
			}
			mp.Reportf(node.Pkg, site.pos, "hot-path alloc: %s%s (%s)", site.kind, marker, id)
		}
	}
}

// allocSite is one classified allocation in a function body.
type allocSite struct {
	pos    token.Pos
	kind   string
	inLoop bool
}

// allocSites classifies the allocation sites of a declaration, closures
// folded in. Shared with the summary computation (Allocates flag).
func allocSites(node *CGNode) []allocSite {
	info := node.Pkg.Info
	var sites []allocSite
	add := func(pos token.Pos, kind string, depth int) {
		sites = append(sites, allocSite{pos: pos, kind: kind, inLoop: depth > 0})
	}

	var walk func(n ast.Node, loopDepth int)
	walk = func(root ast.Node, loopDepth int) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, loopDepth)
				}
				if n.Cond != nil {
					walk(n.Cond, loopDepth+1)
				}
				if n.Post != nil {
					walk(n.Post, loopDepth+1)
				}
				walk(n.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(n.X, loopDepth)
				walk(n.Body, loopDepth+1)
				return false
			case *ast.FuncLit:
				add(n.Pos(), "closure", loopDepth)
				walk(n.Body, loopDepth)
				return false
			case *ast.CompositeLit:
				if t := info.TypeOf(n); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						add(n.Pos(), "slice-literal", loopDepth)
					case *types.Map:
						add(n.Pos(), "map-literal", loopDepth)
					}
				}
				return true
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						add(n.Pos(), "new-object", loopDepth)
					}
				}
				return true
			case *ast.CallExpr:
				if b := builtinName(info, n); b != "" {
					switch b {
					case "make":
						if len(n.Args) > 0 {
							if t := info.TypeOf(n.Args[0]); t != nil {
								switch t.Underlying().(type) {
								case *types.Map:
									add(n.Pos(), "make-map", loopDepth)
								case *types.Slice:
									add(n.Pos(), "make-slice", loopDepth)
								case *types.Chan:
									add(n.Pos(), "make-chan", loopDepth)
								}
							}
						}
					case "new":
						add(n.Pos(), "new-object", loopDepth)
					case "append":
						add(n.Pos(), "append", loopDepth)
					}
					return true
				}
				// Interface boxing at call arguments: a concrete value bound
				// to an interface parameter must be heap-boxed.
				if fn := calleeFunc(info, n); fn != nil {
					if sig, ok := fn.Type().(*types.Signature); ok {
						for i, arg := range n.Args {
							if boxesAt(info, sig, i, arg, n.Ellipsis.IsValid()) {
								add(arg.Pos(), "iface-box", loopDepth)
							}
						}
					}
				}
				return true
			}
			return true
		})
	}
	walk(node.Decl.Body, 0)

	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// boxesAt reports whether the i-th argument of a call to sig is a concrete
// (non-interface, non-nil) value bound to an interface parameter.
func boxesAt(info *types.Info, sig *types.Signature, i int, arg ast.Expr, spread bool) bool {
	params := sig.Params()
	if params == nil || params.Len() == 0 {
		return false
	}
	var pt types.Type
	switch {
	case sig.Variadic() && i >= params.Len()-1:
		if spread {
			return false // f(xs...) passes the slice through, no per-arg box
		}
		st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
		if !ok {
			return false
		}
		pt = st.Elem()
	case i < params.Len():
		pt = params.At(i).Type()
	default:
		return false
	}
	if _, ok := pt.Underlying().(*types.Interface); !ok {
		return false
	}
	at := info.TypeOf(arg)
	if at == nil {
		return false
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return false // interface-to-interface, no new box
	}
	return true
}
