package analysis

// summary.go computes bottom-up per-function summaries over the call graph's
// SCC condensation. A Summary is a tuple of monotone booleans — each starts
// false and is switched on by a direct fact in the function body or by a
// callee's summary — so propagating callee-first (with a fixpoint inside each
// strongly connected component, for recursion) reaches the least solution.
//
// The write-effect flags additionally need to know *what* a function writes
// through: receiver state, pointer/reference parameters, or package-level
// variables. That is resolved per call site with a small "derived set"
// analysis (see rootSets): a local assigned from a receiver-rooted expression
// is itself receiver-derived, so a write through it, or passing it to a
// callee that writes its parameters, counts as a receiver write.
//
// Deliberate imprecision (documented in DESIGN.md §12):
//
//   - standard-library *function* calls are assumed not to mutate their
//     arguments (so gob.NewEncoder(w) or sort.Slice(local) stay pure), but a
//     standard-library *method* call on a derived value is assumed to mutate
//     it (bufio.Writer.Write on a receiver-held writer is a receiver write);
//   - calls through interfaces or stored function values on a derived value
//     are assumed to mutate it;
//   - a //lint:allow wallclock comment on a time/rand call site keeps that
//     site out of the summaries entirely, so annotating the deliberate clock
//     reads in internal/obs stops the taint from reaching every caller.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Summary is the effect tuple of one declared function, closures included.
type Summary struct {
	// Allocates: the function (or a callee) contains a heap-allocation site
	// as classified by allocSites (make, new, literals, append, closures,
	// interface boxing).
	Allocates bool
	// WallClock / GlobalRand: a non-allow-annotated call to time.Now/Since/
	// Until/Tick, or to a package-level math/rand function, is reachable.
	WallClock  bool
	GlobalRand bool
	// RangesMap: a range over a map is reachable.
	RangesMap bool
	// EmitsOrdered: an order-sensitive sink is reachable — wire.Codec.Send,
	// core.Journal.{Begin,NoteProbe,Commit}, or a gob/json Encoder.Encode.
	EmitsOrdered bool
	// WritesReceiver / WritesParams / WritesGlobal: the function may mutate
	// state reachable from its receiver, its parameters, or package-level
	// variables.
	WritesReceiver bool
	WritesParams   bool
	WritesGlobal   bool
}

// union merges callee effects that propagate unconditionally through a call:
// the monotone observation flags. (Write effects propagate per call site,
// because they depend on what the argument expressions are rooted in.)
func (s *Summary) union(o *Summary) bool {
	changed := false
	set := func(dst *bool, v bool) {
		if v && !*dst {
			*dst = true
			changed = true
		}
	}
	set(&s.Allocates, o.Allocates)
	set(&s.WallClock, o.WallClock)
	set(&s.GlobalRand, o.GlobalRand)
	set(&s.RangesMap, o.RangesMap)
	set(&s.EmitsOrdered, o.EmitsOrdered)
	return changed
}

// ipa bundles the interprocedural state the v3 analyzers share: the call
// graph, the summary table, and the module-wide allow index.
type ipa struct {
	cg        *CallGraph
	summaries map[string]*Summary
	allow     map[allowKey]map[string]bool
}

// ipaCache memoizes the interprocedural state per package set, so the four
// analyzers sharing it within one Run build the call graph once. Run drives
// analyzers sequentially, so a single slot without locking suffices.
var ipaCache struct {
	pkgs   []*Package
	result *ipa
}

func ipaFor(pkgs []*Package) *ipa {
	if ipaCache.result != nil && samePkgs(ipaCache.pkgs, pkgs) {
		return ipaCache.result
	}
	st := &ipa{
		cg:    BuildCallGraph(pkgs),
		allow: make(map[allowKey]map[string]bool),
	}
	for _, pkg := range pkgs {
		for k, v := range allowIndex(pkg) {
			st.allow[k] = v
		}
	}
	st.summaries = computeSummaries(st.cg, st.allow)
	ipaCache.pkgs = pkgs
	ipaCache.result = st
	return st
}

func samePkgs(a, b []*Package) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ComputeSummaries builds the per-function summary table for the given call
// graph (exported for tests; analyzers go through ipaFor).
func ComputeSummaries(pkgs []*Package) (*CallGraph, map[string]*Summary) {
	allow := make(map[allowKey]map[string]bool)
	for _, pkg := range pkgs {
		for k, v := range allowIndex(pkg) {
			allow[k] = v
		}
	}
	cg := BuildCallGraph(pkgs)
	return cg, computeSummaries(cg, allow)
}

func computeSummaries(cg *CallGraph, allow map[allowKey]map[string]bool) map[string]*Summary {
	sums := make(map[string]*Summary, len(cg.Nodes))
	// Seed every component member with its direct (intra-body) facts, then
	// iterate the component to a fixpoint: within an SCC a recursive callee's
	// flags may keep growing, outside one they are already final because
	// Comps is in callee-first order.
	for _, comp := range cg.Comps {
		for _, id := range comp {
			if node := cg.Nodes[id]; node != nil {
				sums[id] = directFacts(node, allow)
			}
		}
		for changed := true; changed; {
			changed = false
			for _, id := range comp {
				node := cg.Nodes[id]
				if node == nil {
					continue
				}
				s := sums[id]
				for _, callee := range node.Callees {
					cs := sums[callee]
					if cs == nil {
						continue
					}
					if s.union(cs) {
						changed = true
					}
					// A global write propagates unconditionally through any
					// call edge, including interface-resolved ones.
					if cs.WritesGlobal && !s.WritesGlobal {
						s.WritesGlobal = true
						changed = true
					}
				}
				if propagateWrites(node, s, sums) {
					changed = true
				}
			}
		}
	}
	return sums
}

// directFacts extracts a declaration's own effects: observation facts from
// its body (closures folded in) and write effects through the derived-set
// analysis.
func directFacts(node *CGNode, allow map[allowKey]map[string]bool) *Summary {
	s := &Summary{}
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					s.RangesMap = true
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if isWallClockCall(fn) && !allowCovers(allow, node.Pkg, n.Pos(), wallclockName) {
				s.WallClock = true
			}
			if isGlobalRandCall(fn) && !allowCovers(allow, node.Pkg, n.Pos(), wallclockName) {
				s.GlobalRand = true
			}
			if isOrderedSink(fn) {
				s.EmitsOrdered = true
			}
		}
		return true
	})
	if len(allocSites(node)) > 0 {
		s.Allocates = true
	}
	writeFacts(node, s)
	return s
}

// allowCovers reports whether a //lint:allow for the named check covers pos.
func allowCovers(allow map[allowKey]map[string]bool, pkg *Package, pos token.Pos, name string) bool {
	p := pkg.Fset.Position(pos)
	set := allow[allowKey{p.Filename, p.Line}]
	return set != nil && (set[name] || set["all"])
}

// isWallClockCall matches the time-package reads that make output depend on
// the wall clock. Constructors of timers/tickers are included; pure
// formatting and arithmetic on existing values are not.
func isWallClockCall(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until", "Tick", "NewTimer", "NewTicker", "After", "AfterFunc":
		return true
	}
	return false
}

// isGlobalRandCall matches package-level math/rand functions drawing from the
// shared global source. Constructors of private sources (New, NewSource, ...)
// are fine: a locally seeded source is deterministic state the caller owns.
func isGlobalRandCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// isOrderedSink matches the order-sensitive emission points of the module:
// the wire protocol, the recovery journal, and the gob/json stream encoders
// used by snapshots and the journal file.
func isOrderedSink(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := typeName(sig.Recv().Type())
	switch {
	case recv == "Codec" && fn.Name() == "Send":
		return true
	case recv == "Journal" && (fn.Name() == "Begin" || fn.Name() == "NoteProbe" || fn.Name() == "Commit"):
		return true
	case recv == "Encoder" && fn.Name() == "Encode" && fn.Pkg() != nil &&
		(fn.Pkg().Path() == "encoding/gob" || fn.Pkg().Path() == "encoding/json"):
		return true
	}
	return false
}

// rootKind is a bitmask of what an expression's value may be derived from.
type rootKind uint8

const (
	fromRecv rootKind = 1 << iota
	fromParam
	fromGlobal
)

// rootSets computes, for one declaration, which local objects are derived
// from the receiver, the parameters, or package-level variables: the
// receiver/params themselves seed the sets, and a simple assignment fixpoint
// grows them (x := m.grid makes x receiver-derived; enc := gob.NewEncoder(w)
// makes enc parameter-derived through the call's arguments).
func rootSets(node *CGNode) map[types.Object]rootKind {
	if node.derived != nil {
		return node.derived
	}
	info := node.Pkg.Info
	derived := make(map[types.Object]rootKind)
	if r := recvIdent(node.Decl); r != nil {
		if obj := info.Defs[r]; obj != nil {
			derived[obj] = fromRecv
		}
	}
	if node.Decl.Type.Params != nil {
		for _, f := range node.Decl.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					derived[obj] = fromParam
				}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil || isPackageVar(obj) {
						continue
					}
					var k rootKind
					if len(n.Rhs) == len(n.Lhs) {
						k = valueRoots(info, derived, n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						k = valueRoots(info, derived, n.Rhs[0])
					}
					if k&^derived[obj] != 0 {
						derived[obj] |= k
						changed = true
					}
				}
			case *ast.RangeStmt:
				// Ranging over a derived container derives the loop vars
				// whose type can alias (the *objectState values, not the
				// uint64 keys).
				k := valueRoots(info, derived, n.X)
				if k == 0 {
					return true
				}
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if v == nil {
						continue
					}
					id, ok := ast.Unparen(v).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil || !isRefType(obj.Type()) {
						continue
					}
					if k&^derived[obj] != 0 {
						derived[obj] |= k
						changed = true
					}
				}
			}
			return true
		})
	}
	node.derived = derived
	return derived
}

func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isRefType reports whether a value of type t can alias memory: pointers,
// maps, slices, channels, interfaces and funcs do; a struct or array does iff
// it contains one of those; scalars and strings (immutable) do not. A nil
// (unknown) type is conservatively aliasing.
func isRefType(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface, *types.Signature, *types.Tuple:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isRefType(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return isRefType(u.Elem())
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// identRoot resolves one identifier's root mask.
func identRoot(info *types.Info, derived map[types.Object]rootKind, id *ast.Ident) rootKind {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return 0
	}
	var k rootKind
	if d, ok := derived[obj]; ok {
		k = d
	}
	if isPackageVar(obj) {
		k |= fromGlobal
	}
	return k
}

// scanRoots is the flat conservative scan: every derived identifier anywhere
// in the expression contributes its roots (closures excluded — they are a
// separate execution).
func scanRoots(info *types.Info, derived map[types.Object]rootKind, e ast.Expr) rootKind {
	var k rootKind
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			k |= identRoot(info, derived, id)
		}
		return true
	})
	return k
}

// valueRoots resolves which roots an expression's *value* may alias memory
// of. Leaves are gated by reference-ness — a struct of scalars copied by
// value aliases nothing, so `snap := monitorSnap{Stats: m.stats}` does not
// make snap receiver-derived — while taking an address always aliases, and
// fresh allocations (make, new) alias only through their element values.
func valueRoots(info *types.Info, derived map[types.Object]rootKind, e ast.Expr) rootKind {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.Ident:
		if !isRefType(info.TypeOf(x)) {
			return 0
		}
		return identRoot(info, derived, x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return scanRoots(info, derived, x.X) // address-of aliases the operand
		}
		return 0
	case *ast.BinaryExpr:
		return 0 // arithmetic, comparison, string concat: fresh values
	case *ast.CompositeLit:
		var k rootKind
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			k |= valueRoots(info, derived, v)
		}
		return k
	case *ast.CallExpr:
		switch builtinName(info, x) {
		case "make", "new", "len", "cap", "min", "max", "real", "imag", "complex", "recover":
			return 0 // fresh or scalar results; capacity args don't flow in
		}
		if !isRefType(info.TypeOf(x)) {
			return 0
		}
		k := valueRoots(info, derived, x.Fun)
		for _, a := range x.Args {
			k |= valueRoots(info, derived, a)
		}
		return k
	default:
		// Selectors, indexing, slicing, dereference, type assertions, and
		// anything unforeseen: gate on the result type, then scan.
		if !isRefType(info.TypeOf(e)) {
			return 0
		}
		return scanRoots(info, derived, e)
	}
}

// exprRoots resolves what roots an expression may hand a callee access to:
// for a call, the callee value and every argument (each type-gated); for
// anything else, its valueRoots. Shared by write detection, call-site
// propagation and the rwpurity region check.
func exprRoots(info *types.Info, derived map[types.Object]rootKind, e ast.Expr) rootKind {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		k := valueRoots(info, derived, call.Fun)
		for _, a := range call.Args {
			k |= valueRoots(info, derived, a)
		}
		return k
	}
	return valueRoots(info, derived, e)
}

// applyWriteKind switches on the write flags matching a root mask.
func applyWriteKind(s *Summary, k rootKind) bool {
	changed := false
	if k&fromRecv != 0 && !s.WritesReceiver {
		s.WritesReceiver = true
		changed = true
	}
	if k&fromParam != 0 && !s.WritesParams {
		s.WritesParams = true
		changed = true
	}
	if k&fromGlobal != 0 && !s.WritesGlobal {
		s.WritesGlobal = true
		changed = true
	}
	return changed
}

// lhsWriteRoots classifies an assignment target: writing through a selector,
// index, or dereference mutates whatever the base is derived from; writing a
// bare local ident only rebinds the local (no caller-visible effect), while a
// bare package-level ident is a global write.
func lhsWriteRoots(info *types.Info, derived map[types.Object]rootKind, lhs ast.Expr) rootKind {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && isPackageVar(obj) {
			return fromGlobal
		}
		return 0
	}
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		return exprRoots(info, derived, e.X)
	case *ast.IndexExpr:
		return exprRoots(info, derived, e.X)
	case *ast.StarExpr:
		return exprRoots(info, derived, e.X)
	}
	return 0
}

// writeFacts records the declaration's direct write effects.
func writeFacts(node *CGNode, s *Summary) {
	info := node.Pkg.Info
	derived := rootSets(node)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				applyWriteKind(s, lhsWriteRoots(info, derived, lhs))
			}
		case *ast.IncDecStmt:
			applyWriteKind(s, lhsWriteRoots(info, derived, n.X))
		case *ast.UnaryExpr:
			// Taking the address of derived state lets it escape; treat as a
			// potential write so `p := &m.stats; p.X++` stays sound.
			if n.Op == token.AND {
				if k := exprRoots(info, derived, n.X); k != 0 {
					// Only when the operand is a field/element, not a fresh
					// composite literal mentioning derived values.
					switch ast.Unparen(n.X).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
						applyWriteKind(s, k)
					}
				}
			}
		case *ast.CallExpr:
			if isConversion(info, n) {
				return true
			}
			if b := builtinName(info, n); b != "" {
				switch b {
				case "delete", "copy", "append":
					// delete/copy mutate their first argument; append may
					// write into its first argument's backing array.
					if len(n.Args) > 0 {
						applyWriteKind(s, exprRoots(info, derived, n.Args[0]))
					}
				}
				return true
			}
			fn := calleeFunc(info, n)
			if fn == nil {
				// Dynamic call (stored func value, e.g. m.report(...)):
				// assume it may mutate whatever its callee value and its
				// arguments are derived from.
				applyWriteKind(s, exprRoots(info, derived, n))
				return true
			}
			if recvInterface(fn) != nil {
				// Interface method call: unknown dynamic callee, assume it
				// mutates its receiver and arguments.
				applyWriteKind(s, exprRoots(info, derived, n))
				return true
			}
			if isModuleFunc(node, fn) {
				return true // handled per summary in propagateWrites
			}
			// Standard-library (or otherwise external) call: a method on a
			// derived value is assumed to mutate it (bufio.Writer.Write,
			// mutex Lock, ...); a plain function is assumed not to mutate
			// its arguments (gob.NewEncoder, sort.Slice on locals, fmt).
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					applyWriteKind(s, exprRoots(info, derived, sel.X))
				}
			}
		}
		return true
	})
}

// isModuleFunc reports whether fn is declared in one of the analyzed
// packages (so its summary, not a conservative guess, applies).
func isModuleFunc(node *CGNode, fn *types.Func) bool {
	_, ok := node.graph.Nodes[funcID(fn)]
	return ok
}

// propagateWrites folds callee write effects into the caller per call site:
// a callee that writes its receiver propagates through the receiver
// expression's roots; one that writes its parameters propagates through each
// argument's roots. (Global writes propagate through the plain call edges in
// computeSummaries.)
func propagateWrites(node *CGNode, s *Summary, sums map[string]*Summary) bool {
	info := node.Pkg.Info
	derived := rootSets(node)
	changed := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if recvInterface(fn) != nil {
			// Receiver/arg mutation through interfaces is recorded
			// conservatively by writeFacts; globals propagate through the
			// resolved call edges in computeSummaries' union loop.
			return true
		}
		cs := sums[funcID(fn)]
		if cs == nil {
			return true
		}
		if cs.WritesReceiver {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if applyWriteKind(s, exprRoots(info, derived, sel.X)) {
					changed = true
				}
			}
		}
		if cs.WritesParams {
			for _, arg := range call.Args {
				if applyWriteKind(s, exprRoots(info, derived, arg)) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}
