package analysis

import (
	"strings"
	"testing"
)

func TestAllocHot(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

type state struct{ n int }

//srb:hotpath
func root(ids []uint64) {
	m := make(map[uint64]bool)
	for _, id := range ids {
		m[id] = true
		s := append([]uint64{}, id)
		_ = s
	}
	helper(m)
	debugOnly(m)
}

func helper(m map[uint64]bool) *state {
	return &state{n: len(m)}
}

//srb:coldpath
func debugOnly(m map[uint64]bool) {
	_ = make([]uint64, 0, len(m))
}

func unreachable() []int {
	return make([]int, 8)
}
`)
	diags := RunPackage(pkg, []*Analyzer{AllocHot})
	type want struct {
		line int
		frag string
	}
	wants := []want{
		{7, "make-map"},
		{10, "append in loop"},
		{10, "slice-literal in loop"},
		{18, "new-object"},
	}
	if len(diags) != len(wants) {
		var got []string
		for _, d := range diags {
			got = append(got, d.String())
		}
		t.Fatalf("got %d findings, want %d:\n%s", len(diags), len(wants), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		if diags[i].Pos.Line != w.line || !strings.Contains(diags[i].Message, w.frag) {
			t.Errorf("finding %d = %s, want line %d containing %q", i, diags[i], w.line, w.frag)
		}
	}
	// Neither the coldpath body nor the unreachable function contributes.
	for _, d := range diags {
		if strings.Contains(d.Message, "debugOnly") || strings.Contains(d.Message, "unreachable") {
			t.Errorf("cold/unreachable site leaked into the inventory: %s", d)
		}
	}
}

func TestAllocHotNoRoots(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

func plain() []int { return make([]int, 4) }
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{AllocHot}), nil, nil)
}

func TestAllocHotIfaceBox(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

func sink(v interface{}) {}

//srb:hotpath
func root(n int, e error, xs []interface{}) {
	sink(n)      // concrete-to-interface: boxes
	sink(e)      // interface-to-interface: no box
	variadic(xs...) // spread passes the slice through: no box
}

func variadic(vs ...interface{}) {}
`)
	diags := RunPackage(pkg, []*Analyzer{AllocHot})
	if len(diags) != 1 || diags[0].Pos.Line != 7 || !strings.Contains(diags[0].Message, "iface-box") {
		t.Errorf("want exactly one iface-box finding on line 7, got %v", diags)
	}
}

// TestAllocHotBaselineRoundTrip pins the ratchet mechanics: formatting the
// findings, parsing them back and applying them suppresses exactly the
// inventory, and a second format pass is byte-identical (the acceptance
// criterion for regeneration).
func TestAllocHotBaselineRoundTrip(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

//srb:hotpath
func root() map[int]int {
	return make(map[int]int)
}
`)
	diags := RunPackage(pkg, []*Analyzer{AllocHot})
	if len(diags) != 1 {
		t.Fatalf("want one finding, got %v", diags)
	}
	content := FormatBaseline("", diags)
	again := FormatBaseline("", diags)
	if content != again {
		t.Error("FormatBaseline is not deterministic")
	}
	accepted, err := ParseBaseline(strings.NewReader(content))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if n := ApplyBaseline("", accepted, diags); n != 1 {
		t.Errorf("ApplyBaseline matched %d findings, want 1", n)
	}
	if !diags[0].Suppressed {
		t.Error("the baselined finding should be suppressed")
	}
	// A new site (different message) must not match.
	diags[0].Suppressed = false
	diags[0].Message = "hot-path alloc: make-slice (srb/internal/core.root)"
	if n := ApplyBaseline("", accepted, diags); n != 0 {
		t.Errorf("a changed finding matched the baseline (%d), the ratchet is broken", n)
	}
}
