package analysis

// cfg.go builds intraprocedural control-flow graphs over go/ast function
// bodies, the foundation of the flow-sensitive analyzers (lockorder, errdrop,
// ctxdeadline, distunits). The construction is purely syntactic — it needs no
// type information — so it also serves the FuzzCFG target, which feeds it
// arbitrary parseable (possibly semantically invalid) sources.
//
// The decomposition follows golang.org/x/tools/go/cfg in spirit: a Block
// holds a run of atomic nodes executed in order, compound statements are
// decomposed into blocks and edges, and their conditions appear as expression
// nodes inside blocks. Atomic nodes are:
//
//   - simple statements: assignments, declarations, expression statements,
//     inc/dec, channel sends, go, defer, return, branch, empty statements;
//   - *ast.RangeStmt, which stands for one "fetch next element" step and
//     heads its own loop block;
//   - condition/tag expressions of if/for/switch and case-clause expressions.
//
// Function literals are never descended into — a closure body runs at an
// unknown time and is a separate CFG of its own (see FuncCFGs).
//
// Statements following a terminator (return, branch, panic, os.Exit and
// friends) land in a fresh unreachable block, so the invariant "every atomic
// statement appears in exactly one block" holds for dead code too.
//
// Defers are ordinary nodes in the block where they are registered; analyzers
// that care about exit-time effects (lockorder treats a deferred Unlock as
// "held to function end") recognize *ast.DeferStmt themselves.

import (
	"fmt"
	"go/ast"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is Entry. Unreachable blocks
	// (dead code, never-taken label targets) are included.
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block (no nodes): the target of
	// every return and of falling off the end of the body. Blocks that end
	// in panic/os.Exit have no successors at all.
	Exit *Block
}

// Block is a maximal straight-line run of atomic nodes.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.head", ... (debugging)
	Nodes []ast.Node
	Succs []*Block
}

// String renders the block index, kind and successor list for CFG dumps.
func (b *Block) String() string {
	succs := make([]string, len(b.Succs))
	for i, s := range b.Succs {
		succs[i] = fmt.Sprint(s.Index)
	}
	return fmt.Sprintf("b%d(%s)→[%s]", b.Index, b.Kind, strings.Join(succs, " "))
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*Block)}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"} // indexed after construction
	b.cur = b.cfg.Entry
	b.stmt(body)
	b.edge(b.cur, b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block
	targets *targets          // innermost enclosing breakable/continuable
	labels  map[string]*Block // goto / labeled-statement targets
	// pendingLabel is the label of the statement about to be built, so a
	// labeled loop registers it as its break/continue label.
	pendingLabel string
	// fallTo is the body block of the next case of the innermost switch.
	fallTo *Block
}

// targets is the stack of break/continue destinations.
type targets struct {
	outer      *targets
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// labelBlock returns (creating lazily, for forward gotos) the block a label
// names.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending label of the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock("unreachable.return")

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)
		b.cur = b.newBlock("unreachable.branch")

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(call) {
			// panic/os.Exit: control never proceeds; no successor at all.
			b.cur = b.newBlock("unreachable.panic")
		}

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		done := b.newBlock("if.done")
		then := b.newBlock("if.then")
		b.edge(head, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
		} else {
			b.edge(head, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, done)
		}
		b.edge(head, body)
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.targets = &targets{outer: b.targets, label: label, breakTo: done, continueTo: cont}
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.targets = b.targets.outer
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // the RangeStmt is the iteration step
		b.edge(head, body)
		b.edge(head, done)
		b.targets = &targets{outer: b.targets, label: label, breakTo: done, continueTo: head}
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.targets = b.targets.outer
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		done := b.newBlock("select.done")
		b.targets = &targets{outer: b.targets, label: label, breakTo: done}
		hasDefault := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock("select.case")
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, done)
		}
		_ = hasDefault // an empty or default-less select simply has its case edges
		b.targets = b.targets.outer
		b.cur = done

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		// BadStmt and anything unanticipated: record and carry on.
		b.add(s)
	}
}

// switchBody decomposes the case clauses of a switch/type-switch. The clause
// expressions are evaluated in the head block; fallthrough (expression
// switches only) jumps to the next case's body.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, allowFallthrough bool) {
	head := b.cur
	done := b.newBlock("switch.done")
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock("switch.case")
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.targets = &targets{outer: b.targets, label: label, breakTo: done}
	savedFall := b.fallTo
	for i, cc := range clauses {
		if allowFallthrough && i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		b.cur = blocks[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(b.cur, done)
	}
	b.fallTo = savedFall
	b.targets = b.targets.outer
	b.cur = done
}

// branch wires a break/continue/goto/fallthrough edge. Unresolvable targets
// (invalid sources under fuzzing) terminate the block without an edge.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for t := b.targets; t != nil; t = t.outer {
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.cur, t.breakTo)
				return
			}
		}
	case "continue":
		for t := b.targets; t != nil; t = t.outer {
			if t.continueTo == nil {
				continue // switch/select levels are transparent to continue
			}
			if s.Label == nil || t.label == s.Label.Name {
				b.edge(b.cur, t.continueTo)
				return
			}
		}
	case "goto":
		if s.Label != nil {
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		}
	case "fallthrough":
		b.edge(b.cur, b.fallTo)
	}
}

// isTerminalCall reports, syntactically, whether a call never returns: the
// panic builtin, os.Exit, runtime.Goexit, and the log.Fatal family.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// FuncCFGs returns the CFG of the function body plus one CFG per function
// literal nested anywhere inside it (closures run at unknown times, so each
// is analyzed as an independent entry point). The map key is the literal.
func FuncCFGs(body *ast.BlockStmt) (main *CFG, lits map[*ast.FuncLit]*CFG) {
	main = NewCFG(body)
	lits = make(map[*ast.FuncLit]*CFG)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits[fl] = NewCFG(fl.Body)
			// Inspect continues into the literal, finding nested literals too;
			// their CFGs are built from their own bodies when reached.
		}
		return true
	})
	return main, lits
}
