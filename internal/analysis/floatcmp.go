package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != whose operands are floating-point — including
// structs and arrays whose comparison reduces to float equality (geom.Point,
// geom.Rect, geom.Circle) — the root cause of boundary-case bugs in the
// Prop 5.2/5.5 geometry. Exact comparison against the literal constant 0 is
// permitted by default: only an exactly-zero divisor or norm produces
// NaN/Inf, so zero guards are correct as written. Everything else must go
// through an epsilon helper (geom.Feq, geom.Point.Near) or carry an explicit
// //lint:allow floatcmp annotation stating why exactness is intended.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= on floating-point operands (incl. float-field structs) outside zero guards",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt := pass.Info.TypeOf(be.X)
			rt := pass.Info.TypeOf(be.Y)
			if !isFloaty(lt) && !isFloaty(rt) {
				return true
			}
			if isZeroConst(pass.Info, be.X) || isZeroConst(pass.Info, be.Y) {
				return true
			}
			kind := "float"
			if !isFloatScalar(lt) && !isFloatScalar(rt) {
				kind = "float-field struct"
			}
			pass.Reportf(be.OpPos, "exact %s comparison (%s); use an epsilon helper such as geom.Feq/Point.Near or annotate deliberate exactness with //lint:allow floatcmp", kind, be.Op)
			return true
		})
	}
}

func isFloatScalar(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isFloaty reports whether comparing two values of type t performs any
// floating-point equality: floats themselves, and structs/arrays with a
// float component anywhere.
func isFloaty(t types.Type) bool {
	return isFloatyDepth(t, 0)
}

func isFloatyDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isFloatyDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return isFloatyDepth(u.Elem(), depth+1)
	}
	return false
}

// isZeroConst reports whether the expression is a compile-time constant equal
// to exactly zero (the sanctioned divisor/norm guard).
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
